module astream

go 1.22
