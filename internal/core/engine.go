package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/spe"
	"astream/internal/sqlstream"
)

// Config parameterizes an Engine.
type Config struct {
	// Streams is the number of input streams (1 for aggregation-only
	// workloads, 2 for binary joins, up to 5 for the complex workload of
	// §4.7). Stream names in SQL map positionally: first FROM source =
	// stream 0.
	Streams int
	// Parallelism is the instance count of every shared operator.
	Parallelism int
	// Nodes simulates a cluster of this many nodes; with Nodes > 1 an edge
	// codec charges serialization on inter-node exchanges.
	Nodes int
	// StoreMode selects the join slice store (adaptive/grouped/list).
	StoreMode StoreMode
	// BatchSize and BatchTimeout configure the shared session's changelog
	// batching (paper §4.4: batch-size 100, timeout 1 s).
	BatchSize    int
	BatchTimeout time.Duration
	// Lateness is the tolerated event-time disorder; watermarks trail the
	// max seen event-time by this much.
	Lateness event.Time
	// WatermarkEvery controls watermark cadence in event-time units.
	WatermarkEvery event.Time
	// ChannelCap bounds exchange channels (backpressure).
	ChannelCap int
	// ExchangeBatch is the per-edge exchange batch size ceiling (tuples per
	// channel operation); 1 disables batching, 0 picks the SPE default. Each
	// edge adapts its actual batch threshold to downstream queue occupancy.
	ExchangeBatch int
	// ExchangeFlush bounds how long a partial exchange batch may sit before
	// a time-based flush ships it, independent of the watermark cadence.
	// 0 picks the default (1ms); negative disables the time-based flush
	// (instances still flush whenever their inbox runs dry).
	ExchangeFlush time.Duration
	// GroupedThreshold is the active-query count above which the shared
	// session sends the §3.2.3 marker switching join slice stores from
	// query-set grouping to flat lists (the paper's heuristic: beyond ~10
	// concurrent queries most groups hold a single tuple). Only applies
	// when StoreMode is StoreAdaptive.
	GroupedThreshold int
	// SlotMode selects query-set slot assignment (reuse vs append-only,
	// Figure 3); AppendOnly exists for the ablation.
	SlotMode changelog.Mode
	// NowNanos is the wall clock (injectable for tests).
	NowNanos func() int64
	// SnapshotSink, when set, receives operator snapshots on checkpoints.
	SnapshotSink spe.SnapshotSink
	// OnInstanceFailure, when set, is called (from the failing instance's
	// goroutine) for every supervised operator failure, after the engine has
	// recorded it. Checkpoint runners use it to interrupt in-flight barriers
	// and schedule recovery.
	OnInstanceFailure func(spe.InstanceFailure)
	// FaultHook, when set, threads deterministic fault injection through the
	// deployment (tests only; see internal/fault).
	FaultHook spe.FaultHook
	// StateDir, when non-empty, selects the durable on-disk state backend
	// rooted at this directory (internal/durable): the input log becomes a
	// write-ahead log and checkpoints survive process restarts. Empty keeps
	// the in-memory store. The engine itself never reads this field — it is
	// plumbing for checkpoint runner constructors (see durable.Open).
	StateDir string
	// SnapshotDeltaEvery, when > 1, enables incremental snapshots: operators
	// that support deltas emit a full snapshot every Nth barrier and deltas
	// covering only dirtied state in between. Requires a snapshot store that
	// can resolve base+delta chains; runners force it to 0 otherwise.
	SnapshotDeltaEvery int
}

func (c *Config) setDefaults() {
	if c.Streams <= 0 {
		c.Streams = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.BatchTimeout == 0 {
		c.BatchTimeout = time.Second
	}
	if c.WatermarkEvery <= 0 {
		c.WatermarkEvery = 10
	}
	if c.ExchangeBatch <= 0 {
		c.ExchangeBatch = spe.DefaultExchangeBatch
	}
	if c.ExchangeFlush == 0 {
		c.ExchangeFlush = time.Millisecond
	}
	if c.ChannelCap <= 0 {
		// A channel slot carries a whole batch, so keep the default
		// in-flight buffering measured in *tuples* (cap × batch) close to
		// the unbatched configuration — otherwise batching multiplies
		// queued work by the batch size and event-time latency under
		// closed-loop saturation balloons with it.
		c.ChannelCap = spe.DefaultChannelCap / c.ExchangeBatch
		if c.ChannelCap < 16 {
			c.ChannelCap = 16
		}
	}
	if c.GroupedThreshold <= 0 {
		c.GroupedThreshold = 10
	}
	if c.NowNanos == nil {
		// The one place the engine touches the wall clock: the default
		// when no clock is injected.
		//lint:ignore wallclock default clock injection point; everything downstream uses NowNanos
		c.NowNanos = func() int64 { return time.Now().UnixNano() }
	}
}

// Engine is AStream: one deployed shared topology executing every ad-hoc
// query. Queries are created and deleted at runtime without touching the
// topology (paper §1.3: "AStream avoids deploying a new streaming topology
// for each query").
type Engine struct {
	cfg      Config
	topo     *spe.Topology
	job      *spe.Job
	registry *changelog.Registry
	router   *Router
	metrics  *OpMetrics
	session  *session
	clTimes  *changelogTimes

	srcNodes []*spe.Node
	ingress  []*streamIngress

	selLogics  [][]*SharedSelection
	joinLogics [][]*SharedJoin
	aggLogics  []*SharedAggregation

	nextID     int64
	maxHorizon int64 // max window reach, for the drain watermark
	storeHint  int32 // last §3.2.3 store marker sent (StoreSwitch)
	errMu      sync.Mutex
	sessErrs   []error
	defsMu     sync.RWMutex
	defs       map[int]*Query
	stopped    bool

	// Failure surface: every supervised instance failure is recorded here;
	// repeated predicate panics quarantine the offending query (§ functional
	// isolation — one bad ad-hoc query must not kill the shared pipeline).
	failMu      sync.Mutex
	failures    []spe.InstanceFailure
	strikes     map[int]int
	quarantined map[int]bool
}

// streamIngress is the per-stream ingestion state. Ingest for one stream
// must be called from a single goroutine (the driver's pump), matching the
// paper's driver design (Figure 5).
type streamIngress struct {
	sc       *spe.SourceContext
	lastTime event.Time
	lastWM   event.Time

	mu           sync.Mutex
	pending      []pendingCL
	pendingCount int32
}

type pendingCL struct {
	msg *ChangelogMsg
	at  event.Time
}

// NewEngine builds and deploys the shared topology.
func NewEngine(cfg Config) (*Engine, error) {
	cfg.setDefaults()
	if cfg.Streams > 8 {
		return nil, fmt.Errorf("core: at most 8 streams supported, got %d", cfg.Streams)
	}
	eng := &Engine{
		cfg:         cfg,
		registry:    changelog.NewRegistry(cfg.SlotMode),
		metrics:     NewOpMetrics(cfg.NowNanos),
		clTimes:     newChangelogTimes(cfg.Streams),
		defs:        make(map[int]*Query),
		strikes:     make(map[int]int),
		quarantined: make(map[int]bool),
	}
	eng.router = NewRouter(eng.metrics)
	eng.session = newSession(eng, cfg.BatchSize, cfg.BatchTimeout)

	topo := spe.NewTopology()
	topo.SetChannelCap(cfg.ChannelCap)
	topo.SetExchangeBatch(cfg.ExchangeBatch)
	topo.SetFlushInterval(int64(cfg.ExchangeFlush))
	topo.SetNowNanos(cfg.NowNanos)
	eng.topo = topo

	S, P := cfg.Streams, cfg.Parallelism
	eng.selLogics = make([][]*SharedSelection, S)
	srcs := make([]*spe.Node, S)
	sels := make([]*spe.Node, S)
	for i := 0; i < S; i++ {
		srcs[i] = topo.AddSource(fmt.Sprintf("src-%d", i), 1)
		eng.selLogics[i] = make([]*SharedSelection, P)
		i := i
		// The src→select shuffle is load-bearing when P > 1: it is what
		// parallelizes the O(active queries) predicate work across selection
		// instances. At P == 1 it routes every tuple to instance 0 anyway,
		// so declare it forward and let Deploy chain the selection straight
		// into the source's ingest call.
		srcInput := spe.KeyedInput(srcs[i])
		if P == 1 {
			srcInput = spe.ForwardInput(srcs[i])
		}
		sels[i] = topo.AddOperator(fmt.Sprintf("select-%d", i), P, func(inst int) spe.Logic {
			l := NewSharedSelection(i, cfg.Lateness, eng.metrics)
			l.onPredPanic = eng.predicatePanicked
			l.faultHook, _ = cfg.FaultHook.(predicateHook)
			eng.selLogics[i][inst] = l
			return l
		}, srcInput)
		sels[i].AssignNodes(cfg.Nodes)
	}
	eng.srcNodes = srcs

	// Join chain: stage k joins (previous stage or stream 0) with stream
	// k+1 (shared n-ary joins, §3.1.4/§3.1.5).
	joins := make([]*spe.Node, 0, S-1)
	eng.joinLogics = make([][]*SharedJoin, S-1)
	left := sels[0]
	for k := 0; k < S-1; k++ {
		k := k
		eng.joinLogics[k] = make([]*SharedJoin, P)
		jn := topo.AddOperator(fmt.Sprintf("join-%d", k), P, func(inst int) spe.Logic {
			l := NewSharedJoin(k, cfg.StoreMode, cfg.Lateness, eng.router, eng.metrics)
			eng.joinLogics[k][inst] = l
			return l
		}, spe.KeyedInput(left), spe.KeyedInput(sels[k+1]))
		jn.AssignNodes(cfg.Nodes)
		joins = append(joins, jn)
		left = jn
	}

	// Shared aggregation: port 0 = stream 0 selection, port k = join k-1.
	// With a single stream the aggregation is selection's only consumer and
	// both route by the same key at the same parallelism, so keyed routing
	// is the identity — declare the edge forward and the two operators fuse
	// into one instance per partition.
	aggInput0 := spe.KeyedInput(sels[0])
	if S == 1 {
		aggInput0 = spe.ForwardInput(sels[0])
	}
	aggInputs := []spe.Input{aggInput0}
	for _, jn := range joins {
		aggInputs = append(aggInputs, spe.KeyedInput(jn))
	}
	eng.aggLogics = make([]*SharedAggregation, P)
	agg := topo.AddOperator("aggregate", P, func(inst int) spe.Logic {
		l := NewSharedAggregation(len(aggInputs), cfg.Lateness, eng.router, eng.metrics)
		if cfg.FaultHook != nil {
			// Fault injection wants the plain per-slice fire path,
			// mirroring how it disables the selection's predicate index.
			l.disableMergeTree()
		}
		eng.aggLogics[inst] = l
		return l
	}, aggInputs...)
	agg.AssignNodes(cfg.Nodes)

	var opts []spe.DeployOption
	if cfg.Nodes > 1 {
		opts = append(opts, spe.WithEdgeCodec(spe.BinaryCodec{}))
	}
	if cfg.SnapshotSink != nil {
		opts = append(opts, spe.WithSnapshotSink(cfg.SnapshotSink))
	}
	if cfg.SnapshotDeltaEvery > 1 {
		opts = append(opts, spe.WithDeltaSnapshots(cfg.SnapshotDeltaEvery))
	}
	// The engine always supervises its instances: an operator panic surfaces
	// as a recorded InstanceFailure (and the optional callback), never as a
	// process crash.
	opts = append(opts, spe.WithFailureSink(spe.FailureFunc(eng.onInstanceFailure)))
	if cfg.FaultHook != nil {
		opts = append(opts, spe.WithFaultHook(cfg.FaultHook))
	}
	job, err := spe.Deploy(topo, opts...)
	if err != nil {
		return nil, err
	}
	eng.job = job

	eng.ingress = make([]*streamIngress, S)
	for i := 0; i < S; i++ {
		sc, err := job.SourceContext(srcs[i], 0)
		if err != nil {
			return nil, err
		}
		eng.ingress[i] = &streamIngress{sc: sc, lastTime: event.MinTime, lastWM: event.MinTime}
	}
	return eng, nil
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Metrics returns the shared-operator metrics counters.
func (e *Engine) Metrics() *OpMetrics { return e.metrics }

// InstanceCount returns the number of operator instances in the deployed
// topology (selections + join stages + aggregation, times parallelism);
// checkpoint coordinators use it to detect barrier completion.
func (e *Engine) InstanceCount() int {
	return (2*e.cfg.Streams - 1 + 1) * e.cfg.Parallelism
}

// Router returns the engine's result router.
func (e *Engine) Router() *Router { return e.router }

// TopologyDot renders the deployed shared topology as Graphviz, with fused
// operator chains boxed as subgraphs.
func (e *Engine) TopologyDot() string { return e.topo.Dot() }

// Chains returns the operator chains the deployment fused (name lists,
// head first); empty when every edge is a real exchange.
func (e *Engine) Chains() [][]string { return e.topo.Chains() }

// ActiveQueries returns the number of running queries.
func (e *Engine) ActiveQueries() int {
	e.defsMu.RLock()
	defer e.defsMu.RUnlock()
	return len(e.defs)
}

// Submit registers a compiled query. The returned ack channel closes when
// the query's changelog has been released into every stream; the query ID is
// assigned immediately.
func (e *Engine) Submit(q *Query, sink Sink) (int, <-chan struct{}, error) {
	if err := q.Validate(e.cfg.Streams); err != nil {
		return 0, nil, err
	}
	if sink == nil {
		sink = NewCountingSink(e.cfg.NowNanos, 128)
	}
	id := int(atomic.AddInt64(&e.nextID, 1))
	qq := *q
	qq.ID = id
	e.trackHorizon(&qq)
	ack, err := e.session.submit(id, &qq, sink)
	if err != nil {
		return 0, nil, err
	}
	e.defsMu.Lock()
	e.defs[id] = &qq
	e.defsMu.Unlock()
	return id, ack, nil
}

// SubmitSQL parses, compiles, and submits a SQL query.
func (e *Engine) SubmitSQL(sql string, sink Sink) (int, <-chan struct{}, error) {
	sq, err := sqlstream.Parse(sql)
	if err != nil {
		return 0, nil, err
	}
	q, err := CompileSQL(sq)
	if err != nil {
		return 0, nil, err
	}
	return e.Submit(q, sink)
}

// StopQuery requests deletion of a running query; the ack channel closes
// when the deletion changelog is released.
func (e *Engine) StopQuery(id int) (<-chan struct{}, error) {
	e.defsMu.Lock()
	if _, ok := e.defs[id]; !ok {
		e.defsMu.Unlock()
		return nil, fmt.Errorf("core: query %d not running", id)
	}
	delete(e.defs, id)
	e.defsMu.Unlock()
	return e.session.stop(id)
}

func (e *Engine) trackHorizon(q *Query) {
	h := int64(q.Window.Length)
	if int64(q.Window.Gap) > h {
		h = int64(q.Window.Gap) * 2
	}
	if int64(q.AggWindow.Length) > 0 {
		h += int64(q.AggWindow.Length)
	}
	for {
		cur := atomic.LoadInt64(&e.maxHorizon)
		if h <= cur || atomic.CompareAndSwapInt64(&e.maxHorizon, cur, h) {
			return
		}
	}
}

// nextChangelogTime picks an event-time after everything already ingested so
// the changelog weaves in cleanly on every stream.
func (e *Engine) nextChangelogTime() event.Time { return e.clTimes.next() }

// releaseChangelog queues the changelog for weaving into every stream.
func (e *Engine) releaseChangelog(msg *ChangelogMsg, at event.Time) {
	for _, ing := range e.ingress {
		ing.mu.Lock()
		ing.pending = append(ing.pending, pendingCL{msg: msg, at: at})
		atomic.AddInt32(&ing.pendingCount, 1)
		ing.mu.Unlock()
	}
}

func (e *Engine) recordSessionError(err error) {
	e.errMu.Lock()
	e.sessErrs = append(e.sessErrs, err)
	e.errMu.Unlock()
}

// SessionErrors returns errors from rejected session batches.
func (e *Engine) SessionErrors() []error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	out := make([]error, len(e.sessErrs))
	copy(out, e.sessErrs)
	return out
}

// Ingest pushes one tuple into a stream. For each stream, Ingest must be
// called from a single goroutine (the driver pump). Event times must respect
// the configured Lateness bound per stream.
func (e *Engine) Ingest(stream int, t event.Tuple) error {
	if stream < 0 || stream >= len(e.ingress) {
		return fmt.Errorf("core: no stream %d", stream)
	}
	ing := e.ingress[stream]
	e.clTimes.observe(stream, t.Time)
	if t.IngestNanos == 0 {
		t.IngestNanos = e.cfg.NowNanos()
	}
	if atomic.LoadInt32(&ing.pendingCount) > 0 {
		ing.drainPending(t.Time)
	}
	ing.sc.EmitTuple(t)
	if t.Time > ing.lastTime {
		ing.lastTime = t.Time
	}
	wm := ing.lastTime - e.cfg.Lateness
	if wm >= ing.lastWM+e.cfg.WatermarkEvery {
		if atomic.LoadInt32(&ing.pendingCount) > 0 {
			ing.drainPending(wm)
		}
		ing.sc.EmitWatermark(wm)
		ing.lastWM = wm
	}
	return nil
}

// drainPending emits every queued changelog with release time ≤ upTo, in
// order, so no tuple or watermark at or past a changelog's time precedes it.
func (ing *streamIngress) drainPending(upTo event.Time) {
	ing.mu.Lock()
	n := 0
	for n < len(ing.pending) && ing.pending[n].at <= upTo {
		n++
	}
	var release []pendingCL
	if n > 0 {
		release = append(release, ing.pending[:n]...)
		// Compact in place: re-slicing the front (pending = pending[n:])
		// would pin the backing array — and every drained message — for as
		// long as any entry stays queued.
		rest := copy(ing.pending, ing.pending[n:])
		for i := rest; i < len(ing.pending); i++ {
			ing.pending[i] = pendingCL{}
		}
		ing.pending = ing.pending[:rest]
		atomic.AddInt32(&ing.pendingCount, int32(-n))
	}
	ing.mu.Unlock()
	for _, p := range release {
		ing.sc.EmitChangelog(p.msg, p.at)
	}
}

// Checkpoint injects a checkpoint barrier into every stream (after flushing
// pending changelogs). Returns the barrier id. Must be called from the
// ingestion goroutine's quiescent point (no concurrent Ingest).
func (e *Engine) Checkpoint(id uint64) {
	for _, ing := range e.ingress {
		ing.drainPending(event.MaxTime)
		ing.sc.EmitBarrier(id)
	}
}

// DeployRecords returns per-query deployment latency records.
func (e *Engine) DeployRecords() []DeployRecord { return e.session.deployRecords() }

// storeSwitch decides whether this changelog carries the §3.2.3 data-
// structure marker: in adaptive mode, crossing GroupedThreshold in either
// direction switches every join slice store between grouped and list
// layout. Called under the session lock, after the registry was updated.
func (e *Engine) storeSwitch() StoreSwitch {
	if e.cfg.StoreMode != StoreAdaptive {
		return SwitchNone
	}
	want := SwitchGrouped
	if e.registry.ActiveCount() > e.cfg.GroupedThreshold {
		want = SwitchList
	}
	if StoreSwitch(atomic.SwapInt32(&e.storeHint, int32(want))) == want {
		return SwitchNone // no crossing since the last changelog
	}
	return want
}

// QueryQoS is one query's service-level snapshot (paper §3.4).
type QueryQoS struct {
	ID          int
	Results     uint64
	MeanLatency time.Duration
}

// QoSReport is the engine's quality-of-service snapshot (§3.4): per-query
// result counts and sampled end-to-end latencies (for queries on the default
// counting sink), plus the data-path counters an external controller would
// watch before adding resources.
type QoSReport struct {
	ActiveQueries  int
	Selected       uint64
	Dropped        uint64
	Late           uint64
	JoinResults    uint64
	AggResults     uint64
	PairsComputed  uint64
	PairsReused    uint64
	DeploymentMean time.Duration
	Queries        []QueryQoS
}

// QoS assembles the current report.
func (e *Engine) QoS() QoSReport {
	r := QoSReport{
		ActiveQueries: e.ActiveQueries(),
		Selected:      atomic.LoadUint64(&e.metrics.Selected),
		Dropped:       atomic.LoadUint64(&e.metrics.Dropped),
		Late:          atomic.LoadUint64(&e.metrics.Late),
		JoinResults:   atomic.LoadUint64(&e.metrics.JoinedOut),
		AggResults:    atomic.LoadUint64(&e.metrics.AggOut),
		PairsComputed: atomic.LoadUint64(&e.metrics.PairsDone),
		PairsReused:   atomic.LoadUint64(&e.metrics.PairsReuse),
	}
	var sum time.Duration
	recs := e.session.deployRecords()
	n := 0
	for _, rec := range recs {
		if rec.Create {
			sum += rec.Latency
			n++
		}
	}
	if n > 0 {
		r.DeploymentMean = sum / time.Duration(n)
	}
	e.router.Each(func(id int, s Sink) {
		if cs, ok := s.(*CountingSink); ok {
			r.Queries = append(r.Queries, QueryQoS{
				ID:          id,
				Results:     cs.Results(),
				MeanLatency: time.Duration(cs.MeanLatencyNanos()),
			})
		}
	})
	sort.Slice(r.Queries, func(i, j int) bool { return r.Queries[i].ID < r.Queries[j].ID })
	return r
}

// Drain flushes the session, releases all pending changelogs, advances the
// watermark far enough to fire every remaining window, closes the sources,
// and waits for the topology to finish. The engine cannot be used after
// Drain.
func (e *Engine) Drain() {
	if e.stopped {
		return
	}
	e.stopped = true
	e.session.close()
	final := e.clTimes.next() + event.Time(atomic.LoadInt64(&e.maxHorizon))*2 + 2
	for _, ing := range e.ingress {
		ing.drainPending(event.MaxTime)
		if final > ing.lastWM {
			ing.sc.EmitWatermark(final)
		}
		ing.sc.Close()
	}
	e.job.Wait()
}
