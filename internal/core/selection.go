package core

import (
	"sort"
	"sync/atomic"

	"astream/internal/bitset"
	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/spe"
)

// StoreSwitch is the §3.2.3 marker the shared session attaches to a
// changelog when the active-query count crosses the grouped-store threshold:
// downstream joins switch every slice's data structure and resume.
type StoreSwitch uint8

const (
	// SwitchNone leaves slice stores as they are.
	SwitchNone StoreSwitch = iota
	// SwitchGrouped switches slice stores to query-set grouping.
	SwitchGrouped
	// SwitchList switches slice stores to flat lists.
	SwitchList
)

// ChangelogMsg is the changelog payload woven through the engine's streams:
// the slot-level changelog plus the compiled definitions of the queries it
// creates. Operators treat it as immutable shared state.
type ChangelogMsg struct {
	CL *changelog.Changelog
	// Defs maps created query IDs to their compiled definitions.
	Defs map[int]*Query
	// Switch, when not SwitchNone, is the §3.2.3 store-layout marker.
	Switch StoreSwitch
}

// ChangelogSeq implements spe.ChangelogPayload.
func (m *ChangelogMsg) ChangelogSeq() uint64 { return m.CL.Seq }

// selEntry is one active query's predicate on this stream.
type selEntry struct {
	slot int
	id   int // engine query ID, for quarantine attribution
	pred expr.Predicate
}

// predicateHook is the fault-injection seam for predicate evaluation: the
// engine installs the configured fault plan here so a seeded schedule can
// make a specific query's predicate panic deterministically.
type predicateHook interface {
	BeforePredicate(stream, queryID int)
}

// selVersion is the query table in effect from a given event-time.
type selVersion struct {
	from    event.Time
	entries []selEntry
}

// SharedSelection computes each tuple's query-set and appends it as the
// extra column (paper §3.1.2). It keeps the query table versioned by
// event-time so out-of-order tuples are classified against the workload
// that was active at *their* time, which is what makes replays and
// out-of-order processing consistent (§3.3).
type SharedSelection struct {
	spe.BaseLogic
	//lint:ephemeral constructor wiring, identical on the recovered instance
	stream   int // which engine stream this instance filters
	versions []selVersion
	// indexes[i] is the compiled predicate index for versions[i] (DESIGN.md
	// §14); the two slices always have equal length. A nil element means
	// that version classifies through the naive per-entry scan — the only
	// mode when fault injection is active, where the per-entry hook call is
	// the contract.
	//lint:ephemeral derived compiled predicate index, recompiled from the versioned entry table by rebuildIndexes on Restore
	indexes []*selIndex
	// entryPool recycles entry-table backing arrays from watermark-pruned
	// versions into future changelogs, bounding control-path churn.
	//lint:ephemeral control-path scratch: recycled entry-slice capacity, content dead
	entryPool [][]selEntry //lint:pooled freelist recycled entry-slice backings
	// delScratch is the deletion lookup reused across changelogs with large
	// Deleted sets; cleared after each use.
	//lint:ephemeral control-path scratch, cleared after every changelog
	delScratch map[int]struct{} //lint:pooled scratch per-changelog deletion lookup scratch
	//lint:ephemeral constructor wiring (metrics sink)
	metrics *OpMetrics
	//lint:ephemeral constructor wiring (allowed-lateness config)
	lateness event.Time
	wm       event.Time
	// qsTmp is the per-tuple query-set scratch: predicates set bits here
	// and the emitted tuple gets a right-sized Clone, so wide query sets
	// (>64 slots) cost one allocation per emitted tuple instead of one per
	// spill growth, and narrow sets cost none.
	//lint:ephemeral per-tuple scratch, rebuilt from zero on the next tuple
	qsTmp bitset.Bits //lint:pooled scratch per-tuple query-set scratch
	// onPredPanic, when set, receives predicate-evaluation panics so the
	// engine can count strikes and quarantine the offending query instead of
	// letting one bad ad-hoc predicate take down the shared pipeline.
	//lint:ephemeral supervision hook wired by the engine, not stream state
	onPredPanic func(queryID int, v any)
	// faultHook, when set, runs before each predicate evaluation (seeded
	// fault injection).
	//lint:ephemeral test-only fault injection hook
	faultHook predicateHook
}

// NewSharedSelection constructs the logic for one instance.
func NewSharedSelection(stream int, lateness event.Time, m *OpMetrics) *SharedSelection {
	return &SharedSelection{
		stream:   stream,
		versions: []selVersion{{from: event.MinTime}},
		// The empty initial table gets a (trivial) compiled index so the
		// versions/indexes alignment invariant holds from birth; the fault
		// hook, installed later, only affects tables built after it.
		indexes: []*selIndex{buildSelIndex(nil)},
		metrics:  m,
		lateness: lateness,
		wm:       event.MinTime,
	}
}

// versionAt locates the table version in effect at event-time t.
//
//lint:hotpath
func (s *SharedSelection) versionAt(t event.Time) int {
	//lint:ignore hotalloc sort.Search does not retain its predicate; the closure is stack-allocated
	i := sort.Search(len(s.versions), func(i int) bool { return s.versions[i].from > t }) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// OnTuple computes the tuple's query-set — through the version's compiled
// predicate index when present, else the naive per-entry scan — and emits
// the tuple with the set appended; tuples interesting to no query are
// dropped at the earliest possible point.
//
//lint:hotpath
func (s *SharedSelection) OnTuple(_ int, t event.Tuple, out *spe.Emitter) {
	tick := s.metrics.start()
	vi := s.versionAt(t.Time)
	v := &s.versions[vi]
	s.qsTmp.Reset()
	if ix := s.indexes[vi]; ix != nil {
		ix.classify(s, v, &t, &s.qsTmp)
	} else {
		s.scanEntries(v, &t, &s.qsTmp)
	}
	s.metrics.QuerySetGen.observe(tick, s.metrics)
	if s.qsTmp.IsEmpty() {
		atomic.AddUint64(&s.metrics.Dropped, 1)
		return
	}
	t.QuerySet = s.qsTmp.Clone()
	t.Stream = uint8(s.stream)
	atomic.AddUint64(&s.metrics.Selected, 1)
	out.EmitTuple(t)
}

// scanEntries is the naive per-entry classification: every active predicate
// evaluated behind its own isolation boundary. Retained as the reference
// implementation (the property tests assert the index agrees bit for bit)
// and as the active path under fault injection, where the per-entry
// BeforePredicate call is the contract.
//
//lint:hotpath
func (s *SharedSelection) scanEntries(v *selVersion, t *event.Tuple, qs *bitset.Bits) {
	for i := range v.entries {
		e := &v.entries[i]
		if s.evalEntry(e, t) {
			qs.Set(e.slot)
		}
	}
}

// evalEntry evaluates one predicate, converting a panic (a buggy ad-hoc
// predicate or an injected fault) into a non-match reported to the engine.
// Functional isolation: a panicking predicate affects only its own query's
// results, never the co-hosted queries sharing this instance.
func (s *SharedSelection) evalEntry(e *selEntry, t *event.Tuple) (matched bool) {
	//lint:ignore hotalloc deliberate: the recover closure is the isolation boundary that keeps a panicking ad-hoc predicate from poisoning co-hosted queries; one closure per evaluation is the price of that containment
	defer func() {
		if pv := recover(); pv != nil {
			matched = false
			if s.onPredPanic != nil {
				s.onPredPanic(e.id, pv)
			}
		}
	}()
	if s.faultHook != nil {
		s.faultHook.BeforePredicate(s.stream, e.id)
	}
	return e.pred.Eval(t)
}

// smallDeleteScan bounds the deletion-set size handled by a linear probe of
// the Deleted slice; larger sets build the reusable lookup map instead.
const smallDeleteScan = 8

// entryPoolCap bounds how many pruned entry-table backings are kept for
// reuse.
const entryPoolCap = 8

// OnChangelog installs the new query table version and compiles its
// predicate index (control path: the index build runs here, never per
// tuple). The common ad-hoc case — creations only, no deletions — copies
// the previous table without building any deletion set, into capacity
// recycled from watermark-pruned versions.
func (s *SharedSelection) OnChangelog(payload any, at event.Time, _ *spe.Emitter) {
	msg := payload.(*ChangelogMsg)
	cur := &s.versions[len(s.versions)-1]
	next := selVersion{from: at, entries: s.takeEntries(len(cur.entries) + len(msg.CL.Created))}
	switch {
	case len(msg.CL.Deleted) == 0:
		next.entries = append(next.entries, cur.entries...)
	case len(msg.CL.Deleted) <= smallDeleteScan:
		for _, e := range cur.entries {
			if !slotDeleted(msg.CL, e.slot) {
				next.entries = append(next.entries, e)
			}
		}
	default:
		if s.delScratch == nil {
			s.delScratch = make(map[int]struct{}, len(msg.CL.Deleted))
		}
		for _, d := range msg.CL.Deleted {
			s.delScratch[d.Slot] = struct{}{}
		}
		for _, e := range cur.entries {
			if _, del := s.delScratch[e.slot]; !del {
				next.entries = append(next.entries, e)
			}
		}
		clear(s.delScratch)
	}
	for _, c := range msg.CL.Created {
		q := msg.Defs[c.Query]
		if q == nil || s.stream >= q.Arity {
			continue // query does not read this stream
		}
		next.entries = append(next.entries, selEntry{slot: c.Slot, id: c.Query, pred: q.Predicates[s.stream]})
	}
	s.versions = append(s.versions, next)
	s.indexes = append(s.indexes, s.buildIndex(next.entries))
}

func slotDeleted(cl *changelog.Changelog, slot int) bool {
	for _, d := range cl.Deleted {
		if d.Slot == slot {
			return true
		}
	}
	return false
}

// takeEntries returns an empty entry slice with at least the given
// capacity, recycling a pruned version's backing when one fits.
func (s *SharedSelection) takeEntries(capNeed int) []selEntry {
	for i := len(s.entryPool) - 1; i >= 0; i-- {
		if cap(s.entryPool[i]) >= capNeed {
			e := s.entryPool[i][:0]
			s.entryPool[i] = s.entryPool[len(s.entryPool)-1]
			s.entryPool[len(s.entryPool)-1] = nil
			s.entryPool = s.entryPool[:len(s.entryPool)-1]
			return e
		}
	}
	if capNeed < 4 {
		capNeed = 4
	}
	return make([]selEntry, 0, capNeed)
}

// buildIndex compiles entries into a predicate index, or nil when fault
// injection is active: the injected hook must run before every per-entry
// predicate evaluation, so the naive scan is the contract there.
func (s *SharedSelection) buildIndex(entries []selEntry) *selIndex {
	if s.faultHook != nil {
		return nil
	}
	if s.metrics != nil {
		atomic.AddUint64(&s.metrics.IndexBuilds, 1)
	}
	return buildSelIndex(entries)
}

// rebuildIndexes recompiles every version's index from its entry table:
// the repopulation path for the derived indexes field, called by Restore.
func (s *SharedSelection) rebuildIndexes() {
	s.indexes = make([]*selIndex, len(s.versions))
	for i := range s.versions {
		s.indexes[i] = s.buildIndex(s.versions[i].entries)
	}
}

// installTable replaces the whole table with one version active from
// MinTime (benchmarks and tests; production tables arrive via OnChangelog).
func (s *SharedSelection) installTable(entries []selEntry) {
	s.versions = []selVersion{{from: event.MinTime, entries: entries}}
	s.rebuildIndexes()
}

// IndexStats reports the compiled-index composition of the newest table
// version (zero when that version runs the scan path). Tests, benchmarks,
// and QoS reporting; call at a quiescent point like ActiveEntries.
func (s *SharedSelection) IndexStats() SelIndexStats {
	if ix := s.indexes[len(s.indexes)-1]; ix != nil {
		return ix.stats
	}
	return SelIndexStats{}
}

// OnWatermark prunes table versions that no in-flight tuple can reference,
// recycling their entry backings into the changelog pool.
func (s *SharedSelection) OnWatermark(wm event.Time, _ *spe.Emitter) {
	s.wm = wm
	horizon := wm - s.lateness
	// Keep the last version with from ≤ horizon and everything later.
	i := sort.Search(len(s.versions), func(i int) bool { return s.versions[i].from > horizon }) - 1
	if i > 0 {
		n := len(s.versions)
		for j := 0; j < i; j++ {
			if e := s.versions[j].entries; cap(e) > 0 && len(s.entryPool) < entryPoolCap {
				clear(e[:cap(e)])
				s.entryPool = append(s.entryPool, e[:0])
			}
			s.versions[j] = selVersion{}
		}
		copy(s.versions, s.versions[i:])
		copy(s.indexes, s.indexes[i:])
		for j := n - i; j < n; j++ {
			s.versions[j] = selVersion{}
			s.indexes[j] = nil
		}
		s.versions = s.versions[:n-i]
		s.indexes = s.indexes[:n-i]
	}
}

// ActiveEntries reports the current predicate count (tests/metrics).
func (s *SharedSelection) ActiveEntries() int {
	return len(s.versions[len(s.versions)-1].entries)
}

// OpMetrics aggregates shared-operator cost counters across instances; all
// exported fields are atomics. Component timings (Fig. 18a) are sampled:
// every sampleEvery-th operation is timed and scaled up, using the engine's
// injected clock so simulated-time tests stay deterministic.
type OpMetrics struct {
	Selected   uint64 // tuples that matched ≥1 query
	Dropped    uint64 // tuples matching no query
	Late       uint64 // tuples behind an evicted slice
	JoinedOut  uint64 // join results produced
	AggOut     uint64 // aggregation rows produced
	PairsDone  uint64 // slice pairs joined (cache misses)
	PairsReuse uint64 // slice-pair results reused from cache
	// IndexBuilds counts predicate-index compilations (changelog/restore):
	// all index construction cost lands here, never on the tuple path.
	IndexBuilds uint64

	QuerySetGen componentTimer // shared selection predicate evaluation
	BitsetOps   componentTimer // masking/intersection during triggers
	RouterCopy  componentTimer // per-query result copying in the router

	ops      uint64       // sampling clock
	nowNanos func() int64 // injected clock; nil disables timing samples
}

// NewOpMetrics creates a metrics block sampling component timings with the
// given clock (the engine passes its Config.NowNanos). A zero-value
// OpMetrics still counts but never samples timings.
func NewOpMetrics(nowNanos func() int64) *OpMetrics {
	return &OpMetrics{nowNanos: nowNanos}
}

const sampleEvery = 64

// start returns a clock tick on sampled operations, else 0.
func (m *OpMetrics) start() int64 {
	if m == nil || m.nowNanos == nil {
		return 0
	}
	if atomic.AddUint64(&m.ops, 1)%sampleEvery != 0 {
		return 0
	}
	return m.nowNanos()
}

type componentTimer struct {
	Nanos uint64 // sampled nanos, scaled by sampleEvery
	Count uint64
}

func (c *componentTimer) observe(tick int64, m *OpMetrics) {
	if m == nil {
		return
	}
	atomic.AddUint64(&c.Count, 1)
	if tick == 0 {
		return
	}
	d := m.nowNanos() - tick
	if d < 0 {
		d = 0
	}
	atomic.AddUint64(&c.Nanos, uint64(d)*sampleEvery)
}

// NanosEstimate returns the scaled nanosecond estimate for the component.
func (c *componentTimer) NanosEstimate() uint64 { return atomic.LoadUint64(&c.Nanos) }
