package core

import (
	"sort"
	"sync/atomic"

	"astream/internal/bitset"
	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/spe"
)

// StoreSwitch is the §3.2.3 marker the shared session attaches to a
// changelog when the active-query count crosses the grouped-store threshold:
// downstream joins switch every slice's data structure and resume.
type StoreSwitch uint8

const (
	// SwitchNone leaves slice stores as they are.
	SwitchNone StoreSwitch = iota
	// SwitchGrouped switches slice stores to query-set grouping.
	SwitchGrouped
	// SwitchList switches slice stores to flat lists.
	SwitchList
)

// ChangelogMsg is the changelog payload woven through the engine's streams:
// the slot-level changelog plus the compiled definitions of the queries it
// creates. Operators treat it as immutable shared state.
type ChangelogMsg struct {
	CL *changelog.Changelog
	// Defs maps created query IDs to their compiled definitions.
	Defs map[int]*Query
	// Switch, when not SwitchNone, is the §3.2.3 store-layout marker.
	Switch StoreSwitch
}

// ChangelogSeq implements spe.ChangelogPayload.
func (m *ChangelogMsg) ChangelogSeq() uint64 { return m.CL.Seq }

// selEntry is one active query's predicate on this stream.
type selEntry struct {
	slot int
	id   int // engine query ID, for quarantine attribution
	pred expr.Predicate
}

// predicateHook is the fault-injection seam for predicate evaluation: the
// engine installs the configured fault plan here so a seeded schedule can
// make a specific query's predicate panic deterministically.
type predicateHook interface {
	BeforePredicate(stream, queryID int)
}

// selVersion is the query table in effect from a given event-time.
type selVersion struct {
	from    event.Time
	entries []selEntry
}

// SharedSelection computes each tuple's query-set and appends it as the
// extra column (paper §3.1.2). It keeps the query table versioned by
// event-time so out-of-order tuples are classified against the workload
// that was active at *their* time, which is what makes replays and
// out-of-order processing consistent (§3.3).
type SharedSelection struct {
	spe.BaseLogic
	//lint:ephemeral constructor wiring, identical on the recovered instance
	stream   int // which engine stream this instance filters
	versions []selVersion
	//lint:ephemeral constructor wiring (metrics sink)
	metrics *OpMetrics
	//lint:ephemeral constructor wiring (allowed-lateness config)
	lateness event.Time
	wm       event.Time
	// qsTmp is the per-tuple query-set scratch: predicates set bits here
	// and the emitted tuple gets a right-sized Clone, so wide query sets
	// (>64 slots) cost one allocation per emitted tuple instead of one per
	// spill growth, and narrow sets cost none.
	//lint:ephemeral per-tuple scratch, rebuilt from zero on the next tuple
	qsTmp bitset.Bits
	// onPredPanic, when set, receives predicate-evaluation panics so the
	// engine can count strikes and quarantine the offending query instead of
	// letting one bad ad-hoc predicate take down the shared pipeline.
	//lint:ephemeral supervision hook wired by the engine, not stream state
	onPredPanic func(queryID int, v any)
	// faultHook, when set, runs before each predicate evaluation (seeded
	// fault injection).
	//lint:ephemeral test-only fault injection hook
	faultHook predicateHook
}

// NewSharedSelection constructs the logic for one instance.
func NewSharedSelection(stream int, lateness event.Time, m *OpMetrics) *SharedSelection {
	return &SharedSelection{
		stream:   stream,
		versions: []selVersion{{from: event.MinTime}},
		metrics:  m,
		lateness: lateness,
		wm:       event.MinTime,
	}
}

func (s *SharedSelection) tableAt(t event.Time) *selVersion {
	//lint:ignore hotalloc sort.Search does not retain its predicate; the closure is stack-allocated
	i := sort.Search(len(s.versions), func(i int) bool { return s.versions[i].from > t }) - 1
	if i < 0 {
		i = 0
	}
	return &s.versions[i]
}

// OnTuple evaluates every active predicate and emits the tuple with its
// query-set; tuples interesting to no query are dropped at the earliest
// possible point.
//
//lint:hotpath
func (s *SharedSelection) OnTuple(_ int, t event.Tuple, out *spe.Emitter) {
	tick := s.metrics.start()
	v := s.tableAt(t.Time)
	s.qsTmp.Reset()
	for i := range v.entries {
		e := &v.entries[i]
		if s.evalEntry(e, &t) {
			s.qsTmp.Set(e.slot)
		}
	}
	s.metrics.QuerySetGen.observe(tick, s.metrics)
	if s.qsTmp.IsEmpty() {
		atomic.AddUint64(&s.metrics.Dropped, 1)
		return
	}
	t.QuerySet = s.qsTmp.Clone()
	t.Stream = uint8(s.stream)
	atomic.AddUint64(&s.metrics.Selected, 1)
	out.EmitTuple(t)
}

// evalEntry evaluates one predicate, converting a panic (a buggy ad-hoc
// predicate or an injected fault) into a non-match reported to the engine.
// Functional isolation: a panicking predicate affects only its own query's
// results, never the co-hosted queries sharing this instance.
func (s *SharedSelection) evalEntry(e *selEntry, t *event.Tuple) (matched bool) {
	//lint:ignore hotalloc deliberate: the recover closure is the isolation boundary that keeps a panicking ad-hoc predicate from poisoning co-hosted queries; one closure per evaluation is the price of that containment
	defer func() {
		if pv := recover(); pv != nil {
			matched = false
			if s.onPredPanic != nil {
				s.onPredPanic(e.id, pv)
			}
		}
	}()
	if s.faultHook != nil {
		s.faultHook.BeforePredicate(s.stream, e.id)
	}
	return e.pred.Eval(t)
}

// OnChangelog installs the new query table version.
func (s *SharedSelection) OnChangelog(payload any, at event.Time, _ *spe.Emitter) {
	msg := payload.(*ChangelogMsg)
	cur := s.versions[len(s.versions)-1]
	deleted := map[int]bool{}
	for _, d := range msg.CL.Deleted {
		deleted[d.Slot] = true
	}
	next := selVersion{from: at, entries: make([]selEntry, 0, len(cur.entries)+len(msg.CL.Created))}
	for _, e := range cur.entries {
		if !deleted[e.slot] {
			next.entries = append(next.entries, e)
		}
	}
	for _, c := range msg.CL.Created {
		q := msg.Defs[c.Query]
		if q == nil || s.stream >= q.Arity {
			continue // query does not read this stream
		}
		next.entries = append(next.entries, selEntry{slot: c.Slot, id: c.Query, pred: q.Predicates[s.stream]})
	}
	s.versions = append(s.versions, next)
}

// OnWatermark prunes table versions that no in-flight tuple can reference.
func (s *SharedSelection) OnWatermark(wm event.Time, _ *spe.Emitter) {
	s.wm = wm
	horizon := wm - s.lateness
	// Keep the last version with from ≤ horizon and everything later.
	i := sort.Search(len(s.versions), func(i int) bool { return s.versions[i].from > horizon }) - 1
	if i > 0 {
		s.versions = append(s.versions[:0], s.versions[i:]...)
	}
}

// ActiveEntries reports the current predicate count (tests/metrics).
func (s *SharedSelection) ActiveEntries() int {
	return len(s.versions[len(s.versions)-1].entries)
}

// OpMetrics aggregates shared-operator cost counters across instances; all
// exported fields are atomics. Component timings (Fig. 18a) are sampled:
// every sampleEvery-th operation is timed and scaled up, using the engine's
// injected clock so simulated-time tests stay deterministic.
type OpMetrics struct {
	Selected   uint64 // tuples that matched ≥1 query
	Dropped    uint64 // tuples matching no query
	Late       uint64 // tuples behind an evicted slice
	JoinedOut  uint64 // join results produced
	AggOut     uint64 // aggregation rows produced
	PairsDone  uint64 // slice pairs joined (cache misses)
	PairsReuse uint64 // slice-pair results reused from cache

	QuerySetGen componentTimer // shared selection predicate evaluation
	BitsetOps   componentTimer // masking/intersection during triggers
	RouterCopy  componentTimer // per-query result copying in the router

	ops      uint64       // sampling clock
	nowNanos func() int64 // injected clock; nil disables timing samples
}

// NewOpMetrics creates a metrics block sampling component timings with the
// given clock (the engine passes its Config.NowNanos). A zero-value
// OpMetrics still counts but never samples timings.
func NewOpMetrics(nowNanos func() int64) *OpMetrics {
	return &OpMetrics{nowNanos: nowNanos}
}

const sampleEvery = 64

// start returns a clock tick on sampled operations, else 0.
func (m *OpMetrics) start() int64 {
	if m == nil || m.nowNanos == nil {
		return 0
	}
	if atomic.AddUint64(&m.ops, 1)%sampleEvery != 0 {
		return 0
	}
	return m.nowNanos()
}

type componentTimer struct {
	Nanos uint64 // sampled nanos, scaled by sampleEvery
	Count uint64
}

func (c *componentTimer) observe(tick int64, m *OpMetrics) {
	if m == nil {
		return
	}
	atomic.AddUint64(&c.Count, 1)
	if tick == 0 {
		return
	}
	d := m.nowNanos() - tick
	if d < 0 {
		d = 0
	}
	atomic.AddUint64(&c.Nanos, uint64(d)*sampleEvery)
}

// NanosEstimate returns the scaled nanosecond estimate for the component.
func (c *componentTimer) NanosEstimate() uint64 { return atomic.LoadUint64(&c.Nanos) }
