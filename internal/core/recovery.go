package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/spe"
)

// This file is the engine's failure and recovery surface: recording
// supervised instance failures, quarantining queries whose own predicates
// keep panicking, and snapshotting/restoring the engine-level control state
// that operator snapshots do not cover (registry, changelog clock, ingress
// watermarks, query definitions). A checkpoint runner combines the two: at
// barrier K it stores every operator snapshot plus one ControlSnapshot, and
// recovery rebuilds a fresh engine from both before replaying only the log
// suffix past K.

// onInstanceFailure is the spe.FailureSink for every deployment: record,
// then notify the configured callback from the failing goroutine.
func (e *Engine) onInstanceFailure(f spe.InstanceFailure) {
	e.failMu.Lock()
	e.failures = append(e.failures, f)
	e.failMu.Unlock()
	if cb := e.cfg.OnInstanceFailure; cb != nil {
		cb(f)
	}
}

// InstanceFailures returns every recorded instance failure.
func (e *Engine) InstanceFailures() []spe.InstanceFailure {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	out := make([]spe.InstanceFailure, len(e.failures))
	copy(out, e.failures)
	return out
}

// quarantineStrikes is how many predicate panics a query gets before the
// engine stops it. The panic is already isolated per evaluation (the tuple
// just doesn't match); quarantine removes the repeat offender so the shared
// pipeline stops paying for it.
const quarantineStrikes = 3

// predicatePanicked is SharedSelection's panic callback: count a strike
// against the query and stop it once it exhausts them. Safe to call from
// operator goroutines — StopQuery only takes mutexes and queues the deletion
// changelog for the ingestion path to weave in.
func (e *Engine) predicatePanicked(queryID int, _ any) {
	e.failMu.Lock()
	if e.quarantined[queryID] {
		e.failMu.Unlock()
		return
	}
	e.strikes[queryID]++
	if e.strikes[queryID] < quarantineStrikes {
		e.failMu.Unlock()
		return
	}
	e.quarantined[queryID] = true
	e.failMu.Unlock()
	// Already-stopped is fine; the strike count only grows while the
	// query's entries are still installed.
	//lint:ignore errsink quarantine is best-effort: a concurrent StopQuery losing the race is the desired end state
	_, _ = e.StopQuery(queryID)
}

// Quarantined returns the IDs of queries stopped for repeated predicate
// panics, sorted.
func (e *Engine) Quarantined() []int {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	out := make([]int, 0, len(e.quarantined))
	for id := range e.quarantined {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ActiveQueryIDs returns the IDs of currently running queries, sorted.
func (e *Engine) ActiveQueryIDs() []int {
	e.defsMu.RLock()
	out := make([]int, 0, len(e.defs))
	for id := range e.defs {
		out = append(out, id)
	}
	e.defsMu.RUnlock()
	sort.Ints(out)
	return out
}

// ControlSnapshot serializes the engine-level control state at a completed
// barrier. Must be called from the ingestion goroutine's quiescent point
// after every instance snapshot for the barrier has been collected (the
// checkpoint runner's await), so all of this state is stable.
func (e *Engine) ControlSnapshot() []byte {
	b := snapU8(nil, opSnapshotVersion)
	b = snapBytes(b, e.registry.Snapshot())
	b = snapU32(b, uint32(len(e.ingress)))
	e.clTimes.mu.Lock()
	highs := append([]event.Time(nil), e.clTimes.highs...)
	e.clTimes.mu.Unlock()
	for i, ing := range e.ingress {
		b = snapI64(b, int64(highs[i]))
		b = snapI64(b, int64(ing.lastTime))
		b = snapI64(b, int64(ing.lastWM))
	}
	b = snapI64(b, atomic.LoadInt64(&e.nextID))
	b = snapI64(b, atomic.LoadInt64(&e.maxHorizon))
	b = snapI64(b, int64(atomic.LoadInt32(&e.storeHint)))
	ids := e.ActiveQueryIDs()
	b = snapU32(b, uint32(len(ids)))
	e.defsMu.RLock()
	for _, id := range ids {
		b = snapQuery(b, e.defs[id])
	}
	e.defsMu.RUnlock()
	return b
}

// RestoreControl rebuilds the engine-level control state from a
// ControlSnapshot. Must be called on a freshly constructed engine before any
// input is pushed; it also primes every instance's changelog counter so
// replayed changelogs resume at the restored registry's sequence.
func (e *Engine) RestoreControl(snapshot []byte) error {
	r := &snapR{b: snapshot}
	if v := r.u8("control version"); r.err == nil && v != opSnapshotVersion {
		return fmt.Errorf("core: control snapshot version %d, want %d", v, opSnapshotVersion)
	}
	regBytes := r.bytes("control registry")
	if r.err != nil {
		return r.err
	}
	reg, err := changelog.RegistryFromSnapshot(regBytes)
	if err != nil {
		return err
	}
	if n := int(r.u32("control stream count")); r.err == nil && n != len(e.ingress) {
		return fmt.Errorf("core: control snapshot has %d streams, engine has %d", n, len(e.ingress))
	}
	highs := make([]event.Time, len(e.ingress))
	lastTimes := make([]event.Time, len(e.ingress))
	lastWMs := make([]event.Time, len(e.ingress))
	for i := range e.ingress {
		highs[i] = event.Time(r.i64("control high"))
		lastTimes[i] = event.Time(r.i64("control lastTime"))
		lastWMs[i] = event.Time(r.i64("control lastWM"))
	}
	nextID := r.i64("control nextID")
	maxHorizon := r.i64("control maxHorizon")
	storeHint := r.i64("control storeHint")
	nq := r.count("control query count", 1)
	defs := make(map[int]*Query, nq)
	for i := 0; i < nq && r.err == nil; i++ {
		q := readSnapQuery(r)
		if r.err == nil {
			defs[q.ID] = q
		}
	}
	if err := r.finish("control"); err != nil {
		return err
	}

	e.registry = reg
	e.clTimes.mu.Lock()
	copy(e.clTimes.highs, highs)
	e.clTimes.mu.Unlock()
	for i, ing := range e.ingress {
		ing.lastTime = lastTimes[i]
		ing.lastWM = lastWMs[i]
	}
	atomic.StoreInt64(&e.nextID, nextID)
	atomic.StoreInt64(&e.maxHorizon, maxHorizon)
	atomic.StoreInt32(&e.storeHint, int32(storeHint))
	e.defsMu.Lock()
	e.defs = defs
	e.defsMu.Unlock()
	e.job.PrimeChangelogSeq(reg.LastSeq())
	return nil
}

// RestoreOperators restores every shared-operator instance from fetched
// snapshot chains, keyed exactly as the runtime reported them: (node name,
// instance). A chain is one full snapshot followed by zero or more
// incremental deltas in application order (the in-memory store always
// fetches length-one chains; the durable backend resolves base + deltas).
// Must be called before any input is pushed; the instance goroutines only
// touch their logic after their first inbox receive, so the channel send
// orders these writes safely (embedded chains are driven by the ingestion
// goroutine itself).
func (e *Engine) RestoreOperators(fetch func(op string, instance int) ([][]byte, bool)) error {
	restore := func(op string, instance int, l spe.Restorable) error {
		chain, ok := fetch(op, instance)
		if !ok || len(chain) == 0 {
			return fmt.Errorf("core: no snapshot for %s[%d]", op, instance)
		}
		if err := l.Restore(chain[0]); err != nil {
			return fmt.Errorf("core: restore %s[%d]: %w", op, instance, err)
		}
		for i, delta := range chain[1:] {
			dr, ok := l.(spe.DeltaRestorable)
			if !ok {
				return fmt.Errorf("core: %s[%d] snapshot chain has %d deltas but the operator cannot apply them", op, instance, len(chain)-1)
			}
			if err := dr.RestoreDelta(delta); err != nil {
				return fmt.Errorf("core: restore %s[%d] delta %d/%d: %w", op, instance, i+1, len(chain)-1, err)
			}
		}
		return nil
	}
	for i, insts := range e.selLogics {
		name := fmt.Sprintf("select-%d", i)
		for inst, l := range insts {
			if err := restore(name, inst, l); err != nil {
				return err
			}
		}
	}
	for k, insts := range e.joinLogics {
		name := fmt.Sprintf("join-%d", k)
		for inst, l := range insts {
			if err := restore(name, inst, l); err != nil {
				return err
			}
		}
	}
	for inst, l := range e.aggLogics {
		if err := restore("aggregate", inst, l); err != nil {
			return err
		}
	}
	return nil
}
