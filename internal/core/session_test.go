package core

import (
	"sync"
	"testing"
	"time"

	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// TestSessionBatchTimeout verifies the shared session's timeout path
// (§3.1.1): with a large batch size, a lone request is released when the
// timeout fires, not immediately.
func TestSessionBatchTimeout(t *testing.T) {
	eng, err := NewEngine(Config{
		Streams: 1, Parallelism: 1,
		BatchSize: 100, BatchTimeout: 30 * time.Millisecond,
		WatermarkEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, ack, err := eng.Submit(aggQ(window.TumblingSpec(10), sqlstream.AggCount, -1, expr.True()), nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ack:
		if el := time.Since(start); el < 20*time.Millisecond {
			t.Fatalf("ack after %v: batch released before the timeout", el)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout flush never happened")
	}
	recs := eng.DeployRecords()
	if len(recs) != 1 || recs[0].Latency < 20*time.Millisecond {
		t.Fatalf("deploy record = %+v, want ≥ timeout", recs)
	}
	eng.Drain()
}

// TestSessionBatchSizeFlush verifies the batch-size path: the batch is
// released as soon as it fills, without waiting for the timeout.
func TestSessionBatchSizeFlush(t *testing.T) {
	eng, err := NewEngine(Config{
		Streams: 1, Parallelism: 1,
		BatchSize: 3, BatchTimeout: time.Hour,
		WatermarkEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var acks []<-chan struct{}
	for i := 0; i < 3; i++ {
		_, ack, err := eng.Submit(aggQ(window.TumblingSpec(10), sqlstream.AggCount, -1, expr.True()), nil)
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, ack)
	}
	for i, ack := range acks {
		select {
		case <-ack:
		case <-time.After(2 * time.Second):
			t.Fatalf("ack %d not released on batch fill", i)
		}
	}
	// One changelog for all three (same deployment batch).
	if eng.registry.LastSeq() != 1 {
		t.Fatalf("changelog seq = %d, want 1 (single batch)", eng.registry.LastSeq())
	}
	eng.Drain()
}

// TestSubmitAfterDrainFails verifies lifecycle errors.
func TestSubmitAfterDrainFails(t *testing.T) {
	eng, err := NewEngine(Config{Streams: 1, BatchSize: 1, WatermarkEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if _, _, err := eng.Submit(aggQ(window.TumblingSpec(10), sqlstream.AggCount, -1, expr.True()), nil); err == nil {
		t.Fatal("submit after drain must fail")
	}
	// Drain is idempotent.
	eng.Drain()
}

// TestRouterDelivery exercises Register/Unregister/Each/Deliver directly.
func TestRouterDelivery(t *testing.T) {
	r := NewRouter(&OpMetrics{})
	var mu sync.Mutex
	got := map[int]int{}
	mk := func(id int) Sink {
		return SinkFunc(func(res Result) {
			mu.Lock()
			got[id]++
			mu.Unlock()
		})
	}
	r.Register(1, mk(1))
	r.Register(2, mk(2))
	r.Deliver(Result{QueryID: 1})
	r.Deliver(Result{QueryID: 2})
	r.Deliver(Result{QueryID: 3}) // no sink: dropped silently
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("delivery counts = %v", got)
	}
	n := 0
	r.Each(func(int, Sink) { n++ })
	if n != 2 {
		t.Fatalf("Each visited %d sinks", n)
	}
	r.Unregister(1)
	r.Deliver(Result{QueryID: 1})
	if got[1] != 1 {
		t.Fatal("unregistered sink still receiving")
	}
	if r.SinkFor(2) == nil || r.SinkFor(1) != nil {
		t.Fatal("SinkFor wrong")
	}
}

// TestCountingSink verifies the default sink's counters and latency
// sampling.
func TestCountingSink(t *testing.T) {
	now := int64(1000)
	s := NewCountingSink(func() int64 { return now }, 1)
	for i := 0; i < 10; i++ {
		s.OnResult(Result{IngestNanos: 400})
	}
	if s.Results() != 10 {
		t.Fatalf("results = %d", s.Results())
	}
	if s.MeanLatencyNanos() != 600 {
		t.Fatalf("mean latency = %d, want 600", s.MeanLatencyNanos())
	}
	// Zero ingest time → no latency sample.
	s2 := NewCountingSink(func() int64 { return now }, 1)
	s2.OnResult(Result{})
	if s2.MeanLatencyNanos() != 0 {
		t.Fatal("latency sampled without ingest time")
	}
	// sampleEvery < 1 clamps to 1.
	s3 := NewCountingSink(func() int64 { return now }, 0)
	s3.OnResult(Result{IngestNanos: 999})
	if s3.Results() != 1 {
		t.Fatal("clamped sink broken")
	}
}

// TestCompileSQLErrors covers the compile-time rejections.
func TestCompileSQLErrors(t *testing.T) {
	parse := func(src string) error {
		sq, err := sqlstream.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		_, err = CompileSQL(sq)
		return err
	}
	if err := parse(`SELECT * FROM A, B [RANGE 5] WHERE A.F0 = B.F0`); err == nil {
		t.Error("non-key join condition must be rejected")
	}
	if err := parse(`SELECT SUM(A.F0) FROM A [RANGE 5] GROUPBY A.KEY`); err != nil {
		t.Errorf("valid aggregation rejected: %v", err)
	}
}

// TestKindStrings covers the Stringers.
func TestKindStrings(t *testing.T) {
	if KindSelection.String() != "selection" || KindJoin.String() != "join" ||
		KindAggregation.String() != "aggregation" || KindComplex.String() != "complex" {
		t.Fatal("Kind strings")
	}
}

// TestChangelogTimes covers the session's changelog-time tracker.
func TestChangelogTimes(t *testing.T) {
	ct := newChangelogTimes(2)
	if ct.next() != 1 {
		t.Fatalf("empty next = %v, want 1", ct.next())
	}
	ct.observe(0, 10)
	ct.observe(1, 7)
	if ct.next() != 11 {
		t.Fatalf("next = %v, want 11", ct.next())
	}
	ct.observe(1, event.Time(50))
	if ct.next() != 51 {
		t.Fatalf("next = %v, want 51", ct.next())
	}
}
