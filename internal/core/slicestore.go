package core

import (
	"sort"

	"astream/internal/bitset"
	"astream/internal/event"
)

// StoreMode selects how a slice stores its tuples (paper §3.1.4, §3.2.3).
type StoreMode uint8

const (
	// StoreAdaptive starts grouped and switches to a flat list when the
	// average group size drops below two — the paper's heuristic: with
	// many concurrent queries the number of distinct query-sets explodes
	// and most groups hold a single tuple.
	StoreAdaptive StoreMode = iota
	// StoreGrouped always groups tuples by query-set.
	StoreGrouped
	// StoreList always keeps a flat list.
	StoreList
)

func (m StoreMode) String() string {
	switch m {
	case StoreAdaptive:
		return "adaptive"
	case StoreGrouped:
		return "grouped"
	case StoreList:
		return "list"
	default:
		return "store?"
	}
}

// adaptiveSwitchThreshold is the mean-group-size below which an adaptive
// store degenerates to a list (paper: "if the average is less than two").
const adaptiveSwitchThreshold = 2.0

// minTuplesForSwitch avoids flapping on nearly-empty slices.
const minTuplesForSwitch = 16

// qsIndex maps canonical query-set keys to group payloads. Lookups on the
// hot path are allocation-free: single-word query-sets (≤64 slots) index a
// uint64 map directly; wider sets encode into a reused scratch buffer and
// use the compiler's m[string(buf)] no-alloc map access. The group list is
// kept in canonical key order incrementally (binary insert on the rare
// group-creation path) so every iteration over groups — join kernels, store
// flattening, window firing — is deterministic without per-emission sorts.
type qsIndex[G any] struct {
	byWord map[uint64]*G
	byStr  map[string]*G
	order  []*G
	keys   []bitset.Key // parallel to order, ascending by Key.Less
	keyBuf []byte //lint:pooled scratch reused key-encoding scratch buffer
}

func newQSIndex[G any]() *qsIndex[G] {
	//lint:ignore hotalloc cold: one index per slice payload, created when the slice first sees data
	return &qsIndex[G]{byWord: make(map[uint64]*G), byStr: make(map[string]*G)}
}

func (x *qsIndex[G]) len() int { return len(x.order) }

// get returns the group for qs, or nil. Allocation-free.
func (x *qsIndex[G]) get(qs bitset.Bits) *G {
	if w, ok := qs.KeyWord(); ok {
		return x.byWord[w]
	}
	x.keyBuf = qs.AppendKeyBytes(x.keyBuf[:0])
	return x.byStr[string(x.keyBuf)]
}

// put inserts the group under qs's canonical key, keeping order sorted.
// Called once per distinct query-set (cold path); allocates the string key
// for wide sets here and only here.
func (x *qsIndex[G]) put(qs bitset.Bits, g *G) {
	k := qs.Key()
	if k.S == "" {
		x.byWord[k.W] = g
	} else {
		x.byStr[k.S] = g
	}
	//lint:ignore hotalloc sort.Search does not retain its predicate; the closure is stack-allocated
	i := sort.Search(len(x.keys), func(i int) bool { return k.Less(x.keys[i]) })
	//lint:ignore hotalloc cold: put runs once per distinct query-set group
	x.keys = append(x.keys, bitset.Key{})
	copy(x.keys[i+1:], x.keys[i:])
	x.keys[i] = k
	//lint:ignore hotalloc cold: put runs once per distinct query-set group
	x.order = append(x.order, nil)
	copy(x.order[i+1:], x.order[i:])
	x.order[i] = g
}

// clear empties the index in place, keeping map buckets and slice capacity
// so a rebuilt payload (merge-tree nodes) re-fills without allocating. Wide
// (>64-slot) sets re-pay their string key on the next put; the inline-word
// path stays allocation-free.
func (x *qsIndex[G]) clear() {
	clear(x.byWord)
	clear(x.byStr)
	x.order = x.order[:0]
	x.keys = x.keys[:0]
}

// tupleGroup is one query-set group inside a grouped slice store. Grouping
// lets the join skip whole groups whose query-sets cannot intersect.
type tupleGroup struct {
	qs     bitset.Bits
	tuples []event.Tuple
}

// sliceStore holds the tuples of one slice on one side of a shared join.
type sliceStore struct {
	mode    StoreMode
	grouped bool
	groups  *qsIndex[tupleGroup] // nil when list mode
	list    []event.Tuple
	count   int
}

func newSliceStore(mode StoreMode) *sliceStore {
	s := &sliceStore{mode: mode}
	switch mode {
	case StoreList:
		s.grouped = false
	default:
		s.grouped = true
		s.groups = newQSIndex[tupleGroup]()
	}
	return s
}

// Add inserts a tuple (saved once — no copies inside a slice, paper §3.2.2).
// Steady state allocates nothing: group lookup is key-scratch based and the
// per-group tuple append is amortized.
//
//lint:hotpath
func (s *sliceStore) Add(t event.Tuple) {
	s.count++
	if !s.grouped {
		//lint:ignore hotalloc list-mode store owns the tuples; growth is amortized over the slice's lifetime
		s.list = append(s.list, t)
		return
	}
	g := s.groups.get(t.QuerySet)
	if g == nil {
		//lint:ignore hotalloc cold: runs once per distinct query-set group per slice
		g = &tupleGroup{qs: t.QuerySet.Clone()}
		s.groups.put(g.qs, g)
	}
	//lint:ignore hotalloc per-group tuple storage; growth is amortized over the slice's lifetime
	g.tuples = append(g.tuples, t)
	if s.mode == StoreAdaptive && s.count >= minTuplesForSwitch &&
		float64(s.count) < adaptiveSwitchThreshold*float64(s.groups.len()) {
		s.degenerate()
	}
}

// regroup rebuilds the query-set groups of a list-mode store (the inverse
// marker transition of §3.2.3, taken when the active query count drops back
// under the threshold).
func (s *sliceStore) regroup() {
	if s.grouped {
		return
	}
	s.groups = newQSIndex[tupleGroup]()
	s.grouped = true
	list := s.list
	s.list = nil
	s.count = 0
	for _, t := range list {
		s.Add(t)
	}
}

// setMode switches the store's layout to match a session marker (§3.2.3).
func (s *sliceStore) setMode(m StoreMode) {
	s.mode = m
	switch m {
	case StoreList:
		s.degenerate()
	case StoreGrouped:
		s.regroup()
	}
}

// degenerate flattens a grouped store into list mode (the marker-triggered
// data-structure change of §3.2.3 applies this to all slices at once).
// Groups flatten in canonical key order — a pure function of the stored
// content, so flattening is replay-deterministic.
func (s *sliceStore) degenerate() {
	if !s.grouped {
		return
	}
	//lint:ignore hotalloc marker transition: rebuilding the layout is a one-off O(n) event, not steady state
	s.list = make([]event.Tuple, 0, s.count)
	for _, g := range s.groups.order {
		//lint:ignore hotalloc appends within the exact capacity reserved above
		s.list = append(s.list, g.tuples...)
	}
	s.groups = nil
	s.grouped = false
}

// Len returns the number of stored tuples.
func (s *sliceStore) Len() int { return s.count }

// Grouped reports whether the store is currently in grouped mode.
func (s *sliceStore) Grouped() bool { return s.grouped }

// GroupCount returns the number of query-set groups (0 in list mode).
func (s *sliceStore) GroupCount() int {
	if s.groups == nil {
		return 0
	}
	return s.groups.len()
}

// ForEachGroup visits tuples group-wise in canonical key order. In list mode
// it visits one pseudo group per tuple whose query-set is the tuple's own.
func (s *sliceStore) ForEachGroup(fn func(qs bitset.Bits, tuples []event.Tuple)) {
	if s.grouped {
		for _, g := range s.groups.order {
			fn(g.qs, g.tuples)
		}
		return
	}
	for i := range s.list {
		fn(s.list[i].QuerySet, s.list[i:i+1])
	}
}

// All returns every stored tuple (grouped stores flatten in key order).
func (s *sliceStore) All() []event.Tuple {
	if !s.grouped {
		return s.list
	}
	out := make([]event.Tuple, 0, s.count)
	for _, g := range s.groups.order {
		out = append(out, g.tuples...)
	}
	return out
}

// joinEntry is one build-side tuple in the kernel's hash index. qs points at
// the owning group's query-set (stable for the duration of the kernel) so no
// bitset is copied during the build.
type joinEntry struct {
	t    *event.Tuple
	qs   *bitset.Bits
	next int32 // previous entry with the same key, -1 terminates
}

// joinScratch is the reusable state of the slice ⋈ slice kernel. One
// instance lives on each SharedJoin; after warm-up the kernel allocates
// nothing per pair: the hash index map is cleared (not rebuilt), the entry
// arena is truncated (capacity retained), and the query-set intersection is
// computed in a scratch bitset.
type joinScratch struct {
	heads   map[int64]int32 //lint:pooled scratch cleared hash-index scratch
	entries []joinEntry //lint:pooled scratch truncated entry-arena scratch
	qsTmp   bitset.Bits //lint:pooled scratch query-set intersection scratch
}

// join produces joined tuples for every key-equal pair whose query-sets
// intersect under mask, appending results (which carry qsA ∩ qsB ∩ mask) to
// *out. This is the slice ⋈ slice kernel: the smaller side is hash-indexed,
// group-level query-set tests prune non-intersecting groups wholesale
// (paper §3.1.4). Iteration follows the stores' canonical group order, so
// result order is a pure function of the stored content.
//
//lint:hotpath
func (js *joinScratch) join(a, b *sliceStore, mask bitset.Bits, out *[]event.JoinedTuple) {
	if a.count == 0 || b.count == 0 || mask.IsEmpty() {
		return
	}
	build, probe := a, b
	swapped := false
	if b.count < a.count {
		build, probe = b, a
		swapped = true
	}
	if js.heads == nil {
		//lint:ignore hotalloc warm-up: the scratch hash index is built once and reused across joins
		js.heads = make(map[int64]int32, build.count)
	} else {
		for k := range js.heads {
			delete(js.heads, k)
		}
	}
	js.entries = js.entries[:0]

	// Build: index every mask-relevant build-side tuple by key.
	if build.grouped {
		for _, g := range build.groups.order {
			if !g.qs.Intersects(mask) {
				continue
			}
			for i := range g.tuples {
				js.addEntry(&g.tuples[i], &g.qs)
			}
		}
	} else {
		for i := range build.list {
			t := &build.list[i]
			if !t.QuerySet.Intersects(mask) {
				continue
			}
			js.addEntry(t, &t.QuerySet)
		}
	}
	if len(js.entries) == 0 {
		return
	}

	// Probe group-wise so the group-level query-set test still prunes work.
	if probe.grouped {
		for _, g := range probe.groups.order {
			if !g.qs.Intersects(mask) {
				continue
			}
			for i := range g.tuples {
				js.probeOne(&g.tuples[i], g.qs, mask, swapped, out)
			}
		}
	} else {
		for i := range probe.list {
			pt := &probe.list[i]
			if !pt.QuerySet.Intersects(mask) {
				continue
			}
			js.probeOne(pt, pt.QuerySet, mask, swapped, out)
		}
	}
}

func (js *joinScratch) addEntry(t *event.Tuple, qs *bitset.Bits) {
	e := joinEntry{t: t, qs: qs, next: -1}
	if h, ok := js.heads[t.Key]; ok {
		e.next = h
	}
	//lint:ignore hotalloc appends into scratch capacity retained across joins; grows only to the high-water mark
	js.entries = append(js.entries, e)
	js.heads[t.Key] = int32(len(js.entries) - 1)
}

// probeOne joins one probe-side tuple against the build index.
func (js *joinScratch) probeOne(pt *event.Tuple, pqs bitset.Bits, mask bitset.Bits, swapped bool, out *[]event.JoinedTuple) {
	h, ok := js.heads[pt.Key]
	if !ok {
		return
	}
	for idx := h; idx >= 0; {
		e := &js.entries[idx]
		idx = e.next
		if !e.qs.Intersects(pqs) {
			continue
		}
		js.qsTmp.CopyFrom(*e.qs)
		js.qsTmp.AndInPlace(pqs)
		js.qsTmp.AndInPlace(mask)
		if js.qsTmp.IsEmpty() {
			continue
		}
		jt := event.JoinedTuple{Key: pt.Key, QuerySet: js.qsTmp.Clone()}
		left, right := e.t, pt
		if swapped {
			left, right = pt, e.t
		}
		jt.Left = left.Fields
		jt.Right = right.Fields
		jt.Time = left.Time
		if right.Time > jt.Time {
			jt.Time = right.Time
		}
		jt.IngestNanos = left.IngestNanos
		if right.IngestNanos > jt.IngestNanos {
			jt.IngestNanos = right.IngestNanos
		}
		//lint:ignore hotalloc appends into the caller's reused output slice; grows only to the high-water mark
		*out = append(*out, jt)
	}
}

// joinStores is the callback form of the kernel, used by tests and
// benchmarks; the shared join itself calls joinScratch.join with a reused
// scratch.
func joinStores(a, b *sliceStore, mask bitset.Bits, emit func(event.JoinedTuple)) {
	var js joinScratch
	var out []event.JoinedTuple
	js.join(a, b, mask, &out)
	for i := range out {
		emit(out[i])
	}
}
