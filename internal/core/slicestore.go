package core

import (
	"sort"

	"astream/internal/bitset"
	"astream/internal/event"
)

// StoreMode selects how a slice stores its tuples (paper §3.1.4, §3.2.3).
type StoreMode uint8

const (
	// StoreAdaptive starts grouped and switches to a flat list when the
	// average group size drops below two — the paper's heuristic: with
	// many concurrent queries the number of distinct query-sets explodes
	// and most groups hold a single tuple.
	StoreAdaptive StoreMode = iota
	// StoreGrouped always groups tuples by query-set.
	StoreGrouped
	// StoreList always keeps a flat list.
	StoreList
)

func (m StoreMode) String() string {
	switch m {
	case StoreAdaptive:
		return "adaptive"
	case StoreGrouped:
		return "grouped"
	case StoreList:
		return "list"
	default:
		return "store?"
	}
}

// adaptiveSwitchThreshold is the mean-group-size below which an adaptive
// store degenerates to a list (paper: "if the average is less than two").
const adaptiveSwitchThreshold = 2.0

// minTuplesForSwitch avoids flapping on nearly-empty slices.
const minTuplesForSwitch = 16

// tupleGroup is one query-set group inside a grouped slice store. Grouping
// lets the join skip whole groups whose query-sets cannot intersect.
type tupleGroup struct {
	qs     bitset.Bits
	tuples []event.Tuple
}

// sliceStore holds the tuples of one slice on one side of a shared join.
type sliceStore struct {
	mode    StoreMode
	grouped bool
	groups  map[string]*tupleGroup // by qs.Key(); nil when list mode
	list    []event.Tuple
	count   int
}

func newSliceStore(mode StoreMode) *sliceStore {
	s := &sliceStore{mode: mode}
	switch mode {
	case StoreList:
		s.grouped = false
	default:
		s.grouped = true
		s.groups = make(map[string]*tupleGroup)
	}
	return s
}

// Add inserts a tuple (saved once — no copies inside a slice, paper §3.2.2).
func (s *sliceStore) Add(t event.Tuple) {
	s.count++
	if !s.grouped {
		s.list = append(s.list, t)
		return
	}
	k := t.QuerySet.Key()
	g := s.groups[k]
	if g == nil {
		g = &tupleGroup{qs: t.QuerySet.Clone()}
		s.groups[k] = g
	}
	g.tuples = append(g.tuples, t)
	if s.mode == StoreAdaptive && s.count >= minTuplesForSwitch &&
		float64(s.count) < adaptiveSwitchThreshold*float64(len(s.groups)) {
		s.degenerate()
	}
}

// regroup rebuilds the query-set groups of a list-mode store (the inverse
// marker transition of §3.2.3, taken when the active query count drops back
// under the threshold).
func (s *sliceStore) regroup() {
	if s.grouped {
		return
	}
	s.groups = make(map[string]*tupleGroup)
	s.grouped = true
	list := s.list
	s.list = nil
	s.count = 0
	for _, t := range list {
		s.Add(t)
	}
}

// setMode switches the store's layout to match a session marker (§3.2.3).
func (s *sliceStore) setMode(m StoreMode) {
	s.mode = m
	switch m {
	case StoreList:
		s.degenerate()
	case StoreGrouped:
		s.regroup()
	}
}

// degenerate flattens a grouped store into list mode (the marker-triggered
// data-structure change of §3.2.3 applies this to all slices at once).
func (s *sliceStore) degenerate() {
	if !s.grouped {
		return
	}
	s.list = make([]event.Tuple, 0, s.count)
	for _, k := range s.sortedGroupKeys() {
		s.list = append(s.list, s.groups[k].tuples...)
	}
	s.groups = nil
	s.grouped = false
}

// sortedGroupKeys returns the group keys in a fixed order: flattening must
// not depend on map iteration order, or join result order diverges between
// otherwise identical runs (replay determinism).
func (s *sliceStore) sortedGroupKeys() []string {
	keys := make([]string, 0, len(s.groups))
	for k := range s.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of stored tuples.
func (s *sliceStore) Len() int { return s.count }

// Grouped reports whether the store is currently in grouped mode.
func (s *sliceStore) Grouped() bool { return s.grouped }

// GroupCount returns the number of query-set groups (0 in list mode).
func (s *sliceStore) GroupCount() int { return len(s.groups) }

// ForEachGroup visits tuples group-wise. In list mode it visits one pseudo
// group per tuple whose query-set is the tuple's own.
func (s *sliceStore) ForEachGroup(fn func(qs bitset.Bits, tuples []event.Tuple)) {
	if s.grouped {
		for _, g := range s.groups {
			fn(g.qs, g.tuples)
		}
		return
	}
	for i := range s.list {
		fn(s.list[i].QuerySet, s.list[i:i+1])
	}
}

// All returns every stored tuple (grouped stores flatten in key order).
func (s *sliceStore) All() []event.Tuple {
	if !s.grouped {
		return s.list
	}
	out := make([]event.Tuple, 0, s.count)
	for _, k := range s.sortedGroupKeys() {
		out = append(out, s.groups[k].tuples...)
	}
	return out
}

// joinStores produces joined tuples for every key-equal pair whose
// query-sets intersect under mask; results carry qsA ∩ qsB ∩ mask. This is
// the slice ⋈ slice kernel: grouped×grouped skips non-intersecting group
// pairs wholesale (paper §3.1.4), every other combination hashes one side.
func joinStores(a, b *sliceStore, mask bitset.Bits, emit func(event.JoinedTuple)) {
	if a.count == 0 || b.count == 0 || mask.IsEmpty() {
		return
	}
	// Build a hash index over the smaller side, then probe group-wise so
	// the group-level query-set test still prunes work.
	build, probe := a, b
	swapped := false
	if b.count < a.count {
		build, probe = b, a
		swapped = true
	}
	type bucket struct {
		qs     bitset.Bits
		tuples []event.Tuple
	}
	idx := make(map[int64][]bucket, build.count)
	build.ForEachGroup(func(qs bitset.Bits, tuples []event.Tuple) {
		if !qs.Intersects(mask) {
			return
		}
		for i := range tuples {
			k := tuples[i].Key
			idx[k] = append(idx[k], bucket{qs: qs, tuples: tuples[i : i+1]})
		}
	})
	probe.ForEachGroup(func(pqs bitset.Bits, ptuples []event.Tuple) {
		if !pqs.Intersects(mask) {
			return
		}
		for i := range ptuples {
			pt := &ptuples[i]
			for _, bk := range idx[pt.Key] {
				if !bk.qs.Intersects(pqs) {
					continue
				}
				for j := range bk.tuples {
					bt := &bk.tuples[j]
					qs := bk.qs.And(pqs)
					qs.AndInPlace(mask)
					if qs.IsEmpty() {
						continue
					}
					jt := event.JoinedTuple{Key: pt.Key, QuerySet: qs}
					left, right := bt, pt
					if swapped {
						left, right = pt, bt
					}
					jt.Left = left.Fields
					jt.Right = right.Fields
					jt.Time = left.Time
					if right.Time > jt.Time {
						jt.Time = right.Time
					}
					jt.IngestNanos = left.IngestNanos
					if right.IngestNanos > jt.IngestNanos {
						jt.IngestNanos = right.IngestNanos
					}
					emit(jt)
				}
			}
		}
	})
}
