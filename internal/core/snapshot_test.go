package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"astream/internal/bitset"
	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/spe"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// These tests pin the per-operator Snapshot/Restore contract the recovery
// path depends on: cutting a snapshot mid-stream, restoring it into a fresh
// instance, and feeding both the identical suffix must produce identical
// emissions — and identical next snapshots, which is the stronger claim that
// the restored state is equal, not merely output-equivalent so far.

// clBuilder assigns query IDs and slots the way the engine session does, so
// direct operator tests can weave realistic changelogs.
type clBuilder struct {
	reg    *changelog.Registry
	defs   map[int]*Query
	nextID int
}

func newCLBuilder() *clBuilder {
	return &clBuilder{reg: changelog.NewRegistry(changelog.SlotReuse), defs: map[int]*Query{}}
}

func (b *clBuilder) create(t *testing.T, at event.Time, qs ...*Query) *ChangelogMsg {
	t.Helper()
	ids := make([]int, 0, len(qs))
	for _, q := range qs {
		b.nextID++
		q.ID = b.nextID
		b.defs[q.ID] = q
		ids = append(ids, q.ID)
	}
	cl, err := b.reg.Apply(at, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &ChangelogMsg{CL: cl, Defs: b.defs}
}

func (b *clBuilder) remove(t *testing.T, at event.Time, ids ...int) *ChangelogMsg {
	t.Helper()
	cl, err := b.reg.Apply(at, nil, ids)
	if err != nil {
		t.Fatal(err)
	}
	return &ChangelogMsg{CL: cl, Defs: b.defs}
}

// tupleTap is a chained capture target for operators that emit tuples.
type tupleTap struct {
	spe.BaseLogic
	out *[]string
}

func (tt tupleTap) OnTuple(_ int, t event.Tuple, _ *spe.Emitter) {
	*tt.out = append(*tt.out, fmt.Sprintf("k=%d t=%v s=%d qs=%v f=%v",
		t.Key, t.Time, t.Stream, t.QuerySet.Words(), t.Fields))
}

func tapEmitter(out *[]string) *spe.Emitter {
	return spe.NewChainedEmitter(tupleTap{out: out}, nil)
}

// captureRouter registers a formatting sink for the given query IDs.
func captureRouter(out *[]string, ids ...int) *Router {
	r := NewRouter(&OpMetrics{})
	for _, id := range ids {
		r.Register(id, SinkFunc(func(res Result) {
			*out = append(*out, fmt.Sprintf("q%d %v w=[%v,%v) key=%d val=%d join=%v et=%v",
				res.QueryID, res.Kind, res.Window.Start, res.Window.End,
				res.Key, res.Value, res.Join, res.EventTime))
		}))
	}
	return r
}

func assertSameStrings(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d emissions, want %d\ngot:  %v\nwant: %v", what, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s emission %d:\ngot:  %s\nwant: %s", what, i, got[i], want[i])
		}
	}
}

func assertSameSnapshot(t *testing.T, what string, a, b []byte) {
	t.Helper()
	if !bytes.Equal(a, b) {
		t.Fatalf("%s: re-snapshots differ after identical suffix (%d vs %d bytes)", what, len(a), len(b))
	}
}

func TestSelectionSnapshotRoundTrip(t *testing.T) {
	b := newCLBuilder()
	orig := NewSharedSelection(0, 10, &OpMetrics{})
	msg := b.create(t, 0, selQ(gt(0, 50)), selQ(gt(1, 30)))
	firstID := msg.CL.Created[0].Query
	orig.OnChangelog(msg, 0, nil)

	rng := rand.New(rand.NewSource(5))
	mk := func(i int) event.Tuple {
		tu := event.Tuple{Key: int64(i % 3), Time: event.Time(i)}
		tu.Fields[0] = int64(rng.Intn(100))
		tu.Fields[1] = int64(rng.Intn(100))
		return tu
	}
	var pre []string
	preOut := tapEmitter(&pre)
	for i := 1; i <= 20; i++ {
		orig.OnTuple(0, mk(i), preOut)
	}
	orig.OnWatermark(15, nil)
	// A deletion right before the barrier: the snapshot must carry the
	// versioned table, not just the live predicates.
	orig.OnChangelog(b.remove(t, 15, firstID), 15, nil)

	snap := orig.OnBarrier(1, nil)
	fresh := NewSharedSelection(0, 10, &OpMetrics{})
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}

	var gotO, gotF []string
	outO, outF := tapEmitter(&gotO), tapEmitter(&gotF)
	suffix := make([]event.Tuple, 0, 20)
	for i := 16; i <= 35; i++ {
		suffix = append(suffix, mk(i))
	}
	for _, tu := range suffix {
		orig.OnTuple(0, tu, outO)
		fresh.OnTuple(0, tu, outF)
	}
	orig.OnWatermark(35, nil)
	fresh.OnWatermark(35, nil)
	if len(gotO) == 0 {
		t.Fatal("suffix produced no emissions; test exercises nothing")
	}
	assertSameStrings(t, "selection", gotF, gotO)
	assertSameSnapshot(t, "selection", orig.OnBarrier(2, nil), fresh.OnBarrier(2, nil))
}

func TestJoinSnapshotRoundTrip(t *testing.T) {
	for _, mode := range []StoreMode{StoreList, StoreGrouped} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			b := newCLBuilder()
			msg := b.create(t, 0, joinQ(window.TumblingSpec(10), gt(0, -1), gt(0, -1)))
			qid := msg.CL.Created[0].Query
			slot := msg.CL.Created[0].Slot

			var gotO, gotF []string
			orig := NewSharedJoin(0, mode, 10, captureRouter(&gotO, qid), &OpMetrics{})
			orig.OnChangelog(msg, 0, nil)

			rng := rand.New(rand.NewSource(7))
			mk := func(i int) event.Tuple {
				tu := event.Tuple{Key: int64(i % 3), Time: event.Time(i), QuerySet: bitset.FromIndexes(slot)}
				tu.Fields[0] = int64(rng.Intn(100))
				return tu
			}
			feed := func(j *SharedJoin, from, to int, out *spe.Emitter, wmEvery int) {
				for i := from; i <= to; i++ {
					tu := mk(i)
					j.OnTuple(i%2, tu, out)
					if i%wmEvery == 0 {
						j.OnWatermark(event.Time(i-2), out)
					}
				}
			}
			// Prefix: two windows' worth of pairs, some already fired.
			rng = rand.New(rand.NewSource(7))
			var sink []string
			feed(orig, 1, 22, tapEmitter(&sink), 5)

			snap := orig.OnBarrier(1, nil)
			fresh := NewSharedJoin(0, mode, 10, captureRouter(&gotF, qid), &OpMetrics{})
			if err := fresh.Restore(snap); err != nil {
				t.Fatal(err)
			}
			gotO = gotO[:0] // compare suffix emissions only

			// Identical suffix into both, driven by one rng so tuples match.
			rng = rand.New(rand.NewSource(9))
			suffix := make([]event.Tuple, 0, 20)
			for i := 23; i <= 42; i++ {
				suffix = append(suffix, mk(i))
			}
			var sinkO, sinkF []string
			outO, outF := tapEmitter(&sinkO), tapEmitter(&sinkF)
			for i, tu := range suffix {
				n := 23 + i
				orig.OnTuple(n%2, tu, outO)
				fresh.OnTuple(n%2, tu, outF)
				if n%5 == 0 {
					orig.OnWatermark(event.Time(n-2), outO)
					fresh.OnWatermark(event.Time(n-2), outF)
				}
			}
			orig.OnWatermark(45, outO)
			fresh.OnWatermark(45, outF)
			if len(gotO) == 0 {
				t.Fatal("suffix fired no join windows; test exercises nothing")
			}
			assertSameStrings(t, "join results", gotF, gotO)
			assertSameStrings(t, "join passthrough", sinkF, sinkO)
			assertSameSnapshot(t, "join", orig.OnBarrier(2, nil), fresh.OnBarrier(2, nil))
		})
	}
}

func TestAggregationSnapshotRoundTrip(t *testing.T) {
	b := newCLBuilder()
	msg := b.create(t, 0,
		aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, gt(0, -1)),
		aggQ(window.SessionSpec(4), sqlstream.AggSum, 0, gt(0, -1)))
	tumID, tumSlot := msg.CL.Created[0].Query, msg.CL.Created[0].Slot
	sessID, sessSlot := msg.CL.Created[1].Query, msg.CL.Created[1].Slot

	var gotO, gotF []string
	orig := NewSharedAggregation(1, 10, captureRouter(&gotO, tumID, sessID), &OpMetrics{})
	orig.OnChangelog(msg, 0, nil)

	// Bursty timeline: gaps > the session gap close sessions mid-stream, so
	// the snapshot carries both closed history and open session state.
	times := []event.Time{1, 2, 3, 9, 10, 11, 17, 18, 24, 25}
	rng := rand.New(rand.NewSource(11))
	mk := func(tm event.Time) event.Tuple {
		tu := event.Tuple{Key: int64(rng.Intn(3)), Time: tm, QuerySet: bitset.FromIndexes(tumSlot, sessSlot)}
		tu.Fields[0] = int64(rng.Intn(50))
		return tu
	}
	for _, tm := range times {
		orig.OnTuple(0, mk(tm), nil)
	}
	orig.OnWatermark(20, nil)

	snap := orig.OnBarrier(1, nil)
	fresh := NewSharedAggregation(1, 10, captureRouter(&gotF, tumID, sessID), &OpMetrics{})
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	gotO = gotO[:0]

	// The suffix includes a workload change: restored instances must accept
	// the next changelog exactly like the original.
	msg2 := b.create(t, 26, aggQ(window.TumblingSpec(5), sqlstream.AggMax, 0, gt(0, -1)))
	newID := msg2.CL.Created[0].Query
	orig.router.Register(newID, SinkFunc(func(res Result) {
		gotO = append(gotO, fmt.Sprintf("q%d %v w=[%v,%v) key=%d val=%d", res.QueryID, res.Kind,
			res.Window.Start, res.Window.End, res.Key, res.Value))
	}))
	fresh.router.Register(newID, SinkFunc(func(res Result) {
		gotF = append(gotF, fmt.Sprintf("q%d %v w=[%v,%v) key=%d val=%d", res.QueryID, res.Kind,
			res.Window.Start, res.Window.End, res.Key, res.Value))
	}))
	orig.OnChangelog(msg2, 26, nil)
	fresh.OnChangelog(msg2, 26, nil)

	suffixTimes := []event.Time{26, 27, 33, 34, 40, 41, 48}
	rng = rand.New(rand.NewSource(13))
	suffix := make([]event.Tuple, 0, len(suffixTimes))
	for _, tm := range suffixTimes {
		suffix = append(suffix, mk(tm))
	}
	for _, tu := range suffix {
		orig.OnTuple(0, tu, nil)
		fresh.OnTuple(0, tu, nil)
	}
	for wm := event.Time(25); wm <= 55; wm += 5 {
		orig.OnWatermark(wm, nil)
		fresh.OnWatermark(wm, nil)
	}
	if len(gotO) == 0 {
		t.Fatal("suffix fired no aggregation windows; test exercises nothing")
	}
	assertSameStrings(t, "aggregation", gotF, gotO)
	assertSameSnapshot(t, "aggregation", orig.OnBarrier(2, nil), fresh.OnBarrier(2, nil))
}

// TestSliceStoreSnapshotRoundTrip pins the store encoding for both layouts:
// the restored store must reproduce the exact representation (mode, layout,
// group structure), not just the same tuple multiset.
func TestSliceStoreSnapshotRoundTrip(t *testing.T) {
	for _, mode := range []StoreMode{StoreList, StoreGrouped, StoreAdaptive} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			s := newSliceStore(mode)
			for i := 0; i < 150; i++ {
				s.Add(mkTuple(int64(i%5), event.Time(i), i%4))
			}
			enc := snapSliceStore(nil, s)
			r := &snapR{b: enc}
			back := readSliceStore(r)
			if r.err != nil {
				t.Fatal(r.err)
			}
			if back.Grouped() != s.Grouped() || back.Len() != s.Len() {
				t.Fatalf("restored store: grouped=%v len=%d, want grouped=%v len=%d",
					back.Grouped(), back.Len(), s.Grouped(), s.Len())
			}
			if !bytes.Equal(snapSliceStore(nil, back), enc) {
				t.Fatal("re-encoding the restored store diverged")
			}
		})
	}
	t.Run("nil", func(t *testing.T) {
		enc := snapSliceStore(nil, nil)
		r := &snapR{b: enc}
		if back := readSliceStore(r); back != nil || r.err != nil {
			t.Fatalf("nil store round-trip: %v, %v", back, r.err)
		}
	})
}

// TestOperatorRestoreRejectsCorruptSnapshots: truncation and version skew
// must surface as errors, never as panics or silently wrong state.
func TestOperatorRestoreRejectsCorruptSnapshots(t *testing.T) {
	b := newCLBuilder()
	agg := NewSharedAggregation(1, 10, NewRouter(&OpMetrics{}), &OpMetrics{})
	agg.OnChangelog(b.create(t, 0, aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, gt(0, -1))), 0, nil)
	agg.OnTuple(0, event.Tuple{Key: 1, Time: 5, QuerySet: bitset.FromIndexes(0)}, nil)
	snap := agg.OnBarrier(1, nil)

	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{99}, snap[1:]...)},
		{"truncated", snap[:len(snap)/2]},
	} {
		fresh := NewSharedAggregation(1, 10, NewRouter(&OpMetrics{}), &OpMetrics{})
		if err := fresh.Restore(tc.b); err == nil {
			t.Fatalf("%s: Restore accepted a corrupt snapshot", tc.name)
		}
	}
	sel := NewSharedSelection(0, 10, &OpMetrics{})
	if err := sel.Restore([]byte{99}); err == nil {
		t.Fatal("selection accepted a bad version byte")
	}
	join := NewSharedJoin(0, StoreList, 10, NewRouter(&OpMetrics{}), &OpMetrics{})
	if err := join.Restore([]byte{1, 0}); err == nil {
		t.Fatal("join accepted a truncated snapshot")
	}
}

// TestVersionSkewFailsLoudly pins the trailing-bytes contract: a snapshot
// written by a newer encoder that appended a field must be rejected by
// this build's Restore, never half-parsed into silently wrong state. The
// appended suffix stands in for the unknown field; the unmodified
// snapshot must still restore, proving the guard only fires on skew.
func TestVersionSkewFailsLoudly(t *testing.T) {
	skew := func(snap []byte) []byte {
		return append(append([]byte(nil), snap...), 0xEE, 0xFF)
	}

	sel := NewSharedSelection(0, 10, &OpMetrics{})
	sel.OnChangelog(newCLBuilder().create(t, 0, selQ(gt(0, 50))), 0, nil)
	selSnap := sel.OnBarrier(1, nil)
	if err := NewSharedSelection(0, 10, &OpMetrics{}).Restore(selSnap); err != nil {
		t.Fatalf("selection: clean snapshot rejected: %v", err)
	}
	if err := NewSharedSelection(0, 10, &OpMetrics{}).Restore(skew(selSnap)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("selection: skewed snapshot not rejected loudly: %v", err)
	}

	join := NewSharedJoin(0, StoreList, 10, NewRouter(&OpMetrics{}), &OpMetrics{})
	join.OnChangelog(newCLBuilder().create(t, 0, joinQ(window.TumblingSpec(10), gt(0, -1), gt(0, -1))), 0, nil)
	join.OnTuple(0, event.Tuple{Key: 1, Time: 3, QuerySet: bitset.FromIndexes(0)}, tapEmitter(&[]string{}))
	joinSnap := join.OnBarrier(1, nil)
	fresh := func() *SharedJoin { return NewSharedJoin(0, StoreList, 10, NewRouter(&OpMetrics{}), &OpMetrics{}) }
	if err := fresh().Restore(joinSnap); err != nil {
		t.Fatalf("join: clean snapshot rejected: %v", err)
	}
	if err := fresh().Restore(skew(joinSnap)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("join: skewed snapshot not rejected loudly: %v", err)
	}

	agg := NewSharedAggregation(1, 10, NewRouter(&OpMetrics{}), &OpMetrics{})
	agg.OnChangelog(newCLBuilder().create(t, 0, aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, gt(0, -1))), 0, nil)
	agg.OnTuple(0, event.Tuple{Key: 1, Time: 5, QuerySet: bitset.FromIndexes(0)}, nil)
	aggSnap := agg.OnBarrier(1, nil)
	freshAgg := func() *SharedAggregation { return NewSharedAggregation(1, 10, NewRouter(&OpMetrics{}), &OpMetrics{}) }
	if err := freshAgg().Restore(aggSnap); err != nil {
		t.Fatalf("aggregation: clean snapshot rejected: %v", err)
	}
	if err := freshAgg().Restore(skew(aggSnap)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("aggregation: skewed snapshot not rejected loudly: %v", err)
	}
}
