package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// TestStoreSwitchMarker verifies the §3.2.3 marker: crossing the grouped
// threshold flips every live join slice store to list layout (and back).
// Each phase runs to Drain so the operator state reads are race-free; the
// harness reference check keeps results correct throughout.
func TestStoreSwitchMarker(t *testing.T) {
	run := func(create int, stopFirst int) StoreMode {
		eng, err := NewEngine(Config{
			Streams: 2, Parallelism: 1, BatchSize: 1, BatchTimeout: time.Hour,
			WatermarkEvery: 1, StoreMode: StoreAdaptive, GroupedThreshold: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		h := &harness{
			t: t, eng: eng,
			inputs: make([][]event.Tuple, 2),
			sinks:  map[int]*collectSink{},
			ta:     map[int]event.Time{},
			td:     map[int]event.Time{},
			defs:   map[int]*Query{},
		}
		var ids []int
		for i := 0; i < create; i++ {
			ids = append(ids, h.submit(joinQ(window.TumblingSpec(8), expr.True(), expr.True())))
		}
		for i := 1; i <= 20; i++ {
			h.ingest(0, int64(i%3), event.Time(i))
			h.ingest(1, int64(i%3), event.Time(i))
		}
		for i := 0; i < stopFirst; i++ {
			h.stop(ids[i])
		}
		for i := 21; i <= 40; i++ {
			h.ingest(0, int64(i%3), event.Time(i))
			h.ingest(1, int64(i%3), event.Time(i))
		}
		h.finish() // drains and checks results against the reference
		return eng.joinLogics[0][0].storeMode
	}

	if got := run(2, 0); got == StoreList {
		t.Fatalf("2 queries under threshold 3 must not switch to list (got %v)", got)
	}
	if got := run(5, 0); got != StoreList {
		t.Fatalf("5 queries over threshold 3 should switch to list, got %v", got)
	}
	if got := run(5, 3); got != StoreGrouped {
		t.Fatalf("dropping back to 2 queries should regroup, got %v", got)
	}
}

func TestSliceStoreSetModeRoundTrip(t *testing.T) {
	s := newSliceStore(StoreGrouped)
	for i := 0; i < 50; i++ {
		s.Add(mkTuple(int64(i%5), event.Time(i), i%3))
	}
	if !s.Grouped() || s.Len() != 50 {
		t.Fatal("setup wrong")
	}
	s.setMode(StoreList)
	if s.Grouped() || s.Len() != 50 {
		t.Fatalf("degenerate lost tuples: grouped=%v len=%d", s.Grouped(), s.Len())
	}
	s.setMode(StoreGrouped)
	if !s.Grouped() || s.Len() != 50 || s.GroupCount() != 3 {
		t.Fatalf("regroup wrong: grouped=%v len=%d groups=%d", s.Grouped(), s.Len(), s.GroupCount())
	}
	// Idempotent.
	s.setMode(StoreGrouped)
	if s.Len() != 50 {
		t.Fatal("idempotent regroup lost tuples")
	}
}

// TestEngineQoS exercises the §3.4 QoS report. The injected clock advances
// deterministically; deployment latency now comes entirely from NowNanos
// (no wall-clock leakage), so a frozen clock would legitimately report 0.
func TestEngineQoS(t *testing.T) {
	var clock int64
	eng, err := NewEngine(Config{
		Streams: 1, Parallelism: 1, BatchSize: 1, BatchTimeout: time.Hour,
		WatermarkEvery: 1, NowNanos: func() int64 { return atomic.AddInt64(&clock, 1000) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Default sink (counting) → appears in the QoS report.
	q := aggQ(window.TumblingSpec(10), sqlstream.AggCount, -1, expr.True())
	id, ack, err := eng.Submit(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-ack
	for i := 1; i <= 40; i++ {
		if err := eng.Ingest(0, event.Tuple{Key: int64(i % 2), Time: event.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()
	r := eng.QoS()
	if r.Selected == 0 {
		t.Fatalf("QoS selected = 0: %+v", r)
	}
	if r.AggResults == 0 {
		t.Fatalf("QoS agg results = 0: %+v", r)
	}
	if len(r.Queries) != 1 || r.Queries[0].ID != id || r.Queries[0].Results == 0 {
		t.Fatalf("QoS per-query = %+v", r.Queries)
	}
	if r.DeploymentMean <= 0 {
		t.Fatalf("QoS deployment mean = %v", r.DeploymentMean)
	}
}

// TestEngineOutOfOrderInput verifies the integration requirement of §1.2:
// with a lateness bound, jittered (out-of-order) event times still produce
// the reference results.
func TestEngineOutOfOrderInput(t *testing.T) {
	eng, err := NewEngine(Config{
		Streams: 1, Parallelism: 2, BatchSize: 1, BatchTimeout: time.Hour,
		WatermarkEvery: 1, Lateness: 8, NowNanos: func() int64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t: t, eng: eng,
		inputs: make([][]event.Tuple, 1),
		sinks:  map[int]*collectSink{},
		ta:     map[int]event.Time{},
		td:     map[int]event.Time{},
		defs:   map[int]*Query{},
	}
	h.submit(aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, expr.True()))
	// Jittered times: monotone base with ±4 disorder (< lateness 8).
	rng := rand.New(rand.NewSource(12))
	for i := 5; i <= 120; i++ {
		jit := event.Time(i) + event.Time(rng.Intn(9)-4)
		h.ingest(0, int64(i%3), jit, int64(i))
	}
	h.finish()
	if late := eng.Metrics().Late; late != 0 {
		t.Fatalf("in-bound disorder dropped %d tuples as late", late)
	}
}

// TestEngineOutOfOrderAcrossChangelog verifies that a tuple older than a
// changelog (but within lateness) is classified against the query table of
// ITS event-time, not the newest one.
func TestEngineOutOfOrderAcrossChangelog(t *testing.T) {
	eng, err := NewEngine(Config{
		Streams: 1, Parallelism: 1, BatchSize: 1, BatchTimeout: time.Hour,
		WatermarkEvery: 1, Lateness: 10, NowNanos: func() int64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	q := aggQ(window.TumblingSpec(20), sqlstream.AggCount, -1, expr.True())
	_, ack, err := eng.Submit(q, sink)
	if err != nil {
		t.Fatal(err)
	}
	<-ack // activates at Ta = 1
	// Ingest up to t=30 so the next query's changelog lands at 31.
	for i := 1; i <= 30; i++ {
		if err := eng.Ingest(0, event.Tuple{Key: 1, Time: event.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sink2 := &collectSink{}
	q2 := aggQ(window.TumblingSpec(20), sqlstream.AggCount, -1, expr.True())
	_, ack2, err := eng.Submit(q2, sink2)
	if err != nil {
		t.Fatal(err)
	}
	<-ack2 // activates at Ta2 = 31
	// A late tuple with t=28 (< 31, within lateness) must count for q but
	// NOT for q2; a tuple with t=32 counts for both.
	if err := eng.Ingest(0, event.Tuple{Key: 1, Time: 28}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(0, event.Tuple{Key: 1, Time: 32}); err != nil {
		t.Fatal(err)
	}
	for i := 33; i <= 60; i++ {
		if err := eng.Ingest(0, event.Tuple{Key: 1, Time: event.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Drain()

	count := func(rs []Result, ws event.Time) int64 {
		for _, r := range rs {
			if r.Window.Start == ws {
				return r.Value
			}
		}
		return -1
	}
	// Window [20,40): q sees tuples 20..30 (11), late 28 (1), 32..39 (8) = 20.
	if got := count(sink.all(), 20); got != 20 {
		t.Fatalf("q window [20,40) count = %d, want 20", got)
	}
	// q2 sees only t ≥ 31: 32..39 = 8 (the late t=28 must not leak in).
	if got := count(sink2.all(), 20); got != 8 {
		t.Fatalf("q2 window [20,40) count = %d, want 8", got)
	}
}

// TestEngineLateTupleDropped verifies tuples behind the watermark horizon
// are counted as late rather than corrupting closed windows.
func TestEngineLateTupleDropped(t *testing.T) {
	eng, err := NewEngine(Config{
		Streams: 1, Parallelism: 1, BatchSize: 1, BatchTimeout: time.Hour,
		WatermarkEvery: 1, Lateness: 0, NowNanos: func() int64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	_, ack, _ := eng.Submit(aggQ(window.TumblingSpec(10), sqlstream.AggCount, -1, expr.True()), sink)
	<-ack
	for i := 1; i <= 50; i++ {
		if err := eng.Ingest(0, event.Tuple{Key: 1, Time: event.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Way-late tuple: windows [0,10).. already fired.
	if err := eng.Ingest(0, event.Tuple{Key: 1, Time: 2}); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	// Window [0,10) must still report 9 (tuples 1..9), not 10.
	for _, r := range sink.all() {
		if r.Window.Start == 0 && r.Value != 9 {
			t.Fatalf("late tuple corrupted closed window: %+v", r)
		}
	}
	if eng.Metrics().Late == 0 {
		t.Fatal("late tuple not counted")
	}
}

// TestEngineAppendOnlySlotMode runs the ablation configuration (Figure 3b:
// no slot reuse) through the reference harness: correctness must be
// identical, only the bitsets grow wider.
func TestEngineAppendOnlySlotMode(t *testing.T) {
	eng, err := NewEngine(Config{
		Streams: 1, Parallelism: 1, BatchSize: 1, BatchTimeout: time.Hour,
		WatermarkEvery: 1, SlotMode: changelog.AppendOnly,
		NowNanos: func() int64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t: t, eng: eng,
		inputs: make([][]event.Tuple, 1),
		sinks:  map[int]*collectSink{},
		ta:     map[int]event.Time{},
		td:     map[int]event.Time{},
		defs:   map[int]*Query{},
	}
	var ids []int
	now := 0
	for round := 0; round < 6; round++ {
		ids = append(ids, h.submit(aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, expr.True())))
		if round >= 2 {
			h.stop(ids[round-2])
		}
		for i := 0; i < 15; i++ {
			now++
			h.ingest(0, int64(now%3), event.Time(now), int64(now))
		}
	}
	h.finish()
	// Append-only: slots never reused → width equals total creations.
	if got := eng.registry.NumSlots(); got != 6 {
		t.Fatalf("append-only slot width = %d, want 6", got)
	}
}

// TestSlicerQuickBoundsContainT property-checks boundsAt: the computed
// extent always contains t and respects epoch boundaries.
func TestSlicerQuickBoundsContainT(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		s := newSlicer()
		at := event.Time(0)
		seq := uint64(1)
		epochs := []event.Time{event.MinTime}
		for e := 0; e < 1+rng.Intn(4); e++ {
			at += event.Time(1 + rng.Intn(30))
			var specs []window.Spec
			for q := 0; q < rng.Intn(3); q++ {
				l := event.Time(2 + rng.Intn(12))
				sl := event.Time(1 + rng.Intn(int(l)))
				specs = append(specs, window.SlidingSpec(l, sl))
			}
			if err := s.addEpoch(at, seq, specs); err != nil {
				t.Fatal(err)
			}
			epochs = append(epochs, at)
			seq++
		}
		for probe := 0; probe < 30; probe++ {
			tt := event.Time(rng.Intn(150))
			ext, epoch := s.boundsAt(tt)
			if !ext.Contains(tt) {
				t.Fatalf("boundsAt(%v) = %v does not contain t", tt, ext)
			}
			// The extent must not straddle any epoch boundary.
			for i, from := range epochs {
				if from > ext.Start && from < ext.End {
					t.Fatalf("extent %v straddles epoch boundary %v", ext, from)
				}
				if from <= tt && uint64(i) > epoch {
					t.Fatalf("epoch %d at t=%v, but boundary %v (epoch %d) passed", epoch, tt, from, i)
				}
			}
		}
	}
}

// TestSharedNaryJoinStageReuse verifies §3.1.5's shared n-ary joins: an
// arity-2 join query and an arity-3 join query share the first join stage,
// and slice-pair results computed for one serve the other (pair-cache
// reuse).
func TestSharedNaryJoinStageReuse(t *testing.T) {
	h := newHarness(t, 3, 1)
	// Different window geometries over the same stage: the sliding query's
	// overlapping windows revisit slice pairs the tumbling queries already
	// joined, which is where the pair cache pays off.
	h.submit(joinQ(window.SlidingSpec(8, 4), expr.True(), expr.True()))
	h.submit(joinQ(window.TumblingSpec(8), expr.True(), expr.True(), expr.True()))
	for i := 1; i <= 40; i++ {
		for s := 0; s < 3; s++ {
			h.ingest(s, int64(i%2), event.Time(i))
		}
	}
	h.finish() // both queries checked against the reference
	m := h.eng.Metrics()
	if m.PairsReuse == 0 {
		t.Fatalf("no pair-cache reuse across the shared join stage: done=%d reuse=%d",
			m.PairsDone, m.PairsReuse)
	}
	// Stage 0 must have registered both queries at some point; stage 1
	// only the ternary one.
	if got := h.eng.joinLogics[1][0].ActiveQueries(); got > 1 {
		t.Fatalf("stage 1 active queries = %d, want ≤ 1", got)
	}
}

// TestSelectionWorkIsShared quantifies requirement 3 (performance through
// sharing): with N identical aggregation queries, each input tuple passes
// the shared selection exactly once — the Selected counter tracks tuples,
// not tuples × queries.
func TestSelectionWorkIsShared(t *testing.T) {
	h := newHarness(t, 1, 1)
	const N = 10
	for i := 0; i < N; i++ {
		h.submit(aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, expr.True()))
	}
	const tuples = 200
	for i := 1; i <= tuples; i++ {
		h.ingest(0, int64(i%5), event.Time(i), 1)
	}
	h.finish()
	m := h.eng.Metrics()
	sel := atomicLoad(&m.Selected)
	if sel != tuples {
		t.Fatalf("Selected = %d, want %d (one pass per tuple, not per query)", sel, tuples)
	}
	// Each query still received its own full result stream.
	for id, sink := range h.sinks {
		if len(sink.all()) == 0 {
			t.Fatalf("query %d starved", id)
		}
	}
}

func atomicLoad(p *uint64) uint64 { return atomic.LoadUint64(p) }
