package core

import (
	"fmt"
	"sync"
	"time"

	"astream/internal/event"
)

// DeployRecord is one query's deployment bookkeeping: the wall-clock latency
// between the user request and the changelog release (paper §4.3's query
// deployment latency; the driver adds its own queue-wait on top).
type DeployRecord struct {
	QueryID int
	Create  bool
	Latency time.Duration
}

// session is the shared session (paper §3.1.1): it batches query create and
// delete requests and releases them as a single changelog when the batch
// fills or the timeout elapses, whichever comes first.
type session struct {
	eng *Engine

	mu      sync.Mutex
	creates []*pendingReq
	deletes []*pendingReq
	timer   *time.Timer
	closed  bool

	records   []DeployRecord
	batchSize int
	timeout   time.Duration
}

type pendingReq struct {
	id   int
	def  *Query // nil for deletions
	sink Sink
	ack  chan struct{}
	// enqueuedNanos is the engine-clock timestamp of the request, so
	// deployment latency stays measurable under simulated time.
	enqueuedNanos int64
}

func newSession(eng *Engine, batchSize int, timeout time.Duration) *session {
	if batchSize < 1 {
		batchSize = 1
	}
	return &session{eng: eng, batchSize: batchSize, timeout: timeout}
}

// submit enqueues a creation request; the returned channel closes when the
// query's changelog has been released into the streams (the ACK of Figure 5).
func (s *session) submit(id int, def *Query, sink Sink) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("core: engine stopped")
	}
	req := &pendingReq{id: id, def: def, sink: sink, ack: make(chan struct{}), enqueuedNanos: s.eng.cfg.NowNanos()}
	s.creates = append(s.creates, req)
	s.maybeFlushLocked()
	return req.ack, nil
}

// stop enqueues a deletion request.
func (s *session) stop(id int) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("core: engine stopped")
	}
	req := &pendingReq{id: id, ack: make(chan struct{}), enqueuedNanos: s.eng.cfg.NowNanos()}
	s.deletes = append(s.deletes, req)
	s.maybeFlushLocked()
	return req.ack, nil
}

func (s *session) maybeFlushLocked() {
	if len(s.creates)+len(s.deletes) >= s.batchSize {
		s.flushLocked()
		return
	}
	if s.timer == nil && s.timeout > 0 {
		s.timer = time.AfterFunc(s.timeout, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if !s.closed {
				s.flushLocked()
			}
		})
	}
}

// flushLocked releases one changelog covering every pending request.
// A changelog is generated only when there are user requests (§3.1.1).
func (s *session) flushLocked() {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if len(s.creates) == 0 && len(s.deletes) == 0 {
		return
	}
	creates := s.creates
	deletes := s.deletes
	s.creates = nil
	s.deletes = nil

	createIDs := make([]int, len(creates))
	defs := make(map[int]*Query, len(creates))
	for i, r := range creates {
		createIDs[i] = r.id
		defs[r.id] = r.def
		// Sinks are registered before the changelog is released so that
		// no result can outrun its sink.
		s.eng.router.Register(r.id, r.sink)
	}
	deleteIDs := make([]int, len(deletes))
	for i, r := range deletes {
		deleteIDs[i] = r.id
	}

	at := s.eng.nextChangelogTime()
	cl, err := s.eng.registry.Apply(at, createIDs, deleteIDs)
	if err != nil {
		// Invalid batch members (duplicate create, unknown delete) fail
		// the whole batch; acks still close so callers do not hang, and
		// the error is recorded.
		for _, r := range creates {
			s.eng.router.Unregister(r.id)
		}
		s.eng.recordSessionError(err)
		for _, r := range append(creates, deletes...) {
			close(r.ack)
		}
		return
	}
	msg := &ChangelogMsg{CL: cl, Defs: defs, Switch: s.eng.storeSwitch()}
	s.eng.releaseChangelog(msg, at)
	// Deliberately NOT unregistering deleted queries' sinks here: deletion
	// is deferred to the query's event-time inside the operators, so final
	// windows (ending at or before the deletion time) still produce
	// results after this point. Sinks are dropped when the engine drains.

	now := s.eng.cfg.NowNanos()
	for _, r := range creates {
		s.records = append(s.records, DeployRecord{QueryID: r.id, Create: true, Latency: time.Duration(now - r.enqueuedNanos)})
		close(r.ack)
	}
	for _, r := range deletes {
		s.records = append(s.records, DeployRecord{QueryID: r.id, Create: false, Latency: time.Duration(now - r.enqueuedNanos)})
		close(r.ack)
	}
}

// flushNow forces a flush (engine drain and tests).
func (s *session) flushNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.flushLocked()
	}
}

// close flushes and stops the session.
func (s *session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.flushLocked()
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

// deployRecords returns a snapshot of the deployment latency records.
func (s *session) deployRecords() []DeployRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeployRecord, len(s.records))
	copy(out, s.records)
	return out
}

// changelogTimes tracks per-stream high-water event times so the session can
// pick a changelog time after everything already ingested.
type changelogTimes struct {
	mu    sync.Mutex
	highs []event.Time
}

func newChangelogTimes(streams int) *changelogTimes {
	c := &changelogTimes{highs: make([]event.Time, streams)}
	for i := range c.highs {
		c.highs[i] = event.MinTime
	}
	return c
}

func (c *changelogTimes) observe(stream int, t event.Time) {
	c.mu.Lock()
	if t > c.highs[stream] {
		c.highs[stream] = t
	}
	c.mu.Unlock()
}

func (c *changelogTimes) next() event.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	max := event.Time(0)
	for _, h := range c.highs {
		if h > max {
			max = h
		}
	}
	return max + 1
}
