package core

import (
	"encoding/binary"
	"fmt"

	"astream/internal/bitset"
	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/spe"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// This file implements Snapshot/Restore for the shared operators: each
// logic's OnBarrier serializes the state a recovered instance needs to
// resume mid-stream, and Restore (spe.Restorable) rebuilds that state into
// a freshly constructed instance. Together with the checkpoint store this
// turns recovery from full-log replay into restore-at-barrier plus
// suffix replay (paper §3.3's determinism makes the two equivalent; the
// snapshot only bounds the replay length).
//
// Format discipline matches internal/checkpoint's log encoding:
// little-endian fixed-width integers, length-prefixed sequences, one
// leading version byte per operator snapshot. Everything serialized is a
// deterministic function of the operator's event-time input, so two
// instances that processed the same prefix produce byte-identical
// snapshots.

const opSnapshotVersion = 1

func snapU8(b []byte, v uint8) []byte   { return append(b, v) }
func snapU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func snapU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func snapI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }

func snapBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func snapBits(b []byte, bits bitset.Bits) []byte {
	n := bits.WordCount()
	b = snapU32(b, uint32(n))
	for i := 0; i < n; i++ {
		b = snapU64(b, bits.Word(i))
	}
	return b
}

func snapBytes(b, p []byte) []byte {
	b = snapU32(b, uint32(len(p)))
	return append(b, p...)
}

// snapR decodes operator snapshots, accumulating the first error (the
// byteReader idiom used across the checkpoint encodings).
type snapR struct {
	b   []byte
	err error
}

func (r *snapR) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("core: snapshot truncated reading %s", what)
	}
}

func (r *snapR) u8(what string) uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail(what)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *snapR) u32(what string) uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *snapR) u64(what string) uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *snapR) i64(what string) int64 { return int64(r.u64(what)) }

func (r *snapR) boolean(what string) bool { return r.u8(what) == 1 }

// count reads a length prefix and sanity-checks it against the remaining
// bytes (each element needs at least `unit` bytes), so corrupt input fails
// instead of allocating unboundedly.
func (r *snapR) count(what string, unit int) int {
	n := int(r.u32(what))
	if r.err == nil && (n < 0 || (unit > 0 && n > len(r.b)/unit+1)) {
		r.fail(what)
		return 0
	}
	return n
}

func (r *snapR) bits(what string) bitset.Bits {
	n := r.count(what, 8)
	if r.err != nil || n == 0 {
		return bitset.Bits{}
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = r.u64(what)
	}
	return bitset.FromWords(words)
}

func (r *snapR) bytes(what string) []byte {
	n := r.count(what, 1)
	if r.err != nil {
		return nil
	}
	if n > len(r.b) {
		r.fail(what)
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

// finish reports the first decode error, or rejects trailing input. Unread
// bytes after a complete decode mean the snapshot was written by an encoder
// this build does not understand (a newer schema appended fields); ignoring
// them would silently drop state, so restores must fail loudly instead.
func (r *snapR) finish(what string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("core: %s snapshot has %d trailing bytes (version skew?)", what, len(r.b))
	}
	return nil
}

// --- shared value codecs ---

func snapTuple(b []byte, t *event.Tuple) []byte {
	b = snapI64(b, t.Key)
	for _, f := range t.Fields {
		b = snapI64(b, f)
	}
	b = snapI64(b, int64(t.Time))
	b = snapI64(b, t.IngestNanos)
	b = snapU8(b, t.Stream)
	b = snapBits(b, t.QuerySet)
	return b
}

func readTuple(r *snapR) event.Tuple {
	var t event.Tuple
	t.Key = r.i64("tuple key")
	for i := range t.Fields {
		t.Fields[i] = r.i64("tuple field")
	}
	t.Time = event.Time(r.i64("tuple time"))
	t.IngestNanos = r.i64("tuple ingest")
	t.Stream = r.u8("tuple stream")
	t.QuerySet = r.bits("tuple query-set")
	return t
}

func snapSpec(b []byte, s window.Spec) []byte {
	b = snapU8(b, uint8(s.Kind))
	b = snapI64(b, int64(s.Length))
	b = snapI64(b, int64(s.Slide))
	b = snapI64(b, int64(s.Gap))
	return b
}

func readSnapSpec(r *snapR) window.Spec {
	return window.Spec{
		Kind:   window.Kind(r.u8("spec kind")),
		Length: event.Time(r.i64("spec length")),
		Slide:  event.Time(r.i64("spec slide")),
		Gap:    event.Time(r.i64("spec gap")),
	}
}

// snapQuery serializes a compiled query including its engine-assigned ID
// (checkpoint.MarshalQuery deliberately omits the ID because the replay
// path re-assigns it; a snapshot must restore the exact binding).
func snapQuery(b []byte, q *Query) []byte {
	b = snapI64(b, int64(q.ID))
	b = snapU8(b, uint8(q.Kind))
	b = snapU32(b, uint32(q.Arity))
	for _, p := range q.Predicates {
		b = snapU32(b, uint32(len(p.Conj)))
		for _, c := range p.Conj {
			b = snapI64(b, int64(c.Field))
			b = snapU8(b, uint8(c.Op))
			b = snapI64(b, c.Value)
		}
	}
	b = snapSpec(b, q.Window)
	b = snapSpec(b, q.AggWindow)
	b = snapU8(b, uint8(q.Agg))
	b = snapI64(b, int64(q.AggField))
	return b
}

func readSnapQuery(r *snapR) *Query {
	q := &Query{}
	q.ID = int(r.i64("query id"))
	q.Kind = Kind(r.u8("query kind"))
	q.Arity = int(r.u32("query arity"))
	if r.err == nil && (q.Arity < 0 || q.Arity > 16) {
		r.fail("query arity")
		return q
	}
	q.Predicates = make([]expr.Predicate, q.Arity)
	for i := 0; i < q.Arity && r.err == nil; i++ {
		n := r.count("predicate size", 17)
		for j := 0; j < n; j++ {
			c := expr.Comparison{
				Field: int(r.i64("comparison field")),
				Op:    expr.Op(r.u8("comparison op")),
				Value: r.i64("comparison value"),
			}
			q.Predicates[i] = q.Predicates[i].And(c)
		}
	}
	q.Window = readSnapSpec(r)
	q.AggWindow = readSnapSpec(r)
	q.Agg = sqlstream.AggFunc(r.u8("query agg"))
	q.AggField = int(r.i64("query agg field"))
	return q
}

// --- slice store ---

// snapSliceStore serializes the exact store representation (mode, layout,
// and group structure), not just the tuples: re-inserting tuples through
// Add could cross the adaptive degenerate threshold at a different point
// than the original run did, and the layout must survive restores
// byte-for-byte for replay determinism.
func snapSliceStore(b []byte, s *sliceStore) []byte {
	if s == nil {
		return snapBool(b, false)
	}
	b = snapBool(b, true)
	b = snapU8(b, uint8(s.mode))
	b = snapBool(b, s.grouped)
	b = snapU32(b, uint32(s.count))
	if s.grouped {
		b = snapU32(b, uint32(s.groups.len()))
		for _, g := range s.groups.order {
			b = snapBits(b, g.qs)
			b = snapU32(b, uint32(len(g.tuples)))
			for i := range g.tuples {
				b = snapTuple(b, &g.tuples[i])
			}
		}
		return b
	}
	b = snapU32(b, uint32(len(s.list)))
	for i := range s.list {
		b = snapTuple(b, &s.list[i])
	}
	return b
}

func readSliceStore(r *snapR) *sliceStore {
	if !r.boolean("store present") {
		return nil
	}
	s := &sliceStore{
		mode:    StoreMode(r.u8("store mode")),
		grouped: r.boolean("store grouped"),
		count:   int(r.u32("store count")),
	}
	if s.grouped {
		s.groups = newQSIndex[tupleGroup]()
		ng := r.count("store group count", 8)
		for gi := 0; gi < ng && r.err == nil; gi++ {
			g := &tupleGroup{qs: r.bits("group query-set")}
			nt := r.count("group tuple count", 8)
			for ti := 0; ti < nt && r.err == nil; ti++ {
				g.tuples = append(g.tuples, readTuple(r))
			}
			if r.err == nil {
				s.groups.put(g.qs, g)
			}
		}
		return s
	}
	nt := r.count("store tuple count", 8)
	for ti := 0; ti < nt && r.err == nil; ti++ {
		s.list = append(s.list, readTuple(r))
	}
	return s
}

// --- aggregation slice payload ---

func snapAggVal(b []byte, v *aggVal) []byte {
	b = snapI64(b, v.Count)
	for i := 0; i < event.NumFields; i++ {
		b = snapI64(b, v.Sum[i])
	}
	for i := 0; i < event.NumFields; i++ {
		b = snapI64(b, v.Min[i])
	}
	for i := 0; i < event.NumFields; i++ {
		b = snapI64(b, v.Max[i])
	}
	b = snapI64(b, v.IngestNanos)
	return b
}

func readAggVal(r *snapR) *aggVal {
	v := &aggVal{}
	v.Count = r.i64("aggval count")
	for i := 0; i < event.NumFields; i++ {
		v.Sum[i] = r.i64("aggval sum")
	}
	for i := 0; i < event.NumFields; i++ {
		v.Min[i] = r.i64("aggval min")
	}
	for i := 0; i < event.NumFields; i++ {
		v.Max[i] = r.i64("aggval max")
	}
	v.IngestNanos = r.i64("aggval ingest")
	return v
}

func snapAggIndex(b []byte, x *qsIndex[aggGroup]) []byte {
	if x == nil {
		return snapBool(b, false)
	}
	b = snapBool(b, true)
	b = snapU32(b, uint32(x.len()))
	for _, g := range x.order {
		b = snapBits(b, g.qs)
		b = snapU32(b, uint32(len(g.keys)))
		for _, key := range g.keys {
			b = snapI64(b, key)
			b = snapAggVal(b, g.byKey[key])
		}
	}
	return b
}

func readAggIndex(r *snapR) *qsIndex[aggGroup] {
	if !r.boolean("aggs present") {
		return nil
	}
	x := newQSIndex[aggGroup]()
	ng := r.count("agg group count", 8)
	for gi := 0; gi < ng && r.err == nil; gi++ {
		g := &aggGroup{qs: r.bits("agg group query-set"), byKey: make(map[int64]*aggVal)}
		nk := r.count("agg key count", 8)
		for ki := 0; ki < nk && r.err == nil; ki++ {
			key := r.i64("agg key")
			g.byKey[key] = readAggVal(r)
			g.keys = append(g.keys, key)
		}
		if r.err == nil {
			x.put(g.qs, g)
		}
	}
	return x
}

// --- slicer ---

func snapSlicer(b []byte, s *slicer, payload func([]byte, *slice) []byte) []byte {
	b = snapU64(b, s.nextID)
	b = snapU64(b, s.stride)
	b = snapU32(b, uint32(len(s.epochs)))
	for i := range s.epochs {
		ep := &s.epochs[i]
		b = snapI64(b, int64(ep.from))
		b = snapU64(b, ep.seq)
		b = snapU32(b, uint32(len(ep.specs)))
		for _, sp := range ep.specs {
			b = snapSpec(b, sp)
		}
	}
	b = snapU32(b, uint32(len(s.slices)))
	for _, sl := range s.slices {
		b = snapU64(b, sl.id)
		b = snapI64(b, int64(sl.ext.Start))
		b = snapI64(b, int64(sl.ext.End))
		b = snapU64(b, sl.epoch)
		b = payload(b, sl)
	}
	return b
}

func restoreSlicer(r *snapR, s *slicer, payload func(*snapR, *slice)) {
	s.nextID = r.u64("slicer nextID")
	s.stride = r.u64("slicer stride")
	ne := r.count("slicer epoch count", 16)
	s.epochs = s.epochs[:0]
	for i := 0; i < ne && r.err == nil; i++ {
		ep := epochInfo{
			from: event.Time(r.i64("epoch from")),
			seq:  r.u64("epoch seq"),
		}
		ns := r.count("epoch spec count", 25)
		for j := 0; j < ns && r.err == nil; j++ {
			ep.specs = append(ep.specs, readSnapSpec(r))
		}
		s.epochs = append(s.epochs, ep)
	}
	nsl := r.count("slicer slice count", 32)
	s.slices = s.slices[:0]
	for i := 0; i < nsl && r.err == nil; i++ {
		sl := &slice{
			id: r.u64("slice id"),
			ext: window.Extent{
				Start: event.Time(r.i64("slice start")),
				End:   event.Time(r.i64("slice end")),
			},
			epoch: r.u64("slice epoch"),
		}
		payload(r, sl)
		if r.err == nil {
			s.slices = append(s.slices, sl)
		}
	}
}

// --- changelog table (length-prefixed passthrough) ---

func snapTable(b []byte, t *changelog.Table) []byte {
	return snapBytes(b, t.Snapshot())
}

func readSnapTable(r *snapR) *changelog.Table {
	enc := r.bytes("changelog table")
	if r.err != nil {
		return nil
	}
	t, err := changelog.TableFromSnapshot(enc)
	if err != nil {
		if r.err == nil {
			r.err = err
		}
		return nil
	}
	return t
}

// --- SharedSelection ---

// OnBarrier implements spe.Logic: serialize the versioned predicate table.
func (s *SharedSelection) OnBarrier(uint64, *spe.Emitter) []byte {
	b := snapU8(nil, opSnapshotVersion)
	b = snapI64(b, int64(s.wm))
	b = snapU32(b, uint32(len(s.versions)))
	for i := range s.versions {
		v := &s.versions[i]
		b = snapI64(b, int64(v.from))
		b = snapU32(b, uint32(len(v.entries)))
		for _, e := range v.entries {
			b = snapU32(b, uint32(e.slot))
			b = snapI64(b, int64(e.id))
			b = snapU32(b, uint32(len(e.pred.Conj)))
			for _, c := range e.pred.Conj {
				b = snapI64(b, int64(c.Field))
				b = snapU8(b, uint8(c.Op))
				b = snapI64(b, c.Value)
			}
		}
	}
	return b
}

// Restore implements spe.Restorable.
func (s *SharedSelection) Restore(snapshot []byte) error {
	r := &snapR{b: snapshot}
	if v := r.u8("selection version"); r.err == nil && v != opSnapshotVersion {
		return fmt.Errorf("core: selection snapshot version %d, want %d", v, opSnapshotVersion)
	}
	wm := event.Time(r.i64("selection wm"))
	nv := r.count("selection version count", 12)
	versions := make([]selVersion, 0, nv)
	for i := 0; i < nv && r.err == nil; i++ {
		v := selVersion{from: event.Time(r.i64("version from"))}
		ne := r.count("version entry count", 16)
		for j := 0; j < ne && r.err == nil; j++ {
			e := selEntry{
				slot: int(r.u32("entry slot")),
				id:   int(r.i64("entry id")),
			}
			nc := r.count("entry conj count", 17)
			for k := 0; k < nc && r.err == nil; k++ {
				c := expr.Comparison{
					Field: int(r.i64("conj field")),
					Op:    expr.Op(r.u8("conj op")),
					Value: r.i64("conj value"),
				}
				e.pred = e.pred.And(c)
			}
			v.entries = append(v.entries, e)
		}
		versions = append(versions, v)
	}
	if err := r.finish("selection"); err != nil {
		return err
	}
	if len(versions) == 0 {
		versions = []selVersion{{from: event.MinTime}}
	}
	s.wm = wm
	s.versions = versions
	s.rebuildIndexes()
	return nil
}

// --- SharedJoin ---

// OnBarrier implements spe.Logic: serialize both side slicers (with their
// slice stores), the changelog-set table, and the active query table. The
// pair cache is deliberately excluded — it is a pure memoization over slice
// contents and rebuilds on demand.
func (j *SharedJoin) OnBarrier(uint64, *spe.Emitter) []byte {
	b := snapU8(nil, opSnapshotVersion)
	b = snapU8(b, uint8(j.storeMode))
	b = snapI64(b, int64(j.lastWM))
	b = snapI64(b, int64(j.evictedThru[0]))
	b = snapI64(b, int64(j.evictedThru[1]))
	b = snapTable(b, j.table)
	for _, side := range j.sides {
		b = snapSlicer(b, side, func(b []byte, sl *slice) []byte {
			return snapSliceStore(b, sl.store)
		})
	}
	b = snapU32(b, uint32(len(j.activeOrdered)))
	for _, aq := range j.activeOrdered {
		b = snapQuery(b, aq.q)
		b = snapU32(b, uint32(aq.slot))
		b = snapBool(b, aq.terminal)
		b = snapI64(b, int64(aq.since))
		b = snapI64(b, int64(aq.until))
		b = snapU64(b, aq.endEpoch)
	}
	return b
}

// Restore implements spe.Restorable.
func (j *SharedJoin) Restore(snapshot []byte) error {
	r := &snapR{b: snapshot}
	if v := r.u8("join version"); r.err == nil && v != opSnapshotVersion {
		return fmt.Errorf("core: join snapshot version %d, want %d", v, opSnapshotVersion)
	}
	j.storeMode = StoreMode(r.u8("join store mode"))
	j.lastWM = event.Time(r.i64("join lastWM"))
	j.evictedThru[0] = event.Time(r.i64("join evictedThru[0]"))
	j.evictedThru[1] = event.Time(r.i64("join evictedThru[1]"))
	j.table = readSnapTable(r)
	for _, side := range j.sides {
		restoreSlicer(r, side, func(r *snapR, sl *slice) {
			sl.store = readSliceStore(r)
		})
	}
	nq := r.count("join query count", 32)
	j.active = make(map[int]*joinQuery, nq)
	j.activeOrdered = j.activeOrdered[:0]
	for i := 0; i < nq && r.err == nil; i++ {
		aq := &joinQuery{
			q:        readSnapQuery(r),
			slot:     int(r.u32("join query slot")),
			terminal: r.boolean("join query terminal"),
			since:    event.Time(r.i64("join query since")),
			until:    event.Time(r.i64("join query until")),
			endEpoch: r.u64("join query endEpoch"),
		}
		if r.err == nil {
			j.active[aq.q.ID] = aq
			j.insertOrdered(aq)
		}
	}
	if err := r.finish("join"); err != nil {
		return err
	}
	j.pairCache = make(map[uint64][]event.JoinedTuple)
	j.pairsBySlice = make(map[uint64][]uint64)
	return nil
}

// --- SharedAggregation ---

// OnBarrier implements spe.Logic: serialize the slicer (with per-slice
// partials), the changelog-set table, the versioned masks, and both query
// tables including open session windows.
func (a *SharedAggregation) OnBarrier(uint64, *spe.Emitter) []byte {
	b := snapU8(nil, opSnapshotVersion)
	b = snapU32(b, uint32(a.ports))
	b = snapI64(b, int64(a.lastWM))
	b = snapI64(b, int64(a.evictedThru))
	b = snapTable(b, a.table)
	b = snapSlicer(b, a.sl, func(b []byte, sl *slice) []byte {
		return snapAggIndex(b, sl.aggs)
	})
	b = snapU32(b, uint32(len(a.maskVersions)))
	for i := range a.maskVersions {
		mv := &a.maskVersions[i]
		b = snapI64(b, int64(mv.from))
		b = snapU32(b, uint32(len(mv.portMasks)))
		for _, pm := range mv.portMasks {
			b = snapBits(b, pm)
		}
		b = snapBits(b, mv.selMask)
		b = snapBits(b, mv.sessMask)
	}
	b = snapU32(b, uint32(len(a.activeOrdered)))
	for _, aq := range a.activeOrdered {
		b = snapAggQuery(b, aq, true)
	}
	b = snapU32(b, uint32(len(a.selOrdered)))
	for _, sq := range a.selOrdered {
		b = snapAggQuery(b, sq, false)
	}
	return b
}

func snapAggQuery(b []byte, aq *aggQuery, withSessions bool) []byte {
	b = snapQuery(b, aq.q)
	b = snapU32(b, uint32(aq.slot))
	b = snapU32(b, uint32(aq.port))
	b = snapI64(b, int64(aq.since))
	b = snapI64(b, int64(aq.until))
	b = snapU64(b, aq.endEpoch)
	if !withSessions {
		return b
	}
	if aq.sessions == nil {
		return snapBool(b, false)
	}
	b = snapBool(b, true)
	b = snapU32(b, uint32(len(aq.sessKeys)))
	for _, key := range aq.sessKeys {
		b = snapI64(b, key)
		open := aq.sessions[key].OpenSessions()
		b = snapU32(b, uint32(len(open)))
		for _, w := range open {
			b = snapI64(b, int64(w.Start))
			b = snapI64(b, int64(w.End))
			b = snapI64(b, w.Sum)
			b = snapI64(b, w.Count)
		}
	}
	return b
}

func readAggQuery(r *snapR, withSessions bool) *aggQuery {
	aq := &aggQuery{
		q:        readSnapQuery(r),
		slot:     int(r.u32("agg query slot")),
		port:     int(r.u32("agg query port")),
		since:    event.Time(r.i64("agg query since")),
		until:    event.Time(r.i64("agg query until")),
		endEpoch: r.u64("agg query endEpoch"),
	}
	if !withSessions {
		return aq
	}
	if !r.boolean("agg query sessions present") {
		return aq
	}
	aq.sessions = make(map[int64]*window.SessionState)
	nk := r.count("session key count", 12)
	for ki := 0; ki < nk && r.err == nil; ki++ {
		key := r.i64("session key")
		nw := r.count("open session count", 32)
		open := make([]window.OpenSession, 0, nw)
		for wi := 0; wi < nw && r.err == nil; wi++ {
			open = append(open, window.OpenSession{
				Start: event.Time(r.i64("session start")),
				End:   event.Time(r.i64("session end")),
				Sum:   r.i64("session sum"),
				Count: r.i64("session count"),
			})
		}
		if r.err == nil {
			aq.sessions[key] = window.RestoreSessionState(aq.spec().Gap, open)
			aq.sessKeys = append(aq.sessKeys, key) // serialized in sorted order
		}
	}
	return aq
}

// Restore implements spe.Restorable.
func (a *SharedAggregation) Restore(snapshot []byte) error {
	r := &snapR{b: snapshot}
	if v := r.u8("agg version"); r.err == nil && v != opSnapshotVersion {
		return fmt.Errorf("core: aggregation snapshot version %d, want %d", v, opSnapshotVersion)
	}
	if ports := int(r.u32("agg ports")); r.err == nil && ports != a.ports {
		return fmt.Errorf("core: aggregation snapshot has %d ports, instance has %d", ports, a.ports)
	}
	a.lastWM = event.Time(r.i64("agg lastWM"))
	a.evictedThru = event.Time(r.i64("agg evictedThru"))
	a.table = readSnapTable(r)
	restoreSlicer(r, a.sl, func(r *snapR, sl *slice) {
		sl.aggs = readAggIndex(r)
	})
	nmv := r.count("mask version count", 20)
	a.maskVersions = a.maskVersions[:0]
	for i := 0; i < nmv && r.err == nil; i++ {
		mv := maskVersion{from: event.Time(r.i64("mask from"))}
		np := r.count("port mask count", 4)
		mv.portMasks = make([]bitset.Bits, 0, np)
		for p := 0; p < np && r.err == nil; p++ {
			mv.portMasks = append(mv.portMasks, r.bits("port mask"))
		}
		mv.selMask = r.bits("sel mask")
		mv.sessMask = r.bits("sess mask")
		a.maskVersions = append(a.maskVersions, mv)
	}
	na := r.count("agg active count", 32)
	a.active = make(map[int]*aggQuery, na)
	a.activeOrdered = a.activeOrdered[:0]
	for i := 0; i < na && r.err == nil; i++ {
		aq := readAggQuery(r, true)
		if r.err == nil {
			a.active[aq.q.ID] = aq
			a.activeOrdered = insertBySlot(a.activeOrdered, aq)
		}
	}
	ns := r.count("agg selection count", 32)
	a.selection = make(map[int]*aggQuery, ns)
	a.selOrdered = a.selOrdered[:0]
	for i := 0; i < ns && r.err == nil; i++ {
		sq := readAggQuery(r, false)
		if r.err == nil {
			a.selection[sq.q.ID] = sq
			a.selOrdered = insertBySlot(a.selOrdered, sq)
		}
	}
	if err := r.finish("aggregation"); err != nil {
		return err
	}
	if len(a.maskVersions) == 0 {
		a.maskVersions = []maskVersion{{from: event.MinTime, portMasks: make([]bitset.Bits, a.ports)}}
	}
	// The merge tree is derived from the slice ring; a fresh instance
	// re-anchors on the next fire batch.
	a.rebuildMergeTree()
	return nil
}
