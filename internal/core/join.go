package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"astream/internal/bitset"
	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/spe"
	"astream/internal/window"
)

// joinQuery is one query active at a join stage.
type joinQuery struct {
	q    *Query
	slot int
	// terminal: this stage produces the query's final join results, routed
	// to the query's sink. Otherwise results flow downstream (next join
	// stage or the shared aggregation for complex queries).
	terminal bool
	// since is the query's activation event-time: windows ending at or
	// before it hold nothing for the query and are skipped. Skipping them
	// is also what keeps the pair cache sound: it guarantees every slice
	// overlapping a fired window is already complete (its end is behind
	// the watermark), so cached pair results are never computed from a
	// half-filled slice.
	since event.Time
	// until is the query's deletion event-time (MaxTime while running).
	// Deletion is deferred: windows ending at or before until still fire,
	// so results depend only on event times — the determinism the paper's
	// §3.3 replayability requires — never on cross-sender arrival races.
	until event.Time
	// endEpoch caps changelog-set masking for a deleted query: its slot is
	// only meaningful up to the epoch before its deletion changelog.
	endEpoch uint64
}

// SharedJoin is the shared windowed equi-join operator (paper §3.1.4). One
// instance holds the slices of both input sides for its key partition, joins
// overlapping slices exactly once, caches the per-pair results, and reuses
// them for every query window that covers the pair — the incremental, delta
// style of Figure 4f.
type SharedJoin struct {
	spe.BaseLogic
	//lint:ephemeral topology constant fixed at construction
	stage     int // 0 joins streams 0⋈1; stage k joins (stage k-1)⋈(stream k+1)
	storeMode StoreMode
	sides     [2]*slicer
	table     *changelog.Table
	//lint:ephemeral derived index over the serialized activeOrdered list
	active map[int]*joinQuery // by query ID
	// activeOrdered mirrors active sorted by (slot, query ID): the
	// watermark-path iteration order is maintained incrementally on
	// changelog/purge instead of sorted per emission (replay determinism
	// without hot-path sorts).
	activeOrdered []*joinQuery
	//lint:ephemeral constructor wiring (result router)
	router *Router
	//lint:ephemeral constructor wiring (metrics sink)
	metrics *OpMetrics
	//lint:ephemeral constructor wiring (allowed-lateness config)
	lateness event.Time
	lastWM   event.Time

	//lint:ephemeral derived memoization over slice contents, reset by Restore and refilled on demand
	pairCache map[uint64][]event.JoinedTuple
	//lint:ephemeral derived eviction index for pairCache, reset alongside it
	pairsBySlice map[uint64][]uint64 // slice id -> pair keys to drop on evict
	evictedThru  [2]event.Time

	// Steady-state scratch (owned by the instance goroutine, §3.2.2's
	// no-allocation discipline): the slice ⋈ slice kernel index, the
	// per-trigger grouping, and the query-set intersection temporaries.
	//lint:ephemeral per-trigger scratch
	scratch joinScratch //lint:pooled scratch slice-join kernel scratch arena
	//lint:ephemeral per-trigger scratch
	trigTmp []*joinTrigger //lint:pooled scratch per-trigger grouping scratch
	//lint:ephemeral per-trigger scratch
	capTmp []*capGroup //lint:pooled scratch per-trigger cap-grouping scratch
	//lint:ephemeral per-trigger scratch
	effTmp bitset.Bits //lint:pooled scratch per-trigger effective-query scratch
	//lint:ephemeral per-trigger scratch
	pmTmp bitset.Bits //lint:pooled scratch per-trigger port-mask scratch
	//lint:ephemeral per-trigger scratch
	specsTmp []window.Spec //lint:pooled scratch per-trigger window-spec scratch
}

// NewSharedJoin constructs the logic for one join-stage instance.
func NewSharedJoin(stage int, storeMode StoreMode, lateness event.Time, router *Router, m *OpMetrics) *SharedJoin {
	return &SharedJoin{
		stage:     stage,
		storeMode: storeMode,
		// Slice IDs are namespaced per side (even/odd) so the pair cache
		// and eviction index never confuse a left slice with a right one.
		sides:        [2]*slicer{newSlicerWithIDs(0, 2), newSlicerWithIDs(1, 2)},
		table:        changelog.NewTable(),
		active:       make(map[int]*joinQuery),
		router:       router,
		metrics:      m,
		lateness:     lateness,
		lastWM:       event.MinTime,
		pairCache:    make(map[uint64][]event.JoinedTuple),
		pairsBySlice: make(map[uint64][]uint64),
		evictedThru:  [2]event.Time{event.MinTime, event.MinTime},
	}
}

// queryAtStage reports whether q participates in this join stage and whether
// the stage is terminal for it.
func queryAtStage(q *Query, stage int) (participates, terminal bool) {
	if q.Kind != KindJoin && q.Kind != KindComplex {
		return false, false
	}
	lastStage := q.Arity - 2
	if stage > lastStage {
		return false, false
	}
	return true, stage == lastStage && q.Kind == KindJoin
}

// insertOrdered adds aq to the slot-ordered active list (binary insert; the
// changelog path is cold).
func (j *SharedJoin) insertOrdered(aq *joinQuery) {
	i := sort.Search(len(j.activeOrdered), func(i int) bool {
		o := j.activeOrdered[i]
		if o.slot != aq.slot {
			return o.slot > aq.slot
		}
		return o.q.ID > aq.q.ID
	})
	j.activeOrdered = append(j.activeOrdered, nil)
	copy(j.activeOrdered[i+1:], j.activeOrdered[i:])
	j.activeOrdered[i] = aq
}

// removeOrdered drops purged queries from the ordered list in place.
func (j *SharedJoin) removeOrdered(gone func(*joinQuery) bool) {
	kept := j.activeOrdered[:0]
	for _, aq := range j.activeOrdered {
		if !gone(aq) {
			kept = append(kept, aq)
		}
	}
	for i := len(kept); i < len(j.activeOrdered); i++ {
		j.activeOrdered[i] = nil
	}
	j.activeOrdered = kept
}

// OnChangelog updates the active query set, registers the new epoch with
// both side slicers, and extends the changelog-set table (Equation 1).
func (j *SharedJoin) OnChangelog(payload any, at event.Time, _ *spe.Emitter) {
	msg := payload.(*ChangelogMsg)
	for _, d := range msg.CL.Deleted {
		if aq, ok := j.active[d.Query]; ok {
			aq.until = at
			aq.endEpoch = msg.CL.Seq - 1
		}
	}
	for _, c := range msg.CL.Created {
		q := msg.Defs[c.Query]
		if q == nil {
			continue
		}
		if part, term := queryAtStage(q, j.stage); part {
			aq := &joinQuery{
				q: q, slot: c.Slot, terminal: term,
				since: at, until: event.MaxTime, endEpoch: ^uint64(0),
			}
			j.active[c.Query] = aq
			j.insertOrdered(aq)
		}
	}
	specs := j.activeSpecs()
	for _, side := range j.sides {
		if err := side.addEpoch(at, msg.CL.Seq, specs); err != nil {
			panic(fmt.Sprintf("core: join epoch: %v", err))
		}
	}
	if err := j.table.Add(msg.CL); err != nil {
		panic(fmt.Sprintf("core: join table: %v", err))
	}
	// §3.2.3: the session's store marker switches every slice's data
	// structure at once, and new slices follow suit.
	switch msg.Switch {
	case SwitchList:
		j.storeMode = StoreList
	case SwitchGrouped:
		j.storeMode = StoreGrouped
	default:
		return
	}
	for _, side := range j.sides {
		for _, sl := range side.slices {
			if sl.store != nil {
				sl.store.setMode(j.storeMode)
			}
		}
	}
}

// activeSpecs returns the window specs that shape slicing going forward:
// only queries that are still running contribute boundaries. The result is
// stored by the slicers' epoch history, so it must be a fresh slice.
func (j *SharedJoin) activeSpecs() []window.Spec {
	specs := make([]window.Spec, 0, len(j.activeOrdered))
	for _, aq := range j.activeOrdered {
		if aq.until == event.MaxTime {
			specs = append(specs, aq.q.Window)
		}
	}
	return specs
}

// retentionSpecs additionally includes pending-deleted queries, whose final
// windows may still need old slices.
func (j *SharedJoin) retentionSpecs() []window.Spec {
	specs := j.specsTmp[:0]
	for _, aq := range j.activeOrdered {
		specs = append(specs, aq.q.Window)
	}
	j.specsTmp = specs
	return specs
}

// OnTuple stores the tuple in its side's slice. Tuples are saved exactly
// once per slice (paper §3.2.2: no data copy inside shared operators).
func (j *SharedJoin) OnTuple(port int, t event.Tuple, _ *spe.Emitter) {
	if t.Time < j.evictedThru[port] {
		atomic.AddUint64(&j.metrics.Late, 1)
		return
	}
	sl := j.sides[port].sliceFor(t.Time)
	if sl.store == nil {
		sl.store = newSliceStore(j.storeMode)
	}
	sl.store.Add(t)
}

// joinTrigger collects the queries fired by one window extent.
type joinTrigger struct {
	ext     window.Extent
	queries []*joinQuery
}

// triggerFor returns the trigger for ext, creating it in (End, Start) order.
// The trigger list is kept sorted by binary insertion instead of sorted per
// watermark.
func (j *SharedJoin) triggerFor(ext window.Extent) *joinTrigger {
	i := sort.Search(len(j.trigTmp), func(i int) bool {
		t := j.trigTmp[i]
		if t.ext.End != ext.End {
			return t.ext.End > ext.End
		}
		return t.ext.Start > ext.Start
	})
	if i < len(j.trigTmp) && j.trigTmp[i].ext == ext {
		return j.trigTmp[i]
	}
	tr := &joinTrigger{ext: ext}
	j.trigTmp = append(j.trigTmp, nil)
	copy(j.trigTmp[i+1:], j.trigTmp[i:])
	j.trigTmp[i] = tr
	return tr
}

// OnWatermark triggers every query window ending in (lastWM, wm], joining
// slice pairs at most once and reusing cached pair results across queries
// and windows, then evicts slices no active window can still need.
func (j *SharedJoin) OnWatermark(wm event.Time, out *spe.Emitter) {
	if wm <= j.lastWM {
		return
	}
	// Clamp the trigger range to where data exists: before the first
	// watermark lastWM is MinTime, and windows before the oldest slice are
	// empty by construction.
	lo := j.lastWM
	if lo == event.MinTime {
		first := event.MaxTime
		for _, s := range j.sides {
			if f, ok := s.firstSliceStart(); ok && f < first {
				first = f
			}
		}
		if first == event.MaxTime {
			// No data at all yet: nothing can fire.
			lo = wm
		} else {
			lo = first
		}
	}

	// Group triggered queries by window extent so each extent is processed
	// once even when many queries share it. activeOrdered keeps the
	// per-trigger query lists deterministic.
	j.trigTmp = j.trigTmp[:0]
	for _, aq := range j.activeOrdered {
		qlo := lo
		if aq.since > qlo {
			qlo = aq.since // pre-activation windows are empty for aq
		}
		for _, ext := range aq.q.Window.WindowsEndingIn(qlo, wm) {
			if ext.End > aq.until {
				continue // window closes after the query's deletion
			}
			tr := j.triggerFor(ext)
			tr.queries = append(tr.queries, aq)
		}
	}

	cur := j.table.Latest()
	for _, tr := range j.trigTmp {
		j.fireWindow(tr.ext, tr.queries, cur, out)
	}
	// Purge queries whose deletion time the watermark has passed: every
	// window they could still fire has fired.
	purged := false
	for id, aq := range j.active {
		if aq.until <= wm {
			delete(j.active, id)
			purged = true
		}
	}
	if purged {
		j.removeOrdered(func(aq *joinQuery) bool { return aq.until <= wm })
	}

	// Evict slices whose last covering window of any active query has
	// closed, drop their cached pairs, and compact changelog history.
	// Retention considers pending-deleted queries too: their final windows
	// (ending ≤ until) may not have fired yet.
	specs := j.retentionSpecs()
	retain := func(sl *slice) event.Time {
		r := sl.ext.End
		for _, sp := range specs {
			if e := sp.LastWindowEndCovering(sl.ext.Start); e > r {
				r = e
			}
		}
		return r
	}
	for side, s := range j.sides {
		s.evict(wm, retain, func(sl *slice) {
			if sl.ext.End > j.evictedThru[side] {
				j.evictedThru[side] = sl.ext.End
			}
			for _, pk := range j.pairsBySlice[sl.id] {
				delete(j.pairCache, pk)
			}
			delete(j.pairsBySlice, sl.id)
		})
		s.pruneEpochs(wm - j.lateness)
	}
	// Compact changelog rows older than every live slice AND every epoch a
	// not-yet-late tuple could still be assigned to.
	oldest := j.sides[0].oldestEpochInUse()
	for _, s := range j.sides {
		if o := s.oldestEpochInUse(); o < oldest {
			oldest = o
		}
		if o := s.minFutureEpoch(wm - j.lateness); o < oldest {
			oldest = o
		}
	}
	j.table.Compact(oldest)
	j.lastWM = wm
}

// capGroup batches the queries of one trigger by their changelog-set cap:
// running queries mask up to the current epoch; deleted-but-unpurged ones
// mask only up to the epoch before their deletion.
type capGroup struct {
	cap       uint64
	terminals []*joinQuery
	passBits  bitset.Bits
	anyPass   bool
}

// groupByCap buckets the trigger's queries by cap into the reused capTmp
// slice (caps per trigger are few: a linear scan beats a map and allocates
// nothing in steady state).
func (j *SharedJoin) groupByCap(queries []*joinQuery, curEpoch uint64) []*capGroup {
	groups := j.capTmp[:0]
	for _, aq := range queries {
		capTo := curEpoch
		if aq.endEpoch < capTo {
			capTo = aq.endEpoch
		}
		var g *capGroup
		for _, cg := range groups {
			if cg.cap == capTo {
				g = cg
				break
			}
		}
		if g == nil {
			if len(groups) < cap(groups) {
				// Reuse a retired capGroup (and its slices) if one exists.
				groups = groups[:len(groups)+1]
				if groups[len(groups)-1] == nil {
					groups[len(groups)-1] = &capGroup{}
				}
			} else {
				groups = append(groups, &capGroup{})
			}
			g = groups[len(groups)-1]
			g.cap = capTo
			g.terminals = g.terminals[:0]
			g.passBits.Reset()
			g.anyPass = false
		}
		if aq.terminal {
			g.terminals = append(g.terminals, aq)
		} else {
			g.passBits.Set(aq.slot)
			g.anyPass = true
		}
	}
	j.capTmp = groups
	return groups
}

// fireWindow emits results for one window extent on behalf of the queries
// listed.
func (j *SharedJoin) fireWindow(ext window.Extent, queries []*joinQuery, curEpoch uint64, out *spe.Emitter) {
	left := j.sides[0].overlapping(ext)
	right := j.sides[1].overlapping(ext)
	if len(left) == 0 || len(right) == 0 {
		return
	}
	groups := j.groupByCap(queries, curEpoch)

	for _, sa := range left {
		if sa.store == nil || sa.store.Len() == 0 {
			continue
		}
		for _, sb := range right {
			if sb.store == nil || sb.store.Len() == 0 {
				continue
			}
			results := j.pairResults(sa, sb)
			if len(results) == 0 {
				continue
			}
			newer := sa.epoch
			if sb.epoch > newer {
				newer = sb.epoch
			}
			tick := j.metrics.start()
			for _, g := range groups {
				if g.cap < j.table.Base() {
					// Every slice as old as this cap is gone: the group's
					// queries have no data left anywhere.
					continue
				}
				relNow, err := j.table.Rel(newer, g.cap)
				if err != nil {
					panic(fmt.Sprintf("core: join relNow: %v", err))
				}
				if relNow.IsEmpty() {
					continue
				}
				for i := range results {
					jt := &results[i]
					// eff = jt.QuerySet ∩ relNow in scratch: nothing
					// allocated per result.
					jt.QuerySet.AndInto(relNow, &j.effTmp)
					if j.effTmp.IsEmpty() {
						continue
					}
					for _, aq := range g.terminals {
						if j.effTmp.Test(aq.slot) {
							atomic.AddUint64(&j.metrics.JoinedOut, 1)
							j.router.Deliver(Result{
								QueryID:     aq.q.ID,
								Kind:        KindJoin,
								Window:      ext,
								Join:        *jt,
								EventTime:   jt.Time,
								IngestNanos: jt.IngestNanos,
							})
						}
					}
					if g.anyPass {
						j.effTmp.AndInto(g.passBits, &j.pmTmp)
						if !j.pmTmp.IsEmpty() {
							t := jt.AsTuple()
							t.QuerySet = j.pmTmp.Clone()
							// Re-timestamp to the window's max timestamp
							// (as Flink does for window joins) so the
							// result is never late for the downstream
							// stage, whose watermark already trails this
							// window's end.
							t.Time = ext.End - 1
							out.EmitTuple(t)
						}
					}
				}
			}
			j.metrics.BitsetOps.observe(tick, j.metrics)
		}
	}
}

// pairResults returns the cached join of two slices, computing it on first
// use (the computation history of §3.1.4).
func (j *SharedJoin) pairResults(sa, sb *slice) []event.JoinedTuple {
	pk := sa.id<<32 | sb.id
	if res, ok := j.pairCache[pk]; ok {
		atomic.AddUint64(&j.metrics.PairsReuse, 1)
		return res
	}
	rel, err := j.table.Rel(sa.epoch, sb.epoch)
	if err != nil {
		panic(fmt.Sprintf("core: join rel: %v", err))
	}
	var results []event.JoinedTuple
	if !rel.IsEmpty() {
		j.scratch.join(sa.store, sb.store, rel, &results)
	}
	atomic.AddUint64(&j.metrics.PairsDone, 1)
	j.pairCache[pk] = results
	j.pairsBySlice[sa.id] = append(j.pairsBySlice[sa.id], pk)
	j.pairsBySlice[sb.id] = append(j.pairsBySlice[sb.id], pk)
	return results
}

// ActiveQueries reports the number of queries registered at this stage.
func (j *SharedJoin) ActiveQueries() int { return len(j.active) }

// LiveSlices reports live slice counts per side (tests/metrics).
func (j *SharedJoin) LiveSlices() (int, int) {
	return j.sides[0].liveSlices(), j.sides[1].liveSlices()
}

// CachedPairs reports the pair-cache size (tests/metrics).
func (j *SharedJoin) CachedPairs() int { return len(j.pairCache) }
