package core

import (
	"fmt"
	"math/rand"
	"testing"

	"astream/internal/bitset"
	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/spe"
	"astream/internal/window"
)

// BenchmarkAblationSliceStore contrasts the grouped, list, and adaptive
// slice stores on the slice-join kernel (paper §3.1.4's data-structure
// heuristic). Few distinct query-sets favour grouping; many favour the list.
func BenchmarkAblationSliceStore(b *testing.B) {
	scenarios := []struct {
		name     string
		distinct int // distinct query-sets among tuples
	}{
		{"fewGroups", 4},
		{"manyGroups", 512},
	}
	modes := []StoreMode{StoreGrouped, StoreList, StoreAdaptive}
	for _, sc := range scenarios {
		for _, mode := range modes {
			b.Run(sc.name+"/"+mode.String(), func(b *testing.B) {
				// Single-bit query-sets: two groups join only when they
				// share the bit, so group-level pruning can skip
				// (distinct-1)/distinct of all group pairs.
				mkStore := func(seed int64) *sliceStore {
					r := rand.New(rand.NewSource(seed))
					s := newSliceStore(mode)
					for i := 0; i < 2000; i++ {
						qs := bitset.FromIndexes(r.Intn(sc.distinct))
						s.Add(event.Tuple{Key: int64(r.Intn(100)), Time: event.Time(i), QuerySet: qs})
					}
					return s
				}
				sa, sb := mkStore(2), mkStore(3)
				mask := bitset.AllUpTo(sc.distinct)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n := 0
					joinStores(sa, sb, mask, func(event.JoinedTuple) { n++ })
					if n == 0 {
						b.Fatal("join produced nothing")
					}
				}
			})
		}
	}
}

// BenchmarkAblationChangelogDP contrasts Equation 1's DP table against
// recomputing AND-chains for non-adjacent slice relations.
func BenchmarkAblationChangelogDP(b *testing.B) {
	reg := changelog.NewRegistry(changelog.SlotReuse)
	tb := changelog.NewTable()
	var logs []*changelog.Changelog
	id := 1
	for step := 0; step < 256; step++ {
		var del []int
		if id > 16 {
			del = []int{id - 16}
		}
		cl, err := reg.Apply(event.Time(step), []int{id}, del)
		if err != nil {
			b.Fatal(err)
		}
		logs = append(logs, cl)
		if err := tb.Add(cl); err != nil {
			b.Fatal(err)
		}
		id++
	}
	b.Run("dp-table", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := uint64(1); j < 256; j += 17 {
				if _, err := tb.Rel(256, j); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("and-chain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := uint64(1); j < 256; j += 17 {
				changelog.RelChain(logs, 256, j)
			}
		}
	})
}

// BenchmarkAblationSelectionIndex contrasts the compiled predicate index
// (DESIGN.md §14) against the naive per-query scan it replaced, on the
// shared selection's OnTuple path at the paper's high-query-count regime
// (Fig. 9's query-count axis). Two workloads: "overlap" is the templated
// 512q kernel population (few templates, many subscribers — the index's
// best case), "random" mirrors the §4.2.2 generator (uniform field/op/
// constant with the 0.2-selectivity floor — little dedup, mostly one-sided
// ranges on the stabbing index). The scan arm is forced by installing a
// no-op fault hook, exactly the mechanism fault injection uses to demand
// per-entry evaluation.
func BenchmarkAblationSelectionIndex(b *testing.B) {
	genEntries := func(n int) []selEntry {
		r := rand.New(rand.NewSource(int64(n)))
		ops := []expr.Op{expr.LT, expr.GT, expr.EQ, expr.LE, expr.GE}
		entries := make([]selEntry, n)
		for s := range entries {
			var p expr.Predicate
			for {
				c := expr.Comparison{
					Field: r.Intn(event.NumFields),
					Op:    ops[r.Intn(len(ops))],
					Value: r.Int63n(1000),
				}
				p = expr.True().And(c)
				if p.Selectivity(1000) >= 0.2 {
					break
				}
			}
			entries[s] = selEntry{slot: s, id: s + 1, pred: p}
		}
		return entries
	}
	workloads := []struct {
		name string
		mk   func(n int) []selEntry
	}{
		{"overlap", overlapEntries},
		{"random", genEntries},
	}
	for _, wl := range workloads {
		for _, n := range []int{64, 128, 256, 512} {
			for _, mode := range []string{"index", "scan"} {
				b.Run(fmt.Sprintf("%s/%dq/%s", wl.name, n, mode), func(b *testing.B) {
					sel := NewSharedSelection(0, 0, NewOpMetrics(nil))
					if mode == "scan" {
						sel.faultHook = nopHook{}
					}
					sel.installTable(wl.mk(n))
					em := &spe.Emitter{}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						sel.OnTuple(0, benchTuple(i, bitset.Bits{}, 50), em)
					}
				})
			}
		}
	}
}

// BenchmarkAblationWindowFire contrasts the shared window-fire engine
// (DESIGN.md §15: merge tree + class dedup + fingerprint fan-out) against
// the per-slice re-merge arm it replaced, across window/slide ratios (how
// many slices one window spans) and query counts (how much combine work the
// classes dedup). The re-merge arm is forced by disabling the tree, exactly
// the mechanism fault injection uses. Each iteration folds one fresh tuple
// and fires one full-length window, mirroring the windowfire kernel.
func BenchmarkAblationWindowFire(b *testing.B) {
	for _, ratio := range []int{8, 32, 128} {
		for _, queries := range []int{16, 64, 256} {
			for _, mode := range []string{"remerge", "tree"} {
				b.Run(fmt.Sprintf("ratio%d/%dq/%s", ratio, queries, mode), func(b *testing.B) {
					length := event.Time(ratio * 100)
					agg := benchAggWindow(queries, window.SlidingSpec(length, 100))
					if mode == "remerge" {
						agg.disableMergeTree()
					}
					qs := bitset.AllUpTo(queries)
					em := &spe.Emitter{}
					// ~16 tuples per slice over 32 keys.
					for i := 0; i < 16*ratio; i++ {
						agg.OnTuple(0, benchTuple(i, qs, event.Time(i)*100/16%length), em)
					}
					ext := window.Extent{Start: 0, End: length}
					agg.fireBench(ext)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						agg.OnTuple(0, benchTuple(i, qs, length-1), em)
						agg.fireBench(ext)
					}
				})
			}
		}
	}
}

// BenchmarkAblationAppendOnlyQuerySets contrasts slot reuse (Figure 3c)
// with append-only slots (Figure 3b): after heavy churn, append-only
// query-sets are wide and sparse, and every bitset operation pays for it.
func BenchmarkAblationAppendOnlyQuerySets(b *testing.B) {
	for _, mode := range []changelog.Mode{changelog.SlotReuse, changelog.AppendOnly} {
		b.Run(mode.String(), func(b *testing.B) {
			reg := changelog.NewRegistry(mode)
			id := 1
			// Churn: 10 live queries, 2000 total created.
			for step := 0; step < 2000; step++ {
				var del []int
				if id > 10 {
					del = []int{id - 10}
				}
				if _, err := reg.Apply(event.Time(step), []int{id}, del); err != nil {
					b.Fatal(err)
				}
				id++
			}
			active := reg.ActiveSlots()
			probe := active.Clone()
			b.ReportMetric(float64(reg.NumSlots()), "slots")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !active.Intersects(probe) {
					b.Fatal("must intersect")
				}
				_ = active.And(probe)
			}
		})
	}
}
