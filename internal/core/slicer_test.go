package core

import (
	"testing"

	"astream/internal/event"
	"astream/internal/window"
)

func TestSlicerNoQueriesOneBigSliceUntilEpoch(t *testing.T) {
	s := newSlicer()
	sl := s.sliceFor(50)
	if sl.ext.Start != event.MinTime || sl.ext.End != event.MaxTime {
		t.Fatalf("no-spec slice extent = %v", sl.ext)
	}
	if s.sliceFor(90) != sl {
		t.Fatal("same slice should be returned")
	}
}

func TestSlicerCutsAtWindowEdgesAndEpochs(t *testing.T) {
	s := newSlicer()
	// Epoch 1 at t=10 with a tumbling(10) query.
	if err := s.addEpoch(10, 1, []window.Spec{window.TumblingSpec(10)}); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 at t=35 adds a sliding(10,5) query.
	if err := s.addEpoch(35, 2, []window.Spec{window.TumblingSpec(10), window.SlidingSpec(10, 5)}); err != nil {
		t.Fatal(err)
	}

	// t=5: before epoch 1 → one open-ended slice clipped at 10.
	sl := s.sliceFor(5)
	if sl.ext != (window.Extent{Start: event.MinTime, End: 10}) || sl.epoch != 0 {
		t.Fatalf("pre-epoch slice = %v epoch %d", sl.ext, sl.epoch)
	}
	// t=12: inside epoch 1; tumbling edges at 10, 20 → [10,20).
	sl = s.sliceFor(12)
	if sl.ext != (window.Extent{Start: 10, End: 20}) || sl.epoch != 1 {
		t.Fatalf("epoch1 slice = %v epoch %d", sl.ext, sl.epoch)
	}
	// t=33: tumbling edges 30,40, epoch boundary 35 → [30,35).
	sl = s.sliceFor(33)
	if sl.ext != (window.Extent{Start: 30, End: 35}) || sl.epoch != 1 {
		t.Fatalf("pre-epoch2 slice = %v epoch %d", sl.ext, sl.epoch)
	}
	// t=36: epoch 2; edges: tumbling 40, sliding starts 35/40, sliding ends
	// 40/45 → [35,40).
	sl = s.sliceFor(36)
	if sl.ext != (window.Extent{Start: 35, End: 40}) || sl.epoch != 2 {
		t.Fatalf("epoch2 slice = %v epoch %d", sl.ext, sl.epoch)
	}
	// Slices tile without overlap.
	exts := map[window.Extent]bool{}
	for _, sl := range s.slices {
		if exts[sl.ext] {
			t.Fatalf("duplicate slice extent %v", sl.ext)
		}
		exts[sl.ext] = true
	}
	for i := 1; i < len(s.slices); i++ {
		if s.slices[i-1].ext.End > s.slices[i].ext.Start {
			t.Fatalf("overlapping slices %v, %v", s.slices[i-1].ext, s.slices[i].ext)
		}
	}
}

func TestSlicerLazyCreationOrderIndependent(t *testing.T) {
	build := func(times []event.Time) []window.Extent {
		s := newSlicer()
		if err := s.addEpoch(0, 1, []window.Spec{window.SlidingSpec(6, 3)}); err != nil {
			t.Fatal(err)
		}
		for _, tm := range times {
			s.sliceFor(tm)
		}
		var out []window.Extent
		for _, sl := range s.slices {
			out = append(out, sl.ext)
		}
		return out
	}
	a := build([]event.Time{1, 4, 7, 10, 13})
	b := build([]event.Time{13, 1, 10, 4, 7})
	if len(a) != len(b) {
		t.Fatalf("slice counts differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slice extents differ: %v vs %v", a, b)
		}
	}
}

func TestSlicerOverlapping(t *testing.T) {
	s := newSlicer()
	if err := s.addEpoch(0, 1, []window.Spec{window.TumblingSpec(10)}); err != nil {
		t.Fatal(err)
	}
	for _, tm := range []event.Time{5, 15, 25, 35} {
		s.sliceFor(tm)
	}
	got := s.overlapping(window.Extent{Start: 10, End: 30})
	if len(got) != 2 || got[0].ext.Start != 10 || got[1].ext.Start != 20 {
		t.Fatalf("overlapping = %v", got)
	}
	if n := len(s.overlapping(window.Extent{Start: 100, End: 200})); n != 0 {
		t.Fatalf("overlapping empty range = %d", n)
	}
}

func TestSlicerEvict(t *testing.T) {
	s := newSlicer()
	if err := s.addEpoch(0, 1, []window.Spec{window.TumblingSpec(10)}); err != nil {
		t.Fatal(err)
	}
	for _, tm := range []event.Time{5, 15, 25} {
		s.sliceFor(tm)
	}
	var evicted []window.Extent
	retain := func(sl *slice) event.Time { return sl.ext.End }
	s.evict(20, retain, func(sl *slice) { evicted = append(evicted, sl.ext) })
	if len(evicted) != 2 || s.liveSlices() != 1 {
		t.Fatalf("evicted %v, live %d", evicted, s.liveSlices())
	}
	// A slice whose end is past the watermark is never evicted even if its
	// retention horizon has passed.
	s2 := newSlicer()
	if err := s2.addEpoch(0, 1, []window.Spec{window.TumblingSpec(10)}); err != nil {
		t.Fatal(err)
	}
	s2.sliceFor(5)
	s2.evict(7, func(*slice) event.Time { return 0 }, func(*slice) { t.Fatal("must not evict open slice") })
}

func TestSlicerEpochBookkeeping(t *testing.T) {
	s := newSlicer()
	if s.currentEpoch() != 0 {
		t.Fatal("fresh slicer epoch should be 0")
	}
	if err := s.addEpoch(10, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.addEpoch(5, 2, nil); err == nil {
		t.Fatal("epoch time regression must fail")
	}
	if err := s.addEpoch(20, 3, nil); err == nil {
		t.Fatal("epoch seq gap must fail")
	}
	if err := s.addEpoch(20, 2, nil); err != nil {
		t.Fatal(err)
	}
	if s.epochAt(15).seq != 1 || s.epochAt(25).seq != 2 || s.epochAt(0).seq != 0 {
		t.Fatal("epochAt lookup wrong")
	}
	s.sliceFor(25)
	if got := s.oldestEpochInUse(); got != 2 {
		t.Fatalf("oldestEpochInUse = %d, want 2", got)
	}
	s.pruneEpochs(21)
	if len(s.epochs) != 1 || s.epochs[0].seq != 2 {
		t.Fatalf("pruneEpochs kept %d epochs (first seq %d)", len(s.epochs), s.epochs[0].seq)
	}
}

func TestSlicerIDNamespacing(t *testing.T) {
	a := newSlicerWithIDs(0, 2)
	b := newSlicerWithIDs(1, 2)
	ea := a.sliceFor(0)
	eb := b.sliceFor(0)
	ea2 := a.sliceFor(1 << 40)
	if ea.id%2 != 0 || ea2.id%2 != 0 || eb.id%2 != 1 {
		t.Fatalf("ids not namespaced: %d %d %d", ea.id, ea2.id, eb.id)
	}
}
