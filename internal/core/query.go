// Package core implements AStream itself: the shared session, shared
// selection, dynamic window slicing, shared windowed join, shared windowed
// aggregation, and the router (paper §2–§3). It composes these into an
// Engine that accepts ad-hoc query creations and deletions at runtime while
// all queries share one deployed topology.
package core

import (
	"fmt"

	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// Kind classifies a query by which shared operators produce its results.
type Kind uint8

const (
	// KindSelection is a stateless filter on stream 0; results are tuples.
	KindSelection Kind = iota
	// KindJoin is a windowed equi-join over streams 0..Arity-1.
	KindJoin
	// KindAggregation is a windowed aggregation over stream 0.
	KindAggregation
	// KindComplex is a join over streams 0..Arity-1 followed by a windowed
	// aggregation over the join output (paper §4.7).
	KindComplex
)

func (k Kind) String() string {
	switch k {
	case KindSelection:
		return "selection"
	case KindJoin:
		return "join"
	case KindAggregation:
		return "aggregation"
	case KindComplex:
		return "complex"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Query is a compiled ad-hoc query as the shared operators see it.
type Query struct {
	// ID is assigned by the engine, unique per engine lifetime.
	ID int
	// Kind selects the shared-operator pipeline.
	Kind Kind
	// Arity is the number of joined streams (1 for selection/aggregation).
	Arity int
	// Predicates[i] filters stream i (TRUE when absent).
	Predicates []expr.Predicate
	// Window is the join window for join/complex kinds, or the aggregation
	// window for aggregation kind. Multi-stage queries (arity ≥ 3 or
	// complex) must use tumbling windows; see Engine docs.
	Window window.Spec
	// AggWindow is the aggregation window of a complex query.
	AggWindow window.Spec
	// Agg and AggField describe the aggregate for aggregation/complex
	// kinds. AggField is -1 for COUNT(*).
	Agg      sqlstream.AggFunc
	AggField int
}

// Validate checks the compiled query against engine restrictions.
func (q *Query) Validate(streams int) error {
	if q.Arity < 1 || q.Arity > streams {
		return fmt.Errorf("core: query arity %d outside [1,%d]", q.Arity, streams)
	}
	if len(q.Predicates) != q.Arity {
		return fmt.Errorf("core: %d predicates for arity %d", len(q.Predicates), q.Arity)
	}
	for _, p := range q.Predicates {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	switch q.Kind {
	case KindSelection:
		if q.Arity != 1 {
			return fmt.Errorf("core: selection query must have arity 1")
		}
	case KindJoin:
		if q.Arity < 2 {
			return fmt.Errorf("core: join query must have arity ≥ 2")
		}
		if err := q.Window.Validate(); err != nil {
			return err
		}
		if !q.Window.IsTimeBased() {
			return fmt.Errorf("core: join windows must be time-based")
		}
		if q.Arity > 2 && q.Window.Kind != window.Tumbling {
			return fmt.Errorf("core: joins with arity > 2 require tumbling windows")
		}
	case KindAggregation:
		if q.Arity != 1 {
			return fmt.Errorf("core: aggregation query must have arity 1")
		}
		if err := q.Window.Validate(); err != nil {
			return err
		}
		if q.Agg == sqlstream.AggNone {
			return fmt.Errorf("core: aggregation query needs an aggregate function")
		}
		if q.Window.Kind == window.Session {
			switch q.Agg {
			case sqlstream.AggSum, sqlstream.AggCount, sqlstream.AggAvg:
			default:
				return fmt.Errorf("core: session windows support SUM/COUNT/AVG only")
			}
		}
	case KindComplex:
		if q.Arity < 2 {
			return fmt.Errorf("core: complex query must join ≥ 2 streams")
		}
		if err := q.Window.Validate(); err != nil {
			return err
		}
		if q.Window.Kind != window.Tumbling {
			return fmt.Errorf("core: complex queries require tumbling join windows")
		}
		if err := q.AggWindow.Validate(); err != nil {
			return err
		}
		if q.AggWindow.Kind != window.Tumbling {
			return fmt.Errorf("core: complex queries require tumbling aggregation windows")
		}
		if q.Agg == sqlstream.AggNone {
			return fmt.Errorf("core: complex query needs an aggregate function")
		}
	default:
		return fmt.Errorf("core: unknown query kind %d", q.Kind)
	}
	if q.Agg != sqlstream.AggNone {
		if q.AggField != -1 && (q.AggField < 0 || q.AggField >= event.NumFields) {
			return fmt.Errorf("core: aggregate field %d out of range", q.AggField)
		}
		if q.AggField == -1 && q.Agg != sqlstream.AggCount {
			return fmt.Errorf("core: only COUNT may omit the aggregate field")
		}
	}
	return nil
}

// CompileSQL lowers a parsed SQL query to a core.Query. Stream names are
// positional: the i-th FROM source maps to engine stream i. Join conditions
// must be key equalities (the engine's exchange is keyed; this is the
// paper's "common partitioning key" assumption).
func CompileSQL(sq *sqlstream.Query) (*Query, error) {
	q := &Query{Arity: len(sq.Sources), AggField: -1}
	streamIdx := map[string]int{}
	for i, s := range sq.Sources {
		streamIdx[s] = i
	}
	q.Predicates = make([]expr.Predicate, q.Arity)
	for s, p := range sq.Filters {
		q.Predicates[streamIdx[s]] = p
	}
	for _, jc := range sq.JoinConds {
		if jc.Left.Field != expr.KeyField || jc.Right.Field != expr.KeyField {
			return nil, fmt.Errorf("core: only KEY = KEY join conditions are supported, got %v", jc)
		}
	}
	switch {
	case sq.IsJoin() && sq.IsAggregation():
		q.Kind = KindComplex
		q.Window = sq.Window
		q.AggWindow = sq.Window // single window clause applies to both stages
	case sq.IsJoin():
		q.Kind = KindJoin
		q.Window = sq.Window
	case sq.IsAggregation():
		q.Kind = KindAggregation
		q.Window = sq.Window
	default:
		q.Kind = KindSelection
	}
	if sq.IsAggregation() {
		q.Agg = sq.Agg
		if sq.Agg == sqlstream.AggCount && sq.AggCol.Stream == "" {
			q.AggField = -1
		} else {
			q.AggField = sq.AggCol.Field
		}
		if sq.GroupBy != nil && sq.GroupBy.Field != expr.KeyField {
			return nil, fmt.Errorf("core: GROUPBY must use the key column")
		}
	}
	return q, nil
}
