package core

import (
	"sync"
	"sync/atomic"

	"astream/internal/event"
	"astream/internal/window"
)

// Result is one query-addressed output row leaving the engine.
type Result struct {
	QueryID int
	Kind    Kind
	// Window is the triggering window for windowed kinds.
	Window window.Extent
	// Tuple is set for selection results.
	Tuple event.Tuple
	// Join is set for join results.
	Join event.JoinedTuple
	// Key/Value are set for aggregation results.
	Key   int64
	Value int64
	// EventTime is the result's event-time (tuple time, join max-time, or
	// window end for aggregations).
	EventTime event.Time
	// IngestNanos is the ingestion wall-clock of the freshest contributing
	// tuple; sinks subtract it from time.Now() for end-to-end latency
	// (paper §3.4 samples latency at sinks).
	IngestNanos int64
}

// Sink consumes one query's results. OnResult is called from operator
// goroutines and must be safe for concurrent use.
type Sink interface {
	OnResult(r Result)
}

// SinkFunc adapts a function to a Sink.
type SinkFunc func(Result)

// OnResult implements Sink.
func (f SinkFunc) OnResult(r Result) { f(r) }

// CountingSink counts results and samples end-to-end latency; it is the
// default sink attached to queries submitted without one.
type CountingSink struct {
	Count       uint64
	latSum      uint64 // nanos
	latN        uint64
	nowNanos    func() int64
	sampleEvery uint64
}

// NewCountingSink creates a sink sampling every n-th result's latency.
func NewCountingSink(nowNanos func() int64, sampleEvery int) *CountingSink {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &CountingSink{nowNanos: nowNanos, sampleEvery: uint64(sampleEvery)}
}

// OnResult implements Sink.
func (c *CountingSink) OnResult(r Result) {
	n := atomic.AddUint64(&c.Count, 1)
	if r.IngestNanos > 0 && n%c.sampleEvery == 0 {
		d := c.nowNanos() - r.IngestNanos
		if d > 0 {
			atomic.AddUint64(&c.latSum, uint64(d))
			atomic.AddUint64(&c.latN, 1)
		}
	}
}

// Results returns the delivered-result count.
func (c *CountingSink) Results() uint64 { return atomic.LoadUint64(&c.Count) }

// MeanLatencyNanos returns the sampled mean end-to-end latency (0 when no
// samples).
func (c *CountingSink) MeanLatencyNanos() uint64 {
	n := atomic.LoadUint64(&c.latN)
	if n == 0 {
		return 0
	}
	return atomic.LoadUint64(&c.latSum) / n
}

// Router delivers result rows to per-query output channels (paper §3.1.6).
// This is the one place AStream copies data: a result matching k queries is
// materialized k times, once per query channel (§3.2.2).
//
// Registration is rare (once per query lifecycle) while delivery runs per
// result on every operator goroutine, so the sink table is copy-on-write: an
// immutable map behind an atomic pointer. Deliver does one atomic load and
// an uncontended map read; writers copy the map under a mutex that only
// serializes other writers.
type Router struct {
	sinks   atomic.Pointer[map[int]Sink]
	wmu     sync.Mutex // serializes Register/Unregister copies
	metrics *OpMetrics
}

// NewRouter creates an empty router.
func NewRouter(m *OpMetrics) *Router {
	r := &Router{metrics: m}
	r.publish(make(map[int]Sink))
	return r
}

// publish installs a sink table. The map must not be mutated after this
// call: readers access it lock-free.
func (r *Router) publish(m map[int]Sink) {
	r.sinks.Store(&m)
}

// Register attaches the sink for a query. Registration happens before the
// query's changelog is released, so no result can race ahead of it.
func (r *Router) Register(queryID int, s Sink) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	cur := *r.sinks.Load()
	next := make(map[int]Sink, len(cur)+1)
	for id, sk := range cur {
		next[id] = sk
	}
	next[queryID] = s
	r.publish(next)
}

// Unregister detaches a stopped query's sink.
func (r *Router) Unregister(queryID int) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	cur := *r.sinks.Load()
	if _, ok := cur[queryID]; !ok {
		return
	}
	next := make(map[int]Sink, len(cur))
	for id, sk := range cur {
		if id != queryID {
			next[id] = sk
		}
	}
	r.publish(next)
}

// Deliver routes one result row to its query's sink. The per-query copy has
// already happened by value in res; no lock is taken on this path.
//
//lint:hotpath
func (r *Router) Deliver(res Result) {
	tick := r.metrics.start()
	s := (*r.sinks.Load())[res.QueryID]
	if s != nil {
		s.OnResult(res)
	}
	r.metrics.RouterCopy.observe(tick, r.metrics)
}

// Each visits every registered (query, sink) pair.
func (r *Router) Each(fn func(queryID int, s Sink)) {
	for id, s := range *r.sinks.Load() {
		fn(id, s)
	}
}

// SinkFor returns the sink registered for a query (tests).
func (r *Router) SinkFor(queryID int) Sink {
	return (*r.sinks.Load())[queryID]
}
