package core

import (
	"sync"
	"sync/atomic"

	"astream/internal/event"
	"astream/internal/window"
)

// Result is one query-addressed output row leaving the engine.
type Result struct {
	QueryID int
	Kind    Kind
	// Window is the triggering window for windowed kinds.
	Window window.Extent
	// Tuple is set for selection results.
	Tuple event.Tuple
	// Join is set for join results.
	Join event.JoinedTuple
	// Key/Value are set for aggregation results.
	Key   int64
	Value int64
	// EventTime is the result's event-time (tuple time, join max-time, or
	// window end for aggregations).
	EventTime event.Time
	// IngestNanos is the ingestion wall-clock of the freshest contributing
	// tuple; sinks subtract it from time.Now() for end-to-end latency
	// (paper §3.4 samples latency at sinks).
	IngestNanos int64
}

// Sink consumes one query's results. OnResult is called from operator
// goroutines and must be safe for concurrent use.
type Sink interface {
	OnResult(r Result)
}

// SinkFunc adapts a function to a Sink.
type SinkFunc func(Result)

// OnResult implements Sink.
func (f SinkFunc) OnResult(r Result) { f(r) }

// CountingSink counts results and samples end-to-end latency; it is the
// default sink attached to queries submitted without one.
type CountingSink struct {
	Count       uint64
	latSum      uint64 // nanos
	latN        uint64
	nowNanos    func() int64
	sampleEvery uint64
}

// NewCountingSink creates a sink sampling every n-th result's latency.
func NewCountingSink(nowNanos func() int64, sampleEvery int) *CountingSink {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &CountingSink{nowNanos: nowNanos, sampleEvery: uint64(sampleEvery)}
}

// OnResult implements Sink.
func (c *CountingSink) OnResult(r Result) {
	n := atomic.AddUint64(&c.Count, 1)
	if r.IngestNanos > 0 && n%c.sampleEvery == 0 {
		d := c.nowNanos() - r.IngestNanos
		if d > 0 {
			atomic.AddUint64(&c.latSum, uint64(d))
			atomic.AddUint64(&c.latN, 1)
		}
	}
}

// Results returns the delivered-result count.
func (c *CountingSink) Results() uint64 { return atomic.LoadUint64(&c.Count) }

// MeanLatencyNanos returns the sampled mean end-to-end latency (0 when no
// samples).
func (c *CountingSink) MeanLatencyNanos() uint64 {
	n := atomic.LoadUint64(&c.latN)
	if n == 0 {
		return 0
	}
	return atomic.LoadUint64(&c.latSum) / n
}

// Router delivers result rows to per-query output channels (paper §3.1.6).
// This is the one place AStream copies data: a result matching k queries is
// materialized k times, once per query channel (§3.2.2).
type Router struct {
	mu      sync.RWMutex
	sinks   map[int]Sink
	metrics *OpMetrics
}

// NewRouter creates an empty router.
func NewRouter(m *OpMetrics) *Router {
	return &Router{sinks: make(map[int]Sink), metrics: m}
}

// Register attaches the sink for a query. Registration happens before the
// query's changelog is released, so no result can race ahead of it.
func (r *Router) Register(queryID int, s Sink) {
	r.mu.Lock()
	r.sinks[queryID] = s
	r.mu.Unlock()
}

// Unregister detaches a stopped query's sink.
func (r *Router) Unregister(queryID int) {
	r.mu.Lock()
	delete(r.sinks, queryID)
	r.mu.Unlock()
}

// Deliver routes one result row to its query's sink. The per-query copy has
// already happened by value in r.
func (r *Router) Deliver(res Result) {
	tick := r.metrics.start()
	r.mu.RLock()
	s := r.sinks[res.QueryID]
	r.mu.RUnlock()
	if s != nil {
		s.OnResult(res)
	}
	r.metrics.RouterCopy.observe(tick, r.metrics)
}

// Each visits every registered (query, sink) pair.
func (r *Router) Each(fn func(queryID int, s Sink)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for id, s := range r.sinks {
		fn(id, s)
	}
}

// SinkFor returns the sink registered for a query (tests).
func (r *Router) SinkFor(queryID int) Sink {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sinks[queryID]
}
