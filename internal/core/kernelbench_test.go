package core

import (
	"testing"
)

// TestKernelAllocs pins steady-state tuple processing in the shared
// operators to zero allocations per operation: the ISSUE-2 contract that the
// allocator never bounds the shared data path. AllocsPerRun averages over
// enough runs that amortized one-time growth (map resizes, slice doubling
// during warm-up) rounds to zero; a per-tuple allocation reads ≥ 1 and fails.
func TestKernelAllocs(t *testing.T) {
	for _, kb := range KernelBenchmarks() {
		kb := kb
		t.Run(kb.Name, func(t *testing.T) {
			run := kb.New()
			run(2048) // warm-up: populate scratch, pools, map capacity
			if avg := testing.AllocsPerRun(2000, func() { run(1) }); avg > 0 {
				t.Errorf("%s: %.2f allocs/op in steady state, want 0", kb.Name, avg)
			}
		})
	}
}

// BenchmarkKernels measures every hot-path kernel; cmd/astream-bench runs
// the same workloads to emit BENCH_kernels.json.
func BenchmarkKernels(b *testing.B) {
	for _, kb := range KernelBenchmarks() {
		kb := kb
		b.Run(kb.Name, func(b *testing.B) {
			run := kb.New()
			b.ReportAllocs()
			b.ResetTimer()
			run(b.N)
		})
	}
}
