package core

import (
	"fmt"
	"sort"

	"astream/internal/event"
	"astream/internal/window"
)

// slicer cuts a stream's event-time axis into the dynamic slices of paper
// §3.1.3. Slice boundaries are the union of (a) window edges of every query
// active at that point in event-time and (b) changelog times. Boundaries are
// therefore a deterministic function of the changelog history, so every
// operator instance — and every replay — cuts identical slices.
//
// Slices are created lazily when a tuple lands in uncut territory, which is
// how "the lengths of slices are determined at runtime" (Figure 4e).
type slicer struct {
	epochs []epochInfo // ascending by from; epochs[0] = {MinTime, seq 0}
	slices []*slice    // ascending by ext.Start, non-overlapping
	nextID uint64
	stride uint64 // slice-ID step (namespacing across slicers)
}

type epochInfo struct {
	from  event.Time
	seq   uint64
	specs []window.Spec // time-based window specs active during this epoch
}

// slice is one disjoint segment of stream time under a single epoch.
type slice struct {
	id    uint64
	ext   window.Extent
	epoch uint64 // changelog epoch in effect throughout the slice
	// Payloads: a join side uses store; the aggregation uses aggs.
	store *sliceStore
	aggs  *qsIndex[aggGroup] // by canonical query-set key
	// folds counts aggregation folds absorbed by this slice; the merge
	// tree compares it against its last-synced value to detect stale
	// partials without hashing payloads. Derived activity counter: it is
	// not snapshotted and restarts at zero after Restore, which is exactly
	// when the tree re-anchors anyway.
	folds uint64
}

func newSlicer() *slicer {
	return newSlicerWithIDs(0, 1)
}

// newSlicerWithIDs creates a slicer whose slice IDs are offset, offset+step,
// offset+2·step, … so several slicers can share one ID namespace.
func newSlicerWithIDs(offset, step uint64) *slicer {
	return &slicer{
		epochs: []epochInfo{{from: event.MinTime, seq: 0}},
		nextID: offset,
		stride: step,
	}
}

// addEpoch registers a changelog boundary: from time at, the active
// time-based specs are specs and the epoch is seq. Times must be
// non-decreasing.
//
// An already-open slice can straddle the new boundary: it was created lazily
// before the changelog arrived, when the epoch's window edges alone shaped
// it. Every tuple it holds is older than `at` (the session picks changelog
// times after everything ingested, and stream order delivers the marker
// before any tuple at or past it), so truncating the slice at the boundary
// is safe and restores the invariant that no slice spans two epochs.
func (s *slicer) addEpoch(at event.Time, seq uint64, specs []window.Spec) error {
	last := s.epochs[len(s.epochs)-1]
	if at < last.from {
		return fmt.Errorf("core: epoch time %v before previous %v", at, last.from)
	}
	if seq != last.seq+1 {
		return fmt.Errorf("core: epoch seq %d after %d", seq, last.seq)
	}
	if n := len(s.slices); n > 0 {
		if sl := s.slices[n-1]; sl.ext.Start < at && at < sl.ext.End {
			sl.ext.End = at
		}
	}
	s.epochs = append(s.epochs, epochInfo{from: at, seq: seq, specs: specs})
	return nil
}

// epochAt returns the epoch info in effect at event-time t.
func (s *slicer) epochAt(t event.Time) *epochInfo {
	// Last epoch with from ≤ t.
	i := sort.Search(len(s.epochs), func(i int) bool { return s.epochs[i].from > t }) - 1
	if i < 0 {
		i = 0
	}
	return &s.epochs[i]
}

// currentEpoch returns the newest epoch seq.
func (s *slicer) currentEpoch() uint64 { return s.epochs[len(s.epochs)-1].seq }

// boundsAt computes the slice extent containing t: the nearest boundaries on
// both sides, where boundaries are window edges of the epoch's specs plus
// epoch transition times.
func (s *slicer) boundsAt(t event.Time) (window.Extent, uint64) {
	//lint:ignore hotalloc sort.Search does not retain its predicate; the closure is stack-allocated
	i := sort.Search(len(s.epochs), func(i int) bool { return s.epochs[i].from > t }) - 1
	if i < 0 {
		i = 0
	}
	ep := &s.epochs[i]
	lo := window.PrevEdgeAll(ep.specs, t)
	if ep.from > lo {
		lo = ep.from
	}
	hi := window.NextEdgeAll(ep.specs, t)
	if i+1 < len(s.epochs) && s.epochs[i+1].from < hi {
		hi = s.epochs[i+1].from
	}
	return window.Extent{Start: lo, End: hi}, ep.seq
}

// sliceFor returns the slice containing t, creating it if necessary.
func (s *slicer) sliceFor(t event.Time) *slice {
	// Binary search: first slice with Start > t, step back one.
	//lint:ignore hotalloc sort.Search does not retain its predicate; the closure is stack-allocated
	i := sort.Search(len(s.slices), func(i int) bool { return s.slices[i].ext.Start > t }) - 1
	if i >= 0 && s.slices[i].ext.Contains(t) {
		return s.slices[i]
	}
	ext, epoch := s.boundsAt(t)
	// Clip against neighbours: lazily created slices can otherwise reach
	// into territory an existing slice already owns when boundaries were
	// computed under a since-extended epoch list. Boundaries are
	// deterministic, so clipping only defends the invariant.
	if i >= 0 && s.slices[i].ext.End > ext.Start {
		ext.Start = s.slices[i].ext.End
	}
	if i+1 < len(s.slices) && s.slices[i+1].ext.Start < ext.End {
		ext.End = s.slices[i+1].ext.Start
	}
	//lint:ignore hotalloc cold: runs once per newly opened window slice
	sl := &slice{id: s.nextID, ext: ext, epoch: epoch}
	s.nextID += s.stride
	//lint:ignore hotalloc cold: slice list grows once per newly opened window slice
	s.slices = append(s.slices, nil)
	copy(s.slices[i+2:], s.slices[i+1:])
	s.slices[i+1] = sl
	return sl
}

// overlapping returns the live slices overlapping [ext.Start, ext.End).
func (s *slicer) overlapping(ext window.Extent) []*slice {
	lo := sort.Search(len(s.slices), func(i int) bool { return s.slices[i].ext.End > ext.Start })
	var out []*slice
	for i := lo; i < len(s.slices) && s.slices[i].ext.Start < ext.End; i++ {
		out = append(out, s.slices[i])
	}
	return out
}

// overlappingRange returns the index range [lo, hi) of live slices
// overlapping [ext.Start, ext.End). Unlike overlapping it allocates nothing,
// which the window-fire paths rely on.
func (s *slicer) overlappingRange(ext window.Extent) (int, int) {
	//lint:ignore hotalloc sort.Search does not retain its predicate; the closure is stack-allocated
	lo := sort.Search(len(s.slices), func(i int) bool { return s.slices[i].ext.End > ext.Start })
	hi := lo
	for hi < len(s.slices) && s.slices[hi].ext.Start < ext.End {
		hi++
	}
	return lo, hi
}

// evict removes slices whose retention horizon (computed by retain) is ≤ wm,
// invoking onEvict for each. Slices are removed from the front only (older
// first); a younger slice with a shorter horizon waits for its elders, which
// keeps the slice list contiguous and matches how windows expire.
func (s *slicer) evict(wm event.Time, retain func(*slice) event.Time, onEvict func(*slice)) {
	n := 0
	for n < len(s.slices) {
		sl := s.slices[n]
		if sl.ext.End > wm || retain(sl) > wm {
			break
		}
		onEvict(sl)
		n++
	}
	if n > 0 {
		s.slices = append(s.slices[:0], s.slices[n:]...)
	}
}

// oldestEpochInUse returns the smallest epoch seq still referenced by a live
// slice (or the current epoch when no slices live); the changelog table can
// be compacted up to it.
func (s *slicer) oldestEpochInUse() uint64 {
	if len(s.slices) == 0 {
		return s.currentEpoch()
	}
	min := s.slices[0].epoch
	for _, sl := range s.slices[1:] {
		if sl.epoch < min {
			min = sl.epoch
		}
	}
	return min
}

// pruneEpochs drops epoch history that no future tuple can reference:
// everything strictly before the epoch in effect at horizon.
func (s *slicer) pruneEpochs(horizon event.Time) {
	i := sort.Search(len(s.epochs), func(i int) bool { return s.epochs[i].from > horizon }) - 1
	if i > 0 {
		s.epochs = append(s.epochs[:0], s.epochs[i:]...)
	}
}

// minFutureEpoch returns the epoch a tuple at or after horizon would be
// assigned; changelog-table rows older than both this and every live slice's
// epoch are safe to compact.
func (s *slicer) minFutureEpoch(horizon event.Time) uint64 {
	return s.epochAt(horizon).seq
}

// liveSlices returns the number of live slices (for tests and metrics).
func (s *slicer) liveSlices() int { return len(s.slices) }

// firstSliceStart returns the oldest live slice's start, if any.
func (s *slicer) firstSliceStart() (event.Time, bool) {
	if len(s.slices) == 0 {
		return 0, false
	}
	return s.slices[0].ext.Start, true
}
