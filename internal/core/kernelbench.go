package core

import (
	"fmt"

	"astream/internal/bitset"
	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/spe"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// KernelBench is one hot-path kernel exposed for benchmarking (and for the
// steady-state allocation guards): New builds the kernel's state once and
// returns a run function executing the kernel iters times against it.
// cmd/astream-bench and the *_test.go files drive these; keeping the
// workloads here lets both share one definition of "the hot path".
type KernelBench struct {
	Name string
	New  func() func(iters int)
}

// benchTuple builds the i-th deterministic workload tuple.
func benchTuple(i int, qs bitset.Bits, at event.Time) event.Tuple {
	t := event.Tuple{
		Key:      int64(i % 32),
		Time:     at,
		QuerySet: qs,
	}
	for f := range t.Fields {
		t.Fields[f] = int64((i*7 + f*13) % 1000)
	}
	return t
}

// benchStore fills a grouped slice store with n tuples spread over
// query-set groups drawn from slotCount slots.
func benchStore(n, slotCount int) *sliceStore {
	s := newSliceStore(StoreGrouped)
	for i := 0; i < n; i++ {
		var qs bitset.Bits
		qs.Set(i % slotCount)
		qs.Set((i * 3) % slotCount)
		s.Add(benchTuple(i, qs, event.Time(i%100)))
	}
	return s
}

// KernelBenchmarks enumerates the shared-operator kernels measured by the
// perf harness. Steady state of every run function is allocation-free
// (guarded by TestKernelAllocs).
func KernelBenchmarks() []KernelBench {
	return []KernelBench{
		{
			Name: "join-kernel-512x512-64q",
			New: func() func(int) {
				a := benchStore(512, 64)
				b := benchStore(512, 64)
				mask := bitset.AllUpTo(64)
				var js joinScratch
				var out []event.JoinedTuple
				// Warm the scratch index and the output capacity once.
				js.join(a, b, mask, &out)
				//lint:hotpath join kernel steady state
				return func(iters int) {
					for i := 0; i < iters; i++ {
						out = out[:0]
						js.join(a, b, mask, &out)
					}
				}
			},
		},
		{
			Name: "selection-ontuple-64q",
			New: func() func(int) {
				sel := NewSharedSelection(0, 0, NewOpMetrics(nil))
				entries := make([]selEntry, 64)
				for s := range entries {
					entries[s] = selEntry{
						slot: s,
						pred: expr.True().And(expr.Comparison{Field: 0, Op: expr.LT, Value: 900}),
					}
				}
				sel.installTable(entries)
				em := &spe.Emitter{}
				//lint:hotpath selection kernel steady state
				return func(iters int) {
					for i := 0; i < iters; i++ {
						sel.OnTuple(0, benchTuple(i, bitset.Bits{}, 50), em)
					}
				}
			},
		},
		{
			// The paper's high-query-count regime: 512 ad-hoc queries drawn
			// from a handful of templates, exercising every index layer —
			// 64-way duplication folded to one node, point predicates on the
			// hash dispatch, one-sided ranges on the stabbing index, and a
			// multi-field containment chain pruned at its root. Matching
			// tuples select only slots 0–63 so the emitted query-set stays on
			// the inline (allocation-free) path.
			Name: "selection-512q-overlap",
			New: func() func(int) {
				sel := NewSharedSelection(0, 0, NewOpMetrics(nil))
				sel.installTable(overlapEntries(512))
				em := &spe.Emitter{}
				//lint:hotpath selection index kernel steady state
				return func(iters int) {
					for i := 0; i < iters; i++ {
						sel.OnTuple(0, benchTuple(i, bitset.Bits{}, 50), em)
					}
				}
			},
		},
		{
			Name: "agg-ontuple-64q",
			New: func() func(int) {
				agg := benchAgg(64)
				var qs bitset.Bits
				em := &spe.Emitter{}
				//lint:hotpath aggregation kernel steady state
				return func(iters int) {
					for i := 0; i < iters; i++ {
						qs.Reset()
						qs.Set(i % 64)
						qs.Set((i * 5) % 64)
						agg.OnTuple(0, benchTuple(i, qs, 50), em)
					}
				}
			},
		},
		{
			// The shared window-fire engine (DESIGN.md §15) at the sliding
			// regime the merge tree exists for: 64 SUM queries over an
			// 800/100 sliding window (slide ratio 8), fired once per
			// iteration after folding one fresh tuple. The scan arm would
			// re-merge all 8 slices per query; the tree path re-merges the
			// one dirtied root path, covers the extent in O(log n) nodes,
			// and collapses all 64 queries into one combine class.
			Name: "windowfire-64q-slide8",
			New: func() func(int) {
				agg := benchAggWindow(64, window.SlidingSpec(800, 100))
				qs := bitset.AllUpTo(64)
				em := &spe.Emitter{}
				for i := 0; i < 512; i++ {
					agg.OnTuple(0, benchTuple(i, qs, event.Time(i%800)), em)
				}
				ext := window.Extent{Start: 0, End: 800}
				// Warm the tree, classes, and accumulator pools once.
				agg.fireBench(ext)
				//lint:hotpath window-fire kernel steady state
				return func(iters int) {
					for i := 0; i < iters; i++ {
						agg.OnTuple(0, benchTuple(i, qs, 799), em)
						agg.fireBench(ext)
					}
				}
			},
		},
		{
			// The fused sel→agg chain exactly as Deploy wires it for
			// single-stream engines: selection stamps the query set, the
			// chained emitter direct-calls the aggregation — no channel, no
			// batch buffer between them.
			Name: "chain-sel-agg-64q",
			New: func() func(int) {
				sel := NewSharedSelection(0, 0, NewOpMetrics(nil))
				entries := make([]selEntry, 64)
				for s := range entries {
					entries[s] = selEntry{
						slot: s,
						pred: expr.True().And(expr.Comparison{Field: 0, Op: expr.LT, Value: 900}),
					}
				}
				sel.installTable(entries)
				agg := benchAgg(64)
				em := spe.NewChainedEmitter(agg, &spe.Emitter{})
				//lint:hotpath fused chain kernel steady state
				return func(iters int) {
					for i := 0; i < iters; i++ {
						sel.OnTuple(0, benchTuple(i, bitset.Bits{}, 50), em)
					}
				}
			},
		},
		{
			// The incremental-snapshot encoder at a durable checkpoint: one
			// slice dirtied since the previous barrier, everything else
			// carried forward by identity. Deliberately NOT //lint:hotpath:
			// the encoder runs once per barrier, not per tuple, so the
			// hotalloc analyzer's per-tuple allocation rules do not apply —
			// the steady-state allocation bar is pinned by TestKernelAllocs
			// instead (the delta must not grow with barriers, only with
			// dirtied state).
			Name: "snapshot-delta-encode-64q",
			New: func() func(int) {
				agg := benchAgg(64)
				qs := bitset.AllUpTo(64)
				em := &spe.Emitter{}
				for i := 0; i < 512; i++ {
					agg.OnTuple(0, benchTuple(i, qs, event.Time(i%100)), em)
				}
				// Anchor the chain as OnBarrierDelta would: baseline every
				// slice's fold counter, then warm the buffer capacity once.
				agg.noteSnapshot(true)
				buf := agg.appendDelta(nil)
				return func(iters int) {
					for i := 0; i < iters; i++ {
						agg.OnTuple(0, benchTuple(i, qs, 50), em)
						buf = agg.appendDelta(buf[:0])
					}
				}
			},
		},
		{
			Name: "bitset-and-into-128bit",
			New: func() func(int) {
				a := bitset.FromIndexes(1, 3, 64, 90, 120)
				b := bitset.FromIndexes(3, 64, 119, 120)
				var dst bitset.Bits
				//lint:hotpath bitset kernel steady state
				return func(iters int) {
					for i := 0; i < iters; i++ {
						a.AndInto(b, &dst)
					}
				}
			},
		},
		{
			Name: "router-deliver",
			New: func() func(int) {
				r := NewRouter(NewOpMetrics(nil))
				var n uint64
				r.Register(7, SinkFunc(func(Result) { n++ }))
				res := Result{QueryID: 7, Kind: KindSelection}
				//lint:hotpath router kernel steady state
				return func(iters int) {
					for i := 0; i < iters; i++ {
						r.Deliver(res)
					}
				}
			},
		},
	}
}

// overlapEntries builds n template-generated predicates the way ad-hoc
// workloads produce them — few templates, many subscribers. Slots 0..n/8-1
// share one wide range template (matches ~90% of bench tuples; folds to a
// single index node). The rest never match a bench tuple but must be
// proven non-matching cheaply: a point-template group on the hash
// dispatch, a one-sided-range group on the stabbing index, and a
// multi-field chain P₀ ⊇ P₁ ⊇ … ⊇ P₇ whose containment lattice collapses
// the whole group to one failing root evaluation.
func overlapEntries(n int) []selEntry {
	entries := make([]selEntry, n)
	for s := range entries {
		var p expr.Predicate
		switch {
		case s < n/8:
			p = expr.True().And(expr.Comparison{Field: 0, Op: expr.LE, Value: 900})
		case s < n/2:
			p = expr.True().And(expr.Comparison{Field: 1, Op: expr.EQ, Value: int64(2000 + s%32)})
		case s < 3*n/4:
			p = expr.True().And(expr.Comparison{Field: 2, Op: expr.GE, Value: int64(2000 + (s%16)*10)})
		default:
			d := int64(s % 8)
			p = expr.True().
				And(expr.Comparison{Field: 3, Op: expr.GE, Value: 1500}).
				And(expr.Comparison{Field: 4, Op: expr.GE, Value: 1500 + 10*d})
		}
		entries[s] = selEntry{slot: s, id: s + 1, pred: p}
	}
	return entries
}

// benchAgg builds a SharedAggregation with slots tumbling-window SUM queries
// registered through a real changelog, ready for steady-state OnTuple calls.
func benchAgg(slots int) *SharedAggregation {
	return benchAggWindow(slots, window.TumblingSpec(100))
}

// benchAggWindow builds a SharedAggregation with slots SUM queries over spec,
// registered through a real changelog.
func benchAggWindow(slots int, spec window.Spec) *SharedAggregation {
	router := NewRouter(NewOpMetrics(nil))
	agg := NewSharedAggregation(1, 0, router, NewOpMetrics(nil))
	reg := changelog.NewRegistry(changelog.SlotReuse)
	defs := map[int]*Query{}
	ids := make([]int, slots)
	for s := 0; s < slots; s++ {
		q := &Query{
			ID:         s + 1,
			Kind:       KindAggregation,
			Arity:      1,
			Predicates: []expr.Predicate{expr.True()},
			Window:     spec,
			Agg:        sqlstream.AggSum,
			AggField:   0,
		}
		defs[q.ID] = q
		ids[s] = q.ID
	}
	cl, err := reg.Apply(0, ids, nil)
	if err != nil {
		panic(fmt.Sprintf("core: benchAgg changelog: %v", err))
	}
	agg.OnChangelog(&ChangelogMsg{CL: cl, Defs: defs}, 0, nil)
	return agg
}
