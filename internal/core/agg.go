package core

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"sync/atomic"

	"astream/internal/bitset"
	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/spe"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// aggVal is the shared partial aggregate for one (query-set group, key): all
// the per-field statistics any query's aggregate can be finalized from, so
// every query sharing the group shares a single update per tuple
// (paper §3.1.5: tuples are folded into intermediate results and discarded).
type aggVal struct {
	Count       int64
	Sum         [event.NumFields]int64
	Min         [event.NumFields]int64
	Max         [event.NumFields]int64
	IngestNanos int64 // freshest contributor
}

func newAggVal() *aggVal {
	//lint:ignore hotalloc cold: runs once per first-seen (group, key) pair; steady state reuses pooled values
	v := &aggVal{}
	v.reset()
	return v
}

func (v *aggVal) reset() {
	v.Count = 0
	v.IngestNanos = 0
	for i := range v.Min {
		v.Sum[i] = 0
		v.Min[i] = 1<<63 - 1
		v.Max[i] = -1 << 63
	}
}

func (v *aggVal) fold(t *event.Tuple) {
	v.Count++
	for i, f := range t.Fields {
		v.Sum[i] += f
		if f < v.Min[i] {
			v.Min[i] = f
		}
		if f > v.Max[i] {
			v.Max[i] = f
		}
	}
	if t.IngestNanos > v.IngestNanos {
		v.IngestNanos = t.IngestNanos
	}
}

func (v *aggVal) merge(o *aggVal) {
	v.Count += o.Count
	for i := range v.Sum {
		v.Sum[i] += o.Sum[i]
		if o.Min[i] < v.Min[i] {
			v.Min[i] = o.Min[i]
		}
		if o.Max[i] > v.Max[i] {
			v.Max[i] = o.Max[i]
		}
	}
	if o.IngestNanos > v.IngestNanos {
		v.IngestNanos = o.IngestNanos
	}
}

// finalizeCountSum computes the query-visible value of the count/sum family
// from a (count, sum) pair. Both slice-partial finalize and session harvest
// route through it so truncation rules (integer Avg, empty-count zero)
// cannot diverge when aggregate functions are added.
func finalizeCountSum(fn sqlstream.AggFunc, count, sum int64) int64 {
	switch fn {
	case sqlstream.AggCount:
		return count
	case sqlstream.AggAvg:
		if count == 0 {
			return 0
		}
		return sum / count
	default:
		return sum
	}
}

// finalize computes the query-visible value.
func (v *aggVal) finalize(fn sqlstream.AggFunc, field int) int64 {
	switch fn {
	case sqlstream.AggCount:
		return finalizeCountSum(fn, v.Count, 0)
	case sqlstream.AggSum, sqlstream.AggAvg:
		return finalizeCountSum(fn, v.Count, v.Sum[field])
	case sqlstream.AggMin:
		return v.Min[field]
	case sqlstream.AggMax:
		return v.Max[field]
	default:
		return 0
	}
}

// aggGroup is a query-set group inside one slice: per-key shared partials.
// keys records byKey's keys in arrival order so walking a group never
// iterates the map (merge is commutative, so arrival order is fine there;
// emission order comes from the accumulator's sorted keys).
type aggGroup struct {
	qs    bitset.Bits
	byKey map[int64]*aggVal
	keys  []int64
}

// aggQuery is one active query served by the aggregation operator.
type aggQuery struct {
	q    *Query
	slot int
	port int // which input port feeds this query's aggregation
	// sessions is per-key session state for session-window queries;
	// sessKeys mirrors its keys in ascending order (maintained on
	// creation/expiry) so harvest iterates deterministically without a
	// per-watermark sort.
	sessions map[int64]*window.SessionState
	sessKeys []int64
	// since/until/endEpoch implement event-time query lifetime, exactly as
	// in the shared join: windows ending in (since, until] fire, masked by
	// changelog-sets capped at endEpoch.
	since    event.Time
	until    event.Time
	endEpoch uint64
}

func (a *aggQuery) spec() window.Spec {
	if a.q.Kind == KindComplex {
		return a.q.AggWindow
	}
	return a.q.Window
}

// insertSortedInt64 inserts v into ascending s, keeping it sorted (no-op if
// already present).
func insertSortedInt64(s []int64, v int64) []int64 {
	//lint:ignore hotalloc sort.Search does not retain its predicate; the closure is stack-allocated
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	//lint:ignore hotalloc session path: sorted-times slice growth is amortized per new session element
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// SharedAggregation is the shared windowed aggregation operator (§3.1.5).
// Port 0 carries raw stream-0 tuples (arity-1 aggregations and selections);
// port k ≥ 1 carries the output of join stage k-1 (complex queries of arity
// k+1). Tuples fold into query-set-grouped partial aggregates per slice and
// are then discarded; window results combine slice partials.
type SharedAggregation struct {
	spe.BaseLogic
	ports int
	sl    *slicer
	table *changelog.Table
	//lint:ephemeral derived index over the serialized activeOrdered list
	active map[int]*aggQuery // by query ID
	//lint:ephemeral derived index over the serialized selOrdered list
	selection map[int]*aggQuery // selection queries (terminal at port 0)
	// activeOrdered/selOrdered mirror the maps sorted by (slot, query ID),
	// maintained incrementally on changelog and purge: the per-tuple and
	// watermark paths iterate them so delivery order is deterministic
	// (replay determinism, §3.3) without per-emission sorts or map ranges.
	activeOrdered []*aggQuery
	selOrdered    []*aggQuery
	// maskVersions holds the per-port/selection/session slot masks,
	// versioned by event-time. Slot reuse makes a bare slot ambiguous (the
	// same bit can mean "aggregation input" in one epoch and "join input
	// of a complex query" in the next); resolving masks against the
	// tuple's event-time removes the ambiguity, exactly as the shared
	// selection resolves its predicate table.
	maskVersions []maskVersion
	//lint:ephemeral constructor wiring (result router)
	router *Router
	//lint:ephemeral constructor wiring (metrics sink)
	metrics *OpMetrics
	//lint:ephemeral constructor wiring (allowed-lateness config)
	lateness    event.Time
	lastWM      event.Time
	evictedThru event.Time

	// Incremental-snapshot bookkeeping (OnBarrierDelta): per-slice fold
	// counts captured at the last snapshot, the changelog epoch that
	// snapshot held, and the current delta-chain length. All of it
	// describes snapshots already taken, never live state — a recovered
	// instance is freshly constructed, so snapFolds starts nil and the
	// first delta-mode snapshot after recovery is always full.
	//lint:ephemeral snapshot bookkeeping; nil forces the next delta-mode snapshot to be full
	snapFolds map[uint64]uint64
	//lint:ephemeral snapshot bookkeeping paired with snapFolds
	snapTableSeq uint64
	//lint:ephemeral snapshot bookkeeping paired with snapFolds
	sinceFull int
	//lint:ephemeral snapshot encoding scratch
	tblScratch []byte //lint:pooled scratch table-delta encode buffer recycled across barriers

	// Steady-state scratch (owned by the instance goroutine): query-set
	// intersection temporaries, the trigger and cap grouping, per-trigger
	// accumulators, and the aggVal freelist.
	//lint:ephemeral per-tuple scratch
	qsTmp bitset.Bits //lint:pooled scratch per-tuple query-set intersection scratch
	//lint:ephemeral per-trigger scratch
	effTmp bitset.Bits //lint:pooled scratch per-trigger effective-query scratch
	//lint:ephemeral per-trigger scratch
	trigTmp []*aggTrigger //lint:pooled scratch per-trigger grouping scratch
	//lint:ephemeral per-trigger scratch
	capTmp []*aggCapGroup //lint:pooled scratch per-trigger cap-grouping scratch
	//lint:ephemeral per-trigger scratch
	accums []*slotAccum //lint:pooled scratch per-trigger accumulator scratch
	//lint:ephemeral freelist, refills through steady-state recycling
	valPool []*aggVal //lint:pooled freelist recycled aggVal backings
	//lint:ephemeral per-trigger scratch
	specsTmp []window.Spec //lint:pooled scratch per-trigger window-spec scratch

	// Shared window-fire engine (DESIGN.md §15): the merge tree memoizes
	// slice partials, classes dedup combine work across queries, and
	// fingerprints fan one finalized accumulator out to every query with
	// identical class membership.
	//lint:ephemeral derived merge tree over the live slice ring, rebuilt by rebuildMergeTree on Restore
	tree *mergeTree
	//lint:ephemeral constructor wiring (fault injection forces the scan arm)
	treeOff bool
	//lint:ephemeral per-trigger scratch
	nodeTmp []int32 //lint:pooled scratch per-trigger merge-tree node scratch
	//lint:ephemeral per-trigger scratch
	classTmp []*fireClass //lint:pooled scratch per-trigger combine-class scratch
	//lint:ephemeral per-trigger scratch
	fpTmp []*fireFP //lint:pooled scratch per-trigger fingerprint scratch
	//lint:ephemeral per-trigger scratch
	fpIdx []int32 //lint:pooled scratch per-trigger fingerprint index scratch
	//lint:ephemeral per-trigger scratch
	qmaskTmp bitset.Bits //lint:pooled scratch per-trigger query-mask scratch
	//lint:ephemeral per-trigger scratch
	relqTmp bitset.Bits //lint:pooled scratch per-trigger relevant-query scratch
	// shareMinQueries/shareMinRun gate the shared arm per trigger: below
	// both bounds the direct scan fires instead — a one-query trigger over
	// a short slice run has nothing to share, and the class/fingerprint
	// bookkeeping is pure overhead (randomized ad-hoc windows rarely
	// coincide, so such triggers dominate churn-heavy workloads).
	//lint:ephemeral constructor wiring (fire-dispatch threshold)
	shareMinQueries int
	//lint:ephemeral constructor wiring (fire-dispatch threshold)
	shareMinRun int
}

// Shared-arm dispatch defaults: triggers with at least this many queries
// (combine dedup pays off) or covering at least this many slices (the
// O(log n) tree cover pays off) fire through the shared engine.
const (
	sharedFireMinQueries = 4
	sharedFireMinRun     = 16
)

// aggTrigger collects the queries fired by one window extent.
type aggTrigger struct {
	ext     window.Extent
	queries []*aggQuery
}

// aggCapGroup batches a trigger's queries (by index) sharing one
// changelog-set cap.
type aggCapGroup struct {
	cap  uint64
	idxs []int
}

// slotAccum accumulates one query's window result across slices. keys
// collects byKey's keys in arrival order; emission sorts once per window
// (the old per-insert binary shift was O(k²) across a window's keys).
type slotAccum struct {
	aq    *aggQuery
	byKey map[int64]*aggVal
	keys  []int64
}

// fireClass is one deduplicated combine accumulator within a fire: all
// queries of one cap group whose effective membership (eff = node group
// query-set ∩ Rel(epoch, cap) ∩ the cap group's slot mask) coincides share
// the merge work that fireWindowScan would redo per query.
type fireClass struct {
	eff   bitset.Bits
	byKey map[int64]*aggVal
	keys  []int64
}

// fireFP fans class combinations out to queries: queries whose class
// membership fingerprint — the (extent, cap, membership) key of DESIGN.md
// §15 with extent and cap fixed by position — matches share one combined
// accumulator. A single-class fingerprint aliases the class (cls != nil)
// instead of copying it.
type fireFP struct {
	mask  uint64 // class bitmask, local to one cap group's class range
	base  int    // first class index of that range
	cls   *fireClass
	byKey map[int64]*aggVal
	keys  []int64
}

// maskVersion is the slot-mask table in effect from a given event-time.
type maskVersion struct {
	from      event.Time
	portMasks []bitset.Bits
	selMask   bitset.Bits
	sessMask  bitset.Bits
}

// NewSharedAggregation constructs the logic for one instance.
func NewSharedAggregation(ports int, lateness event.Time, router *Router, m *OpMetrics) *SharedAggregation {
	a := &SharedAggregation{
		ports:        ports,
		sl:           newSlicer(),
		table:        changelog.NewTable(),
		active:       make(map[int]*aggQuery),
		selection:    make(map[int]*aggQuery),
		maskVersions: []maskVersion{{from: event.MinTime, portMasks: make([]bitset.Bits, ports)}},
		router:       router,
		metrics:      m,
		lateness:     lateness,
		lastWM:       event.MinTime,
		evictedThru:  event.MinTime,

		shareMinQueries: sharedFireMinQueries,
		shareMinRun:     sharedFireMinRun,
	}
	a.rebuildMergeTree()
	return a
}

// rebuildMergeTree (re)derives the shared window-fire tree, at construction
// and after Restore. The tree itself carries no state worth keeping — it
// re-anchors from the restored slice ring on the next sync.
func (a *SharedAggregation) rebuildMergeTree() {
	if a.treeOff {
		a.tree = nil
		return
	}
	a.tree = &mergeTree{owner: a}
}

// disableMergeTree forces the per-slice re-merge fire path, mirroring how
// fault hooks disable the selection's predicate index: injected faults (and
// the ablation baseline) demand the plain per-slice evaluation order.
func (a *SharedAggregation) disableMergeTree() {
	a.treeOff = true
	a.tree = nil
}

// insertBySlot adds aq to the (slot, ID)-ordered list by binary insert
// (changelog path — cold).
func insertBySlot(list []*aggQuery, aq *aggQuery) []*aggQuery {
	i := sort.Search(len(list), func(i int) bool {
		o := list[i]
		if o.slot != aq.slot {
			return o.slot > aq.slot
		}
		return o.q.ID > aq.q.ID
	})
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = aq
	return list
}

// filterOrdered drops entries matching gone, in place.
func filterOrdered(list []*aggQuery, gone func(*aggQuery) bool) []*aggQuery {
	kept := list[:0]
	for _, aq := range list {
		if !gone(aq) {
			kept = append(kept, aq)
		}
	}
	for i := len(kept); i < len(list); i++ {
		list[i] = nil
	}
	return kept
}

// masksAt returns the mask table in effect at event-time t.
func (a *SharedAggregation) masksAt(t event.Time) *maskVersion {
	//lint:ignore hotalloc sort.Search does not retain its predicate; the closure is stack-allocated
	i := sort.Search(len(a.maskVersions), func(i int) bool { return a.maskVersions[i].from > t }) - 1
	if i < 0 {
		i = 0
	}
	return &a.maskVersions[i]
}

// aggPortOf returns the input port whose tuples feed q's aggregation, or -1
// when q is not an aggregation consumer.
func aggPortOf(q *Query) int {
	switch q.Kind {
	case KindAggregation:
		return 0
	case KindComplex:
		return q.Arity - 1
	default:
		return -1
	}
}

// OnChangelog updates active queries, port masks, epochs, and the table.
func (a *SharedAggregation) OnChangelog(payload any, at event.Time, _ *spe.Emitter) {
	msg := payload.(*ChangelogMsg)
	for _, d := range msg.CL.Deleted {
		if aq, ok := a.active[d.Query]; ok {
			aq.until = at
			aq.endEpoch = msg.CL.Seq - 1
		}
		if sq, ok := a.selection[d.Query]; ok {
			sq.until = at
			sq.endEpoch = msg.CL.Seq - 1
		}
	}
	for _, c := range msg.CL.Created {
		q := msg.Defs[c.Query]
		if q == nil {
			continue
		}
		switch {
		case q.Kind == KindSelection:
			sq := &aggQuery{q: q, slot: c.Slot, port: 0, since: at, until: event.MaxTime, endEpoch: ^uint64(0)}
			a.selection[c.Query] = sq
			a.selOrdered = insertBySlot(a.selOrdered, sq)
		case aggPortOf(q) >= 0 && aggPortOf(q) < a.ports:
			aq := &aggQuery{q: q, slot: c.Slot, port: aggPortOf(q), since: at, until: event.MaxTime, endEpoch: ^uint64(0)}
			if aq.spec().Kind == window.Session {
				aq.sessions = make(map[int64]*window.SessionState)
			}
			a.active[c.Query] = aq
			a.activeOrdered = insertBySlot(a.activeOrdered, aq)
		}
	}
	// Append a new mask version effective from this changelog's time,
	// built from the queries running after it (pending-deleted queries
	// keep their bits in OLDER versions, where in-flight pre-deletion
	// tuples resolve). Epoch specs likewise come from running queries.
	// Specs are stored by the slicer's epoch history, so they must be a
	// fresh slice, not scratch.
	mv := maskVersion{from: at, portMasks: make([]bitset.Bits, a.ports)}
	specs := make([]window.Spec, 0, len(a.activeOrdered))
	for _, aq := range a.activeOrdered {
		if aq.until == event.MaxTime {
			mv.portMasks[aq.port].Set(aq.slot)
			if aq.sessions != nil {
				mv.sessMask.Set(aq.slot)
			}
		}
		if sp := aq.spec(); sp.IsTimeBased() && aq.until == event.MaxTime {
			specs = append(specs, sp)
		}
	}
	for _, sq := range a.selOrdered {
		if sq.until == event.MaxTime {
			mv.selMask.Set(sq.slot)
		}
	}
	a.maskVersions = append(a.maskVersions, mv)
	if err := a.sl.addEpoch(at, msg.CL.Seq, specs); err != nil {
		panic(fmt.Sprintf("core: agg epoch: %v", err))
	}
	if err := a.table.Add(msg.CL); err != nil {
		panic(fmt.Sprintf("core: agg table: %v", err))
	}
}

// getVal pops a pooled partial (reset) or allocates one.
func (a *SharedAggregation) getVal() *aggVal {
	if n := len(a.valPool); n > 0 {
		v := a.valPool[n-1]
		a.valPool = a.valPool[:n-1]
		v.reset()
		return v
	}
	return newAggVal()
}

func (a *SharedAggregation) putVal(v *aggVal) {
	//lint:ignore hotalloc amortized: freelist grows to the steady-state partial count once
	a.valPool = append(a.valPool, v)
}

// OnTuple folds the tuple into slice partials (and serves selection queries
// and session windows directly). Steady state allocates nothing: the masked
// query-set lands in a scratch bitset, group lookup is key-scratch based, and
// per-key partials come from the freelist.
//
//lint:hotpath
func (a *SharedAggregation) OnTuple(port int, t event.Tuple, _ *spe.Emitter) {
	mv := a.masksAt(t.Time)
	// Selection queries: terminal, stateless, port 0 only.
	if port == 0 && t.QuerySet.Intersects(mv.selMask) {
		for _, sq := range a.selOrdered {
			if t.QuerySet.Test(sq.slot) && t.Time >= sq.since && t.Time < sq.until {
				a.router.Deliver(Result{
					QueryID:     sq.q.ID,
					Kind:        KindSelection,
					Tuple:       t,
					EventTime:   t.Time,
					IngestNanos: t.IngestNanos,
				})
			}
		}
	}
	if port >= len(mv.portMasks) {
		return
	}
	t.QuerySet.AndInto(mv.portMasks[port], &a.qsTmp)
	if a.qsTmp.IsEmpty() {
		return
	}
	if t.Time < a.evictedThru {
		atomic.AddUint64(&a.metrics.Late, 1)
		return
	}
	// Session-window queries keep per-key data-driven state.
	if a.qsTmp.Intersects(mv.sessMask) {
		for _, aq := range a.activeOrdered {
			if aq.sessions == nil || !a.qsTmp.Test(aq.slot) || t.Time < aq.since || t.Time >= aq.until {
				continue
			}
			ss := aq.sessions[t.Key]
			if ss == nil {
				ss = window.NewSessionState(aq.spec().Gap)
				aq.sessions[t.Key] = ss
				aq.sessKeys = insertSortedInt64(aq.sessKeys, t.Key)
			}
			ss.Add(t.Time, a.valueOf(aq, &t))
		}
		a.qsTmp.AndNotInPlace(mv.sessMask)
		if a.qsTmp.IsEmpty() {
			return
		}
	}
	sl := a.sl.sliceFor(t.Time)
	if sl.aggs == nil {
		sl.aggs = newQSIndex[aggGroup]()
	}
	g := sl.aggs.get(a.qsTmp)
	if g == nil {
		//lint:ignore hotalloc cold: runs once per first-seen query-set group per slice
		g = &aggGroup{qs: a.qsTmp.Clone(), byKey: make(map[int64]*aggVal)}
		sl.aggs.put(g.qs, g)
	}
	v := g.byKey[t.Key]
	if v == nil {
		v = a.getVal()
		g.byKey[t.Key] = v
		//lint:ignore hotalloc cold: runs once per first-seen key within a group
		g.keys = append(g.keys, t.Key)
	}
	v.fold(&t)
	sl.folds++
}

func (a *SharedAggregation) valueOf(aq *aggQuery, t *event.Tuple) int64 {
	if aq.q.Agg == sqlstream.AggCount || aq.q.AggField < 0 {
		return 1
	}
	return t.Fields[aq.q.AggField]
}

// triggerFor returns the trigger for ext, keeping trigTmp sorted by
// (End, Start) via binary insert instead of a per-watermark sort.
func (a *SharedAggregation) triggerFor(ext window.Extent) *aggTrigger {
	//lint:ignore hotalloc sort.Search does not retain its predicate; the closure is stack-allocated
	i := sort.Search(len(a.trigTmp), func(i int) bool {
		t := a.trigTmp[i]
		if t.ext.End != ext.End {
			return t.ext.End > ext.End
		}
		return t.ext.Start > ext.Start
	})
	if i < len(a.trigTmp) && a.trigTmp[i].ext == ext {
		return a.trigTmp[i]
	}
	var tr *aggTrigger
	if n := len(a.trigTmp); n < cap(a.trigTmp) {
		// Reuse the spare trigger parked past the length by an earlier
		// truncation, before the shift below overwrites its slot.
		a.trigTmp = a.trigTmp[:n+1]
		tr = a.trigTmp[n]
	} else {
		//lint:ignore hotalloc amortized: trigger list grows to the per-watermark extent count once
		a.trigTmp = append(a.trigTmp, nil)
	}
	if tr == nil {
		//lint:ignore hotalloc cold: trigger objects are recycled across watermarks once allocated
		tr = &aggTrigger{}
	}
	copy(a.trigTmp[i+1:], a.trigTmp[i:])
	tr.ext = ext
	tr.queries = tr.queries[:0]
	a.trigTmp[i] = tr
	return tr
}

// OnWatermark triggers windows ending in (lastWM, wm], harvests closed
// sessions, and evicts expired slices.
func (a *SharedAggregation) OnWatermark(wm event.Time, _ *spe.Emitter) {
	if wm <= a.lastWM {
		return
	}
	// Clamp the trigger range to where data exists (see SharedJoin).
	lo := a.lastWM
	if lo == event.MinTime {
		if f, ok := a.sl.firstSliceStart(); ok {
			lo = f
		} else {
			lo = wm
		}
	}

	// Group triggered time-window queries by extent; activeOrdered keeps
	// the per-trigger query lists in (slot, ID) order.
	a.trigTmp = a.trigTmp[:0]
	for _, aq := range a.activeOrdered {
		sp := aq.spec()
		if !sp.IsTimeBased() {
			continue
		}
		qlo := lo
		if aq.since > qlo {
			qlo = aq.since
		}
		for _, ext := range sp.WindowsEndingIn(qlo, wm) {
			if ext.End > aq.until {
				continue
			}
			tr := a.triggerFor(ext)
			tr.queries = append(tr.queries, aq)
		}
	}
	cur := a.table.Latest()
	// One sync serves the whole batch: overlapping extents triggered
	// together share refreshed tree nodes across fires.
	if a.tree != nil && len(a.trigTmp) > 0 {
		a.tree.sync()
	}
	for _, tr := range a.trigTmp {
		a.fireWindow(tr.ext, tr.queries, cur)
	}

	// Session harvest, in (slot, key) order for deterministic emission;
	// sessKeys is maintained sorted so no per-watermark key sort.
	for _, aq := range a.activeOrdered {
		if aq.sessions == nil {
			continue
		}
		keys := aq.sessKeys
		kept := keys[:0]
		for _, key := range keys {
			ss := aq.sessions[key]
			for _, cs := range ss.Harvest(wm) {
				if cs.Extent.End > aq.until {
					continue // session outlived the query
				}
				atomic.AddUint64(&a.metrics.AggOut, 1)
				val := finalizeCountSum(aq.q.Agg, cs.Count, cs.Sum)
				a.router.Deliver(Result{
					QueryID:   aq.q.ID,
					Kind:      aq.q.Kind,
					Window:    cs.Extent,
					Key:       key,
					Value:     val,
					EventTime: cs.Extent.End,
				})
			}
			if ss.Open() == 0 {
				delete(aq.sessions, key)
			} else {
				kept = append(kept, key)
			}
		}
		aq.sessKeys = kept
	}

	// Purge queries whose deletion time has passed; their last windows
	// have fired above.
	purged := false
	for id, aq := range a.active {
		if aq.until <= wm {
			delete(a.active, id)
			purged = true
		}
	}
	if purged {
		a.activeOrdered = filterOrdered(a.activeOrdered, func(aq *aggQuery) bool { return aq.until <= wm })
	}
	selPurged := false
	for id, sq := range a.selection {
		if sq.until <= wm {
			delete(a.selection, id)
			selPurged = true
		}
	}
	if selPurged {
		a.selOrdered = filterOrdered(a.selOrdered, func(sq *aggQuery) bool { return sq.until <= wm })
	}

	// Eviction and history compaction. Retention includes pending-deleted
	// queries (purge already removed the expired ones). Evicted slices
	// return their partials to the freelist.
	specs := a.specsTmp[:0]
	for _, aq := range a.activeOrdered {
		if sp := aq.spec(); sp.IsTimeBased() {
			specs = append(specs, sp)
		}
	}
	a.specsTmp = specs
	retain := func(sl *slice) event.Time {
		r := sl.ext.End
		for _, sp := range specs {
			if e := sp.LastWindowEndCovering(sl.ext.Start); e > r {
				r = e
			}
		}
		return r
	}
	a.sl.evict(wm, retain, func(sl *slice) {
		if sl.ext.End > a.evictedThru {
			a.evictedThru = sl.ext.End
		}
		if sl.aggs != nil {
			for _, g := range sl.aggs.order {
				for _, key := range g.keys {
					a.putVal(g.byKey[key])
				}
			}
			sl.aggs = nil
		}
	})
	a.sl.pruneEpochs(wm - a.lateness)
	// Prune mask versions no in-flight tuple can reference.
	horizon := wm - a.lateness
	i := sort.Search(len(a.maskVersions), func(i int) bool { return a.maskVersions[i].from > horizon }) - 1
	if i > 0 {
		a.maskVersions = append(a.maskVersions[:0], a.maskVersions[i:]...)
	}
	oldest := a.sl.oldestEpochInUse()
	if o := a.sl.minFutureEpoch(wm - a.lateness); o < oldest {
		oldest = o
	}
	a.table.Compact(oldest)
	a.lastWM = wm
}

// fireWindow combines slice partials for one window extent and emits one row
// per (query, key). Triggers with enough queries to dedup or a slice run
// long enough for the tree cover to pay fire through the shared engine;
// small lone triggers (and fault-injected instances, which carry no tree)
// take the direct per-slice scan. Both arms emit byte-identical streams
// (TestMergeTreeFireAgreesWithScan), so the dispatch is a pure cost choice.
func (a *SharedAggregation) fireWindow(ext window.Extent, queries []*aggQuery, curEpoch uint64) {
	lo, hi := a.sl.overlappingRange(ext)
	if lo == hi {
		return
	}
	if a.tree != nil && (len(queries) >= a.shareMinQueries || hi-lo >= a.shareMinRun) {
		a.fireWindowShared(ext, queries, curEpoch, lo, hi)
		return
	}
	a.fireWindowScan(ext, queries, curEpoch, lo, hi)
}

// buildCapGroups groups a trigger's queries (by index) into capTmp by their
// changelog-set cap: running queries mask to the current epoch,
// pending-deleted ones to the epoch before deletion. Caps per trigger are
// few: linear scan into the reused capTmp.
func (a *SharedAggregation) buildCapGroups(queries []*aggQuery, curEpoch uint64) []*aggCapGroup {
	groups := a.capTmp[:0]
	for qi, aq := range queries {
		capTo := curEpoch
		if aq.endEpoch < capTo {
			capTo = aq.endEpoch
		}
		var g *aggCapGroup
		for _, cg := range groups {
			if cg.cap == capTo {
				g = cg
				break
			}
		}
		if g == nil {
			if len(groups) < cap(groups) {
				groups = groups[:len(groups)+1]
				if groups[len(groups)-1] == nil {
					//lint:ignore hotalloc cold: cap-group objects are recycled across triggers once allocated
					groups[len(groups)-1] = &aggCapGroup{}
				}
			} else {
				//lint:ignore hotalloc amortized: cap-group list grows to the trigger's distinct cap count once
				groups = append(groups, &aggCapGroup{})
			}
			g = groups[len(groups)-1]
			g.cap = capTo
			g.idxs = g.idxs[:0]
		}
		//lint:ignore hotalloc amortized: cap-group index slices grow to the trigger's query count once
		g.idxs = append(g.idxs, qi)
	}
	a.capTmp = groups
	return groups
}

// emitAccum delivers one query's window rows from a sorted key list.
func (a *SharedAggregation) emitAccum(aq *aggQuery, ext window.Extent, keys []int64, byKey map[int64]*aggVal) {
	for _, key := range keys {
		v := byKey[key]
		atomic.AddUint64(&a.metrics.AggOut, 1)
		a.router.Deliver(Result{
			QueryID:     aq.q.ID,
			Kind:        aq.q.Kind,
			Window:      ext,
			Key:         key,
			Value:       v.finalize(aq.q.Agg, aq.q.AggField),
			EventTime:   ext.End,
			IngestNanos: v.IngestNanos,
		})
	}
}

// fireWindowScan is the per-slice re-merge arm: every query's accumulator
// re-merges every overlapping slice's groups — O(slices × groups × keys)
// per query. Kept as the fault-injection fallback and the ablation baseline.
// After warm-up it allocates only for new distinct keys: cap groups,
// accumulators, and partials are all reused.
func (a *SharedAggregation) fireWindowScan(ext window.Extent, queries []*aggQuery, curEpoch uint64, lo, hi int) {
	groups := a.buildCapGroups(queries, curEpoch)

	// One accumulator per query, parallel to queries — which arrive in
	// (slot, ID) order from activeOrdered, so emission below is ordered
	// without an accumulator sort.
	for len(a.accums) < len(queries) {
		//lint:ignore hotalloc cold: accumulators are recycled across triggers once allocated
		a.accums = append(a.accums, &slotAccum{byKey: make(map[int64]*aggVal)})
	}
	accums := a.accums[:len(queries)]
	for i, aq := range queries {
		accums[i].aq = aq
	}

	tick := a.metrics.start()
	for si := lo; si < hi; si++ {
		sl := a.sl.slices[si]
		if sl.aggs == nil {
			continue
		}
		for _, cg := range groups {
			if cg.cap < a.table.Base() {
				continue
			}
			relNow, err := a.table.Rel(sl.epoch, cg.cap)
			if err != nil {
				panic(fmt.Sprintf("core: agg relNow: %v", err))
			}
			if relNow.IsEmpty() {
				continue
			}
			for _, g := range sl.aggs.order {
				g.qs.AndInto(relNow, &a.effTmp)
				if a.effTmp.IsEmpty() {
					continue
				}
				for _, qi := range cg.idxs {
					aq := queries[qi]
					if !a.effTmp.Test(aq.slot) {
						continue
					}
					sa := accums[qi]
					for _, key := range g.keys {
						acc := sa.byKey[key]
						if acc == nil {
							acc = a.getVal()
							sa.byKey[key] = acc
							//lint:ignore hotalloc amortized: accumulator key slices grow to the window's key count once
							sa.keys = append(sa.keys, key)
						}
						acc.merge(g.byKey[key])
					}
				}
			}
		}
	}
	a.metrics.BitsetOps.observe(tick, a.metrics)
	// Emit in (slot, key) order — keys sort once per accumulator — then
	// release the accumulators.
	for _, sa := range accums {
		slices.Sort(sa.keys)
		a.emitAccum(sa.aq, ext, sa.keys, sa.byKey)
		for _, key := range sa.keys {
			a.putVal(sa.byKey[key])
			delete(sa.byKey, key)
		}
		sa.keys = sa.keys[:0]
		sa.aq = nil
	}
}

// fireWindowShared is the shared window-fire engine (DESIGN.md §15). The
// extent's slice run is covered by O(log n) merge-tree nodes whose partials
// are memoized across fires; per cap group, node groups collapse into
// effective-membership classes (one merge each, however many queries share
// it); and queries with identical class fingerprints share one combined
// accumulator, finalized per query at emission.
func (a *SharedAggregation) fireWindowShared(ext window.Extent, queries []*aggQuery, curEpoch uint64, lo, hi int) {
	t := a.tree
	a.nodeTmp = t.cover(t.lo+lo, t.lo+hi-1, a.nodeTmp[:0])
	groups := a.buildCapGroups(queries, curEpoch)

	a.classTmp = a.classTmp[:0]
	a.fpTmp = a.fpTmp[:0]
	a.fpIdx = a.fpIdx[:0]
	for range queries {
		//lint:ignore hotalloc amortized: fingerprint index grows to the trigger's query count once
		a.fpIdx = append(a.fpIdx, -1)
	}

	tick := a.metrics.start()
	for _, cg := range groups {
		if cg.cap < a.table.Base() {
			continue
		}
		clo := len(a.classTmp)
		// Classes only need the bits queries of this cap group test.
		a.qmaskTmp.Reset()
		for _, qi := range cg.idxs {
			a.qmaskTmp.Set(queries[qi].slot)
		}
		for _, ni := range a.nodeTmp {
			n := t.refresh(int(ni))
			if !n.has {
				continue
			}
			view, epoch := t.nodeView(int(ni))
			rel, err := a.table.Rel(epoch, cg.cap)
			if err != nil {
				panic(fmt.Sprintf("core: agg rel: %v", err))
			}
			// Premask the epoch relation with the cap group's slot mask
			// once per node; the group loop then ANDs a single mask.
			rel.AndInto(a.qmaskTmp, &a.relqTmp)
			if a.relqTmp.IsEmpty() {
				continue
			}
			for _, g := range view {
				g.qs.AndInto(a.relqTmp, &a.effTmp)
				if a.effTmp.IsEmpty() {
					continue
				}
				c := a.classFor(clo)
				for _, key := range g.keys {
					v := c.byKey[key]
					if v == nil {
						v = a.getVal()
						c.byKey[key] = v
						//lint:ignore hotalloc amortized: class key slices grow to the window's key count once
						c.keys = append(c.keys, key)
					}
					v.merge(g.byKey[key])
				}
			}
		}
		chi := len(a.classTmp)
		if chi == clo {
			continue
		}
		// Fingerprint each query's class membership; identical
		// fingerprints share one combined accumulator.
		if chi-clo <= 64 {
			for _, qi := range cg.idxs {
				slot := queries[qi].slot
				var m uint64
				for ci := clo; ci < chi; ci++ {
					if a.classTmp[ci].eff.Test(slot) {
						m |= 1 << uint(ci-clo)
					}
				}
				if m == 0 {
					continue
				}
				fi := -1
				for k, f := range a.fpTmp {
					if f.mask == m && f.base == clo {
						fi = k
						break
					}
				}
				if fi < 0 {
					fi = a.newFP(m, clo)
				}
				a.fpIdx[qi] = int32(fi)
			}
		} else {
			// Degenerate width (>64 classes under one cap): skip the
			// dedup, one private accumulator per query.
			for _, qi := range cg.idxs {
				slot := queries[qi].slot
				fi := -1
				for ci := clo; ci < chi; ci++ {
					if !a.classTmp[ci].eff.Test(slot) {
						continue
					}
					if fi < 0 {
						fi = len(a.fpTmp)
						a.acquireFP(0, clo)
					}
					a.mergeClassIntoFP(a.fpTmp[fi], a.classTmp[ci])
				}
				if fi >= 0 {
					a.fpIdx[qi] = int32(fi)
				}
			}
		}
	}
	a.metrics.BitsetOps.observe(tick, a.metrics)

	// Sort every emitting key list once (scan-arm order contract), emit in
	// query order, then drain classes and fingerprints back to the pools.
	for _, c := range a.classTmp {
		slices.Sort(c.keys)
	}
	for _, f := range a.fpTmp {
		if f.cls == nil {
			slices.Sort(f.keys)
		}
	}
	for qi, aq := range queries {
		fi := a.fpIdx[qi]
		if fi < 0 {
			continue
		}
		f := a.fpTmp[fi]
		if f.cls != nil {
			a.emitAccum(aq, ext, f.cls.keys, f.cls.byKey)
		} else {
			a.emitAccum(aq, ext, f.keys, f.byKey)
		}
	}
	for _, c := range a.classTmp {
		for _, key := range c.keys {
			a.putVal(c.byKey[key])
			delete(c.byKey, key)
		}
		c.keys = c.keys[:0]
	}
	for _, f := range a.fpTmp {
		if f.cls == nil {
			for _, key := range f.keys {
				a.putVal(f.byKey[key])
				delete(f.byKey, key)
			}
			f.keys = f.keys[:0]
		}
		f.cls = nil
	}
}

// classFor returns the class in classTmp[from:] whose membership equals
// effTmp, appending (from recycled storage) when new.
func (a *SharedAggregation) classFor(from int) *fireClass {
	for _, c := range a.classTmp[from:] {
		if c.eff.Equal(a.effTmp) {
			return c
		}
	}
	if n := len(a.classTmp); n < cap(a.classTmp) {
		a.classTmp = a.classTmp[:n+1]
	} else {
		//lint:ignore hotalloc amortized: class list grows to the trigger's class count once
		a.classTmp = append(a.classTmp, nil)
	}
	c := a.classTmp[len(a.classTmp)-1]
	if c == nil {
		//lint:ignore hotalloc cold: class objects are recycled across fires once allocated
		c = &fireClass{byKey: make(map[int64]*aggVal)}
		a.classTmp[len(a.classTmp)-1] = c
	}
	c.eff.CopyFrom(a.effTmp)
	return c
}

// acquireFP appends a fingerprint accumulator from recycled storage.
func (a *SharedAggregation) acquireFP(m uint64, base int) *fireFP {
	if n := len(a.fpTmp); n < cap(a.fpTmp) {
		a.fpTmp = a.fpTmp[:n+1]
	} else {
		//lint:ignore hotalloc amortized: fingerprint list grows to the trigger's fingerprint count once
		a.fpTmp = append(a.fpTmp, nil)
	}
	f := a.fpTmp[len(a.fpTmp)-1]
	if f == nil {
		//lint:ignore hotalloc cold: fingerprint objects are recycled across fires once allocated
		f = &fireFP{byKey: make(map[int64]*aggVal)}
		a.fpTmp[len(a.fpTmp)-1] = f
	}
	f.mask, f.base, f.cls = m, base, nil
	f.keys = f.keys[:0]
	return f
}

// newFP materializes the accumulator for fingerprint m over the class range
// starting at base: a single-class fingerprint aliases that class, wider
// ones merge their classes once for every query that shares them.
func (a *SharedAggregation) newFP(m uint64, base int) int {
	f := a.acquireFP(m, base)
	if m&(m-1) == 0 {
		f.cls = a.classTmp[base+bits.TrailingZeros64(m)]
		return len(a.fpTmp) - 1
	}
	for b := m; b != 0; b &= b - 1 {
		a.mergeClassIntoFP(f, a.classTmp[base+bits.TrailingZeros64(b)])
	}
	return len(a.fpTmp) - 1
}

// mergeClassIntoFP merges one class accumulator into a fingerprint's.
func (a *SharedAggregation) mergeClassIntoFP(f *fireFP, c *fireClass) {
	for _, key := range c.keys {
		v := f.byKey[key]
		if v == nil {
			v = a.getVal()
			f.byKey[key] = v
			//lint:ignore hotalloc amortized: fingerprint key slices grow to the window's key count once
			f.keys = append(f.keys, key)
		}
		v.merge(c.byKey[key])
	}
}

// fireBench drives one window fire for the benchmark harness: tree sync plus
// the fire itself, without OnWatermark's harvest/purge/evict bookkeeping, so
// per-op cost is the fire engine. Fires all registered time-window queries.
//
//lint:hotpath shared window-fire kernel steady state
func (a *SharedAggregation) fireBench(ext window.Extent) {
	a.trigTmp = a.trigTmp[:0]
	tr := a.triggerFor(ext)
	for _, aq := range a.activeOrdered {
		if aq.spec().IsTimeBased() && ext.End <= aq.until {
			//lint:ignore hotalloc amortized: trigger query list grows to the active query count once
			tr.queries = append(tr.queries, aq)
		}
	}
	if a.tree != nil {
		a.tree.sync()
	}
	a.fireWindow(ext, tr.queries, a.table.Latest())
}

// ActiveQueries reports registered aggregation queries (tests/metrics).
func (a *SharedAggregation) ActiveQueries() int { return len(a.active) }

// LiveSlices reports the live slice count (tests/metrics).
func (a *SharedAggregation) LiveSlices() int { return a.sl.liveSlices() }
