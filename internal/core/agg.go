package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"astream/internal/bitset"
	"astream/internal/changelog"
	"astream/internal/event"
	"astream/internal/spe"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// aggVal is the shared partial aggregate for one (query-set group, key): all
// the per-field statistics any query's aggregate can be finalized from, so
// every query sharing the group shares a single update per tuple
// (paper §3.1.5: tuples are folded into intermediate results and discarded).
type aggVal struct {
	Count       int64
	Sum         [event.NumFields]int64
	Min         [event.NumFields]int64
	Max         [event.NumFields]int64
	IngestNanos int64 // freshest contributor
}

func newAggVal() *aggVal {
	v := &aggVal{}
	for i := range v.Min {
		v.Min[i] = 1<<63 - 1
		v.Max[i] = -1 << 63
	}
	return v
}

func (v *aggVal) fold(t *event.Tuple) {
	v.Count++
	for i, f := range t.Fields {
		v.Sum[i] += f
		if f < v.Min[i] {
			v.Min[i] = f
		}
		if f > v.Max[i] {
			v.Max[i] = f
		}
	}
	if t.IngestNanos > v.IngestNanos {
		v.IngestNanos = t.IngestNanos
	}
}

func (v *aggVal) merge(o *aggVal) {
	v.Count += o.Count
	for i := range v.Sum {
		v.Sum[i] += o.Sum[i]
		if o.Min[i] < v.Min[i] {
			v.Min[i] = o.Min[i]
		}
		if o.Max[i] > v.Max[i] {
			v.Max[i] = o.Max[i]
		}
	}
	if o.IngestNanos > v.IngestNanos {
		v.IngestNanos = o.IngestNanos
	}
}

// finalize computes the query-visible value.
func (v *aggVal) finalize(fn sqlstream.AggFunc, field int) int64 {
	switch fn {
	case sqlstream.AggCount:
		return v.Count
	case sqlstream.AggSum:
		return v.Sum[field]
	case sqlstream.AggAvg:
		if v.Count == 0 {
			return 0
		}
		return v.Sum[field] / v.Count
	case sqlstream.AggMin:
		return v.Min[field]
	case sqlstream.AggMax:
		return v.Max[field]
	default:
		return 0
	}
}

// aggGroup is a query-set group inside one slice: per-key shared partials.
type aggGroup struct {
	qs    bitset.Bits
	byKey map[int64]*aggVal
}

// aggQuery is one active query served by the aggregation operator.
type aggQuery struct {
	q    *Query
	slot int
	port int // which input port feeds this query's aggregation
	// sessions is per-key session state for session-window queries.
	sessions map[int64]*window.SessionState
	// since/until/endEpoch implement event-time query lifetime, exactly as
	// in the shared join: windows ending in (since, until] fire, masked by
	// changelog-sets capped at endEpoch.
	since    event.Time
	until    event.Time
	endEpoch uint64
}

func (a *aggQuery) spec() window.Spec {
	if a.q.Kind == KindComplex {
		return a.q.AggWindow
	}
	return a.q.Window
}

// SharedAggregation is the shared windowed aggregation operator (§3.1.5).
// Port 0 carries raw stream-0 tuples (arity-1 aggregations and selections);
// port k ≥ 1 carries the output of join stage k-1 (complex queries of arity
// k+1). Tuples fold into query-set-grouped partial aggregates per slice and
// are then discarded; window results combine slice partials.
type SharedAggregation struct {
	spe.BaseLogic
	ports     int
	sl        *slicer
	table     *changelog.Table
	active    map[int]*aggQuery // by query ID
	selection map[int]*aggQuery // selection queries (terminal at port 0)
	// selOrdered mirrors selection sorted by slot: the per-tuple delivery
	// loop iterates it so result order is deterministic (and avoids map
	// iteration in the hot path). Rebuilt on changelog and purge.
	selOrdered []*aggQuery
	// maskVersions holds the per-port/selection/session slot masks,
	// versioned by event-time. Slot reuse makes a bare slot ambiguous (the
	// same bit can mean "aggregation input" in one epoch and "join input
	// of a complex query" in the next); resolving masks against the
	// tuple's event-time removes the ambiguity, exactly as the shared
	// selection resolves its predicate table.
	maskVersions []maskVersion
	router       *Router
	metrics      *OpMetrics
	lateness     event.Time
	lastWM       event.Time
	evictedThru  event.Time
}

// maskVersion is the slot-mask table in effect from a given event-time.
type maskVersion struct {
	from      event.Time
	portMasks []bitset.Bits
	selMask   bitset.Bits
	sessMask  bitset.Bits
}

// NewSharedAggregation constructs the logic for one instance.
func NewSharedAggregation(ports int, lateness event.Time, router *Router, m *OpMetrics) *SharedAggregation {
	return &SharedAggregation{
		ports:        ports,
		sl:           newSlicer(),
		table:        changelog.NewTable(),
		active:       make(map[int]*aggQuery),
		selection:    make(map[int]*aggQuery),
		maskVersions: []maskVersion{{from: event.MinTime, portMasks: make([]bitset.Bits, ports)}},
		router:       router,
		metrics:      m,
		lateness:     lateness,
		lastWM:       event.MinTime,
		evictedThru:  event.MinTime,
	}
}

// sortedQueryIDs returns the map's query IDs in ascending order, so
// changelog- and watermark-path iteration is deterministic across runs
// (replay determinism, §3.3).
func sortedQueryIDs(m map[int]*aggQuery) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// rebuildSelOrdered refreshes the slot-ordered selection list.
func (a *SharedAggregation) rebuildSelOrdered() {
	a.selOrdered = a.selOrdered[:0]
	for _, sq := range a.selection {
		a.selOrdered = append(a.selOrdered, sq)
	}
	sort.Slice(a.selOrdered, func(i, j int) bool { return a.selOrdered[i].slot < a.selOrdered[j].slot })
}

// masksAt returns the mask table in effect at event-time t.
func (a *SharedAggregation) masksAt(t event.Time) *maskVersion {
	i := sort.Search(len(a.maskVersions), func(i int) bool { return a.maskVersions[i].from > t }) - 1
	if i < 0 {
		i = 0
	}
	return &a.maskVersions[i]
}

// aggPortOf returns the input port whose tuples feed q's aggregation, or -1
// when q is not an aggregation consumer.
func aggPortOf(q *Query) int {
	switch q.Kind {
	case KindAggregation:
		return 0
	case KindComplex:
		return q.Arity - 1
	default:
		return -1
	}
}

// OnChangelog updates active queries, port masks, epochs, and the table.
func (a *SharedAggregation) OnChangelog(payload any, at event.Time, _ *spe.Emitter) {
	msg := payload.(*ChangelogMsg)
	for _, d := range msg.CL.Deleted {
		if aq, ok := a.active[d.Query]; ok {
			aq.until = at
			aq.endEpoch = msg.CL.Seq - 1
		}
		if sq, ok := a.selection[d.Query]; ok {
			sq.until = at
			sq.endEpoch = msg.CL.Seq - 1
		}
	}
	for _, c := range msg.CL.Created {
		q := msg.Defs[c.Query]
		if q == nil {
			continue
		}
		switch {
		case q.Kind == KindSelection:
			a.selection[c.Query] = &aggQuery{q: q, slot: c.Slot, port: 0, since: at, until: event.MaxTime, endEpoch: ^uint64(0)}
		case aggPortOf(q) >= 0 && aggPortOf(q) < a.ports:
			aq := &aggQuery{q: q, slot: c.Slot, port: aggPortOf(q), since: at, until: event.MaxTime, endEpoch: ^uint64(0)}
			if aq.spec().Kind == window.Session {
				aq.sessions = make(map[int64]*window.SessionState)
			}
			a.active[c.Query] = aq
		}
	}
	// Append a new mask version effective from this changelog's time,
	// built from the queries running after it (pending-deleted queries
	// keep their bits in OLDER versions, where in-flight pre-deletion
	// tuples resolve). Epoch specs likewise come from running queries.
	mv := maskVersion{from: at, portMasks: make([]bitset.Bits, a.ports)}
	specs := make([]window.Spec, 0, len(a.active))
	for _, id := range sortedQueryIDs(a.active) {
		aq := a.active[id]
		if aq.until == event.MaxTime {
			mv.portMasks[aq.port].Set(aq.slot)
			if aq.sessions != nil {
				mv.sessMask.Set(aq.slot)
			}
		}
		if sp := aq.spec(); sp.IsTimeBased() && aq.until == event.MaxTime {
			specs = append(specs, sp)
		}
	}
	for _, sq := range a.selection {
		if sq.until == event.MaxTime {
			mv.selMask.Set(sq.slot)
		}
	}
	a.rebuildSelOrdered()
	a.maskVersions = append(a.maskVersions, mv)
	if err := a.sl.addEpoch(at, msg.CL.Seq, specs); err != nil {
		panic(fmt.Sprintf("core: agg epoch: %v", err))
	}
	if err := a.table.Add(msg.CL); err != nil {
		panic(fmt.Sprintf("core: agg table: %v", err))
	}
}

// OnTuple folds the tuple into slice partials (and serves selection queries
// and session windows directly).
func (a *SharedAggregation) OnTuple(port int, t event.Tuple, _ *spe.Emitter) {
	mv := a.masksAt(t.Time)
	// Selection queries: terminal, stateless, port 0 only.
	if port == 0 && t.QuerySet.Intersects(mv.selMask) {
		for _, sq := range a.selOrdered {
			if t.QuerySet.Test(sq.slot) && t.Time >= sq.since && t.Time < sq.until {
				a.router.Deliver(Result{
					QueryID:     sq.q.ID,
					Kind:        KindSelection,
					Tuple:       t,
					EventTime:   t.Time,
					IngestNanos: t.IngestNanos,
				})
			}
		}
	}
	if port >= len(mv.portMasks) {
		return
	}
	qs := t.QuerySet.And(mv.portMasks[port])
	if qs.IsEmpty() {
		return
	}
	if t.Time < a.evictedThru {
		atomic.AddUint64(&a.metrics.Late, 1)
		return
	}
	// Session-window queries keep per-key data-driven state.
	timeQS := qs
	if qs.Intersects(mv.sessMask) {
		for _, aq := range a.active {
			if aq.sessions == nil || !qs.Test(aq.slot) || t.Time < aq.since || t.Time >= aq.until {
				continue
			}
			ss := aq.sessions[t.Key]
			if ss == nil {
				ss = window.NewSessionState(aq.spec().Gap)
				aq.sessions[t.Key] = ss
			}
			ss.Add(t.Time, a.valueOf(aq, &t))
		}
		timeQS = timeQS.AndNot(mv.sessMask)
	}
	if timeQS.IsEmpty() {
		return
	}
	sl := a.sl.sliceFor(t.Time)
	if sl.aggs == nil {
		sl.aggs = make(map[string]*aggGroup)
	}
	k := timeQS.Key()
	g := sl.aggs[k]
	if g == nil {
		g = &aggGroup{qs: timeQS.Clone(), byKey: make(map[int64]*aggVal)}
		sl.aggs[k] = g
	}
	v := g.byKey[t.Key]
	if v == nil {
		v = newAggVal()
		g.byKey[t.Key] = v
	}
	v.fold(&t)
}

func (a *SharedAggregation) valueOf(aq *aggQuery, t *event.Tuple) int64 {
	if aq.q.Agg == sqlstream.AggCount || aq.q.AggField < 0 {
		return 1
	}
	return t.Fields[aq.q.AggField]
}

// OnWatermark triggers windows ending in (lastWM, wm], harvests closed
// sessions, and evicts expired slices.
func (a *SharedAggregation) OnWatermark(wm event.Time, _ *spe.Emitter) {
	if wm <= a.lastWM {
		return
	}
	// Clamp the trigger range to where data exists (see SharedJoin).
	lo := a.lastWM
	if lo == event.MinTime {
		if f, ok := a.sl.firstSliceStart(); ok {
			lo = f
		} else {
			lo = wm
		}
	}

	// Group triggered time-window queries by extent.
	type trigger struct {
		ext     window.Extent
		queries []*aggQuery
	}
	byExt := map[window.Extent]*trigger{}
	var triggers []*trigger
	for _, id := range sortedQueryIDs(a.active) {
		aq := a.active[id]
		sp := aq.spec()
		if !sp.IsTimeBased() {
			continue
		}
		qlo := lo
		if aq.since > qlo {
			qlo = aq.since
		}
		for _, ext := range sp.WindowsEndingIn(qlo, wm) {
			if ext.End > aq.until {
				continue
			}
			tr := byExt[ext]
			if tr == nil {
				tr = &trigger{ext: ext}
				byExt[ext] = tr
				triggers = append(triggers, tr)
			}
			tr.queries = append(tr.queries, aq)
		}
	}
	// Fire in event-time order (matches the shared join's trigger order).
	sort.Slice(triggers, func(i, j int) bool {
		if triggers[i].ext.End != triggers[j].ext.End {
			return triggers[i].ext.End < triggers[j].ext.End
		}
		return triggers[i].ext.Start < triggers[j].ext.Start
	})
	cur := a.table.Latest()
	for _, tr := range triggers {
		a.fireWindow(tr.ext, tr.queries, cur)
	}

	// Session harvest, in (query, key) order for deterministic emission.
	for _, id := range sortedQueryIDs(a.active) {
		aq := a.active[id]
		if aq.sessions == nil {
			continue
		}
		sessKeys := make([]int64, 0, len(aq.sessions))
		for key := range aq.sessions {
			sessKeys = append(sessKeys, key)
		}
		sort.Slice(sessKeys, func(i, j int) bool { return sessKeys[i] < sessKeys[j] })
		for _, key := range sessKeys {
			ss := aq.sessions[key]
			for _, cs := range ss.Harvest(wm) {
				if cs.Extent.End > aq.until {
					continue // session outlived the query
				}
				atomic.AddUint64(&a.metrics.AggOut, 1)
				val := cs.Sum
				switch aq.q.Agg {
				case sqlstream.AggCount:
					val = cs.Count
				case sqlstream.AggAvg:
					if cs.Count > 0 {
						val = cs.Sum / cs.Count
					}
				}
				a.router.Deliver(Result{
					QueryID:   aq.q.ID,
					Kind:      aq.q.Kind,
					Window:    cs.Extent,
					Key:       key,
					Value:     val,
					EventTime: cs.Extent.End,
				})
			}
			if ss.Open() == 0 {
				delete(aq.sessions, key)
			}
		}
	}

	// Purge queries whose deletion time has passed; their last windows
	// have fired above.
	for id, aq := range a.active {
		if aq.until <= wm {
			delete(a.active, id)
		}
	}
	selPurged := false
	for id, sq := range a.selection {
		if sq.until <= wm {
			delete(a.selection, id)
			selPurged = true
		}
	}
	if selPurged {
		a.rebuildSelOrdered()
	}

	// Eviction and history compaction. Retention includes pending-deleted
	// queries (purge already removed the expired ones).
	specs := make([]window.Spec, 0, len(a.active))
	for _, id := range sortedQueryIDs(a.active) {
		if sp := a.active[id].spec(); sp.IsTimeBased() {
			specs = append(specs, sp)
		}
	}
	retain := func(sl *slice) event.Time {
		r := sl.ext.End
		for _, sp := range specs {
			if e := sp.LastWindowEndCovering(sl.ext.Start); e > r {
				r = e
			}
		}
		return r
	}
	a.sl.evict(wm, retain, func(sl *slice) {
		if sl.ext.End > a.evictedThru {
			a.evictedThru = sl.ext.End
		}
	})
	a.sl.pruneEpochs(wm - a.lateness)
	// Prune mask versions no in-flight tuple can reference.
	horizon := wm - a.lateness
	i := sort.Search(len(a.maskVersions), func(i int) bool { return a.maskVersions[i].from > horizon }) - 1
	if i > 0 {
		a.maskVersions = append(a.maskVersions[:0], a.maskVersions[i:]...)
	}
	oldest := a.sl.oldestEpochInUse()
	if o := a.sl.minFutureEpoch(wm - a.lateness); o < oldest {
		oldest = o
	}
	a.table.Compact(oldest)
	a.lastWM = wm
}

// fireWindow combines slice partials for one window extent and emits one row
// per (query, key).
func (a *SharedAggregation) fireWindow(ext window.Extent, queries []*aggQuery, curEpoch uint64) {
	slices := a.sl.overlapping(ext)
	if len(slices) == 0 {
		return
	}
	// Group queries by changelog-set cap (running queries mask to the
	// current epoch; pending-deleted ones to the epoch before deletion),
	// then accumulate per query slot and key.
	type aggCapGroup struct {
		cap     uint64
		queries []*aggQuery
	}
	byCap := map[uint64]*aggCapGroup{}
	var capGroups []*aggCapGroup
	for _, aq := range queries {
		cap := curEpoch
		if aq.endEpoch < cap {
			cap = aq.endEpoch
		}
		g := byCap[cap]
		if g == nil {
			g = &aggCapGroup{cap: cap}
			byCap[cap] = g
			capGroups = append(capGroups, g)
		}
		g.queries = append(g.queries, aq)
	}

	accum := make(map[int]map[int64]*aggVal, len(queries))
	slotQ := make(map[int]*aggQuery, len(queries))
	for _, aq := range queries {
		accum[aq.slot] = make(map[int64]*aggVal)
		slotQ[aq.slot] = aq
	}
	tick := a.metrics.start()
	for _, sl := range slices {
		if sl.aggs == nil {
			continue
		}
		for _, cg := range capGroups {
			if cg.cap < a.table.Base() {
				continue
			}
			relNow, err := a.table.Rel(sl.epoch, cg.cap)
			if err != nil {
				panic(fmt.Sprintf("core: agg relNow: %v", err))
			}
			if relNow.IsEmpty() {
				continue
			}
			for _, g := range sl.aggs {
				eff := g.qs.And(relNow)
				if eff.IsEmpty() {
					continue
				}
				for _, aq := range cg.queries {
					if !eff.Test(aq.slot) {
						continue
					}
					byKey := accum[aq.slot]
					for key, v := range g.byKey {
						acc := byKey[key]
						if acc == nil {
							acc = newAggVal()
							byKey[key] = acc
						}
						acc.merge(v)
					}
				}
			}
		}
	}
	a.metrics.BitsetOps.observe(tick, a.metrics)
	// Emit in (slot, key) order: per-sink result streams must not depend
	// on map iteration order.
	slots := make([]int, 0, len(accum))
	for slot := range accum {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	for _, slot := range slots {
		byKey := accum[slot]
		aq := slotQ[slot]
		keys := make([]int64, 0, len(byKey))
		for key := range byKey {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, key := range keys {
			v := byKey[key]
			atomic.AddUint64(&a.metrics.AggOut, 1)
			a.router.Deliver(Result{
				QueryID:     aq.q.ID,
				Kind:        aq.q.Kind,
				Window:      ext,
				Key:         key,
				Value:       v.finalize(aq.q.Agg, aq.q.AggField),
				EventTime:   ext.End,
				IngestNanos: v.IngestNanos,
			})
		}
	}
}

// ActiveQueries reports registered aggregation queries (tests/metrics).
func (a *SharedAggregation) ActiveQueries() int { return len(a.active) }

// LiveSlices reports the live slice count (tests/metrics).
func (a *SharedAggregation) LiveSlices() int { return a.sl.liveSlices() }
