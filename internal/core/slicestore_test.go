package core

import (
	"math/rand"
	"sort"
	"testing"

	"astream/internal/bitset"
	"astream/internal/event"
)

func mkTuple(key int64, tm event.Time, qs ...int) event.Tuple {
	return event.Tuple{Key: key, Time: tm, QuerySet: bitset.FromIndexes(qs...)}
}

func TestStoreModes(t *testing.T) {
	g := newSliceStore(StoreGrouped)
	l := newSliceStore(StoreList)
	for i := 0; i < 100; i++ {
		tu := mkTuple(int64(i%5), event.Time(i), i%3)
		g.Add(tu)
		l.Add(tu)
	}
	if !g.Grouped() || l.Grouped() {
		t.Fatal("mode flags wrong")
	}
	if g.GroupCount() != 3 {
		t.Fatalf("grouped store has %d groups, want 3", g.GroupCount())
	}
	if g.Len() != 100 || l.Len() != 100 {
		t.Fatal("Len mismatch")
	}
	if len(g.All()) != 100 || len(l.All()) != 100 {
		t.Fatal("All() length mismatch")
	}
}

func TestAdaptiveSwitchesToList(t *testing.T) {
	s := newSliceStore(StoreAdaptive)
	// Every tuple gets a unique query-set → mean group size 1 < 2.
	for i := 0; i < minTuplesForSwitch+4; i++ {
		s.Add(mkTuple(1, event.Time(i), i, i+100))
	}
	if s.Grouped() {
		t.Fatalf("adaptive store should have degenerated to list (%d tuples, %d groups)", s.Len(), s.GroupCount())
	}
	if s.Len() != minTuplesForSwitch+4 {
		t.Fatal("tuples lost in degeneration")
	}
}

func TestAdaptiveStaysGroupedWhenGroupsAreFat(t *testing.T) {
	s := newSliceStore(StoreAdaptive)
	for i := 0; i < 200; i++ {
		s.Add(mkTuple(int64(i), event.Time(i), i%4)) // 4 groups of 50
	}
	if !s.Grouped() {
		t.Fatal("adaptive store should stay grouped with mean group size 50")
	}
}

// refJoin is the brute-force reference for joinStores.
func refJoin(a, b []event.Tuple, mask bitset.Bits) []event.JoinedTuple {
	var out []event.JoinedTuple
	for _, x := range a {
		for _, y := range b {
			if x.Key != y.Key {
				continue
			}
			qs := x.QuerySet.And(y.QuerySet)
			qs.AndInPlace(mask)
			if qs.IsEmpty() {
				continue
			}
			jt := event.JoinedTuple{Key: x.Key, Left: x.Fields, Right: y.Fields, QuerySet: qs}
			jt.Time = x.Time
			if y.Time > jt.Time {
				jt.Time = y.Time
			}
			jt.IngestNanos = x.IngestNanos
			if y.IngestNanos > jt.IngestNanos {
				jt.IngestNanos = y.IngestNanos
			}
			out = append(out, jt)
		}
	}
	return out
}

func canonJoined(js []event.JoinedTuple) []string {
	out := make([]string, len(js))
	for i, j := range js {
		out[i] = j.QuerySet.String() + "|" +
			string(rune(j.Key)) + "|" + j.Time.String() +
			"|" + string(rune(j.Left[0])) + "|" + string(rune(j.Right[0]))
	}
	sort.Strings(out)
	return out
}

func TestJoinStoresMatchesBruteForceAllModeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	modes := []StoreMode{StoreGrouped, StoreList, StoreAdaptive}
	for trial := 0; trial < 60; trial++ {
		na, nb := rng.Intn(40), rng.Intn(40)
		var ta, tb []event.Tuple
		for i := 0; i < na; i++ {
			tu := mkTuple(int64(rng.Intn(6)), event.Time(rng.Intn(50)), rng.Intn(5))
			tu.Fields[0] = int64(rng.Intn(100))
			if rng.Intn(3) == 0 {
				tu.QuerySet.Set(rng.Intn(5))
			}
			ta = append(ta, tu)
		}
		for i := 0; i < nb; i++ {
			tu := mkTuple(int64(rng.Intn(6)), event.Time(rng.Intn(50)), rng.Intn(5))
			tu.Fields[0] = int64(rng.Intn(100))
			tb = append(tb, tu)
		}
		var mask bitset.Bits
		for i := 0; i < 5; i++ {
			if rng.Intn(4) != 0 {
				mask.Set(i)
			}
		}
		want := canonJoined(refJoin(ta, tb, mask))
		for _, ma := range modes {
			for _, mb := range modes {
				sa, sb := newSliceStore(ma), newSliceStore(mb)
				for _, tu := range ta {
					sa.Add(tu)
				}
				for _, tu := range tb {
					sb.Add(tu)
				}
				var got []event.JoinedTuple
				joinStores(sa, sb, mask, func(j event.JoinedTuple) { got = append(got, j) })
				g := canonJoined(got)
				if len(g) != len(want) {
					t.Fatalf("trial %d modes %v×%v: %d results, want %d", trial, ma, mb, len(g), len(want))
				}
				for i := range want {
					if g[i] != want[i] {
						t.Fatalf("trial %d modes %v×%v: result mismatch at %d", trial, ma, mb, i)
					}
				}
			}
		}
	}
}

func TestJoinStoresEmptyMask(t *testing.T) {
	sa, sb := newSliceStore(StoreGrouped), newSliceStore(StoreGrouped)
	sa.Add(mkTuple(1, 0, 0))
	sb.Add(mkTuple(1, 0, 0))
	n := 0
	joinStores(sa, sb, bitset.Bits{}, func(event.JoinedTuple) { n++ })
	if n != 0 {
		t.Fatal("empty mask must produce no results")
	}
}

func TestStoreModeString(t *testing.T) {
	if StoreAdaptive.String() != "adaptive" || StoreGrouped.String() != "grouped" || StoreList.String() != "list" {
		t.Fatal("StoreMode strings")
	}
}
