package core

import (
	"fmt"
	"math/rand"
	"testing"

	"astream/internal/bitset"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/spe"
)

// These tests pin the predicate index's one contract (DESIGN.md §14): for
// every predicate set and every tuple — in or out of order — indexed
// classification produces the exact query-set and the exact quarantine
// attributions of the naive per-entry scan it replaced.

// nopHook forces an instance onto the naive scan path (a non-nil fault hook
// disables index builds) without changing evaluation semantics.
type nopHook struct{}

func (nopHook) BeforePredicate(int, int) {}

// randIndexPred draws predicates the way adversarial ad-hoc workloads look:
// duplicated templates, contained intervals, contradictions, multi-field
// conjunctions, NE holes, key-field constraints, and invalid-field
// predicates that panic data-dependently under naive evaluation.
func randIndexPred(r *rand.Rand, templates []expr.Predicate) expr.Predicate {
	if len(templates) > 0 && r.Intn(100) < 30 {
		return templates[r.Intn(len(templates))] // duplicate an earlier predicate
	}
	p := expr.True()
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		field := r.Intn(event.NumFields+1) - 1 // KeyField..NumFields-1
		if r.Intn(100) < 8 {
			field = event.NumFields + r.Intn(3) // invalid: panics on evaluation
		}
		p = p.And(expr.Comparison{
			Field: field,
			Op:    expr.Op(r.Intn(6)),
			Value: int64(r.Intn(30)),
		})
	}
	return p
}

func randIndexTuple(r *rand.Rand, tmax int) event.Tuple {
	t := event.Tuple{
		Key:  int64(r.Intn(30)),
		Time: event.Time(r.Intn(tmax)),
	}
	for f := range t.Fields {
		t.Fields[f] = int64(r.Intn(30))
	}
	return t
}

// TestIndexedClassificationAgreesWithScan co-drives an indexed instance and
// a scan-forced instance through identical changelog/tuple/watermark
// sequences and requires bit-identical query-sets plus identical panic
// attribution on every tuple, including out-of-order tuples that classify
// against older table versions.
func TestIndexedClassificationAgreesWithScan(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))

			idx := NewSharedSelection(0, 50, NewOpMetrics(nil))
			scan := NewSharedSelection(0, 50, NewOpMetrics(nil))
			scan.faultHook = nopHook{}
			var idxPanics, scanPanics []int
			idx.onPredPanic = func(id int, _ any) { idxPanics = append(idxPanics, id) }
			scan.onPredPanic = func(id int, _ any) { scanPanics = append(scanPanics, id) }

			b := newCLBuilder()
			var templates []expr.Predicate
			var active []int
			em := &spe.Emitter{}

			apply := func(msg *ChangelogMsg, at event.Time) {
				idx.OnChangelog(msg, at, nil)
				scan.OnChangelog(msg, at, nil)
			}
			for step := 0; step < 40; step++ {
				at := event.Time(step * 100)
				// Mutate the workload: mostly creations, sometimes deletions
				// (occasionally enough of them to exercise the map-based path).
				if len(active) > 4 && r.Intn(100) < 35 {
					ndel := 1 + r.Intn(3)
					if r.Intn(100) < 25 {
						ndel = len(active)/2 + smallDeleteScan // force delScratch
					}
					if ndel > len(active) {
						ndel = len(active)
					}
					r.Shuffle(len(active), func(i, j int) { active[i], active[j] = active[j], active[i] })
					apply(b.remove(t, at, active[:ndel]...), at)
					active = active[ndel:]
				} else {
					nq := 1 + r.Intn(6)
					qs := make([]*Query, nq)
					for i := range qs {
						p := randIndexPred(r, templates)
						templates = append(templates, p)
						qs[i] = &Query{Kind: KindSelection, Arity: 1, Predicates: []expr.Predicate{p}}
					}
					msg := b.create(t, at, qs...)
					for _, q := range qs {
						active = append(active, q.ID)
					}
					apply(msg, at)
				}
				if len(idx.versions) != len(idx.indexes) {
					t.Fatalf("step %d: %d versions but %d indexes", step, len(idx.versions), len(idx.indexes))
				}

				// Tuples spanning every live version, including times far
				// behind the newest changelog.
				for i := 0; i < 60; i++ {
					tu := randIndexTuple(r, (step+1)*100+50)
					idxPanics, scanPanics = idxPanics[:0], scanPanics[:0]
					idx.OnTuple(0, tu, em)
					scan.OnTuple(0, tu, em)
					if !idx.qsTmp.Equal(scan.qsTmp) {
						t.Fatalf("step %d tuple %+v: indexed set %v != scan set %v",
							step, tu, idx.qsTmp.Words(), scan.qsTmp.Words())
					}
					if len(idxPanics) != len(scanPanics) {
						t.Fatalf("step %d tuple %+v: panic attribution %v != %v",
							step, tu, idxPanics, scanPanics)
					}
					for j := range idxPanics {
						if idxPanics[j] != scanPanics[j] {
							t.Fatalf("step %d tuple %+v: panic attribution %v != %v",
								step, tu, idxPanics, scanPanics)
						}
					}
				}

				// Occasionally advance the watermark so versions get pruned
				// (and the indexed instance recycles entry backings).
				if r.Intn(100) < 40 {
					wm := at - event.Time(r.Intn(200))
					if wm > 0 {
						idx.OnWatermark(wm, nil)
						scan.OnWatermark(wm, nil)
					}
				}
			}
		})
	}
}

// TestIndexSurvivesSnapshotRestore: the index is derived state — a restored
// instance must recompile it from the decoded entry table and classify
// exactly like the original.
func TestIndexSurvivesSnapshotRestore(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	sel := NewSharedSelection(0, 50, NewOpMetrics(nil))
	b := newCLBuilder()
	var templates []expr.Predicate
	for step := 0; step < 5; step++ {
		qs := make([]*Query, 8)
		for i := range qs {
			p := randIndexPred(r, templates)
			templates = append(templates, p)
			qs[i] = &Query{Kind: KindSelection, Arity: 1, Predicates: []expr.Predicate{p}}
		}
		at := event.Time(step * 100)
		sel.OnChangelog(b.create(t, at, qs...), at, nil)
	}

	restored := NewSharedSelection(0, 50, NewOpMetrics(nil))
	if err := restored.Restore(sel.OnBarrier(1, nil)); err != nil {
		t.Fatal(err)
	}
	if len(restored.indexes) != len(restored.versions) {
		t.Fatalf("restored %d versions but %d indexes", len(restored.versions), len(restored.indexes))
	}
	for i, ix := range restored.indexes {
		if ix == nil {
			t.Fatalf("restored version %d has no compiled index", i)
		}
		if got, want := ix.stats, sel.indexes[i].stats; got != want {
			t.Fatalf("version %d stats diverge after restore: %+v vs %+v", i, got, want)
		}
	}
	em := &spe.Emitter{}
	for i := 0; i < 500; i++ {
		tu := randIndexTuple(r, 550)
		sel.OnTuple(0, tu, em)
		restored.OnTuple(0, tu, em)
		if !sel.qsTmp.Equal(restored.qsTmp) {
			t.Fatalf("tuple %+v: original %v restored %v", tu, sel.qsTmp.Words(), restored.qsTmp.Words())
		}
	}
}

// TestOverlapIndexComposition pins how the 512-query overlap workload
// compiles: heavy dedup, every dispatch layer populated, and the chained
// containment group collapsed under a single lattice root.
func TestOverlapIndexComposition(t *testing.T) {
	sel := NewSharedSelection(0, 0, NewOpMetrics(nil))
	sel.installTable(overlapEntries(512))
	st := sel.IndexStats()
	want := SelIndexStats{
		Entries:       512,
		Nodes:         57, // 1 wide template + 32 points + 16 ranges + 8 chain links
		Deduped:       455,
		EqDispatch:    32,
		RangeDispatch: 17, // the wide template + the 16 one-sided ranges
		Lattice:       8,
		LatticeRoots:  1, // P₀ contains the whole chain
	}
	if st != want {
		t.Fatalf("overlap index stats = %+v, want %+v", st, want)
	}

	// And the workload classifies identically to the scan.
	scan := NewSharedSelection(0, 0, NewOpMetrics(nil))
	scan.faultHook = nopHook{}
	scan.installTable(overlapEntries(512))
	em := &spe.Emitter{}
	for i := 0; i < 4096; i++ {
		tu := benchTuple(i, bitset.Bits{}, 50)
		sel.OnTuple(0, tu, em)
		scan.OnTuple(0, tu, em)
		if !sel.qsTmp.Equal(scan.qsTmp) {
			t.Fatalf("tuple %d: indexed %v scan %v", i, sel.qsTmp.Words(), scan.qsTmp.Words())
		}
	}
}

// TestChangelogReusesEntryCapacity pins the control-path churn fix: a
// changelog with no deletions must not rebuild a deletion set, and entry
// backings from watermark-pruned versions are recycled into later tables.
func TestChangelogReusesEntryCapacity(t *testing.T) {
	sel := NewSharedSelection(0, 0, NewOpMetrics(nil))
	b := newCLBuilder()
	mk := func(n int) []*Query {
		qs := make([]*Query, n)
		for i := range qs {
			qs[i] = &Query{Kind: KindSelection, Arity: 1, Predicates: []expr.Predicate{
				expr.True().And(expr.Comparison{Field: 0, Op: expr.LT, Value: 500}),
			}}
		}
		return qs
	}
	first := b.create(t, 0, mk(16)...)
	ids := make([]int, 0, 8)
	for _, c := range first.CL.Created {
		if len(ids) < 8 {
			ids = append(ids, c.Query)
		}
	}
	sel.OnChangelog(first, 0, nil)
	sel.OnChangelog(b.remove(t, 100, ids...), 100, nil)
	if got := sel.ActiveEntries(); got != 8 {
		t.Fatalf("active entries = %d, want 8", got)
	}
	// Prune the first two versions; the 16-entry backing goes to the pool.
	sel.OnWatermark(250, nil)
	if len(sel.versions) != 1 || len(sel.indexes) != 1 {
		t.Fatalf("after prune: %d versions, %d indexes", len(sel.versions), len(sel.indexes))
	}
	pooled := len(sel.entryPool)
	if pooled == 0 {
		t.Fatalf("pruned entry backings were not pooled")
	}
	sel.OnChangelog(b.create(t, 300, mk(2)...), 300, nil)
	if len(sel.entryPool) >= pooled {
		t.Fatalf("changelog did not draw from the entry pool (%d -> %d)", pooled, len(sel.entryPool))
	}
	if got := sel.ActiveEntries(); got != 10 {
		t.Fatalf("active entries = %d, want 10", got)
	}
}
