package core

import (
	"fmt"
	"math/rand"
	"testing"

	"astream/internal/bitset"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/spe"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// These tests pin the shared window-fire engine's one contract (DESIGN.md
// §15): for every changelog history, slice population, and watermark
// schedule, the merge-tree path emits a stream byte-identical to the
// per-slice re-merge arm — same rows, same values (including IngestNanos,
// which exercises the max-merge), same order — across churn, lateness,
// pending-delete caps, and snapshot round-trips.

// fireRouter registers a formatting sink covering query IDs 1..maxID; unlike
// captureRouter it includes IngestNanos so value identity is byte-complete.
func fireRouter(out *[]string, maxID int) *Router {
	r := NewRouter(&OpMetrics{})
	for id := 1; id <= maxID; id++ {
		r.Register(id, SinkFunc(func(res Result) {
			*out = append(*out, fmt.Sprintf("q%d %v w=[%v,%v) key=%d val=%d et=%v in=%d",
				res.QueryID, res.Kind, res.Window.Start, res.Window.End,
				res.Key, res.Value, res.EventTime, res.IngestNanos))
		}))
	}
	return r
}

// randAggQuery draws aggregation queries across every window shape and
// aggregate function the fire path serves; a few sessions ride along to
// prove the harvest path stays untouched by the engine swap.
func randAggQuery(r *rand.Rand) *Query {
	var spec window.Spec
	switch r.Intn(5) {
	case 0:
		spec = window.TumblingSpec(event.Time(20 + r.Intn(180)))
	case 4:
		spec = window.SessionSpec(event.Time(10 + r.Intn(50)))
	default:
		length := event.Time(40 + r.Intn(160))
		slide := event.Time(10 + r.Intn(int(length)))
		spec = window.SlidingSpec(length, slide)
	}
	fns := []sqlstream.AggFunc{
		sqlstream.AggCount, sqlstream.AggSum, sqlstream.AggAvg,
		sqlstream.AggMin, sqlstream.AggMax,
	}
	return &Query{
		Kind:       KindAggregation,
		Arity:      1,
		Predicates: []expr.Predicate{expr.True()},
		Window:     spec,
		Agg:        fns[r.Intn(len(fns))],
		AggField:   r.Intn(event.NumFields),
	}
}

func randAggTuple(r *rand.Rand, at event.Time, i int) event.Tuple {
	lo := at - 300
	if lo < 0 {
		lo = 0
	}
	t := event.Tuple{
		Key:         int64(r.Intn(12)),
		Time:        lo + event.Time(r.Intn(int(at-lo)+150)),
		IngestNanos: int64(i + 1),
	}
	var qs bitset.Bits
	for k := 0; k <= r.Intn(4); k++ {
		qs.Set(r.Intn(24))
	}
	t.QuerySet = qs
	for f := range t.Fields {
		t.Fields[f] = int64(r.Intn(40)) - 20
	}
	return t
}

// TestMergeTreeFireAgreesWithScan co-drives a tree-fired instance and a
// scan-forced instance through identical changelog/tuple/watermark sequences
// — deploy/delete churn, late and out-of-order tuples, pending-delete caps —
// and requires byte-identical emission streams at every watermark.
func TestMergeTreeFireAgreesWithScan(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))

			var treeOut, scanOut []string
			tree := NewSharedAggregation(1, 50, fireRouter(&treeOut, 256), NewOpMetrics(nil))
			scan := NewSharedAggregation(1, 50, fireRouter(&scanOut, 256), NewOpMetrics(nil))
			// Pin the dispatch: every trigger on the tree instance must take
			// the shared arm (the adaptive thresholds would route small
			// random triggers to the scan on both sides, proving nothing).
			tree.shareMinQueries, tree.shareMinRun = 1, 1
			scan.disableMergeTree()
			if tree.tree == nil || scan.tree != nil {
				t.Fatal("arms not configured: tree instance must carry a merge tree, scan must not")
			}

			b := newCLBuilder()
			var active []int
			em := &spe.Emitter{}
			wm := event.MinTime
			emitted := false

			for step := 0; step < 40; step++ {
				at := event.Time(step * 100)
				if len(active) > 4 && r.Intn(100) < 30 {
					ndel := 1 + r.Intn(3)
					r.Shuffle(len(active), func(i, j int) { active[i], active[j] = active[j], active[i] })
					msg := b.remove(t, at, active[:ndel]...)
					active = active[ndel:]
					tree.OnChangelog(msg, at, nil)
					scan.OnChangelog(msg, at, nil)
				} else {
					nq := 1 + r.Intn(4)
					qs := make([]*Query, nq)
					for i := range qs {
						qs[i] = randAggQuery(r)
					}
					msg := b.create(t, at, qs...)
					for _, q := range qs {
						active = append(active, q.ID)
					}
					tree.OnChangelog(msg, at, nil)
					scan.OnChangelog(msg, at, nil)
				}

				for i := 0; i < 60; i++ {
					tu := randAggTuple(r, at, step*60+i)
					tree.OnTuple(0, tu, em)
					scan.OnTuple(0, tu, em)
				}

				if r.Intn(100) < 70 {
					next := at - event.Time(r.Intn(200))
					if next > wm {
						wm = next
						tree.OnWatermark(wm, nil)
						scan.OnWatermark(wm, nil)
						assertSameStrings(t, fmt.Sprintf("step %d wm=%v", step, wm), treeOut, scanOut)
						if len(treeOut) > 0 {
							emitted = true
						}
						treeOut, scanOut = treeOut[:0], scanOut[:0]
					}
				}
			}
			if !emitted {
				t.Fatal("workload fired no windows; the test proved nothing")
			}
			if tree.tree == nil || tree.tree.cap == 0 {
				t.Fatal("merge tree never anchored; the shared path did not run")
			}
		})
	}
}

// TestMergeTreeSurvivesSnapshotRestore: the tree is derived state — cutting
// a snapshot mid-churn and restoring it into fresh instances (one tree-fired,
// one scan-forced) must leave all three emission streams byte-identical on
// the continued workload, proving the rebuilt tree serves exactly the
// restored slice ring.
func TestMergeTreeSurvivesSnapshotRestore(t *testing.T) {
	r := rand.New(rand.NewSource(7))

	var origOut []string
	orig := NewSharedAggregation(1, 50, fireRouter(&origOut, 256), NewOpMetrics(nil))
	orig.shareMinQueries, orig.shareMinRun = 1, 1

	b := newCLBuilder()
	var active []int
	em := &spe.Emitter{}
	wm := event.MinTime

	drive := func(insts []*SharedAggregation, step int) {
		at := event.Time(step * 100)
		if len(active) > 4 && r.Intn(100) < 30 {
			ndel := 1 + r.Intn(3)
			r.Shuffle(len(active), func(i, j int) { active[i], active[j] = active[j], active[i] })
			msg := b.remove(t, at, active[:ndel]...)
			active = active[ndel:]
			for _, in := range insts {
				in.OnChangelog(msg, at, nil)
			}
		} else {
			qs := make([]*Query, 1+r.Intn(4))
			for i := range qs {
				qs[i] = randAggQuery(r)
			}
			msg := b.create(t, at, qs...)
			for _, q := range qs {
				active = append(active, q.ID)
			}
			for _, in := range insts {
				in.OnChangelog(msg, at, nil)
			}
		}
		for i := 0; i < 60; i++ {
			tu := randAggTuple(r, at, step*60+i)
			for _, in := range insts {
				in.OnTuple(0, tu, em)
			}
		}
		if next := at - event.Time(r.Intn(150)); next > wm {
			wm = next
			for _, in := range insts {
				in.OnWatermark(wm, nil)
			}
		}
	}

	for step := 0; step < 15; step++ {
		drive([]*SharedAggregation{orig}, step)
	}

	snap := orig.OnBarrier(1, nil)
	var treeOut, scanOut []string
	restTree := NewSharedAggregation(1, 50, fireRouter(&treeOut, 256), NewOpMetrics(nil))
	restTree.shareMinQueries, restTree.shareMinRun = 1, 1
	if err := restTree.Restore(snap); err != nil {
		t.Fatal(err)
	}
	restScan := NewSharedAggregation(1, 50, fireRouter(&scanOut, 256), NewOpMetrics(nil))
	restScan.disableMergeTree()
	if err := restScan.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restTree.tree == nil || restScan.tree != nil {
		t.Fatal("restore lost the arm configuration")
	}

	origOut = origOut[:0]
	for step := 15; step < 30; step++ {
		drive([]*SharedAggregation{orig, restTree, restScan}, step)
		assertSameStrings(t, fmt.Sprintf("step %d tree-vs-orig", step), treeOut, origOut)
		assertSameStrings(t, fmt.Sprintf("step %d scan-vs-orig", step), scanOut, origOut)
		origOut, treeOut, scanOut = origOut[:0], treeOut[:0], scanOut[:0]
	}
	if restTree.tree.cap == 0 {
		t.Fatal("restored merge tree never anchored")
	}
}

// TestMergeTreeResetReallocDrainsPayloads pins the capacity-change arm of
// reset: interior-node payloads built at the old capacity must drain back
// into the owner's freelist and the tree's group pool before the node
// arrays are reallocated, not be abandoned with them.
func TestMergeTreeResetReallocDrainsPayloads(t *testing.T) {
	var out []string
	sa := NewSharedAggregation(1, 50, fireRouter(&out, 8), NewOpMetrics(nil))
	tr := sa.tree
	if tr == nil {
		t.Fatal("shared aggregation carries no merge tree")
	}

	tr.reset(nil) // anchor at the minimum capacity
	if tr.cap != 8 {
		t.Fatalf("anchored at cap %d, want 8", tr.cap)
	}

	// Hand-build an interior payload at the current capacity: one group
	// holding two freelist-owned partials.
	n := &tr.nodes[2]
	n.groups = newQSIndex[aggGroup]()
	g := tr.getGroup()
	for _, key := range []int64{3, 9} {
		g.byKey[key] = sa.getVal()
		g.keys = append(g.keys, key)
	}
	n.groups.order = append(n.groups.order, g)

	// Grow the live list past capacity so reset takes the realloc arm.
	live := make([]*slice, 9)
	for i := range live {
		live[i] = &slice{}
	}
	vals, groups := len(sa.valPool), len(tr.pool)
	tr.reset(live)
	if tr.cap <= 8 {
		t.Fatalf("reset kept cap %d; the realloc arm did not run", tr.cap)
	}
	if got := len(sa.valPool) - vals; got != 2 {
		t.Errorf("realloc recycled %d aggVals into the freelist, want 2", got)
	}
	if got := len(tr.pool) - groups; got != 1 {
		t.Errorf("realloc recycled %d groups into the tree pool, want 1", got)
	}
}
