package core

import (
	"fmt"

	"astream/internal/bitset"
)

// mergeTree is the shared window-fire structure (DESIGN.md §15): a
// FlatFAT-style balanced binary tree of partial aggregates over the live
// slice list, so combining the slices of one window extent costs O(log n)
// node reads instead of an O(n) slice walk, and interior partials are shared
// by every query and every trigger that covers the same slice run.
//
// Layout is a 1-indexed heap over a power-of-two leaf array: node i has
// children 2i and 2i+1, leaves occupy [cap, 2·cap). Leaf position p holds
// owner.sl.slices[p-lo]; lo advances as slices evict from the front, so
// steady-state eviction is pointer bookkeeping, not a rebuild. When the live
// list stops being an append/evict suffix of the leaves (a late tuple opened
// a slice mid-list) or appends run past cap, the tree re-anchors from
// scratch — correctness never depends on the incremental path.
//
// Epoch masking: an interior node stores its subtree's groups masked to
// Rel(slice.epoch, E) where E is the max live slice epoch in its span.
// Because Rel is an AND-chain over changelog steps, Rel(s, cap) factors as
// Rel(s, E) & Rel(E, cap) for s ≤ E ≤ cap, so the fire path applies the
// remaining Rel(E, cap) once per node — groups whose masked query-sets
// coincide have merged already, which is exactly "tree nodes per
// (group, epoch-cap) only where caps actually differ".
//
// Everything here is derived from the slice ring and the changelog table:
// the tree is never snapshotted and rebuilds lazily after Restore.
type mergeTree struct {
	owner *SharedAggregation
	cap   int // leaf capacity, power of two; 0 until first anchor
	// nodes is the heap; index 0 is unused. Leaf node cap+p mirrors
	// leaves[p]; interior nodes own a groups payload.
	nodes  []mergeNode
	leaves []*slice // len cap; nil outside [lo, lo+n)
	folds  []uint64 // fold counter seen at last sync, parallel to leaves
	lo     int      // first live leaf position
	n      int      // live leaf count
	// pool recycles interior-node group payloads (their aggVals recycle
	// through the owner's freelist).
	pool []*aggGroup //lint:pooled freelist recycled interior-node group payloads
	// mask is the node-build scratch bitset (fire paths use owner scratch).
	mask bitset.Bits //lint:pooled scratch node-build bitset scratch
}

// mergeNode is one tree node. Leaves read has/epoch straight from their
// slice at refresh; interior nodes additionally maintain the merged payload.
type mergeNode struct {
	epoch  uint64 // max live leaf epoch in span (valid when has)
	has    bool   // span contains at least one slice with data
	dirty  bool   // payload/metadata stale; refresh before reading
	groups *qsIndex[aggGroup]
}

// sync aligns the tree with the owner's live slice list. Called once per
// fire batch (watermark or bench), before any refresh/cover.
//
// Reachable from the window-fire kernel root; steady state allocates
// nothing — eviction and fold-count dirtying touch counters only, and
// re-anchoring reuses node payloads at unchanged capacity.
func (t *mergeTree) sync() {
	live := t.owner.sl.slices
	if t.cap == 0 {
		t.reset(live)
		return
	}
	// Front eviction: leaves before live[0]'s position are gone.
	end := t.lo + t.n
	j := end
	if len(live) > 0 {
		j = t.lo
		for j < end && t.leaves[j] != live[0] {
			j++
		}
	}
	for p := t.lo; p < j; p++ {
		t.leaves[p] = nil
		t.folds[p] = 0
		t.nodes[t.cap+p].has = false
		t.markDirty(p)
	}
	t.n -= j - t.lo
	t.lo = j
	// Surviving prefix must match pointer-for-pointer; mid-list slice
	// insertion (late gap fill) breaks the append-only layout.
	m := 0
	for ; m < t.n; m++ {
		if t.leaves[t.lo+m] != live[m] {
			t.reset(live)
			return
		}
	}
	if t.lo+len(live) > t.cap {
		t.reset(live)
		return
	}
	for ; m < len(live); m++ {
		p := t.lo + m
		t.leaves[p] = live[m]
		t.folds[p] = live[m].folds
		t.markDirty(p)
	}
	t.n = len(live)
	// Fold-counter scan: slices that absorbed tuples since the last sync
	// dirty their root path.
	for p := t.lo; p < t.lo+t.n; p++ {
		if f := t.leaves[p].folds; f != t.folds[p] {
			t.folds[p] = f
			t.markDirty(p)
		}
	}
}

// reset re-anchors the tree on the current live list. Capacity doubles the
// live count (headroom for appends before the next re-anchor), minimum 8.
func (t *mergeTree) reset(live []*slice) {
	need := 2 * len(live)
	if need < 8 {
		need = 8
	}
	c := 1
	for c < need {
		c <<= 1
	}
	if c != t.cap {
		// Drain interior payloads before dropping the old arrays: their
		// aggVals belong to the owner's freelist and the group objects to
		// t.pool, both of which outlive the reallocation. Skipping this
		// abandons every pooled payload the old tree held.
		for i := 1; i < len(t.nodes); i++ {
			t.clearNode(&t.nodes[i])
		}
		t.cap = c
		//lint:ignore hotalloc cold: tree arrays reallocate only when live slice count crosses a power of two
		t.nodes = make([]mergeNode, 2*c)
		//lint:ignore hotalloc cold: tree arrays reallocate only when live slice count crosses a power of two
		t.leaves = make([]*slice, c)
		//lint:ignore hotalloc cold: tree arrays reallocate only when live slice count crosses a power of two
		t.folds = make([]uint64, c)
	} else {
		for i := 1; i < len(t.nodes); i++ {
			t.clearNode(&t.nodes[i])
			t.nodes[i].has = false
		}
		for i := range t.leaves {
			t.leaves[i] = nil
			t.folds[i] = 0
		}
	}
	t.lo = 0
	t.n = len(live)
	for i, sl := range live {
		t.leaves[i] = sl
		t.folds[i] = sl.folds
	}
	for i := 1; i < len(t.nodes); i++ {
		t.nodes[i].dirty = true
	}
}

// markDirty dirties leaf position pos and its root path. Invariant: a dirty
// node's ancestors are dirty, so the walk stops at the first dirty node.
func (t *mergeTree) markDirty(pos int) {
	for i := t.cap + pos; i >= 1; i >>= 1 {
		if t.nodes[i].dirty {
			return
		}
		t.nodes[i].dirty = true
	}
}

// refresh brings node i (and any dirty descendants) up to date and returns
// it. Clean subtrees are skipped wholesale — that is the shared-run reuse:
// once a slice run's interior partial is built, every later trigger covering
// the run reads it for free.
func (t *mergeTree) refresh(i int) *mergeNode {
	n := &t.nodes[i]
	if !n.dirty {
		return n
	}
	n.dirty = false
	if i >= t.cap {
		sl := t.leaves[i-t.cap]
		if sl == nil || sl.aggs == nil || sl.aggs.len() == 0 {
			n.has = false
			return n
		}
		n.has = true
		n.epoch = sl.epoch
		return n
	}
	l := t.refresh(2 * i)
	r := t.refresh(2*i + 1)
	t.clearNode(n)
	n.has = l.has || r.has
	if !n.has {
		return n
	}
	n.epoch = 0
	if l.has {
		n.epoch = l.epoch
	}
	if r.has && r.epoch > n.epoch {
		n.epoch = r.epoch
	}
	if n.groups == nil {
		n.groups = newQSIndex[aggGroup]()
	}
	if l.has {
		t.foldChild(n, 2*i)
	}
	if r.has {
		t.foldChild(n, 2*i+1)
	}
	return n
}

// foldChild merges child ci's groups into n, masking each group's query-set
// to Rel(child epoch, n.epoch) — the factored-out left half of the eventual
// Rel(slice epoch, cap) the fire path completes.
func (t *mergeTree) foldChild(n *mergeNode, ci int) {
	groups, cepoch := t.nodeView(ci)
	rel, err := t.owner.table.Rel(cepoch, n.epoch)
	if err != nil {
		panic(fmt.Sprintf("core: merge tree rel: %v", err))
	}
	for _, g := range groups {
		g.qs.AndInto(rel, &t.mask)
		if t.mask.IsEmpty() {
			continue
		}
		ng := n.groups.get(t.mask)
		if ng == nil {
			ng = t.getGroup()
			ng.qs.CopyFrom(t.mask)
			n.groups.put(ng.qs, ng)
		}
		for _, key := range g.keys {
			v := ng.byKey[key]
			if v == nil {
				v = t.owner.getVal()
				ng.byKey[key] = v
				//lint:ignore hotalloc amortized: node key slices grow to the span's key count once, then recycle
				ng.keys = append(ng.keys, key)
			}
			v.merge(g.byKey[key])
		}
	}
}

// nodeView returns the group list and epoch the fire/build paths read from a
// refreshed node: leaves serve their slice's index directly (no copy layer),
// interior nodes their merged payload. Caller checks has first.
func (t *mergeTree) nodeView(i int) ([]*aggGroup, uint64) {
	if i >= t.cap {
		sl := t.leaves[i-t.cap]
		return sl.aggs.order, sl.epoch
	}
	n := &t.nodes[i]
	return n.groups.order, n.epoch
}

// clearNode drains an interior node's payload: aggVals back to the owner's
// freelist, group objects to the tree pool, the index emptied in place.
func (t *mergeTree) clearNode(n *mergeNode) {
	if n.groups == nil || n.groups.len() == 0 {
		return
	}
	for _, g := range n.groups.order {
		for _, key := range g.keys {
			t.owner.putVal(g.byKey[key])
			delete(g.byKey, key)
		}
		g.keys = g.keys[:0]
		//lint:ignore hotalloc amortized: group pool grows to the tree's peak group count once
		t.pool = append(t.pool, g)
	}
	n.groups.clear()
}

// getGroup pops a pooled group payload or allocates one.
func (t *mergeTree) getGroup() *aggGroup {
	if n := len(t.pool); n > 0 {
		g := t.pool[n-1]
		t.pool = t.pool[:n-1]
		return g
	}
	//lint:ignore hotalloc cold: runs once per concurrently-live node group; steady state reuses pooled groups
	return &aggGroup{byKey: make(map[int64]*aggVal)}
}

// cover appends the canonical O(log n) node decomposition of leaf positions
// [from, to] to out: the standard iterative segment-tree walk, visiting each
// maximal aligned block exactly once. Node order is not left-to-right, which
// is fine — merges are commutative and emission order comes from sorted
// accumulator keys, not visit order.
func (t *mergeTree) cover(from, to int, out []int32) []int32 {
	l := t.cap + from
	r := t.cap + to + 1
	for l < r {
		if l&1 == 1 {
			//lint:ignore hotalloc amortized: cover scratch grows to O(log n) entries once
			out = append(out, int32(l))
			l++
		}
		if r&1 == 1 {
			r--
			//lint:ignore hotalloc amortized: cover scratch grows to O(log n) entries once
			out = append(out, int32(r))
		}
		l >>= 1
		r >>= 1
	}
	return out
}
