package core

import (
	"fmt"

	"astream/internal/bitset"
	"astream/internal/event"
	"astream/internal/spe"
	"astream/internal/window"
)

// This file implements incremental snapshots for the shared aggregation —
// the one operator whose state (per-slice partial aggregates) grows with the
// data instead of the workload. A delta re-serializes only the slices whose
// fold counter moved since the previous snapshot, plus the cheap workload
// tables (masks, queries, changelog-table suffix) in full; everything else
// is carried forward from the chain's base by identity. The selection and
// join operators deliberately do not implement spe.DeltaSnapshotter: their
// snapshots are already proportional to the workload, not the stream.
//
// A delta blob starts with spe.DeltaSnapshotMagic where a full snapshot
// starts with opSnapshotVersion, so a snapshot store can classify a deposit
// without understanding the encoding. Chains restore through Restore (base)
// followed by RestoreDelta per delta, strictly in order.

// OnBarrierDelta implements spe.DeltaSnapshotter: emit a full snapshot when
// no prior snapshot anchors a chain (first barrier, or first after a
// restore) or the chain has reached fullEvery-1 deltas; otherwise emit a
// delta covering only slices dirtied since the previous barrier.
func (a *SharedAggregation) OnBarrierDelta(id uint64, out *spe.Emitter, fullEvery int) []byte {
	if a.snapFolds == nil || a.sinceFull >= fullEvery-1 {
		b := a.OnBarrier(id, out)
		a.noteSnapshot(true)
		return b
	}
	b := a.appendDelta(nil)
	a.noteSnapshot(false)
	return b
}

// noteSnapshot records what the snapshot just taken captured: every live
// slice's fold counter (the dirtiness baseline for the next delta) and the
// changelog table's latest epoch (the base for the next table delta).
func (a *SharedAggregation) noteSnapshot(full bool) {
	if full {
		a.sinceFull = 0
	} else {
		a.sinceFull++
	}
	if a.snapFolds == nil {
		a.snapFolds = make(map[uint64]uint64, len(a.sl.slices))
	} else {
		clear(a.snapFolds)
	}
	for _, sl := range a.sl.slices {
		a.snapFolds[sl.id] = sl.folds
	}
	a.snapTableSeq = a.table.Latest()
}

// appendDelta serializes the incremental snapshot. The slicer ring is walked
// in full — slice identity, extent, and epoch are a handful of words each —
// but a slice's aggregate index is re-encoded only when its fold counter
// moved since the last snapshot (folds is bumped on every fold, and the only
// other aggregate mutation is eviction, which removes the slice from the
// ring entirely). Extents are always re-encoded because epoch transitions
// may truncate the newest slice in place without folding anything.
func (a *SharedAggregation) appendDelta(b []byte) []byte {
	b = snapU8(b, spe.DeltaSnapshotMagic)
	b = snapU32(b, uint32(a.ports))
	b = snapI64(b, int64(a.lastWM))
	b = snapI64(b, int64(a.evictedThru))
	a.tblScratch = a.table.AppendDelta(a.tblScratch[:0], a.snapTableSeq)
	b = snapBytes(b, a.tblScratch)
	b = snapU64(b, a.sl.nextID)
	b = snapU64(b, a.sl.stride)
	b = snapU32(b, uint32(len(a.sl.epochs)))
	for i := range a.sl.epochs {
		ep := &a.sl.epochs[i]
		b = snapI64(b, int64(ep.from))
		b = snapU64(b, ep.seq)
		b = snapU32(b, uint32(len(ep.specs)))
		for _, sp := range ep.specs {
			b = snapSpec(b, sp)
		}
	}
	b = snapU32(b, uint32(len(a.sl.slices)))
	for _, sl := range a.sl.slices {
		b = snapU64(b, sl.id)
		b = snapI64(b, int64(sl.ext.Start))
		b = snapI64(b, int64(sl.ext.End))
		b = snapU64(b, sl.epoch)
		old, ok := a.snapFolds[sl.id]
		dirty := !ok || old != sl.folds
		b = snapBool(b, dirty)
		if dirty {
			b = snapAggIndex(b, sl.aggs)
		}
	}
	b = snapU32(b, uint32(len(a.maskVersions)))
	for i := range a.maskVersions {
		mv := &a.maskVersions[i]
		b = snapI64(b, int64(mv.from))
		b = snapU32(b, uint32(len(mv.portMasks)))
		for _, pm := range mv.portMasks {
			b = snapBits(b, pm)
		}
		b = snapBits(b, mv.selMask)
		b = snapBits(b, mv.sessMask)
	}
	b = snapU32(b, uint32(len(a.activeOrdered)))
	for _, aq := range a.activeOrdered {
		b = snapAggQuery(b, aq, true)
	}
	b = snapU32(b, uint32(len(a.selOrdered)))
	for _, sq := range a.selOrdered {
		b = snapAggQuery(b, sq, false)
	}
	return b
}

// RestoreDelta implements spe.DeltaRestorable: advance a restored instance
// by one appendDelta blob. Clean slices keep the aggregate index the base
// (or previous delta) restored for the same slice id; dirty slices decode a
// fresh one. Applying a delta to anything other than the exact state it was
// encoded against is a chain-integrity error and fails loudly.
func (a *SharedAggregation) RestoreDelta(snapshot []byte) error {
	r := &snapR{b: snapshot}
	if m := r.u8("agg delta magic"); r.err == nil && m != spe.DeltaSnapshotMagic {
		return fmt.Errorf("core: aggregation delta magic %#x, want %#x", m, spe.DeltaSnapshotMagic)
	}
	if ports := int(r.u32("agg delta ports")); r.err == nil && ports != a.ports {
		return fmt.Errorf("core: aggregation delta has %d ports, instance has %d", ports, a.ports)
	}
	a.lastWM = event.Time(r.i64("agg delta lastWM"))
	a.evictedThru = event.Time(r.i64("agg delta evictedThru"))
	tdelta := r.bytes("agg delta table")
	if r.err != nil {
		return r.err
	}
	if a.table == nil {
		return fmt.Errorf("core: aggregation delta applied before a restored base")
	}
	if err := a.table.ApplyDelta(tdelta); err != nil {
		return err
	}
	prev := make(map[uint64]*qsIndex[aggGroup], len(a.sl.slices))
	for _, sl := range a.sl.slices {
		prev[sl.id] = sl.aggs
	}
	a.sl.nextID = r.u64("agg delta slicer nextID")
	a.sl.stride = r.u64("agg delta slicer stride")
	ne := r.count("agg delta epoch count", 16)
	a.sl.epochs = a.sl.epochs[:0]
	for i := 0; i < ne && r.err == nil; i++ {
		ep := epochInfo{
			from: event.Time(r.i64("agg delta epoch from")),
			seq:  r.u64("agg delta epoch seq"),
		}
		ns := r.count("agg delta epoch spec count", 25)
		for j := 0; j < ns && r.err == nil; j++ {
			ep.specs = append(ep.specs, readSnapSpec(r))
		}
		a.sl.epochs = append(a.sl.epochs, ep)
	}
	nsl := r.count("agg delta slice count", 29)
	a.sl.slices = a.sl.slices[:0]
	for i := 0; i < nsl && r.err == nil; i++ {
		sl := &slice{
			id: r.u64("agg delta slice id"),
			ext: window.Extent{
				Start: event.Time(r.i64("agg delta slice start")),
				End:   event.Time(r.i64("agg delta slice end")),
			},
			epoch: r.u64("agg delta slice epoch"),
		}
		if r.boolean("agg delta slice dirty") {
			sl.aggs = readAggIndex(r)
		} else if r.err == nil {
			aggs, ok := prev[sl.id]
			if !ok {
				return fmt.Errorf("core: aggregation delta carries forward slice %d absent from the restored chain", sl.id)
			}
			sl.aggs = aggs
		}
		if r.err == nil {
			a.sl.slices = append(a.sl.slices, sl)
		}
	}
	nmv := r.count("agg delta mask version count", 20)
	a.maskVersions = a.maskVersions[:0]
	for i := 0; i < nmv && r.err == nil; i++ {
		mv := maskVersion{from: event.Time(r.i64("agg delta mask from"))}
		np := r.count("agg delta port mask count", 4)
		mv.portMasks = make([]bitset.Bits, 0, np)
		for p := 0; p < np && r.err == nil; p++ {
			mv.portMasks = append(mv.portMasks, r.bits("agg delta port mask"))
		}
		mv.selMask = r.bits("agg delta sel mask")
		mv.sessMask = r.bits("agg delta sess mask")
		a.maskVersions = append(a.maskVersions, mv)
	}
	na := r.count("agg delta active count", 32)
	a.active = make(map[int]*aggQuery, na)
	a.activeOrdered = a.activeOrdered[:0]
	for i := 0; i < na && r.err == nil; i++ {
		aq := readAggQuery(r, true)
		if r.err == nil {
			a.active[aq.q.ID] = aq
			a.activeOrdered = insertBySlot(a.activeOrdered, aq)
		}
	}
	ns := r.count("agg delta selection count", 32)
	a.selection = make(map[int]*aggQuery, ns)
	a.selOrdered = a.selOrdered[:0]
	for i := 0; i < ns && r.err == nil; i++ {
		sq := readAggQuery(r, false)
		if r.err == nil {
			a.selection[sq.q.ID] = sq
			a.selOrdered = insertBySlot(a.selOrdered, sq)
		}
	}
	if err := r.finish("aggregation delta"); err != nil {
		return err
	}
	if len(a.maskVersions) == 0 {
		a.maskVersions = []maskVersion{{from: event.MinTime, portMasks: make([]bitset.Bits, a.ports)}}
	}
	a.rebuildMergeTree()
	return nil
}
