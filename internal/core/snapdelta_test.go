package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"astream/internal/bitset"
	"astream/internal/event"
	"astream/internal/spe"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// These tests pin the incremental-snapshot contract of the shared
// aggregation: a chain of one full snapshot plus deltas restores to the
// bit-identical state a full snapshot at the chain's end would, deltas
// re-serialize only dirtied slices, and every chain-integrity violation
// fails loudly.

const deltaFullEvery = 4

func newDeltaAgg(out *[]string, ids ...int) *SharedAggregation {
	return NewSharedAggregation(1, 10, captureRouter(out, ids...), &OpMetrics{})
}

// TestAggregationDeltaChainBitIdentical drives an instance through a
// full+delta+delta chain, restores a fresh instance from the chain, and
// asserts its next full snapshot — and its suffix emissions — match the
// original exactly.
func TestAggregationDeltaChainBitIdentical(t *testing.T) {
	b := newCLBuilder()
	msg := b.create(t, 0,
		aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, gt(0, -1)),
		aggQ(window.SlidingSpec(20, 5), sqlstream.AggMax, 0, gt(0, -1)))
	q1, s1 := msg.CL.Created[0].Query, msg.CL.Created[0].Slot
	q2, s2 := msg.CL.Created[1].Query, msg.CL.Created[1].Slot

	var gotO, gotF []string
	orig := newDeltaAgg(&gotO, q1, q2)
	orig.OnChangelog(msg, 0, nil)

	rng := rand.New(rand.NewSource(17))
	mk := func(tm event.Time) event.Tuple {
		tu := event.Tuple{Key: int64(rng.Intn(3)), Time: tm, QuerySet: bitset.FromIndexes(s1, s2)}
		tu.Fields[0] = int64(rng.Intn(50))
		return tu
	}

	var chain [][]byte
	tm := event.Time(1)
	for seg := 0; seg < 3; seg++ {
		for i := 0; i < 12; i++ {
			orig.OnTuple(0, mk(tm), nil)
			tm += 2
		}
		orig.OnWatermark(tm-6, nil)
		// A workload change inside the chain: deltas must carry the table
		// suffix and query-set masks forward correctly.
		if seg == 1 {
			msg2 := b.create(t, tm-6, aggQ(window.TumblingSpec(5), sqlstream.AggCount, 0, gt(0, 10)))
			orig.OnChangelog(msg2, tm-6, nil)
		}
		chain = append(chain, orig.OnBarrierDelta(uint64(seg+1), nil, deltaFullEvery))
	}
	if chain[0][0] != opSnapshotVersion {
		t.Fatalf("first chain snapshot should be full, got leading byte %#x", chain[0][0])
	}
	for i, d := range chain[1:] {
		if d[0] != spe.DeltaSnapshotMagic {
			t.Fatalf("chain snapshot %d should be a delta, got leading byte %#x", i+1, d[0])
		}
	}

	fresh := newDeltaAgg(&gotF, q1, q2)
	if err := fresh.Restore(chain[0]); err != nil {
		t.Fatal(err)
	}
	for i, d := range chain[1:] {
		if err := fresh.RestoreDelta(d); err != nil {
			t.Fatalf("delta %d: %v", i+1, err)
		}
	}
	assertSameSnapshot(t, "aggregation chain", orig.OnBarrier(99, nil), fresh.OnBarrier(99, nil))

	// Identical suffix into both must emit identically.
	gotO = gotO[:0]
	rng = rand.New(rand.NewSource(19))
	suffix := make([]event.Tuple, 0, 10)
	for i := 0; i < 10; i++ {
		suffix = append(suffix, mk(tm+event.Time(i*3)))
	}
	for _, tu := range suffix {
		orig.OnTuple(0, tu, nil)
		fresh.OnTuple(0, tu, nil)
	}
	for wm := tm; wm <= tm+60; wm += 5 {
		orig.OnWatermark(wm, nil)
		fresh.OnWatermark(wm, nil)
	}
	if len(gotO) == 0 {
		t.Fatal("suffix fired no aggregation windows; test exercises nothing")
	}
	assertSameStrings(t, "aggregation chain suffix", gotF, gotO)
}

// TestAggregationDeltaOmitsCleanSlices pins the size bound deltas exist for:
// after building a long ring of slices, a barrier interval that dirtied a
// single slice must produce a delta far smaller than the full snapshot,
// carrying exactly one re-serialized aggregate index.
func TestAggregationDeltaOmitsCleanSlices(t *testing.T) {
	b := newCLBuilder()
	msg := b.create(t, 0, aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, gt(0, -1)))
	slot := msg.CL.Created[0].Slot

	agg := newDeltaAgg(&[]string{}, msg.CL.Created[0].Query)
	agg.OnChangelog(msg, 0, nil)
	rng := rand.New(rand.NewSource(23))
	for tm := event.Time(1); tm < 600; tm += 2 {
		tu := event.Tuple{Key: int64(rng.Intn(4)), Time: tm, QuerySet: bitset.FromIndexes(slot)}
		tu.Fields[0] = int64(rng.Intn(50))
		agg.OnTuple(0, tu, nil)
	}
	full := agg.OnBarrierDelta(1, nil, 8)
	if full[0] != opSnapshotVersion {
		t.Fatalf("first snapshot should be full, leading byte %#x", full[0])
	}
	nslices := len(agg.sl.slices)
	if nslices < 30 {
		t.Fatalf("ring has %d slices; too few to make the bound meaningful", nslices)
	}

	// One tuple into the newest slice, then a delta.
	agg.OnTuple(0, event.Tuple{Key: 1, Time: 601, Fields: [event.NumFields]int64{7}, QuerySet: bitset.FromIndexes(slot)}, nil)
	delta := agg.OnBarrierDelta(2, nil, 8)
	if delta[0] != spe.DeltaSnapshotMagic {
		t.Fatalf("second snapshot should be a delta, leading byte %#x", delta[0])
	}
	if len(delta)*4 > len(full) {
		t.Fatalf("delta is %d bytes vs %d full: clean slices are being re-serialized", len(delta), len(full))
	}

	// Count dirty markers in the delta by re-decoding its slice section.
	dirty, clean := countDeltaSlices(t, delta)
	if dirty != 1 {
		t.Fatalf("delta re-serialized %d slices, want exactly 1", dirty)
	}
	if clean != nslices-1 && clean != nslices {
		t.Fatalf("delta carried %d clean slices; ring had %d", clean, nslices)
	}

	// An interval with no folds at all: every slice is clean.
	empty := agg.OnBarrierDelta(3, nil, 8)
	d0, _ := countDeltaSlices(t, empty)
	if d0 != 0 {
		t.Fatalf("idle delta re-serialized %d slices, want 0", d0)
	}
}

// countDeltaSlices walks a delta blob's slice section and tallies dirty vs
// carried-forward entries, skipping dirty payloads via the same decoders the
// restore path uses.
func countDeltaSlices(t *testing.T, delta []byte) (dirty, clean int) {
	t.Helper()
	r := &snapR{b: delta}
	r.u8("magic")
	r.u32("ports")
	r.i64("lastWM")
	r.i64("evictedThru")
	r.bytes("table delta")
	r.u64("nextID")
	r.u64("stride")
	ne := r.count("epochs", 16)
	for i := 0; i < ne && r.err == nil; i++ {
		r.i64("from")
		r.u64("seq")
		ns := r.count("specs", 25)
		for j := 0; j < ns; j++ {
			readSnapSpec(r)
		}
	}
	n := r.count("slices", 29)
	for i := 0; i < n && r.err == nil; i++ {
		r.u64("id")
		r.i64("start")
		r.i64("end")
		r.u64("epoch")
		if r.boolean("dirty") {
			dirty++
			readAggIndex(r)
		} else {
			clean++
		}
	}
	if r.err != nil {
		t.Fatalf("delta decode: %v", r.err)
	}
	return dirty, clean
}

// TestAggregationDeltaChainLengthBound: the fullEvery knob caps how many
// deltas separate full snapshots, and a restored instance always reopens its
// chain with a full snapshot (its dirtiness baseline died with the crash).
func TestAggregationDeltaChainLengthBound(t *testing.T) {
	b := newCLBuilder()
	msg := b.create(t, 0, aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, gt(0, -1)))
	slot := msg.CL.Created[0].Slot
	agg := newDeltaAgg(&[]string{}, msg.CL.Created[0].Query)
	agg.OnChangelog(msg, 0, nil)

	kinds := ""
	for i := 0; i < 8; i++ {
		agg.OnTuple(0, event.Tuple{Key: 1, Time: event.Time(1 + i), Fields: [event.NumFields]int64{3}, QuerySet: bitset.FromIndexes(slot)}, nil)
		s := agg.OnBarrierDelta(uint64(i+1), nil, 3)
		if s[0] == spe.DeltaSnapshotMagic {
			kinds += "d"
		} else {
			kinds += "F"
		}
	}
	if kinds != "FddFddFd" {
		t.Fatalf("chain shape %q, want FddFddFd (fullEvery=3)", kinds)
	}

	fresh := newDeltaAgg(&[]string{}, msg.CL.Created[0].Query)
	if err := fresh.Restore(agg.OnBarrier(99, nil)); err != nil {
		t.Fatal(err)
	}
	if s := fresh.OnBarrierDelta(100, nil, 3); s[0] == spe.DeltaSnapshotMagic {
		t.Fatal("restored instance opened with a delta; chain base must be a full snapshot")
	}
}

// TestAggregationRestoreDeltaRejectsCorruptChains: magic mismatch, trailing
// bytes, and carry-forward of slices the chain never restored all fail
// loudly instead of producing silently wrong state.
func TestAggregationRestoreDeltaRejectsCorruptChains(t *testing.T) {
	b := newCLBuilder()
	msg := b.create(t, 0, aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, gt(0, -1)))
	slot := msg.CL.Created[0].Slot
	agg := newDeltaAgg(&[]string{}, msg.CL.Created[0].Query)
	agg.OnChangelog(msg, 0, nil)
	agg.OnTuple(0, event.Tuple{Key: 1, Time: 5, Fields: [event.NumFields]int64{3}, QuerySet: bitset.FromIndexes(slot)}, nil)
	base := agg.OnBarrierDelta(1, nil, 4)
	agg.OnTuple(0, event.Tuple{Key: 2, Time: 6, Fields: [event.NumFields]int64{4}, QuerySet: bitset.FromIndexes(slot)}, nil)
	delta := agg.OnBarrierDelta(2, nil, 4)

	restored := func() *SharedAggregation {
		fresh := newDeltaAgg(&[]string{}, msg.CL.Created[0].Query)
		if err := fresh.Restore(base); err != nil {
			t.Fatal(err)
		}
		return fresh
	}

	if err := restored().RestoreDelta(base); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("full snapshot accepted as delta: %v", err)
	}
	skewed := append(append([]byte(nil), delta...), 0xEE)
	if err := restored().RestoreDelta(skewed); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes not rejected: %v", err)
	}
	if err := restored().RestoreDelta(delta[:len(delta)/2]); err == nil {
		t.Fatal("truncated delta accepted")
	}
	// A clean delta applied out of order (to an instance that never restored
	// the base's slices) must fail on the carried-forward slice.
	empty := newDeltaAgg(&[]string{}, msg.CL.Created[0].Query)
	if err := empty.RestoreDelta(delta); err == nil {
		t.Fatal("delta applied before a base was accepted")
	}
	// The happy path still works, proving the guards only fire on corruption.
	ok := restored()
	if err := ok.RestoreDelta(delta); err != nil {
		t.Fatalf("clean chain rejected: %v", err)
	}
	assertSameSnapshot(t, "chain vs original", agg.OnBarrier(99, nil), ok.OnBarrier(99, nil))
}

// TestAggregationDeltaVsFullRestoreEquivalence: restoring base+deltas and
// restoring the contemporaneous full snapshot must land in byte-identical
// state (the durable backend keeps both paths alive — recovery prefers the
// chain, compaction rewrites it as a full snapshot).
func TestAggregationDeltaVsFullRestoreEquivalence(t *testing.T) {
	b := newCLBuilder()
	msg := b.create(t, 0, aggQ(window.SlidingSpec(20, 5), sqlstream.AggAvg, 0, gt(0, -1)))
	slot := msg.CL.Created[0].Slot
	agg := newDeltaAgg(&[]string{}, msg.CL.Created[0].Query)
	agg.OnChangelog(msg, 0, nil)

	rng := rand.New(rand.NewSource(29))
	var chain [][]byte
	tm := event.Time(1)
	for seg := 0; seg < 4; seg++ {
		for i := 0; i < 9; i++ {
			tu := event.Tuple{Key: int64(rng.Intn(3)), Time: tm, QuerySet: bitset.FromIndexes(slot)}
			tu.Fields[0] = int64(rng.Intn(100))
			agg.OnTuple(0, tu, nil)
			tm += 3
		}
		agg.OnWatermark(tm-9, nil)
		chain = append(chain, agg.OnBarrierDelta(uint64(seg+1), nil, 8))
	}
	fullNow := agg.OnBarrier(99, nil)

	viaChain := newDeltaAgg(&[]string{}, msg.CL.Created[0].Query)
	if err := viaChain.Restore(chain[0]); err != nil {
		t.Fatal(err)
	}
	for _, d := range chain[1:] {
		if err := viaChain.RestoreDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	viaFull := newDeltaAgg(&[]string{}, msg.CL.Created[0].Query)
	if err := viaFull.Restore(fullNow); err != nil {
		t.Fatal(err)
	}
	a, bb := viaChain.OnBarrier(100, nil), viaFull.OnBarrier(100, nil)
	if !bytes.Equal(a, bb) {
		t.Fatalf("chain restore and full restore diverged (%d vs %d bytes)", len(a), len(bb))
	}
}
