package core

import (
	"sort"

	"astream/internal/bitset"
	"astream/internal/event"
	"astream/internal/expr"
)

// This file is the shared selection's predicate index (DESIGN.md §14): the
// compiled evaluation plan that replaces the naive per-entry scan in
// SharedSelection.OnTuple while producing bit-identical query-sets. One
// index is compiled per query-table version at OnChangelog/Restore time
// (control path, allocation allowed); classification (hot path) then runs
// in four layers:
//
//  1. always-true predicates are a precomputed bitset OR — zero evaluation;
//  2. structurally equal predicates (canonical-form dedup) evaluate once
//     and fan their result into every subscriber slot via a per-node
//     bitset OR;
//  3. single-field predicates dispatch on the tuple's field value: exact
//     points through a hash map, intervals through a sorted stabbing index,
//     so a tuple touches O(log n + matches) entries instead of all n;
//  4. remaining (multi-field / holed) predicates evaluate through a
//     containment lattice: when a weaker predicate fails, every predicate
//     it contains is pruned without evaluation.
//
// Entries whose predicates cannot be canonicalized (out-of-range field — the
// only way a predicate can panic data-dependently) stay on the guarded
// per-entry path so panic isolation and quarantine attribution are preserved
// exactly. Always-false predicates are excluded from evaluation entirely.

// SelIndexStats summarizes one compiled index's composition (tests, QoS,
// benchmarks). Entries = AlwaysTrue + AlwaysFalse + Deduped + Fallback +
// Nodes, and Nodes = EqDispatch + RangeDispatch + Lattice.
type SelIndexStats struct {
	Entries       int // live predicate entries in the version
	Nodes         int // deduplicated canonical predicates
	AlwaysTrue    int // entries satisfied by every tuple (bitset OR, no eval)
	AlwaysFalse   int // contradictory entries excluded from evaluation
	Deduped       int // entries folded into an existing node's fan-out
	EqDispatch    int // nodes served by the per-field point hash
	RangeDispatch int // nodes served by the interval-stabbing index
	Lattice       int // nodes evaluated through the containment lattice
	LatticeRoots  int // lattice roots (weakest predicates, tried first)
	Fallback      int // entries kept on the guarded per-entry path
}

// Add accumulates o into s (per-stream aggregation).
func (s *SelIndexStats) Add(o SelIndexStats) {
	s.Entries += o.Entries
	s.Nodes += o.Nodes
	s.AlwaysTrue += o.AlwaysTrue
	s.AlwaysFalse += o.AlwaysFalse
	s.Deduped += o.Deduped
	s.EqDispatch += o.EqDispatch
	s.RangeDispatch += o.RangeDispatch
	s.Lattice += o.Lattice
	s.LatticeRoots += o.LatticeRoots
	s.Fallback += o.Fallback
}

// selNode is one deduplicated canonical predicate and its fan-out: the
// query-set bits of every entry whose predicate canonicalized to this form.
type selNode struct {
	canon expr.Canonical
	bits  bitset.Bits
	// kids are lattice children: nodes whose canonical form is contained in
	// this one (they can only match when this node matches). Empty for
	// dispatched nodes.
	kids []int32
	// sel is the build-time selectivity estimate ordering lattice siblings
	// weakest-first.
	sel float64
}

// ivIndex is a static interval-stabbing index: intervals sorted by Lo with
// an implicit balanced BST (midpoint recursion) augmented by the subtree's
// maximum Hi. stab visits O(log n + matches) nodes for the workload's
// one-sided intervals (general two-sided worst case O(matches · log n)).
type ivIndex struct {
	lo, hi []int64
	// maxHi[m] is the maximum hi over the subtree whose midpoint is m in
	// the stab recursion.
	maxHi []int64
	node  []int32
}

// fieldDispatch routes one tuple column to its matching single-field nodes.
type fieldDispatch struct {
	// eq maps an exact constraint point to the nodes pinned to it.
	eq map[int64][]int32
	iv ivIndex
}

// selIndex is the compiled classification plan for one selVersion.
type selIndex struct {
	// always is the union of every always-true entry's slot bit.
	always bitset.Bits
	nodes  []selNode
	// dispatch[0] serves the tuple key, dispatch[f+1] payload field f.
	dispatch [event.NumFields + 1]fieldDispatch
	// roots are the containment-lattice roots among general nodes.
	roots []int32
	// fallback indexes (into the version's entry table) the entries that
	// must evaluate through the guarded per-entry path.
	fallback []int32
	stats    SelIndexStats
}

// latticeFieldMax is the uniform-domain assumption for ordering lattice
// siblings by estimated selectivity; it matches the workload generator's
// default field domain. Only evaluation order depends on it, never results.
const latticeFieldMax = 1000

// buildSelIndex compiles a version's entry table into an index. Control
// path: runs at changelog/restore time, never per tuple.
func buildSelIndex(entries []selEntry) *selIndex {
	ix := &selIndex{}
	ix.stats.Entries = len(entries)
	byKey := make(map[string]int32, len(entries))
	var keyBuf []byte
	for i := range entries {
		e := &entries[i]
		canon, err := expr.Canonicalize(e.pred)
		if err != nil {
			// Non-canonicalizable (out-of-range field): the only predicate
			// class that can panic, so it keeps its per-entry isolation
			// boundary and exact quarantine attribution.
			ix.fallback = append(ix.fallback, int32(i))
			ix.stats.Fallback++
			continue
		}
		if canon.False {
			ix.stats.AlwaysFalse++
			continue
		}
		if canon.AlwaysTrue() {
			ix.always.Set(e.slot)
			ix.stats.AlwaysTrue++
			continue
		}
		keyBuf = canon.AppendKey(keyBuf[:0])
		if ni, ok := byKey[string(keyBuf)]; ok {
			ix.nodes[ni].bits.Set(e.slot)
			ix.stats.Deduped++
			continue
		}
		ni := int32(len(ix.nodes))
		var bits bitset.Bits
		bits.Set(e.slot)
		ix.nodes = append(ix.nodes, selNode{
			canon: canon,
			bits:  bits,
			sel:   canon.Selectivity(latticeFieldMax),
		})
		byKey[string(keyBuf)] = ni
	}
	ix.stats.Nodes = len(ix.nodes)

	// Partition nodes: single-field hole-free constraints dispatch on the
	// field value; everything else goes through the containment lattice.
	var general []int32
	for ni := range ix.nodes {
		n := &ix.nodes[ni]
		if len(n.canon.Constraints) == 1 && len(n.canon.Constraints[0].Holes) == 0 {
			fc := &n.canon.Constraints[0]
			d := &ix.dispatch[fc.Field+1]
			if fc.Iv.Lo == fc.Iv.Hi {
				if d.eq == nil {
					d.eq = make(map[int64][]int32)
				}
				d.eq[fc.Iv.Lo] = append(d.eq[fc.Iv.Lo], int32(ni))
				ix.stats.EqDispatch++
			} else {
				d.iv.lo = append(d.iv.lo, fc.Iv.Lo)
				d.iv.hi = append(d.iv.hi, fc.Iv.Hi)
				d.iv.node = append(d.iv.node, int32(ni))
				ix.stats.RangeDispatch++
			}
			continue
		}
		general = append(general, int32(ni))
	}
	for f := range ix.dispatch {
		ix.dispatch[f].iv.build()
	}
	ix.buildLattice(general)
	ix.stats.Lattice = len(general)
	ix.stats.LatticeRoots = len(ix.roots)
	return ix
}

// buildLattice arranges the general nodes into a containment forest:
// weakest predicates become roots, each node hangs under the first existing
// node whose canonical form contains it. Insertion order (selectivity
// descending, creation order on ties) guarantees containers are placed
// before their containees, and makes the forest deterministic.
func (ix *selIndex) buildLattice(general []int32) {
	sort.SliceStable(general, func(i, j int) bool {
		si, sj := ix.nodes[general[i]].sel, ix.nodes[general[j]].sel
		if si != sj {
			return si > sj
		}
		return general[i] < general[j]
	})
	for _, ni := range general {
		n := &ix.nodes[ni]
		level := &ix.roots
	descend:
		for {
			for _, ci := range *level {
				c := &ix.nodes[ci]
				if c.canon.Contains(&n.canon) {
					level = &c.kids
					continue descend
				}
			}
			break
		}
		*level = append(*level, ni)
	}
}

// build finalizes the stabbing index: co-sorts the interval arrays by
// (Lo, Hi, node) and computes the subtree-max augmentation along the same
// midpoint decomposition stab descends.
func (iv *ivIndex) build() {
	if len(iv.node) == 0 {
		return
	}
	sort.Sort((*ivSorter)(iv))
	iv.maxHi = make([]int64, len(iv.node))
	iv.fillMax(0, len(iv.node)-1)
}

func (iv *ivIndex) fillMax(l, r int) int64 {
	if l > r {
		return minInt64
	}
	m := int(uint(l+r) >> 1)
	mx := iv.hi[m]
	if v := iv.fillMax(l, m-1); v > mx {
		mx = v
	}
	if v := iv.fillMax(m+1, r); v > mx {
		mx = v
	}
	iv.maxHi[m] = mx
	return mx
}

const minInt64 = -1 << 63

// ivSorter co-sorts the parallel interval arrays.
type ivSorter ivIndex

func (s *ivSorter) Len() int { return len(s.node) }
func (s *ivSorter) Less(i, j int) bool {
	if s.lo[i] != s.lo[j] {
		return s.lo[i] < s.lo[j]
	}
	if s.hi[i] != s.hi[j] {
		return s.hi[i] < s.hi[j]
	}
	return s.node[i] < s.node[j]
}
func (s *ivSorter) Swap(i, j int) {
	s.lo[i], s.lo[j] = s.lo[j], s.lo[i]
	s.hi[i], s.hi[j] = s.hi[j], s.hi[i]
	s.node[i], s.node[j] = s.node[j], s.node[i]
}

// classify computes the tuple's query-set into qs: the indexed equivalent
// of scanEntries, bit-identical by construction (and property-tested).
// Allocation-free in steady state.
//
//lint:hotpath
func (ix *selIndex) classify(s *SharedSelection, v *selVersion, t *event.Tuple, qs *bitset.Bits) {
	qs.OrInPlace(ix.always)
	for f := 0; f < len(ix.dispatch); f++ {
		d := &ix.dispatch[f]
		if d.eq == nil && len(d.iv.node) == 0 {
			continue
		}
		var val int64
		if f == 0 {
			val = t.Key
		} else {
			val = t.Fields[f-1]
		}
		if d.eq != nil {
			for _, ni := range d.eq[val] {
				qs.OrInPlace(ix.nodes[ni].bits)
			}
		}
		if len(d.iv.node) > 0 {
			d.iv.stab(ix.nodes, 0, len(d.iv.node)-1, val, qs)
		}
	}
	if len(ix.roots) > 0 {
		ix.walkLattice(ix.roots, t, qs)
	}
	for _, ei := range ix.fallback {
		e := &v.entries[ei]
		if s.evalEntry(e, t) {
			qs.Set(e.slot)
		}
	}
}

// walkLattice evaluates a sibling list: a matching node fans its bits and
// descends to the predicates it contains; a failing node prunes its entire
// contained subtree.
//
//lint:hotpath
func (ix *selIndex) walkLattice(list []int32, t *event.Tuple, qs *bitset.Bits) {
	for _, ni := range list {
		n := &ix.nodes[ni]
		if n.canon.Match(t) {
			qs.OrInPlace(n.bits)
			if len(n.kids) > 0 {
				ix.walkLattice(n.kids, t, qs)
			}
		}
	}
}

// stab fans the bits of every interval containing v within the subtree
// [l, r] of the midpoint decomposition. The subtree-max prunes regions
// whose every interval ends below v; the Lo sort order prunes right
// subtrees once Lo exceeds v.
//
//lint:hotpath
func (iv *ivIndex) stab(nodes []selNode, l, r int, v int64, qs *bitset.Bits) {
	for l <= r {
		m := int(uint(l+r) >> 1)
		if iv.maxHi[m] < v {
			return
		}
		if m > l {
			iv.stab(nodes, l, m-1, v, qs)
		}
		if iv.lo[m] > v {
			return
		}
		if iv.hi[m] >= v {
			qs.OrInPlace(nodes[iv.node[m]].bits)
		}
		l = m + 1
	}
}
