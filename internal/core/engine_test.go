package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// collectSink gathers results thread-safely.
type collectSink struct {
	mu      sync.Mutex
	results []Result
}

func (c *collectSink) OnResult(r Result) {
	c.mu.Lock()
	c.results = append(c.results, r)
	c.mu.Unlock()
}

func (c *collectSink) all() []Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Result, len(c.results))
	copy(out, c.results)
	return out
}

// harness drives a deterministic engine: batch size 1 (synchronous
// changelog per request), zero lateness, watermark after every tuple.
type harness struct {
	t       *testing.T
	eng     *Engine
	inputs  [][]event.Tuple // per stream, in ingestion order
	curTime event.Time
	sinks   map[int]*collectSink
	ta      map[int]event.Time
	td      map[int]event.Time
	defs    map[int]*Query
}

func newHarness(t *testing.T, streams, parallelism int) *harness {
	t.Helper()
	eng, err := NewEngine(Config{
		Streams:        streams,
		Parallelism:    parallelism,
		BatchSize:      1,
		BatchTimeout:   time.Hour,
		WatermarkEvery: 1,
		NowNanos:       func() int64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		t: t, eng: eng,
		inputs: make([][]event.Tuple, streams),
		sinks:  map[int]*collectSink{},
		ta:     map[int]event.Time{},
		td:     map[int]event.Time{},
		defs:   map[int]*Query{},
	}
}

// ingest pushes one tuple on a stream (times must be non-decreasing per the
// zero-lateness config).
func (h *harness) ingest(stream int, key int64, tm event.Time, fields ...int64) {
	h.t.Helper()
	tu := event.Tuple{Key: key, Time: tm}
	copy(tu.Fields[:], fields)
	if err := h.eng.Ingest(stream, tu); err != nil {
		h.t.Fatal(err)
	}
	h.inputs[stream] = append(h.inputs[stream], tu)
	if tm > h.curTime {
		h.curTime = tm
	}
}

// submit registers a query; with batch size 1 the changelog is released
// synchronously, activating at curTime+1.
func (h *harness) submit(q *Query) int {
	h.t.Helper()
	sink := &collectSink{}
	id, ack, err := h.eng.Submit(q, sink)
	if err != nil {
		h.t.Fatal(err)
	}
	<-ack
	h.sinks[id] = sink
	h.ta[id] = h.curTime + 1
	h.td[id] = event.MaxTime
	qq := *q
	qq.ID = id
	h.defs[id] = &qq
	return id
}

func (h *harness) stop(id int) {
	h.t.Helper()
	ack, err := h.eng.StopQuery(id)
	if err != nil {
		h.t.Fatal(err)
	}
	<-ack
	h.td[id] = h.curTime + 1
}

// finish drains the engine and checks every query's results against the
// reference evaluator.
func (h *harness) finish() {
	h.t.Helper()
	h.eng.Drain()
	if errs := h.eng.SessionErrors(); len(errs) > 0 {
		h.t.Fatalf("session errors: %v", errs)
	}
	for id, q := range h.defs {
		want := canonResults(refResults(h.inputs, q, h.ta[id], h.td[id]))
		got := canonResults(h.sinks[id].all())
		if len(want) != len(got) {
			h.t.Errorf("query %d (%v): %d results, want %d\n got: %v\nwant: %v",
				id, q.Kind, len(got), len(want), clip(got), clip(want))
			continue
		}
		for i := range want {
			if want[i] != got[i] {
				h.t.Errorf("query %d (%v) result %d:\n got %s\nwant %s", id, q.Kind, i, got[i], want[i])
				break
			}
		}
	}
}

func clip(s []string) []string {
	if len(s) > 12 {
		return append(s[:12:12], "…")
	}
	return s
}

func canonResults(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		switch r.Kind {
		case KindSelection:
			out[i] = fmt.Sprintf("sel k=%d t=%v f=%v", r.Tuple.Key, r.Tuple.Time, r.Tuple.Fields)
		case KindJoin:
			out[i] = fmt.Sprintf("join w=%v k=%d l=%v r=%v", r.Window, r.Join.Key, r.Join.Left, r.Join.Right)
		default:
			out[i] = fmt.Sprintf("agg w=%v k=%d v=%d", r.Window, r.Key, r.Value)
		}
	}
	sort.Strings(out)
	return out
}

// refResults evaluates a query naively over the recorded inputs.
func refResults(inputs [][]event.Tuple, q *Query, ta, td event.Time) []Result {
	switch q.Kind {
	case KindSelection:
		return refSelection(inputs[0], q, ta, td)
	case KindAggregation:
		if q.Window.Kind == window.Session {
			return refSessionAgg(inputs[0], q, ta, td)
		}
		return refAgg(matching(inputs[0], q.Predicates[0], ta, td), q, q.Window, td)
	case KindJoin:
		rows, _ := refJoinRows(inputs, q, ta, td)
		return rows
	case KindComplex:
		_, passRows := refJoinRows(inputs, q, ta, td)
		return refAgg(passRows, q, q.AggWindow, td)
	}
	return nil
}

func matching(in []event.Tuple, p expr.Predicate, ta, td event.Time) []event.Tuple {
	var out []event.Tuple
	for i := range in {
		t := in[i]
		if t.Time >= ta && t.Time < td && p.Eval(&t) {
			out = append(out, t)
		}
	}
	return out
}

func refSelection(in []event.Tuple, q *Query, ta, td event.Time) []Result {
	var out []Result
	for _, t := range matching(in, q.Predicates[0], ta, td) {
		out = append(out, Result{QueryID: q.ID, Kind: KindSelection, Tuple: t})
	}
	return out
}

// refJoinRows returns (terminal join Results, pass-through tuples) for join
// and complex queries, chaining stages pairwise exactly as the engine does.
func refJoinRows(inputs [][]event.Tuple, q *Query, ta, td event.Time) ([]Result, []event.Tuple) {
	left := matching(inputs[0], q.Predicates[0], ta, td)
	var results []Result
	for stage := 0; stage < q.Arity-1; stage++ {
		right := matching(inputs[stage+1], q.Predicates[stage+1], ta, td)
		lastStage := stage == q.Arity-2
		var next []event.Tuple
		forEachWindow(q.Window, append(append([]event.Tuple{}, left...), right...), td, func(ext window.Extent) {
			for _, a := range left {
				if !ext.Contains(a.Time) {
					continue
				}
				for _, b := range right {
					if b.Key != a.Key || !ext.Contains(b.Time) {
						continue
					}
					if lastStage && q.Kind == KindJoin {
						jt := event.JoinedTuple{Key: a.Key, Left: a.Fields, Right: b.Fields}
						jt.Time = a.Time
						if b.Time > jt.Time {
							jt.Time = b.Time
						}
						results = append(results, Result{QueryID: q.ID, Kind: KindJoin, Window: ext, Join: jt})
					} else {
						nt := event.Tuple{Key: a.Key, Fields: a.Fields, Time: ext.End - 1}
						next = append(next, nt)
					}
				}
			}
		})
		left = next
	}
	return results, pass2(left, q)
}

func pass2(rows []event.Tuple, q *Query) []event.Tuple {
	if q.Kind != KindComplex {
		return nil
	}
	return rows
}

// forEachWindow enumerates the spec's windows that could contain any of the
// given tuples and end at or before cap.
func forEachWindow(sp window.Spec, tuples []event.Tuple, cap event.Time, fn func(window.Extent)) {
	if len(tuples) == 0 {
		return
	}
	lo, hi := tuples[0].Time, tuples[0].Time
	for _, t := range tuples[1:] {
		if t.Time < lo {
			lo = t.Time
		}
		if t.Time > hi {
			hi = t.Time
		}
	}
	for _, ext := range sp.WindowsEndingIn(lo-1, hi+sp.Length) {
		if ext.End <= cap {
			fn(ext)
		}
	}
}

func refAgg(rows []event.Tuple, q *Query, sp window.Spec, td event.Time) []Result {
	var out []Result
	forEachWindow(sp, rows, td, func(ext window.Extent) {
		acc := map[int64]*aggVal{}
		for i := range rows {
			t := rows[i]
			if !ext.Contains(t.Time) {
				continue
			}
			v := acc[t.Key]
			if v == nil {
				v = newAggVal()
				acc[t.Key] = v
			}
			v.fold(&t)
		}
		for key, v := range acc {
			out = append(out, Result{
				QueryID: q.ID, Kind: q.Kind, Window: ext, Key: key,
				Value: v.finalize(q.Agg, q.AggField),
			})
		}
	})
	return out
}

func refSessionAgg(in []event.Tuple, q *Query, ta, td event.Time) []Result {
	rows := matching(in, q.Predicates[0], ta, td)
	byKey := map[int64]*window.SessionState{}
	for i := range rows {
		t := rows[i]
		ss := byKey[t.Key]
		if ss == nil {
			ss = window.NewSessionState(q.Window.Gap)
			byKey[t.Key] = ss
		}
		v := int64(1)
		if q.Agg != sqlstream.AggCount && q.AggField >= 0 {
			v = t.Fields[q.AggField]
		}
		ss.Add(t.Time, v)
	}
	var out []Result
	for key, ss := range byKey {
		for _, cs := range ss.Harvest(event.MaxTime) {
			if cs.Extent.End > td {
				continue
			}
			val := cs.Sum
			switch q.Agg {
			case sqlstream.AggCount:
				val = cs.Count
			case sqlstream.AggAvg:
				if cs.Count > 0 {
					val = cs.Sum / cs.Count
				}
			}
			out = append(out, Result{QueryID: q.ID, Kind: q.Kind, Window: cs.Extent, Key: key, Value: val})
		}
	}
	return out
}

// --- query builders -------------------------------------------------------

func aggQ(spec window.Spec, fn sqlstream.AggFunc, field int, pred expr.Predicate) *Query {
	return &Query{
		Kind: KindAggregation, Arity: 1,
		Predicates: []expr.Predicate{pred},
		Window:     spec, Agg: fn, AggField: field,
	}
}

func joinQ(spec window.Spec, preds ...expr.Predicate) *Query {
	return &Query{
		Kind: KindJoin, Arity: len(preds),
		Predicates: preds, Window: spec, AggField: -1,
	}
}

func selQ(pred expr.Predicate) *Query {
	return &Query{Kind: KindSelection, Arity: 1, Predicates: []expr.Predicate{pred}, AggField: -1}
}

func complexQ(joinSpec, aggSpec window.Spec, fn sqlstream.AggFunc, field int, preds ...expr.Predicate) *Query {
	return &Query{
		Kind: KindComplex, Arity: len(preds),
		Predicates: preds, Window: joinSpec, AggWindow: aggSpec,
		Agg: fn, AggField: field,
	}
}

func gt(field int, v int64) expr.Predicate {
	return expr.True().And(expr.Comparison{Field: field, Op: expr.GT, Value: v})
}

// --- tests ----------------------------------------------------------------

func TestEngineSingleTumblingSum(t *testing.T) {
	h := newHarness(t, 1, 1)
	h.submit(aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, expr.True()))
	for i := 1; i <= 45; i++ {
		h.ingest(0, int64(i%3), event.Time(i), int64(i))
	}
	h.finish()
}

func TestEngineSlidingAvgWithPredicate(t *testing.T) {
	h := newHarness(t, 1, 2)
	h.submit(aggQ(window.SlidingSpec(12, 4), sqlstream.AggAvg, 1, gt(0, 50)))
	rng := rand.New(rand.NewSource(3))
	for i := 1; i <= 80; i++ {
		h.ingest(0, int64(rng.Intn(5)), event.Time(i), int64(rng.Intn(100)), int64(rng.Intn(20)))
	}
	h.finish()
}

func TestEngineCountMinMax(t *testing.T) {
	h := newHarness(t, 1, 1)
	h.submit(aggQ(window.TumblingSpec(8), sqlstream.AggCount, -1, expr.True()))
	h.submit(aggQ(window.TumblingSpec(8), sqlstream.AggMin, 2, expr.True()))
	h.submit(aggQ(window.TumblingSpec(8), sqlstream.AggMax, 2, expr.True()))
	rng := rand.New(rand.NewSource(4))
	for i := 1; i <= 50; i++ {
		h.ingest(0, int64(rng.Intn(4)), event.Time(i), 0, 0, int64(rng.Intn(1000)-500))
	}
	h.finish()
}

func TestEngineSelectionQuery(t *testing.T) {
	h := newHarness(t, 1, 2)
	h.submit(selQ(gt(0, 10)))
	for i := 1; i <= 30; i++ {
		h.ingest(0, int64(i), event.Time(i), int64(i%20))
	}
	h.finish()
}

func TestEngineBinaryJoin(t *testing.T) {
	h := newHarness(t, 2, 1)
	h.submit(joinQ(window.TumblingSpec(10), gt(0, 20), gt(1, 30)))
	rng := rand.New(rand.NewSource(5))
	for i := 1; i <= 60; i++ {
		h.ingest(0, int64(rng.Intn(4)), event.Time(i), int64(rng.Intn(100)))
		h.ingest(1, int64(rng.Intn(4)), event.Time(i), 0, int64(rng.Intn(100)))
	}
	h.finish()
}

func TestEngineSlidingJoin(t *testing.T) {
	h := newHarness(t, 2, 2)
	h.submit(joinQ(window.SlidingSpec(10, 5), expr.True(), expr.True()))
	rng := rand.New(rand.NewSource(6))
	for i := 1; i <= 40; i++ {
		h.ingest(0, int64(rng.Intn(3)), event.Time(i))
		h.ingest(1, int64(rng.Intn(3)), event.Time(i))
	}
	h.finish()
}

func TestEngineSessionAggregation(t *testing.T) {
	h := newHarness(t, 1, 1)
	h.submit(aggQ(window.SessionSpec(5), sqlstream.AggSum, 0, expr.True()))
	times := []event.Time{1, 2, 3, 10, 11, 30, 31, 32, 50}
	for _, tm := range times {
		h.ingest(0, tm.Millis()%2, tm, 7)
	}
	h.finish()
}

func TestEngineAdHocCreateDelete(t *testing.T) {
	h := newHarness(t, 1, 1)
	q1 := h.submit(aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, expr.True()))
	for i := 1; i <= 25; i++ {
		h.ingest(0, int64(i%2), event.Time(i), 1)
	}
	// q2 created mid-stream: sees only tuples from t=26 on.
	h.submit(aggQ(window.TumblingSpec(10), sqlstream.AggCount, -1, expr.True()))
	for i := 26; i <= 55; i++ {
		h.ingest(0, int64(i%2), event.Time(i), 1)
	}
	// q1 deleted: windows ending after t=56 never fire for it.
	h.stop(q1)
	for i := 56; i <= 80; i++ {
		h.ingest(0, int64(i%2), event.Time(i), 1)
	}
	h.finish()
}

// TestEngineSlotReuseNoLeakage is the changelog-set correctness test: q1 is
// deleted, q3 takes its slot, and neither inherits the other's data.
func TestEngineSlotReuseNoLeakage(t *testing.T) {
	h := newHarness(t, 1, 1)
	q1 := h.submit(aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, expr.True()))
	h.submit(aggQ(window.TumblingSpec(20), sqlstream.AggSum, 0, expr.True()))
	for i := 1; i <= 30; i++ {
		h.ingest(0, 1, event.Time(i), 100)
	}
	h.stop(q1)
	// q3 reuses q1's slot (slot-reuse registry) but must see only t ≥ 32.
	h.submit(aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, expr.True()))
	for i := 32; i <= 60; i++ {
		h.ingest(0, 1, event.Time(i), 1)
	}
	h.finish()
}

func TestEngineJoinAdhocChurn(t *testing.T) {
	h := newHarness(t, 2, 2)
	q1 := h.submit(joinQ(window.TumblingSpec(8), expr.True(), expr.True()))
	rng := rand.New(rand.NewSource(7))
	step := func(from, to int) {
		for i := from; i <= to; i++ {
			h.ingest(0, int64(rng.Intn(3)), event.Time(i))
			h.ingest(1, int64(rng.Intn(3)), event.Time(i))
		}
	}
	step(1, 20)
	q2 := h.submit(joinQ(window.SlidingSpec(8, 4), gt(0, -1), expr.True()))
	step(21, 40)
	h.stop(q1)
	step(41, 60)
	h.stop(q2)
	step(61, 70)
	h.finish()
}

func TestEngineComplexQuery(t *testing.T) {
	h := newHarness(t, 2, 1)
	h.submit(complexQ(window.TumblingSpec(10), window.TumblingSpec(10),
		sqlstream.AggSum, 0, expr.True(), expr.True()))
	rng := rand.New(rand.NewSource(8))
	for i := 1; i <= 50; i++ {
		h.ingest(0, int64(rng.Intn(3)), event.Time(i), int64(rng.Intn(10)))
		h.ingest(1, int64(rng.Intn(3)), event.Time(i))
	}
	h.finish()
}

func TestEngineTernaryJoin(t *testing.T) {
	h := newHarness(t, 3, 1)
	h.submit(joinQ(window.TumblingSpec(10), expr.True(), expr.True(), expr.True()))
	rng := rand.New(rand.NewSource(9))
	for i := 1; i <= 40; i++ {
		h.ingest(0, int64(rng.Intn(2)), event.Time(i))
		h.ingest(1, int64(rng.Intn(2)), event.Time(i))
		h.ingest(2, int64(rng.Intn(2)), event.Time(i))
	}
	h.finish()
}

func TestEngineMixedWorkloadRandomChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized churn test")
	}
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h := newHarness(t, 2, 2)
			var live []int
			now := 1
			for phase := 0; phase < 12; phase++ {
				// Random query churn.
				if rng.Intn(2) == 0 || len(live) == 0 {
					var q *Query
					switch rng.Intn(3) {
					case 0:
						q = aggQ(window.TumblingSpec(event.Time(4+rng.Intn(12))),
							sqlstream.AggSum, rng.Intn(5), gt(rng.Intn(5), int64(rng.Intn(60))))
					case 1:
						l := 4 + rng.Intn(10)
						s := 1 + rng.Intn(l)
						q = aggQ(window.SlidingSpec(event.Time(l), event.Time(s)),
							sqlstream.AggCount, -1, gt(rng.Intn(5), int64(rng.Intn(60))))
					default:
						q = joinQ(window.TumblingSpec(event.Time(4+rng.Intn(8))),
							gt(0, int64(rng.Intn(50))), gt(1, int64(rng.Intn(50))))
					}
					live = append(live, h.submit(q))
				} else {
					k := rng.Intn(len(live))
					h.stop(live[k])
					live = append(live[:k], live[k+1:]...)
				}
				// A burst of data.
				for i := 0; i < 15; i++ {
					now++
					h.ingest(0, int64(rng.Intn(4)), event.Time(now), int64(rng.Intn(100)), int64(rng.Intn(100)))
					h.ingest(1, int64(rng.Intn(4)), event.Time(now), int64(rng.Intn(100)), int64(rng.Intn(100)))
				}
			}
			h.finish()
		})
	}
}

func TestEngineParallelismInvariance(t *testing.T) {
	// The same workload must produce identical results at parallelism 1
	// and 4 (sharing is partition-local; results are global).
	run := func(par int) []string {
		h := newHarness(t, 2, par)
		h.submit(joinQ(window.TumblingSpec(10), gt(0, 30), expr.True()))
		h.submit(aggQ(window.SlidingSpec(8, 4), sqlstream.AggSum, 0, gt(1, 40)))
		rng := rand.New(rand.NewSource(11))
		for i := 1; i <= 60; i++ {
			h.ingest(0, int64(rng.Intn(8)), event.Time(i), int64(rng.Intn(100)), int64(rng.Intn(100)))
			h.ingest(1, int64(rng.Intn(8)), event.Time(i), int64(rng.Intn(100)), int64(rng.Intn(100)))
		}
		h.eng.Drain()
		var all []Result
		for _, s := range h.sinks {
			all = append(all, s.all()...)
		}
		return canonResults(all)
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatalf("parallelism changed result count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallelism changed results at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestEngineTopologyChains(t *testing.T) {
	// Single stream, parallelism 1: the whole pipeline is one fused chain —
	// no exchanges, no per-operator goroutines beyond the source driver.
	h := newHarness(t, 1, 1)
	chains := h.eng.Chains()
	if len(chains) != 1 {
		t.Fatalf("S=1 P=1 chains = %v, want one chain", chains)
	}
	want := []string{"src-0", "select-0", "aggregate"}
	if len(chains[0]) != len(want) {
		t.Fatalf("chain = %v, want %v", chains[0], want)
	}
	for i, name := range want {
		if chains[0][i] != name {
			t.Fatalf("chain = %v, want %v", chains[0], want)
		}
	}
	dot := h.eng.TopologyDot()
	if !strings.Contains(dot, "cluster_chain_0") || !strings.Contains(dot, "chained") {
		t.Fatalf("TopologyDot missing chain rendering:\n%s", dot)
	}
	// The fused engine must still compute correct results.
	h.submit(aggQ(window.TumblingSpec(10), sqlstream.AggSum, 0, expr.True()))
	for i := 1; i <= 25; i++ {
		h.ingest(0, int64(i%4), event.Time(i), int64(i))
	}
	h.finish()

	// Parallelism > 1 keeps the src→select shuffle (it parallelizes
	// predicate work) but still fuses select→aggregate when S == 1.
	h2 := newHarness(t, 1, 4)
	chains2 := h2.eng.Chains()
	if len(chains2) != 1 || len(chains2[0]) != 2 ||
		chains2[0][0] != "select-0" || chains2[0][1] != "aggregate" {
		t.Fatalf("S=1 P=4 chains = %v, want [[select-0 aggregate]]", chains2)
	}
	h2.eng.Drain()

	// Multi-stream engines shuffle into joins on key: nothing fuses.
	h3 := newHarness(t, 2, 2)
	if chains3 := h3.eng.Chains(); len(chains3) != 0 {
		t.Fatalf("S=2 chains = %v, want none", chains3)
	}
	h3.eng.Drain()
}

func TestEngineValidationErrors(t *testing.T) {
	h := newHarness(t, 2, 1)
	defer h.eng.Drain()
	bad := []*Query{
		{Kind: KindJoin, Arity: 1, Predicates: []expr.Predicate{expr.True()}, Window: window.TumblingSpec(5)},
		{Kind: KindAggregation, Arity: 1, Predicates: []expr.Predicate{expr.True()}, Window: window.TumblingSpec(5)},
		{Kind: KindJoin, Arity: 3, Predicates: []expr.Predicate{expr.True(), expr.True(), expr.True()}, Window: window.TumblingSpec(5)},
		{Kind: KindComplex, Arity: 2, Predicates: []expr.Predicate{expr.True(), expr.True()},
			Window: window.SlidingSpec(10, 5), AggWindow: window.TumblingSpec(5), Agg: sqlstream.AggSum},
	}
	for i, q := range bad {
		if _, _, err := h.eng.Submit(q, nil); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
	if _, err := h.eng.StopQuery(999); err == nil {
		t.Error("stopping unknown query must fail")
	}
	if err := h.eng.Ingest(9, event.Tuple{}); err == nil {
		t.Error("ingest on unknown stream must fail")
	}
}

func TestEngineSubmitSQL(t *testing.T) {
	h := newHarness(t, 2, 1)
	sink := &collectSink{}
	id, ack, err := h.eng.SubmitSQL(
		`SELECT * FROM A, B [RANGE 10] WHERE A.KEY = B.KEY AND A.F0 > 5`, sink)
	if err != nil {
		t.Fatal(err)
	}
	<-ack
	h.sinks[id] = sink
	h.ta[id] = h.curTime + 1
	h.td[id] = event.MaxTime
	h.defs[id] = joinQ(window.TumblingSpec(10), gt(0, 5), expr.True())
	h.defs[id].ID = id
	for i := 1; i <= 30; i++ {
		h.ingest(0, int64(i%3), event.Time(i), int64(i%10))
		h.ingest(1, int64(i%3), event.Time(i))
	}
	h.finish()

	if _, _, err := h.eng.SubmitSQL(`SELECT garbage`, nil); err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestEngineTernaryComplex(t *testing.T) {
	h := newHarness(t, 3, 2)
	h.submit(complexQ(window.TumblingSpec(8), window.TumblingSpec(16),
		sqlstream.AggSum, 1, expr.True(), gt(0, 30), expr.True()))
	rng := rand.New(rand.NewSource(15))
	for i := 1; i <= 60; i++ {
		for s := 0; s < 3; s++ {
			h.ingest(0+s, int64(rng.Intn(2)), event.Time(i), int64(rng.Intn(100)), int64(rng.Intn(10)))
		}
	}
	h.finish()
}

func TestEngineSessionChurn(t *testing.T) {
	h := newHarness(t, 1, 2)
	q1 := h.submit(aggQ(window.SessionSpec(4), sqlstream.AggSum, 0, expr.True()))
	emitBurst := func(from, n int) {
		for i := 0; i < n; i++ {
			h.ingest(0, int64(i%2), event.Time(from+i*2), 3)
		}
	}
	emitBurst(1, 10)
	h.ingest(0, 0, 40, 1) // gap closes earlier sessions
	h.submit(aggQ(window.SessionSpec(6), sqlstream.AggCount, -1, expr.True()))
	emitBurst(50, 8)
	h.stop(q1)
	emitBurst(80, 8)
	h.finish()
}

func TestEngineManyQueriesWideBitsets(t *testing.T) {
	// 80 concurrent queries force multi-word query-sets through the whole
	// pipeline (slot indexes past 64).
	h := newHarness(t, 1, 2)
	for i := 0; i < 80; i++ {
		h.submit(aggQ(window.TumblingSpec(10), sqlstream.AggCount, -1, gt(i%5, int64(10*(i%8)))))
	}
	for i := 1; i <= 60; i++ {
		h.ingest(0, int64(i%4), event.Time(i), int64(i%100), int64(i%80), int64(i%60), int64(i%40), int64(i%20))
	}
	h.finish()
}
