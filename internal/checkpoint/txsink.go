package checkpoint

import (
	"fmt"
	"sort"
	"sync"

	"astream/internal/core"
)

// TxSink is a transactional result sink: results accumulate in the epoch
// that is open when they arrive, and an epoch's results become visible only
// when the epoch commits (its checkpoint completed). After a crash, replay
// regenerates the uncommitted epochs; committed epochs are kept from the
// previous incarnation, so every result is exposed exactly once.
//
// Results within an epoch are canonicalized (sorted) before commit: the
// engine's cross-instance delivery order is nondeterministic even though the
// result multiset is deterministic.
type TxSink struct {
	mu        sync.Mutex
	epoch     uint64
	pending   map[uint64][]string
	committed map[uint64][]string
	order     []uint64 // committed epochs in commit order
}

// NewTxSink creates a sink starting at epoch 0.
func NewTxSink() *TxSink {
	return &TxSink{
		pending:   map[uint64][]string{},
		committed: map[uint64][]string{},
	}
}

// Canon renders a result into its canonical string form.
func Canon(r core.Result) string {
	switch r.Kind {
	case core.KindSelection:
		return fmt.Sprintf("q%d sel k=%d t=%v f=%v", r.QueryID, r.Tuple.Key, r.Tuple.Time, r.Tuple.Fields)
	case core.KindJoin:
		return fmt.Sprintf("q%d join w=%v k=%d l=%v r=%v", r.QueryID, r.Window, r.Join.Key, r.Join.Left, r.Join.Right)
	default:
		return fmt.Sprintf("q%d agg w=%v k=%d v=%d", r.QueryID, r.Window, r.Key, r.Value)
	}
}

// OnResult implements core.Sink.
func (s *TxSink) OnResult(r core.Result) {
	c := Canon(r)
	s.mu.Lock()
	s.pending[s.epoch] = append(s.pending[s.epoch], c)
	s.mu.Unlock()
}

// BeginEpoch opens a new epoch; subsequent results accumulate there. Called
// by the coordinator immediately after injecting barrier `id`, so results
// produced after the barrier land in epoch id.
func (s *TxSink) BeginEpoch(id uint64) {
	s.mu.Lock()
	s.epoch = id
	s.mu.Unlock()
}

// Commit finalizes every pending epoch strictly below `upTo` plus `upTo`
// itself (checkpoint upTo completed: all results produced before its barrier
// are durable).
func (s *TxSink) Commit(upTo uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []uint64
	for e := range s.pending {
		if e <= upTo {
			keys = append(keys, e)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, e := range keys {
		rs := s.pending[e]
		sort.Strings(rs)
		s.committed[e] = rs
		s.order = append(s.order, e)
		delete(s.pending, e)
	}
}

// SeedCommitted pre-loads committed epochs from a previous incarnation
// (recovery): replayed results for those epochs are discarded.
func (s *TxSink) SeedCommitted(prev map[uint64][]string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []uint64
	for e, rs := range prev {
		cp := make([]string, len(rs))
		copy(cp, rs)
		s.committed[e] = cp
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s.order = append(s.order, keys...)
}

// CommitReplayed finalizes a replayed epoch: if the epoch was already
// committed before the crash, the replayed copy is discarded (dedup);
// otherwise it commits normally.
func (s *TxSink) CommitReplayed(upTo uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []uint64
	for e := range s.pending {
		if e <= upTo {
			keys = append(keys, e)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, e := range keys {
		rs := s.pending[e]
		delete(s.pending, e)
		if _, done := s.committed[e]; done {
			continue // exactly-once: drop the duplicate epoch
		}
		sort.Strings(rs)
		s.committed[e] = rs
		s.order = append(s.order, e)
	}
}

// Committed returns all committed results in epoch order.
func (s *TxSink) Committed() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, e := range s.order {
		out = append(out, s.committed[e]...)
	}
	return out
}

// CommittedEpochs returns a copy of the committed epoch map.
func (s *TxSink) CommittedEpochs() map[uint64][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64][]string, len(s.committed))
	for e, rs := range s.committed {
		cp := make([]string, len(rs))
		copy(cp, rs)
		out[e] = cp
	}
	return out
}

// PendingCount reports buffered, uncommitted results (lost on crash, by
// design — replay regenerates them).
func (s *TxSink) PendingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, rs := range s.pending {
		n += len(rs)
	}
	return n
}
