package checkpoint

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

func testQuery(kind core.Kind) *core.Query {
	switch kind {
	case core.KindJoin:
		return &core.Query{Kind: core.KindJoin, Arity: 2,
			Predicates: []expr.Predicate{expr.True(), expr.True()},
			Window:     window.TumblingSpec(8), AggField: -1}
	default:
		return &core.Query{Kind: core.KindAggregation, Arity: 1,
			Predicates: []expr.Predicate{expr.True().And(expr.Comparison{Field: 0, Op: expr.GT, Value: 20})},
			Window:     window.TumblingSpec(10), Agg: sqlstream.AggSum, AggField: 1}
	}
}

func TestQueryCodecRoundTrip(t *testing.T) {
	queries := []*core.Query{
		testQuery(core.KindAggregation),
		testQuery(core.KindJoin),
		{Kind: core.KindComplex, Arity: 3,
			Predicates: []expr.Predicate{expr.True(), expr.True().And(expr.Comparison{Field: 4, Op: expr.LE, Value: -3}), expr.True()},
			Window:     window.TumblingSpec(6), AggWindow: window.TumblingSpec(12),
			Agg: sqlstream.AggCount, AggField: -1},
		{Kind: core.KindSelection, Arity: 1,
			Predicates: []expr.Predicate{expr.True().And(expr.Comparison{Field: expr.KeyField, Op: expr.EQ, Value: 5})},
			AggField:   -1},
		{Kind: core.KindAggregation, Arity: 1,
			Predicates: []expr.Predicate{expr.True()},
			Window:     window.SessionSpec(7), Agg: sqlstream.AggAvg, AggField: 2},
	}
	for i, q := range queries {
		got, err := UnmarshalQuery(MarshalQuery(q))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !reflect.DeepEqual(q, got) {
			t.Fatalf("query %d round trip mismatch:\n%+v\n%+v", i, q, got)
		}
	}
	if _, err := UnmarshalQuery([]byte{1, 2}); err == nil {
		t.Fatal("truncated query must fail")
	}
}

func TestLogMarshalRoundTrip(t *testing.T) {
	l := &Log{}
	l.Append(Record{Kind: RecSubmit, Query: testQuery(core.KindAggregation)})
	tu := event.Tuple{Key: 3, Time: 17, Fields: [event.NumFields]int64{1, 2, 3, 4, 5}, IngestNanos: 99}
	l.Append(Record{Kind: RecTuple, Stream: 1, Tuple: tu})
	l.Append(Record{Kind: RecStop, Ordinal: 1})

	got, err := UnmarshalLog(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d", got.Len())
	}
	recs := got.Slice(0, 3)
	if recs[0].Kind != RecSubmit || !reflect.DeepEqual(recs[0].Query, testQuery(core.KindAggregation)) {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Kind != RecTuple || recs[1].Stream != 1 || recs[1].Tuple.Key != 3 ||
		recs[1].Tuple.Fields != tu.Fields || recs[1].Tuple.IngestNanos != 99 {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[2].Kind != RecStop || recs[2].Ordinal != 1 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	if _, err := UnmarshalLog(nil); err == nil {
		t.Fatal("nil log must fail")
	}
	if _, err := UnmarshalLog(l.Marshal()[:9]); err == nil {
		t.Fatal("truncated log must fail")
	}
}

func TestTxSinkEpochs(t *testing.T) {
	s := NewTxSink()
	r := core.Result{QueryID: 1, Kind: core.KindAggregation, Key: 9, Value: 5}
	s.OnResult(r)
	if len(s.Committed()) != 0 {
		t.Fatal("nothing should be committed yet")
	}
	if s.PendingCount() != 1 {
		t.Fatal("one pending result expected")
	}
	s.Commit(0)
	if got := s.Committed(); len(got) != 1 {
		t.Fatalf("committed = %v", got)
	}
	// Replayed duplicate epoch is dropped.
	s2 := NewTxSink()
	s2.SeedCommitted(s.CommittedEpochs())
	s2.OnResult(r) // replayed copy of epoch 0
	s2.CommitReplayed(0)
	if got := s2.Committed(); len(got) != 1 {
		t.Fatalf("replayed duplicate not deduped: %v", got)
	}
	// A new epoch after recovery commits normally.
	s2.BeginEpoch(1)
	s2.OnResult(core.Result{QueryID: 1, Kind: core.KindAggregation, Key: 9, Value: 7})
	s2.CommitReplayed(1)
	if got := s2.Committed(); len(got) != 2 {
		t.Fatalf("post-recovery epoch missing: %v", got)
	}
}

// runCleanWorkload drives a workload with checkpoints and no crash,
// returning the exactly-once output.
func driveWorkload(t *testing.T, r *Runner, crashAfterCheckpoint int) (committed map[uint64][]string, manifest Manifest, crashed bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	if err := r.Submit(testQuery(core.KindAggregation)); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(testQuery(core.KindJoin)); err != nil {
		t.Fatal(err)
	}
	now := event.Time(0)
	ckpts := 0
	for phase := 0; phase < 6; phase++ {
		for i := 0; i < 25; i++ {
			now++
			for s := 0; s < 2; s++ {
				tu := event.Tuple{Key: int64(rng.Intn(3)), Time: now}
				for f := range tu.Fields {
					tu.Fields[f] = int64(rng.Intn(100))
				}
				if err := r.Ingest(s, tu); err != nil {
					t.Fatal(err)
				}
			}
		}
		if phase == 2 {
			if err := r.StopOrdinal(1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		ckpts++
		if crashAfterCheckpoint > 0 && ckpts == crashAfterCheckpoint {
			return r.Crash(), r.Manifest(), true
		}
	}
	return nil, r.Manifest(), false
}

func newTestRunner(t *testing.T, log *Log) *Runner {
	t.Helper()
	r, err := NewRunner(core.Config{
		Streams: 2, Parallelism: 2, WatermarkEvery: 1,
		NowNanos: func() int64 { return 1 },
	}, log, NewTxSink())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExactlyOnceUnderCrash(t *testing.T) {
	// Reference: clean run, no crash.
	cleanLog := &Log{}
	clean := newTestRunner(t, cleanLog)
	driveWorkload(t, clean, 0)
	want := clean.Finish()
	if len(want) == 0 {
		t.Fatal("clean run produced nothing")
	}

	for crashAt := 1; crashAt <= 4; crashAt++ {
		crashAt := crashAt
		t.Run(fmt.Sprintf("crashAfterCkpt%d", crashAt), func(t *testing.T) {
			log := &Log{}
			r := newTestRunner(t, log)
			committed, manifest, crashed := driveWorkload(t, r, crashAt)
			if !crashed {
				t.Fatal("expected crash")
			}
			// The crash loses uncommitted epochs but keeps the log; the
			// log must equal the clean run's prefix... in fact the whole
			// workload was logged before the crash point only partially.
			rec, err := Recover(core.Config{
				Streams: 2, Parallelism: 2, WatermarkEvery: 1,
				NowNanos: func() int64 { return 1 },
			}, log, manifest, committed)
			if err != nil {
				t.Fatal(err)
			}
			got := rec.FinishReplay()
			// The recovered output must equal the clean run restricted to
			// the logged prefix — regenerate that reference by replaying
			// the crash log on a fresh engine without any checkpoints.
			ref, err := Recover(core.Config{
				Streams: 2, Parallelism: 2, WatermarkEvery: 1,
				NowNanos: func() int64 { return 1 },
			}, log, Manifest{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantPrefix := ref.FinishReplay()
			sort.Strings(got)
			sort.Strings(wantPrefix)
			if len(got) != len(wantPrefix) {
				t.Fatalf("exactly-once violated: %d results, want %d", len(got), len(wantPrefix))
			}
			for i := range got {
				if got[i] != wantPrefix[i] {
					t.Fatalf("result %d: %q vs %q", i, got[i], wantPrefix[i])
				}
			}
		})
	}
	_ = want
}

func TestCleanRunMatchesReplayedRun(t *testing.T) {
	// Determinism: a full clean run equals a full replay of its log.
	log := &Log{}
	r := newTestRunner(t, log)
	_, manifest, _ := driveWorkload(t, r, 0)
	want := r.Finish()

	rec, err := Recover(core.Config{
		Streams: 2, Parallelism: 2, WatermarkEvery: 1,
		NowNanos: func() int64 { return 1 },
	}, log, manifest, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := rec.FinishReplay()
	sort.Strings(want)
	sort.Strings(got)
	if len(want) != len(got) {
		t.Fatalf("replay diverged: %d vs %d results", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("replay diverged at %d: %q vs %q", i, got[i], want[i])
		}
	}
	// The log itself survives serialization.
	l2, err := UnmarshalLog(log.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != log.Len() {
		t.Fatalf("serialized log lost records: %d vs %d", l2.Len(), log.Len())
	}
}

func TestCheckpointEpochBoundaries(t *testing.T) {
	log := &Log{}
	r := newTestRunner(t, log)
	if err := r.Submit(testQuery(core.KindAggregation)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		tu := event.Tuple{Key: 1, Time: event.Time(i), Fields: [event.NumFields]int64{50, 1, 0, 0, 0}}
		if err := r.Ingest(0, tu); err != nil {
			t.Fatal(err)
		}
		if err := r.Ingest(1, event.Tuple{Key: 1, Time: event.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	id, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first barrier id = %d", id)
	}
	// Windows [0,10) and [10,20) closed before the checkpoint (watermark
	// 30): their results are committed in epoch 0.
	got := r.sink.Committed()
	if len(got) < 2 {
		t.Fatalf("epoch 0 committed %d results, want ≥ 2: %v", len(got), got)
	}
	man := r.Manifest()
	if len(man.Offsets) != 1 || man.Offsets[0] != log.Len() {
		t.Fatalf("manifest = %+v, log len %d", man, log.Len())
	}
	r.Finish()
}
