package checkpoint

import (
	"fmt"
	"sync"
	"time"

	"astream/internal/core"
	"astream/internal/event"
)

// Manifest records where checkpoints cut the log: Offsets[i] is the number
// of log records covered by checkpoint i+1 (barrier IDs start at 1). A
// recovered runner re-cuts the log at the same offsets, which makes epoch
// contents deterministic across incarnations.
type Manifest struct {
	Offsets []int
}

// snapCollector counts per-barrier snapshot callbacks to detect completion.
type snapCollector struct {
	mu    sync.Mutex
	seen  map[uint64]int
	total int
	cond  *sync.Cond
}

func newSnapCollector() *snapCollector {
	c := &snapCollector{seen: map[uint64]int{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// OnSnapshot implements spe.SnapshotSink.
func (c *snapCollector) OnSnapshot(op string, instance int, barrier uint64, state []byte) {
	c.mu.Lock()
	c.seen[barrier]++
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *snapCollector) await(barrier uint64, total int) {
	c.mu.Lock()
	for c.seen[barrier] < total {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// Runner drives a core.Engine while logging every input, cutting
// checkpoints, and committing result epochs transactionally. All methods
// must be called from one goroutine (the ingestion loop), which is what
// makes checkpoint positions quiescent points: no input enters the engine
// between barrier injection and completion, so an epoch's results are
// exactly the results of its log range.
type Runner struct {
	cfg      core.Config
	eng      *core.Engine
	log      *Log
	sink     *TxSink
	snaps    *snapCollector
	manifest Manifest
	ordinals []int // created query IDs, by submit order
	barrier  uint64
	crashed  bool
}

// NewRunner builds an engine wired for checkpointing.
func NewRunner(cfg core.Config, log *Log, sink *TxSink) (*Runner, error) {
	snaps := newSnapCollector()
	cfg.SnapshotSink = snaps
	// Deterministic session behaviour: one changelog per request, no timer.
	cfg.BatchSize = 1
	cfg.BatchTimeout = time.Hour
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, eng: eng, log: log, sink: sink, snaps: snaps}, nil
}

// Engine exposes the underlying engine (metrics, etc.).
func (r *Runner) Engine() *core.Engine { return r.eng }

// Manifest returns the checkpoint manifest so far.
func (r *Runner) Manifest() Manifest {
	m := Manifest{Offsets: make([]int, len(r.manifest.Offsets))}
	copy(m.Offsets, r.manifest.Offsets)
	return m
}

// Submit logs and submits a query creation.
func (r *Runner) Submit(q *core.Query) error {
	r.log.Append(Record{Kind: RecSubmit, Query: q})
	return r.applySubmit(q)
}

func (r *Runner) applySubmit(q *core.Query) error {
	id, ack, err := r.eng.Submit(q, r.sink)
	if err != nil {
		return err
	}
	<-ack
	r.ordinals = append(r.ordinals, id)
	return nil
}

// StopOrdinal logs and applies a stop of the n-th created query (1-based).
func (r *Runner) StopOrdinal(ord int) error {
	r.log.Append(Record{Kind: RecStop, Ordinal: ord})
	return r.applyStop(ord)
}

func (r *Runner) applyStop(ord int) error {
	if ord < 1 || ord > len(r.ordinals) {
		return fmt.Errorf("checkpoint: no query ordinal %d", ord)
	}
	ack, err := r.eng.StopQuery(r.ordinals[ord-1])
	if err != nil {
		return err
	}
	<-ack
	return nil
}

// Ingest logs and pushes one tuple.
func (r *Runner) Ingest(stream int, t event.Tuple) error {
	r.log.Append(Record{Kind: RecTuple, Stream: stream, Tuple: t})
	return r.eng.Ingest(stream, t)
}

// Checkpoint cuts a checkpoint: injects an aligned barrier, waits until
// every operator instance has passed it (at which point every result of the
// current epoch has been delivered), then commits the epoch and opens the
// next one.
func (r *Runner) Checkpoint() uint64 {
	r.barrier++
	id := r.barrier
	r.eng.Checkpoint(id)
	r.snaps.await(id, r.eng.InstanceCount())
	r.sink.Commit(id - 1)
	r.sink.BeginEpoch(id)
	r.manifest.Offsets = append(r.manifest.Offsets, r.log.Len())
	return id
}

// Crash abandons the engine, simulating a process failure: buffered,
// uncommitted results are lost; the log and the committed epochs survive.
func (r *Runner) Crash() map[uint64][]string {
	r.crashed = true
	// Drain in the background so goroutines exit; results it produces go
	// to pending epochs that will never commit — exactly what a crash
	// loses.
	go r.eng.Drain()
	return r.sink.CommittedEpochs()
}

// Finish drains the engine and commits the final epoch.
func (r *Runner) Finish() []string {
	if r.crashed {
		return nil
	}
	r.eng.Drain()
	r.sink.Commit(^uint64(0))
	return r.sink.Committed()
}

// Recover rebuilds an engine from the log and replays it. Epochs already
// committed by the crashed incarnation are deduplicated; the rest commit as
// replay crosses the manifest's checkpoint positions.
func Recover(cfg core.Config, log *Log, manifest Manifest, committed map[uint64][]string) (*Runner, error) {
	sink := NewTxSink()
	sink.SeedCommitted(committed)
	r, err := NewRunner(cfg, log, sink)
	if err != nil {
		return nil, err
	}
	// Replay without re-logging.
	recs := log.Slice(0, log.Len())
	next := 0 // next manifest offset index
	for i, rec := range recs {
		for next < len(manifest.Offsets) && manifest.Offsets[next] == i {
			r.replayCheckpoint()
			next++
		}
		switch rec.Kind {
		case RecSubmit:
			if err := r.applySubmit(rec.Query); err != nil {
				return nil, err
			}
		case RecStop:
			if err := r.applyStop(rec.Ordinal); err != nil {
				return nil, err
			}
		case RecTuple:
			if err := r.eng.Ingest(rec.Stream, rec.Tuple); err != nil {
				return nil, err
			}
		}
	}
	for next < len(manifest.Offsets) && manifest.Offsets[next] == len(recs) {
		r.replayCheckpoint()
		next++
	}
	return r, nil
}

// replayCheckpoint re-cuts a checkpoint during replay, deduplicating epochs
// the previous incarnation already committed.
func (r *Runner) replayCheckpoint() {
	r.barrier++
	id := r.barrier
	r.eng.Checkpoint(id)
	r.snaps.await(id, r.eng.InstanceCount())
	r.sink.CommitReplayed(id - 1)
	r.sink.BeginEpoch(id)
}

// FinishReplay drains and commits everything after recovery.
func (r *Runner) FinishReplay() []string {
	r.eng.Drain()
	r.sink.CommitReplayed(^uint64(0))
	return r.sink.Committed()
}
