package checkpoint

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/spe"
)

// Manifest records where checkpoints cut the log: Offsets[i] is the number
// of log records covered by checkpoint i+1 (barrier IDs start at 1). A
// recovered runner re-cuts the log at the same offsets, which makes epoch
// contents deterministic across incarnations.
type Manifest struct {
	Offsets []int
}

// Runner drives a core.Engine while logging every input, cutting
// checkpoints, and committing result epochs transactionally. All methods
// must be called from one goroutine (the ingestion loop), which is what
// makes checkpoint positions quiescent points: no input enters the engine
// between barrier injection and completion, so an epoch's results are
// exactly the results of its log range.
// InputLog is the input-log contract the runner writes and replays. The
// in-memory Log is the default; internal/durable provides a segmented
// on-disk write-ahead log. Offsets are absolute across the log's lifetime:
// a durable log that truncates old segments still addresses surviving
// records by their original offsets.
type InputLog interface {
	// Append adds a record and returns its absolute offset. A durable log
	// returns an error when the write-through fails (the record must not be
	// applied to the engine in that case).
	Append(r Record) (int, error)
	// Len returns the absolute offset one past the last record.
	Len() int
	// Slice returns records [from, to). Both bounds must address retained
	// records (a durable log panics below its truncation point — recovery
	// validates retention before replaying).
	Slice(from, to int) []Record
}

type Runner struct {
	cfg      core.Config
	eng      *core.Engine
	log      InputLog
	sink     *TxSink
	store    Store
	manifest Manifest
	ordinals []int // created query IDs, by submit order
	barrier  uint64
	crashed  bool
	// detached stops a crashed incarnation's failure callbacks from
	// poisoning the store its successor recovers from.
	detached atomic.Bool
}

// NewRunner builds an engine wired for checkpointing, with a private
// snapshot store.
func NewRunner(cfg core.Config, log InputLog, sink *TxSink) (*Runner, error) {
	return NewRunnerWithStore(cfg, log, sink, NewSnapshotStore())
}

// NewRunnerWithStore builds an engine wired for checkpointing against a
// caller-owned snapshot store. Sharing one store across incarnations is what
// enables snapshot-based recovery: the successor reads its predecessor's
// latest completed checkpoint from the same store.
func NewRunnerWithStore(cfg core.Config, log InputLog, sink *TxSink, store Store) (*Runner, error) {
	r := &Runner{log: log, sink: sink, store: store}
	cfg.SnapshotSink = store.NewGate()
	// Deterministic session behaviour: one changelog per request, no timer.
	cfg.BatchSize = 1
	cfg.BatchTimeout = time.Hour
	// Incremental snapshots only make sense against a store that can
	// persist and resolve delta chains; everything else gets full
	// snapshots regardless of configuration.
	if h, ok := store.(BackendHooks); !ok || !h.SupportsDeltas() {
		cfg.SnapshotDeltaEvery = 0
	}
	// Failures wake any in-flight checkpoint wait: a dead instance will
	// never pass its barrier, so the coordinator must give up and recover.
	userCB := cfg.OnInstanceFailure
	cfg.OnInstanceFailure = func(f spe.InstanceFailure) {
		if userCB != nil {
			userCB(f)
		}
		if r.detached.Load() {
			return
		}
		store.Fail(f)
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	r.cfg = cfg
	r.eng = eng
	return r, nil
}

// Engine exposes the underlying engine (metrics, etc.).
func (r *Runner) Engine() *core.Engine { return r.eng }

// Store exposes the snapshot store, for handing to a successor incarnation.
func (r *Runner) Store() Store { return r.store }

// Manifest returns the checkpoint manifest so far.
func (r *Runner) Manifest() Manifest {
	m := Manifest{Offsets: make([]int, len(r.manifest.Offsets))}
	copy(m.Offsets, r.manifest.Offsets)
	return m
}

// Submit logs and submits a query creation.
func (r *Runner) Submit(q *core.Query) error {
	if _, err := r.log.Append(Record{Kind: RecSubmit, Query: q}); err != nil {
		return err
	}
	return r.applySubmit(q)
}

func (r *Runner) applySubmit(q *core.Query) error {
	id, ack, err := r.eng.Submit(q, r.sink)
	if err != nil {
		return err
	}
	<-ack
	r.ordinals = append(r.ordinals, id)
	return nil
}

// StopOrdinal logs and applies a stop of the n-th created query (1-based).
func (r *Runner) StopOrdinal(ord int) error {
	if _, err := r.log.Append(Record{Kind: RecStop, Ordinal: ord}); err != nil {
		return err
	}
	return r.applyStop(ord)
}

func (r *Runner) applyStop(ord int) error {
	if ord < 1 || ord > len(r.ordinals) {
		return fmt.Errorf("checkpoint: no query ordinal %d", ord)
	}
	ack, err := r.eng.StopQuery(r.ordinals[ord-1])
	if err != nil {
		return err
	}
	<-ack
	return nil
}

// Ingest logs and pushes one tuple.
func (r *Runner) Ingest(stream int, t event.Tuple) error {
	if _, err := r.log.Append(Record{Kind: RecTuple, Stream: stream, Tuple: t}); err != nil {
		return err
	}
	return r.eng.Ingest(stream, t)
}

// Checkpoint cuts a checkpoint: injects an aligned barrier, waits until
// every operator instance has passed it (at which point every result of the
// current epoch has been delivered), persists the control snapshot alongside
// the collected operator snapshots, then commits the epoch and opens the
// next one. A non-nil error means an instance failed and the checkpoint can
// never complete; the caller should Crash() and recover.
func (r *Runner) Checkpoint() (uint64, error) {
	r.barrier++
	id := r.barrier
	offset := r.log.Len()
	r.eng.Checkpoint(id)
	if err := r.store.Await(id, r.eng.InstanceCount()); err != nil {
		return id, err
	}
	r.store.SetControl(id, r.controlBlob())
	if h, ok := r.store.(BackendHooks); ok {
		h.NoteOffset(id, offset)
	}
	if err := r.store.MarkComplete(id); err != nil {
		return id, err
	}
	r.sink.Commit(id - 1)
	r.sink.BeginEpoch(id)
	r.manifest.Offsets = append(r.manifest.Offsets, offset)
	return id, nil
}

// controlBlob is the runner's per-checkpoint control record: its own
// ordinal table followed by the engine's control snapshot.
func (r *Runner) controlBlob() []byte {
	b := []byte{1} // version
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.ordinals)))
	for _, id := range r.ordinals {
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(id)))
	}
	return append(b, r.eng.ControlSnapshot()...)
}

// splitControlBlob undoes controlBlob.
func splitControlBlob(b []byte) (ordinals []int, engine []byte, err error) {
	if len(b) < 5 || b[0] != 1 {
		return nil, nil, fmt.Errorf("checkpoint: bad control blob header")
	}
	n := int(binary.LittleEndian.Uint32(b[1:5]))
	b = b[5:]
	if n < 0 || len(b) < 8*n {
		return nil, nil, fmt.Errorf("checkpoint: truncated control blob")
	}
	ordinals = make([]int, n)
	for i := range ordinals {
		ordinals[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return ordinals, b[8*n:], nil
}

// Crash abandons the engine, simulating a process failure: buffered,
// uncommitted results are lost; the log, the committed epochs, and the
// snapshot store's completed checkpoints survive.
func (r *Runner) Crash() map[uint64][]string {
	r.crashed = true
	r.detached.Store(true)
	// Drain in the background so goroutines exit; results it produces go
	// to pending epochs that will never commit — exactly what a crash
	// loses. The store's generation gate drops any snapshots this drain
	// still completes.
	go r.eng.Drain()
	return r.sink.CommittedEpochs()
}

// Finish drains the engine and commits the final epoch.
func (r *Runner) Finish() []string {
	if r.crashed {
		return nil
	}
	r.eng.Drain()
	r.sink.Commit(^uint64(0))
	return r.sink.Committed()
}

// Recover rebuilds an engine from the log and replays it from the beginning.
// Epochs already committed by the crashed incarnation are deduplicated; the
// rest commit as replay crosses the manifest's checkpoint positions. Cost is
// proportional to the whole log; prefer RecoverFromStore when a snapshot
// store with a completed checkpoint is available.
func Recover(cfg core.Config, log InputLog, manifest Manifest, committed map[uint64][]string) (*Runner, error) {
	sink := NewTxSink()
	sink.SeedCommitted(committed)
	r, err := NewRunner(cfg, log, sink)
	if err != nil {
		return nil, err
	}
	return r, r.replayRange(0, manifest, 0)
}

// RecoverFromStore rebuilds a runner from the store's latest completed
// checkpoint K: operator state comes from the persisted snapshots via
// Operator.Restore, control state from the control blob, and only the log
// suffix past K's offset is replayed — recovery cost proportional to the
// checkpoint interval, not job lifetime. Falls back to full-log Recover when
// the store has no completed checkpoint.
func RecoverFromStore(cfg core.Config, log InputLog, manifest Manifest, committed map[uint64][]string, store Store) (*Runner, error) {
	k, ok := store.LatestComplete()
	if !ok {
		// Nothing completed yet: full-log replay, but still against the
		// caller's store so later checkpoints (and failures) land there.
		store.ClearFailure()
		store.DropAfter(0)
		sink := NewTxSink()
		sink.SeedCommitted(committed)
		r, err := NewRunnerWithStore(cfg, log, sink, store)
		if err != nil {
			return nil, err
		}
		return r, r.replayRange(0, manifest, 0)
	}
	if int(k) > len(manifest.Offsets) {
		return nil, fmt.Errorf("checkpoint: store at barrier %d but manifest has %d offsets", k, len(manifest.Offsets))
	}
	store.ClearFailure()
	store.DropAfter(k)
	ctrl, ok := store.Control(k)
	if !ok {
		return nil, fmt.Errorf("checkpoint: no control snapshot at barrier %d", k)
	}
	ordinals, engCtrl, err := splitControlBlob(ctrl)
	if err != nil {
		return nil, err
	}
	sink := NewTxSink()
	sink.SeedCommitted(committed)
	r, err := NewRunnerWithStore(cfg, log, sink, store)
	if err != nil {
		return nil, err
	}
	if err := r.eng.RestoreControl(engCtrl); err != nil {
		return nil, err
	}
	if err := r.eng.RestoreOperators(func(op string, instance int) ([][]byte, bool) {
		return store.FetchChain(k, op, instance)
	}); err != nil {
		return nil, err
	}
	// Re-register the transactional sink for every query ever created:
	// stopped queries still fire their final windows during the suffix,
	// exactly as they did in the original run.
	r.ordinals = ordinals
	for _, id := range ordinals {
		r.eng.Router().Register(id, sink)
	}
	r.barrier = k
	r.manifest.Offsets = append(r.manifest.Offsets, manifest.Offsets[:k]...)
	sink.BeginEpoch(k)
	return r, r.replayRange(manifest.Offsets[k-1], manifest, int(k))
}

// replayRange replays log records [start, len) without re-logging, re-cutting
// checkpoints at the manifest offsets from index nextOffset on.
func (r *Runner) replayRange(start int, manifest Manifest, nextOffset int) error {
	recs := r.log.Slice(start, r.log.Len())
	next := nextOffset
	for i, rec := range recs {
		abs := start + i
		for next < len(manifest.Offsets) && manifest.Offsets[next] == abs {
			if err := r.replayCheckpoint(manifest.Offsets[next]); err != nil {
				return err
			}
			r.manifest.Offsets = append(r.manifest.Offsets, manifest.Offsets[next])
			next++
		}
		switch rec.Kind {
		case RecSubmit:
			if err := r.applySubmit(rec.Query); err != nil {
				return err
			}
		case RecStop:
			if err := r.applyStop(rec.Ordinal); err != nil {
				return err
			}
		case RecTuple:
			if err := r.eng.Ingest(rec.Stream, rec.Tuple); err != nil {
				return err
			}
		}
	}
	for next < len(manifest.Offsets) && manifest.Offsets[next] == r.log.Len() {
		if err := r.replayCheckpoint(manifest.Offsets[next]); err != nil {
			return err
		}
		r.manifest.Offsets = append(r.manifest.Offsets, manifest.Offsets[next])
		next++
	}
	return nil
}

// FinishReplay drains and commits everything after recovery.
func (r *Runner) FinishReplay() []string {
	r.eng.Drain()
	r.sink.CommitReplayed(^uint64(0))
	return r.sink.Committed()
}

// replayCheckpoint re-cuts a checkpoint during replay, deduplicating epochs
// the previous incarnation already committed. The offset is the re-cut
// position from the recovered manifest, re-noted so a durable store's
// persisted offsets stay identical across incarnations.
func (r *Runner) replayCheckpoint(offset int) error {
	r.barrier++
	id := r.barrier
	r.eng.Checkpoint(id)
	if err := r.store.Await(id, r.eng.InstanceCount()); err != nil {
		return err
	}
	r.store.SetControl(id, r.controlBlob())
	if h, ok := r.store.(BackendHooks); ok {
		h.NoteOffset(id, offset)
	}
	if err := r.store.MarkComplete(id); err != nil {
		return err
	}
	r.sink.CommitReplayed(id - 1)
	r.sink.BeginEpoch(id)
	return nil
}
