package checkpoint

import (
	"fmt"
	"sync"

	"astream/internal/spe"
)

// Store is the snapshot-store contract the checkpoint runner drives. The
// in-memory SnapshotStore is the default implementation; internal/durable
// provides an on-disk one (selected via core.Config.StateDir) whose
// checkpoints survive process restarts. A store outlives engine
// incarnations: a recovered runner reads its predecessor's latest completed
// checkpoint from the same store and keeps appending to it.
type Store interface {
	// NewGate registers a new engine incarnation and returns its snapshot
	// sink; all previous gates become stale and their writes are dropped.
	NewGate() spe.SnapshotSink
	// Await blocks until `total` distinct instance snapshots have arrived
	// for the barrier, or a failure is reported (whichever first). It also
	// tells the store how many deposits a completion mark for this barrier
	// requires.
	Await(barrier uint64, total int) error
	// SetControl attaches the engine control snapshot to a barrier.
	SetControl(barrier uint64, b []byte)
	// MarkComplete marks a checkpoint durable. A store may refuse: the
	// durable backend asserts every expected (op, instance) deposit for the
	// barrier is present before committing the completion mark, because a
	// mark without its deposits would be an unrecoverable checkpoint.
	MarkComplete(barrier uint64) error
	// DropAfter discards every snapshot, control blob, and completion mark
	// above the barrier (a crashed incarnation's orphaned deposits).
	DropAfter(barrier uint64)
	// LatestComplete returns the newest completed barrier, if any.
	LatestComplete() (uint64, bool)
	// FetchChain returns one instance's snapshot chain at a completed
	// barrier: a full snapshot followed by zero or more incremental deltas,
	// in application order.
	FetchChain(barrier uint64, op string, instance int) ([][]byte, bool)
	// Control returns the engine control snapshot of a completed barrier.
	Control(barrier uint64) ([]byte, bool)
	// Fail records an instance failure and wakes any Await.
	Fail(err error)
	// Failure returns the recorded failure, if any.
	Failure() error
	// ClearFailure resets the failure state for the next incarnation.
	ClearFailure()
}

// BackendHooks is the optional Store extension a log-owning (durable)
// backend implements. The runner feeds it the log offset covered by each
// barrier — the durable manifest persists those offsets so a restarted
// process can re-cut the same epochs — and the backend uses the previous
// completed checkpoint's offset as the safe point below which whole
// write-ahead-log segments can be truncated.
type BackendHooks interface {
	// NoteOffset records the number of log records covered by a barrier.
	// Called before MarkComplete(barrier).
	NoteOffset(barrier uint64, offset int)
	// SupportsDeltas reports whether the store can persist and resolve
	// incremental snapshot chains. Runners force full snapshots when the
	// store cannot.
	SupportsDeltas() bool
}

// snapKey identifies one operator instance's snapshot within a barrier.
type snapKey struct {
	op       string
	instance int
}

// SnapshotStore is the checkpoint store of the tentpole recovery path: it
// collects per-(op, instance) operator snapshots keyed by barrier, the
// engine's control snapshot per completed barrier, and the completion marks
// a recovery needs to pick its restore point. It outlives engine
// incarnations — a recovered runner reads the previous incarnation's latest
// completed checkpoint from the same store and keeps appending to it.
//
// Writes are generation-gated: each incarnation registers through NewGate,
// and snapshots reported by a previous incarnation (its instances can still
// complete a pending barrier while draining in the background after a
// crash) are silently dropped instead of polluting the live incarnation's
// barriers.
type SnapshotStore struct {
	mu       sync.Mutex
	cond     *sync.Cond
	gen      uint64
	snaps    map[uint64]map[snapKey][]byte
	control  map[uint64][]byte
	complete map[uint64]bool
	latest   uint64
	failure  error
}

// NewSnapshotStore creates an empty store.
func NewSnapshotStore() *SnapshotStore {
	s := &SnapshotStore{
		snaps:    map[uint64]map[snapKey][]byte{},
		control:  map[uint64][]byte{},
		complete: map[uint64]bool{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// storeGate is the spe.SnapshotSink handed to one engine incarnation.
type storeGate struct {
	s   *SnapshotStore
	gen uint64
}

// OnSnapshot implements spe.SnapshotSink.
func (g storeGate) OnSnapshot(op string, instance int, barrier uint64, state []byte) {
	g.s.onSnapshot(g.gen, op, instance, barrier, state)
}

// NewGate registers a new engine incarnation and returns its snapshot sink.
// All previous gates become stale: their writes are dropped.
func (s *SnapshotStore) NewGate() spe.SnapshotSink {
	s.mu.Lock()
	s.gen++
	g := storeGate{s: s, gen: s.gen}
	s.mu.Unlock()
	return g
}

func (s *SnapshotStore) onSnapshot(gen uint64, op string, instance int, barrier uint64, state []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.gen {
		return // stale incarnation draining out
	}
	m := s.snaps[barrier]
	if m == nil {
		m = map[snapKey][]byte{}
		s.snaps[barrier] = m
	}
	m[snapKey{op: op, instance: instance}] = state
	s.cond.Broadcast()
}

// Await blocks until `total` distinct instance snapshots have arrived for
// the barrier, or a failure is reported (whichever first).
func (s *SnapshotStore) Await(barrier uint64, total int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.snaps[barrier]) < total && s.failure == nil {
		s.cond.Wait()
	}
	return s.failure
}

// SetControl attaches the engine control snapshot to a barrier.
func (s *SnapshotStore) SetControl(barrier uint64, b []byte) {
	s.mu.Lock()
	s.control[barrier] = b
	s.mu.Unlock()
}

// MarkComplete marks a checkpoint durable (every snapshot and the control
// blob are in). Older barriers except the immediate predecessor are dropped;
// recovery only ever reads the latest completed checkpoint. The in-memory
// store never refuses a mark: deposit/mark ordering is asserted by the
// durable backend, whose manifest is what makes the ordering observable
// across a crash.
func (s *SnapshotStore) MarkComplete(barrier uint64) error {
	s.mu.Lock()
	s.complete[barrier] = true
	if barrier > s.latest {
		s.latest = barrier
	}
	for b := range s.snaps {
		if b+1 < barrier {
			delete(s.snaps, b)
		}
	}
	for b := range s.control {
		if b+1 < barrier {
			delete(s.control, b)
		}
	}
	for b := range s.complete {
		if b+1 < barrier {
			delete(s.complete, b)
		}
	}
	s.mu.Unlock()
	return nil
}

// DropAfter discards every snapshot, control blob, and completion mark above
// the given barrier. Recovery must call this before replaying: the crashed
// incarnation may have deposited snapshots for a barrier it never completed
// (its surviving instances passed the barrier before the failure surfaced),
// and those would pre-satisfy the successor's retry of the same barrier id —
// releasing the checkpoint wait before the successor's own instances have
// passed it, and mixing dead-incarnation state into the new checkpoint.
func (s *SnapshotStore) DropAfter(barrier uint64) {
	s.mu.Lock()
	for b := range s.snaps {
		if b > barrier {
			delete(s.snaps, b)
		}
	}
	for b := range s.control {
		if b > barrier {
			delete(s.control, b)
		}
	}
	for b := range s.complete {
		if b > barrier {
			delete(s.complete, b)
		}
	}
	s.mu.Unlock()
}

// LatestComplete returns the newest completed barrier, if any.
func (s *SnapshotStore) LatestComplete() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest, s.latest > 0
}

// Fetch returns one instance's snapshot at a barrier.
func (s *SnapshotStore) Fetch(barrier uint64, op string, instance int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.snaps[barrier][snapKey{op: op, instance: instance}]
	return b, ok
}

// FetchChain implements Store. The in-memory store holds only full
// snapshots, so every chain has length one.
func (s *SnapshotStore) FetchChain(barrier uint64, op string, instance int) ([][]byte, bool) {
	b, ok := s.Fetch(barrier, op, instance)
	if !ok {
		return nil, false
	}
	return [][]byte{b}, true
}

// Control returns the engine control snapshot of a completed barrier.
func (s *SnapshotStore) Control(barrier uint64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.control[barrier]
	return b, ok
}

// Fail records an instance failure and wakes any await: the in-flight
// checkpoint can never complete (a dead instance will not pass its barrier),
// so the coordinator must stop waiting and start recovery.
func (s *SnapshotStore) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("checkpoint: unspecified instance failure")
	}
	s.mu.Lock()
	if s.failure == nil {
		s.failure = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Failure returns the recorded failure, if any.
func (s *SnapshotStore) Failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failure
}

// ClearFailure resets the failure state for the next incarnation.
func (s *SnapshotStore) ClearFailure() {
	s.mu.Lock()
	s.failure = nil
	s.mu.Unlock()
}

var _ Store = (*SnapshotStore)(nil)
