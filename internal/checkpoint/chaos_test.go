package checkpoint

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/fault"
)

// The chaos harness drives a fixed, deterministic workload twice: once clean
// and once with a seeded fault plan injecting operator kills and exchange
// batch faults. Failures surface only at checkpoints (a dead instance can
// never pass its barrier); the harness then crashes the incarnation,
// recovers from the snapshot store's latest completed checkpoint plus the
// log suffix, resumes at the exact step that failed, and finally asserts the
// committed output is identical to the fault-free run.

type chaosStepKind int

const (
	stepSubmit chaosStepKind = iota
	stepStop
	stepIngest
	stepCheckpoint
)

type chaosStep struct {
	kind   chaosStepKind
	query  *core.Query
	ord    int
	stream int
	tuple  event.Tuple
}

// chaosSteps is the workload. It must be identical across the clean run, the
// chaotic run, and every recovery — all determinism lives here.
func chaosSteps() []chaosStep {
	rng := rand.New(rand.NewSource(97))
	var steps []chaosStep
	steps = append(steps,
		chaosStep{kind: stepSubmit, query: testQuery(core.KindAggregation)},
		chaosStep{kind: stepSubmit, query: testQuery(core.KindJoin)},
	)
	now := event.Time(0)
	for phase := 0; phase < 6; phase++ {
		for i := 0; i < 25; i++ {
			now++
			for s := 0; s < 2; s++ {
				tu := event.Tuple{Key: int64(rng.Intn(3)), Time: now}
				for f := range tu.Fields {
					tu.Fields[f] = int64(rng.Intn(100))
				}
				steps = append(steps, chaosStep{kind: stepIngest, stream: s, tuple: tu})
			}
		}
		if phase == 2 {
			steps = append(steps, chaosStep{kind: stepStop, ord: 1})
		}
		steps = append(steps, chaosStep{kind: stepCheckpoint})
	}
	return steps
}

// applyChaosStep runs one step. Only checkpoint steps return recoverable
// errors; everything else failing is a harness bug.
func applyChaosStep(r *Runner, s chaosStep) error {
	switch s.kind {
	case stepSubmit:
		return r.Submit(s.query)
	case stepStop:
		return r.StopOrdinal(s.ord)
	case stepIngest:
		return r.Ingest(s.stream, s.tuple)
	default:
		_, err := r.Checkpoint()
		return err
	}
}

func chaosConfig(hook *fault.Plan) core.Config {
	cfg := core.Config{
		Streams: 2, Parallelism: 2, Nodes: 2, WatermarkEvery: 1,
		NowNanos: func() int64 { return 1 },
	}
	if hook != nil {
		cfg.FaultHook = hook
	}
	return cfg
}

// runChaosClean produces the fault-free reference output.
func runChaosClean(t *testing.T, steps []chaosStep) []string {
	t.Helper()
	r, err := NewRunner(chaosConfig(nil), &Log{}, NewTxSink())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range steps {
		if err := applyChaosStep(r, s); err != nil {
			t.Fatalf("clean step %d: %v", i, err)
		}
	}
	out := r.Finish()
	if len(out) == 0 {
		t.Fatal("clean run produced nothing")
	}
	return out
}

// runChaotic drives the steps under the fault plan, recovering on every
// failure, and returns the committed output plus how many recoveries ran.
func runChaotic(t *testing.T, steps []chaosStep, plan *fault.Plan) ([]string, int) {
	t.Helper()
	log := &Log{}
	store := NewSnapshotStore()
	r, err := NewRunnerWithStore(chaosConfig(plan), log, NewTxSink(), store)
	if err != nil {
		t.Fatal(err)
	}
	recoveries := 0
	const maxRecoveries = 16
	for i := 0; i < len(steps); {
		stepErr := applyChaosStep(r, steps[i])
		if stepErr == nil {
			i++
			continue
		}
		if steps[i].kind != stepCheckpoint {
			t.Fatalf("non-checkpoint step %d failed: %v", i, stepErr)
		}
		// A checkpoint that cannot complete means an instance died: crash
		// the incarnation and recover. Recovery itself can hit a pending
		// injected fault (e.g. a kill scheduled past the crash point fires
		// during suffix replay) — crash and recover again; fired one-shot
		// ops never recur.
		committed := r.Crash()
		manifest := r.Manifest()
		for {
			recoveries++
			if recoveries > maxRecoveries {
				t.Fatalf("no stable recovery after %d attempts; last: %v", maxRecoveries, stepErr)
			}
			r2, err := RecoverFromStore(chaosConfig(plan), log, manifest, committed, store)
			if err == nil {
				r = r2
				break
			}
		}
		// Retry the same checkpoint step: it logs nothing, so the replto
		// this point is exact.
	}
	return r.Finish(), recoveries
}

func assertSameOutput(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("committed output diverged: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("committed result %d: %q, want %q", i, got[i], want[i])
		}
	}
}

// TestChaosSeededSchedules runs randomized seeded fault schedules and
// asserts exactly-once committed output under every one of them.
func TestChaosSeededSchedules(t *testing.T) {
	steps := chaosSteps()
	want := runChaosClean(t, steps)

	// Ordered so the short-mode prefix covers schedules that actually fire:
	// 23 drops two source batches, 42 kills a join instance mid-stream, 58
	// kills an aggregate instance at barrier alignment. 11 and 77 draw
	// schedules that never come due — kept as controls (a plan that does not
	// fire must not perturb output either).
	seeds := []int64{23, 42, 58, 11, 77}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plan := fault.RandomPlan(seed, fault.RandomConfig{
				Ops:       []string{"src-0", "src-1", "select-0", "select-1", "join-0", "aggregate"},
				Instances: 2, MaxTuples: 220, Barriers: 6, Batches: 30,
				NumFaults: 4, AllowBatchFaults: true,
			})
			got, recoveries := runChaotic(t, steps, plan)
			t.Logf("seed %d: %d recoveries, injections: %v", seed, recoveries, plan.Fired())
			assertSameOutput(t, got, want)
		})
	}
}

// TestChaosKillRecoversFromSnapshot pins the headline scenario: a kill
// mid-stream fails the next checkpoint, recovery restores operators from the
// latest completed snapshot and replays only the log suffix, and the
// committed output is byte-identical to the fault-free run.
func TestChaosKillRecoversFromSnapshot(t *testing.T) {
	steps := chaosSteps()
	want := runChaosClean(t, steps)

	// Kill one aggregate instance partway through the run (tuples are
	// counted per instance; at least one checkpoint has completed by the
	// 80th tuple that hashes to instance 0).
	plan := fault.NewPlan(fault.Op{Kind: fault.KillAfterTuples, Op: "aggregate", Instance: 0, N: 80})

	log := &Log{}
	store := NewSnapshotStore()
	r, err := NewRunnerWithStore(chaosConfig(plan), log, NewTxSink(), store)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	var ckptErr error
	for ; i < len(steps); i++ {
		if err := applyChaosStep(r, steps[i]); err != nil {
			ckptErr = err
			break
		}
	}
	if ckptErr == nil {
		t.Fatal("injected kill never surfaced at a checkpoint")
	}
	if !strings.Contains(ckptErr.Error(), "injected fault") {
		t.Fatalf("failure reason lost: %v", ckptErr)
	}
	k, ok := store.LatestComplete()
	if !ok || k == 0 {
		t.Fatal("no completed checkpoint to recover from")
	}
	committed := r.Crash()
	manifest := r.Manifest()
	if len(manifest.Offsets) != int(k) {
		t.Fatalf("manifest has %d offsets, latest complete checkpoint is %d", len(manifest.Offsets), k)
	}
	suffix := log.Len() - manifest.Offsets[k-1]
	if suffix <= 0 || suffix >= log.Len() {
		t.Fatalf("suffix replay covers %d of %d records; want a strict suffix", suffix, log.Len())
	}
	r2, err := RecoverFromStore(chaosConfig(plan), log, manifest, committed, store)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	// Resume from the failed checkpoint step.
	r = r2
	for ; i < len(steps); i++ {
		if err := applyChaosStep(r, steps[i]); err != nil {
			t.Fatalf("post-recovery step %d: %v", i, err)
		}
	}
	assertSameOutput(t, r.Finish(), want)
	if len(plan.Fired()) != 1 {
		t.Fatalf("expected exactly one injection, got %v", plan.Fired())
	}
}

// TestChaosQuarantine: a query whose own predicate keeps panicking gets
// quarantined after repeated strikes; the process survives and the other
// query keeps producing.
func TestChaosQuarantine(t *testing.T) {
	// Query IDs are assigned 1, 2, ... in submit order; panic query 1.
	plan := fault.NewPlan(fault.Op{Kind: fault.PanicPredicate, QueryID: 1})
	r, err := NewRunner(chaosConfig(plan), &Log{}, NewTxSink())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(testQuery(core.KindAggregation)); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(testQuery(core.KindAggregation)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 60; i++ {
		for s := 0; s < 2; s++ {
			tu := event.Tuple{Key: int64(i % 3), Time: event.Time(i)}
			tu.Fields[0] = 50
			tu.Fields[1] = 1
			if err := r.Ingest(s, tu); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := r.Checkpoint(); err != nil {
		t.Fatalf("predicate panics must not kill instances: %v", err)
	}
	out := r.Finish()
	if q := r.Engine().Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("quarantined = %v, want [1]", q)
	}
	sawQ2 := false
	for _, line := range out {
		if strings.HasPrefix(line, "q1 ") {
			t.Fatalf("quarantined query produced output: %q", line)
		}
		if strings.HasPrefix(line, "q2 ") {
			sawQ2 = true
		}
	}
	if !sawQ2 {
		t.Fatal("healthy query produced no output")
	}
}
