// Package checkpoint implements the fault-tolerance story of paper §3.3:
// exactly-once processing through input logging, deterministic replay, and
// transactional output commits aligned with checkpoint barriers.
//
// AStream's operators are deterministic functions of their event-time
// inputs: tuples, changelog markers, and watermarks are woven into the
// logged streams, so replaying the log reproduces every operator state and
// every result. This package provides
//
//   - Log: a total-ordered, binary-serializable record of everything that
//     entered the engine (tuples per stream, query create/stop requests);
//   - Coordinator: barrier-based checkpoints over a running engine (the spe
//     runtime aligns barriers exactly as Flink does) with per-checkpoint
//     log offsets;
//   - TxSink: a transactional sink that buffers results per checkpoint
//     epoch and exposes only committed epochs, so a crash between
//     checkpoints never double-exposes results after replay;
//   - Replay: rebuilding an engine from the log.
//
// Recovery here replays the log from the beginning (state snapshots, which
// the spe runtime also supports, would merely bound replay length; the
// correctness argument — determinism — is identical).
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"sync"

	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/spe"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// RecordKind discriminates log records.
type RecordKind uint8

const (
	// RecTuple is one ingested tuple on a stream.
	RecTuple RecordKind = iota
	// RecSubmit is a query creation request.
	RecSubmit
	// RecStop is a query stop request (by create-ordinal).
	RecStop
)

// Record is one logged input event.
type Record struct {
	Kind    RecordKind
	Stream  int
	Tuple   event.Tuple
	Query   *core.Query // for RecSubmit
	Ordinal int         // for RecStop: 1-based create ordinal
}

// Log is an in-memory, append-only input log with binary round-tripping.
// It is safe for one writer and many readers of committed prefixes.
type Log struct {
	mu   sync.Mutex
	recs []Record
}

// Append adds a record and returns its offset. The in-memory log cannot
// fail; the error return exists for InputLog implementations that write
// through to disk.
func (l *Log) Append(r Record) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, r)
	return len(l.recs) - 1, nil
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Slice returns records [from, to).
func (l *Log) Slice(from, to int) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if to > len(l.recs) {
		to = len(l.recs)
	}
	out := make([]Record, to-from)
	copy(out, l.recs[from:to])
	return out
}

// AppendRecord serializes one record onto b, in the same per-record framing
// Marshal uses for whole logs. The durable backend's write-ahead log encodes
// each record individually through this helper, so both log representations
// stay byte-compatible by construction.
func AppendRecord(b []byte, r *Record) []byte {
	b = append(b, byte(r.Kind))
	switch r.Kind {
	case RecTuple:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Stream))
		enc := (spe.BinaryCodec{}).Encode(event.NewTuple(r.Tuple))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(enc)))
		b = append(b, enc...)
	case RecSubmit:
		enc := MarshalQuery(r.Query)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(enc)))
		b = append(b, enc...)
	case RecStop:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Ordinal))
	}
	return b
}

// DecodeRecord decodes one record produced by AppendRecord and returns the
// remaining bytes.
func DecodeRecord(b []byte) (Record, []byte, error) {
	var r Record
	if len(b) < 1 {
		return r, nil, fmt.Errorf("checkpoint: truncated record kind")
	}
	r.Kind = RecordKind(b[0])
	b = b[1:]
	switch r.Kind {
	case RecTuple:
		if len(b) < 8 {
			return r, nil, fmt.Errorf("checkpoint: truncated tuple header")
		}
		r.Stream = int(binary.LittleEndian.Uint32(b))
		sz := int(binary.LittleEndian.Uint32(b[4:]))
		b = b[8:]
		if sz < 0 || len(b) < sz {
			return r, nil, fmt.Errorf("checkpoint: truncated tuple body")
		}
		el, err := (spe.BinaryCodec{}).Decode(b[:sz])
		if err != nil {
			return r, nil, err
		}
		r.Tuple = el.Tuple
		b = b[sz:]
	case RecSubmit:
		if len(b) < 4 {
			return r, nil, fmt.Errorf("checkpoint: truncated query header")
		}
		sz := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if sz < 0 || len(b) < sz {
			return r, nil, fmt.Errorf("checkpoint: truncated query body")
		}
		q, err := UnmarshalQuery(b[:sz])
		if err != nil {
			return r, nil, err
		}
		r.Query = q
		b = b[sz:]
	case RecStop:
		if len(b) < 4 {
			return r, nil, fmt.Errorf("checkpoint: truncated stop record")
		}
		r.Ordinal = int(binary.LittleEndian.Uint32(b))
		b = b[4:]
	default:
		return r, nil, fmt.Errorf("checkpoint: unknown record kind %d", r.Kind)
	}
	return r, b, nil
}

// Marshal serializes the whole log (durability simulation: what would be on
// disk or in Kafka).
func (l *Log) Marshal() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.recs)))
	for i := range l.recs {
		buf = AppendRecord(buf, &l.recs[i])
	}
	return buf
}

// UnmarshalLog reconstructs a log from Marshal's output.
func UnmarshalLog(b []byte) (*Log, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("checkpoint: short log")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	l := &Log{recs: make([]Record, 0, n)}
	for i := 0; i < n; i++ {
		r, rest, err := DecodeRecord(b)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: log record %d: %w", i, err)
		}
		l.recs = append(l.recs, r)
		b = rest
	}
	return l, nil
}

// MarshalQuery serializes a compiled query.
func MarshalQuery(q *core.Query) []byte {
	var b []byte
	b = append(b, byte(q.Kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(q.Arity))
	for _, p := range q.Predicates {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Conj)))
		for _, c := range p.Conj {
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(c.Field)))
			b = append(b, byte(c.Op))
			b = binary.LittleEndian.AppendUint64(b, uint64(c.Value))
		}
	}
	b = appendSpec(b, q.Window)
	b = appendSpec(b, q.AggWindow)
	b = append(b, byte(q.Agg))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(q.AggField)))
	return b
}

func appendSpec(b []byte, s window.Spec) []byte {
	b = append(b, byte(s.Kind))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Length))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Slide))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Gap))
	return b
}

// UnmarshalQuery reverses MarshalQuery.
func UnmarshalQuery(b []byte) (*core.Query, error) {
	r := &byteReader{b: b}
	q := &core.Query{}
	q.Kind = core.Kind(r.u8())
	q.Arity = int(r.u32())
	if r.err == nil && (q.Arity < 0 || q.Arity > 16) {
		return nil, fmt.Errorf("checkpoint: bad arity %d", q.Arity)
	}
	q.Predicates = make([]expr.Predicate, q.Arity)
	for i := 0; i < q.Arity && r.err == nil; i++ {
		n := int(r.u32())
		if r.err == nil && (n < 0 || n > 64) {
			return nil, fmt.Errorf("checkpoint: bad predicate size %d", n)
		}
		for j := 0; j < n; j++ {
			c := expr.Comparison{
				Field: int(int64(r.u64())),
				Op:    expr.Op(r.u8()),
				Value: int64(r.u64()),
			}
			q.Predicates[i] = q.Predicates[i].And(c)
		}
	}
	q.Window = readSpec(r)
	q.AggWindow = readSpec(r)
	q.Agg = sqlstream.AggFunc(r.u8())
	q.AggField = int(int64(r.u64()))
	if r.err != nil {
		return nil, r.err
	}
	return q, nil
}

func readSpec(r *byteReader) window.Spec {
	return window.Spec{
		Kind:   window.Kind(r.u8()),
		Length: event.Time(r.u64()),
		Slide:  event.Time(r.u64()),
		Gap:    event.Time(r.u64()),
	}
}

type byteReader struct {
	b   []byte
	err error
}

func (r *byteReader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *byteReader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *byteReader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *byteReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: truncated query encoding")
	}
}
