package experiments

import (
	"time"

	"astream/internal/driver"
	"astream/internal/event"
	"astream/internal/gen"
	"astream/internal/metrics"
)

// Scale multiplies every experiment's measurement window; 1 is the quick
// bench default, larger values approach the paper's long steady states.
type Scale struct {
	Warmup  time.Duration
	Measure time.Duration
}

// QuickScale is the default seconds-long scale.
func QuickScale() Scale {
	return Scale{Warmup: 300 * time.Millisecond, Measure: 700 * time.Millisecond}
}

// sc1Grid is the paper's SC1 workload grid (Figures 9, 11, 12).
func sc1Grid() []Params {
	return []Params{
		{Scenario: "SC1", QueriesPerSec: 1, MaxParallelQ: 1},
		{Scenario: "SC1", QueriesPerSec: 1, MaxParallelQ: 20},
		{Scenario: "SC1", QueriesPerSec: 10, MaxParallelQ: 60},
		{Scenario: "SC1", QueriesPerSec: 100, MaxParallelQ: 1000},
	}
}

// sc2Grid is the paper's SC2 grid (Figures 13, 14, 15): n queries created
// and deleted every 10 s.
func sc2Grid() []Params {
	return []Params{
		{Scenario: "SC2", BatchN: 10, BatchEvery: 10 * time.Second},
		{Scenario: "SC2", BatchN: 30, BatchEvery: 10 * time.Second},
		{Scenario: "SC2", BatchN: 50, BatchEvery: 10 * time.Second},
	}
}

func apply(p Params, kind QueryKind, sys System, nodes int, sc Scale, seed int64) Params {
	p.Kind = kind
	p.System = sys
	p.Nodes = nodes
	p.Warmup = sc.Warmup
	p.Measure = sc.Measure
	p.Seed = seed
	return p
}

// Fig9SC1Throughput reproduces Figure 9 (slowest and overall data
// throughput, SC1): the SC1 grid for AStream plus the single-query baseline,
// for join and aggregation workloads on the given node counts.
func Fig9SC1Throughput(sc Scale, nodes []int) []Measurement {
	var out []Measurement
	for _, kind := range []QueryKind{JoinK, AggK} {
		for _, n := range nodes {
			out = append(out, Run(apply(Params{Scenario: "SC1", MaxParallelQ: 1, QueriesPerSec: 1}, kind, Baseline, n, sc, 1)))
			for _, p := range sc1Grid() {
				out = append(out, Run(apply(p, kind, AStream, n, sc, 1)))
			}
		}
	}
	return out
}

// Fig9QuerySweep runs Figure 9's query-count axis directly: SC1 at exactly
// the given MaxParallelQ counts (the paper's 1 → 100+ sweep) for both
// workload kinds on one node count, so the whole throughput-vs-queries
// curve comes out of a single invocation instead of the four fixed grid
// points. Query arrival rate scales with the target count the way the SC1
// grid does (~q/10, min 1).
func Fig9QuerySweep(sc Scale, nodes int, counts []int) []Measurement {
	var out []Measurement
	for _, kind := range []QueryKind{JoinK, AggK} {
		for _, q := range counts {
			p := Params{Scenario: "SC1", QueriesPerSec: float64(maxi(1, q/10)), MaxParallelQ: q}
			out = append(out, Run(apply(p, kind, AStream, nodes, sc, 1)))
		}
	}
	return out
}

// FigSlideSweep measures aggregation throughput against the window/slide
// ratio (how many slices one window extent spans) at a fixed SC1 churn point.
// Every query gets the same pinned window — length = ratio × 25 ms, slide =
// 25 ms — so the ratio axis isolates the shared window-fire engine
// (DESIGN.md §15): the per-slice re-merge arm degrades linearly in the ratio
// while the merge tree's cover stays O(log ratio).
func FigSlideSweep(sc Scale, nodes int, ratios []int) []Measurement {
	const slide = 25 // event-time ms
	var out []Measurement
	for _, ratio := range ratios {
		p := Params{
			Scenario: "SC1", QueriesPerSec: 10, MaxParallelQ: 60,
			WindowLen: int64(ratio) * slide, WindowSlide: slide,
		}
		out = append(out, Run(apply(p, AggK, AStream, nodes, sc, 9)))
	}
	return out
}

// DeployPoint is one query's deployment latency in arrival order (Figure 10).
type DeployPoint struct {
	Ordinal int
	Latency time.Duration
}

// Fig10DeployTimeline reproduces Figure 10: one query per (compressed)
// second up to `upTo` queries, per system; returns each query's deployment
// latency (queue wait included). The baseline's latencies grow with the
// number of deployed queries; AStream's stay flat.
func Fig10DeployTimeline(sys System, upTo int, sc Scale) []DeployPoint {
	p := Params{
		System: sys, Kind: JoinK, Scenario: "SC1",
		QueriesPerSec: 1, MaxParallelQ: upTo,
	}
	p.setDefaults()
	p.Warmup = sc.Warmup
	p.Measure = sc.Measure + time.Duration(upTo)*100*time.Millisecond
	s, _, err := buildSUT(p)
	if err != nil {
		panic(err)
	}
	streams := p.Kind.streams()
	d := driver.New(driver.Config{Streams: streams, RequestBatch: 1}, s)
	d.StartPumps()
	qg := queryGen(p)

	gens := make([]*gen.Data, streams)
	for i := range gens {
		gens[i] = gen.NewData(gen.DataConfig{Keys: p.Keys, FieldMax: 1000}, 1)
	}
	start := time.Now()
	var points []DeployPoint
	nextSubmit := start
	submitted := 0
	for submitted < upTo {
		now := time.Now()
		if now.After(nextSubmit) {
			d.EnqueueRequest(driver.Request{Query: nextQuery(qg, p.Kind)})
			enq := time.Now()
			if _, err := d.PumpRequests(); err != nil {
				panic(err)
			}
			points = append(points, DeployPoint{Ordinal: submitted + 1, Latency: time.Since(enq)})
			submitted++
			nextSubmit = nextSubmit.Add(time.Duration(float64(time.Second) / p.Compression))
		}
		// Keep data flowing so topologies have real in-flight backlog.
		at := now.Sub(start).Milliseconds()
		for i := 0; i < 8; i++ {
			for st := 0; st < streams; st++ {
				t := gens[st].Next(event.Time(at))
				t.IngestNanos = now.UnixNano()
				d.OfferTuple(st, t)
			}
		}
	}
	d.Finish()
	return points
}

// Fig11And12SC1Latencies reproduces Figures 11 and 12: deployment latency
// and event-time latency across the SC1 grid.
func Fig11And12SC1Latencies(sc Scale, nodes []int) []Measurement {
	return Fig9SC1Throughput(sc, nodes) // same runs carry both metrics
}

// Fig13To15SC2 reproduces Figures 13, 14, and 15: event-time latency,
// slowest/overall throughput, and deployment latency on the SC2 grid.
func Fig13To15SC2(sc Scale, nodes []int) []Measurement {
	var out []Measurement
	for _, kind := range []QueryKind{JoinK, AggK} {
		for _, n := range nodes {
			for _, p := range sc2Grid() {
				out = append(out, Run(apply(p, kind, AStream, n, sc, 2)))
			}
		}
	}
	return out
}

// Fig16Timeline reproduces Figure 16: complex queries under three churn
// regimes — sharp increases, gradual decrease/increase, and fluctuation —
// sampling slowest throughput, latency, and query count over time.
func Fig16Timeline(sc Scale) []metrics.TimePoint {
	p := Params{System: AStream, Kind: ComplexK, Scenario: "SC1", MaxParallelQ: 1, QueriesPerSec: 1}
	p.setDefaults()
	s, _, err := buildSUT(p)
	if err != nil {
		panic(err)
	}
	streams := p.Kind.streams()
	d := driver.New(driver.Config{Streams: streams, RequestBatch: 100}, s)
	d.StartPumps()
	qg := queryGen(p)
	tl := metrics.NewTimeline(time.Now())

	phaseDur := sc.Measure // one phase per measure window
	// Phases: sharp +10, sharp +20, gradual -15, gradual +10, fluctuate.
	type phase struct{ create, del int }
	phases := []phase{{10, 0}, {20, 0}, {0, 15}, {10, 0}, {10, 10}, {10, 10}}
	gens := make([]*gen.Data, streams)
	for i := range gens {
		gens[i] = gen.NewData(gen.DataConfig{Keys: p.Keys, FieldMax: 1000}, 3)
	}
	start := time.Now()
	created, deleted := 0, 0
	for _, ph := range phases {
		for i := 0; i < ph.create; i++ {
			d.EnqueueRequest(driver.Request{Query: nextQuery(qg, p.Kind)})
			created++
		}
		for i := 0; i < ph.del && deleted < created-1; i++ {
			deleted++
			d.EnqueueRequest(driver.Request{StopOrdinal: deleted})
		}
		if _, err := d.PumpRequests(); err != nil {
			panic(err)
		}
		phaseEnd := time.Now().Add(phaseDur)
		for time.Now().Before(phaseEnd) {
			now := time.Now()
			at := event.Time(now.Sub(start).Milliseconds())
			for i := 0; i < 16; i++ {
				for st := 0; st < streams; st++ {
					t := gens[st].Next(at)
					t.IngestNanos = now.UnixNano()
					d.OfferTuple(st, t)
				}
			}
			// Paced (~16K tuples/s/stream): the complex workload's n-ary
			// join windows grow quadratically with window volume, so the
			// timeline runs at a fixed moderate rate like the paper's
			// cluster does.
			time.Sleep(time.Millisecond)
		}
		tl.Sample(time.Now(), d.Ingested.WindowRate()/float64(streams),
			float64(d.EventTimeLat.Mean().Milliseconds()), s.ActiveQueries())
	}
	d.Finish()
	return tl.Points()
}

// Fig17ParallelismSweep reproduces Figure 17: slowest throughput as query
// parallelism grows 1 → maxQ (log steps).
func Fig17ParallelismSweep(sc Scale, kind QueryKind, nodes int, maxQ int) []Measurement {
	var out []Measurement
	for q := 1; q <= maxQ; q *= 4 {
		p := Params{Scenario: "SC1", QueriesPerSec: 100, MaxParallelQ: q}
		out = append(out, Run(apply(p, kind, AStream, nodes, sc, 4)))
	}
	return out
}

// OverheadShare is Figure 18a's datum: the share of AStream's added work
// attributable to each component.
type OverheadShare struct {
	Queries                      int
	QuerySetGen, Bitset, RouterC float64 // fractions of component total
	TotalShare                   float64 // component total / (measure × parallelism)
}

// Fig18ComponentOverhead reproduces Figure 18: the proportion of AStream's
// sharing machinery (query-set generation, bitset operations, router copy)
// at growing query parallelism, plus its share of total processing time.
func Fig18ComponentOverhead(sc Scale, counts []int) []OverheadShare {
	var out []OverheadShare
	for _, q := range counts {
		p := Params{Scenario: "SC1", QueriesPerSec: 100, MaxParallelQ: q}
		m := Run(apply(p, AggK, AStream, 1, sc, 5))
		total := float64(m.QuerySetGenNanos + m.BitsetNanos + m.RouterCopyNanos)
		sh := OverheadShare{Queries: q}
		if total > 0 {
			sh.QuerySetGen = float64(m.QuerySetGenNanos) / total
			sh.Bitset = float64(m.BitsetNanos) / total
			sh.RouterC = float64(m.RouterCopyNanos) / total
		}
		// Budget: measured wall time × operator instances (2 streams? the agg
		// workload has S selections + agg = 2 stages × parallelism).
		budget := float64(m.Params.Measure.Nanoseconds()) * float64(2*m.Params.Parallelism)
		sh.TotalShare = total / budget
		out = append(out, sh)
	}
	return out
}

// Fig18bSingleQueryOverhead measures the sharing overhead the paper bounds
// at ~10 %: single-query AStream throughput vs single-query baseline.
func Fig18bSingleQueryOverhead(sc Scale, kind QueryKind) (astream, baseline Measurement, overhead float64) {
	pa := Run(apply(Params{Scenario: "SC1", MaxParallelQ: 1, QueriesPerSec: 1}, kind, AStream, 1, sc, 6))
	pb := Run(apply(Params{Scenario: "SC1", MaxParallelQ: 1, QueriesPerSec: 1}, kind, Baseline, 1, sc, 6))
	ov := 0.0
	if pb.SlowestTupS > 0 {
		ov = 1 - pa.SlowestTupS/pb.SlowestTupS
	}
	return pa, pb, ov
}

// Fig19Impact reproduces Figure 19: the effect of adding ad-hoc join
// queries on existing long-running ones — slowest throughput before and
// after the ad-hoc wave.
type ImpactPoint struct {
	LongRunning int
	AdHoc       int
	Scenario    string
	BeforeTupS  float64
	AfterTupS   float64
}

// Fig19Impact measures before/after throughput for each (long-running,
// ad-hoc) combination on the given scenario.
func Fig19Impact(sc Scale, scenario string, longCounts, adhocCounts []int) []ImpactPoint {
	var out []ImpactPoint
	for _, L := range longCounts {
		for _, A := range adhocCounts {
			out = append(out, runImpact(sc, scenario, L, A))
		}
	}
	return out
}

func runImpact(sc Scale, scenario string, L, A int) ImpactPoint {
	p := Params{System: AStream, Kind: JoinK, Scenario: scenario,
		QueriesPerSec: 100, MaxParallelQ: L, BatchN: maxi(A, 1), BatchEvery: 10 * time.Second}
	p.setDefaults()
	p.Warmup = sc.Warmup
	p.Measure = sc.Measure
	s, _, err := buildSUT(p)
	if err != nil {
		panic(err)
	}
	streams := p.Kind.streams()
	d := driver.New(driver.Config{Streams: streams, RequestBatch: 200}, s)
	d.StartPumps()
	qg := queryGen(p)
	for i := 0; i < L; i++ {
		d.EnqueueRequest(driver.Request{Query: nextQuery(qg, p.Kind)})
	}
	if _, err := d.PumpRequests(); err != nil {
		panic(err)
	}
	gens := make([]*gen.Data, streams)
	for i := range gens {
		gens[i] = gen.NewData(gen.DataConfig{Keys: p.Keys, FieldMax: 1000}, 7)
	}
	start := time.Now()
	pump := func(until time.Time) uint64 {
		from := d.Ingested.Total()
		for time.Now().Before(until) {
			now := time.Now()
			at := event.Time(now.Sub(start).Milliseconds())
			for i := 0; i < 16; i++ {
				for st := 0; st < streams; st++ {
					t := gens[st].Next(at)
					t.IngestNanos = now.UnixNano()
					d.OfferTuple(st, t)
				}
			}
			// Paced (~16K tup/s/stream): join windows are quadratic in
			// window volume (see Params.OfferedRate).
			time.Sleep(time.Millisecond)
		}
		return d.Ingested.Total() - from
	}
	pump(time.Now().Add(p.Warmup))
	before := float64(pump(time.Now().Add(p.Measure))) / float64(streams) / p.Measure.Seconds()
	// The ad-hoc wave.
	for i := 0; i < A; i++ {
		d.EnqueueRequest(driver.Request{Query: nextQuery(qg, p.Kind)})
	}
	if _, err := d.PumpRequests(); err != nil {
		panic(err)
	}
	after := float64(pump(time.Now().Add(p.Measure))) / float64(streams) / p.Measure.Seconds()
	d.Finish()
	return ImpactPoint{LongRunning: L, AdHoc: A, Scenario: scenario, BeforeTupS: before, AfterTupS: after}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ScalabilityPoint is Figure 20's datum: how many ad-hoc queries a node
// count sustains at a fixed offered data rate.
type ScalabilityPoint struct {
	Nodes     int
	Scenario  string
	Sustained int
}

// Fig20Scalability reproduces Figure 20: for each node count, the largest
// tested query count that stays sustainable at the fixed offered rate.
// Sustainability here is the paper's: the offered load is absorbed (≥ 70 %
// delivered) within a bounded event-time latency (QoS bound: 300 ms at this
// scale — throughput alone flattens under sharing and would not
// discriminate, which is itself the paper's headline effect).
func Fig20Scalability(sc Scale, scenario string, nodes []int, queryCounts []int, offered float64) []ScalabilityPoint {
	const latencyBound = 300 * time.Millisecond
	var out []ScalabilityPoint
	for _, n := range nodes {
		sustained := 0
		for _, q := range queryCounts {
			p := Params{Scenario: scenario, QueriesPerSec: 100, MaxParallelQ: q,
				BatchN: maxi(q/5, 1), BatchEvery: 10 * time.Second, OfferedRate: offered}
			m := Run(apply(p, JoinK, AStream, n, sc, 8))
			if m.SlowestTupS >= offered*0.7 && m.EventTimeLat <= latencyBound {
				sustained = q
			} else {
				break
			}
		}
		out = append(out, ScalabilityPoint{Nodes: n, Scenario: scenario, Sustained: sustained})
	}
	return out
}
