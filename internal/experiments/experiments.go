// Package experiments reproduces the paper's evaluation (§4): the SC1 and
// SC2 workload scenarios (Figure 6), the metrics of §4.3, and one runner per
// figure of the evaluation section (Figures 9–20). The cmd/astream-bench
// binary and the repository-root benchmarks are thin wrappers around this
// package.
//
// Scale note: the paper ran 4/8-node clusters for a thousand seconds; these
// runners execute laptop-scale, seconds-long steady states with the request
// schedule compressed by Params.Compression (default 10×: "1 q/s" arrives as
// 10 q/s). Absolute numbers are therefore not comparable to the paper's;
// the shapes — who wins, how slopes run, where systems stop sustaining — are
// what the harness reproduces (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"astream/internal/baseline"
	"astream/internal/cluster"
	"astream/internal/core"
	"astream/internal/driver"
	"astream/internal/event"
	"astream/internal/gen"
	"astream/internal/metrics"
)

// System selects the system under test.
type System int

const (
	// AStream is the shared ad-hoc engine (the paper's contribution).
	AStream System = iota
	// Baseline is the query-at-a-time engine (vanilla Flink's role).
	Baseline
)

func (s System) String() string {
	if s == Baseline {
		return "baseline"
	}
	return "astream"
}

// QueryKind selects the workload's query type.
type QueryKind int

const (
	// AggK is the windowed-aggregation workload (Figure 8 template).
	AggK QueryKind = iota
	// JoinK is the windowed-join workload (Figure 7 template).
	JoinK
	// ComplexK is the §4.7 selection + n-ary join + aggregation workload.
	ComplexK
	// MixedK draws joins and aggregations uniformly.
	MixedK
)

func (k QueryKind) String() string {
	switch k {
	case AggK:
		return "agg"
	case JoinK:
		return "join"
	case ComplexK:
		return "complex"
	default:
		return "mixed"
	}
}

func (k QueryKind) streams() int {
	switch k {
	case AggK:
		return 1
	case ComplexK:
		return 3
	default:
		return 2
	}
}

// Params configures one experiment run.
type Params struct {
	System System
	Kind   QueryKind
	// Nodes simulates the cluster size; Parallelism defaults to
	// cluster.ScaleParallelism(Nodes, 2).
	Nodes       int
	Parallelism int
	// Scenario: "SC1" (ramp to MaxParallelQ at QueriesPerSec) or "SC2"
	// (create and delete BatchN queries every BatchEvery).
	Scenario      string
	QueriesPerSec float64
	MaxParallelQ  int
	BatchN        int
	BatchEvery    time.Duration
	// Compression divides all request-schedule delays (the paper's
	// thousand-second runs compressed to seconds).
	Compression float64
	// Warmup and Measure bound the steady-state windows.
	Warmup  time.Duration
	Measure time.Duration
	Seed    int64
	// Keys is the distinct-key count (paper: 1000).
	Keys int64
	// OfferedRate, when > 0, switches the generator to open loop at this
	// tuples/sec/stream; 0 picks a per-kind default (joins and complex
	// queries run open-loop: their per-window cost is quadratic in window
	// volume, so a closed loop would race arbitrarily far ahead of the
	// triggers — the paper's driver likewise offers a fixed rate);
	// ClosedLoop forces maximum-rate closed-loop generation.
	OfferedRate float64
	ClosedLoop  bool
	// WindowLen/WindowSlide, when > 0, pin every generated time window to
	// exactly this length/slide (event-time ms) instead of the random draw —
	// the slide-ratio sweep (FigSlideSweep) controls the window/slide ratio
	// with these.
	WindowLen   int64
	WindowSlide int64
}

func (p *Params) setDefaults() {
	if p.Nodes <= 0 {
		p.Nodes = 1
	}
	if p.Parallelism <= 0 {
		p.Parallelism = cluster.ScaleParallelism(p.Nodes, 2)
	}
	if p.Scenario == "" {
		p.Scenario = "SC1"
	}
	if p.Compression <= 0 {
		p.Compression = 10
	}
	if p.Warmup <= 0 {
		p.Warmup = 300 * time.Millisecond
	}
	if p.Measure <= 0 {
		p.Measure = 700 * time.Millisecond
	}
	if p.Keys <= 0 {
		p.Keys = 1000
	}
	if p.QueriesPerSec <= 0 {
		p.QueriesPerSec = 1
	}
	if p.MaxParallelQ <= 0 {
		p.MaxParallelQ = 1
	}
	if p.BatchN <= 0 {
		p.BatchN = 10
	}
	if p.BatchEvery <= 0 {
		p.BatchEvery = 10 * time.Second
	}
	if p.OfferedRate <= 0 && !p.ClosedLoop {
		switch p.Kind {
		case JoinK, MixedK:
			p.OfferedRate = 25000
		case ComplexK:
			p.OfferedRate = 10000
		}
	}
}

// Label renders the workload in the paper's notation ("n q/s m qp" for SC1,
// "n q/m s" for SC2).
func (p Params) Label() string {
	if p.Scenario == "SC2" {
		return fmt.Sprintf("%dq/%.0fs", p.BatchN, p.BatchEvery.Seconds())
	}
	if p.MaxParallelQ == 1 {
		return "single query"
	}
	return fmt.Sprintf("%.0fq/s %dqp", p.QueriesPerSec, p.MaxParallelQ)
}

// Measurement is one run's results in the paper's metrics (§4.3).
type Measurement struct {
	Params        Params
	SlowestTupS   float64 // slowest (per-query input) data throughput
	OverallTupS   float64 // slowest × mean active queries
	ActiveQueries float64 // mean active queries during measurement
	EventTimeLat  time.Duration
	EventTimeP95  time.Duration
	DeployMean    time.Duration
	DeployMax     time.Duration
	Sustainable   bool
	// Component nanos (Fig 18, AStream only): sampled estimates.
	QuerySetGenNanos uint64
	BitsetNanos      uint64
	RouterCopyNanos  uint64
	// Results delivered per second (sanity signal).
	ResultsPerSec float64
}

// Row renders a one-line report.
func (m Measurement) Row() string {
	sus := "sustainable"
	if !m.Sustainable {
		sus = "UNSUSTAINABLE"
	}
	return fmt.Sprintf("%-8s %-7s %d-node %-14s slowest=%9.0f tup/s overall=%11.0f tup/s q=%6.1f lat=%8s deploy(mean=%s max=%s) %s",
		m.Params.System, m.Params.Kind, m.Params.Nodes, m.Params.Label(),
		m.SlowestTupS, m.OverallTupS, m.ActiveQueries,
		m.EventTimeLat.Round(time.Millisecond),
		m.DeployMean.Round(time.Millisecond), m.DeployMax.Round(time.Millisecond), sus)
}

// sut unifies the engines.
type sut = driver.SUT

func buildSUT(p Params) (sut, *core.Engine, error) {
	streams := p.Kind.streams()
	switch p.System {
	case Baseline:
		e, err := baseline.NewEngine(baseline.Config{
			Streams:        streams,
			Parallelism:    p.Parallelism,
			Nodes:          p.Nodes,
			WatermarkEvery: 10,
		})
		return e, nil, err
	default:
		e, err := core.NewEngine(core.Config{
			Streams:        streams,
			Parallelism:    p.Parallelism,
			Nodes:          p.Nodes,
			BatchSize:      100,
			BatchTimeout:   time.Duration(float64(time.Second) / p.Compression),
			WatermarkEvery: 10,
		})
		return e, e, err
	}
}

func queryGen(p Params) *gen.Queries {
	cfg := gen.DefaultQueryConfig(p.Kind.streams())
	// Event-times are wall milliseconds: windows of 200–2000 ms keep
	// triggers frequent at seconds-long runs.
	cfg.WindowMin = 200
	cfg.WindowMax = 2000
	if p.Kind != AggK {
		// Join windows are quadratic in window volume; keep them shorter.
		cfg.WindowMax = 800
	}
	cfg.FixedLength = p.WindowLen
	cfg.FixedSlide = p.WindowSlide
	return gen.NewQueries(cfg, p.Seed)
}

func nextQuery(g *gen.Queries, k QueryKind) *core.Query {
	switch k {
	case AggK:
		return g.Aggregation()
	case JoinK:
		return g.Join()
	case ComplexK:
		return g.Complex()
	default:
		return g.Mixed()
	}
}

// Run executes one scenario and reports the paper's metrics.
func Run(p Params) Measurement {
	p.setDefaults()
	s, eng, err := buildSUT(p)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	streams := p.Kind.streams()
	d := driver.New(driver.Config{Streams: streams, RequestBatch: 100}, s)
	d.StartPumps()

	qg := queryGen(p)
	var stopFlag atomic.Bool
	var wg sync.WaitGroup

	// Request scheduler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		scheduleRequests(p, d, qg, &stopFlag)
	}()
	// Request pump.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stopFlag.Load() {
			n, err := d.PumpRequests()
			if err != nil || n == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Data generation: event-time = wall ms since start.
	gens := make([]*gen.Data, streams)
	for i := range gens {
		gens[i] = gen.NewData(gen.DataConfig{Keys: p.Keys, FieldMax: 1000}, p.Seed+int64(i))
	}
	start := time.Now()
	deadline := start.Add(p.Warmup + p.Measure)
	var measStartIngest, measStartResults uint64
	var comps0 [3]uint64
	var activeSamples []float64
	var sustain metrics.Sustainability
	measuring := false
	var measStart time.Time
	nextSample := start.Add(50 * time.Millisecond)

	const batch = 64
	interval := time.Duration(0)
	if p.OfferedRate > 0 {
		interval = time.Duration(float64(time.Second) / p.OfferedRate * batch)
	}
	lastBatch := start
	var offered, dropped uint64
	for {
		now := time.Now()
		if now.After(deadline) {
			break
		}
		if !measuring && now.Sub(start) >= p.Warmup {
			measuring = true
			measStart = now
			measStartIngest = d.Ingested.Total()
			measStartResults = d.Results.Total()
			if eng != nil {
				om := eng.Metrics()
				comps0[0] = om.QuerySetGen.NanosEstimate()
				comps0[1] = om.BitsetOps.NanosEstimate()
				comps0[2] = om.RouterCopy.NanosEstimate()
			}
		}
		if now.After(nextSample) {
			nextSample = now.Add(50 * time.Millisecond)
			activeSamples = append(activeSamples, float64(s.ActiveQueries()))
			// Feed the sustainability detector only during the measured
			// steady state and only once latency samples exist: the ramp
			// phase legitimately grows latency.
			if measuring {
				if v := float64(d.EventTimeLat.Mean()); v > 0 {
					sustain.Observe(v)
				}
			}
		}
		at := event.Time(now.Sub(start).Milliseconds())
		if p.OfferedRate > 0 {
			// Open loop: 16-tuple batches on a fixed cadence; drops count
			// against sustainability.
			if now.Sub(lastBatch) < interval {
				time.Sleep(interval / 4)
				continue
			}
			lastBatch = now
			for i := 0; i < batch; i++ {
				for st := 0; st < streams; st++ {
					t := gens[st].Next(at)
					t.IngestNanos = now.UnixNano()
					offered++
					if !d.TryOfferTuple(st, t) {
						dropped++
					}
				}
			}
		} else {
			// Closed loop: blocking offers; backpressure sets the pace.
			for i := 0; i < 16; i++ {
				for st := 0; st < streams; st++ {
					t := gens[st].Next(at)
					t.IngestNanos = now.UnixNano()
					d.OfferTuple(st, t)
				}
			}
		}
	}
	stopFlag.Store(true)
	measured := time.Since(measStart)
	ingested := d.Ingested.Total() - measStartIngest
	results := d.Results.Total() - measStartResults
	// Component counters are captured at the measurement boundary, before
	// the drain adds post-measurement work.
	var comps [3]uint64
	if eng != nil {
		om := eng.Metrics()
		comps[0] = om.QuerySetGen.NanosEstimate() - comps0[0]
		comps[1] = om.BitsetOps.NanosEstimate() - comps0[1]
		comps[2] = om.RouterCopy.NanosEstimate() - comps0[2]
	}
	wg.Wait()
	d.Finish()

	perStream := float64(ingested) / float64(streams) / measured.Seconds()
	meanActive := 0.0
	for _, a := range activeSamples {
		meanActive += a
	}
	if len(activeSamples) > 0 {
		meanActive /= float64(len(activeSamples))
	}
	// Sustainable = latency did not keep growing at steady state, the
	// request queue drained, and (open loop) the SUT absorbed the offered
	// rate with at most 5 % drops.
	dropOK := offered == 0 || float64(dropped)/float64(offered) <= 0.05
	m := Measurement{
		Params:        p,
		SlowestTupS:   perStream,
		OverallTupS:   perStream * maxf(meanActive, 1),
		ActiveQueries: meanActive,
		EventTimeLat:  d.EventTimeLat.Mean(),
		EventTimeP95:  d.EventTimeLat.Quantile(0.95),
		DeployMean:    d.DeployLat.Mean(),
		DeployMax:     d.DeployLat.Max(),
		Sustainable:   sustain.Sustainable() && d.PendingRequests() == 0 && dropOK,
		ResultsPerSec: float64(results) / measured.Seconds(),
	}
	if eng != nil {
		m.QuerySetGenNanos = comps[0]
		m.BitsetNanos = comps[1]
		m.RouterCopyNanos = comps[2]
	}
	return m
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// scheduleRequests enqueues query churn per the scenario until stopped.
func scheduleRequests(p Params, d *driver.Driver, qg *gen.Queries, stop *atomic.Bool) {
	switch p.Scenario {
	case "SC2":
		// Create and delete BatchN queries every BatchEvery/Compression.
		period := time.Duration(float64(p.BatchEvery) / p.Compression)
		ord := 0
		liveFrom := 1
		for !stop.Load() {
			for i := 0; i < p.BatchN; i++ {
				d.EnqueueRequest(driver.Request{Query: nextQuery(qg, p.Kind)})
				ord++
			}
			// Delete the previous batch (after the first round).
			if ord > p.BatchN {
				for i := 0; i < p.BatchN; i++ {
					d.EnqueueRequest(driver.Request{StopOrdinal: liveFrom})
					liveFrom++
				}
			}
			sleepUnless(period, stop)
		}
	default: // SC1: ramp to MaxParallelQ, then hold.
		interval := time.Duration(float64(time.Second) / (p.QueriesPerSec * p.Compression))
		created := 0
		for !stop.Load() && created < p.MaxParallelQ {
			d.EnqueueRequest(driver.Request{Query: nextQuery(qg, p.Kind)})
			created++
			if interval > 0 {
				sleepUnless(interval, stop)
			}
		}
	}
}

func sleepUnless(d time.Duration, stop *atomic.Bool) {
	const step = time.Millisecond
	for waited := time.Duration(0); waited < d; waited += step {
		if stop.Load() {
			return
		}
		time.Sleep(step)
	}
}
