package experiments

import (
	"testing"
	"time"
)

// tinyScale keeps experiment tests fast.
func tinyScale() Scale {
	return Scale{Warmup: 80 * time.Millisecond, Measure: 200 * time.Millisecond}
}

func TestRunSC1AStreamAgg(t *testing.T) {
	sc := tinyScale()
	m := Run(apply(Params{Scenario: "SC1", QueriesPerSec: 100, MaxParallelQ: 20}, AggK, AStream, 1, sc, 1))
	if m.SlowestTupS <= 0 {
		t.Fatalf("no throughput measured: %+v", m)
	}
	if m.ActiveQueries < 1 {
		t.Fatalf("no active queries: %+v", m)
	}
	if m.OverallTupS < m.SlowestTupS {
		t.Fatalf("overall < slowest: %+v", m)
	}
	if m.Row() == "" {
		t.Fatal("empty row")
	}
}

func TestRunSC2AStreamJoin(t *testing.T) {
	sc := tinyScale()
	m := Run(apply(Params{Scenario: "SC2", BatchN: 5, BatchEvery: 2 * time.Second}, JoinK, AStream, 1, sc, 2))
	if m.SlowestTupS <= 0 {
		t.Fatalf("no throughput: %+v", m)
	}
}

func TestRunBaselineSingleQuery(t *testing.T) {
	sc := tinyScale()
	m := Run(apply(Params{Scenario: "SC1", MaxParallelQ: 1, QueriesPerSec: 1}, AggK, Baseline, 1, sc, 3))
	if m.SlowestTupS <= 0 {
		t.Fatalf("baseline no throughput: %+v", m)
	}
}

// TestSharingBeatsBaseline is the paper's headline claim at mini scale:
// with ~8 concurrent queries, AStream's overall query-serving throughput
// exceeds the baseline's, which degrades as the fork multiplies work.
func TestSharingBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive comparison")
	}
	sc := Scale{Warmup: 200 * time.Millisecond, Measure: 500 * time.Millisecond}
	p := Params{Scenario: "SC1", QueriesPerSec: 100, MaxParallelQ: 8}
	a := Run(apply(p, AggK, AStream, 1, sc, 4))
	b := Run(apply(p, AggK, Baseline, 1, sc, 4))
	if a.OverallTupS <= b.OverallTupS {
		t.Logf("astream: %s", a.Row())
		t.Logf("baseline: %s", b.Row())
		t.Fatalf("sharing did not win at 8 queries: astream overall %.0f vs baseline %.0f",
			a.OverallTupS, b.OverallTupS)
	}
}

func TestFig10Timeline(t *testing.T) {
	sc := tinyScale()
	pts := Fig10DeployTimeline(AStream, 5, sc)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, pt := range pts {
		if pt.Ordinal != i+1 {
			t.Fatalf("ordinals wrong: %+v", pts)
		}
	}
}

func TestFig16TimelinePhases(t *testing.T) {
	sc := Scale{Warmup: 50 * time.Millisecond, Measure: 120 * time.Millisecond}
	pts := Fig16Timeline(sc)
	if len(pts) != 6 {
		t.Fatalf("phases = %d, want 6", len(pts))
	}
	// Query count rises in phase 2 and falls in phase 3.
	if pts[1].Queries <= pts[0].Queries {
		t.Fatalf("phase 2 should add queries: %+v", pts[:2])
	}
	if pts[2].Queries >= pts[1].Queries {
		t.Fatalf("phase 3 should drop queries: %+v", pts[1:3])
	}
}

func TestFig18Shares(t *testing.T) {
	sc := tinyScale()
	shares := Fig18ComponentOverhead(sc, []int{4})
	if len(shares) != 1 {
		t.Fatalf("shares = %+v", shares)
	}
	s := shares[0]
	sum := s.QuerySetGen + s.Bitset + s.RouterC
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("component fractions sum to %.3f: %+v", sum, s)
	}
}

func TestFig19Impact(t *testing.T) {
	sc := tinyScale()
	pts := Fig19Impact(sc, "SC1", []int{5}, []int{5})
	if len(pts) != 1 || pts[0].BeforeTupS <= 0 || pts[0].AfterTupS <= 0 {
		t.Fatalf("impact = %+v", pts)
	}
}

func TestParamsLabel(t *testing.T) {
	p := Params{Scenario: "SC1", QueriesPerSec: 10, MaxParallelQ: 60}
	if p.Label() != "10q/s 60qp" {
		t.Fatalf("label = %q", p.Label())
	}
	p2 := Params{Scenario: "SC2", BatchN: 50, BatchEvery: 10 * time.Second}
	if p2.Label() != "50q/10s" {
		t.Fatalf("label = %q", p2.Label())
	}
	p3 := Params{Scenario: "SC1", MaxParallelQ: 1}
	if p3.Label() != "single query" {
		t.Fatalf("label = %q", p3.Label())
	}
}
