package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"astream/internal/event"
)

func tup(key int64, fields ...int64) event.Tuple {
	t := event.Tuple{Key: key}
	copy(t.Fields[:], fields)
	return t
}

func TestOpCompare(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{LT, 1, 2, true}, {LT, 2, 2, false}, {LT, 3, 2, false},
		{GT, 3, 2, true}, {GT, 2, 2, false},
		{EQ, 2, 2, true}, {EQ, 1, 2, false},
		{LE, 2, 2, true}, {LE, 3, 2, false},
		{GE, 2, 2, true}, {GE, 1, 2, false},
		{NE, 1, 2, true}, {NE, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Compare(c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestParseOp(t *testing.T) {
	for s, want := range map[string]Op{
		"<": LT, ">": GT, "=": EQ, "==": EQ, "<=": LE, ">=": GE, "!=": NE, "<>": NE,
	} {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseOp("=<"); err == nil {
		t.Error("ParseOp should reject unknown operators")
	}
}

func TestComparisonEval(t *testing.T) {
	tu := tup(42, 10, 20, 30, 40, 50)
	if !(Comparison{Field: 2, Op: EQ, Value: 30}).Eval(&tu) {
		t.Error("f2 == 30 should hold")
	}
	if (Comparison{Field: 0, Op: GT, Value: 10}).Eval(&tu) {
		t.Error("f0 > 10 should not hold")
	}
	if !(Comparison{Field: KeyField, Op: EQ, Value: 42}).Eval(&tu) {
		t.Error("key == 42 should hold")
	}
}

func TestPredicateConjunction(t *testing.T) {
	tu := tup(1, 5, 6, 7, 8, 9)
	p := True().
		And(Comparison{Field: 0, Op: GE, Value: 5}).
		And(Comparison{Field: 4, Op: LT, Value: 10})
	if !p.Eval(&tu) {
		t.Error("conjunction should hold")
	}
	p2 := p.And(Comparison{Field: 1, Op: EQ, Value: 0})
	if p2.Eval(&tu) {
		t.Error("conjunction with false clause should fail")
	}
	// And must not mutate the receiver.
	if len(p.Conj) != 2 {
		t.Error("And mutated receiver")
	}
}

func TestTruePredicate(t *testing.T) {
	tu := tup(0)
	if !True().Eval(&tu) {
		t.Error("empty predicate must be TRUE")
	}
	if True().String() != "TRUE" {
		t.Error("True().String() should be TRUE")
	}
}

func TestValidate(t *testing.T) {
	if err := (Comparison{Field: event.NumFields, Op: LT, Value: 1}).Validate(); err == nil {
		t.Error("out-of-range field must fail validation")
	}
	if err := (Comparison{Field: KeyField, Op: LT, Value: 1}).Validate(); err != nil {
		t.Errorf("key field must validate: %v", err)
	}
	bad := True().And(Comparison{Field: 99, Op: LT, Value: 1})
	if err := bad.Validate(); err == nil {
		t.Error("predicate with bad comparison must fail validation")
	}
}

func TestSelectivityEstimateAgainstSampling(t *testing.T) {
	const fieldMax = 1000
	rng := rand.New(rand.NewSource(17))
	preds := []Predicate{
		True().And(Comparison{Field: 0, Op: LT, Value: 500}),
		True().And(Comparison{Field: 1, Op: GE, Value: 900}),
		True().And(Comparison{Field: 0, Op: LT, Value: 500}).And(Comparison{Field: 1, Op: LT, Value: 500}),
	}
	for _, p := range preds {
		n, hit := 20000, 0
		for i := 0; i < n; i++ {
			tu := event.Tuple{}
			for f := 0; f < event.NumFields; f++ {
				tu.Fields[f] = rng.Int63n(fieldMax)
			}
			if p.Eval(&tu) {
				hit++
			}
		}
		got := float64(hit) / float64(n)
		want := p.Selectivity(fieldMax)
		if diff := got - want; diff > 0.03 || diff < -0.03 {
			t.Errorf("predicate %s: sampled selectivity %.3f vs estimate %.3f", p, got, want)
		}
	}
}

func TestQuickOppositeOpsPartition(t *testing.T) {
	// For any tuple and threshold: (< v) xor (>= v) is always true.
	f := func(key int64, f0 int64, v int64) bool {
		tu := tup(key, f0)
		lt := Comparison{Field: 0, Op: LT, Value: v}.Eval(&tu)
		ge := Comparison{Field: 0, Op: GE, Value: v}.Eval(&tu)
		return lt != ge
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPredicateOrderIrrelevant(t *testing.T) {
	f := func(key, f0, f1, v0, v1 int64) bool {
		tu := tup(key, f0, f1)
		c0 := Comparison{Field: 0, Op: LE, Value: v0}
		c1 := Comparison{Field: 1, Op: GT, Value: v1}
		a := True().And(c0).And(c1)
		b := True().And(c1).And(c0)
		return a.Eval(&tu) == b.Eval(&tu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	c := Comparison{Field: 3, Op: GE, Value: 7}
	if c.String() != "f3 >= 7" {
		t.Errorf("String() = %q", c.String())
	}
	k := Comparison{Field: KeyField, Op: EQ, Value: 9}
	if k.String() != "key == 9" {
		t.Errorf("String() = %q", k.String())
	}
}
