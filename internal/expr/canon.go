package expr

import (
	"fmt"
	"math"
	"sort"

	"astream/internal/event"
)

// This file lowers predicates (conjunctions of comparisons) into a canonical
// per-field interval form. The canonical form is what makes multi-query
// optimization of the shared selection possible: structurally equal
// predicates become byte-equal keys (dedup), implication between predicates
// becomes interval containment (the pruning lattice), and single-field
// predicates become dispatchable intervals (hash/stab indexes). The integer
// field domain means every comparison is an interval: f < v is f ∈
// [MinInt64, v-1], f == v is f ∈ [v, v], and so on; a conjunction intersects
// the per-field intervals. NE comparisons become "holes" — excluded points
// strictly inside the interval (holes touching an endpoint tighten the
// endpoint instead, so the representation is unique).

// Interval is a closed integer interval [Lo, Hi]. Lo > Hi never occurs in a
// canonical constraint (such predicates canonicalize to False).
type Interval struct {
	Lo, Hi int64
}

// Unbounded reports whether the interval covers the whole int64 domain.
func (iv Interval) Unbounded() bool {
	return iv.Lo == math.MinInt64 && iv.Hi == math.MaxInt64
}

// ContainsValue reports whether v lies in the interval.
func (iv Interval) ContainsValue(v int64) bool { return v >= iv.Lo && v <= iv.Hi }

// FieldConstraint restricts one tuple column to an interval minus holes.
type FieldConstraint struct {
	// Field is the payload field index, or KeyField for the tuple key.
	Field int
	Iv    Interval
	// Holes are excluded points, sorted ascending, each strictly inside
	// (Lo, Hi). Only NE comparisons produce holes; the paper's templates
	// never do.
	Holes []int64
}

// accepts reports whether v satisfies the constraint.
func (fc *FieldConstraint) accepts(v int64) bool {
	if v < fc.Iv.Lo || v > fc.Iv.Hi {
		return false
	}
	for _, h := range fc.Holes {
		if h >= v {
			return h != v
		}
	}
	return true
}

// Canonical is the normal form of a conjunction of comparisons: one
// constraint per referenced field, sorted by field index (KeyField first),
// with redundant comparisons merged and contradictions collapsed into False.
// Two predicates accept the same tuples on every field they constrain iff
// their Canonicals are structurally equal (compare via AppendKey).
type Canonical struct {
	// Constraints is sorted by Field; fields whose accumulated interval is
	// the whole domain with no holes are dropped entirely.
	Constraints []FieldConstraint
	// False marks a contradictory conjunction (A > 5 AND A < 3): no tuple
	// matches, so the predicate can be excluded from evaluation.
	False bool
}

// AlwaysTrue reports whether the canonical form accepts every tuple.
func (c *Canonical) AlwaysTrue() bool { return !c.False && len(c.Constraints) == 0 }

// Canonicalize lowers a predicate into canonical interval form. It fails
// only when a comparison references a field outside the tuple layout — such
// predicates can panic during naive evaluation (data-dependently, when an
// earlier conjunct does not short-circuit first), so callers must keep them
// on a guarded per-entry path instead of the index.
func Canonicalize(p Predicate) (Canonical, error) {
	// Accumulator slot 0 is KeyField, slot f+1 is payload field f.
	type acc struct {
		iv    Interval
		holes []int64
		used  bool
	}
	var accs [event.NumFields + 1]acc
	alwaysFalse := false
	for _, cmp := range p.Conj {
		if err := cmp.Validate(); err != nil {
			return Canonical{}, err
		}
		a := &accs[cmp.Field+1]
		if !a.used {
			a.iv = Interval{Lo: math.MinInt64, Hi: math.MaxInt64}
			a.used = true
		}
		switch cmp.Op {
		case LT:
			if cmp.Value == math.MinInt64 {
				alwaysFalse = true
			} else if cmp.Value-1 < a.iv.Hi {
				a.iv.Hi = cmp.Value - 1
			}
		case LE:
			if cmp.Value < a.iv.Hi {
				a.iv.Hi = cmp.Value
			}
		case GT:
			if cmp.Value == math.MaxInt64 {
				alwaysFalse = true
			} else if cmp.Value+1 > a.iv.Lo {
				a.iv.Lo = cmp.Value + 1
			}
		case GE:
			if cmp.Value > a.iv.Lo {
				a.iv.Lo = cmp.Value
			}
		case EQ:
			if cmp.Value > a.iv.Lo {
				a.iv.Lo = cmp.Value
			}
			if cmp.Value < a.iv.Hi {
				a.iv.Hi = cmp.Value
			}
		case NE:
			a.holes = append(a.holes, cmp.Value)
		default:
			// Op.Compare returns false for unknown operators, so the naive
			// evaluation of such a predicate matches nothing: exactly False.
			alwaysFalse = true
		}
	}
	if alwaysFalse {
		return Canonical{False: true}, nil
	}
	var out Canonical
	for slot := range accs {
		a := &accs[slot]
		if !a.used {
			continue
		}
		fc, empty := normalizeConstraint(slot-1, a.iv, a.holes)
		if empty {
			return Canonical{False: true}, nil
		}
		if fc.Iv.Unbounded() && len(fc.Holes) == 0 {
			continue // unconstrained after normalization
		}
		out.Constraints = append(out.Constraints, fc)
	}
	return out, nil
}

// normalizeConstraint produces the unique form of one field's constraint:
// holes are sorted and deduplicated, holes at or beyond an endpoint tighten
// the endpoint (over the integer domain [5,9] minus {5} is [6,9]), and an
// interval consumed entirely by holes reports empty.
func normalizeConstraint(field int, iv Interval, holes []int64) (FieldConstraint, bool) {
	if iv.Lo > iv.Hi {
		return FieldConstraint{}, true
	}
	if len(holes) == 0 {
		return FieldConstraint{Field: field, Iv: iv}, false
	}
	sort.Slice(holes, func(i, j int) bool { return holes[i] < holes[j] })
	dst := holes[:0]
	for i, h := range holes {
		if i == 0 || h != dst[len(dst)-1] {
			dst = append(dst, h)
		}
	}
	holes = dst
	// Trim the lower endpoint past any run of holes starting at Lo.
	i := 0
	for i < len(holes) && holes[i] < iv.Lo {
		i++
	}
	for i < len(holes) && holes[i] == iv.Lo {
		if iv.Lo == iv.Hi {
			return FieldConstraint{}, true
		}
		iv.Lo++
		i++
	}
	// Trim the upper endpoint past any run of holes ending at Hi.
	j := len(holes)
	for j > i && holes[j-1] > iv.Hi {
		j--
	}
	for j > i && holes[j-1] == iv.Hi {
		if iv.Lo == iv.Hi {
			return FieldConstraint{}, true
		}
		iv.Hi--
		j--
	}
	kept := holes[i:j]
	if len(kept) == 0 {
		kept = nil
	}
	return FieldConstraint{Field: field, Iv: iv, Holes: kept}, false
}

// Match evaluates the canonical form against a tuple. For canonicalizable
// predicates Match(t) == Predicate.Eval(t) for every tuple (the agreement is
// property-tested); unlike Eval it cannot panic, which is what lets the
// shared-selection index evaluate deduplicated predicates outside the
// per-entry panic isolation boundary.
//
//lint:hotpath
func (c *Canonical) Match(t *event.Tuple) bool {
	if c.False {
		return false
	}
	for i := range c.Constraints {
		fc := &c.Constraints[i]
		var v int64
		if fc.Field == KeyField {
			v = t.Key
		} else {
			v = t.Fields[fc.Field]
		}
		if v < fc.Iv.Lo || v > fc.Iv.Hi {
			return false
		}
		for _, h := range fc.Holes {
			if h >= v {
				if h == v {
					return false
				}
				break
			}
		}
	}
	return true
}

// Contains reports whether every tuple accepted by o is accepted by c
// (canon(o) ⊆ canon(c), i.e. o implies c). This is the containment relation
// of the pruning lattice: when the weaker c fails on a tuple, every
// predicate it contains fails too and the whole subtree is skipped. The
// check is exact, not an approximation: accepted sets are per-field
// products, both are non-empty when not False, so set containment reduces
// to per-field interval-minus-holes containment.
func (c *Canonical) Contains(o *Canonical) bool {
	if o.False {
		return true
	}
	if c.False {
		return false
	}
	oi := 0
	for i := range c.Constraints {
		cc := &c.Constraints[i]
		for oi < len(o.Constraints) && o.Constraints[oi].Field < cc.Field {
			oi++
		}
		if oi >= len(o.Constraints) || o.Constraints[oi].Field != cc.Field {
			// c constrains a field o leaves free: o accepts values outside
			// cc (cc is never the full domain — those are dropped).
			return false
		}
		oc := &o.Constraints[oi]
		if oc.Iv.Lo < cc.Iv.Lo || oc.Iv.Hi > cc.Iv.Hi {
			return false
		}
		// Every point c excludes inside o's interval must be excluded by o
		// too; c's holes outside o's interval are already unreachable.
		for _, h := range cc.Holes {
			if h < oc.Iv.Lo || h > oc.Iv.Hi {
				continue
			}
			if !hasHole(oc.Holes, h) {
				return false
			}
		}
	}
	return true
}

func hasHole(holes []int64, v int64) bool {
	for _, h := range holes {
		if h == v {
			return true
		}
		if h > v {
			return false
		}
	}
	return false
}

// AppendKey appends a canonical byte encoding to dst and returns it. Two
// predicates have equal keys iff their canonical forms are structurally
// equal, so string(c.AppendKey(nil)) is the dedup map key. The encoding is
// length-unambiguous: a constraint count, then per constraint the field,
// endpoints, hole count, and holes, all fixed-width little-endian.
func (c *Canonical) AppendKey(dst []byte) []byte {
	if c.False {
		return append(dst, 0xFF)
	}
	dst = append(dst, byte(len(c.Constraints)))
	for i := range c.Constraints {
		fc := &c.Constraints[i]
		dst = appendI64(dst, int64(fc.Field))
		dst = appendI64(dst, fc.Iv.Lo)
		dst = appendI64(dst, fc.Iv.Hi)
		dst = appendI64(dst, int64(len(fc.Holes)))
		for _, h := range fc.Holes {
			dst = appendI64(dst, h)
		}
	}
	return dst
}

func appendI64(dst []byte, v int64) []byte {
	u := uint64(v)
	return append(dst,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// Selectivity estimates the accepted fraction of tuples whose fields are
// uniform over [0, fieldMax), mirroring Predicate.Selectivity but computed
// from the canonical intervals (so deduplicated nodes don't need the
// original predicate). The pruning lattice orders siblings weakest-first by
// this estimate.
func (c *Canonical) Selectivity(fieldMax int64) float64 {
	if c.False {
		return 0
	}
	if fieldMax <= 0 {
		return 1
	}
	sel := 1.0
	for i := range c.Constraints {
		fc := &c.Constraints[i]
		lo, hi := fc.Iv.Lo, fc.Iv.Hi
		if lo < 0 {
			lo = 0
		}
		if hi > fieldMax-1 {
			hi = fieldMax - 1
		}
		if lo > hi {
			return 0
		}
		width := float64(hi-lo+1)
		for _, h := range fc.Holes {
			if h >= lo && h <= hi {
				width--
			}
		}
		sel *= width / float64(fieldMax)
	}
	return sel
}

func (c Canonical) String() string {
	if c.False {
		return "FALSE"
	}
	if len(c.Constraints) == 0 {
		return "TRUE"
	}
	s := ""
	for i := range c.Constraints {
		fc := &c.Constraints[i]
		if i > 0 {
			s += " AND "
		}
		name := fmt.Sprintf("f%d", fc.Field)
		if fc.Field == KeyField {
			name = "key"
		}
		s += fmt.Sprintf("%s∈[%d,%d]", name, fc.Iv.Lo, fc.Iv.Hi)
		if len(fc.Holes) > 0 {
			s += fmt.Sprintf("\\%v", fc.Holes)
		}
	}
	return s
}
