package expr

import (
	"math"
	"math/rand"
	"testing"

	"astream/internal/event"
)

// randPredicate draws a conjunction of 0..4 comparisons with valid fields.
// Values cluster in a small domain so contradictions, redundancy, and exact
// endpoint collisions actually occur.
func randPredicate(r *rand.Rand) Predicate {
	p := True()
	n := r.Intn(5)
	for i := 0; i < n; i++ {
		field := r.Intn(event.NumFields+1) - 1 // KeyField..NumFields-1
		p = p.And(Comparison{
			Field: field,
			Op:    Op(r.Intn(6)),
			Value: int64(r.Intn(20)),
		})
	}
	return p
}

func randTuple(r *rand.Rand) event.Tuple {
	t := event.Tuple{Key: int64(r.Intn(20))}
	for f := range t.Fields {
		t.Fields[f] = int64(r.Intn(20))
	}
	return t
}

// TestCanonicalMatchAgreesWithEval is the core soundness property: for every
// canonicalizable predicate, Match on the canonical form and naive Eval
// accept exactly the same tuples.
func TestCanonicalMatchAgreesWithEval(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		p := randPredicate(r)
		c, err := Canonicalize(p)
		if err != nil {
			t.Fatalf("Canonicalize(%v): %v", p, err)
		}
		for i := 0; i < 20; i++ {
			tu := randTuple(r)
			want := p.Eval(&tu)
			got := c.Match(&tu)
			if got != want {
				t.Fatalf("predicate %v canon %v tuple %+v: Match=%v Eval=%v",
					p, c, tu, got, want)
			}
			if c.False && want {
				t.Fatalf("predicate %v canonicalized False but Eval matched %+v", p, tu)
			}
		}
	}
}

// TestCanonicalizeRejectsInvalidField: out-of-range fields are the one class
// the index must leave on the guarded path, so Canonicalize must refuse them
// no matter where they sit in the conjunction.
func TestCanonicalizeRejectsInvalidField(t *testing.T) {
	bad := []Predicate{
		True().And(Comparison{Field: event.NumFields, Op: LT, Value: 5}),
		True().And(Comparison{Field: -2, Op: EQ, Value: 5}),
		// Invalid field behind a contradiction: still rejected — naive eval
		// could panic on tuples that reach it.
		True().
			And(Comparison{Field: 0, Op: LT, Value: 3}).
			And(Comparison{Field: 0, Op: GT, Value: 5}).
			And(Comparison{Field: 99, Op: LT, Value: 5}),
	}
	for _, p := range bad {
		if _, err := Canonicalize(p); err == nil {
			t.Errorf("Canonicalize(%v): want error, got nil", p)
		}
	}
}

func mustCanon(t *testing.T, p Predicate) Canonical {
	t.Helper()
	c, err := Canonicalize(p)
	if err != nil {
		t.Fatalf("Canonicalize(%v): %v", p, err)
	}
	return c
}

// TestCanonicalizeNormalization checks the normal form directly: redundancy
// merged, contradictions collapsed, endpoint holes trimmed.
func TestCanonicalizeNormalization(t *testing.T) {
	// A > 5 AND A > 3 → A ∈ [6, ∞].
	c := mustCanon(t, True().
		And(Comparison{Field: 0, Op: GT, Value: 5}).
		And(Comparison{Field: 0, Op: GT, Value: 3}))
	if len(c.Constraints) != 1 || c.Constraints[0].Iv.Lo != 6 || c.Constraints[0].Iv.Hi != math.MaxInt64 {
		t.Fatalf("A>5 AND A>3 → %v", c)
	}
	// A > 5 AND A < 3 → False.
	if c := mustCanon(t, True().
		And(Comparison{Field: 0, Op: GT, Value: 5}).
		And(Comparison{Field: 0, Op: LT, Value: 3})); !c.False {
		t.Fatalf("A>5 AND A<3 → %v, want False", c)
	}
	// A < MinInt64 is unsatisfiable.
	if c := mustCanon(t, True().And(Comparison{Field: 0, Op: LT, Value: math.MinInt64})); !c.False {
		t.Fatalf("A < MinInt64 → %v, want False", c)
	}
	// Unknown op never matches under Op.Compare → False.
	if c := mustCanon(t, True().And(Comparison{Field: 0, Op: Op(99), Value: 5})); !c.False {
		t.Fatalf("unknown op → %v, want False", c)
	}
	// A >= 5 AND A <= 9 AND A != 5 AND A != 9 AND A != 7 → [6,8] \ {7}.
	c = mustCanon(t, True().
		And(Comparison{Field: 0, Op: GE, Value: 5}).
		And(Comparison{Field: 0, Op: LE, Value: 9}).
		And(Comparison{Field: 0, Op: NE, Value: 5}).
		And(Comparison{Field: 0, Op: NE, Value: 9}).
		And(Comparison{Field: 0, Op: NE, Value: 7}))
	fc := c.Constraints[0]
	if fc.Iv != (Interval{6, 8}) || len(fc.Holes) != 1 || fc.Holes[0] != 7 {
		t.Fatalf("holes at endpoints → %v", c)
	}
	// A == 5 AND A != 5 → False (hole consumes the point interval).
	if c := mustCanon(t, True().
		And(Comparison{Field: 0, Op: EQ, Value: 5}).
		And(Comparison{Field: 0, Op: NE, Value: 5})); !c.False {
		t.Fatalf("A==5 AND A!=5 → %v, want False", c)
	}
	// A != 5 alone: domain-wide interval with a hole is kept, not dropped.
	c = mustCanon(t, True().And(Comparison{Field: 0, Op: NE, Value: 5}))
	if len(c.Constraints) != 1 || len(c.Constraints[0].Holes) != 1 {
		t.Fatalf("A!=5 → %v", c)
	}
	// TRUE canonicalizes to the empty constraint list.
	if c := mustCanon(t, True()); !c.AlwaysTrue() {
		t.Fatalf("TRUE → %v", c)
	}
	// KeyField sorts first.
	c = mustCanon(t, True().
		And(Comparison{Field: 2, Op: LT, Value: 9}).
		And(Comparison{Field: KeyField, Op: GT, Value: 1}))
	if c.Constraints[0].Field != KeyField || c.Constraints[1].Field != 2 {
		t.Fatalf("field order → %v", c)
	}
}

// TestAppendKeyEquivalence: equal keys ⇔ structurally equal canonical forms,
// and semantically equal predicates written differently converge to one key.
func TestAppendKeyEquivalence(t *testing.T) {
	key := func(p Predicate) string {
		c := mustCanon(t, p)
		return string(c.AppendKey(nil))
	}
	// A > 5 ≡ A >= 6 ≡ A > 5 AND A > 3.
	k1 := key(True().And(Comparison{Field: 1, Op: GT, Value: 5}))
	k2 := key(True().And(Comparison{Field: 1, Op: GE, Value: 6}))
	k3 := key(True().
		And(Comparison{Field: 1, Op: GT, Value: 5}).
		And(Comparison{Field: 1, Op: GT, Value: 3}))
	if k1 != k2 || k1 != k3 {
		t.Fatalf("equivalent predicates got distinct keys")
	}
	if key(True().And(Comparison{Field: 1, Op: GT, Value: 6})) == k1 {
		t.Fatalf("distinct predicates share a key")
	}
	// Conjunct order doesn't matter.
	ka := key(True().
		And(Comparison{Field: 0, Op: LT, Value: 9}).
		And(Comparison{Field: 3, Op: GE, Value: 2}))
	kb := key(True().
		And(Comparison{Field: 3, Op: GE, Value: 2}).
		And(Comparison{Field: 0, Op: LT, Value: 9}))
	if ka != kb {
		t.Fatalf("conjunct order changed the key")
	}
	// Property: equal keys imply identical acceptance on random samples.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		p1, p2 := randPredicate(r), randPredicate(r)
		c1, c2 := mustCanon(t, p1), mustCanon(t, p2)
		if string(c1.AppendKey(nil)) != string(c2.AppendKey(nil)) {
			continue
		}
		for i := 0; i < 50; i++ {
			tu := randTuple(r)
			if p1.Eval(&tu) != p2.Eval(&tu) {
				t.Fatalf("key-equal predicates disagree: %v vs %v on %+v", p1, p2, tu)
			}
		}
	}
}

// TestContainsSoundness: Contains must never claim containment that random
// sampling can falsify (that would make the lattice prune live predicates),
// and must detect the constructed containments the lattice relies on.
func TestContainsSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	checked, held := 0, 0
	for trial := 0; trial < 4000; trial++ {
		cp := mustCanon(t, randPredicate(r))
		op := mustCanon(t, randPredicate(r))
		if !cp.Contains(&op) {
			continue
		}
		held++
		for i := 0; i < 60; i++ {
			tu := randTuple(r)
			if op.Match(&tu) && !cp.Match(&tu) {
				t.Fatalf("Contains claimed %v ⊇ %v but tuple %+v matches only the contained",
					cp, op, tu)
			}
			checked++
		}
	}
	if held == 0 {
		t.Fatalf("no containment pairs sampled; property vacuous (checked %d)", checked)
	}
	// Constructed cases the lattice depends on.
	wide := mustCanon(t, True().And(Comparison{Field: 0, Op: GE, Value: 10}))
	narrow := mustCanon(t, True().
		And(Comparison{Field: 0, Op: GE, Value: 10}).
		And(Comparison{Field: 1, Op: LT, Value: 5}))
	if !wide.Contains(&narrow) {
		t.Fatalf("adding a conjunct must stay contained")
	}
	if narrow.Contains(&wide) {
		t.Fatalf("containment direction reversed")
	}
	falseC := mustCanon(t, True().
		And(Comparison{Field: 0, Op: GT, Value: 5}).
		And(Comparison{Field: 0, Op: LT, Value: 3}))
	if !wide.Contains(&falseC) {
		t.Fatalf("everything contains False")
	}
	if falseC.Contains(&wide) {
		t.Fatalf("False contains nothing non-empty")
	}
	holey := mustCanon(t, True().And(Comparison{Field: 0, Op: NE, Value: 7}))
	any := mustCanon(t, True())
	if !any.Contains(&holey) {
		t.Fatalf("TRUE contains everything")
	}
	if holey.Contains(&any) {
		t.Fatalf("A!=7 must not contain TRUE")
	}
}

// TestCanonicalSelectivity sanity-checks the lattice ordering estimate.
func TestCanonicalSelectivity(t *testing.T) {
	wide := mustCanon(t, True().And(Comparison{Field: 0, Op: LT, Value: 900}))
	narrow := mustCanon(t, True().And(Comparison{Field: 0, Op: LT, Value: 100}))
	if wide.Selectivity(1000) <= narrow.Selectivity(1000) {
		t.Fatalf("wider interval must estimate higher selectivity")
	}
	tr := mustCanon(t, True())
	if got := tr.Selectivity(1000); got != 1 {
		t.Fatalf("TRUE selectivity = %v, want 1", got)
	}
	f := mustCanon(t, True().
		And(Comparison{Field: 0, Op: GT, Value: 5}).
		And(Comparison{Field: 0, Op: LT, Value: 3}))
	if got := f.Selectivity(1000); got != 0 {
		t.Fatalf("False selectivity = %v, want 0", got)
	}
}
