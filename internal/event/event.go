// Package event defines the data model that flows through the engine: tuples
// with event-time timestamps, watermarks, and the stream-element envelope
// that carries them (plus changelog markers and checkpoint barriers) through
// operator channels.
//
// The tuple layout follows the paper's workload (§4.2.1): a join key and an
// array of NumFields integer fields. Every tuple additionally carries the
// query-set column that AStream appends (§2.1.1); for the query-at-a-time
// baseline the query-set is simply unused.
package event

import (
	"fmt"
	"time"

	"astream/internal/bitset"
)

// NumFields is the number of payload fields per tuple, matching the paper's
// generator (|fields| = 5).
const NumFields = 5

// Time is an event-time instant in milliseconds since the stream epoch.
// Event-time, not wall-clock, drives windows, slices, and changelogs so that
// replays are deterministic (paper §3.3).
type Time int64

// MinTime and MaxTime bound the event-time domain.
const (
	MinTime Time = -1 << 62
	MaxTime Time = 1<<62 - 1
)

// Millis converts an event-time instant to a time.Duration since epoch.
func (t Time) Millis() int64 { return int64(t) }

// Duration converts to a wall-clock duration (for reporting only).
func (t Time) Duration() time.Duration { return time.Duration(t) * time.Millisecond }

func (t Time) String() string { return fmt.Sprintf("t%d", int64(t)) }

// Tuple is one stream record.
type Tuple struct {
	// Key partitions the stream; joins equate keys and aggregations group
	// by key (paper Figures 7 and 8).
	Key int64
	// Fields holds the generated payload; selection predicates reference
	// Fields[i].
	Fields [NumFields]int64
	// Time is the tuple's event-time.
	Time Time
	// QuerySet identifies the queries interested in this tuple. Populated
	// by the shared selection operator; empty until then.
	QuerySet bitset.Bits
	// IngestNanos records the wall-clock nanosecond the tuple entered the
	// system; sinks use it to measure end-to-end latency (paper §3.4
	// samples latency at sinks). Zero when latency tracking is off.
	IngestNanos int64
	// Stream tags which logical input stream the tuple belongs to (0 = A,
	// 1 = B) for binary operators.
	Stream uint8
}

// Kind discriminates stream elements.
type Kind uint8

const (
	// KindTuple carries a data tuple.
	KindTuple Kind = iota
	// KindWatermark asserts that no tuple with Time <= Watermark will
	// arrive on this channel afterwards.
	KindWatermark
	// KindChangelog carries a query workload change; it is woven into the
	// stream at a definite event-time so replays reproduce it (paper
	// §3.3).
	KindChangelog
	// KindBarrier is a checkpoint barrier (aligned snapshotting).
	KindBarrier
	// KindEOS marks the end of the stream; operators flush and forward.
	KindEOS
)

func (k Kind) String() string {
	switch k {
	case KindTuple:
		return "tuple"
	case KindWatermark:
		return "watermark"
	case KindChangelog:
		return "changelog"
	case KindBarrier:
		return "barrier"
	case KindEOS:
		return "eos"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Element is the envelope traveling through operator channels. Exactly one
// payload is meaningful, selected by Kind. It is passed by value: small, no
// interior pointers except the query-set words and the changelog pointer.
type Element struct {
	Kind      Kind
	Tuple     Tuple
	Watermark Time
	// Changelog is an opaque payload owned by package changelog; typed as
	// interface-free pointer to avoid an import cycle.
	Changelog any
	// Barrier identifies the checkpoint this barrier belongs to.
	Barrier uint64
}

// NewTuple wraps a tuple in an element.
func NewTuple(t Tuple) Element { return Element{Kind: KindTuple, Tuple: t} }

// NewWatermark makes a watermark element.
func NewWatermark(t Time) Element { return Element{Kind: KindWatermark, Watermark: t} }

// NewChangelog wraps a changelog payload with its event time carried in
// Watermark position semantics (the changelog itself knows its time; the
// field here is informational for operators that only need ordering).
func NewChangelog(payload any, at Time) Element {
	return Element{Kind: KindChangelog, Changelog: payload, Watermark: at}
}

// NewBarrier makes a checkpoint barrier element.
func NewBarrier(id uint64) Element { return Element{Kind: KindBarrier, Barrier: id} }

// EOS is the end-of-stream element.
func EOS() Element { return Element{Kind: KindEOS} }

// JoinedTuple is the output of a join: the two sides' payloads plus the
// intersected query-set. It is re-encoded as a Tuple whose fields are taken
// from the left side and whose key is the shared join key, with the right
// side's fields available via Right.
type JoinedTuple struct {
	Key      int64
	Left     [NumFields]int64
	Right    [NumFields]int64
	Time     Time // max of the two sides' event-times
	QuerySet bitset.Bits
	// IngestNanos is the freshest contributing tuple's ingestion time.
	IngestNanos int64
}

// AsTuple flattens a join result back into a Tuple (left fields win); used
// when a join feeds another shared operator downstream (shared n-ary joins,
// paper §3.1.5).
func (j JoinedTuple) AsTuple() Tuple {
	return Tuple{Key: j.Key, Fields: j.Left, Time: j.Time, QuerySet: j.QuerySet, IngestNanos: j.IngestNanos}
}

// AggResult is one windowed aggregation output row: per query, per group key,
// the aggregate value over the query's window ending at WindowEnd.
type AggResult struct {
	QueryID     int
	Key         int64
	Value       int64
	WindowStart Time
	WindowEnd   Time
}

// JoinResult is one windowed join output row addressed to a single query.
type JoinResult struct {
	QueryID     int
	Joined      JoinedTuple
	WindowStart Time
	WindowEnd   Time
}
