package event

import (
	"testing"
	"time"

	"astream/internal/bitset"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindTuple:     "tuple",
		KindWatermark: "watermark",
		KindChangelog: "changelog",
		KindBarrier:   "barrier",
		KindEOS:       "eos",
		Kind(99):      "kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(k), k.String(), want)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500)
	if tm.Millis() != 1500 {
		t.Fatal("Millis")
	}
	if tm.Duration() != 1500*time.Millisecond {
		t.Fatal("Duration")
	}
	if tm.String() != "t1500" {
		t.Fatalf("String = %q", tm.String())
	}
	if MinTime >= 0 || MaxTime <= 0 || MinTime >= MaxTime {
		t.Fatal("time bounds")
	}
}

func TestElementConstructors(t *testing.T) {
	tu := Tuple{Key: 1, Time: 5}
	if e := NewTuple(tu); e.Kind != KindTuple || e.Tuple.Key != 1 {
		t.Fatal("NewTuple")
	}
	if e := NewWatermark(9); e.Kind != KindWatermark || e.Watermark != 9 {
		t.Fatal("NewWatermark")
	}
	if e := NewBarrier(3); e.Kind != KindBarrier || e.Barrier != 3 {
		t.Fatal("NewBarrier")
	}
	if e := EOS(); e.Kind != KindEOS {
		t.Fatal("EOS")
	}
	payload := struct{ X int }{7}
	if e := NewChangelog(payload, 42); e.Kind != KindChangelog || e.Watermark != 42 || e.Changelog == nil {
		t.Fatal("NewChangelog")
	}
}

func TestJoinedTupleAsTuple(t *testing.T) {
	jt := JoinedTuple{
		Key:         5,
		Left:        [NumFields]int64{1, 2, 3, 4, 5},
		Right:       [NumFields]int64{9, 9, 9, 9, 9},
		Time:        77,
		QuerySet:    bitset.FromIndexes(2),
		IngestNanos: 123,
	}
	tu := jt.AsTuple()
	if tu.Key != 5 || tu.Fields != jt.Left || tu.Time != 77 || tu.IngestNanos != 123 {
		t.Fatalf("AsTuple = %+v", tu)
	}
	if !tu.QuerySet.Test(2) {
		t.Fatal("query-set lost")
	}
}
