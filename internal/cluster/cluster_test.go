package cluster

import (
	"sync"
	"testing"

	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

func TestLayoutValidate(t *testing.T) {
	if err := (Layout{Nodes: 0, Parallelism: 1}).Validate(); err == nil {
		t.Error("zero nodes must fail")
	}
	if err := (Layout{Nodes: 2, Parallelism: 0}).Validate(); err == nil {
		t.Error("zero parallelism must fail")
	}
	if err := (Layout{Nodes: 4, Parallelism: 8}).Validate(); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
}

func TestNodeOfRoundRobin(t *testing.T) {
	l := Layout{Nodes: 4, Parallelism: 8}
	for i := 0; i < 8; i++ {
		if l.NodeOf(i) != i%4 {
			t.Fatalf("NodeOf(%d) = %d", i, l.NodeOf(i))
		}
	}
}

func TestCrossNodeFraction(t *testing.T) {
	if f := (Layout{Nodes: 1, Parallelism: 8}).CrossNodeFraction(); f != 0 {
		t.Fatalf("single node cross fraction = %v", f)
	}
	// 2 nodes, 2 instances: i→j crossings: (0,1),(1,0) of 4 pairs = 0.5.
	if f := (Layout{Nodes: 2, Parallelism: 2}).CrossNodeFraction(); f != 0.5 {
		t.Fatalf("2×2 cross fraction = %v, want 0.5", f)
	}
	// More nodes ⇒ more crossing.
	f2 := (Layout{Nodes: 2, Parallelism: 8}).CrossNodeFraction()
	f4 := (Layout{Nodes: 4, Parallelism: 8}).CrossNodeFraction()
	if f4 <= f2 {
		t.Fatalf("cross fraction should grow with nodes: %v vs %v", f2, f4)
	}
}

func TestScaleParallelism(t *testing.T) {
	if ScaleParallelism(4, 2) != 8 || ScaleParallelism(0, 0) != 1 {
		t.Fatal("ScaleParallelism arithmetic")
	}
}

// TestMultiNodeEngineCorrectness runs the shared engine in a simulated
// multi-node deployment (inter-node edges pay the codec) and checks results
// match the single-node run.
func TestMultiNodeEngineCorrectness(t *testing.T) {
	run := func(nodes int) []uint64 {
		eng, err := core.NewEngine(core.Config{
			Streams: 2, Parallelism: 4, Nodes: nodes,
			BatchSize: 1, WatermarkEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		counts := []uint64{0, 0}
		mkSink := func(i int) core.Sink {
			return core.SinkFunc(func(core.Result) {
				mu.Lock()
				counts[i]++
				mu.Unlock()
			})
		}
		q1 := &core.Query{Kind: core.KindAggregation, Arity: 1,
			Predicates: []expr.Predicate{expr.True()},
			Window:     window.TumblingSpec(10), Agg: sqlstream.AggSum, AggField: 0}
		q2 := &core.Query{Kind: core.KindJoin, Arity: 2,
			Predicates: []expr.Predicate{expr.True(), expr.True()},
			Window:     window.TumblingSpec(8), AggField: -1}
		for i, q := range []*core.Query{q1, q2} {
			_, ack, err := eng.Submit(q, mkSink(i))
			if err != nil {
				t.Fatal(err)
			}
			<-ack
		}
		for i := 1; i <= 100; i++ {
			for s := 0; s < 2; s++ {
				tu := event.Tuple{Key: int64(i % 7), Time: event.Time(i)}
				tu.Fields[0] = int64(i)
				if err := eng.Ingest(s, tu); err != nil {
					t.Fatal(err)
				}
			}
		}
		eng.Drain()
		return counts
	}
	one := run(1)
	four := run(4)
	if one[0] != four[0] || one[1] != four[1] {
		t.Fatalf("multi-node results differ: %v vs %v", one, four)
	}
	if one[0] == 0 || one[1] == 0 {
		t.Fatal("queries produced nothing")
	}
}
