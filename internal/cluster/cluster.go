// Package cluster models the simulated multi-node deployments of the
// paper's evaluation (§4.4: 4- and 8-node clusters). A Layout places
// operator instances onto nodes round-robin; inter-node edges pay the
// serialization cost of spe.BinaryCodec (installed by the engines when
// Nodes > 1). The package also provides the shuffle-volume accounting used
// in experiment reports.
package cluster

import (
	"fmt"
)

// Layout describes a simulated cluster.
type Layout struct {
	// Nodes is the node count (1 = single machine, no serialization).
	Nodes int
	// Parallelism is the per-operator instance count; instances i of every
	// operator land on node i % Nodes.
	Parallelism int
}

// Validate checks the layout.
func (l Layout) Validate() error {
	if l.Nodes < 1 {
		return fmt.Errorf("cluster: node count %d must be ≥ 1", l.Nodes)
	}
	if l.Parallelism < 1 {
		return fmt.Errorf("cluster: parallelism %d must be ≥ 1", l.Parallelism)
	}
	return nil
}

// NodeOf returns the node hosting instance i.
func (l Layout) NodeOf(instance int) int {
	return instance % l.Nodes
}

// CrossNodeFraction estimates the fraction of keyed-exchange traffic that
// crosses node boundaries between two operators with this layout, assuming
// uniformly hashed keys: a tuple from instance i goes to a uniformly random
// instance j, and crosses iff node(i) != node(j).
func (l Layout) CrossNodeFraction() float64 {
	if l.Nodes <= 1 {
		return 0
	}
	cross := 0
	total := 0
	for i := 0; i < l.Parallelism; i++ {
		for j := 0; j < l.Parallelism; j++ {
			total++
			if l.NodeOf(i) != l.NodeOf(j) {
				cross++
			}
		}
	}
	return float64(cross) / float64(total)
}

// String renders the layout.
func (l Layout) String() string {
	return fmt.Sprintf("%d-node×%d-way", l.Nodes, l.Parallelism)
}

// ScaleParallelism returns the conventional parallelism for a node count in
// the experiments: cores-per-node × nodes is out of reach on one machine, so
// the experiments scale operator parallelism linearly with nodes (two
// instances per simulated node by default).
func ScaleParallelism(nodes, perNode int) int {
	if perNode < 1 {
		perNode = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	return nodes * perNode
}
