package fault

import (
	"reflect"
	"strings"
	"testing"

	"astream/internal/spe"
)

func mustPanic(t *testing.T, why string, fn func()) (v any) {
	t.Helper()
	defer func() {
		v = recover()
		if v == nil {
			t.Fatalf("%s: expected panic", why)
		}
		if _, ok := v.(Injected); !ok {
			t.Fatalf("%s: panic value %T, want fault.Injected", why, v)
		}
	}()
	fn()
	return nil
}

func TestKillAfterTuplesFiresOnceAtThreshold(t *testing.T) {
	p := NewPlan(Op{Kind: KillAfterTuples, Op: "select-0", Instance: 1, N: 3})
	// Non-matching op/instance never fires.
	for i := 0; i < 10; i++ {
		p.BeforeTuple("select-0", 0)
		p.BeforeTuple("join-0", 1)
	}
	p.BeforeTuple("select-0", 1)
	p.BeforeTuple("select-0", 1)
	mustPanic(t, "third matching tuple", func() { p.BeforeTuple("select-0", 1) })
	// One-shot: the instance restarts and reprocesses without re-dying.
	for i := 0; i < 10; i++ {
		p.BeforeTuple("select-0", 1)
	}
	if got := p.Fired(); len(got) != 1 || !strings.Contains(got[0], "kill-after-tuples") {
		t.Fatalf("fired log = %v", got)
	}
}

func TestKillAtBarrier(t *testing.T) {
	p := NewPlan(Op{Kind: KillAtBarrier, Op: "aggregate", Instance: -1, Barrier: 2})
	p.AtBarrier("aggregate", 0, 1)
	p.AtBarrier("select-0", 0, 2) // wrong op
	mustPanic(t, "barrier 2", func() { p.AtBarrier("aggregate", 1, 2) })
	p.AtBarrier("aggregate", 0, 2) // one-shot
}

func TestBatchFaults(t *testing.T) {
	p := NewPlan(
		Op{Kind: DropBatch, Op: "src-0", Instance: 0, N: 2},
		Op{Kind: CorruptBatch, Op: "src-0", Instance: 0, N: 3},
		Op{Kind: DelayBatch, Op: "src-0", Instance: 0, N: 4},
	)
	payload := []byte{1, 2, 3}
	if got, bf := p.OnBatch("src-0", 0, payload); bf != spe.BatchOK || !reflect.DeepEqual(got, payload) {
		t.Fatalf("batch 1: %v %v", got, bf)
	}
	if _, bf := p.OnBatch("src-0", 0, payload); bf != spe.BatchDrop {
		t.Fatalf("batch 2 not dropped: %v", bf)
	}
	if got, bf := p.OnBatch("src-0", 0, payload); bf != spe.BatchOK || reflect.DeepEqual(got, payload) {
		t.Fatalf("batch 3 not corrupted: %v %v", got, bf)
	}
	if _, bf := p.OnBatch("src-0", 0, payload); bf != spe.BatchDelay {
		t.Fatalf("batch 4 not delayed: %v", bf)
	}
	// All one-shot.
	if got, bf := p.OnBatch("src-0", 0, payload); bf != spe.BatchOK || !reflect.DeepEqual(got, payload) {
		t.Fatalf("batch 5: %v %v", got, bf)
	}
	if len(p.Fired()) != 3 {
		t.Fatalf("fired log = %v", p.Fired())
	}
}

func TestPredicatePanicKeepsFiring(t *testing.T) {
	p := NewPlan(Op{Kind: PanicPredicate, QueryID: 7})
	p.BeforePredicate(0, 6) // other query untouched
	for i := 0; i < 5; i++ {
		mustPanic(t, "predicate", func() { p.BeforePredicate(0, 7) })
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	cfg := RandomConfig{
		Ops: []string{"src-0", "select-0", "join-0", "aggregate"}, Instances: 2,
		MaxTuples: 100, Barriers: 5, Batches: 10, NumFaults: 6, AllowBatchFaults: true,
	}
	a, b := RandomPlan(42, cfg), RandomPlan(42, cfg)
	if !reflect.DeepEqual(a.Ops(), b.Ops()) {
		t.Fatalf("same seed diverged:\n%v\n%v", a.Ops(), b.Ops())
	}
	c := RandomPlan(43, cfg)
	if reflect.DeepEqual(a.Ops(), c.Ops()) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a.Ops()) != 6 {
		t.Fatalf("ops = %v", a.Ops())
	}
	// Without batch faults, only kill kinds appear.
	cfg.AllowBatchFaults = false
	for _, o := range RandomPlan(7, cfg).Ops() {
		if o.Kind != KillAfterTuples && o.Kind != KillAtBarrier {
			t.Fatalf("unexpected kind %v without AllowBatchFaults", o.Kind)
		}
	}
}
