// Package fault provides deterministic fault injection for chaos-testing the
// engine's supervision and recovery paths. A Plan is a seeded, replayable
// schedule of injected faults — operator kills, exchange-link batch faults,
// predicate panics — that threads through the runtime behind the
// nil-by-default spe.FaultHook. All randomness is consumed when the plan is
// constructed; during the run a plan is a pure lookup table, so the same
// seed produces the same schedule every time.
package fault

import (
	"fmt"
	"math/rand"
	"sync"

	"astream/internal/spe"
)

// OpKind enumerates the injectable fault types.
type OpKind int

const (
	// KillAfterTuples panics inside the instance after it has processed N
	// matching tuples, exercising supervisor capture + recovery.
	KillAfterTuples OpKind = iota
	// KillAtBarrier panics at barrier alignment, exercising failure during
	// an in-flight checkpoint.
	KillAtBarrier
	// CorruptBatch poisons the encoded bytes of the N-th exchange batch so
	// decoding fails, exercising the codec round-trip failure path.
	CorruptBatch
	// DropBatch discards the N-th exchange batch, exercising lost-data
	// detection (the lossy epoch must never commit).
	DropBatch
	// DelayBatch holds the N-th exchange batch back one flush round,
	// exercising reordering tolerance.
	DelayBatch
	// PanicPredicate panics while evaluating one query's predicate,
	// exercising per-query isolation and quarantine. Unlike the other
	// kinds it is not one-shot: it fires on every evaluation until the
	// engine quarantines the query.
	PanicPredicate
)

func (k OpKind) String() string {
	switch k {
	case KillAfterTuples:
		return "kill-after-tuples"
	case KillAtBarrier:
		return "kill-at-barrier"
	case CorruptBatch:
		return "corrupt-batch"
	case DropBatch:
		return "drop-batch"
	case DelayBatch:
		return "delay-batch"
	case PanicPredicate:
		return "panic-predicate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Injected is the panic value used for injected kills, so failure reports
// distinguish chaos from real bugs.
type Injected struct{ Why string }

func (i Injected) String() string { return "injected fault: " + i.Why }

// Op is one scheduled fault.
type Op struct {
	Kind     OpKind
	Op       string // operator node name; "" matches any
	Instance int    // instance index; -1 matches any
	N        int    // kill: fire on the N-th matching tuple; batch ops: the N-th matching batch
	Barrier  uint64 // KillAtBarrier: fire when this barrier aligns
	QueryID  int    // PanicPredicate: panic evaluating this query's predicate
}

func (o Op) String() string {
	switch o.Kind {
	case KillAfterTuples:
		return fmt.Sprintf("%v %s[%d] n=%d", o.Kind, o.Op, o.Instance, o.N)
	case KillAtBarrier:
		return fmt.Sprintf("%v %s[%d] barrier=%d", o.Kind, o.Op, o.Instance, o.Barrier)
	case PanicPredicate:
		return fmt.Sprintf("%v q=%d", o.Kind, o.QueryID)
	default:
		return fmt.Sprintf("%v %s[%d] batch=%d", o.Kind, o.Op, o.Instance, o.N)
	}
}

type instKey struct {
	op       string
	instance int
}

// Plan is a deterministic fault schedule. It implements spe.FaultHook (and
// the core engine's predicate hook), is safe for concurrent use from every
// operator goroutine, and may be shared across engine incarnations: fired
// one-shot ops stay fired, which models transient faults that do not recur
// after recovery.
type Plan struct {
	mu       sync.Mutex
	ops      []Op
	fired    []bool
	tuples   map[instKey]int
	batches  map[instKey]int
	predHits map[int]int
	firedLog []string
}

// NewPlan builds a plan from an explicit schedule.
func NewPlan(ops ...Op) *Plan {
	return &Plan{
		ops:      append([]Op(nil), ops...),
		fired:    make([]bool, len(ops)),
		tuples:   map[instKey]int{},
		batches:  map[instKey]int{},
		predHits: map[int]int{},
	}
}

// RandomConfig bounds the fault schedule RandomPlan draws.
type RandomConfig struct {
	Ops              []string // candidate operator node names
	Instances        int      // instances per operator
	MaxTuples        int      // kill-after-tuples thresholds drawn from [1, MaxTuples]
	Barriers         int      // kill-at-barrier ids drawn from [1, Barriers]
	Batches          int      // batch ordinals drawn from [1, Batches]
	NumFaults        int
	AllowBatchFaults bool // batch faults need a multi-node deployment (codec active)
}

// RandomPlan draws a schedule from the seeded generator. The generator is
// consumed here and only here: two plans with the same seed and config are
// identical, which is what makes chaos runs replayable.
func RandomPlan(seed int64, c RandomConfig) *Plan {
	rng := rand.New(rand.NewSource(seed))
	kinds := []OpKind{KillAfterTuples, KillAtBarrier}
	if c.AllowBatchFaults {
		kinds = append(kinds, CorruptBatch, DropBatch, DelayBatch)
	}
	ops := make([]Op, 0, c.NumFaults)
	for i := 0; i < c.NumFaults; i++ {
		o := Op{Kind: kinds[rng.Intn(len(kinds))], Instance: -1}
		if len(c.Ops) > 0 {
			o.Op = c.Ops[rng.Intn(len(c.Ops))]
		}
		if c.Instances > 1 {
			o.Instance = rng.Intn(c.Instances)
		}
		switch o.Kind {
		case KillAfterTuples:
			o.N = 1 + rng.Intn(max(1, c.MaxTuples))
		case KillAtBarrier:
			o.Barrier = uint64(1 + rng.Intn(max(1, c.Barriers)))
		default:
			o.N = 1 + rng.Intn(max(1, c.Batches))
		}
		ops = append(ops, o)
	}
	return NewPlan(ops...)
}

// Ops returns a copy of the schedule.
func (p *Plan) Ops() []Op {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Op(nil), p.ops...)
}

// Fired returns a description of every injection that has fired, in order.
func (p *Plan) Fired() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.firedLog...)
}

func (p *Plan) matches(o *Op, op string, instance int) bool {
	return (o.Op == "" || o.Op == op) && (o.Instance < 0 || o.Instance == instance)
}

// BeforeTuple implements spe.FaultHook: count the tuple and kill the
// instance if a KillAfterTuples op comes due.
func (p *Plan) BeforeTuple(op string, instance int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := instKey{op: op, instance: instance}
	p.tuples[k]++
	n := p.tuples[k]
	for i := range p.ops {
		o := &p.ops[i]
		if o.Kind != KillAfterTuples || p.fired[i] || !p.matches(o, op, instance) || o.N != n {
			continue
		}
		p.fired[i] = true
		why := fmt.Sprintf("%v fired at %s[%d]", *o, op, instance)
		p.firedLog = append(p.firedLog, why)
		panic(Injected{Why: why})
	}
}

// AtBarrier implements spe.FaultHook: kill the instance at barrier
// alignment if a KillAtBarrier op comes due.
func (p *Plan) AtBarrier(op string, instance int, barrier uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.ops {
		o := &p.ops[i]
		if o.Kind != KillAtBarrier || p.fired[i] || !p.matches(o, op, instance) || o.Barrier != barrier {
			continue
		}
		p.fired[i] = true
		why := fmt.Sprintf("%v fired at %s[%d]", *o, op, instance)
		p.firedLog = append(p.firedLog, why)
		panic(Injected{Why: why})
	}
}

// OnBatch implements spe.FaultHook: count the encoded exchange batch and
// apply the first due batch fault. Corruption poisons the payload so
// decoding fails deterministically — it must never decode into silently
// wrong data, or injected faults could change committed output instead of
// just killing instances.
func (p *Plan) OnBatch(op string, instance int, encoded []byte) ([]byte, spe.BatchFault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := instKey{op: op, instance: instance}
	p.batches[k]++
	n := p.batches[k]
	for i := range p.ops {
		o := &p.ops[i]
		switch o.Kind {
		case CorruptBatch, DropBatch, DelayBatch:
		default:
			continue
		}
		if p.fired[i] || !p.matches(o, op, instance) || o.N != n {
			continue
		}
		p.fired[i] = true
		p.firedLog = append(p.firedLog, fmt.Sprintf("%v fired at %s[%d]", *o, op, instance))
		switch o.Kind {
		case CorruptBatch:
			return []byte{0xFF}, spe.BatchOK // bad version byte: decode must fail
		case DropBatch:
			return encoded, spe.BatchDrop
		default:
			return encoded, spe.BatchDelay
		}
	}
	return encoded, spe.BatchOK
}

// BeforePredicate implements the core engine's predicate hook: panic while
// evaluating a scheduled query's predicate. Not one-shot — it keeps firing
// until the engine quarantines the query.
func (p *Plan) BeforePredicate(stream, queryID int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.ops {
		o := &p.ops[i]
		if o.Kind != PanicPredicate || o.QueryID != queryID {
			continue
		}
		p.predHits[queryID]++
		if p.predHits[queryID] <= 8 { // cap the log, not the fault
			p.firedLog = append(p.firedLog, fmt.Sprintf("%v fired on stream %d", *o, stream))
		}
		panic(Injected{Why: fmt.Sprintf("predicate panic for query %d", queryID)})
	}
}

var _ spe.FaultHook = (*Plan)(nil)
