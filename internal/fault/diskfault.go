package fault

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
)

// This file extends the chaos toolkit below the durability line: a DiskPlan
// is a seeded, replayable schedule of disk faults — torn writes, corrupted
// frames, lying fsyncs, crashes between prepare and rename — injected through
// the durable backend's Hook seam. Like Plan, all randomness is consumed at
// construction; during a run the plan is a pure lookup table, and fired
// one-shot ops stay fired across incarnations.

// DiskOpKind enumerates the injectable disk fault types.
type DiskOpKind int

const (
	// TornWriteAt writes only a prefix of the N-th matching write, then
	// crashes — the classic torn append the WAL tail scan must absorb.
	TornWriteAt DiskOpKind = iota
	// CorruptCRC writes the N-th matching write with a flipped byte, then
	// crashes — the frame lands whole but its checksum cannot verify.
	CorruptCRC
	// ShortFsync crashes at the N-th matching fsync: everything written
	// above it is in the page cache, nothing is promised durable.
	ShortFsync
	// CrashBeforeRename crashes with the N-th matching temp file fully
	// written but never renamed into place — the commit never happened.
	CrashBeforeRename
)

func (k DiskOpKind) String() string {
	switch k {
	case TornWriteAt:
		return "torn-write"
	case CorruptCRC:
		return "corrupt-crc"
	case ShortFsync:
		return "short-fsync"
	case CrashBeforeRename:
		return "crash-before-rename"
	default:
		return fmt.Sprintf("disk-kind(%d)", int(k))
	}
}

// DiskTarget selects which backend files an op applies to, classified by
// basename prefix the way the durable layout names them.
type DiskTarget int

const (
	TargetAny DiskTarget = iota
	TargetWAL             // wal-*.seg segment files
	TargetSnap            // snap-* deposit files (and their temp files)
	TargetManifest        // the manifest (and its temp file)
)

func (t DiskTarget) String() string {
	switch t {
	case TargetWAL:
		return "wal"
	case TargetSnap:
		return "snap"
	case TargetManifest:
		return "manifest"
	default:
		return "any"
	}
}

func classifyPath(path string) DiskTarget {
	base := filepath.Base(path)
	switch {
	case strings.HasPrefix(base, "wal-"):
		return TargetWAL
	case strings.HasPrefix(base, "snap-"):
		return TargetSnap
	case strings.HasPrefix(base, "manifest"):
		return TargetManifest
	default:
		return TargetAny
	}
}

// DiskOp is one scheduled disk fault: fire on the N-th operation of the
// kind's class (write, sync, or rename) against the target.
type DiskOp struct {
	Kind   DiskOpKind
	Target DiskTarget
	N      int // 1-based ordinal within (class, target)
}

func (o DiskOp) String() string {
	return fmt.Sprintf("%v %v n=%d", o.Kind, o.Target, o.N)
}

// opClass groups hook entry points for counting.
type opClass int

const (
	classWrite opClass = iota
	classSync
	classRename
)

type diskCountKey struct {
	class  opClass
	target DiskTarget
}

// DiskPlan is a deterministic disk fault schedule satisfying durable.Hook
// (structurally — this package stays below durable in the import graph).
// Safe for concurrent use (deposit writes come from instance goroutines) and
// shared across incarnations.
type DiskPlan struct {
	mu       sync.Mutex
	ops      []DiskOp
	fired    []bool
	counts   map[diskCountKey]int
	firedLog []string
}

// NewDiskPlan builds a plan from an explicit schedule.
func NewDiskPlan(ops ...DiskOp) *DiskPlan {
	return &DiskPlan{
		ops:    append([]DiskOp(nil), ops...),
		fired:  make([]bool, len(ops)),
		counts: map[diskCountKey]int{},
	}
}

// RandomDiskConfig bounds the schedule RandomDiskPlan draws. The per-target
// maxima reflect how often each file class is touched: WAL writes happen per
// record, snapshot writes per (checkpoint × instance), manifest operations
// once per checkpoint.
type RandomDiskConfig struct {
	NumFaults   int
	MaxWAL      int // WAL op ordinals drawn from [1, MaxWAL]
	MaxSnap     int // snapshot op ordinals drawn from [1, MaxSnap]
	MaxManifest int // manifest op ordinals drawn from [1, MaxManifest]
}

// RandomDiskPlan draws a schedule from the seeded generator; the generator is
// consumed here and only here, so equal seeds replay identically. Ops that
// never come due (e.g. a rename fault aimed at the WAL, which is never
// renamed) are kept as controls: a plan that does not fire must not perturb
// output either.
func RandomDiskPlan(seed int64, c RandomDiskConfig) *DiskPlan {
	rng := rand.New(rand.NewSource(seed))
	kinds := []DiskOpKind{TornWriteAt, CorruptCRC, ShortFsync, CrashBeforeRename}
	targets := []DiskTarget{TargetWAL, TargetSnap, TargetManifest}
	ops := make([]DiskOp, 0, c.NumFaults)
	for i := 0; i < c.NumFaults; i++ {
		o := DiskOp{Kind: kinds[rng.Intn(len(kinds))], Target: targets[rng.Intn(len(targets))]}
		switch o.Target {
		case TargetWAL:
			o.N = 1 + rng.Intn(max(1, c.MaxWAL))
		case TargetSnap:
			o.N = 1 + rng.Intn(max(1, c.MaxSnap))
		default:
			o.N = 1 + rng.Intn(max(1, c.MaxManifest))
		}
		ops = append(ops, o)
	}
	return NewDiskPlan(ops...)
}

// Ops returns a copy of the schedule.
func (p *DiskPlan) Ops() []DiskOp {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]DiskOp(nil), p.ops...)
}

// Fired returns a description of every injection that has fired, in order.
func (p *DiskPlan) Fired() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.firedLog...)
}

// due advances the counters for one (class, target) event and returns the
// first unfired op that comes due, marking it fired. Requires p.mu held.
func (p *DiskPlan) due(class opClass, target DiskTarget, path string) *DiskOp {
	if target != TargetAny {
		p.counts[diskCountKey{class: class, target: target}]++
	}
	p.counts[diskCountKey{class: class, target: TargetAny}]++
	for i := range p.ops {
		o := &p.ops[i]
		if p.fired[i] || o.Kind.class() != class {
			continue
		}
		if o.Target != TargetAny && o.Target != target {
			continue
		}
		if p.counts[diskCountKey{class: class, target: o.Target}] != o.N {
			continue
		}
		p.fired[i] = true
		p.firedLog = append(p.firedLog, fmt.Sprintf("%v fired at %s", *o, filepath.Base(path)))
		return o
	}
	return nil
}

func (k DiskOpKind) class() opClass {
	switch k {
	case TornWriteAt, CorruptCRC:
		return classWrite
	case ShortFsync:
		return classSync
	default:
		return classRename
	}
}

// BeforeWrite implements durable.Hook: tear or corrupt a due write, then
// report the crash.
func (p *DiskPlan) BeforeWrite(path string, b []byte) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	o := p.due(classWrite, classifyPath(path), path)
	if o == nil {
		return b, nil
	}
	switch o.Kind {
	case TornWriteAt:
		return b[:len(b)/2], fmt.Errorf("injected disk crash: %v", *o)
	default: // CorruptCRC
		bad := append([]byte(nil), b...)
		if len(bad) > 0 {
			bad[len(bad)-1] ^= 0xA5
		}
		return bad, fmt.Errorf("injected disk crash: %v", *o)
	}
}

// BeforeSync implements durable.Hook: crash at a due fsync.
func (p *DiskPlan) BeforeSync(path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if o := p.due(classSync, classifyPath(path), path); o != nil {
		return fmt.Errorf("injected disk crash: %v", *o)
	}
	return nil
}

// BeforeRename implements durable.Hook: crash before a due rename publishes.
func (p *DiskPlan) BeforeRename(from, to string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if o := p.due(classRename, classifyPath(to), to); o != nil {
		return fmt.Errorf("injected disk crash: %v", *o)
	}
	return nil
}
