// Package driver implements the experimental driver of the paper's Figure 5:
// two FIFO queues — one for user query requests, one for input tuples — with
// ACK-based backpressure on query submission and closed-loop backpressure on
// tuple ingestion. The driver treats the AStream engine and the baseline
// engine uniformly as systems under test.
package driver

import (
	"sync"
	"sync/atomic"
	"time"

	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/gen"
	"astream/internal/metrics"
)

// SUT is the system-under-test surface shared by core.Engine (AStream) and
// baseline.Engine (query-at-a-time).
type SUT interface {
	Submit(q *core.Query, sink core.Sink) (int, <-chan struct{}, error)
	StopQuery(id int) (<-chan struct{}, error)
	Ingest(stream int, t event.Tuple) error
	ActiveQueries() int
	DeployRecords() []core.DeployRecord
	Drain()
}

// Request is one user action in the request queue.
type Request struct {
	// Query to create (nil for a stop request).
	Query *core.Query
	// StopOrdinal stops the n-th previously created query (1-based).
	StopOrdinal int
	// Enqueued is stamped by the driver.
	Enqueued time.Time
}

// Config parameterizes a driver run.
type Config struct {
	// Streams is the number of input streams to pump.
	Streams int
	// RequestBatch is how many user requests the driver sends per round
	// before waiting for the ACK (Figure 5's batching).
	RequestBatch int
	// TupleQueueCap bounds the input tuple queue per stream.
	TupleQueueCap int
	// LatencySample: 1-in-n results sampled for event-time latency.
	LatencySample int
	// Now is the wall clock (injectable).
	Now func() time.Time
}

func (c *Config) setDefaults() {
	if c.Streams <= 0 {
		c.Streams = 1
	}
	if c.RequestBatch <= 0 {
		c.RequestBatch = 1
	}
	if c.TupleQueueCap <= 0 {
		c.TupleQueueCap = 4096
	}
	if c.LatencySample <= 0 {
		c.LatencySample = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Driver pumps tuples and requests into a SUT and records the paper's
// metrics.
type Driver struct {
	cfg Config
	sut SUT

	reqMu    sync.Mutex
	requests []Request

	tupleQ []chan event.Tuple

	// Metrics.
	Ingested     *metrics.Meter
	Results      *metrics.Meter
	DeployLat    *metrics.Histogram // request enqueue -> ACK (queue wait included)
	EventTimeLat *metrics.Histogram // tuple event-time -> sink delivery
	QueueLat     *metrics.Histogram // tuple enqueue -> ingestion

	sustain metrics.Sustainability

	queryOrdinals []int // created query IDs in submission order
	resultCounts  map[int]*uint64
	cntMu         sync.Mutex

	pumpWG  sync.WaitGroup
	stopped atomic.Bool
}

// New creates a driver bound to a SUT.
func New(cfg Config, sut SUT) *Driver {
	cfg.setDefaults()
	d := &Driver{
		cfg:          cfg,
		sut:          sut,
		tupleQ:       make([]chan event.Tuple, cfg.Streams),
		Ingested:     metrics.NewMeter(func() time.Time { return cfg.Now() }),
		Results:      metrics.NewMeter(func() time.Time { return cfg.Now() }),
		DeployLat:    metrics.NewHistogram(),
		EventTimeLat: metrics.NewHistogram(),
		QueueLat:     metrics.NewHistogram(),
		resultCounts: map[int]*uint64{},
	}
	for i := range d.tupleQ {
		d.tupleQ[i] = make(chan event.Tuple, cfg.TupleQueueCap)
	}
	return d
}

// sinkFor builds the per-query sink: counts results and samples event-time
// latency at the sink, as §3.4 describes.
func (d *Driver) sinkFor() (core.Sink, *uint64) {
	var n uint64
	cnt := &n
	sample := uint64(d.cfg.LatencySample)
	return core.SinkFunc(func(r core.Result) {
		d.Results.Add(1)
		k := atomic.AddUint64(cnt, 1)
		if r.IngestNanos > 0 && k%sample == 0 {
			lat := d.cfg.Now().UnixNano() - r.IngestNanos
			if lat > 0 {
				d.EventTimeLat.Observe(time.Duration(lat))
			}
		}
	}), cnt
}

// EnqueueRequest appends a user request to the FIFO request queue.
func (d *Driver) EnqueueRequest(r Request) {
	r.Enqueued = d.cfg.Now()
	d.reqMu.Lock()
	d.requests = append(d.requests, r)
	d.reqMu.Unlock()
}

// PumpRequests pops up to cfg.RequestBatch requests, submits them, and waits
// for the batch ACK; it returns the number processed. Deployment latency is
// measured from enqueue to ACK, so time spent waiting in the queue counts —
// exactly the paper's "the longer the user request stays in the queue, the
// higher is its deployment latency".
func (d *Driver) PumpRequests() (int, error) {
	d.reqMu.Lock()
	n := len(d.requests)
	if n > d.cfg.RequestBatch {
		n = d.cfg.RequestBatch
	}
	batch := d.requests[:n]
	d.requests = d.requests[n:]
	d.reqMu.Unlock()
	if n == 0 {
		return 0, nil
	}
	type pend struct {
		ack <-chan struct{}
		at  time.Time
	}
	var pends []pend
	for _, r := range batch {
		if r.Query != nil {
			sink, cnt := d.sinkFor()
			id, ack, err := d.sut.Submit(r.Query, sink)
			if err != nil {
				return 0, err
			}
			d.cntMu.Lock()
			d.queryOrdinals = append(d.queryOrdinals, id)
			d.resultCounts[id] = cnt
			d.cntMu.Unlock()
			pends = append(pends, pend{ack: ack, at: r.Enqueued})
			continue
		}
		d.cntMu.Lock()
		var id int
		if r.StopOrdinal >= 1 && r.StopOrdinal <= len(d.queryOrdinals) {
			id = d.queryOrdinals[r.StopOrdinal-1]
		}
		d.cntMu.Unlock()
		if id == 0 {
			continue
		}
		ack, err := d.sut.StopQuery(id)
		if err != nil {
			return 0, err
		}
		pends = append(pends, pend{ack: ack, at: r.Enqueued})
	}
	for _, p := range pends {
		<-p.ack
		d.DeployLat.Observe(d.cfg.Now().Sub(p.at))
	}
	return n, nil
}

// PendingRequests reports the request queue length.
func (d *Driver) PendingRequests() int {
	d.reqMu.Lock()
	defer d.reqMu.Unlock()
	return len(d.requests)
}

// QueryIDs returns the created query IDs in submission order.
func (d *Driver) QueryIDs() []int {
	d.cntMu.Lock()
	defer d.cntMu.Unlock()
	out := make([]int, len(d.queryOrdinals))
	copy(out, d.queryOrdinals)
	return out
}

// ResultCount returns a query's delivered-result count.
func (d *Driver) ResultCount(id int) uint64 {
	d.cntMu.Lock()
	cnt := d.resultCounts[id]
	d.cntMu.Unlock()
	if cnt == nil {
		return 0
	}
	return atomic.LoadUint64(cnt)
}

// OfferTuple enqueues a tuple for a stream, blocking when the queue is full
// (generator-side backpressure).
func (d *Driver) OfferTuple(stream int, t event.Tuple) {
	d.tupleQ[stream] <- t
}

// TryOfferTuple enqueues without blocking; reports acceptance. An open-loop
// generator uses this and counts rejects as overload.
func (d *Driver) TryOfferTuple(stream int, t event.Tuple) bool {
	select {
	case d.tupleQ[stream] <- t:
		return true
	default:
		return false
	}
}

// StartPumps launches one ingestion goroutine per stream, each popping the
// FIFO tuple queue and pushing into the SUT (which backpressures through its
// bounded exchanges).
func (d *Driver) StartPumps() {
	for s := range d.tupleQ {
		s := s
		d.pumpWG.Add(1)
		go func() {
			defer d.pumpWG.Done()
			for t := range d.tupleQ[s] {
				if t.IngestNanos > 0 {
					q := d.cfg.Now().UnixNano() - t.IngestNanos
					if q > 0 && d.Ingested.Total()%uint64(d.cfg.LatencySample) == 0 {
						d.QueueLat.Observe(time.Duration(q))
					}
				}
				if err := d.sut.Ingest(s, t); err != nil {
					return
				}
				d.Ingested.Add(1)
			}
		}()
	}
}

// CloseTuples closes the tuple queues; pumps finish once drained.
func (d *Driver) CloseTuples() {
	if d.stopped.Swap(true) {
		return
	}
	for _, q := range d.tupleQ {
		close(q)
	}
}

// WaitPumps blocks until all ingestion pumps have drained.
func (d *Driver) WaitPumps() { d.pumpWG.Wait() }

// Finish closes the queues, waits for the pumps, and drains the SUT.
func (d *Driver) Finish() {
	d.CloseTuples()
	d.WaitPumps()
	d.sut.Drain()
}

// ObserveSustainability feeds the sustainability detector with a latency
// signal (call periodically with e.g. mean event-time latency).
func (d *Driver) ObserveSustainability(v float64) { d.sustain.Observe(v) }

// Sustainable reports the detector's verdict.
func (d *Driver) Sustainable() bool { return d.sustain.Sustainable() }

// GenerateAndOffer runs a data generator for n tuples per stream with the
// given event-time step, stamping IngestNanos at enqueue (the tuple's birth,
// so queue wait counts toward its latency).
func (d *Driver) GenerateAndOffer(gens []*gen.Data, n int, startAt event.Time, step event.Time) event.Time {
	at := startAt
	for i := 0; i < n; i++ {
		for s := 0; s < d.cfg.Streams && s < len(gens); s++ {
			t := gens[s].Next(at)
			t.IngestNanos = d.cfg.Now().UnixNano()
			d.OfferTuple(s, t)
		}
		at += step
	}
	return at
}
