package driver

import (
	"testing"
	"time"

	"astream/internal/baseline"
	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/gen"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

func aggQuery() *core.Query {
	return &core.Query{
		Kind:       core.KindAggregation,
		Arity:      1,
		Predicates: []expr.Predicate{expr.True()},
		Window:     window.TumblingSpec(10),
		Agg:        sqlstream.AggSum,
		AggField:   0,
	}
}

func newSharedSUT(t *testing.T, streams int) SUT {
	t.Helper()
	e, err := core.NewEngine(core.Config{
		Streams: streams, Parallelism: 2, BatchSize: 1,
		BatchTimeout: time.Hour, WatermarkEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDriverEndToEndShared(t *testing.T) {
	d := New(Config{Streams: 1, RequestBatch: 4}, newSharedSUT(t, 1))
	d.EnqueueRequest(Request{Query: aggQuery()})
	d.EnqueueRequest(Request{Query: aggQuery()})
	if n, err := d.PumpRequests(); err != nil || n != 2 {
		t.Fatalf("PumpRequests = %d, %v", n, err)
	}
	if d.DeployLat.Count() != 2 {
		t.Fatalf("deploy latencies recorded = %d", d.DeployLat.Count())
	}
	d.StartPumps()
	g := gen.NewData(gen.DefaultDataConfig(), 1)
	d.GenerateAndOffer([]*gen.Data{g}, 500, 1, 1)
	d.Finish()
	if d.Ingested.Total() != 500 {
		t.Fatalf("ingested = %d", d.Ingested.Total())
	}
	ids := d.QueryIDs()
	if len(ids) != 2 {
		t.Fatalf("query ids = %v", ids)
	}
	for _, id := range ids {
		if d.ResultCount(id) == 0 {
			t.Fatalf("query %d produced no results", id)
		}
	}
	if d.Results.Total() == 0 {
		t.Fatal("no results metered")
	}
}

func TestDriverStopOrdinal(t *testing.T) {
	d := New(Config{Streams: 1, RequestBatch: 1}, newSharedSUT(t, 1))
	d.EnqueueRequest(Request{Query: aggQuery()})
	if _, err := d.PumpRequests(); err != nil {
		t.Fatal(err)
	}
	d.StartPumps()
	g := gen.NewData(gen.DefaultDataConfig(), 2)
	d.GenerateAndOffer([]*gen.Data{g}, 100, 1, 1)
	// Stop the first query.
	d.EnqueueRequest(Request{StopOrdinal: 1})
	if _, err := d.PumpRequests(); err != nil {
		t.Fatal(err)
	}
	d.GenerateAndOffer([]*gen.Data{g}, 100, 101, 1)
	d.Finish()
	if got := d.DeployLat.Count(); got != 2 {
		t.Fatalf("deploy records = %d, want 2 (create+stop)", got)
	}
	// Stop of an unknown ordinal is ignored.
	d2 := New(Config{Streams: 1}, newSharedSUT(t, 1))
	d2.EnqueueRequest(Request{StopOrdinal: 7})
	if n, err := d2.PumpRequests(); err != nil || n != 1 {
		t.Fatalf("pump = %d, %v", n, err)
	}
	d2.Finish()
}

func TestDriverWithBaseline(t *testing.T) {
	be, err := baseline.NewEngine(baseline.Config{Streams: 1, Parallelism: 1, WatermarkEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := New(Config{Streams: 1}, be)
	d.EnqueueRequest(Request{Query: aggQuery()})
	if _, err := d.PumpRequests(); err != nil {
		t.Fatal(err)
	}
	d.StartPumps()
	g := gen.NewData(gen.DefaultDataConfig(), 3)
	d.GenerateAndOffer([]*gen.Data{g}, 300, 1, 1)
	d.Finish()
	if d.ResultCount(d.QueryIDs()[0]) == 0 {
		t.Fatal("baseline produced no results through the driver")
	}
}

func TestDriverBatching(t *testing.T) {
	d := New(Config{Streams: 1, RequestBatch: 3}, newSharedSUT(t, 1))
	for i := 0; i < 7; i++ {
		d.EnqueueRequest(Request{Query: aggQuery()})
	}
	if d.PendingRequests() != 7 {
		t.Fatalf("pending = %d", d.PendingRequests())
	}
	counts := []int{}
	for {
		n, err := d.PumpRequests()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		counts = append(counts, n)
	}
	if len(counts) != 3 || counts[0] != 3 || counts[1] != 3 || counts[2] != 1 {
		t.Fatalf("batch sizes = %v, want [3 3 1]", counts)
	}
	d.Finish()
}

func TestTryOfferTupleBackpressure(t *testing.T) {
	d := New(Config{Streams: 1, TupleQueueCap: 2}, newSharedSUT(t, 1))
	// No pumps running: the queue fills.
	if !d.TryOfferTuple(0, event.Tuple{}) || !d.TryOfferTuple(0, event.Tuple{}) {
		t.Fatal("first two offers should be accepted")
	}
	if d.TryOfferTuple(0, event.Tuple{}) {
		t.Fatal("third offer should be rejected (queue full)")
	}
	d.StartPumps()
	d.Finish()
}

func TestSustainabilitySignal(t *testing.T) {
	d := New(Config{Streams: 1}, newSharedSUT(t, 1))
	for i := 0; i < 10; i++ {
		d.ObserveSustainability(100)
	}
	if !d.Sustainable() {
		t.Fatal("flat signal should be sustainable")
	}
	d.Finish()
}
