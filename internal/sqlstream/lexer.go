// Package sqlstream parses the stream-SQL dialect of the paper's workload
// templates (Figures 7 and 8):
//
//	SELECT *
//	FROM A, B [RANGE 20] [SLIDE 5]
//	WHERE A.KEY = B.KEY AND A.F3 > 10 AND B.F1 <= 4
//
//	SELECT SUM(A.FIELD1)
//	FROM A [RANGE 10] [SLIDE 10]
//	WHERE A.F2 >= 7
//	GROUPBY A.KEY
//
// Extensions over the paper's figures: SESSION(gap) windows, COUNT(*) and
// AVG aggregates, and n-ary joins (FROM A, B, C, …) as used in the complex
// query experiment (§4.7). "SLICE" is accepted as a synonym for "SLIDE"
// (the paper's templates write SLICE for the slide parameter).
package sqlstream

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; stream queries are short.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.lexNumber()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

var twoCharSymbols = []string{"<=", ">=", "==", "!=", "<>"}

func (l *lexer) lexSymbol() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		for _, s := range twoCharSymbols {
			if two == s {
				l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: l.pos})
				l.pos += 2
				return nil
			}
		}
	}
	c := l.src[l.pos]
	switch c {
	case ',', '.', '(', ')', '[', ']', '*', '=', '<', '>', ';':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sqlstream: unexpected character %q at offset %d", c, l.pos)
}

// keyword matching is case-insensitive.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
