package sqlstream

import (
	"fmt"
	"strings"

	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/window"
)

// AggFunc is the aggregation function of an aggregation query.
type AggFunc uint8

const (
	// AggNone marks a SELECT * query (join or pure selection).
	AggNone AggFunc = iota
	AggSum
	AggCount
	AggAvg
	AggMin
	AggMax
)

func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return "*"
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("agg(%d)", uint8(a))
	}
}

// ColRef names a column of a stream: stream alias plus field index
// (expr.KeyField for KEY).
type ColRef struct {
	Stream string
	Field  int
}

func (c ColRef) String() string {
	if c.Field == expr.KeyField {
		return c.Stream + ".KEY"
	}
	return fmt.Sprintf("%s.F%d", c.Stream, c.Field)
}

// JoinCond is an equality between columns of two different streams
// (A.KEY = B.KEY in the paper's template; arbitrary column equality is
// accepted, the engine supports key-equality).
type JoinCond struct {
	Left, Right ColRef
}

func (j JoinCond) String() string { return j.Left.String() + " = " + j.Right.String() }

// Query is the parsed form of one stream query.
type Query struct {
	// Agg and AggCol describe the SELECT list: AggNone for SELECT *.
	Agg    AggFunc
	AggCol ColRef
	// Sources lists the stream names in FROM order. One source: selection
	// or aggregation; ≥2: windowed join (n-ary joins chain pairwise).
	Sources []string
	// Window is the window clause; zero-valued Spec with Length==0 means
	// no window (pure selection).
	Window window.Spec
	// HasWindow reports whether a window clause was present.
	HasWindow bool
	// JoinConds are cross-stream equality conditions.
	JoinConds []JoinCond
	// Filters holds the per-stream selection predicate (conjunction of
	// single-stream comparisons).
	Filters map[string]expr.Predicate
	// GroupBy is the grouping column for aggregations; nil otherwise.
	GroupBy *ColRef
}

// IsJoin reports whether the query joins two or more streams.
func (q *Query) IsJoin() bool { return len(q.Sources) >= 2 }

// IsAggregation reports whether the query aggregates.
func (q *Query) IsAggregation() bool { return q.Agg != AggNone }

// FilterFor returns the predicate for a stream (TRUE when absent).
func (q *Query) FilterFor(stream string) expr.Predicate {
	if p, ok := q.Filters[stream]; ok {
		return p
	}
	return expr.True()
}

// Validate performs semantic checks beyond grammar.
func (q *Query) Validate() error {
	if len(q.Sources) == 0 {
		return fmt.Errorf("sqlstream: query has no sources")
	}
	seen := map[string]bool{}
	for _, s := range q.Sources {
		if seen[s] {
			return fmt.Errorf("sqlstream: duplicate source %q", s)
		}
		seen[s] = true
	}
	if q.IsJoin() && !q.HasWindow {
		return fmt.Errorf("sqlstream: stream join requires a window clause")
	}
	if q.IsAggregation() && !q.HasWindow {
		return fmt.Errorf("sqlstream: stream aggregation requires a window clause")
	}
	if q.HasWindow {
		if err := q.Window.Validate(); err != nil {
			return err
		}
	}
	if q.IsAggregation() && q.GroupBy == nil {
		return fmt.Errorf("sqlstream: aggregation requires GROUPBY")
	}
	if !q.IsAggregation() && q.GroupBy != nil {
		return fmt.Errorf("sqlstream: GROUPBY without aggregation")
	}
	if q.Agg == AggCount && q.AggCol.Stream == "" {
		// COUNT(*) — allowed; no column check.
	} else if q.IsAggregation() {
		if !seen[q.AggCol.Stream] {
			return fmt.Errorf("sqlstream: aggregate column references unknown stream %q", q.AggCol.Stream)
		}
		if q.AggCol.Field == expr.KeyField {
			return fmt.Errorf("sqlstream: aggregating the key column is not supported")
		}
	}
	for _, jc := range q.JoinConds {
		if !seen[jc.Left.Stream] || !seen[jc.Right.Stream] {
			return fmt.Errorf("sqlstream: join condition %v references unknown stream", jc)
		}
		if jc.Left.Stream == jc.Right.Stream {
			return fmt.Errorf("sqlstream: join condition %v must relate two streams", jc)
		}
	}
	if q.IsJoin() && len(q.JoinConds) == 0 {
		return fmt.Errorf("sqlstream: join query needs at least one cross-stream equality")
	}
	for s, p := range q.Filters {
		if !seen[s] {
			return fmt.Errorf("sqlstream: predicate references unknown stream %q", s)
		}
		if err := p.Validate(); err != nil {
			return err
		}
	}
	if q.GroupBy != nil && !seen[q.GroupBy.Stream] {
		return fmt.Errorf("sqlstream: GROUPBY references unknown stream %q", q.GroupBy.Stream)
	}
	return nil
}

// String renders the query back to SQL (canonical form, stable for tests).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Agg == AggNone {
		sb.WriteString("*")
	} else if q.Agg == AggCount && q.AggCol.Stream == "" {
		sb.WriteString("COUNT(*)")
	} else {
		fmt.Fprintf(&sb, "%s(%s)", q.Agg, q.AggCol)
	}
	sb.WriteString(" FROM ")
	sb.WriteString(strings.Join(q.Sources, ", "))
	if q.HasWindow {
		switch q.Window.Kind {
		case window.Session:
			fmt.Fprintf(&sb, " [SESSION %d]", int64(q.Window.Gap))
		default:
			fmt.Fprintf(&sb, " [RANGE %d] [SLIDE %d]", int64(q.Window.Length), int64(q.Window.Slide))
		}
	}
	var conds []string
	for _, jc := range q.JoinConds {
		conds = append(conds, jc.String())
	}
	for _, s := range q.Sources {
		if p, ok := q.Filters[s]; ok {
			for _, c := range p.Conj {
				col := ColRef{Stream: s, Field: c.Field}
				conds = append(conds, fmt.Sprintf("%s %s %d", col, c.Op, c.Value))
			}
		}
	}
	if len(conds) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(conds, " AND "))
	}
	if q.GroupBy != nil {
		fmt.Fprintf(&sb, " GROUPBY %s", q.GroupBy)
	}
	return sb.String()
}

// fieldByName resolves KEY / Fn / FIELDn column names. The paper's template
// writes FIELD1..FIELD5 (1-based); F0..F4 are the 0-based aliases.
func fieldByName(name string) (int, error) {
	u := strings.ToUpper(name)
	if u == "KEY" {
		return expr.KeyField, nil
	}
	if strings.HasPrefix(u, "FIELD") {
		n := 0
		if _, err := fmt.Sscanf(u, "FIELD%d", &n); err == nil && n >= 1 && n <= event.NumFields {
			return n - 1, nil
		}
		return 0, fmt.Errorf("sqlstream: bad field %q (want FIELD1..FIELD%d)", name, event.NumFields)
	}
	if strings.HasPrefix(u, "F") {
		n := -1
		if _, err := fmt.Sscanf(u, "F%d", &n); err == nil && n >= 0 && n < event.NumFields {
			return n, nil
		}
		return 0, fmt.Errorf("sqlstream: bad field %q (want F0..F%d)", name, event.NumFields-1)
	}
	return 0, fmt.Errorf("sqlstream: unknown column %q", name)
}
