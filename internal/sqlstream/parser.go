package sqlstream

import (
	"fmt"
	"strconv"
	"strings"

	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/window"
)

// Parse parses one query and validates it.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlstream: %s (near %s)", fmt.Sprintf(format, args...), p.cur())
}

func (p *parser) acceptKeyword(kw string) bool {
	if isKeyword(p.cur(), kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) parseNumber() (int64, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected number")
	}
	n, err := strconv.ParseInt(p.next().text, 10, 64)
	if err != nil {
		return 0, p.errf("bad number: %v", err)
	}
	return n, nil
}

func (p *parser) parseIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	return p.next().text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Filters: map[string]expr.Predicate{}}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		s, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		q.Sources = append(q.Sources, s)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.parseWindowClause(q); err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		if err := p.parseWhere(q); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUPBY") || (p.acceptKeyword("GROUP") && p.acceptKeyword("BY")) {
		c, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		q.GroupBy = &c
	}
	p.acceptSymbol(";")
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input")
	}
	return q, nil
}

func (p *parser) parseSelectList(q *Query) error {
	if p.acceptSymbol("*") {
		q.Agg = AggNone
		return nil
	}
	var fn AggFunc
	switch {
	case p.acceptKeyword("SUM"):
		fn = AggSum
	case p.acceptKeyword("COUNT"):
		fn = AggCount
	case p.acceptKeyword("AVG"):
		fn = AggAvg
	case p.acceptKeyword("MIN"):
		fn = AggMin
	case p.acceptKeyword("MAX"):
		fn = AggMax
	default:
		return p.errf("expected * or aggregate function")
	}
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	if fn == AggCount && p.acceptSymbol("*") {
		q.Agg = AggCount
		return p.expectSymbol(")")
	}
	c, err := p.parseColRef()
	if err != nil {
		return err
	}
	q.Agg = fn
	q.AggCol = c
	return p.expectSymbol(")")
}

// parseWindowClause handles, in any mix:
//
//	[RANGE n] [SLIDE n]      — sliding window (tumbling when slide omitted)
//	[RANGE n] [SLICE n]      — paper's spelling for the slide parameter
//	[SESSION n]              — session window with gap n
func (p *parser) parseWindowClause(q *Query) error {
	var haveRange, haveSlide, haveSession bool
	var rng, slide, gap int64
	for p.cur().kind == tokSymbol && p.cur().text == "[" {
		p.i++
		switch {
		case p.acceptKeyword("RANGE"):
			n, err := p.parseNumber()
			if err != nil {
				return err
			}
			haveRange, rng = true, n
		case p.acceptKeyword("SLIDE"), p.acceptKeyword("SLICE"):
			n, err := p.parseNumber()
			if err != nil {
				return err
			}
			haveSlide, slide = true, n
		case p.acceptKeyword("SESSION"):
			n, err := p.parseNumber()
			if err != nil {
				return err
			}
			haveSession, gap = true, n
		default:
			return p.errf("expected RANGE, SLIDE, SLICE or SESSION")
		}
		if err := p.expectSymbol("]"); err != nil {
			return err
		}
	}
	switch {
	case haveSession && (haveRange || haveSlide):
		return fmt.Errorf("sqlstream: SESSION cannot be combined with RANGE/SLIDE")
	case haveSession:
		q.HasWindow = true
		q.Window = window.SessionSpec(event.Time(gap))
	case haveRange && haveSlide:
		q.HasWindow = true
		if slide == rng {
			q.Window = window.TumblingSpec(event.Time(rng))
		} else {
			q.Window = window.SlidingSpec(event.Time(rng), event.Time(slide))
		}
	case haveRange:
		q.HasWindow = true
		q.Window = window.TumblingSpec(event.Time(rng))
	case haveSlide:
		return fmt.Errorf("sqlstream: SLIDE without RANGE")
	}
	return nil
}

func (p *parser) parseColRef() (ColRef, error) {
	stream, err := p.parseIdent()
	if err != nil {
		return ColRef{}, err
	}
	if err := p.expectSymbol("."); err != nil {
		return ColRef{}, err
	}
	col, err := p.parseIdent()
	if err != nil {
		return ColRef{}, err
	}
	f, err := fieldByName(col)
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Stream: stream, Field: f}, nil
}

func (p *parser) parseWhere(q *Query) error {
	for {
		if err := p.parseCondition(q); err != nil {
			return err
		}
		if !p.acceptKeyword("AND") {
			break
		}
	}
	return nil
}

// parseCondition parses either a cross-stream equality (join condition) or a
// single-stream comparison against a constant.
func (p *parser) parseCondition(q *Query) error {
	left, err := p.parseColRef()
	if err != nil {
		return err
	}
	if p.cur().kind != tokSymbol {
		return p.errf("expected comparison operator")
	}
	opText := p.next().text
	op, err := expr.ParseOp(opText)
	if err != nil {
		return p.errf("%v", err)
	}
	switch p.cur().kind {
	case tokNumber:
		v, err := p.parseNumber()
		if err != nil {
			return err
		}
		pred := q.Filters[left.Stream]
		q.Filters[left.Stream] = pred.And(expr.Comparison{Field: left.Field, Op: op, Value: v})
		return nil
	case tokIdent:
		right, err := p.parseColRef()
		if err != nil {
			return err
		}
		if op != expr.EQ {
			return fmt.Errorf("sqlstream: join condition must use equality, got %s", strings.ToUpper(opText))
		}
		q.JoinConds = append(q.JoinConds, JoinCond{Left: left, Right: right})
		return nil
	default:
		return p.errf("expected number or column after operator")
	}
}
