package sqlstream

import (
	"strings"
	"testing"

	"astream/internal/expr"
	"astream/internal/window"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

// TestPaperJoinTemplate parses Figure 7's join template verbatim shape.
func TestPaperJoinTemplate(t *testing.T) {
	q := mustParse(t, `
		SELECT *
		FROM A, B [RANGE 20] [SLICE 5]
		WHERE A.KEY = B.KEY AND
		A.FIELD3 > 10 AND
		B.FIELD1 <= 4`)
	if !q.IsJoin() || q.IsAggregation() {
		t.Fatal("should be a join, not aggregation")
	}
	if len(q.Sources) != 2 || q.Sources[0] != "A" || q.Sources[1] != "B" {
		t.Fatalf("sources = %v", q.Sources)
	}
	if !q.HasWindow || q.Window.Kind != window.Sliding || q.Window.Length != 20 || q.Window.Slide != 5 {
		t.Fatalf("window = %+v", q.Window)
	}
	if len(q.JoinConds) != 1 {
		t.Fatalf("join conds = %v", q.JoinConds)
	}
	jc := q.JoinConds[0]
	if jc.Left != (ColRef{"A", expr.KeyField}) || jc.Right != (ColRef{"B", expr.KeyField}) {
		t.Fatalf("join cond = %v", jc)
	}
	pa := q.FilterFor("A")
	if len(pa.Conj) != 1 || pa.Conj[0] != (expr.Comparison{Field: 2, Op: expr.GT, Value: 10}) {
		t.Fatalf("A predicate = %v", pa)
	}
	pb := q.FilterFor("B")
	if len(pb.Conj) != 1 || pb.Conj[0] != (expr.Comparison{Field: 0, Op: expr.LE, Value: 4}) {
		t.Fatalf("B predicate = %v", pb)
	}
}

// TestPaperAggTemplate parses Figure 8's aggregation template.
func TestPaperAggTemplate(t *testing.T) {
	q := mustParse(t, `
		SELECT SUM(A.FIELD1)
		FROM A [RANGE 10] [SLICE 10]
		WHERE A.F4 >= 7
		GROUPBY A.KEY`)
	if q.IsJoin() || !q.IsAggregation() {
		t.Fatal("should be an aggregation")
	}
	if q.Agg != AggSum || q.AggCol != (ColRef{"A", 0}) {
		t.Fatalf("agg = %v(%v)", q.Agg, q.AggCol)
	}
	if q.Window.Kind != window.Tumbling || q.Window.Length != 10 {
		t.Fatalf("window = %+v, want tumbling(10)", q.Window)
	}
	if q.GroupBy == nil || *q.GroupBy != (ColRef{"A", expr.KeyField}) {
		t.Fatalf("group by = %v", q.GroupBy)
	}
}

func TestTumblingWhenSlideOmitted(t *testing.T) {
	q := mustParse(t, `SELECT SUM(A.F0) FROM A [RANGE 30] WHERE A.F1 > 2 GROUPBY A.KEY`)
	if q.Window.Kind != window.Tumbling || q.Window.Length != 30 {
		t.Fatalf("window = %+v", q.Window)
	}
}

func TestSessionWindow(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(*) FROM A [SESSION 15] GROUPBY A.KEY`)
	if q.Window.Kind != window.Session || q.Window.Gap != 15 {
		t.Fatalf("window = %+v", q.Window)
	}
	if q.Agg != AggCount || q.AggCol.Stream != "" {
		t.Fatalf("agg = %v %v", q.Agg, q.AggCol)
	}
}

func TestNaryJoin(t *testing.T) {
	q := mustParse(t, `SELECT * FROM A, B, C [RANGE 10]
		WHERE A.KEY = B.KEY AND B.KEY = C.KEY AND C.F2 < 9`)
	if len(q.Sources) != 3 {
		t.Fatalf("sources = %v", q.Sources)
	}
	if len(q.JoinConds) != 2 {
		t.Fatalf("join conds = %v", q.JoinConds)
	}
}

func TestFieldAliases(t *testing.T) {
	q := mustParse(t, `SELECT SUM(A.FIELD5) FROM A [RANGE 5] GROUPBY A.KEY`)
	if q.AggCol.Field != 4 {
		t.Fatalf("FIELD5 should map to index 4, got %d", q.AggCol.Field)
	}
	q2 := mustParse(t, `SELECT SUM(A.F4) FROM A [RANGE 5] GROUPBY A.KEY`)
	if q2.AggCol.Field != 4 {
		t.Fatalf("F4 should map to index 4, got %d", q2.AggCol.Field)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	q := mustParse(t, `select sum(a.field1) from a [range 10] where a.f0 > 1 groupby a.key`)
	if q.Agg != AggSum {
		t.Fatal("lowercase keywords should parse")
	}
}

func TestGroupBySpaced(t *testing.T) {
	q := mustParse(t, `SELECT SUM(A.F1) FROM A [RANGE 10] GROUP BY A.KEY`)
	if q.GroupBy == nil {
		t.Fatal("GROUP BY (two words) should parse")
	}
}

func TestCommentsAndSemicolon(t *testing.T) {
	q := mustParse(t, `
		-- windowed aggregation
		SELECT SUM(A.F1) FROM A [RANGE 10] GROUPBY A.KEY;`)
	if q.Agg != AggSum {
		t.Fatal("comment/semicolon handling broken")
	}
}

func TestMultipleFilterConjuncts(t *testing.T) {
	q := mustParse(t, `SELECT * FROM A, B [RANGE 8] [SLIDE 2]
		WHERE A.KEY = B.KEY AND A.F0 > 1 AND A.F1 < 9 AND B.F2 = 3`)
	if len(q.FilterFor("A").Conj) != 2 || len(q.FilterFor("B").Conj) != 1 {
		t.Fatalf("filters = %v", q.Filters)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"SELECT", "expected * or aggregate"},
		{"FROM A", "expected SELECT"},
		{"SELECT * FROM", "expected identifier"},
		{"SELECT * FROM A, A [RANGE 5] WHERE A.KEY = A.KEY", "duplicate source"},
		{"SELECT * FROM A, B WHERE A.KEY = B.KEY", "requires a window"},
		{"SELECT SUM(A.F0) FROM A GROUPBY A.KEY", "requires a window"},
		{"SELECT SUM(A.F0) FROM A [RANGE 5]", "requires GROUPBY"},
		{"SELECT * FROM A [RANGE 5] GROUPBY A.KEY", "GROUPBY without aggregation"},
		{"SELECT * FROM A, B [RANGE 5] WHERE A.F0 > 1", "at least one cross-stream equality"},
		{"SELECT * FROM A, B [RANGE 5] WHERE A.KEY < B.KEY", "must use equality"},
		{"SELECT * FROM A, B [RANGE 5] WHERE A.KEY = C.KEY", "unknown stream"},
		{"SELECT SUM(A.F9) FROM A [RANGE 5] GROUPBY A.KEY", "bad field"},
		{"SELECT SUM(A.KEY) FROM A [RANGE 5] GROUPBY A.KEY", "key column"},
		{"SELECT SUM(A.WAT) FROM A [RANGE 5] GROUPBY A.KEY", "unknown column"},
		{"SELECT * FROM A [SLIDE 5]", "SLIDE without RANGE"},
		{"SELECT * FROM A [RANGE 5] [SESSION 3]", "cannot be combined"},
		{"SELECT * FROM A [RANGE 0] WHERE A.F0 > 1", "must be positive"},
		{"SELECT * FROM A, B [RANGE 5] [SLIDE 9] WHERE A.KEY = B.KEY", "in (0, length]"},
		{"SELECT * FROM A [RANGE 5] extra", "trailing input"},
		{"SELECT * FROM A WHERE A.F0 > ?", "unexpected character"},
		{"SELECT * FROM A WHERE A.F0 >", "expected number or column"},
		{"SELECT SUM(A.F0 FROM A [RANGE 5] GROUPBY A.KEY", `expected ")"`},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`SELECT * FROM A, B [RANGE 20] [SLIDE 5] WHERE A.KEY = B.KEY AND A.F2 > 10 AND B.F0 <= 4`,
		`SELECT SUM(A.F0) FROM A [RANGE 10] [SLIDE 10] WHERE A.F3 >= 7 GROUPBY A.KEY`,
		`SELECT COUNT(*) FROM A [SESSION 15] GROUPBY A.KEY`,
		`SELECT AVG(A.F2) FROM A [RANGE 6] [SLIDE 3] GROUPBY A.KEY`,
		`SELECT MIN(A.F1) FROM A [RANGE 6] GROUPBY A.KEY`,
		`SELECT MAX(A.F1) FROM A [RANGE 6] GROUPBY A.KEY`,
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		q2 := mustParse(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip unstable:\n  %s\n  %s", q1, q2)
		}
	}
}

func TestNegativeNumbers(t *testing.T) {
	q := mustParse(t, `SELECT * FROM A WHERE A.F0 > -5`)
	if q.FilterFor("A").Conj[0].Value != -5 {
		t.Fatalf("negative literal lost: %v", q.Filters)
	}
}

func TestPureSelection(t *testing.T) {
	q := mustParse(t, `SELECT * FROM A WHERE A.F0 > 3 AND A.F1 <= 7`)
	if q.IsJoin() || q.IsAggregation() || q.HasWindow {
		t.Fatal("pure selection misclassified")
	}
}
