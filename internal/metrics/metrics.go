// Package metrics implements the measurement instruments of the paper's
// evaluation (§4.3): event-time latency, query deployment latency,
// slowest/overall data throughput, query throughput, and sustainability —
// plus the time-series recorder behind the Figure 16 timelines.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records durations in logarithmic buckets (2 % relative error is
// plenty for latency reporting) with exact count/sum.
type Histogram struct {
	mu      sync.Mutex
	buckets map[int]uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]uint64), min: math.Inf(1), max: math.Inf(-1)}
}

const histGamma = 1.02

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	v := float64(d)
	if v < 1 {
		v = 1
	}
	idx := int(math.Ceil(math.Log(v) / math.Log(histGamma)))
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	type kv struct {
		idx int
		n   uint64
	}
	entries := make([]kv, 0, len(h.buckets))
	for i, n := range h.buckets {
		entries = append(entries, kv{i, n})
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].idx < entries[b].idx })
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var acc uint64
	for _, e := range entries {
		acc += e.n
		if acc > target {
			return time.Duration(math.Pow(histGamma, float64(e.idx)))
		}
	}
	return time.Duration(h.max)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Snapshot renders the histogram for reports.
func (h *Histogram) Snapshot() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// Meter measures a rate over wall-clock time.
type Meter struct {
	mu    sync.Mutex
	n     uint64
	start time.Time
	mark  time.Time
	markN uint64
	now   func() time.Time
}

// NewMeter creates a meter using the given clock (nil ⇒ time.Now).
func NewMeter(now func() time.Time) *Meter {
	if now == nil {
		now = time.Now
	}
	t := now()
	return &Meter{start: t, mark: t, now: now}
}

// Add records n events.
func (m *Meter) Add(n uint64) {
	m.mu.Lock()
	m.n += n
	m.mu.Unlock()
}

// Total returns the event count so far.
func (m *Meter) Total() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Rate returns events/second since the meter started.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	el := m.now().Sub(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.n) / el
}

// WindowRate returns events/second since the previous WindowRate call (or
// meter start) and advances the window mark.
func (m *Meter) WindowRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	el := now.Sub(m.mark).Seconds()
	dn := m.n - m.markN
	m.mark = now
	m.markN = m.n
	if el <= 0 {
		return 0
	}
	return float64(dn) / el
}

// TimePoint is one sample of the Figure 16 timeline.
type TimePoint struct {
	At         time.Duration // since recording start
	Throughput float64       // tuples/sec in the sample window
	LatencyMS  float64       // mean event-time latency, milliseconds
	Queries    int           // active query count
}

// Timeline records periodic samples for timeline plots.
type Timeline struct {
	mu     sync.Mutex
	points []TimePoint
	start  time.Time
}

// NewTimeline creates a recorder anchored at now.
func NewTimeline(start time.Time) *Timeline {
	return &Timeline{start: start}
}

// Sample appends one point.
func (tl *Timeline) Sample(at time.Time, throughput, latencyMS float64, queries int) {
	tl.mu.Lock()
	tl.points = append(tl.points, TimePoint{
		At: at.Sub(tl.start), Throughput: throughput, LatencyMS: latencyMS, Queries: queries,
	})
	tl.mu.Unlock()
}

// Points returns the recorded samples.
func (tl *Timeline) Points() []TimePoint {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]TimePoint, len(tl.points))
	copy(out, tl.points)
	return out
}

// Sustainability watches a latency signal and declares a workload
// unsustainable when the signal keeps growing (the paper's criterion for
// Flink under ad-hoc load: "ever-increasing latency").
type Sustainability struct {
	mu      sync.Mutex
	samples []float64
}

// Observe records a latency sample (any monotone unit).
func (s *Sustainability) Observe(v float64) {
	s.mu.Lock()
	s.samples = append(s.samples, v)
	s.mu.Unlock()
}

// Sustainable reports false when the last half of the samples trend strictly
// above the first half by more than 2× — a robust "keeps growing" detector
// that ignores noise and warmup.
func (s *Sustainability) Sustainable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.samples)
	if n < 4 {
		return true
	}
	half := n / 2
	first, second := 0.0, 0.0
	for i := 0; i < half; i++ {
		first += s.samples[i]
	}
	for i := n - half; i < n; i++ {
		second += s.samples[i]
	}
	first /= float64(half)
	second /= float64(half)
	if first <= 0 {
		return second <= 1
	}
	return second <= first*2
}
