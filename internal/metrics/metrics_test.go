package metrics

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should read zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 50*time.Millisecond || mean > 52*time.Millisecond {
		t.Fatalf("mean = %v, want ≈50.5ms", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 56*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈50ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Millisecond || p99 > 110*time.Millisecond {
		t.Fatalf("p99 = %v, want ≈99ms", p99)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Snapshot() == "" {
		t.Fatal("snapshot empty")
	}
}

func TestHistogramRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram()
	var vals []float64
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Intn(1e9) + 1)
		vals = append(vals, float64(v))
		h.Observe(v)
	}
	// p95 within 5 % of exact.
	exact := exactQuantile(vals, 0.95)
	got := float64(h.Quantile(0.95))
	if diff := got/exact - 1; diff > 0.05 || diff < -0.05 {
		t.Fatalf("p95 = %.0f, exact %.0f (%.1f%% off)", got, exact, diff*100)
	}
}

func exactQuantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[int(q*float64(len(s)))]
}

func TestMeter(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	m := NewMeter(clock)
	m.Add(100)
	now = now.Add(2 * time.Second)
	if r := m.Rate(); r != 50 {
		t.Fatalf("rate = %v, want 50", r)
	}
	if m.Total() != 100 {
		t.Fatalf("total = %d", m.Total())
	}
	// Window rate resets the mark.
	if r := m.WindowRate(); r != 50 {
		t.Fatalf("window rate = %v, want 50", r)
	}
	m.Add(30)
	now = now.Add(time.Second)
	if r := m.WindowRate(); r != 30 {
		t.Fatalf("second window rate = %v, want 30", r)
	}
}

func TestTimeline(t *testing.T) {
	start := time.Unix(100, 0)
	tl := NewTimeline(start)
	tl.Sample(start.Add(time.Second), 1000, 5, 3)
	tl.Sample(start.Add(2*time.Second), 900, 6, 4)
	pts := tl.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].At != time.Second || pts[0].Throughput != 1000 || pts[0].Queries != 3 {
		t.Fatalf("point 0 = %+v", pts[0])
	}
	// Points is a copy.
	pts[0].Queries = 99
	if tl.Points()[0].Queries == 99 {
		t.Fatal("Points must return a copy")
	}
}

func TestSustainability(t *testing.T) {
	var s Sustainability
	if !s.Sustainable() {
		t.Fatal("empty signal is sustainable")
	}
	// Flat latency: sustainable.
	for i := 0; i < 20; i++ {
		s.Observe(100)
	}
	if !s.Sustainable() {
		t.Fatal("flat latency must be sustainable")
	}
	// Growing latency: unsustainable.
	var g Sustainability
	for i := 0; i < 20; i++ {
		g.Observe(float64(i * i * 10))
	}
	if g.Sustainable() {
		t.Fatal("quadratically growing latency must be unsustainable")
	}
	// Noisy but bounded: sustainable.
	var n Sustainability
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		n.Observe(100 + float64(rng.Intn(50)))
	}
	if !n.Sustainable() {
		t.Fatal("bounded noisy latency must be sustainable")
	}
}
