package spe

import (
	"fmt"
	"runtime/debug"
	"sync"

	"astream/internal/event"
)

// Job is a deployed topology: one goroutine per operator instance, channels
// wired according to the DAG. Sources are fed through SourceContexts; the job
// finishes when every source is closed and all elements have drained.
type Job struct {
	topo     *Topology
	insts    map[*Node][]*instanceRT
	sources  map[*Node][]*SourceContext
	wg       sync.WaitGroup
	deployed bool
}

// DeployOption configures a deployment.
type DeployOption func(*deployConfig)

type deployConfig struct {
	codec      EdgeCodec
	snapSink   SnapshotSink
	failSink   FailureSink
	hook       FaultHook
	deltaEvery int
}

// WithEdgeCodec installs a codec applied to every element crossing cluster
// node boundaries (see Node.AssignNodes).
func WithEdgeCodec(c EdgeCodec) DeployOption {
	return func(d *deployConfig) { d.codec = c }
}

// WithSnapshotSink installs the receiver for checkpoint snapshots.
func WithSnapshotSink(s SnapshotSink) DeployOption {
	return func(d *deployConfig) { d.snapSink = s }
}

// WithFailureSink installs the receiver for instance failures. Without one,
// instance panics and invariant violations crash the process (fail-fast);
// with one, they are reported and the job keeps draining.
func WithFailureSink(s FailureSink) DeployOption {
	return func(d *deployConfig) { d.failSink = s }
}

// WithFaultHook installs a deterministic fault-injection hook on every
// instance and exchange emitter (tests only; nil in production).
func WithFaultHook(h FaultHook) DeployOption {
	return func(d *deployConfig) { d.hook = h }
}

// WithDeltaSnapshots enables incremental snapshots: logics implementing
// DeltaSnapshotter take snapshots through OnBarrierDelta, emitting a full
// snapshot at most every n barriers and deltas in between. n <= 1 disables
// deltas (every barrier is a full snapshot). The snapshot sink must be able
// to resolve base+delta chains (see checkpoint.BackendHooks.SupportsDeltas).
func WithDeltaSnapshots(n int) DeployOption {
	return func(d *deployConfig) { d.deltaEvery = n }
}

// Deploy validates the topology, plans operator chains, builds every
// instance, wires the exchanges, and starts the goroutines. Maximal runs of
// fusable forward edges (see Topology.chainNext) collapse into one instance
// each: the chained logics share a goroutine and pass tuples by direct call,
// so fused edges have no channel, no batch buffer, and no codec. A chain
// headed by a source runs embedded in the source's own goroutine (the one
// calling SourceContext). The returned Job is running and waiting for
// source input.
func Deploy(t *Topology, opts ...DeployOption) (*Job, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var cfg deployConfig
	for _, o := range opts {
		o(&cfg)
	}
	j := &Job{
		topo:    t,
		insts:   make(map[*Node][]*instanceRT),
		sources: make(map[*Node][]*SourceContext),
	}

	next := t.chainNext()
	prev := make(map[*Node]*Node, len(next))
	for _, n := range t.nodes {
		if d := next[n]; d != nil {
			prev[d] = n
		}
	}
	// chainFrom lists the fused run deployed as one instance, head first.
	chainFrom := func(head *Node) []*Node {
		var run []*Node
		for m := head; m != nil; m = next[m] {
			run = append(run, m)
		}
		return run
	}
	newMembers := func(run []*Node, i int) []chainMember {
		members := make([]chainMember, len(run))
		for k, m := range run {
			members[k] = chainMember{node: m, logic: m.newLogic(i)}
		}
		return members
	}

	// Build the instances that own a goroutine and an inbox: operators that
	// are not fused into an upstream instance. Sender counting is unchanged
	// — a chain head's inputs are always real exchange edges.
	for _, n := range t.nodes {
		if n.isSource || prev[n] != nil {
			continue
		}
		senders := 0
		for _, in := range n.inputs {
			senders += in.from.parallelism
		}
		run := chainFrom(n)
		rts := make([]*instanceRT, n.parallelism)
		for i := 0; i < n.parallelism; i++ {
			rt := newInstanceRT(n, i, newMembers(run, i), senders, t.channelCap)
			rt.snapSink = cfg.snapSink
			rt.failSink = cfg.failSink
			rt.hook = cfg.hook
			rt.deltaEvery = cfg.deltaEvery
			rts[i] = rt
		}
		j.insts[n] = rts
	}

	// Chains headed by a source have no inbox at all: the source instance
	// drives the chain in-line through its SourceContext, which acts as the
	// single sender.
	embedded := map[*Node][]*instanceRT{}
	for _, n := range t.nodes {
		if !n.isSource || next[n] == nil {
			continue
		}
		run := chainFrom(next[n])
		rts := make([]*instanceRT, n.parallelism)
		for i := 0; i < n.parallelism; i++ {
			rt := newInstanceRT(run[0], i, newMembers(run, i), 1, 0)
			rt.inbox = nil
			rt.snapSink = cfg.snapSink
			rt.failSink = cfg.failSink
			rt.hook = cfg.hook
			rt.deltaEvery = cfg.deltaEvery
			rts[i] = rt
		}
		embedded[n] = rts
	}

	// Build emitters. Sender IDs within an inbox are assigned in input-port
	// order, then upstream-instance order — the same enumeration used for
	// the sender count above.
	// senderBase[node][port] = first sender id of that port.
	senderBase := map[*Node][]int{}
	for _, n := range t.nodes {
		if n.isSource {
			continue
		}
		bases := make([]int, len(n.inputs))
		acc := 0
		for pi, in := range n.inputs {
			bases[pi] = acc
			acc += in.from.parallelism
		}
		senderBase[n] = bases
	}

	// emitterFor builds the exchange emitter for an unfused out-edge set.
	// Every consumer it finds is a deployed chain head: a fused consumer's
	// only input is its fused edge, and emitterFor is never called for the
	// upstream of a fused edge (that upstream is inside a chain).
	emitterFor := func(u *Node, ui int) *Emitter {
		em := &Emitter{
			codec:      cfg.codec,
			batchSize:  t.exchangeBatch,
			nowNanos:   t.nowNanos,
			flushNanos: t.flushNanos,
			opName:     u.name,
			instance:   ui,
			hook:       cfg.hook,
		}
		for _, d := range t.nodes {
			for pi, in := range d.inputs {
				if in.from != u {
					continue
				}
				c := consumer{mode: in.mode, self: ui}
				for di := 0; di < d.parallelism; di++ {
					c.targets = append(c.targets, target{
						ch:        j.insts[d][di].inbox,
						sender:    senderBase[d][pi] + ui,
						port:      pi,
						crossNode: u.nodeFor(ui) != d.nodeFor(di),
					})
				}
				em.consumers = append(em.consumers, c)
			}
		}
		return em
	}

	// wireChain gives the chain tail its exchange emitter and links every
	// earlier member to its successor by direct call.
	wireChain := func(rt *instanceRT, i int) {
		last := len(rt.members) - 1
		rt.emitter = emitterFor(rt.members[last].node, i)
		rt.members[last].out = rt.emitter
		for k := last - 1; k >= 0; k-- {
			rt.members[k].out = NewChainedEmitter(rt.members[k+1].logic, rt.members[k+1].out)
		}
	}

	for _, n := range t.nodes {
		if n.isSource {
			ctxs := make([]*SourceContext, n.parallelism)
			for i := 0; i < n.parallelism; i++ {
				if next[n] != nil {
					rt := embedded[n][i]
					wireChain(rt, i)
					ctxs[i] = &SourceContext{chain: rt, opName: rt.op.name, instance: i, failSink: cfg.failSink}
				} else {
					ctxs[i] = &SourceContext{emitter: emitterFor(n, i), opName: n.name, instance: i, failSink: cfg.failSink}
				}
			}
			j.sources[n] = ctxs
			continue
		}
		if prev[n] != nil {
			continue // fused into an upstream instance
		}
		for i, rt := range j.insts[n] {
			wireChain(rt, i)
		}
	}

	// Start instance goroutines (embedded chains run on their source's
	// caller and need none).
	for _, n := range t.nodes {
		if n.isSource || prev[n] != nil {
			continue
		}
		for _, rt := range j.insts[n] {
			j.wg.Add(1)
			go rt.runSupervised(&j.wg)
		}
	}
	j.deployed = true
	return j, nil
}

// PrimeChangelogSeq seeds every instance's changelog dedup counter, so a job
// recovered from a checkpoint accepts its first replayed changelog at seq+1
// instead of tripping the gap invariant. Must be called before any input is
// pushed: the instance goroutines only read the counter after their first
// inbox receive, so the channel send orders this write safely.
func (j *Job) PrimeChangelogSeq(seq uint64) {
	for _, rts := range j.insts {
		for _, rt := range rts {
			rt.clSeq = seq
		}
	}
	for _, ctxs := range j.sources {
		for _, c := range ctxs {
			if c.chain != nil {
				c.chain.clSeq = seq
			}
		}
	}
}

// SourceContext returns the push interface for one source instance.
func (j *Job) SourceContext(n *Node, instance int) (*SourceContext, error) {
	ctxs, ok := j.sources[n]
	if !ok {
		return nil, fmt.Errorf("spe: %q is not a source of this job", n.name)
	}
	if instance < 0 || instance >= len(ctxs) {
		return nil, fmt.Errorf("spe: source %q has no instance %d", n.name, instance)
	}
	return ctxs[instance], nil
}

// CloseAllSources closes every source instance (idempotent), letting the job
// drain to completion.
func (j *Job) CloseAllSources() {
	for _, ctxs := range j.sources {
		for _, c := range ctxs {
			c.Close()
		}
	}
}

// Wait blocks until all operator instances have finished (every source
// closed and every element drained).
func (j *Job) Wait() {
	j.wg.Wait()
}

// Stop closes all sources and waits for the drain.
func (j *Job) Stop() {
	j.CloseAllSources()
	j.Wait()
}

// SourceContext pushes elements into the running job on behalf of one source
// instance. A SourceContext must be used by a single goroutine. When the
// source heads a fused chain, that chain runs embedded here: every emission
// drives the chained logics synchronously on the calling goroutine, and the
// chain tail's exchange emitter is the first channel hop.
//
// An embedded chain has no goroutine of its own, so the SourceContext is its
// supervisor: a panic in a chained logic (or an edge fault on the tail
// emitter) marks the context failed and is reported to the failure sink;
// further emissions are discarded and Close still propagates EOS so the rest
// of the job drains.
type SourceContext struct {
	emitter  *Emitter    // exchange emitter (nil when the source heads a chain)
	chain    *instanceRT // embedded chain driven in-line (nil otherwise)
	closed   bool
	failed   bool
	opName   string
	instance int
	failSink FailureSink
}

// out returns the exchange emitter this context ultimately feeds.
func (s *SourceContext) out() *Emitter {
	if s.chain != nil {
		return s.chain.emitter
	}
	return s.emitter
}

// guardSupervised converts a panic unwinding out of an embedded chain into
// an InstanceFailure (deferred around every emission).
func (s *SourceContext) guardSupervised() {
	pv := recover()
	if pv == nil {
		return
	}
	if s.failSink == nil {
		panic(pv) // no supervisor installed: stay fail-fast
	}
	s.failed = true
	s.failSink.OnInstanceFailure(InstanceFailure{
		Op:       s.opName,
		Instance: s.instance,
		Reason:   fmt.Sprint(pv),
		Panic:    pv,
		Stack:    debug.Stack(),
	})
}

// failWith reports a propagated (non-panic) failure once.
func (s *SourceContext) failWith(err error) {
	if err == nil || s.failed {
		return
	}
	if s.failSink == nil {
		panic(err.Error())
	}
	s.failed = true
	s.failSink.OnInstanceFailure(InstanceFailure{Op: s.opName, Instance: s.instance, Reason: err.Error()})
}

// EmitTuple pushes a data tuple.
func (s *SourceContext) EmitTuple(t event.Tuple) {
	if s.failed {
		return
	}
	defer s.guardSupervised()
	if s.chain != nil {
		if s.chain.hook != nil {
			s.chain.hook.BeforeTuple(s.chain.op.name, s.chain.instance)
		}
		head := &s.chain.members[0]
		head.logic.OnTuple(0, t, head.out)
		s.chain.emitter.maybeTimeFlush()
	} else {
		s.emitter.EmitTuple(t)
		s.emitter.maybeTimeFlush()
	}
	s.failWith(s.out().Err())
}

// EmitWatermark asserts no later tuple from this source will have an
// event-time ≤ wm.
func (s *SourceContext) EmitWatermark(wm event.Time) {
	if s.failed {
		return
	}
	defer s.guardSupervised()
	if s.chain != nil {
		s.chain.onWatermark(0, wm)
	} else {
		s.emitter.broadcast(event.NewWatermark(wm))
	}
	s.failWith(s.out().Err())
}

// EmitChangelog weaves a changelog marker into the stream at event-time at.
// The payload must implement ChangelogPayload. With a parallel source, every
// instance must emit every changelog (the runtime deduplicates downstream).
func (s *SourceContext) EmitChangelog(payload ChangelogPayload, at event.Time) {
	if s.failed {
		return
	}
	defer s.guardSupervised()
	if s.chain != nil {
		s.failWith(s.chain.onChangelog(event.NewChangelog(payload, at)))
	} else {
		s.emitter.broadcast(event.NewChangelog(payload, at))
	}
	s.failWith(s.out().Err())
}

// EmitBarrier injects a checkpoint barrier.
func (s *SourceContext) EmitBarrier(id uint64) {
	if s.failed {
		return
	}
	defer s.guardSupervised()
	if s.chain != nil {
		s.failWith(s.chain.onBarrier(0, id))
	} else {
		s.emitter.broadcast(event.NewBarrier(id))
	}
	s.failWith(s.out().Err())
}

// Close signals end of stream. Further emissions are a programming error.
// On a failed context the chain drain is skipped (its state is already
// suspect); EOS still reaches downstream so the job can finish.
func (s *SourceContext) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if !s.failed {
		func() {
			defer s.guardSupervised()
			if s.chain != nil {
				s.failWith(s.chain.sourceClose())
			} else {
				s.emitter.broadcast(event.EOS())
			}
		}()
		if !s.failed {
			return
		}
	}
	// Failed before or during close: drop pending output and force EOS out
	// (downstream deduplicates a second EOS from the same sender).
	em := s.out()
	em.discardPending()
	em.broadcastRaw(event.EOS())
}
