package spe

import (
	"fmt"
	"sync"

	"astream/internal/event"
)

// Job is a deployed topology: one goroutine per operator instance, channels
// wired according to the DAG. Sources are fed through SourceContexts; the job
// finishes when every source is closed and all elements have drained.
type Job struct {
	topo     *Topology
	insts    map[*Node][]*instanceRT
	sources  map[*Node][]*SourceContext
	wg       sync.WaitGroup
	deployed bool
}

// DeployOption configures a deployment.
type DeployOption func(*deployConfig)

type deployConfig struct {
	codec    EdgeCodec
	snapSink SnapshotSink
}

// WithEdgeCodec installs a codec applied to every element crossing cluster
// node boundaries (see Node.AssignNodes).
func WithEdgeCodec(c EdgeCodec) DeployOption {
	return func(d *deployConfig) { d.codec = c }
}

// WithSnapshotSink installs the receiver for checkpoint snapshots.
func WithSnapshotSink(s SnapshotSink) DeployOption {
	return func(d *deployConfig) { d.snapSink = s }
}

// Deploy validates the topology, builds every instance, wires the exchanges,
// and starts the goroutines. The returned Job is running and waiting for
// source input.
func Deploy(t *Topology, opts ...DeployOption) (*Job, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var cfg deployConfig
	for _, o := range opts {
		o(&cfg)
	}
	j := &Job{
		topo:    t,
		insts:   make(map[*Node][]*instanceRT),
		sources: make(map[*Node][]*SourceContext),
	}

	// Count senders per (node, instance): every upstream instance of every
	// input port is one sender.
	for _, n := range t.nodes {
		if n.isSource {
			continue
		}
		senders := 0
		for _, in := range n.inputs {
			senders += in.from.parallelism
		}
		rts := make([]*instanceRT, n.parallelism)
		for i := 0; i < n.parallelism; i++ {
			rt := newInstanceRT(n, i, n.newLogic(i), senders, t.channelCap)
			rt.snapSink = cfg.snapSink
			rts[i] = rt
		}
		j.insts[n] = rts
	}

	// Build emitters. Sender IDs within an inbox are assigned in input-port
	// order, then upstream-instance order — the same enumeration used for
	// the sender count above.
	// senderBase[node][port] = first sender id of that port.
	senderBase := map[*Node][]int{}
	for _, n := range t.nodes {
		if n.isSource {
			continue
		}
		bases := make([]int, len(n.inputs))
		acc := 0
		for pi, in := range n.inputs {
			bases[pi] = acc
			acc += in.from.parallelism
		}
		senderBase[n] = bases
	}

	emitterFor := func(u *Node, ui int) *Emitter {
		em := &Emitter{codec: cfg.codec, batchSize: t.exchangeBatch}
		for _, d := range t.nodes {
			for pi, in := range d.inputs {
				if in.from != u {
					continue
				}
				c := consumer{mode: in.mode}
				for di := 0; di < d.parallelism; di++ {
					c.targets = append(c.targets, target{
						ch:        j.insts[d][di].inbox,
						sender:    senderBase[d][pi] + ui,
						port:      pi,
						crossNode: u.nodeFor(ui) != d.nodeFor(di),
					})
				}
				em.consumers = append(em.consumers, c)
			}
		}
		return em
	}

	for _, n := range t.nodes {
		if n.isSource {
			ctxs := make([]*SourceContext, n.parallelism)
			for i := 0; i < n.parallelism; i++ {
				ctxs[i] = &SourceContext{emitter: emitterFor(n, i)}
			}
			j.sources[n] = ctxs
			continue
		}
		for i, rt := range j.insts[n] {
			rt.emitter = emitterFor(n, i)
		}
	}

	// Start instance goroutines.
	for _, n := range t.nodes {
		if n.isSource {
			continue
		}
		for _, rt := range j.insts[n] {
			j.wg.Add(1)
			go func(rt *instanceRT) {
				defer j.wg.Done()
				rt.run()
			}(rt)
		}
	}
	j.deployed = true
	return j, nil
}

// SourceContext returns the push interface for one source instance.
func (j *Job) SourceContext(n *Node, instance int) (*SourceContext, error) {
	ctxs, ok := j.sources[n]
	if !ok {
		return nil, fmt.Errorf("spe: %q is not a source of this job", n.name)
	}
	if instance < 0 || instance >= len(ctxs) {
		return nil, fmt.Errorf("spe: source %q has no instance %d", n.name, instance)
	}
	return ctxs[instance], nil
}

// CloseAllSources closes every source instance (idempotent), letting the job
// drain to completion.
func (j *Job) CloseAllSources() {
	for _, ctxs := range j.sources {
		for _, c := range ctxs {
			c.Close()
		}
	}
}

// Wait blocks until all operator instances have finished (every source
// closed and every element drained).
func (j *Job) Wait() {
	j.wg.Wait()
}

// Stop closes all sources and waits for the drain.
func (j *Job) Stop() {
	j.CloseAllSources()
	j.Wait()
}

// SourceContext pushes elements into the running job on behalf of one source
// instance. A SourceContext must be used by a single goroutine.
type SourceContext struct {
	emitter *Emitter
	closed  bool
}

// EmitTuple pushes a data tuple.
func (s *SourceContext) EmitTuple(t event.Tuple) {
	s.emitter.EmitTuple(t)
}

// EmitWatermark asserts no later tuple from this source will have an
// event-time ≤ wm.
func (s *SourceContext) EmitWatermark(wm event.Time) {
	s.emitter.broadcast(event.NewWatermark(wm))
}

// EmitChangelog weaves a changelog marker into the stream at event-time at.
// The payload must implement ChangelogPayload. With a parallel source, every
// instance must emit every changelog (the runtime deduplicates downstream).
func (s *SourceContext) EmitChangelog(payload ChangelogPayload, at event.Time) {
	s.emitter.broadcast(event.NewChangelog(payload, at))
}

// EmitBarrier injects a checkpoint barrier.
func (s *SourceContext) EmitBarrier(id uint64) {
	s.emitter.broadcast(event.NewBarrier(id))
}

// Close signals end of stream. Further emissions are a programming error.
func (s *SourceContext) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.emitter.broadcast(event.EOS())
}
