package spe

import (
	"testing"

	"astream/internal/event"
)

// newBareRT builds an instance runtime with a sink-less emitter for direct
// handle() testing.
func newBareRT(senders int, logic Logic) *instanceRT {
	op := &Node{name: "test", parallelism: 1}
	em := &Emitter{}
	rt := newInstanceRT(op, 0, []chainMember{{node: op, logic: logic, out: em}}, senders, 16)
	rt.emitter = em
	return rt
}

type recording struct {
	BaseLogic
	wms      []event.Time
	cls      []uint64
	barriers []uint64
	eos      int
	tuples   int
}

func (r *recording) OnTuple(int, event.Tuple, *Emitter)   { r.tuples++ }
func (r *recording) OnWatermark(w event.Time, _ *Emitter) { r.wms = append(r.wms, w) }
func (r *recording) OnChangelog(p any, _ event.Time, _ *Emitter) {
	r.cls = append(r.cls, p.(*testChangelog).seq)
}
func (r *recording) OnBarrier(id uint64, _ *Emitter) []byte {
	r.barriers = append(r.barriers, id)
	return nil
}
func (r *recording) OnEOS(*Emitter) { r.eos++ }

func TestRuntimeWatermarkRegressionIgnored(t *testing.T) {
	rec := &recording{}
	rt := newBareRT(1, rec)
	rt.handle(message{sender: 0, elem: event.NewWatermark(10)})
	rt.handle(message{sender: 0, elem: event.NewWatermark(5)})  // regression
	rt.handle(message{sender: 0, elem: event.NewWatermark(10)}) // duplicate
	rt.handle(message{sender: 0, elem: event.NewWatermark(12)})
	if len(rec.wms) != 2 || rec.wms[0] != 10 || rec.wms[1] != 12 {
		t.Fatalf("wms = %v, want [10 12]", rec.wms)
	}
}

func TestRuntimeChangelogGapFails(t *testing.T) {
	rec := &recording{}
	rt := newBareRT(1, rec)
	if err := rt.handle(message{sender: 0, elem: event.NewChangelog(&testChangelog{1}, 1)}); err != nil {
		t.Fatalf("in-order changelog: %v", err)
	}
	if err := rt.handle(message{sender: 0, elem: event.NewChangelog(&testChangelog{3}, 3)}); err == nil {
		t.Fatal("changelog seq gap must fail the instance")
	}
}

func TestRuntimeBadChangelogPayloadFails(t *testing.T) {
	rec := &recording{}
	rt := newBareRT(1, rec)
	if err := rt.handle(message{sender: 0, elem: event.NewChangelog("not a payload", 1)}); err == nil {
		t.Fatal("non-ChangelogPayload must fail the instance")
	}
}

func TestRuntimeOverlappingBarriersFail(t *testing.T) {
	rec := &recording{}
	rt := newBareRT(2, rec)
	if err := rt.handle(message{sender: 0, elem: event.NewBarrier(1)}); err != nil {
		t.Fatalf("first barrier: %v", err)
	}
	if err := rt.handle(message{sender: 1, elem: event.NewBarrier(2)}); err == nil {
		t.Fatal("overlapping barriers must fail the instance")
	}
}

func TestRuntimeBarrierBuffersBlockedSender(t *testing.T) {
	rec := &recording{}
	rt := newBareRT(2, rec)
	rt.handle(message{sender: 0, elem: event.NewBarrier(1)})
	// Tuples from the barriered sender buffer; the other flows.
	rt.handle(message{sender: 0, elem: event.NewTuple(event.Tuple{})})
	rt.handle(message{sender: 1, elem: event.NewTuple(event.Tuple{})})
	if rec.tuples != 1 {
		t.Fatalf("tuples processed during alignment = %d, want 1", rec.tuples)
	}
	rt.handle(message{sender: 1, elem: event.NewBarrier(1)})
	if len(rec.barriers) != 1 || rec.barriers[0] != 1 {
		t.Fatalf("barriers = %v", rec.barriers)
	}
	if rec.tuples != 2 {
		t.Fatalf("buffered tuple not replayed: %d", rec.tuples)
	}
}

func TestRuntimeDuplicateEOSIgnored(t *testing.T) {
	rec := &recording{}
	rt := newBareRT(2, rec)
	rt.handle(message{sender: 0, elem: event.EOS()})
	rt.handle(message{sender: 0, elem: event.EOS()})
	if rt.doneCount != 1 {
		t.Fatalf("doneCount = %d, want 1", rt.doneCount)
	}
}

func TestPartitionModeStrings(t *testing.T) {
	if Keyed.String() != "keyed" || Broadcast.String() != "broadcast" || Global.String() != "global" {
		t.Fatal("PartitionMode strings")
	}
	if Forward.String() != "forward" {
		t.Fatalf("Forward.String() = %q, want %q", Forward.String(), "forward")
	}
	if got := PartitionMode(99).String(); got != "mode(99)" {
		t.Fatalf("unknown mode String() = %q", got)
	}
}

func TestHashKeySpread(t *testing.T) {
	if hashKey(42, 1) != 0 {
		t.Fatal("single instance must map to 0")
	}
	seen := map[int]bool{}
	for k := int64(0); k < 1000; k++ {
		h := hashKey(k, 8)
		if h < 0 || h >= 8 {
			t.Fatalf("hashKey out of range: %d", h)
		}
		seen[h] = true
	}
	if len(seen) != 8 {
		t.Fatalf("hashKey used %d of 8 buckets", len(seen))
	}
}
