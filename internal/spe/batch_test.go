package spe

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"astream/internal/bitset"
	"astream/internal/event"
)

// orderLog records every callback as one string in arrival order, so tests
// can assert the exact interleaving of tuples and control elements that the
// exchange batching must preserve.
type orderLog struct {
	BaseLogic
	mu  sync.Mutex
	log []string
}

func (l *orderLog) add(s string) {
	l.mu.Lock()
	l.log = append(l.log, s)
	l.mu.Unlock()
}

func (l *orderLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.log...)
}

func (l *orderLog) OnTuple(_ int, t event.Tuple, _ *Emitter) { l.add(fmt.Sprintf("t%d", t.Key)) }
func (l *orderLog) OnWatermark(wm event.Time, _ *Emitter)    { l.add(fmt.Sprintf("wm%d", wm)) }
func (l *orderLog) OnChangelog(_ any, at event.Time, _ *Emitter) {
	l.add(fmt.Sprintf("cl%d", at))
}
func (l *orderLog) OnBarrier(id uint64, _ *Emitter) []byte {
	l.add(fmt.Sprintf("b%d", id))
	return nil
}
func (l *orderLog) OnEOS(*Emitter) { l.add("eos") }

// TestBatchingPreservesEdgeOrder drives a single source→sink edge with a
// small batch size and an emission sequence that interleaves full batches,
// partial batches, watermarks, changelogs, and barriers. Because every
// control element flushes pending batches first (Emitter.broadcast), the sink
// must observe exactly the emission order — batching may group channel sends
// but never reorder an edge.
func TestBatchingPreservesEdgeOrder(t *testing.T) {
	topo := NewTopology()
	topo.SetExchangeBatch(8)
	src := topo.AddSource("src", 1)
	lg := &orderLog{}
	topo.AddOperator("sink", 1, func(int) Logic { return lg }, KeyedInput(src))

	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := job.SourceContext(src, 0)
	if err != nil {
		t.Fatal(err)
	}

	var want []string
	key := int64(0)
	emit := func(n int) {
		for i := 0; i < n; i++ {
			sc.EmitTuple(event.Tuple{Key: key, Time: event.Time(key)})
			want = append(want, fmt.Sprintf("t%d", key))
			key++
		}
	}
	emit(20) // two full flushes at 8, 4 left pending
	sc.EmitWatermark(19)
	want = append(want, "wm19")
	emit(3) // partial batch pending
	sc.EmitChangelog(&testChangelog{1}, 23)
	want = append(want, "cl23")
	emit(8) // exactly one full batch
	sc.EmitBarrier(1)
	want = append(want, "b1")
	emit(5)
	sc.EmitWatermark(35)
	want = append(want, "wm35")
	job.Stop()
	want = append(want, "eos")

	got := lg.snapshot()
	if len(got) != len(want) {
		t.Fatalf("log length %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q\ngot:  %v\nwant: %v", i, got[i], want[i], got, want)
		}
	}
}

// TestBatchingEOSFlushesPartialBatch checks that closing a source delivers a
// batch that never reached the flush threshold: EOS is broadcast, and
// broadcast flushes every pending edge vector first.
func TestBatchingEOSFlushesPartialBatch(t *testing.T) {
	topo := NewTopology()
	topo.SetExchangeBatch(64)
	src := topo.AddSource("src", 1)
	lg := &orderLog{}
	topo.AddOperator("sink", 1, func(int) Logic { return lg }, KeyedInput(src))
	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := job.SourceContext(src, 0)
	for i := int64(0); i < 5; i++ {
		sc.EmitTuple(event.Tuple{Key: i})
	}
	job.Stop()

	got := lg.snapshot()
	want := []string{"t0", "t1", "t2", "t3", "t4", "eos"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("log = %v, want %v", got, want)
	}
}

// TestBatchingBarrierAlignmentBuffersBatches checks checkpoint alignment with
// batched exchanges and two senders: pre-barrier tuples from both senders
// arrive before the barrier fires, and post-barrier tuples from the
// already-aligned sender (which arrive as whole batch messages and must be
// buffered as such) replay only after alignment completes.
func TestBatchingBarrierAlignmentBuffersBatches(t *testing.T) {
	topo := NewTopology()
	topo.SetExchangeBatch(8)
	src := topo.AddSource("src", 2)
	lg := &orderLog{}
	topo.AddOperator("sink", 1, func(int) Logic { return lg }, GlobalInput(src))
	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc0, _ := job.SourceContext(src, 0)
	sc1, _ := job.SourceContext(src, 1)

	// Sender 0 finishes all its sends before sender 1 starts, so the inbox
	// arrival order is deterministic.
	for i := int64(0); i < 5; i++ {
		sc0.EmitTuple(event.Tuple{Key: i})
	}
	sc0.EmitBarrier(1)
	sc0.EmitTuple(event.Tuple{Key: 10})
	sc0.EmitTuple(event.Tuple{Key: 11})
	sc0.Close() // flushes the post-barrier partial batch, then EOS
	for i := int64(5); i < 10; i++ {
		sc1.EmitTuple(event.Tuple{Key: i})
	}
	sc1.EmitBarrier(1)
	sc1.Close()
	job.Wait()

	got := lg.snapshot()
	want := []string{
		"t0", "t1", "t2", "t3", "t4", // sender 0, flushed by its barrier
		"t5", "t6", "t7", "t8", "t9", // sender 1 flows during alignment
		"b1",         // alignment completes
		"t10", "t11", // sender 0's buffered post-barrier batch replays
		"eos",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("log = %v\nwant  %v", got, want)
	}
}

// TestBatchingThroughOperatorChain runs batched exchanges across two hops
// with a parallel middle operator: every tuple must survive, and the final
// watermark — which trails all tuples on every edge — must reach the sink
// after all of them.
func TestBatchingThroughOperatorChain(t *testing.T) {
	topo := NewTopology()
	topo.SetExchangeBatch(8)
	src := topo.AddSource("src", 1)
	mid := topo.AddOperator("double", 2, NewMapLogic(func(tu *event.Tuple) bool {
		tu.Fields[0] *= 2
		return true
	}), KeyedInput(src))
	lg := &orderLog{}
	topo.AddOperator("sink", 1, func(int) Logic { return lg }, KeyedInput(mid))

	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := job.SourceContext(src, 0)
	const n = 100
	for i := int64(0); i < n; i++ {
		sc.EmitTuple(event.Tuple{Key: i, Time: event.Time(i)})
	}
	sc.EmitWatermark(n - 1)
	job.Stop()

	got := lg.snapshot()
	tuples := 0
	wmAt := -1
	for i, s := range got {
		if s == fmt.Sprintf("wm%d", n-1) {
			wmAt = i
		} else if s[0] == 't' {
			tuples++
			if wmAt >= 0 {
				t.Fatalf("tuple %q after watermark (index %d > %d)", s, i, wmAt)
			}
		}
	}
	if tuples != n {
		t.Fatalf("sink saw %d tuples, want %d", tuples, n)
	}
	if wmAt < 0 {
		t.Fatalf("final watermark missing from log %v", got)
	}
}

// TestBatchCodecRoundTrip pins the cross-node batch serialization: a batch of
// tuples — including wide (spilled) query-sets and negative field values —
// must round-trip through EncodeBatch/DecodeBatch exactly.
func TestBatchCodecRoundTrip(t *testing.T) {
	var c BinaryCodec
	batch := make([]event.Tuple, 0, 9)
	for i := 0; i < 9; i++ {
		tu := event.Tuple{
			Key:         int64(i - 4),
			Time:        event.Time(i * 1000),
			IngestNanos: int64(i * 7),
			Stream:      uint8(i % 2),
		}
		for f := range tu.Fields {
			tu.Fields[f] = int64(i*31 - f*17)
		}
		tu.QuerySet = bitset.FromIndexes(i, i*19) // i*19 crosses 64 for i ≥ 4
		batch = append(batch, tu)
	}
	enc := c.EncodeBatch(batch)
	dec, err := c.DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(batch) {
		t.Fatalf("decoded %d tuples, want %d", len(dec), len(batch))
	}
	for i := range batch {
		a, b := batch[i], dec[i]
		if a.Key != b.Key || a.Time != b.Time || a.IngestNanos != b.IngestNanos || a.Stream != b.Stream || a.Fields != b.Fields {
			t.Fatalf("tuple %d mismatch: %+v vs %+v", i, a, b)
		}
		if !a.QuerySet.Equal(b.QuerySet) {
			t.Fatalf("tuple %d query-set mismatch: %s vs %s", i, a.QuerySet, b.QuerySet)
		}
	}

	if _, err := c.DecodeBatch(enc[:3]); err == nil {
		t.Fatal("truncated batch header must error")
	}
	if _, err := c.DecodeBatch(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated batch body must error")
	}
}

// TestDecodeBatchErrorReturnsBufferToPool pins DecodeBatch's error paths:
// a decode that fails after acquiring a batch buffer must return that
// buffer to the exchange pool instead of leaking it.
func TestDecodeBatchErrorReturnsBufferToPool(t *testing.T) {
	var c BinaryCodec
	enc := c.EncodeBatch([]event.Tuple{{Key: 1, Time: 2}})

	// The encoded tuple carries no query-set, so its word count is the
	// final u32 of the encoding; patching it past maxQSWords drives the
	// oversized-query-set error path.
	oversized := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(oversized[len(oversized)-4:], maxQSWords+1)

	cases := []struct {
		name string
		bad  []byte
	}{
		{"truncated body", enc[:len(enc)-2]},
		{"oversized query-set", oversized},
	}
	for _, tc := range cases {
		// Under the race detector sync.Pool randomly discards Puts, so a
		// single attempt can miss even when DecodeBatch recycles
		// correctly. A leak never lands in the pool, so retrying only
		// converts correct behavior into a pass, never a leak.
		recycled := false
		for attempt := 0; attempt < 32 && !recycled; attempt++ {
			for tupleBatchPool.Get() != nil {
				// Drain so the only possible pooled buffer afterwards is
				// the one the failed decode acquired.
			}
			if _, err := c.DecodeBatch(tc.bad); err == nil {
				t.Fatalf("%s batch must error", tc.name)
			}
			recycled = tupleBatchPool.Get() != nil
		}
		if !recycled {
			t.Errorf("%s: failed decode leaked the pooled batch buffer", tc.name)
		}
	}
}
