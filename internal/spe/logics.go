package spe

import (
	"astream/internal/event"
)

// MapLogic applies fn to every tuple. fn returning false drops the tuple
// (filter); fn may mutate the tuple in place (map).
type MapLogic struct {
	BaseLogic
	Fn func(*event.Tuple) bool
}

// NewMapLogic adapts a function into an operator logic factory.
func NewMapLogic(fn func(*event.Tuple) bool) func(int) Logic {
	return func(int) Logic { return &MapLogic{Fn: fn} }
}

func (m *MapLogic) OnTuple(_ int, t event.Tuple, out *Emitter) {
	if m.Fn(&t) {
		out.EmitTuple(t)
	}
}

// SinkLogic delivers tuples and watermarks to callbacks. Callbacks run on
// the instance goroutine; they must be fast or thread-safe as appropriate.
type SinkLogic struct {
	BaseLogic
	Tuple func(event.Tuple)
	WM    func(event.Time)
	EOS   func()
}

// NewSinkLogic adapts callbacks into a sink logic factory.
func NewSinkLogic(onTuple func(event.Tuple)) func(int) Logic {
	return func(int) Logic { return &SinkLogic{Tuple: onTuple} }
}

func (s *SinkLogic) OnTuple(_ int, t event.Tuple, _ *Emitter) {
	if s.Tuple != nil {
		s.Tuple(t)
	}
}

func (s *SinkLogic) OnWatermark(wm event.Time, _ *Emitter) {
	if s.WM != nil {
		s.WM(wm)
	}
}

func (s *SinkLogic) OnEOS(_ *Emitter) {
	if s.EOS != nil {
		s.EOS()
	}
}
