package spe

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"astream/internal/event"
)

func passThrough(*event.Tuple) bool { return true }

// TestChainFusionNoChannelHop proves fused edges deliver tuples without any
// channel hop: a fully forward topology collapses into the source's own
// goroutine, the built Job contains no intermediate exchange instances at
// all, and a tuple is observable at the sink synchronously — before any
// other goroutine could have run a channel receive.
func TestChainFusionNoChannelHop(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	a := topo.AddOperator("stage-a", 1, NewMapLogic(func(tu *event.Tuple) bool {
		tu.Fields[0]++
		return true
	}), ForwardInput(src))
	b := topo.AddOperator("stage-b", 1, NewMapLogic(func(tu *event.Tuple) bool {
		tu.Fields[0] *= 10
		return true
	}), ForwardInput(a))
	var col collector
	sink := topo.AddOperator("sink", 1, col.sinkFactory(), ForwardInput(b))

	chains := topo.Chains()
	if len(chains) != 1 || strings.Join(chains[0], ">") != "src>stage-a>stage-b>sink" {
		t.Fatalf("Chains() = %v, want one chain src>stage-a>stage-b>sink", chains)
	}

	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Node{a, b, sink} {
		if _, ok := job.insts[n]; ok {
			t.Fatalf("%q was deployed as its own instance; fused chains must have no exchange edge", n.name)
		}
	}
	sc, err := job.SourceContext(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc.EmitTuple(tupleAt(7, 5))
	// Synchronous delivery: the tuple must already be at the sink, with both
	// chained transformations applied in order ((0+1)*10).
	if len(col.tuples) != 1 || col.tuples[0].Fields[0] != 10 {
		t.Fatalf("tuple not delivered synchronously through the chain: %+v", col.tuples)
	}
	sc.EmitWatermark(42)
	if len(col.wms) != 1 || col.wms[0] != 42 {
		t.Fatalf("watermark not delivered through embedded chain: %v", col.wms)
	}
	job.Stop()
	if col.eos != 1 {
		t.Fatalf("eos = %d, want 1", col.eos)
	}
}

// TestChainOperatorHeadedFusion fuses a forward edge between two parallel
// operators downstream of a keyed shuffle: the pair shares instances (the
// downstream operator has none of its own) and results flow end to end.
func TestChainOperatorHeadedFusion(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	a := topo.AddOperator("a", 2, NewMapLogic(func(tu *event.Tuple) bool {
		tu.Fields[0]++
		return true
	}), KeyedInput(src))
	var col collector
	b := topo.AddOperator("b", 2, col.sinkFactory(), ForwardInput(a))

	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := job.insts[b]; ok {
		t.Fatal("fused operator b must not own instances")
	}
	rts, ok := job.insts[a]
	if !ok || len(rts) != 2 {
		t.Fatalf("chain head a must own the 2 instances, got %v", rts)
	}
	for i, rt := range rts {
		if len(rt.members) != 2 || rt.members[0].node != a || rt.members[1].node != b {
			t.Fatalf("instance %d members wrong: %+v", i, rt.members)
		}
	}
	sc, _ := job.SourceContext(src, 0)
	for i := int64(0); i < 100; i++ {
		sc.EmitTuple(tupleAt(i, event.Time(i)))
	}
	job.Stop()
	if len(col.tuples) != 100 {
		t.Fatalf("sink got %d tuples, want 100", len(col.tuples))
	}
	for _, tu := range col.tuples {
		if tu.Fields[0] != 1 {
			t.Fatalf("chained map not applied: %+v", tu)
		}
	}
}

// TestForwardMultiConsumerFallsBackToExchange: an upstream with a forward
// consumer plus another consumer cannot be fused, but the forward edge still
// routes instance i → instance i over a real exchange.
func TestForwardMultiConsumerFallsBackToExchange(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 2)
	var mu sync.Mutex
	perInst := make([]int, 2)
	fwd := topo.AddOperator("fwd", 2, func(inst int) Logic {
		return &SinkLogic{Tuple: func(event.Tuple) {
			mu.Lock()
			perInst[inst]++
			mu.Unlock()
		}}
	}, ForwardInput(src))
	var col collector
	topo.AddOperator("other", 1, col.sinkFactory(), GlobalInput(src))

	if got := topo.Chains(); len(got) != 0 {
		t.Fatalf("multi-consumer upstream must not fuse, got chains %v", got)
	}
	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := job.insts[fwd]; !ok {
		t.Fatal("unfused forward consumer must own instances (exchange fallback)")
	}
	// Only source instance 0 emits: forward routing must deliver everything
	// to fwd instance 0 regardless of key.
	sc0, _ := job.SourceContext(src, 0)
	for i := int64(0); i < 40; i++ {
		sc0.EmitTuple(tupleAt(i, event.Time(i)))
	}
	job.Stop()
	if perInst[0] != 40 || perInst[1] != 0 {
		t.Fatalf("forward exchange routing = %v, want [40 0]", perInst)
	}
	if len(col.tuples) != 40 {
		t.Fatalf("other consumer got %d tuples, want 40", len(col.tuples))
	}
}

// TestForwardChainNeverSpansNodes: co-location is a fusion requirement; a
// forward edge whose instance pairs land on different cluster nodes falls
// back to a (cross-node, codec-paying) exchange.
func TestForwardChainNeverSpansNodes(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 2) // unassigned: both instances on node 0
	var col collector
	sink := topo.AddOperator("sink", 2, col.sinkFactory(), ForwardInput(src))
	sink.AssignNodes(2) // instance 1 on node 1 — pair (1,1) not co-located

	if got := topo.Chains(); len(got) != 0 {
		t.Fatalf("cross-node forward edge must not fuse, got %v", got)
	}
	job, err := Deploy(topo, WithEdgeCodec(BinaryCodec{}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sc, _ := job.SourceContext(src, i)
		for k := int64(0); k < 25; k++ {
			sc.EmitTuple(tupleAt(k, event.Time(k)))
		}
	}
	job.Stop()
	if len(col.tuples) != 50 {
		t.Fatalf("got %d tuples over unfused forward edges, want 50", len(col.tuples))
	}
}

func TestValidateForwardErrors(t *testing.T) {
	// Parallelism mismatch on a forward edge.
	topo := NewTopology()
	src := topo.AddSource("src", 2)
	topo.AddOperator("bad", 3, NewMapLogic(passThrough), ForwardInput(src))
	if _, err := Deploy(topo); err == nil || !strings.Contains(err.Error(), "equal parallelism") {
		t.Fatalf("forward parallelism mismatch must fail deploy, got %v", err)
	}

	// A forward edge into a multi-input operator (chain spanning a keyed
	// input): the consumer's other port would bypass the chain.
	topo2 := NewTopology()
	a := topo2.AddSource("a", 1)
	b := topo2.AddSource("b", 1)
	topo2.AddOperator("join", 1, NewMapLogic(passThrough), ForwardInput(a), KeyedInput(b))
	if _, err := Deploy(topo2); err == nil || !strings.Contains(err.Error(), "only input") {
		t.Fatalf("forward edge with sibling inputs must fail deploy, got %v", err)
	}
}

// emitOnWM emits a marker tuple from inside OnWatermark, to probe the
// control-element traversal order through a fused chain.
type emitOnWM struct {
	BaseLogic
}

func (emitOnWM) OnTuple(_ int, t event.Tuple, out *Emitter) { out.EmitTuple(t) }
func (emitOnWM) OnWatermark(wm event.Time, out *Emitter) {
	out.EmitTuple(tupleAt(-int64(wm), wm))
}

// TestChainControlOrdering: a chained member's emissions during a control
// callback must reach the next member before that member's own control
// callback — the same order an unfused deployment delivers (flush before
// control broadcast).
func TestChainControlOrdering(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	a := topo.AddOperator("a", 1, func(int) Logic { return emitOnWM{} }, ForwardInput(src))
	lg := &orderLog{}
	topo.AddOperator("b", 1, func(int) Logic { return lg }, ForwardInput(a))

	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := job.SourceContext(src, 0)
	sc.EmitTuple(tupleAt(1, 1))
	sc.EmitTuple(tupleAt(2, 2))
	sc.EmitWatermark(10)
	sc.EmitChangelog(&testChangelog{1}, 11)
	sc.EmitBarrier(5)
	job.Stop()

	want := []string{"t1", "t2", "t-10", "wm10", "cl11", "b5", "eos"}
	got := lg.snapshot()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("fused control ordering = %v, want %v", got, want)
	}
}

// TestChainBarrierSnapshotsPerMember: fusion must not change checkpoint
// accounting — every chained operator still snapshots under its own name.
func TestChainBarrierSnapshotsPerMember(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	a := topo.AddOperator("a", 1, NewMapLogic(passThrough), ForwardInput(src))
	topo.AddOperator("b", 1, NewMapLogic(passThrough), ForwardInput(a))
	store := &snapStore{}
	job, err := Deploy(topo, WithSnapshotSink(store))
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := job.SourceContext(src, 0)
	sc.EmitBarrier(3)
	job.Stop()
	store.mu.Lock()
	got := strings.Join(store.snaps, ",")
	store.mu.Unlock()
	if got != "a,b" {
		t.Fatalf("snapshots = %q, want per-member a,b in chain order", got)
	}
}

// TestAdaptiveBatchResizing unit-tests the occupancy heuristic: backlog
// doubles the threshold toward the ceiling, a sustained empty queue halves
// it toward the floor, and intermediate occupancy resets the idle run.
func TestAdaptiveBatchResizing(t *testing.T) {
	e := &Emitter{batchSize: 64}
	tg := &target{ch: make(chan message, 16), size: adaptiveMinBatch}

	// Backlogged queue: ≥ half full doubles, clamped at the ceiling.
	for i := 0; i < 8; i++ {
		tg.ch <- message{}
	}
	for _, want := range []int{16, 32, 64, 64} {
		e.adapt(tg)
		if tg.size != want {
			t.Fatalf("grow: size = %d, want %d", tg.size, want)
		}
	}
	// Draining to a non-empty, below-half queue holds the size steady.
	for i := 0; i < 7; i++ {
		<-tg.ch
	}
	tg.idle = idleShrinkAfter - 1
	e.adapt(tg)
	if tg.size != 64 || tg.idle != 0 {
		t.Fatalf("mid occupancy must hold size and reset idle: size=%d idle=%d", tg.size, tg.idle)
	}
	// A sustained empty queue shrinks, stopping at the floor.
	<-tg.ch
	for _, want := range []int{32, 16, 8, 8} {
		for i := 0; i < idleShrinkAfter; i++ {
			e.adapt(tg)
		}
		if tg.size != want {
			t.Fatalf("shrink: size = %d, want %d", tg.size, want)
		}
	}
}

// TestAdaptiveBatchGrowsEndToEnd drives a real emitter against a backlogged
// channel and checks the edge threshold climbs to the configured ceiling.
func TestAdaptiveBatchGrowsEndToEnd(t *testing.T) {
	e := &Emitter{batchSize: 64}
	e.consumers = []consumer{{mode: Global, targets: []target{{ch: make(chan message, 256)}}}}
	for i := 0; i < 4096; i++ {
		e.EmitTuple(tupleAt(int64(i), event.Time(i)))
	}
	tg := &e.consumers[0].targets[0]
	if tg.size != 64 {
		t.Fatalf("edge threshold = %d after sustained backlog, want 64", tg.size)
	}
}

// TestTimeFlushShipsStalePartialBatch: with an injected clock and a flush
// interval, a partial batch stuck behind an edge that stopped filling is
// shipped once the deadline passes — no watermark or EOS needed.
func TestTimeFlushShipsStalePartialBatch(t *testing.T) {
	var clock atomic.Int64
	clock.Store(1) // 0 is the emitter's "no pending deadline" sentinel
	topo := NewTopology()
	topo.SetExchangeBatch(64)
	topo.SetNowNanos(func() int64 { return clock.Load() })
	topo.SetFlushInterval(int64(time.Millisecond))
	src := topo.AddSource("src", 1)
	var mu sync.Mutex
	seen := map[int64]int{}
	topo.AddOperator("sink", 2, func(int) Logic {
		return &SinkLogic{Tuple: func(tu event.Tuple) {
			mu.Lock()
			seen[tu.Key]++
			mu.Unlock()
		}}
	}, KeyedInput(src))
	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := job.SourceContext(src, 0)
	// Phase 1: 20 tuples on one key → two full batches of 8 ship, 4 sit
	// pending on that edge.
	for i := 0; i < 20; i++ {
		sc.EmitTuple(tupleAt(1, event.Time(i)))
	}
	// Phase 2: the deadline passes, and traffic on a *different* key keeps
	// the emitter's deadline checks running. The stuck key-1 batch must ship
	// even though its own edge sees no new tuples.
	clock.Add(int64(2 * time.Millisecond))
	for i := 0; i < 64; i++ {
		sc.EmitTuple(tupleAt(2, event.Time(20+i)))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := seen[1]
		mu.Unlock()
		if n == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("key-1 tuples delivered = %d, want 20 via time-based flush", n)
		}
		time.Sleep(time.Millisecond)
	}
	job.Stop()
}

// TestFlushOnIdleShipsPartialBatch: an operator whose inbox runs dry
// flushes its partial output batches before blocking, so a low-rate edge is
// not stuck behind the batch size even without a clock.
func TestFlushOnIdleShipsPartialBatch(t *testing.T) {
	topo := NewTopology()
	topo.SetExchangeBatch(64)
	src := topo.AddSource("src", 1)
	mid := topo.AddOperator("mid", 1, NewMapLogic(passThrough), KeyedInput(src))
	var col collector
	topo.AddOperator("sink", 1, col.sinkFactory(), KeyedInput(mid))
	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := job.SourceContext(src, 0)
	// 3 tuples: fewer than any batch threshold. src→mid is unbatched per
	// tuple only after mid's own idle flush; mid→sink holds a partial batch
	// that only the idle flush can ship (no watermark, no EOS, no clock).
	for i := int64(0); i < 3; i++ {
		sc.EmitTuple(tupleAt(i, event.Time(i)))
	}
	// A MinTime watermark flushes the src→mid edge (control broadcasts flush
	// first) but is ignored by mid's watermark bookkeeping, so mid emits no
	// control element of its own: only mid's idle flush can ship its output.
	sc.EmitWatermark(event.MinTime)
	deadline := time.Now().Add(5 * time.Second)
	for {
		col.mu.Lock()
		n := len(col.tuples)
		col.mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink got %d tuples, want 3 via idle flush", n)
		}
		time.Sleep(time.Millisecond)
	}
	job.Stop()
}

func TestTopologyDotRendersChains(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	a := topo.AddOperator("a", 1, NewMapLogic(passThrough), ForwardInput(src))
	topo.AddOperator("b", 1, NewMapLogic(passThrough), ForwardInput(a))
	other := topo.AddSource("other", 1)
	topo.AddOperator("lone", 2, NewMapLogic(passThrough), KeyedInput(other))
	dot := topo.Dot()
	for _, want := range []string{
		"subgraph cluster_chain_0",
		`label="chain"`,
		`"src" -> "a" [label="chained",style=dashed]`,
		`"a" -> "b" [label="chained",style=dashed]`,
		`"other" -> "lone" [label="keyed"]`,
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("Dot() missing %q:\n%s", want, dot)
		}
	}
	// Chain members are declared inside the subgraph, not at top level too.
	if strings.Count(dot, `"a" [shape=box`) != 1 {
		t.Fatalf("chain member declared more than once:\n%s", dot)
	}
}
