// Package spe is the substrate stream processing engine: the role Apache
// Flink plays for AStream in the paper (§1.3, §5). It provides dataflow
// topologies of parallel operator instances connected by channels, event-time
// watermark propagation, changelog-marker delivery, aligned checkpoint
// barriers, keyed data exchange, and graceful end-of-stream draining.
//
// The engine is deliberately small but structurally faithful: operators are
// goroutines, exchanges are bounded channels (so backpressure is real),
// watermarks are the minimum over all upstream senders, and barriers align
// before a snapshot is taken — the same mechanics a distributed SPE uses,
// minus the network (which internal/cluster simulates by imposing
// serialization costs on inter-node edges).
package spe

import (
	"fmt"

	"astream/internal/event"
)

// PartitionMode selects how tuples are routed to a consumer's instances.
// Watermarks, changelogs, barriers, and EOS are always broadcast.
type PartitionMode uint8

const (
	// Keyed routes each tuple by hash of its key: the "common partitioning
	// key" assumption under which operators can be shared (paper §2).
	Keyed PartitionMode = iota
	// Broadcast delivers every tuple to every instance.
	Broadcast
	// Global delivers every tuple to instance 0.
	Global
	// Forward delivers every tuple from upstream instance i to downstream
	// instance i: a 1:1 edge with no repartitioning. Forward edges require
	// equal parallelism on both ends and must be the consumer's only input
	// (Topology.Validate enforces both). Runs of forward edges whose
	// upstream has a single consumer and whose instances are co-located are
	// fused into operator chains at deploy time: the chained logics share
	// one instance and pass tuples by direct call, skipping the channel,
	// the batch buffer, and the codec entirely.
	Forward
)

func (m PartitionMode) String() string {
	switch m {
	case Keyed:
		return "keyed"
	case Broadcast:
		return "broadcast"
	case Global:
		return "global"
	case Forward:
		return "forward"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// message is the wire format between instances: the element plus the sender's
// identity within the receiving inbox (for per-sender watermark bookkeeping)
// and the input port it arrives on. When batch is non-nil the message carries
// a vector of data tuples instead of elem (exchange batching): one channel
// operation moves up to a full network buffer's worth of tuples, Flink-style.
type message struct {
	sender int
	port   int
	elem   event.Element
	batch  []event.Tuple
}

// hashKey spreads tuple keys over instances (Fibonacci hashing).
func hashKey(key int64, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int(h % uint64(n))
}

// Logic is the behaviour of one operator instance. The runtime guarantees:
//   - OnTuple is called for data tuples in arrival order per sender.
//   - OnWatermark is called with strictly increasing values, each being the
//     minimum over all senders of all ports.
//   - OnChangelog is called exactly once per changelog (deduplicated across
//     senders), before the combined watermark reaches the changelog's time.
//   - OnBarrier is called once per barrier after input alignment; the logic
//     must return its state snapshot.
//   - OnEOS is called once when every sender has finished; emissions are
//     still delivered downstream, then EOS is forwarded automatically.
//
// A Logic is owned by a single goroutine; no internal locking is needed.
type Logic interface {
	OnTuple(port int, t event.Tuple, out *Emitter)
	OnWatermark(wm event.Time, out *Emitter)
	OnChangelog(payload any, at event.Time, out *Emitter)
	OnBarrier(id uint64, out *Emitter) []byte
	OnEOS(out *Emitter)
}

// BaseLogic provides no-op defaults; embed it to implement only what an
// operator needs.
type BaseLogic struct{}

func (BaseLogic) OnTuple(int, event.Tuple, *Emitter)    {}
func (BaseLogic) OnWatermark(event.Time, *Emitter)      {}
func (BaseLogic) OnChangelog(any, event.Time, *Emitter) {}
func (BaseLogic) OnBarrier(uint64, *Emitter) []byte     { return nil }
func (BaseLogic) OnEOS(*Emitter)                        {}

// Restorable is implemented by logics that participate in checkpoint
// recovery.
type Restorable interface {
	Restore(snapshot []byte) error
}

// DeltaSnapshotMagic is the mandatory first byte of every incremental
// snapshot blob. Full operator snapshots start with a small version byte;
// the distinguished magic lets a snapshot store classify a deposit as
// base or delta without understanding the operator's encoding.
const DeltaSnapshotMagic byte = 0xD5

// DeltaSnapshotter is implemented by logics that can produce incremental
// snapshots. When a deployment enables deltas (WithDeltaSnapshots), the
// runtime calls OnBarrierDelta instead of OnBarrier at barrier alignment;
// the logic decides per barrier whether to emit a full snapshot or a delta
// covering only state dirtied since the previous barrier, keeping chains
// no longer than fullEvery-1 deltas between full snapshots. Delta blobs
// must start with DeltaSnapshotMagic; full blobs must not.
type DeltaSnapshotter interface {
	OnBarrierDelta(id uint64, out *Emitter, fullEvery int) []byte
}

// DeltaRestorable is implemented by logics whose incremental snapshots can
// be re-applied on top of a restored base during recovery. RestoreDelta is
// called once per delta, in chain order, after Restore.
type DeltaRestorable interface {
	RestoreDelta(snapshot []byte) error
}
