package spe

import (
	"fmt"
	"strings"

	"astream/internal/event"
)

// DefaultChannelCap is the bounded capacity of exchange channels; bounded
// channels are what make backpressure (and therefore sustainable-throughput
// measurement) real.
const DefaultChannelCap = 256

// DefaultExchangeBatch is the default per-edge exchange batch size: tuples
// accumulate in per-edge vectors of this many entries before one channel
// operation ships them (see Emitter). 1 disables batching.
const DefaultExchangeBatch = 64

// Topology is a DAG of operators under construction. Build it, then Deploy.
type Topology struct {
	nodes         []*Node
	channelCap    int
	exchangeBatch int
}

// NewTopology creates an empty topology.
func NewTopology() *Topology {
	return &Topology{channelCap: DefaultChannelCap, exchangeBatch: DefaultExchangeBatch}
}

// SetChannelCap overrides the exchange channel capacity (must be ≥ 1).
func (t *Topology) SetChannelCap(n int) {
	if n < 1 {
		n = 1
	}
	t.channelCap = n
}

// SetExchangeBatch overrides the per-edge exchange batch size (1 disables
// batching; values < 1 are clamped to 1). Control elements — watermarks,
// changelogs, barriers, EOS — always flush pending batches first, so
// batching never reorders an edge.
func (t *Topology) SetExchangeBatch(n int) {
	if n < 1 {
		n = 1
	}
	t.exchangeBatch = n
}

// Node is one operator in the topology.
type Node struct {
	id          int
	name        string
	parallelism int
	newLogic    func(instance int) Logic
	inputs      []input
	isSource    bool
	// nodeOf maps instance -> cluster node (for the cluster simulation);
	// nil when unassigned (all co-located).
	nodeOf []int
	// edgeWrap, when non-nil, wraps cross-node sends (serialization cost).
	topo *Topology
}

type input struct {
	from *Node
	mode PartitionMode
}

// Name returns the operator's name.
func (n *Node) Name() string { return n.name }

// Parallelism returns the instance count.
func (n *Node) Parallelism() int { return n.parallelism }

// AddSource adds a source operator. Sources have no inputs; their logic's
// OnTuple is never called — instead the job hands each source instance a
// *SourceContext to push elements through (see Job.SourceContext).
func (t *Topology) AddSource(name string, parallelism int) *Node {
	n := &Node{
		id:          len(t.nodes),
		name:        name,
		parallelism: parallelism,
		isSource:    true,
		topo:        t,
	}
	t.nodes = append(t.nodes, n)
	return n
}

// AddOperator adds an operator consuming from the given inputs. newLogic is
// invoked once per instance at deploy time.
func (t *Topology) AddOperator(name string, parallelism int, newLogic func(instance int) Logic, inputs ...Input) *Node {
	n := &Node{
		id:          len(t.nodes),
		name:        name,
		parallelism: parallelism,
		newLogic:    newLogic,
		topo:        t,
	}
	for _, in := range inputs {
		n.inputs = append(n.inputs, input{from: in.From, mode: in.Mode})
	}
	t.nodes = append(t.nodes, n)
	return n
}

// Input names an upstream node and the partitioning of its output.
type Input struct {
	From *Node
	Mode PartitionMode
}

// KeyedInput routes tuples by key hash.
func KeyedInput(from *Node) Input { return Input{From: from, Mode: Keyed} }

// BroadcastInput delivers all tuples to all instances.
func BroadcastInput(from *Node) Input { return Input{From: from, Mode: Broadcast} }

// GlobalInput delivers all tuples to instance 0.
func GlobalInput(from *Node) Input { return Input{From: from, Mode: Global} }

// AssignNodes places instances of an operator onto cluster nodes round-robin
// over nodeCount nodes. Inter-node edges pay the codec cost at deploy time
// when the job is created with a non-nil EdgeCodec.
func (n *Node) AssignNodes(nodeCount int) {
	if nodeCount < 1 {
		nodeCount = 1
	}
	n.nodeOf = make([]int, n.parallelism)
	for i := range n.nodeOf {
		n.nodeOf[i] = i % nodeCount
	}
}

func (n *Node) nodeFor(instance int) int {
	if n.nodeOf == nil {
		return 0
	}
	return n.nodeOf[instance]
}

// Validate checks the DAG for structural problems.
func (t *Topology) Validate() error {
	for _, n := range t.nodes {
		if n.parallelism < 1 {
			return fmt.Errorf("spe: operator %q has parallelism %d", n.name, n.parallelism)
		}
		if n.isSource && len(n.inputs) > 0 {
			return fmt.Errorf("spe: source %q has inputs", n.name)
		}
		if !n.isSource && len(n.inputs) == 0 {
			return fmt.Errorf("spe: operator %q has no inputs", n.name)
		}
		if !n.isSource && n.newLogic == nil {
			return fmt.Errorf("spe: operator %q has no logic", n.name)
		}
		for _, in := range n.inputs {
			if in.from.topo != t {
				return fmt.Errorf("spe: operator %q consumes from a different topology", n.name)
			}
			if in.from.id >= n.id {
				return fmt.Errorf("spe: operator %q input %q does not precede it (cycle?)", n.name, in.from.name)
			}
		}
	}
	return nil
}

// EdgeCodec, when installed on a Job, is applied to every element crossing
// cluster-node boundaries: Encode then Decode, simulating the serialization
// a networked deployment pays. It must round-trip elements exactly.
type EdgeCodec interface {
	Encode(e event.Element) []byte
	Decode(b []byte) (event.Element, error)
}

// Dot renders the topology as a Graphviz digraph (operators as nodes,
// exchanges as labelled edges) — handy for documentation and debugging.
func (t *Topology) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph topology {\n  rankdir=LR;\n")
	for _, n := range t.nodes {
		shape := "box"
		if n.isSource {
			shape = "ellipse"
		}
		fmt.Fprintf(&sb, "  %q [shape=%s,label=\"%s ×%d\"];\n", n.name, shape, n.name, n.parallelism)
	}
	for _, n := range t.nodes {
		for _, in := range n.inputs {
			fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", in.from.name, n.name, in.mode.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
