package spe

import (
	"fmt"
	"strings"

	"astream/internal/event"
)

// DefaultChannelCap is the bounded capacity of exchange channels; bounded
// channels are what make backpressure (and therefore sustainable-throughput
// measurement) real.
const DefaultChannelCap = 256

// DefaultExchangeBatch is the default per-edge exchange batch size: tuples
// accumulate in per-edge vectors of this many entries before one channel
// operation ships them (see Emitter). 1 disables batching.
const DefaultExchangeBatch = 64

// Topology is a DAG of operators under construction. Build it, then Deploy.
type Topology struct {
	nodes         []*Node
	channelCap    int
	exchangeBatch int
	// flushNanos bounds how long a partially filled exchange batch may sit
	// before a time-based flush ships it (0 disables). Requires nowNanos.
	flushNanos int64
	nowNanos   func() int64
}

// NewTopology creates an empty topology.
func NewTopology() *Topology {
	return &Topology{channelCap: DefaultChannelCap, exchangeBatch: DefaultExchangeBatch}
}

// SetChannelCap overrides the exchange channel capacity (must be ≥ 1).
func (t *Topology) SetChannelCap(n int) {
	if n < 1 {
		n = 1
	}
	t.channelCap = n
}

// SetExchangeBatch overrides the per-edge exchange batch size (1 disables
// batching; values < 1 are clamped to 1). Control elements — watermarks,
// changelogs, barriers, EOS — always flush pending batches first, so
// batching never reorders an edge. The configured value is a ceiling: each
// edge adapts its actual batch threshold to downstream queue occupancy
// (see Emitter).
func (t *Topology) SetExchangeBatch(n int) {
	if n < 1 {
		n = 1
	}
	t.exchangeBatch = n
}

// SetFlushInterval bounds how long a partially filled exchange batch may sit
// before it is flushed regardless of size, making output staleness on
// low-rate edges independent of the watermark cadence. d ≤ 0 disables the
// time-based flush. The deadline is checked opportunistically between
// elements via the clock injected with SetNowNanos; without a clock the
// interval is ignored.
func (t *Topology) SetFlushInterval(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	t.flushNanos = nanos
}

// SetNowNanos injects the monotonic clock used for time-based batch flushes.
// The spe package never reads the wall clock itself (DESIGN.md §8).
func (t *Topology) SetNowNanos(now func() int64) {
	t.nowNanos = now
}

// Node is one operator in the topology.
type Node struct {
	id          int
	name        string
	parallelism int
	newLogic    func(instance int) Logic
	inputs      []input
	isSource    bool
	// nodeOf maps instance -> cluster node (for the cluster simulation);
	// nil when unassigned (all co-located).
	nodeOf []int
	// edgeWrap, when non-nil, wraps cross-node sends (serialization cost).
	topo *Topology
}

type input struct {
	from *Node
	mode PartitionMode
}

// Name returns the operator's name.
func (n *Node) Name() string { return n.name }

// Parallelism returns the instance count.
func (n *Node) Parallelism() int { return n.parallelism }

// AddSource adds a source operator. Sources have no inputs; their logic's
// OnTuple is never called — instead the job hands each source instance a
// *SourceContext to push elements through (see Job.SourceContext).
func (t *Topology) AddSource(name string, parallelism int) *Node {
	n := &Node{
		id:          len(t.nodes),
		name:        name,
		parallelism: parallelism,
		isSource:    true,
		topo:        t,
	}
	t.nodes = append(t.nodes, n)
	return n
}

// AddOperator adds an operator consuming from the given inputs. newLogic is
// invoked once per instance at deploy time.
func (t *Topology) AddOperator(name string, parallelism int, newLogic func(instance int) Logic, inputs ...Input) *Node {
	n := &Node{
		id:          len(t.nodes),
		name:        name,
		parallelism: parallelism,
		newLogic:    newLogic,
		topo:        t,
	}
	for _, in := range inputs {
		n.inputs = append(n.inputs, input{from: in.From, mode: in.Mode})
	}
	t.nodes = append(t.nodes, n)
	return n
}

// Input names an upstream node and the partitioning of its output.
type Input struct {
	From *Node
	Mode PartitionMode
}

// KeyedInput routes tuples by key hash.
func KeyedInput(from *Node) Input { return Input{From: from, Mode: Keyed} }

// BroadcastInput delivers all tuples to all instances.
func BroadcastInput(from *Node) Input { return Input{From: from, Mode: Broadcast} }

// GlobalInput delivers all tuples to instance 0.
func GlobalInput(from *Node) Input { return Input{From: from, Mode: Global} }

// ForwardInput delivers tuples 1:1 from upstream instance i to downstream
// instance i, declaring that no repartitioning is needed on this edge. The
// consumer must have this as its only input and match the upstream
// parallelism (Validate). When the upstream additionally has no other
// consumers and the paired instances are co-located, Deploy fuses the edge
// into an operator chain with no channel hop at all.
func ForwardInput(from *Node) Input { return Input{From: from, Mode: Forward} }

// AssignNodes places instances of an operator onto cluster nodes round-robin
// over nodeCount nodes. Inter-node edges pay the codec cost at deploy time
// when the job is created with a non-nil EdgeCodec.
func (n *Node) AssignNodes(nodeCount int) {
	if nodeCount < 1 {
		nodeCount = 1
	}
	n.nodeOf = make([]int, n.parallelism)
	for i := range n.nodeOf {
		n.nodeOf[i] = i % nodeCount
	}
}

func (n *Node) nodeFor(instance int) int {
	if n.nodeOf == nil {
		return 0
	}
	return n.nodeOf[instance]
}

// Validate checks the DAG for structural problems.
func (t *Topology) Validate() error {
	for _, n := range t.nodes {
		if n.parallelism < 1 {
			return fmt.Errorf("spe: operator %q has parallelism %d", n.name, n.parallelism)
		}
		if n.isSource && len(n.inputs) > 0 {
			return fmt.Errorf("spe: source %q has inputs", n.name)
		}
		if !n.isSource && len(n.inputs) == 0 {
			return fmt.Errorf("spe: operator %q has no inputs", n.name)
		}
		if !n.isSource && n.newLogic == nil {
			return fmt.Errorf("spe: operator %q has no logic", n.name)
		}
		for _, in := range n.inputs {
			if in.from.topo != t {
				return fmt.Errorf("spe: operator %q consumes from a different topology", n.name)
			}
			if in.from.id >= n.id {
				return fmt.Errorf("spe: operator %q input %q does not precede it (cycle?)", n.name, in.from.name)
			}
			if in.mode == Forward {
				if in.from.parallelism != n.parallelism {
					return fmt.Errorf("spe: forward edge %q -> %q requires equal parallelism (%d != %d)",
						in.from.name, n.name, in.from.parallelism, n.parallelism)
				}
				if len(n.inputs) != 1 {
					return fmt.Errorf("spe: operator %q has a forward input from %q but %d inputs; a forward edge must be its consumer's only input",
						n.name, in.from.name, len(n.inputs))
				}
			}
		}
	}
	return nil
}

// chainNext maps each node to the single downstream node its output edge is
// fused with, for every edge that satisfies the chaining rules:
//
//   - the edge is Forward mode and is the consumer's only input (Validate
//     already guarantees equal parallelism for forward edges);
//   - the upstream has exactly one consumer edge in the whole topology
//     (multi-consumer forward nodes fall back to a real 1:1 exchange);
//   - every instance pair (i, i) is co-located — a chain never spans
//     cluster nodes, so fused calls never need the codec.
//
// Maximal runs of fused edges become one deployed instance per index (see
// Deploy). Iteration is over the ordered node slice, so the plan is
// deterministic.
func (t *Topology) chainNext() map[*Node]*Node {
	consumers := make(map[*Node]int, len(t.nodes))
	for _, n := range t.nodes {
		for _, in := range n.inputs {
			consumers[in.from]++
		}
	}
	next := make(map[*Node]*Node, len(t.nodes))
	for _, n := range t.nodes {
		if len(n.inputs) != 1 || n.inputs[0].mode != Forward {
			continue
		}
		u := n.inputs[0].from
		if consumers[u] != 1 {
			continue
		}
		colocated := true
		for i := 0; i < n.parallelism; i++ {
			if u.nodeFor(i) != n.nodeFor(i) {
				colocated = false
				break
			}
		}
		if colocated {
			next[u] = n
		}
	}
	return next
}

// Chains returns the operator chains Deploy would fuse, as ordered name
// lists head-first. Only runs of length ≥ 2 are reported.
func (t *Topology) Chains() [][]string {
	next := t.chainNext()
	inChain := make(map[*Node]bool, len(next))
	for _, n := range t.nodes {
		if d := next[n]; d != nil {
			inChain[d] = true
		}
	}
	var chains [][]string
	for _, n := range t.nodes {
		if inChain[n] || next[n] == nil {
			continue // not a chain head
		}
		var names []string
		for m := n; m != nil; m = next[m] {
			names = append(names, m.name)
		}
		chains = append(chains, names)
	}
	return chains
}

// EdgeCodec, when installed on a Job, is applied to every element crossing
// cluster-node boundaries: Encode then Decode, simulating the serialization
// a networked deployment pays. It must round-trip elements exactly.
type EdgeCodec interface {
	Encode(e event.Element) []byte
	Decode(b []byte) (event.Element, error)
}

// Dot renders the topology as a Graphviz digraph (operators as nodes,
// exchanges as labelled edges) — handy for documentation and debugging.
// Operators that Deploy would fuse into one chain are boxed together in a
// cluster subgraph, and the fused edges are dashed and labelled "chained"
// so the rendering matches what actually runs.
func (t *Topology) Dot() string {
	next := t.chainNext()
	prev := make(map[*Node]*Node, len(next))
	for _, n := range t.nodes {
		if d := next[n]; d != nil {
			prev[d] = n
		}
	}
	decl := func(sb *strings.Builder, indent string, n *Node) {
		shape := "box"
		if n.isSource {
			shape = "ellipse"
		}
		fmt.Fprintf(sb, "%s%q [shape=%s,label=\"%s ×%d\"];\n", indent, n.name, shape, n.name, n.parallelism)
	}
	var sb strings.Builder
	sb.WriteString("digraph topology {\n  rankdir=LR;\n")
	chainID := 0
	for _, n := range t.nodes {
		if prev[n] != nil {
			continue // declared inside its chain head's subgraph
		}
		if next[n] == nil {
			decl(&sb, "  ", n)
			continue
		}
		fmt.Fprintf(&sb, "  subgraph cluster_chain_%d {\n    label=\"chain\";\n    style=\"rounded,dashed\";\n", chainID)
		chainID++
		for m := n; m != nil; m = next[m] {
			decl(&sb, "    ", m)
		}
		sb.WriteString("  }\n")
	}
	for _, n := range t.nodes {
		for _, in := range n.inputs {
			if next[in.from] == n {
				fmt.Fprintf(&sb, "  %q -> %q [label=\"chained\",style=dashed];\n", in.from.name, n.name)
				continue
			}
			fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", in.from.name, n.name, in.mode.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
