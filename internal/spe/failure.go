package spe

import "fmt"

// InstanceFailure describes one operator instance's death: a panic escaping
// an operator callback, a codec round-trip failure on an exchange edge, or a
// violated runtime invariant (changelog gap, overlapping barriers). With a
// FailureSink installed the failure is reported instead of crashing the
// process; the job manager decides whether to recover the job from its last
// checkpoint or quarantine the offending query.
type InstanceFailure struct {
	Op       string // topology node name of the chain head
	Instance int
	Reason   string
	Panic    any    // recovered panic value, nil for propagated errors
	Stack    []byte // goroutine stack at the panic site, nil otherwise
}

// Error implements error.
func (f InstanceFailure) Error() string {
	return fmt.Sprintf("spe: instance %s[%d] failed: %s", f.Op, f.Instance, f.Reason)
}

// FailureSink receives instance failures. Implementations must be safe for
// concurrent use: every instance goroutine of a job reports here.
type FailureSink interface {
	OnInstanceFailure(f InstanceFailure)
}

// FailureFunc adapts a function to FailureSink.
type FailureFunc func(f InstanceFailure)

// OnInstanceFailure implements FailureSink.
func (fn FailureFunc) OnInstanceFailure(f InstanceFailure) { fn(f) }

// BatchFault is a fault hook's verdict on one encoded exchange batch.
type BatchFault uint8

const (
	// BatchOK ships the (possibly rewritten) payload.
	BatchOK BatchFault = iota
	// BatchDrop discards the batch, simulating a failed link. The emitting
	// instance fails: lost tuples must force recovery, never silent gaps.
	BatchDrop
	// BatchDelay holds the batch for one flush round. Per-edge FIFO order is
	// preserved — the batch still precedes any later element on its edge.
	BatchDelay
)

// FaultHook is the deterministic fault-injection seam threaded through a
// deployment (nil in production). Implementations decide, from their own
// seeded schedule, whether to act at each site; acting means panicking
// (BeforeTuple/AtBarrier — the supervisor converts it into an
// InstanceFailure) or returning a fault verdict (OnBatch). Hooks are called
// from instance goroutines and must be safe for concurrent use.
type FaultHook interface {
	// BeforeTuple runs before each data tuple enters an instance's chain.
	BeforeTuple(op string, instance int)
	// AtBarrier runs when an instance completes barrier alignment, before
	// its snapshots are cut — a kill here recovers from the previous
	// checkpoint, not this one.
	AtBarrier(op string, instance int, barrier uint64)
	// OnBatch inspects one encoded cross-node batch and may rewrite
	// (corrupt), drop, or delay it.
	OnBatch(op string, instance int, encoded []byte) ([]byte, BatchFault)
}
