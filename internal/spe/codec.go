package spe

import (
	"encoding/binary"
	"fmt"

	"astream/internal/bitset"
	"astream/internal/event"
)

// BinaryCodec is a compact, allocation-light binary encoding for stream
// elements. It serves two purposes: the cluster simulation applies it to
// inter-node edges so shuffled data pays a realistic serialization cost, and
// the checkpoint log uses it to persist replayable input.
//
// Changelog payloads are NOT encoded (they are control-plane metadata whose
// identity must be preserved for deduplication); cross-node changelog
// delivery passes the pointer through after paying the envelope cost.
type BinaryCodec struct{}

const (
	codecVersion = 1
	maxQSWords   = 1 << 16
)

// Encode serializes an element.
func (BinaryCodec) Encode(e event.Element) []byte {
	buf := make([]byte, 0, 96)
	buf = append(buf, codecVersion, byte(e.Kind))
	switch e.Kind {
	case event.KindTuple:
		t := &e.Tuple
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Key))
		for _, f := range t.Fields {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(f))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Time))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.IngestNanos))
		buf = append(buf, t.Stream)
		words := t.QuerySet.Words()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(words)))
		for _, w := range words {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	case event.KindWatermark:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Watermark))
	case event.KindBarrier:
		buf = binary.LittleEndian.AppendUint64(buf, e.Barrier)
	case event.KindEOS:
		// no payload
	case event.KindChangelog:
		// Envelope only: event-time. Payload pointer travels alongside.
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Watermark))
	}
	return buf
}

// Decode deserializes an element previously produced by Encode. Changelog
// payloads cannot be reconstructed from bytes; DecodeWithPayload supplies
// them.
func (c BinaryCodec) Decode(b []byte) (event.Element, error) {
	return c.decode(b, nil)
}

// DecodeWithPayload decodes, reattaching the given changelog payload for
// KindChangelog elements.
func (c BinaryCodec) DecodeWithPayload(b []byte, payload any) (event.Element, error) {
	return c.decode(b, payload)
}

func (BinaryCodec) decode(b []byte, payload any) (event.Element, error) {
	if len(b) < 2 {
		return event.Element{}, fmt.Errorf("spe: short element encoding (%d bytes)", len(b))
	}
	if b[0] != codecVersion {
		return event.Element{}, fmt.Errorf("spe: unknown codec version %d", b[0])
	}
	kind := event.Kind(b[1])
	r := reader{b: b[2:]}
	var e event.Element
	e.Kind = kind
	switch kind {
	case event.KindTuple:
		t := &e.Tuple
		t.Key = int64(r.u64())
		for i := range t.Fields {
			t.Fields[i] = int64(r.u64())
		}
		t.Time = event.Time(r.u64())
		t.IngestNanos = int64(r.u64())
		t.Stream = r.u8()
		n := r.u32()
		if n > maxQSWords {
			return event.Element{}, fmt.Errorf("spe: query-set too large (%d words)", n)
		}
		if n > 0 {
			words := make([]uint64, n)
			for i := range words {
				words[i] = r.u64()
			}
			t.QuerySet = bitset.FromWords(words)
		}
	case event.KindWatermark:
		e.Watermark = event.Time(r.u64())
	case event.KindBarrier:
		e.Barrier = r.u64()
	case event.KindEOS:
	case event.KindChangelog:
		e.Watermark = event.Time(r.u64())
		e.Changelog = payload
	default:
		return event.Element{}, fmt.Errorf("spe: unknown element kind %d", kind)
	}
	if r.err != nil {
		return event.Element{}, r.err
	}
	return e, nil
}

// BatchCodec is the optional batch extension of EdgeCodec: a whole exchange
// batch is serialized in one pass, amortizing the envelope over the vector.
// Implementations must round-trip tuples exactly.
type BatchCodec interface {
	EncodeBatch(ts []event.Tuple) []byte
	DecodeBatch(b []byte) ([]event.Tuple, error)
}

// tupleFixedSize is the per-tuple fixed portion of the batch encoding.
const tupleFixedSize = 8 + 8*event.NumFields + 8 + 8 + 1 + 4

// EncodeBatch serializes a vector of tuples: header (version, count) then
// each tuple in the same layout Encode uses.
func (BinaryCodec) EncodeBatch(ts []event.Tuple) []byte {
	buf := make([]byte, 0, 8+len(ts)*(tupleFixedSize+16))
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ts)))
	for i := range ts {
		t := &ts[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Key))
		for _, f := range t.Fields {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(f))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Time))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.IngestNanos))
		buf = append(buf, t.Stream)
		words := t.QuerySet.Words()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(words)))
		for _, w := range words {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	return buf
}

// DecodeBatch deserializes a vector produced by EncodeBatch. The returned
// slice comes from the exchange batch pool.
func (BinaryCodec) DecodeBatch(b []byte) ([]event.Tuple, error) {
	if len(b) < 5 {
		return nil, fmt.Errorf("spe: short batch encoding (%d bytes)", len(b))
	}
	if b[0] != codecVersion {
		return nil, fmt.Errorf("spe: unknown codec version %d", b[0])
	}
	r := reader{b: b[1:]}
	n := r.u32()
	if n > maxQSWords {
		return nil, fmt.Errorf("spe: batch too large (%d tuples)", n)
	}
	out := getBatch(int(n))
	for i := uint32(0); i < n; i++ {
		var t event.Tuple
		t.Key = int64(r.u64())
		for fi := range t.Fields {
			t.Fields[fi] = int64(r.u64())
		}
		t.Time = event.Time(r.u64())
		t.IngestNanos = int64(r.u64())
		t.Stream = r.u8()
		nw := r.u32()
		if nw > maxQSWords {
			putBatch(out)
			return nil, fmt.Errorf("spe: query-set too large (%d words)", nw)
		}
		if nw > 0 {
			words := make([]uint64, nw)
			for wi := range words {
				words[wi] = r.u64()
			}
			t.QuerySet = bitset.FromWords(words)
		}
		if r.err != nil {
			putBatch(out)
			return nil, r.err
		}
		out = append(out, t)
	}
	return out, nil
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("spe: truncated element encoding")
	}
}
