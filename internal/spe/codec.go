package spe

import (
	"encoding/binary"
	"fmt"

	"astream/internal/bitset"
	"astream/internal/event"
)

// BinaryCodec is a compact, allocation-light binary encoding for stream
// elements. It serves two purposes: the cluster simulation applies it to
// inter-node edges so shuffled data pays a realistic serialization cost, and
// the checkpoint log uses it to persist replayable input.
//
// Changelog payloads are NOT encoded (they are control-plane metadata whose
// identity must be preserved for deduplication); cross-node changelog
// delivery passes the pointer through after paying the envelope cost.
type BinaryCodec struct{}

const (
	codecVersion = 1
	maxQSWords   = 1 << 16
)

// Encode serializes an element.
func (BinaryCodec) Encode(e event.Element) []byte {
	buf := make([]byte, 0, 96)
	buf = append(buf, codecVersion, byte(e.Kind))
	switch e.Kind {
	case event.KindTuple:
		t := &e.Tuple
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Key))
		for _, f := range t.Fields {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(f))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Time))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.IngestNanos))
		buf = append(buf, t.Stream)
		words := t.QuerySet.Words()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(words)))
		for _, w := range words {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	case event.KindWatermark:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Watermark))
	case event.KindBarrier:
		buf = binary.LittleEndian.AppendUint64(buf, e.Barrier)
	case event.KindEOS:
		// no payload
	case event.KindChangelog:
		// Envelope only: event-time. Payload pointer travels alongside.
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Watermark))
	}
	return buf
}

// Decode deserializes an element previously produced by Encode. Changelog
// payloads cannot be reconstructed from bytes; DecodeWithPayload supplies
// them.
func (c BinaryCodec) Decode(b []byte) (event.Element, error) {
	return c.decode(b, nil)
}

// DecodeWithPayload decodes, reattaching the given changelog payload for
// KindChangelog elements.
func (c BinaryCodec) DecodeWithPayload(b []byte, payload any) (event.Element, error) {
	return c.decode(b, payload)
}

func (BinaryCodec) decode(b []byte, payload any) (event.Element, error) {
	if len(b) < 2 {
		return event.Element{}, fmt.Errorf("spe: short element encoding (%d bytes)", len(b))
	}
	if b[0] != codecVersion {
		return event.Element{}, fmt.Errorf("spe: unknown codec version %d", b[0])
	}
	kind := event.Kind(b[1])
	r := reader{b: b[2:]}
	var e event.Element
	e.Kind = kind
	switch kind {
	case event.KindTuple:
		t := &e.Tuple
		t.Key = int64(r.u64())
		for i := range t.Fields {
			t.Fields[i] = int64(r.u64())
		}
		t.Time = event.Time(r.u64())
		t.IngestNanos = int64(r.u64())
		t.Stream = r.u8()
		n := r.u32()
		if n > maxQSWords {
			return event.Element{}, fmt.Errorf("spe: query-set too large (%d words)", n)
		}
		if n > 0 {
			words := make([]uint64, n)
			for i := range words {
				words[i] = r.u64()
			}
			t.QuerySet = bitset.FromWords(words)
		}
	case event.KindWatermark:
		e.Watermark = event.Time(r.u64())
	case event.KindBarrier:
		e.Barrier = r.u64()
	case event.KindEOS:
	case event.KindChangelog:
		e.Watermark = event.Time(r.u64())
		e.Changelog = payload
	default:
		return event.Element{}, fmt.Errorf("spe: unknown element kind %d", kind)
	}
	if r.err != nil {
		return event.Element{}, r.err
	}
	return e, nil
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("spe: truncated element encoding")
	}
}
