package spe

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"astream/internal/bitset"
	"astream/internal/event"
)

// collector is a thread-safe sink target.
type collector struct {
	mu     sync.Mutex
	tuples []event.Tuple
	wms    []event.Time
	eos    int
}

func (c *collector) add(t event.Tuple) {
	c.mu.Lock()
	c.tuples = append(c.tuples, t)
	c.mu.Unlock()
}

func (c *collector) addWM(w event.Time) {
	c.mu.Lock()
	c.wms = append(c.wms, w)
	c.mu.Unlock()
}

func (c *collector) addEOS() {
	c.mu.Lock()
	c.eos++
	c.mu.Unlock()
}

func (c *collector) sinkFactory() func(int) Logic {
	return func(int) Logic {
		return &SinkLogic{Tuple: c.add, WM: c.addWM, EOS: c.addEOS}
	}
}

func tupleAt(key int64, tm event.Time) event.Tuple {
	return event.Tuple{Key: key, Time: tm}
}

func TestLinearPipeline(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	double := topo.AddOperator("double", 2, NewMapLogic(func(tu *event.Tuple) bool {
		tu.Fields[0] *= 2
		return true
	}), KeyedInput(src))
	var col collector
	topo.AddOperator("sink", 1, col.sinkFactory(), KeyedInput(double))

	job, err := Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := job.SourceContext(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		tu := tupleAt(i, event.Time(i))
		tu.Fields[0] = i
		sc.EmitTuple(tu)
	}
	sc.EmitWatermark(99)
	job.Stop()

	if len(col.tuples) != 100 {
		t.Fatalf("sink got %d tuples, want 100", len(col.tuples))
	}
	for _, tu := range col.tuples {
		if tu.Fields[0] != tu.Key*2 {
			t.Fatalf("map not applied: key=%d f0=%d", tu.Key, tu.Fields[0])
		}
	}
	if len(col.wms) == 0 || col.wms[len(col.wms)-1] != 99 {
		t.Fatalf("watermarks = %v, want last 99", col.wms)
	}
	if col.eos != 1 {
		t.Fatalf("eos count = %d, want 1", col.eos)
	}
}

func TestFilterDropsTuples(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	filt := topo.AddOperator("filter", 1, NewMapLogic(func(tu *event.Tuple) bool {
		return tu.Key%2 == 0
	}), KeyedInput(src))
	var col collector
	topo.AddOperator("sink", 1, col.sinkFactory(), KeyedInput(filt))
	job, _ := Deploy(topo)
	sc, _ := job.SourceContext(src, 0)
	for i := int64(0); i < 10; i++ {
		sc.EmitTuple(tupleAt(i, event.Time(i)))
	}
	job.Stop()
	if len(col.tuples) != 5 {
		t.Fatalf("filter passed %d, want 5", len(col.tuples))
	}
}

func TestKeyedPartitioningIsConsistent(t *testing.T) {
	// Two parallel instances record which keys they see; a key must always
	// go to the same instance.
	topo := NewTopology()
	src := topo.AddSource("src", 2)
	var mu sync.Mutex
	seen := map[int64]map[int]bool{} // key -> set of instances
	mk := func(inst int) Logic {
		return &SinkLogic{Tuple: func(tu event.Tuple) {
			mu.Lock()
			if seen[tu.Key] == nil {
				seen[tu.Key] = map[int]bool{}
			}
			seen[tu.Key][inst] = true
			mu.Unlock()
		}}
	}
	topo.AddOperator("sink", 4, mk, KeyedInput(src))
	job, _ := Deploy(topo)
	sc0, _ := job.SourceContext(src, 0)
	sc1, _ := job.SourceContext(src, 1)
	for i := int64(0); i < 200; i++ {
		sc0.EmitTuple(tupleAt(i%20, event.Time(i)))
		sc1.EmitTuple(tupleAt(i%20, event.Time(i)))
	}
	job.Stop()
	hit := map[int]bool{}
	for k, insts := range seen {
		if len(insts) != 1 {
			t.Fatalf("key %d reached %d instances", k, len(insts))
		}
		for i := range insts {
			hit[i] = true
		}
	}
	if len(hit) < 2 {
		t.Fatalf("only %d instances used; partitioning degenerate", len(hit))
	}
}

func TestWatermarkIsMinAcrossSenders(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 2)
	var col collector
	topo.AddOperator("sink", 1, col.sinkFactory(), KeyedInput(src))
	job, _ := Deploy(topo)
	sc0, _ := job.SourceContext(src, 0)
	sc1, _ := job.SourceContext(src, 1)

	sc0.EmitWatermark(10)
	sc0.EmitWatermark(50)
	sc1.EmitWatermark(30)
	// Combined watermark can be at most 30 now.
	sc1.EmitWatermark(60)
	// Now min(50, 60) = 50. Close the faster sender first so the minimum
	// stays pinned at 50 through the drain.
	sc1.Close()
	sc0.Close()
	job.Wait()

	if len(col.wms) == 0 {
		t.Fatal("no watermarks delivered")
	}
	for i := 1; i < len(col.wms); i++ {
		if col.wms[i] <= col.wms[i-1] {
			t.Fatalf("watermarks not strictly increasing: %v", col.wms)
		}
	}
	last := col.wms[len(col.wms)-1]
	if last != 50 {
		t.Fatalf("final watermark = %v, want 50 (min across senders)", last)
	}
	for _, w := range col.wms {
		if w == 60 {
			t.Fatal("watermark 60 leaked past a slower sender")
		}
	}
}

func TestWatermarkAdvancesWhenSenderFinishes(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 2)
	var col collector
	topo.AddOperator("sink", 1, col.sinkFactory(), KeyedInput(src))
	job, _ := Deploy(topo)
	sc0, _ := job.SourceContext(src, 0)
	sc1, _ := job.SourceContext(src, 1)
	sc0.EmitWatermark(100)
	sc1.EmitWatermark(10)
	sc1.Close() // slow sender leaves; min should now be 100
	sc0.Close()
	job.Wait()
	if len(col.wms) == 0 || col.wms[len(col.wms)-1] != 100 {
		t.Fatalf("watermarks = %v, want final 100 after sender EOS", col.wms)
	}
}

type testChangelog struct{ seq uint64 }

func (c *testChangelog) ChangelogSeq() uint64 { return c.seq }

type clRecorder struct {
	BaseLogic
	mu   sync.Mutex
	seqs []uint64
}

func (r *clRecorder) OnChangelog(p any, _ event.Time, _ *Emitter) {
	r.mu.Lock()
	r.seqs = append(r.seqs, p.(*testChangelog).seq)
	r.mu.Unlock()
}

func TestChangelogDeliveredOncePerInstance(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 3) // three senders all broadcast the changelog
	rec := &clRecorder{}
	mid := topo.AddOperator("mid", 1, func(int) Logic { return rec }, KeyedInput(src))
	rec2 := &clRecorder{}
	topo.AddOperator("sink", 2, func(int) Logic { return rec2 }, KeyedInput(mid))
	job, _ := Deploy(topo)
	cls := []*testChangelog{{1}, {2}, {3}}
	for i := 0; i < 3; i++ {
		sc, _ := job.SourceContext(src, i)
		for _, cl := range cls {
			sc.EmitChangelog(cl, event.Time(cl.seq))
		}
	}
	job.Stop()
	if len(rec.seqs) != 3 {
		t.Fatalf("mid saw %d changelogs, want 3 (dedup failed): %v", len(rec.seqs), rec.seqs)
	}
	for i, s := range rec.seqs {
		if s != uint64(i+1) {
			t.Fatalf("mid changelog order = %v", rec.seqs)
		}
	}
	// Two sink instances each see each changelog once → 6 total, but each
	// instance has its own recorder shared here, so 2 instances × 3 = 6.
	if len(rec2.seqs) != 6 {
		t.Fatalf("sink instances saw %d changelog deliveries, want 6", len(rec2.seqs))
	}
}

type barrierRecorder struct {
	BaseLogic
	mu    sync.Mutex
	ids   []uint64
	state []byte
}

func (b *barrierRecorder) OnTuple(_ int, t event.Tuple, out *Emitter) {
	out.EmitTuple(t) // forward
}

func (b *barrierRecorder) OnBarrier(id uint64, _ *Emitter) []byte {
	b.mu.Lock()
	b.ids = append(b.ids, id)
	b.mu.Unlock()
	return b.state
}

type snapStore struct {
	mu    sync.Mutex
	snaps []string
}

func (s *snapStore) OnSnapshot(op string, inst int, id uint64, state []byte) {
	s.mu.Lock()
	s.snaps = append(s.snaps, op)
	s.mu.Unlock()
}

func TestBarrierAlignmentAndSnapshot(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 2)
	rec := &barrierRecorder{state: []byte("s")}
	mid := topo.AddOperator("mid", 1, func(int) Logic { return rec }, KeyedInput(src))
	var col collector
	topo.AddOperator("sink", 1, col.sinkFactory(), KeyedInput(mid))
	store := &snapStore{}
	job, err := Deploy(topo, WithSnapshotSink(store))
	if err != nil {
		t.Fatal(err)
	}
	sc0, _ := job.SourceContext(src, 0)
	sc1, _ := job.SourceContext(src, 1)

	sc0.EmitBarrier(1)
	// Tuples from the barriered sender must be held back until alignment.
	sc0.EmitTuple(tupleAt(1, 5))
	sc1.EmitTuple(tupleAt(2, 5))
	sc1.EmitBarrier(1)
	job.Stop()

	rec.mu.Lock()
	ids := append([]uint64(nil), rec.ids...)
	rec.mu.Unlock()
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("mid barrier calls = %v, want [1]", ids)
	}
	if len(col.tuples) != 2 {
		t.Fatalf("sink got %d tuples, want 2", len(col.tuples))
	}
	store.mu.Lock()
	n := len(store.snaps)
	store.mu.Unlock()
	// mid (1 instance) + sink (1 instance) each snapshot once.
	if n != 2 {
		t.Fatalf("snapshots = %d, want 2", n)
	}
}

func TestBarrierCompletesWhenSenderClosesWithoutIt(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 2)
	rec := &barrierRecorder{}
	topo.AddOperator("mid", 1, func(int) Logic { return rec }, KeyedInput(src))
	job, _ := Deploy(topo)
	sc0, _ := job.SourceContext(src, 0)
	sc1, _ := job.SourceContext(src, 1)
	sc0.EmitBarrier(7)
	sc1.Close() // never sends the barrier
	sc0.Close()
	job.Wait()
	if len(rec.ids) != 1 || rec.ids[0] != 7 {
		t.Fatalf("barrier ids = %v, want [7]", rec.ids)
	}
}

func TestTwoInputPorts(t *testing.T) {
	// A binary operator sees tuples tagged with the right port.
	topo := NewTopology()
	a := topo.AddSource("A", 1)
	b := topo.AddSource("B", 1)
	var mu sync.Mutex
	ports := map[int64]int{}
	logic := func(int) Logic {
		return &portRecorder{ports: ports, mu: &mu}
	}
	topo.AddOperator("join", 2, logic, KeyedInput(a), KeyedInput(b))
	job, _ := Deploy(topo)
	sa, _ := job.SourceContext(a, 0)
	sb, _ := job.SourceContext(b, 0)
	for i := int64(0); i < 10; i++ {
		sa.EmitTuple(tupleAt(i, 0))
		sb.EmitTuple(tupleAt(100+i, 0))
	}
	job.Stop()
	for k, p := range ports {
		want := 0
		if k >= 100 {
			want = 1
		}
		if p != want {
			t.Fatalf("key %d arrived on port %d, want %d", k, p, want)
		}
	}
	if len(ports) != 20 {
		t.Fatalf("saw %d keys, want 20", len(ports))
	}
}

type portRecorder struct {
	BaseLogic
	mu    *sync.Mutex
	ports map[int64]int
}

func (p *portRecorder) OnTuple(port int, t event.Tuple, _ *Emitter) {
	p.mu.Lock()
	p.ports[t.Key] = port
	p.mu.Unlock()
}

func TestBroadcastAndGlobalModes(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	var mu sync.Mutex
	counts := make([]int, 3)
	mkCounting := func(inst int) Logic {
		return &SinkLogic{Tuple: func(event.Tuple) {
			mu.Lock()
			counts[inst]++
			mu.Unlock()
		}}
	}
	topo.AddOperator("bcast", 3, mkCounting, BroadcastInput(src))
	gcounts := make([]int, 3)
	mkGlobal := func(inst int) Logic {
		return &SinkLogic{Tuple: func(event.Tuple) {
			mu.Lock()
			gcounts[inst]++
			mu.Unlock()
		}}
	}
	topo.AddOperator("global", 3, mkGlobal, GlobalInput(src))
	job, _ := Deploy(topo)
	sc, _ := job.SourceContext(src, 0)
	for i := int64(0); i < 30; i++ {
		sc.EmitTuple(tupleAt(i, 0))
	}
	job.Stop()
	for i, c := range counts {
		if c != 30 {
			t.Fatalf("broadcast instance %d got %d, want 30", i, c)
		}
	}
	if gcounts[0] != 30 || gcounts[1] != 0 || gcounts[2] != 0 {
		t.Fatalf("global counts = %v, want [30 0 0]", gcounts)
	}
}

func TestValidateErrors(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	topo.AddOperator("bad", 0, NewMapLogic(func(*event.Tuple) bool { return true }), KeyedInput(src))
	if _, err := Deploy(topo); err == nil {
		t.Fatal("zero parallelism must fail deploy")
	}

	topo2 := NewTopology()
	topo2.AddOperator("orphan", 1, NewMapLogic(func(*event.Tuple) bool { return true }))
	if _, err := Deploy(topo2); err == nil {
		t.Fatal("operator without inputs must fail deploy")
	}

	topo3 := NewTopology()
	s3 := topo3.AddSource("s", 1)
	topo3.AddOperator("noLogic", 1, nil, KeyedInput(s3))
	if _, err := Deploy(topo3); err == nil {
		t.Fatal("nil logic must fail deploy")
	}

	topoA := NewTopology()
	topoB := NewTopology()
	sA := topoA.AddSource("s", 1)
	topoB.AddOperator("crossTopo", 1, NewMapLogic(func(*event.Tuple) bool { return true }), KeyedInput(sA))
	if _, err := Deploy(topoB); err == nil {
		t.Fatal("cross-topology input must fail deploy")
	}
}

func TestSourceContextErrors(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	var col collector
	sink := topo.AddOperator("sink", 1, col.sinkFactory(), KeyedInput(src))
	job, _ := Deploy(topo)
	if _, err := job.SourceContext(sink, 0); err == nil {
		t.Fatal("SourceContext on non-source must fail")
	}
	if _, err := job.SourceContext(src, 5); err == nil {
		t.Fatal("SourceContext with bad instance must fail")
	}
	job.Stop()
}

func TestCodecRoundTrip(t *testing.T) {
	c := BinaryCodec{}
	qs := bitset.FromIndexes(0, 7, 130)
	els := []event.Element{
		event.NewTuple(event.Tuple{Key: -5, Fields: [event.NumFields]int64{1, -2, 3, 4, 5}, Time: 42, QuerySet: qs, IngestNanos: 9999, Stream: 1}),
		event.NewTuple(event.Tuple{Key: 0, Time: 0}),
		event.NewWatermark(777),
		event.NewBarrier(3),
		event.EOS(),
	}
	for _, el := range els {
		got, err := c.Decode(c.Encode(el))
		if err != nil {
			t.Fatalf("decode(%v): %v", el.Kind, err)
		}
		if got.Kind != el.Kind || got.Watermark != el.Watermark || got.Barrier != el.Barrier {
			t.Fatalf("round trip changed control fields: %+v vs %+v", got, el)
		}
		if el.Kind == event.KindTuple {
			a, b := el.Tuple, got.Tuple
			if a.Key != b.Key || a.Fields != b.Fields || a.Time != b.Time ||
				a.IngestNanos != b.IngestNanos || a.Stream != b.Stream || !a.QuerySet.Equal(b.QuerySet) {
				t.Fatalf("tuple round trip mismatch:\n%+v\n%+v", a, b)
			}
		}
	}
	// Changelog: payload reattached via DecodeWithPayload.
	cl := &testChangelog{seq: 9}
	el := event.NewChangelog(cl, 55)
	enc := c.Encode(el)
	got, err := c.DecodeWithPayload(enc, cl)
	if err != nil {
		t.Fatal(err)
	}
	if got.Changelog != any(cl) || got.Watermark != 55 {
		t.Fatalf("changelog round trip lost payload: %+v", got)
	}
	// Corrupt inputs.
	if _, err := c.Decode(nil); err == nil {
		t.Fatal("nil input must fail")
	}
	if _, err := c.Decode([]byte{99, 0}); err == nil {
		t.Fatal("bad version must fail")
	}
	if _, err := c.Decode(enc[:3]); err == nil {
		t.Fatal("truncation must fail")
	}
}

func TestCrossNodeEdgesUseCodec(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 2)
	src.AssignNodes(2)
	var col collector
	sink := topo.AddOperator("sink", 2, col.sinkFactory(), KeyedInput(src))
	sink.AssignNodes(2)
	job, err := Deploy(topo, WithEdgeCodec(BinaryCodec{}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sc, _ := job.SourceContext(src, i)
		for k := int64(0); k < 50; k++ {
			tu := tupleAt(k, event.Time(k))
			tu.QuerySet = bitset.FromIndexes(int(k % 5))
			sc.EmitTuple(tu)
		}
	}
	job.Stop()
	if len(col.tuples) != 100 {
		t.Fatalf("got %d tuples through cross-node edges, want 100", len(col.tuples))
	}
	sort.Slice(col.tuples, func(i, j int) bool { return col.tuples[i].Key < col.tuples[j].Key })
	for _, tu := range col.tuples {
		if !tu.QuerySet.Test(int(tu.Key % 5)) {
			t.Fatalf("query-set lost in codec round trip for key %d", tu.Key)
		}
	}
}

func TestDeterministicOrderPerKeySingleChain(t *testing.T) {
	// With one source and keyed exchange, per-key order must be preserved.
	topo := NewTopology()
	src := topo.AddSource("src", 1)
	mid := topo.AddOperator("mid", 4, NewMapLogic(func(*event.Tuple) bool { return true }), KeyedInput(src))
	var mu sync.Mutex
	perKey := map[int64][]event.Time{}
	topo.AddOperator("sink", 4, func(int) Logic {
		return &SinkLogic{Tuple: func(tu event.Tuple) {
			mu.Lock()
			perKey[tu.Key] = append(perKey[tu.Key], tu.Time)
			mu.Unlock()
		}}
	}, KeyedInput(mid))
	job, _ := Deploy(topo)
	sc, _ := job.SourceContext(src, 0)
	for i := int64(0); i < 500; i++ {
		sc.EmitTuple(tupleAt(i%10, event.Time(i)))
	}
	job.Stop()
	for k, times := range perKey {
		for i := 1; i < len(times); i++ {
			if times[i] <= times[i-1] {
				t.Fatalf("key %d out of order: %v", k, times[:i+1])
			}
		}
	}
}

func TestTopologyDot(t *testing.T) {
	topo := NewTopology()
	src := topo.AddSource("src", 2)
	mid := topo.AddOperator("mid", 4, NewMapLogic(func(*event.Tuple) bool { return true }), KeyedInput(src))
	topo.AddOperator("sink", 1, NewSinkLogic(nil), GlobalInput(mid))
	dot := topo.Dot()
	for _, want := range []string{"digraph", `"src" [shape=ellipse`, `"mid" [shape=box`, `"src" -> "mid" [label="keyed"]`, `"mid" -> "sink" [label="global"]`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("Dot() missing %q:\n%s", want, dot)
		}
	}
}
