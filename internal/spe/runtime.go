package spe

import (
	"fmt"
	"runtime/debug"
	"sync"

	"astream/internal/event"
)

// ChangelogPayload must be implemented by changelog markers flowing through
// the engine; the runtime uses the sequence number to deliver each changelog
// exactly once per instance even though every upstream sender forwards it.
type ChangelogPayload interface {
	ChangelogSeq() uint64
}

// SnapshotSink receives operator state snapshots cut by checkpoint barriers.
type SnapshotSink interface {
	OnSnapshot(op string, instance int, barrier uint64, state []byte)
}

// target is one downstream inbox reachable from an emitter. buf is the
// pending exchange batch for this edge; it is owned by the emitting
// goroutine and flushed on size or on any control broadcast. size is the
// edge's adaptive batch threshold: it grows toward the configured maximum
// while the downstream queue is backlogged (the channel operation is the
// contended resource, so amortize more tuples per send) and shrinks after
// idleShrinkAfter consecutive flushes that found the queue empty (the
// consumer keeps up, so smaller batches cut latency for free).
type target struct {
	ch        chan message
	sender    int
	port      int // which input port of the receiver this edge feeds
	crossNode bool
	buf       []event.Tuple
	size      int // adaptive threshold in [adaptiveMinBatch, Emitter.batchSize]
	idle      int // consecutive flushes that saw an empty downstream queue
}

// consumer groups the targets for one downstream operator. self is the
// emitting instance's own index, used by Forward edges to route 1:1.
type consumer struct {
	mode    PartitionMode
	self    int
	targets []target
}

// Adaptive exchange tuning. Edges start at adaptiveMinBatch and double on
// observed backlog, so a quiet edge never pays full-batch staleness and a
// saturated edge reaches the configured ceiling within a few flushes.
const (
	adaptiveMinBatch = 8  // floor and starting point of the per-edge threshold
	idleShrinkAfter  = 16 // empty-queue flushes before the threshold halves
	flushCheckEvery  = 16 // elements between time-based flush deadline checks
)

// tupleBatchPool recycles exchange batch buffers between emitting and
// receiving goroutines.
//lint:pooled pool recycled exchange batch backings
var tupleBatchPool sync.Pool

// getBatch returns an empty batch buffer, reusing a pooled one when
// available.
//
//lint:pooled acquire hands out a pooled batch backing
func getBatch(n int) []event.Tuple {
	if v := tupleBatchPool.Get(); v != nil {
		return (*v.(*[]event.Tuple))[:0]
	}
	//lint:ignore hotalloc pool miss: batch buffers are pooled and reused after the first flush cycle
	return make([]event.Tuple, 0, n)
}

// putBatch returns a drained batch buffer to the pool.
//
//lint:pooled release returns a batch backing to the pool
func putBatch(b []event.Tuple) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	tupleBatchPool.Put(&b)
}

// Emitter sends elements to all downstream consumers of an operator
// instance. Tuples are partitioned per consumer mode; control elements are
// broadcast. An Emitter is owned by its instance goroutine.
//
// A chained emitter (direct non-nil) is the fused-edge fast path: EmitTuple
// invokes the next chained logic's OnTuple directly — no channel, no batch
// buffer, no codec — and carries no consumers of its own.
//
// With batchSize > 1, tuples accumulate in per-edge vectors and travel as
// one channel operation per batch (Flink's network-buffer model). Every
// control broadcast — watermark, changelog, barrier, EOS — flushes all
// pending batches first, so control elements can never overtake data on any
// edge and per-sender FIFO order is preserved exactly. Partial batches are
// additionally flushed when the owning instance goes idle (its inbox is
// empty) and, when a clock is injected, after flushNanos of sitting pending
// — so staleness no longer depends on the watermark cadence.
type Emitter struct {
	consumers []consumer
	codec     EdgeCodec
	batchSize int         // ≤1 sends tuples unbatched; else the adaptive ceiling
	direct    *directLink // fused-edge fast path; nil for exchange emitters

	pending      int // targets currently holding a partial batch
	nowNanos     func() int64
	flushNanos   int64 // ≤0 disables time-based flushing
	pendingSince int64 // first deadline check that observed pending batches
	sinceCheck   int   // elements since the last deadline check

	// Failure surface: the first edge fault (codec round-trip failure,
	// injected drop) sticks here; the owning instance checks Err after each
	// message and unwinds through its supervisor. opName/instance identify
	// the emitting operator in failure reports and fault-hook callbacks.
	err      error
	opName   string
	instance int
	hook     FaultHook
}

// fail records the first edge fault; later faults are dropped (the instance
// is already doomed and the first cause is the one worth reporting).
func (e *Emitter) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Err returns the sticky edge fault, if any.
func (e *Emitter) Err() error { return e.err }

// directLink connects a chained emitter to the next logic in its fused
// chain, along with the emitter that logic's own emissions go to.
type directLink struct {
	logic Logic
	out   *Emitter
}

// NewChainedEmitter returns the direct-call emitter a fused chain hands to
// a member whose downstream is next: EmitTuple invokes next.OnTuple(0, t,
// downstream) synchronously. Exported for benchmarks and tests of the chain
// driver; Deploy builds these internally for every fused edge.
func NewChainedEmitter(next Logic, downstream *Emitter) *Emitter {
	return &Emitter{direct: &directLink{logic: next, out: downstream}}
}

// EmitTuple routes a tuple downstream.
//
//lint:hotpath
func (e *Emitter) EmitTuple(t event.Tuple) {
	if e.direct != nil {
		e.direct.logic.OnTuple(0, t, e.direct.out)
		return
	}
	if e.batchSize > 1 {
		for ci := range e.consumers {
			c := &e.consumers[ci]
			switch c.mode {
			case Keyed:
				e.append(&c.targets[hashKey(t.Key, len(c.targets))], t)
			case Global:
				e.append(&c.targets[0], t)
			case Forward:
				e.append(&c.targets[c.self], t)
			case Broadcast:
				for ti := range c.targets {
					e.append(&c.targets[ti], t)
				}
			}
		}
		return
	}
	el := event.NewTuple(t)
	for ci := range e.consumers {
		c := &e.consumers[ci]
		switch c.mode {
		case Keyed:
			tg := &c.targets[hashKey(t.Key, len(c.targets))]
			e.send(tg, el)
		case Global:
			e.send(&c.targets[0], el)
		case Forward:
			e.send(&c.targets[c.self], el)
		case Broadcast:
			for ti := range c.targets {
				e.send(&c.targets[ti], el)
			}
		}
	}
}

// append adds a tuple to one edge's pending batch, flushing at the edge's
// adaptive threshold.
func (e *Emitter) append(tg *target, t event.Tuple) {
	if tg.buf == nil {
		if tg.size == 0 {
			tg.size = adaptiveMinBatch
			if tg.size > e.batchSize {
				tg.size = e.batchSize
			}
		}
		tg.buf = getBatch(tg.size)
		e.pending++
	}
	//lint:ignore hotalloc appends within the batch buffer's pooled capacity; flushed before it would grow
	tg.buf = append(tg.buf, t)
	if len(tg.buf) >= tg.size {
		e.flushTarget(tg)
	}
}

// flushTarget ships one edge's pending batch downstream. Cross-node edges
// pay the serialization cost batch-wise when the codec supports it,
// amortizing the envelope over the whole vector.
func (e *Emitter) flushTarget(tg *target) {
	if len(tg.buf) == 0 {
		return
	}
	batch := tg.buf
	tg.buf = nil
	e.pending--
	if e.pending == 0 {
		e.pendingSince = 0
	}
	e.adapt(tg)
	if tg.crossNode && e.codec != nil {
		if bc, ok := e.codec.(BatchCodec); ok {
			enc := bc.EncodeBatch(batch)
			if e.hook != nil {
				var bf BatchFault
				enc, bf = e.hook.OnBatch(e.opName, e.instance, enc)
				switch bf {
				case BatchDrop:
					// A dropped batch is lost data: fail the instance so the
					// barrier gate (completeBarrier) keeps the lossy epoch
					// from ever committing, and recovery re-delivers from
					// the log.
					putBatch(batch)
					//lint:ignore hotalloc cold failure path: the boxing happens once, when an injected link fault has already doomed the epoch
					e.fail(fmt.Errorf("spe: %s[%d] exchange batch dropped (injected link failure)", e.opName, e.instance))
					return
				case BatchDelay:
					// Hold the batch one flush round. Per-edge order is
					// preserved: broadcast re-flushes before sending any
					// control element on this edge.
					tg.buf = batch
					e.pending++
					return
				}
			}
			dec, err := bc.DecodeBatch(enc)
			if err != nil {
				// Ship the still-intact original so downstream stays
				// consistent; the sticky error fails this instance and the
				// job manager decides between recovery and teardown.
				e.fail(fmt.Errorf("spe: edge codec batch round-trip failed: %v", err))
			} else {
				putBatch(batch)
				batch = dec
			}
		} else {
			dec := getBatch(len(batch))
			ok := true
			for i := range batch {
				el, err := e.codec.Decode(e.codec.Encode(event.NewTuple(batch[i])))
				if err != nil {
					e.fail(fmt.Errorf("spe: edge codec round-trip failed: %v", err))
					ok = false
					break
				}
				//lint:ignore hotalloc cross-node codec path appends into a pooled buffer sized to the batch
				dec = append(dec, el.Tuple)
			}
			if ok {
				putBatch(batch)
				batch = dec
			} else {
				putBatch(dec)
			}
		}
	}
	tg.ch <- message{sender: tg.sender, port: tg.port, batch: batch}
}

// adapt resizes one edge's batch threshold from the downstream queue's
// occupancy, observed at flush time. A backlogged channel (≥ half full)
// doubles the threshold toward the configured ceiling; a queue found empty
// idleShrinkAfter flushes in a row halves it toward adaptiveMinBatch.
// Occupancy in between leaves the threshold alone and resets the idle run.
func (e *Emitter) adapt(tg *target) {
	q, c := len(tg.ch), cap(tg.ch)
	switch {
	case 2*q >= c && c > 0:
		tg.idle = 0
		if n := tg.size * 2; n <= e.batchSize {
			tg.size = n
		} else {
			tg.size = e.batchSize
		}
	case q == 0:
		tg.idle++
		if tg.idle >= idleShrinkAfter {
			tg.idle = 0
			if n := tg.size / 2; n >= adaptiveMinBatch {
				tg.size = n
			}
		}
	default:
		tg.idle = 0
	}
}

// flushAll ships every pending batch, in fixed edge order (deterministic).
func (e *Emitter) flushAll() {
	if e.pending == 0 {
		return
	}
	for ci := range e.consumers {
		for ti := range e.consumers[ci].targets {
			e.flushTarget(&e.consumers[ci].targets[ti])
		}
	}
}

// maybeTimeFlush flushes pending batches once they have sat for flushNanos,
// bounding staleness on low-rate edges independently of the watermark
// cadence. The clock is only consulted every flushCheckEvery elements, so
// the hot path pays an integer increment; the realized bound is therefore
// flushNanos plus up to two check intervals, which is what "low-rate edge"
// makes negligible. No-op without an injected clock.
func (e *Emitter) maybeTimeFlush() {
	if e.pending == 0 || e.flushNanos <= 0 || e.nowNanos == nil {
		return
	}
	e.sinceCheck++
	if e.sinceCheck < flushCheckEvery {
		return
	}
	e.sinceCheck = 0
	now := e.nowNanos()
	if e.pendingSince == 0 {
		e.pendingSince = now
		return
	}
	if now-e.pendingSince >= e.flushNanos {
		e.flushAll()
	}
}

// broadcast delivers a control element to every target of every consumer,
// flushing pending tuple batches first so the control element never
// overtakes data. A failed emitter forwards nothing: data may already be
// lost on an edge, and letting a barrier (or watermark) past the loss would
// commit an inconsistent epoch.
func (e *Emitter) broadcast(el event.Element) {
	e.flushAll()
	if e.pending > 0 {
		// An injected delay held a batch back; it must still precede any
		// control element on its edge.
		e.flushAll()
	}
	if e.err != nil {
		return
	}
	for ci := range e.consumers {
		for ti := range e.consumers[ci].targets {
			e.send(&e.consumers[ci].targets[ti], el)
		}
	}
}

// broadcastRaw delivers a control element without flushing and regardless of
// the sticky error — the teardown path, where EOS must reach downstream so
// the rest of the job can finish even though this instance is dead.
func (e *Emitter) broadcastRaw(el event.Element) {
	for ci := range e.consumers {
		for ti := range e.consumers[ci].targets {
			e.send(&e.consumers[ci].targets[ti], el)
		}
	}
}

// discardPending drops every pending batch buffer (teardown path).
func (e *Emitter) discardPending() {
	for ci := range e.consumers {
		for ti := range e.consumers[ci].targets {
			tg := &e.consumers[ci].targets[ti]
			if tg.buf != nil {
				putBatch(tg.buf)
				tg.buf = nil
			}
		}
	}
	e.pending = 0
}

func (e *Emitter) send(tg *target, el event.Element) {
	if tg.crossNode && e.codec != nil {
		// Pay the serialization cost a networked edge would: encode and
		// decode the element (the decoded copy is what travels on).
		payload := el.Changelog
		dec, err := e.codec.Decode(e.codec.Encode(el))
		if err != nil {
			// Deliver the intact original so control flow is never lost;
			// the sticky error still fails the instance.
			e.fail(fmt.Errorf("spe: edge codec round-trip failed: %v", err))
		} else {
			// Changelog payloads are control-plane pointers; reattach after
			// paying the envelope cost (the codec cannot reconstruct them).
			if dec.Kind == event.KindChangelog {
				dec.Changelog = payload
			}
			el = dec
		}
	}
	tg.ch <- message{sender: tg.sender, port: tg.port, elem: el}
}

// hasConsumers reports whether anything is downstream (sinks have none).
func (e *Emitter) hasConsumers() bool { return len(e.consumers) > 0 }

// chainMember is one fused operator within an instance: its topology node
// (which names its snapshots), its logic, and the emitter that logic's
// callbacks receive — a direct-call link to the next member, or the real
// exchange emitter for the chain tail.
type chainMember struct {
	node  *Node
	logic Logic
	out   *Emitter
}

// instanceRT is the runtime state of one deployed instance: an operator
// chain of one or more fused logics sharing an inbox and a goroutine.
// Tuples enter members[0] and propagate by direct call; control elements
// traverse the chain in-line, member by member, so member j's emissions
// during a control callback reach member j+1's OnTuple before j+1's own
// callback runs — exactly the order an unfused deployment delivers.
type instanceRT struct {
	op       *Node // chain head (names the instance in diagnostics)
	instance int
	members  []chainMember
	inbox    chan message // nil for chains embedded in a source (see SourceContext)
	senders  int
	emitter  *Emitter // the chain tail's exchange emitter
	snapSink   SnapshotSink
	failSink   FailureSink // nil: failures re-panic (bare deployments stay fail-fast)
	hook       FaultHook   // nil in production
	deltaEvery int         // >1: DeltaSnapshotter logics snapshot incrementally

	wms        []event.Time // per-sender watermark
	done       []bool       // per-sender EOS
	doneCount  int
	combinedWM event.Time
	clSeq      uint64 // last delivered changelog

	// Barrier alignment.
	aligning  bool
	barrierID uint64
	blocked   []bool
	buffered  []message
}

func newInstanceRT(op *Node, instance int, members []chainMember, senders int, inboxCap int) *instanceRT {
	rt := &instanceRT{
		op:         op,
		instance:   instance,
		members:    members,
		inbox:      make(chan message, inboxCap),
		senders:    senders,
		wms:        make([]event.Time, senders),
		done:       make([]bool, senders),
		blocked:    make([]bool, senders),
		combinedWM: event.MinTime,
	}
	for i := range rt.wms {
		rt.wms[i] = event.MinTime
	}
	return rt
}

// runSupervised is the per-instance supervisor: the goroutine entry point
// Deploy starts (astream-vet's supervised-go check keys on this name). Any
// panic or propagated invariant violation in the main loop becomes a
// structured InstanceFailure, after which the instance keeps draining its
// inbox so upstream senders never block and downstream still observes EOS —
// one dead instance must not wedge or kill the rest of the job.
func (rt *instanceRT) runSupervised(wg *sync.WaitGroup) {
	defer wg.Done()
	f := rt.runCaptured()
	if f == nil {
		return
	}
	if rt.failSink == nil {
		// No supervisor installed: preserve the historical fail-fast
		// behavior for bare deployments.
		panic(f.Reason)
	}
	rt.failSink.OnInstanceFailure(*f)
	rt.drainDiscard()
}

// runCaptured runs the main loop, converting panics and propagated errors
// into a failure report.
func (rt *instanceRT) runCaptured() (f *InstanceFailure) {
	defer func() {
		if pv := recover(); pv != nil {
			f = &InstanceFailure{
				Op:       rt.op.name,
				Instance: rt.instance,
				Reason:   fmt.Sprint(pv),
				Panic:    pv,
				Stack:    debug.Stack(),
			}
		}
	}()
	if err := rt.run(); err != nil {
		return &InstanceFailure{Op: rt.op.name, Instance: rt.instance, Reason: err.Error()}
	}
	return nil
}

// drainDiscard consumes the inbox of a failed instance until every sender
// has delivered EOS, then forwards EOS downstream. Pending output is
// discarded: the failed epoch never commits, and recovery re-delivers its
// input from the checkpoint log.
func (rt *instanceRT) drainDiscard() {
	//lint:ignore hotalloc teardown path: runs once per instance failure
	defer func() { _ = recover() }() // teardown must not re-panic
	for rt.doneCount < rt.senders {
		msg := <-rt.inbox
		if msg.batch != nil {
			putBatch(msg.batch)
			continue
		}
		if msg.elem.Kind == event.KindEOS && !rt.done[msg.sender] {
			rt.done[msg.sender] = true
			rt.doneCount++
		}
	}
	rt.emitter.discardPending()
	rt.emitter.broadcastRaw(event.EOS())
}

// run is the instance main loop: consume until every sender has sent EOS.
// Whenever the inbox runs dry the instance flushes its partial output
// batches before blocking, so downstream staleness under low input rates is
// bounded by idleness, not by batch fill. Runtime invariant violations and
// edge faults surface as the returned error.
func (rt *instanceRT) run() error {
	for rt.doneCount < rt.senders {
		var msg message
		select {
		case msg = <-rt.inbox:
		default:
			rt.emitter.flushAll()
			msg = <-rt.inbox
		}
		if err := rt.handle(msg); err != nil {
			return err
		}
		rt.emitter.maybeTimeFlush()
		if err := rt.emitter.Err(); err != nil {
			return err
		}
	}
	rt.finish()
	return rt.emitter.Err()
}

// finish drains the chain at end-of-stream: each member's OnEOS runs with
// its own emitter (so final emissions still traverse the rest of the
// chain), then EOS is broadcast downstream.
func (rt *instanceRT) finish() {
	for i := range rt.members {
		m := &rt.members[i]
		m.logic.OnEOS(m.out)
	}
	rt.emitter.broadcast(event.EOS())
}

//lint:hotpath
func (rt *instanceRT) handle(msg message) error {
	if rt.aligning && rt.blocked[msg.sender] {
		//lint:ignore hotalloc barrier alignment only: buffering happens while a checkpoint is in flight
		rt.buffered = append(rt.buffered, msg)
		return nil
	}
	if msg.batch != nil {
		head := &rt.members[0]
		for i := range msg.batch {
			if rt.hook != nil {
				rt.hook.BeforeTuple(rt.op.name, rt.instance)
			}
			head.logic.OnTuple(msg.port, msg.batch[i], head.out)
		}
		putBatch(msg.batch)
		return nil
	}
	switch msg.elem.Kind {
	case event.KindTuple:
		if rt.hook != nil {
			rt.hook.BeforeTuple(rt.op.name, rt.instance)
		}
		head := &rt.members[0]
		head.logic.OnTuple(msg.port, msg.elem.Tuple, head.out)
	case event.KindWatermark:
		rt.onWatermark(msg.sender, msg.elem.Watermark)
	case event.KindChangelog:
		return rt.onChangelog(msg.elem)
	case event.KindBarrier:
		return rt.onBarrier(msg.sender, msg.elem.Barrier)
	case event.KindEOS:
		return rt.onEOS(msg.sender)
	}
	return nil
}

func (rt *instanceRT) onWatermark(sender int, wm event.Time) {
	if wm <= rt.wms[sender] {
		return
	}
	rt.wms[sender] = wm
	rt.advanceWatermark()
}

// advanceWatermark recomputes the combined watermark (min over live senders)
// and delivers it when it moved.
func (rt *instanceRT) advanceWatermark() {
	min := event.MaxTime
	live := false
	for i := range rt.wms {
		if rt.done[i] {
			continue
		}
		live = true
		if rt.wms[i] < min {
			min = rt.wms[i]
		}
	}
	if !live || min <= rt.combinedWM || min == event.MinTime {
		return
	}
	rt.combinedWM = min
	for i := range rt.members {
		m := &rt.members[i]
		m.logic.OnWatermark(min, m.out)
	}
	rt.emitter.broadcast(event.NewWatermark(min))
}

func (rt *instanceRT) onChangelog(el event.Element) error {
	payload, ok := el.Changelog.(ChangelogPayload)
	if !ok {
		return fmt.Errorf("spe: changelog payload %T does not implement ChangelogPayload", el.Changelog)
	}
	seq := payload.ChangelogSeq()
	if seq <= rt.clSeq {
		return nil // duplicate from another sender
	}
	if seq != rt.clSeq+1 {
		//lint:ignore hotalloc cold error path: formats once on a changelog sequence gap, which fails the instance
		return fmt.Errorf("spe: %s[%d] changelog gap: have %d, got %d", rt.op.name, rt.instance, rt.clSeq, seq)
	}
	rt.clSeq = seq
	for i := range rt.members {
		m := &rt.members[i]
		m.logic.OnChangelog(el.Changelog, el.Watermark, m.out)
	}
	rt.emitter.broadcast(el)
	return nil
}

func (rt *instanceRT) onBarrier(sender int, id uint64) error {
	if !rt.aligning {
		rt.aligning = true
		rt.barrierID = id
		for i := range rt.blocked {
			rt.blocked[i] = false
		}
	}
	if id != rt.barrierID {
		//lint:ignore hotalloc cold error path: formats once on a barrier protocol violation, which fails the instance
		return fmt.Errorf("spe: %s[%d] overlapping barriers %d and %d", rt.op.name, rt.instance, rt.barrierID, id)
	}
	rt.blocked[sender] = true
	// Aligned when every live sender delivered the barrier.
	for i := range rt.blocked {
		if !rt.blocked[i] && !rt.done[i] {
			return nil
		}
	}
	return rt.completeBarrier(id)
}

// completeBarrier runs after input alignment: each chain member snapshots
// under its own node name (a fused chain still produces one snapshot per
// operator, so checkpoint accounting is fusion-agnostic), the barrier is
// forwarded, and buffered input replays. A failed instance stops here
// without snapshotting: data may already be lost on an output edge, and a
// completed checkpoint at this barrier would commit that loss.
func (rt *instanceRT) completeBarrier(id uint64) error {
	if err := rt.emitter.Err(); err != nil {
		return err
	}
	if rt.hook != nil {
		rt.hook.AtBarrier(rt.op.name, rt.instance, id)
	}
	for i := range rt.members {
		m := &rt.members[i]
		var state []byte
		if ds, ok := m.logic.(DeltaSnapshotter); ok && rt.deltaEvery > 1 {
			state = ds.OnBarrierDelta(id, m.out, rt.deltaEvery)
		} else {
			state = m.logic.OnBarrier(id, m.out)
		}
		if rt.snapSink != nil {
			rt.snapSink.OnSnapshot(m.node.name, rt.instance, id, state)
		}
	}
	rt.emitter.broadcast(event.NewBarrier(id))
	rt.aligning = false
	buf := rt.buffered
	rt.buffered = nil
	for _, m := range buf {
		if err := rt.handle(m); err != nil {
			return err
		}
	}
	return nil
}

func (rt *instanceRT) onEOS(sender int) error {
	if rt.done[sender] {
		return nil
	}
	rt.done[sender] = true
	rt.doneCount++
	// A finished sender no longer constrains the watermark; and if it was
	// the last holdout of a barrier alignment, complete the alignment.
	if rt.aligning && !rt.blocked[sender] {
		if err := rt.onBarrierSenderGone(); err != nil {
			return err
		}
	}
	rt.advanceWatermark()
	return nil
}

// onBarrierSenderGone re-checks barrier alignment after a sender EOS'd
// without delivering the pending barrier.
func (rt *instanceRT) onBarrierSenderGone() error {
	for i := range rt.blocked {
		if !rt.blocked[i] && !rt.done[i] {
			return nil
		}
	}
	return rt.completeBarrier(rt.barrierID)
}

// sourceClose ends a chain embedded in a source instance: the source is the
// instance's only sender and there is no goroutine to unwind, so EOS and
// the end-of-stream drain run in-line on the caller.
func (rt *instanceRT) sourceClose() error {
	if err := rt.onEOS(0); err != nil {
		return err
	}
	rt.finish()
	return rt.emitter.Err()
}
