package spe

import (
	"fmt"
	"sync"

	"astream/internal/event"
)

// ChangelogPayload must be implemented by changelog markers flowing through
// the engine; the runtime uses the sequence number to deliver each changelog
// exactly once per instance even though every upstream sender forwards it.
type ChangelogPayload interface {
	ChangelogSeq() uint64
}

// SnapshotSink receives operator state snapshots cut by checkpoint barriers.
type SnapshotSink interface {
	OnSnapshot(op string, instance int, barrier uint64, state []byte)
}

// target is one downstream inbox reachable from an emitter. buf is the
// pending exchange batch for this edge; it is owned by the emitting
// goroutine and flushed on size or on any control broadcast.
type target struct {
	ch        chan message
	sender    int
	port      int // which input port of the receiver this edge feeds
	crossNode bool
	buf       []event.Tuple
}

// consumer groups the targets for one downstream operator.
type consumer struct {
	mode    PartitionMode
	targets []target
}

// tupleBatchPool recycles exchange batch buffers between emitting and
// receiving goroutines.
var tupleBatchPool sync.Pool

// getBatch returns an empty batch buffer, reusing a pooled one when
// available.
func getBatch(n int) []event.Tuple {
	if v := tupleBatchPool.Get(); v != nil {
		return (*v.(*[]event.Tuple))[:0]
	}
	return make([]event.Tuple, 0, n)
}

// putBatch returns a drained batch buffer to the pool.
func putBatch(b []event.Tuple) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	tupleBatchPool.Put(&b)
}

// Emitter sends elements to all downstream consumers of an operator
// instance. Tuples are partitioned per consumer mode; control elements are
// broadcast. An Emitter is owned by its instance goroutine.
//
// With batchSize > 1, tuples accumulate in per-edge vectors and travel as
// one channel operation per batch (Flink's network-buffer model). Every
// control broadcast — watermark, changelog, barrier, EOS — flushes all
// pending batches first, so control elements can never overtake data on any
// edge and per-sender FIFO order is preserved exactly. The engine's
// watermark cadence therefore bounds how long a tuple can sit in a buffer.
type Emitter struct {
	consumers []consumer
	codec     EdgeCodec
	batchSize int // ≤1 sends tuples unbatched
}

// EmitTuple routes a tuple downstream.
func (e *Emitter) EmitTuple(t event.Tuple) {
	if e.batchSize > 1 {
		for ci := range e.consumers {
			c := &e.consumers[ci]
			switch c.mode {
			case Keyed:
				e.append(&c.targets[hashKey(t.Key, len(c.targets))], t)
			case Global:
				e.append(&c.targets[0], t)
			case Broadcast:
				for ti := range c.targets {
					e.append(&c.targets[ti], t)
				}
			}
		}
		return
	}
	el := event.NewTuple(t)
	for ci := range e.consumers {
		c := &e.consumers[ci]
		switch c.mode {
		case Keyed:
			tg := &c.targets[hashKey(t.Key, len(c.targets))]
			e.send(tg, el)
		case Global:
			e.send(&c.targets[0], el)
		case Broadcast:
			for ti := range c.targets {
				e.send(&c.targets[ti], el)
			}
		}
	}
}

// append adds a tuple to one edge's pending batch, flushing at batchSize.
func (e *Emitter) append(tg *target, t event.Tuple) {
	if tg.buf == nil {
		tg.buf = getBatch(e.batchSize)
	}
	tg.buf = append(tg.buf, t)
	if len(tg.buf) >= e.batchSize {
		e.flushTarget(tg)
	}
}

// flushTarget ships one edge's pending batch downstream. Cross-node edges
// pay the serialization cost batch-wise when the codec supports it,
// amortizing the envelope over the whole vector.
func (e *Emitter) flushTarget(tg *target) {
	if len(tg.buf) == 0 {
		return
	}
	batch := tg.buf
	tg.buf = nil
	if tg.crossNode && e.codec != nil {
		if bc, ok := e.codec.(BatchCodec); ok {
			dec, err := bc.DecodeBatch(bc.EncodeBatch(batch))
			if err != nil {
				panic(fmt.Sprintf("spe: edge codec batch round-trip failed: %v", err))
			}
			putBatch(batch)
			batch = dec
		} else {
			dec := getBatch(len(batch))
			for i := range batch {
				el, err := e.codec.Decode(e.codec.Encode(event.NewTuple(batch[i])))
				if err != nil {
					panic(fmt.Sprintf("spe: edge codec round-trip failed: %v", err))
				}
				dec = append(dec, el.Tuple)
			}
			putBatch(batch)
			batch = dec
		}
	}
	tg.ch <- message{sender: tg.sender, port: tg.port, batch: batch}
}

// flushAll ships every pending batch, in fixed edge order (deterministic).
func (e *Emitter) flushAll() {
	if e.batchSize <= 1 {
		return
	}
	for ci := range e.consumers {
		for ti := range e.consumers[ci].targets {
			e.flushTarget(&e.consumers[ci].targets[ti])
		}
	}
}

// broadcast delivers a control element to every target of every consumer,
// flushing pending tuple batches first so the control element never
// overtakes data.
func (e *Emitter) broadcast(el event.Element) {
	e.flushAll()
	for ci := range e.consumers {
		for ti := range e.consumers[ci].targets {
			e.send(&e.consumers[ci].targets[ti], el)
		}
	}
}

func (e *Emitter) send(tg *target, el event.Element) {
	if tg.crossNode && e.codec != nil {
		// Pay the serialization cost a networked edge would: encode and
		// decode the element (the decoded copy is what travels on).
		payload := el.Changelog
		dec, err := e.codec.Decode(e.codec.Encode(el))
		if err != nil {
			panic(fmt.Sprintf("spe: edge codec round-trip failed: %v", err))
		}
		// Changelog payloads are control-plane pointers; reattach after
		// paying the envelope cost (the codec cannot reconstruct them).
		if dec.Kind == event.KindChangelog {
			dec.Changelog = payload
		}
		el = dec
	}
	tg.ch <- message{sender: tg.sender, port: tg.port, elem: el}
}

// hasConsumers reports whether anything is downstream (sinks have none).
func (e *Emitter) hasConsumers() bool { return len(e.consumers) > 0 }

// instanceRT is the runtime state of one operator instance.
type instanceRT struct {
	op       *Node
	instance int
	logic    Logic
	inbox    chan message
	senders  int
	emitter  *Emitter
	snapSink SnapshotSink

	wms        []event.Time // per-sender watermark
	done       []bool       // per-sender EOS
	doneCount  int
	combinedWM event.Time
	clSeq      uint64 // last delivered changelog

	// Barrier alignment.
	aligning  bool
	barrierID uint64
	blocked   []bool
	buffered  []message
}

func newInstanceRT(op *Node, instance int, logic Logic, senders int, inboxCap int) *instanceRT {
	rt := &instanceRT{
		op:         op,
		instance:   instance,
		logic:      logic,
		inbox:      make(chan message, inboxCap),
		senders:    senders,
		wms:        make([]event.Time, senders),
		done:       make([]bool, senders),
		blocked:    make([]bool, senders),
		combinedWM: event.MinTime,
	}
	for i := range rt.wms {
		rt.wms[i] = event.MinTime
	}
	return rt
}

// run is the instance main loop: consume until every sender has sent EOS.
func (rt *instanceRT) run() {
	for rt.doneCount < rt.senders {
		msg := <-rt.inbox
		rt.handle(msg)
	}
	rt.logic.OnEOS(rt.emitter)
	rt.emitter.broadcast(event.EOS())
}

func (rt *instanceRT) handle(msg message) {
	if rt.aligning && rt.blocked[msg.sender] {
		rt.buffered = append(rt.buffered, msg)
		return
	}
	if msg.batch != nil {
		for i := range msg.batch {
			rt.logic.OnTuple(msg.port, msg.batch[i], rt.emitter)
		}
		putBatch(msg.batch)
		return
	}
	switch msg.elem.Kind {
	case event.KindTuple:
		rt.logic.OnTuple(msg.port, msg.elem.Tuple, rt.emitter)
	case event.KindWatermark:
		rt.onWatermark(msg.sender, msg.elem.Watermark)
	case event.KindChangelog:
		rt.onChangelog(msg.elem)
	case event.KindBarrier:
		rt.onBarrier(msg.sender, msg.elem.Barrier)
	case event.KindEOS:
		rt.onEOS(msg.sender)
	}
}

func (rt *instanceRT) onWatermark(sender int, wm event.Time) {
	if wm <= rt.wms[sender] {
		return
	}
	rt.wms[sender] = wm
	rt.advanceWatermark()
}

// advanceWatermark recomputes the combined watermark (min over live senders)
// and delivers it when it moved.
func (rt *instanceRT) advanceWatermark() {
	min := event.MaxTime
	live := false
	for i := range rt.wms {
		if rt.done[i] {
			continue
		}
		live = true
		if rt.wms[i] < min {
			min = rt.wms[i]
		}
	}
	if !live || min <= rt.combinedWM || min == event.MinTime {
		return
	}
	rt.combinedWM = min
	rt.logic.OnWatermark(min, rt.emitter)
	rt.emitter.broadcast(event.NewWatermark(min))
}

func (rt *instanceRT) onChangelog(el event.Element) {
	payload, ok := el.Changelog.(ChangelogPayload)
	if !ok {
		panic(fmt.Sprintf("spe: changelog payload %T does not implement ChangelogPayload", el.Changelog))
	}
	seq := payload.ChangelogSeq()
	if seq <= rt.clSeq {
		return // duplicate from another sender
	}
	if seq != rt.clSeq+1 {
		panic(fmt.Sprintf("spe: %s[%d] changelog gap: have %d, got %d", rt.op.name, rt.instance, rt.clSeq, seq))
	}
	rt.clSeq = seq
	rt.logic.OnChangelog(el.Changelog, el.Watermark, rt.emitter)
	rt.emitter.broadcast(el)
}

func (rt *instanceRT) onBarrier(sender int, id uint64) {
	if !rt.aligning {
		rt.aligning = true
		rt.barrierID = id
		for i := range rt.blocked {
			rt.blocked[i] = false
		}
	}
	if id != rt.barrierID {
		panic(fmt.Sprintf("spe: %s[%d] overlapping barriers %d and %d", rt.op.name, rt.instance, rt.barrierID, id))
	}
	rt.blocked[sender] = true
	// Aligned when every live sender delivered the barrier.
	for i := range rt.blocked {
		if !rt.blocked[i] && !rt.done[i] {
			return
		}
	}
	// Alignment complete: snapshot, forward, replay buffered input.
	state := rt.logic.OnBarrier(id, rt.emitter)
	if rt.snapSink != nil {
		rt.snapSink.OnSnapshot(rt.op.name, rt.instance, id, state)
	}
	rt.emitter.broadcast(event.NewBarrier(id))
	rt.aligning = false
	buf := rt.buffered
	rt.buffered = nil
	for _, m := range buf {
		rt.handle(m)
	}
}

func (rt *instanceRT) onEOS(sender int) {
	if rt.done[sender] {
		return
	}
	rt.done[sender] = true
	rt.doneCount++
	// A finished sender no longer constrains the watermark; and if it was
	// the last holdout of a barrier alignment, complete the alignment.
	if rt.aligning && !rt.blocked[sender] {
		rt.onBarrierSenderGone()
	}
	rt.advanceWatermark()
}

// onBarrierSenderGone re-checks barrier alignment after a sender EOS'd
// without delivering the pending barrier.
func (rt *instanceRT) onBarrierSenderGone() {
	for i := range rt.blocked {
		if !rt.blocked[i] && !rt.done[i] {
			return
		}
	}
	state := rt.logic.OnBarrier(rt.barrierID, rt.emitter)
	if rt.snapSink != nil {
		rt.snapSink.OnSnapshot(rt.op.name, rt.instance, rt.barrierID, state)
	}
	rt.emitter.broadcast(event.NewBarrier(rt.barrierID))
	rt.aligning = false
	buf := rt.buffered
	rt.buffered = nil
	for _, m := range buf {
		rt.handle(m)
	}
}
