// Package gen implements the paper's workload generators (§4.2): the data
// generator (round-robin keys, uniform random fields), the selection
// predicate generator, the join and aggregation query generators (Figures 7
// and 8), and the complex-query generator of §4.7.
//
// All generators are deterministic given their seed, which is what makes
// experiment runs and replays comparable.
package gen

import (
	"math/rand"

	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// DataConfig parameterizes tuple generation.
type DataConfig struct {
	// Keys is the number of distinct keys (paper §4.4: 1000).
	Keys int64
	// FieldMax bounds the uniform random field values.
	FieldMax int64
}

// DefaultDataConfig matches the paper's setup.
func DefaultDataConfig() DataConfig {
	return DataConfig{Keys: 1000, FieldMax: 1000}
}

// Data produces tuples with round-robin keys ("key ← key+1 % keymax", which
// balances partitions) and uniform random fields.
type Data struct {
	cfg DataConfig
	rng *rand.Rand
	key int64
}

// NewData creates a deterministic data generator.
func NewData(cfg DataConfig, seed int64) *Data {
	if cfg.Keys <= 0 {
		cfg.Keys = 1
	}
	if cfg.FieldMax <= 0 {
		cfg.FieldMax = 1
	}
	return &Data{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next tuple with the given event-time.
func (d *Data) Next(at event.Time) event.Tuple {
	t := event.Tuple{Key: d.key, Time: at}
	d.key = (d.key + 1) % d.cfg.Keys
	for i := range t.Fields {
		t.Fields[i] = d.rng.Int63n(d.cfg.FieldMax)
	}
	return t
}

// QueryConfig parameterizes query generation.
type QueryConfig struct {
	// FieldMax bounds predicate constants; match DataConfig.FieldMax.
	FieldMax int64
	// WindowMax bounds window lengths (event-time units).
	WindowMax int64
	// WindowMin floors window lengths.
	WindowMin int64
	// Streams is the engine's stream count (join arity bound).
	Streams int
	// MinSelectivity floors each predicate's estimated selectivity so
	// generated queries produce observable output.
	MinSelectivity float64
	// FixedLength, when > 0, pins every time-window length to exactly this
	// value instead of drawing it — the slide-ratio sweep uses it to control
	// how many slices one window spans. FixedSlide (when > 0 and less than
	// FixedLength) likewise pins the slide; equal or unset values produce
	// tumbling windows.
	FixedLength int64
	FixedSlide  int64
}

// DefaultQueryConfig matches the paper's templates on a laptop-scale window
// range.
func DefaultQueryConfig(streams int) QueryConfig {
	return QueryConfig{FieldMax: 1000, WindowMax: 64, WindowMin: 4, Streams: streams, MinSelectivity: 0.2}
}

// Queries generates random queries per the paper's templates.
type Queries struct {
	cfg QueryConfig
	rng *rand.Rand
}

// NewQueries creates a deterministic query generator.
func NewQueries(cfg QueryConfig, seed int64) *Queries {
	if cfg.WindowMin <= 0 {
		cfg.WindowMin = 1
	}
	if cfg.WindowMax < cfg.WindowMin {
		cfg.WindowMax = cfg.WindowMin
	}
	return &Queries{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Predicate generates one random selection predicate per §4.2.2: a random
// field, a random comparison operator, and a random constant, re-drawn until
// the estimated selectivity clears the configured floor.
func (g *Queries) Predicate() expr.Predicate {
	ops := []expr.Op{expr.LT, expr.GT, expr.EQ, expr.LE, expr.GE}
	for tries := 0; ; tries++ {
		c := expr.Comparison{
			Field: g.rng.Intn(event.NumFields),
			Op:    ops[g.rng.Intn(len(ops))],
			Value: g.rng.Int63n(g.cfg.FieldMax),
		}
		p := expr.True().And(c)
		if p.Selectivity(g.cfg.FieldMax) >= g.cfg.MinSelectivity || tries > 64 {
			return p
		}
	}
}

// windowSpec draws "length = random(1, windowmax), slide = random(1,
// length)" per §4.2.3. tumblingOnly forces slide == length (multi-stage
// queries require it).
func (g *Queries) windowSpec(tumblingOnly bool) window.Spec {
	if g.cfg.FixedLength > 0 {
		length := event.Time(g.cfg.FixedLength)
		slide := event.Time(g.cfg.FixedSlide)
		if tumblingOnly || slide <= 0 || slide >= length {
			return window.TumblingSpec(length)
		}
		return window.SlidingSpec(length, slide)
	}
	span := g.cfg.WindowMax - g.cfg.WindowMin + 1
	length := event.Time(g.cfg.WindowMin + g.rng.Int63n(span))
	if tumblingOnly {
		return window.TumblingSpec(length)
	}
	slide := event.Time(1 + g.rng.Int63n(int64(length)))
	if slide == length {
		return window.TumblingSpec(length)
	}
	return window.SlidingSpec(length, slide)
}

// Aggregation generates a Figure-8 query: SELECT SUM(FIELD1) … GROUPBY KEY
// with one random predicate and a random window.
func (g *Queries) Aggregation() *core.Query {
	return &core.Query{
		Kind:       core.KindAggregation,
		Arity:      1,
		Predicates: []expr.Predicate{g.Predicate()},
		Window:     g.windowSpec(false),
		Agg:        sqlstream.AggSum,
		AggField:   0,
	}
}

// SessionAggregation generates a session-window variant.
func (g *Queries) SessionAggregation() *core.Query {
	gap := event.Time(g.cfg.WindowMin + g.rng.Int63n(g.cfg.WindowMax-g.cfg.WindowMin+1))
	return &core.Query{
		Kind:       core.KindAggregation,
		Arity:      1,
		Predicates: []expr.Predicate{g.Predicate()},
		Window:     window.SessionSpec(gap),
		Agg:        sqlstream.AggSum,
		AggField:   0,
	}
}

// Join generates a Figure-7 query: a binary windowed equi-join with one
// random predicate per stream.
func (g *Queries) Join() *core.Query {
	return &core.Query{
		Kind:       core.KindJoin,
		Arity:      2,
		Predicates: []expr.Predicate{g.Predicate(), g.Predicate()},
		Window:     g.windowSpec(false),
		AggField:   -1,
	}
}

// Complex generates a §4.7 query: a selection, an n-ary windowed join with
// 2 ≤ n ≤ min(5, streams), and a windowed aggregation, pipelined.
func (g *Queries) Complex() *core.Query {
	maxArity := g.cfg.Streams
	if maxArity > 5 {
		maxArity = 5
	}
	if maxArity < 2 {
		maxArity = 2
	}
	arity := 2 + g.rng.Intn(maxArity-1)
	preds := make([]expr.Predicate, arity)
	for i := range preds {
		preds[i] = g.Predicate()
	}
	return &core.Query{
		Kind:       core.KindComplex,
		Arity:      arity,
		Predicates: preds,
		Window:     g.windowSpec(true),
		AggWindow:  g.windowSpec(true),
		Agg:        sqlstream.AggSum,
		AggField:   0,
	}
}

// Mixed draws uniformly between Join and Aggregation queries.
func (g *Queries) Mixed() *core.Query {
	if g.cfg.Streams >= 2 && g.rng.Intn(2) == 0 {
		return g.Join()
	}
	return g.Aggregation()
}
