package gen

import (
	"testing"

	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/window"
)

func TestDataRoundRobinKeys(t *testing.T) {
	d := NewData(DataConfig{Keys: 5, FieldMax: 100}, 1)
	for i := 0; i < 25; i++ {
		tu := d.Next(event.Time(i))
		if tu.Key != int64(i%5) {
			t.Fatalf("tuple %d key = %d, want %d", i, tu.Key, i%5)
		}
		if tu.Time != event.Time(i) {
			t.Fatalf("tuple time wrong")
		}
		for f, v := range tu.Fields {
			if v < 0 || v >= 100 {
				t.Fatalf("field %d = %d out of range", f, v)
			}
		}
	}
}

func TestDataDeterministic(t *testing.T) {
	a := NewData(DefaultDataConfig(), 42)
	b := NewData(DefaultDataConfig(), 42)
	for i := 0; i < 100; i++ {
		ta, tb := a.Next(event.Time(i)), b.Next(event.Time(i))
		if ta.Key != tb.Key || ta.Fields != tb.Fields || ta.Time != tb.Time {
			t.Fatal("same seed must produce identical tuples")
		}
	}
	c := NewData(DefaultDataConfig(), 43)
	diff := false
	for i := 0; i < 100; i++ {
		if a.Next(0).Fields != c.Next(0).Fields {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestPredicateSelectivityFloor(t *testing.T) {
	g := NewQueries(QueryConfig{FieldMax: 1000, WindowMax: 10, WindowMin: 2, Streams: 2, MinSelectivity: 0.3}, 7)
	for i := 0; i < 200; i++ {
		p := g.Predicate()
		if s := p.Selectivity(1000); s < 0.3 {
			t.Fatalf("predicate %v selectivity %.3f below floor", p, s)
		}
	}
}

func TestGeneratedQueriesValidate(t *testing.T) {
	g := NewQueries(DefaultQueryConfig(5), 11)
	for i := 0; i < 300; i++ {
		for _, q := range []*core.Query{g.Aggregation(), g.Join(), g.Complex(), g.SessionAggregation(), g.Mixed()} {
			if err := q.Validate(5); err != nil {
				t.Fatalf("generated query invalid: %v (%+v)", err, q)
			}
		}
	}
}

func TestComplexArityBounds(t *testing.T) {
	g := NewQueries(DefaultQueryConfig(5), 3)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		q := g.Complex()
		if q.Arity < 2 || q.Arity > 5 {
			t.Fatalf("complex arity %d out of bounds", q.Arity)
		}
		if q.Window.Kind != window.Tumbling || q.AggWindow.Kind != window.Tumbling {
			t.Fatal("complex queries must use tumbling windows")
		}
		seen[q.Arity] = true
	}
	for a := 2; a <= 5; a++ {
		if !seen[a] {
			t.Errorf("arity %d never generated", a)
		}
	}
}

func TestWindowBounds(t *testing.T) {
	cfg := DefaultQueryConfig(2)
	g := NewQueries(cfg, 5)
	for i := 0; i < 300; i++ {
		q := g.Aggregation()
		if int64(q.Window.Length) < cfg.WindowMin || int64(q.Window.Length) > cfg.WindowMax {
			t.Fatalf("window length %v outside [%d,%d]", q.Window.Length, cfg.WindowMin, cfg.WindowMax)
		}
		if q.Window.Kind == window.Sliding && (q.Window.Slide <= 0 || q.Window.Slide > q.Window.Length) {
			t.Fatalf("bad slide %v", q.Window.Slide)
		}
	}
}

func TestQueriesDeterministic(t *testing.T) {
	a := NewQueries(DefaultQueryConfig(3), 9)
	b := NewQueries(DefaultQueryConfig(3), 9)
	for i := 0; i < 50; i++ {
		qa, qb := a.Mixed(), b.Mixed()
		if qa.Kind != qb.Kind || qa.Window != qb.Window || len(qa.Predicates) != len(qb.Predicates) {
			t.Fatal("same seed must generate identical queries")
		}
	}
}
