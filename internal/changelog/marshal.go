package changelog

import (
	"encoding/binary"
	"fmt"

	"astream/internal/bitset"
	"astream/internal/event"
)

// This file implements binary snapshots of the changelog data model for
// checkpoint recovery (paper §3.3): a recovered operator must resume with
// the exact slot table, changelog-set table, and sequence counters it held
// at the barrier, or replayed changelogs would hit the runtime's gap check.
//
// The format mirrors internal/checkpoint's log encoding: little-endian
// fixed-width integers, length-prefixed sequences, no framing. Snapshots
// are written and read by the same build, so no cross-version migration is
// attempted; a leading version byte still guards accidental misuse.

const snapshotVersion = 1

func appendU8(b []byte, v uint8) []byte { return append(b, v) }

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendBits(b []byte, bits bitset.Bits) []byte {
	words := bits.Words()
	b = appendU32(b, uint32(len(words)))
	for _, w := range words {
		b = appendU64(b, w)
	}
	return b
}

// snapReader decodes the snapshot format, accumulating the first error so
// call sites stay linear (same idiom as checkpoint.byteReader).
type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("changelog: snapshot truncated reading %s", what)
	}
}

func (r *snapReader) u8(what string) uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail(what)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *snapReader) u32(what string) uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *snapReader) u64(what string) uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *snapReader) i64(what string) int64 { return int64(r.u64(what)) }

func (r *snapReader) bits(what string) bitset.Bits {
	n := r.u32(what)
	if r.err != nil || n > uint32(len(r.b)/8) {
		r.fail(what)
		return bitset.Bits{}
	}
	if n == 0 {
		return bitset.Bits{}
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = r.u64(what)
	}
	return bitset.FromWords(words)
}

// AppendChangelog serializes one changelog onto b.
func AppendChangelog(b []byte, cl *Changelog) []byte {
	b = appendU64(b, cl.Seq)
	b = appendI64(b, int64(cl.Time))
	b = appendU32(b, uint32(cl.Slots))
	b = appendU32(b, uint32(len(cl.Created)))
	for _, a := range cl.Created {
		b = appendI64(b, int64(a.Query))
		b = appendU32(b, uint32(a.Slot))
	}
	b = appendU32(b, uint32(len(cl.Deleted)))
	for _, a := range cl.Deleted {
		b = appendI64(b, int64(a.Query))
		b = appendU32(b, uint32(a.Slot))
	}
	b = appendBits(b, cl.Set)
	b = appendBits(b, cl.Active)
	return b
}

func readChangelog(r *snapReader) *Changelog {
	cl := &Changelog{
		Seq:   r.u64("changelog seq"),
		Time:  event.Time(r.i64("changelog time")),
		Slots: int(r.u32("changelog slots")),
	}
	nc := r.u32("created count")
	if r.err != nil || nc > uint32(len(r.b)) {
		r.fail("created count")
		return cl
	}
	for i := uint32(0); i < nc; i++ {
		cl.Created = append(cl.Created, Assignment{
			Query: int(r.i64("created query")),
			Slot:  int(r.u32("created slot")),
		})
	}
	nd := r.u32("deleted count")
	if r.err != nil || nd > uint32(len(r.b)) {
		r.fail("deleted count")
		return cl
	}
	for i := uint32(0); i < nd; i++ {
		cl.Deleted = append(cl.Deleted, Assignment{
			Query: int(r.i64("deleted query")),
			Slot:  int(r.u32("deleted slot")),
		})
	}
	cl.Set = r.bits("changelog set")
	cl.Active = r.bits("changelog active")
	return cl
}

// UnmarshalChangelog decodes one changelog produced by AppendChangelog and
// returns the remaining bytes.
func UnmarshalChangelog(b []byte) (*Changelog, []byte, error) {
	r := &snapReader{b: b}
	cl := readChangelog(r)
	if r.err != nil {
		return nil, nil, r.err
	}
	return cl, r.b, nil
}

// Snapshot serializes the table. Only the root row and the retained
// changelogs are written: the remaining rows are a pure function of those
// (Equation 1's recurrence), so TableFromSnapshot rebuilds them with Add,
// which also re-verifies seq continuity.
func (t *Table) Snapshot() []byte {
	b := appendU8(nil, snapshotVersion)
	b = appendU64(b, t.base)
	b = appendU32(b, uint32(t.slots[0]))
	b = appendU32(b, uint32(len(t.logs)))
	for _, cl := range t.logs {
		b = AppendChangelog(b, cl)
	}
	return b
}

// TableFromSnapshot reconstructs a table from Snapshot output.
func TableFromSnapshot(b []byte) (*Table, error) {
	r := &snapReader{b: b}
	if v := r.u8("table version"); r.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("changelog: table snapshot version %d, want %d", v, snapshotVersion)
	}
	base := r.u64("table base")
	rootSlots := int(r.u32("table root slots"))
	n := r.u32("table log count")
	if r.err != nil || n > uint32(len(r.b)) {
		r.fail("table log count")
		return nil, r.err
	}
	t := &Table{base: base}
	t.rows = append(t.rows, []bitset.Bits{bitset.AllUpTo(rootSlots)})
	t.slots = append(t.slots, rootSlots)
	for i := uint32(0); i < n; i++ {
		cl := readChangelog(r)
		if r.err != nil {
			return nil, r.err
		}
		if err := t.Add(cl); err != nil {
			return nil, err
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("changelog: table snapshot has %d trailing bytes (version skew?)", len(r.b))
	}
	return t, nil
}

// Table delta modes. A delta is normally incremental — the changelogs the
// receiver has not seen plus the sender's new base — but falls back to a
// full snapshot when compaction has advanced the sender's base past the
// receiver's latest epoch (the incremental suffix alone could no longer
// reproduce the retained window).
const (
	tableDeltaFull        = 0
	tableDeltaIncremental = 1
)

// AppendDelta serializes the table's change since a previous snapshot whose
// Latest() was sinceLatest. Applying the result with ApplyDelta to a table
// restored at exactly that epoch reproduces this table bit-for-bit.
func (t *Table) AppendDelta(b []byte, sinceLatest uint64) []byte {
	if sinceLatest < t.base || sinceLatest > t.Latest() {
		b = appendU8(b, tableDeltaFull)
		return append(b, t.Snapshot()...)
	}
	b = appendU8(b, tableDeltaIncremental)
	b = appendU64(b, sinceLatest)
	b = appendU64(b, t.base)
	b = appendU32(b, uint32(t.Latest()-sinceLatest))
	for _, cl := range t.logs {
		if cl.Seq > sinceLatest {
			b = AppendChangelog(b, cl)
		}
	}
	return b
}

// ApplyDelta advances the table by one AppendDelta blob: new changelogs are
// appended through Add (re-verifying seq continuity) and the sender's
// compaction point is replayed. The table must be at exactly the epoch the
// delta was encoded against; chains therefore apply strictly in order.
func (t *Table) ApplyDelta(b []byte) error {
	r := &snapReader{b: b}
	switch mode := r.u8("table delta mode"); {
	case r.err != nil:
		return r.err
	case mode == tableDeltaFull:
		nt, err := TableFromSnapshot(r.b)
		if err != nil {
			return err
		}
		*t = *nt
		return nil
	case mode == tableDeltaIncremental:
		since := r.u64("table delta since")
		newBase := r.u64("table delta base")
		n := r.u32("table delta log count")
		if r.err == nil && t.Latest() != since {
			return fmt.Errorf("changelog: table delta encoded against epoch %d, table is at %d (chain applied out of order?)", since, t.Latest())
		}
		if r.err != nil || n > uint32(len(r.b)) {
			r.fail("table delta log count")
			return r.err
		}
		for i := uint32(0); i < n; i++ {
			cl := readChangelog(r)
			if r.err != nil {
				return r.err
			}
			if err := t.Add(cl); err != nil {
				return err
			}
		}
		if r.err != nil {
			return r.err
		}
		if len(r.b) != 0 {
			return fmt.Errorf("changelog: table delta has %d trailing bytes (version skew?)", len(r.b))
		}
		t.Compact(newBase)
		return nil
	default:
		return fmt.Errorf("changelog: unknown table delta mode %d", mode)
	}
}

// Snapshot serializes the registry: mode, counters, the full slot table,
// and the free-slot stack. The query→slot index is rebuilt on restore.
func (r *Registry) Snapshot() []byte {
	b := appendU8(nil, snapshotVersion)
	b = appendU8(b, uint8(r.mode))
	b = appendU64(b, r.seq)
	b = appendI64(b, int64(r.lastAt))
	started := uint8(0)
	if r.started {
		started = 1
	}
	b = appendU8(b, started)
	b = appendU32(b, uint32(len(r.slots)))
	for _, q := range r.slots {
		b = appendI64(b, int64(q))
	}
	b = appendU32(b, uint32(len(r.free)))
	for _, s := range r.free {
		b = appendU32(b, uint32(s))
	}
	return b
}

// RegistryFromSnapshot reconstructs a registry from Snapshot output.
func RegistryFromSnapshot(b []byte) (*Registry, error) {
	rd := &snapReader{b: b}
	if v := rd.u8("registry version"); rd.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("changelog: registry snapshot version %d, want %d", v, snapshotVersion)
	}
	reg := &Registry{
		mode:   Mode(rd.u8("registry mode")),
		seq:    rd.u64("registry seq"),
		lastAt: event.Time(rd.i64("registry lastAt")),
		slotOf: make(map[int]int),
	}
	reg.started = rd.u8("registry started") == 1
	ns := rd.u32("registry slot count")
	if rd.err != nil || ns > uint32(len(rd.b)) {
		rd.fail("registry slot count")
		return nil, rd.err
	}
	for i := uint32(0); i < ns; i++ {
		q := int(rd.i64("registry slot"))
		reg.slots = append(reg.slots, q)
		if q != NoQuery {
			reg.slotOf[q] = int(i)
		}
	}
	nf := rd.u32("registry free count")
	if rd.err != nil || nf > uint32(len(rd.b)) {
		rd.fail("registry free count")
		return nil, rd.err
	}
	for i := uint32(0); i < nf; i++ {
		reg.free = append(reg.free, int(rd.u32("registry free slot")))
	}
	if rd.err != nil {
		return nil, rd.err
	}
	if len(rd.b) != 0 {
		return nil, fmt.Errorf("changelog: registry snapshot has %d trailing bytes (version skew?)", len(rd.b))
	}
	return reg, nil
}
