package changelog

import (
	"bytes"
	"strings"
	"testing"
)

// These tests pin Table.AppendDelta/ApplyDelta: applying a delta to a table
// restored at the delta's base epoch reproduces the sender's table
// bit-for-bit (including its compaction point), stale chains are rejected,
// and compaction past the receiver's epoch falls back to a full snapshot.

// deltaTable builds a table through n registry epochs.
func deltaTable(t *testing.T, n int) (*Table, *Registry) {
	t.Helper()
	r := NewRegistry(SlotReuse)
	tab := NewTable()
	for i := 0; i < n; i++ {
		cl := mustApply(t, r, 0, []int{i + 1}, nil)
		if err := tab.Add(cl); err != nil {
			t.Fatal(err)
		}
	}
	return tab, r
}

func TestTableDeltaRoundTrip(t *testing.T) {
	sender, reg := deltaTable(t, 4)
	receiver, err := TableFromSnapshot(sender.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	since := sender.Latest()

	// Advance the sender: two more epochs plus a compaction.
	for i := 0; i < 2; i++ {
		cl := mustApply(t, reg, 0, []int{10 + i}, nil)
		if err := sender.Add(cl); err != nil {
			t.Fatal(err)
		}
	}
	sender.Compact(3)

	delta := sender.AppendDelta(nil, since)
	if delta[0] != tableDeltaIncremental {
		t.Fatalf("delta mode %d, want incremental", delta[0])
	}
	if err := receiver.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(receiver.Snapshot(), sender.Snapshot()) {
		t.Fatal("receiver diverged from sender after delta")
	}
	if receiver.Base() != sender.Base() || receiver.Latest() != sender.Latest() {
		t.Fatalf("receiver [%d,%d], sender [%d,%d]",
			receiver.Base(), receiver.Latest(), sender.Base(), sender.Latest())
	}
}

func TestTableDeltaFullFallbackAfterCompaction(t *testing.T) {
	sender, reg := deltaTable(t, 3)
	receiver, err := TableFromSnapshot(sender.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	since := sender.Latest()

	for i := 0; i < 3; i++ {
		cl := mustApply(t, reg, 0, []int{20 + i}, nil)
		if err := sender.Add(cl); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction advances past the receiver's epoch: the incremental suffix
	// can no longer reproduce the retained window, so the delta must be full.
	sender.Compact(since + 1)

	delta := sender.AppendDelta(nil, since)
	if delta[0] != tableDeltaFull {
		t.Fatalf("delta mode %d, want full fallback", delta[0])
	}
	if err := receiver.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(receiver.Snapshot(), sender.Snapshot()) {
		t.Fatal("receiver diverged from sender after full-fallback delta")
	}
}

func TestTableDeltaRejectsOutOfOrderAndCorrupt(t *testing.T) {
	sender, reg := deltaTable(t, 2)
	stale := NewTable() // still at epoch 0
	since := sender.Latest()
	baseSnap := sender.Snapshot() // the state the delta is encoded against
	cl := mustApply(t, reg, 0, []int{30}, nil)
	if err := sender.Add(cl); err != nil {
		t.Fatal(err)
	}
	delta := sender.AppendDelta(nil, since)

	if err := stale.ApplyDelta(delta); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("stale table accepted a delta: %v", err)
	}
	current, err := TableFromSnapshot(sender.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := current.ApplyDelta(delta); err == nil {
		t.Fatal("already-advanced table accepted a replayed delta")
	}
	fresh := func(t *testing.T) *Table {
		t.Helper()
		tab, err := TableFromSnapshot(baseSnap)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	if err := fresh(t).ApplyDelta(delta); err != nil {
		t.Fatalf("clean delta rejected: %v", err)
	}
	if err := fresh(t).ApplyDelta(append(append([]byte(nil), delta...), 0xEE)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if err := fresh(t).ApplyDelta([]byte{99}); err == nil || !strings.Contains(err.Error(), "unknown table delta mode") {
		t.Fatalf("unknown mode accepted: %v", err)
	}
	if err := fresh(t).ApplyDelta(nil); err == nil {
		t.Fatal("empty delta accepted")
	}
}
