package changelog

import (
	"fmt"

	"astream/internal/bitset"
)

// Table implements the dynamic-programming changelog-set table of Equation 1
// (paper §2.1.2):
//
//	CL[i][j] = 1                        if i == j
//	CL[i][j] = CL[i-1][j] & CL[i]       if i > j
//
// Row i is built from row i-1 with one AND per retained column, so relating
// slice i to any earlier slice j is O(1) lookups instead of an O(i-j)
// AND-chain. Shared operators consult Rel(i, j) before joining or merging
// state across time slots: a zero result means the slots share no query and
// the work is skipped entirely.
//
// Epoch 0 is the implicit empty workload before the first changelog; epoch k
// (k ≥ 1) is the state after changelog with Seq == k. Rows older than the
// oldest live slice are released with Compact.
type Table struct {
	base uint64       // epoch of rows[0]
	logs []*Changelog // logs[i] transitioned epoch base+i -> base+i+1
	//lint:ephemeral derived Equation-1 recurrence over logs, rebuilt by TableFromSnapshot via Add
	rows [][]bitset.Bits // rows[i][j] = Rel(base+i+? ...) see index()
	// rows[i] corresponds to epoch e_i = base+i; rows[i][j] = Rel(e_i, base+j)
	// for j <= i. rows[i][i] is the all-unchanged set of epoch e_i.
	slots []int // slots[i] = slot-count at epoch base+i
}

// NewTable creates a table rooted at epoch 0 (empty workload, zero slots).
func NewTable() *Table {
	t := &Table{}
	t.rows = append(t.rows, []bitset.Bits{bitset.AllUpTo(0)})
	t.slots = append(t.slots, 0)
	return t
}

// Add appends a changelog, creating the row for its epoch. Changelogs must
// arrive in Seq order with no gaps.
func (t *Table) Add(cl *Changelog) error {
	expect := t.base + uint64(len(t.rows))
	if cl.Seq != expect {
		return fmt.Errorf("changelog: table expected seq %d, got %d", expect, cl.Seq)
	}
	prev := t.rows[len(t.rows)-1]
	row := make([]bitset.Bits, len(prev)+1)
	for j := range prev {
		row[j] = prev[j].And(cl.Set)
	}
	row[len(prev)] = bitset.AllUpTo(cl.Slots)
	t.rows = append(t.rows, row)
	t.logs = append(t.logs, cl)
	t.slots = append(t.slots, cl.Slots)
	return nil
}

// Latest returns the most recent epoch number.
func (t *Table) Latest() uint64 { return t.base + uint64(len(t.rows)) - 1 }

// Base returns the oldest retained epoch.
func (t *Table) Base() uint64 { return t.base }

// Rel returns the changelog-set of epoch i with respect to epoch j
// (Equation 1). Rel is symmetric: Rel(i,j) == Rel(j,i). Both epochs must be
// retained (≥ Base) and ≤ Latest.
func (t *Table) Rel(i, j uint64) (bitset.Bits, error) {
	if j > i {
		i, j = j, i
	}
	if j < t.base || i > t.Latest() {
		//lint:ignore hotalloc error path: boxing happens only when an epoch is outside the retained range, which callers treat as fatal
		return bitset.Bits{}, fmt.Errorf("changelog: Rel(%d,%d) outside retained [%d,%d]", i, j, t.base, t.Latest())
	}
	return t.rows[i-t.base][j-t.base], nil
}

// SlotsAt returns the slot count at an epoch.
func (t *Table) SlotsAt(e uint64) (int, error) {
	if e < t.base || e > t.Latest() {
		return 0, fmt.Errorf("changelog: epoch %d outside retained [%d,%d]", e, t.base, t.Latest())
	}
	return t.slots[e-t.base], nil
}

// Log returns the changelog that produced epoch e (Base < e ≤ Latest).
func (t *Table) Log(e uint64) (*Changelog, error) {
	if e <= t.base || e > t.Latest() {
		return nil, fmt.Errorf("changelog: log for epoch %d not retained", e)
	}
	return t.logs[e-t.base-1], nil
}

// Compact drops rows and columns for epochs older than keepFrom. Rel calls
// touching dropped epochs fail afterwards. Compact(t.Latest()) keeps only the
// newest epoch.
func (t *Table) Compact(keepFrom uint64) {
	if keepFrom <= t.base {
		return
	}
	if keepFrom > t.Latest() {
		keepFrom = t.Latest()
	}
	drop := int(keepFrom - t.base)
	t.rows = t.rows[drop:]
	for i := range t.rows {
		t.rows[i] = t.rows[i][drop:]
	}
	t.logs = t.logs[drop:]
	t.slots = t.slots[drop:]
	t.base = keepFrom
}

// RetainedRows reports how many epochs the table currently holds (for tests
// and memory accounting).
func (t *Table) RetainedRows() int { return len(t.rows) }

// RelChain computes Rel(i,j) by the naive AND-chain over individual
// changelog-sets, without the DP table. It exists as the reference
// implementation for property tests and the Equation-1 ablation benchmark.
func RelChain(logs []*Changelog, i, j uint64) bitset.Bits {
	if j > i {
		i, j = j, i
	}
	// Epoch k (k≥1) is produced by logs[k-1]. Rel(i,j) = AND of Set for
	// epochs j+1..i; Rel(i,i) = all-unchanged at epoch i.
	var slotsAt = func(e uint64) int {
		if e == 0 {
			return 0
		}
		return logs[e-1].Slots
	}
	out := bitset.AllUpTo(slotsAt(i))
	for k := j + 1; k <= i; k++ {
		out.AndInPlace(logs[k-1].Set)
	}
	return out
}
