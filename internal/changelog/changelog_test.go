package changelog

import (
	"math/rand"
	"strings"
	"testing"

	"astream/internal/bitset"
	"astream/internal/event"
)

func mustApply(t *testing.T, r *Registry, at event.Time, create, del []int) *Changelog {
	t.Helper()
	cl, err := r.Apply(at, create, del)
	if err != nil {
		t.Fatalf("Apply(%v, %v, %v): %v", at, create, del, err)
	}
	return cl
}

func bitsOf(s string) bitset.Bits {
	b, ok := bitset.Parse(s)
	if !ok {
		panic("bad bits literal " + s)
	}
	return b
}

// TestFigure3 replays the paper's Figure 3: at T1 queries Q1,Q2 are created;
// at T2, Q2 is deleted and Q3 created. AStream reuses Q2's slot for Q3 and
// the changelog-set is 10.
func TestFigure3SlotReuse(t *testing.T) {
	r := NewRegistry(SlotReuse)
	cl1 := mustApply(t, r, 1, []int{1, 2}, nil)
	if cl1.Slots != 2 {
		t.Fatalf("slots after T1 = %d, want 2", cl1.Slots)
	}
	if s, _ := r.SlotOf(1); s != 0 {
		t.Fatalf("Q1 slot = %d, want 0", s)
	}
	if s, _ := r.SlotOf(2); s != 1 {
		t.Fatalf("Q2 slot = %d, want 1", s)
	}
	// Both slots newly occupied: changelog-set relative to empty epoch is 00.
	if !cl1.Set.IsEmpty() {
		t.Fatalf("T1 changelog-set = %s, want empty", cl1.Set)
	}

	cl2 := mustApply(t, r, 2, []int{3}, []int{2})
	if s, _ := r.SlotOf(3); s != 1 {
		t.Fatalf("Q3 slot = %d, want 1 (reuse of Q2's slot)", s)
	}
	if !cl2.Set.Equal(bitsOf("10")) {
		t.Fatalf("T2 changelog-set = %s, want 10", cl2.Set)
	}
	if cl2.Slots != 2 {
		t.Fatalf("slots after T2 = %d, want 2 (compact)", cl2.Slots)
	}
}

func TestFigure3AppendOnly(t *testing.T) {
	r := NewRegistry(AppendOnly)
	mustApply(t, r, 1, []int{1, 2}, nil)
	cl2 := mustApply(t, r, 2, []int{3}, []int{2})
	if s, _ := r.SlotOf(3); s != 2 {
		t.Fatalf("append-only Q3 slot = %d, want 2", s)
	}
	if cl2.Slots != 3 {
		t.Fatalf("append-only slots = %d, want 3 (sparse)", cl2.Slots)
	}
	// Slot 0 unchanged, slot 1 deleted, slot 2 new: 100.
	if !cl2.Set.Equal(bitsOf("100")) {
		t.Fatalf("append-only changelog-set = %s, want 100", cl2.Set)
	}
}

// TestFigure4Changelogs replays Figure 4a/4b: the sequence of workload
// changes and the expected changelog-sets per time slot.
func TestFigure4Changelogs(t *testing.T) {
	r := NewRegistry(SlotReuse)
	// T0: Q1+                                  slots: [Q1]
	cl0 := mustApply(t, r, 0, []int{1}, nil)
	// T1: Q2+, Q3+                             slots: [Q1 Q2 Q3]        set 100
	cl1 := mustApply(t, r, 1, []int{2, 3}, nil)
	// T2: Q4+, Q2-                             slots: [Q1 Q4 Q3]        set 101
	cl2 := mustApply(t, r, 2, []int{4}, []int{2})
	// T3: Q5+, Q1-                             slots: [Q5 Q4 Q3]        set 011
	cl3 := mustApply(t, r, 3, []int{5}, []int{1})
	// T4: Q6+, Q3-                             slots: [Q5 Q4 Q6 ...]    set 1100
	// Figure 4b shows four positions at T4 (1100): Q6 takes Q3's slot and
	// the fourth position appears at T5; the paper's panel (b) widths track
	// the maximum slot count reached. Here Q6 reuses slot 2: set = 110.
	cl4 := mustApply(t, r, 4, []int{6}, []int{3})
	// T5: Q7+, Q3- already gone; paper: Q6,Q7 created, Q3 deleted at T5 in
	// one batch. Our T4/T5 split mirrors panel (a)'s per-slot markers; the
	// final state matches: Q5,Q4,Q6,Q7 running.
	cl5 := mustApply(t, r, 5, []int{7}, nil)

	if !cl1.Set.Equal(bitsOf("100")) {
		t.Errorf("T1 set = %s, want 100", cl1.Set)
	}
	if !cl2.Set.Equal(bitsOf("101")) {
		t.Errorf("T2 set = %s, want 101", cl2.Set)
	}
	if !cl3.Set.Equal(bitsOf("011")) {
		t.Errorf("T3 set = %s, want 011", cl3.Set)
	}
	if !cl4.Set.Equal(bitsOf("110")) {
		t.Errorf("T4 set = %s, want 110", cl4.Set)
	}
	if !cl5.Set.Equal(bitsOf("111")) {
		t.Errorf("T5 set = %s, want 111 (pure addition in new slot)", cl5.Set)
	}
	_ = cl0

	want := []int{5, 4, 6, 7}
	got := r.ActiveQueries()
	if len(got) != len(want) {
		t.Fatalf("active queries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("active queries = %v, want %v", got, want)
		}
	}
}

func TestApplyErrors(t *testing.T) {
	r := NewRegistry(SlotReuse)
	mustApply(t, r, 10, []int{1}, nil)
	if _, err := r.Apply(5, []int{2}, nil); err == nil {
		t.Error("time regression must fail")
	}
	if _, err := r.Apply(11, []int{1}, nil); err == nil {
		t.Error("duplicate create must fail")
	}
	if _, err := r.Apply(11, nil, []int{99}); err == nil {
		t.Error("delete of unknown query must fail")
	}
	if _, err := r.Apply(11, []int{2, 2}, nil); err == nil {
		t.Error("double create in one batch must fail")
	}
	if _, err := r.Apply(11, []int{2}, []int{2}); err == nil {
		t.Error("create+delete of same query in one batch must fail")
	}
	if _, err := r.Apply(11, nil, []int{1, 1}); err == nil {
		t.Error("double delete in one batch must fail")
	}
	// Registry must be unchanged after failures.
	if r.ActiveCount() != 1 || r.NumSlots() != 1 {
		t.Errorf("registry mutated by failed Apply: active=%d slots=%d", r.ActiveCount(), r.NumSlots())
	}
	// Equal timestamps are allowed.
	if _, err := r.Apply(10, []int{2}, nil); err != nil {
		t.Errorf("equal timestamp should be allowed: %v", err)
	}
}

func TestRegistryLookups(t *testing.T) {
	r := NewRegistry(SlotReuse)
	mustApply(t, r, 1, []int{7, 8, 9}, nil)
	mustApply(t, r, 2, nil, []int{8})
	if q := r.QueryAt(1); q != NoQuery {
		t.Errorf("QueryAt(freed slot) = %d, want NoQuery", q)
	}
	if q := r.QueryAt(0); q != 7 {
		t.Errorf("QueryAt(0) = %d, want 7", q)
	}
	if q := r.QueryAt(99); q != NoQuery {
		t.Errorf("QueryAt(out of range) = %d, want NoQuery", q)
	}
	act := r.ActiveSlots()
	if !act.Equal(bitset.FromIndexes(0, 2)) {
		t.Errorf("ActiveSlots = %s, want 101", act)
	}
	if r.LastSeq() != 2 {
		t.Errorf("LastSeq = %d, want 2", r.LastSeq())
	}
}

// TestTableEquation1 verifies the DP table against the paper's Figure 4c
// examples and the naive AND-chain.
func TestTableEquation1(t *testing.T) {
	r := NewRegistry(SlotReuse)
	tb := NewTable()
	var logs []*Changelog
	add := func(at event.Time, c, d []int) {
		cl := mustApply(t, r, at, c, d)
		logs = append(logs, cl)
		if err := tb.Add(cl); err != nil {
			t.Fatalf("table.Add: %v", err)
		}
	}
	add(0, []int{1}, nil)         // epoch 1
	add(1, []int{2, 3}, nil)      // epoch 2, set 100
	add(2, []int{4}, []int{2})    // epoch 3, set 101
	add(3, []int{5}, []int{1})    // epoch 4, set 011
	add(4, []int{6, 7}, []int{3}) // epoch 5: Q6 reuses slot 2, Q7 new slot 3

	// Figure 4c column T1 (epoch 2 here): Rel(3,2)=101; Rel(4,2)=011&101=001;
	// Rel(5,2)=001&set5. set5: slot2 replaced, slot3 new -> 1100... our
	// epoch5 set: slots 0,1 unchanged, slot 2 replaced, slot 3 new => 1100.
	rel32, _ := tb.Rel(3, 2)
	if !rel32.Equal(bitsOf("101")) {
		t.Errorf("Rel(3,2) = %s, want 101", rel32)
	}
	rel42, _ := tb.Rel(4, 2)
	if !rel42.Equal(bitsOf("001")) {
		t.Errorf("Rel(4,2) = %s, want 001", rel42)
	}
	rel52, _ := tb.Rel(5, 2)
	if !rel52.IsEmpty() {
		t.Errorf("Rel(5,2) = %s, want 0 (no shared queries)", rel52)
	}
	// Same epoch: all-unchanged.
	rel55, _ := tb.Rel(5, 5)
	if !rel55.Equal(bitset.AllUpTo(4)) {
		t.Errorf("Rel(5,5) = %s, want 1111", rel55)
	}
	// Symmetry.
	relA, _ := tb.Rel(2, 4)
	relB, _ := tb.Rel(4, 2)
	if !relA.Equal(relB) {
		t.Errorf("Rel not symmetric: %s vs %s", relA, relB)
	}
	// Against the reference chain for all pairs.
	for i := uint64(0); i <= tb.Latest(); i++ {
		for j := uint64(0); j <= i; j++ {
			got, err := tb.Rel(i, j)
			if err != nil {
				t.Fatalf("Rel(%d,%d): %v", i, j, err)
			}
			want := RelChain(logs, i, j)
			if !got.Equal(want) {
				t.Errorf("Rel(%d,%d) = %s, chain says %s", i, j, got, want)
			}
		}
	}
}

func TestTableAddSequenceEnforced(t *testing.T) {
	tb := NewTable()
	if err := tb.Add(&Changelog{Seq: 2}); err == nil {
		t.Error("gap in seq must fail")
	}
	if err := tb.Add(&Changelog{Seq: 1, Slots: 1, Set: bitset.Bits{}}); err != nil {
		t.Errorf("seq 1 should be accepted: %v", err)
	}
	if tb.Latest() != 1 {
		t.Errorf("Latest = %d, want 1", tb.Latest())
	}
}

func TestTableCompact(t *testing.T) {
	r := NewRegistry(SlotReuse)
	tb := NewTable()
	var logs []*Changelog
	for i := 0; i < 10; i++ {
		cl := mustApply(t, r, event.Time(i), []int{i + 1}, nil)
		logs = append(logs, cl)
		if err := tb.Add(cl); err != nil {
			t.Fatal(err)
		}
	}
	tb.Compact(5)
	if tb.Base() != 5 {
		t.Fatalf("Base = %d, want 5", tb.Base())
	}
	if tb.RetainedRows() != 6 {
		t.Fatalf("RetainedRows = %d, want 6", tb.RetainedRows())
	}
	if _, err := tb.Rel(7, 4); err == nil {
		t.Error("Rel touching dropped epoch must fail")
	}
	got, err := tb.Rel(9, 5)
	if err != nil {
		t.Fatalf("Rel(9,5): %v", err)
	}
	if want := RelChain(logs, 9, 5); !got.Equal(want) {
		t.Errorf("post-compact Rel(9,5) = %s, want %s", got, want)
	}
	// Compacting backwards is a no-op; compacting past Latest clamps.
	tb.Compact(2)
	if tb.Base() != 5 {
		t.Error("Compact backwards must be a no-op")
	}
	tb.Compact(99)
	if tb.Base() != tb.Latest() || tb.RetainedRows() != 1 {
		t.Errorf("Compact past latest should keep one row, base=%d latest=%d", tb.Base(), tb.Latest())
	}
	if _, err := tb.Log(tb.Latest()); err == nil {
		t.Error("Log for fully compacted epoch must fail (log dropped)")
	}
}

func TestTableLog(t *testing.T) {
	r := NewRegistry(SlotReuse)
	tb := NewTable()
	cl := mustApply(t, r, 0, []int{1}, nil)
	if err := tb.Add(cl); err != nil {
		t.Fatal(err)
	}
	got, err := tb.Log(1)
	if err != nil || got != cl {
		t.Fatalf("Log(1) = %v, %v; want the added changelog", got, err)
	}
	if _, err := tb.Log(0); err == nil {
		t.Error("Log(0) must fail: epoch 0 has no changelog")
	}
	if _, err := tb.Log(2); err == nil {
		t.Error("Log(latest+1) must fail")
	}
}

// TestRandomWorkloadDPvsChain drives a random create/delete workload and
// checks every Rel pair against the AND-chain reference, in both slot modes.
func TestRandomWorkloadDPvsChain(t *testing.T) {
	for _, mode := range []Mode{SlotReuse, AppendOnly} {
		rng := rand.New(rand.NewSource(42))
		r := NewRegistry(mode)
		tb := NewTable()
		var logs []*Changelog
		next := 1
		var live []int
		for step := 0; step < 60; step++ {
			var create, del []int
			for i := 0; i < 1+rng.Intn(3); i++ {
				create = append(create, next)
				next++
			}
			if len(live) > 0 {
				for i := 0; i < rng.Intn(2); i++ {
					k := rng.Intn(len(live))
					del = append(del, live[k])
					live = append(live[:k], live[k+1:]...)
				}
			}
			live = append(live, create...)
			cl := mustApply(t, r, event.Time(step), create, del)
			logs = append(logs, cl)
			if err := tb.Add(cl); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(0); i <= tb.Latest(); i += 3 {
			for j := uint64(0); j <= i; j += 2 {
				got, err := tb.Rel(i, j)
				if err != nil {
					t.Fatal(err)
				}
				if want := RelChain(logs, i, j); !got.Equal(want) {
					t.Fatalf("mode %v: Rel(%d,%d) = %s, chain %s", mode, i, j, got, want)
				}
			}
		}
		// Slot-reuse keeps sets compact: slot count bounded by peak live
		// queries; append-only grows monotonically with total creations.
		if mode == SlotReuse && r.NumSlots() > 4*60 {
			t.Errorf("slot-reuse slots = %d, suspiciously sparse", r.NumSlots())
		}
		if mode == AppendOnly && r.NumSlots() != next-1 {
			t.Errorf("append-only slots = %d, want %d", r.NumSlots(), next-1)
		}
	}
}

// TestSlotReuseCompactness is the Figure 3b-vs-3c claim: under churn,
// slot-reuse keeps the bitset width near the live query count while
// append-only grows without bound.
func TestSlotReuseCompactness(t *testing.T) {
	reuse := NewRegistry(SlotReuse)
	appendOnly := NewRegistry(AppendOnly)
	id := 1
	for step := 0; step < 200; step++ {
		// Steady state: one in, one out, 10 live queries.
		var del []int
		if id > 10 {
			del = []int{id - 10}
		}
		if _, err := reuse.Apply(event.Time(step), []int{id}, del); err != nil {
			t.Fatal(err)
		}
		if _, err := appendOnly.Apply(event.Time(step), []int{id}, del); err != nil {
			t.Fatal(err)
		}
		id++
	}
	if reuse.NumSlots() > 11 {
		t.Errorf("slot-reuse width = %d, want ≤ 11", reuse.NumSlots())
	}
	if appendOnly.NumSlots() != 200 {
		t.Errorf("append-only width = %d, want 200", appendOnly.NumSlots())
	}
}

func TestModeString(t *testing.T) {
	if SlotReuse.String() != "slot-reuse" || AppendOnly.String() != "append-only" {
		t.Error("Mode.String mismatch")
	}
}

// TestSnapshotVersionSkew pins the trailing-bytes contract for the
// changelog types: a snapshot with bytes a newer encoder appended must be
// rejected, not half-parsed.
func TestSnapshotVersionSkew(t *testing.T) {
	reg := NewRegistry(SlotReuse)
	cl, err := reg.Apply(5, []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable()
	if err := tab.Add(cl); err != nil {
		t.Fatal(err)
	}

	regSnap := reg.Snapshot()
	if _, err := RegistryFromSnapshot(regSnap); err != nil {
		t.Fatalf("clean registry snapshot rejected: %v", err)
	}
	if _, err := RegistryFromSnapshot(append(regSnap, 0xEE)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("skewed registry snapshot not rejected loudly: %v", err)
	}

	tabSnap := tab.Snapshot()
	if _, err := TableFromSnapshot(tabSnap); err != nil {
		t.Fatalf("clean table snapshot rejected: %v", err)
	}
	if _, err := TableFromSnapshot(append(tabSnap, 0xEE)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("skewed table snapshot not rejected loudly: %v", err)
	}
}
