// Package changelog implements AStream's query changelog data model
// (paper §2.1.2): slot assignment for ad-hoc queries, changelog-sets, and
// the dynamic-programming table of Equation 1 that relates non-adjacent
// time slots.
//
// Every running query occupies a bit position (a "slot") in tuple query-sets.
// When the workload changes, a Changelog records which queries were created
// and deleted and carries a changelog-set: bit i set means slot i holds the
// same query before and after the change; bit i unset means the slot's query
// was deleted or replaced. Masking tuple query-sets with the changelog-set
// between two time slots removes stale query bits, which is what makes
// operations between tuples created at different times consistent.
package changelog

import (
	"fmt"

	"astream/internal/bitset"
	"astream/internal/event"
)

// Mode selects how slots are assigned to new queries.
type Mode uint8

const (
	// SlotReuse reuses slots of deleted queries (the AStream approach,
	// Figure 3c); query-sets stay compact.
	SlotReuse Mode = iota
	// AppendOnly always appends a fresh slot (the naive approach,
	// Figure 3b); kept for the ablation benchmark.
	AppendOnly
)

func (m Mode) String() string {
	if m == AppendOnly {
		return "append-only"
	}
	return "slot-reuse"
}

// NoQuery marks an unoccupied slot.
const NoQuery = -1

// Changelog is one batch of query creations and deletions applied at a
// definite event-time. Changelogs are woven into the data stream so that the
// workload history is deterministically replayable (paper §3.3).
type Changelog struct {
	// Seq numbers changelogs 1,2,3,… in application order. Seq 0 is the
	// implicit "empty workload" epoch before the first changelog.
	Seq uint64
	// Time is the event-time at which the change takes effect.
	Time event.Time
	// Created lists (query ID, slot) pairs for new queries.
	Created []Assignment
	// Deleted lists (query ID, slot) pairs for removed queries.
	Deleted []Assignment
	// Set is the changelog-set relative to the previous epoch: bit i set
	// iff slot i is occupied by the same query before and after (free
	// slots untouched on both sides also read as set; no tuple carries
	// their bits).
	Set bitset.Bits
	// Slots is the number of slot positions in use after the change.
	Slots int
	// Active is the set of occupied slots after the change.
	Active bitset.Bits
}

// Assignment binds a query ID to its slot.
type Assignment struct {
	Query int
	Slot  int
}

func (c *Changelog) String() string {
	return fmt.Sprintf("changelog{seq=%d t=%v +%d -%d set=%s}",
		c.Seq, c.Time, len(c.Created), len(c.Deleted), c.Set)
}

// Registry tracks the query↔slot mapping and produces changelogs.
// Registry is not safe for concurrent use; in the engine it is owned by the
// shared session and its changelogs are broadcast to operators, which keep
// their own copies of the active-query table.
type Registry struct {
	mode  Mode
	slots []int // slot -> query ID or NoQuery
	//lint:ephemeral derived inverse of the serialized slots table
	slotOf  map[int]int // query ID -> slot
	free    []int       // free slots, LIFO (only in SlotReuse mode)
	seq     uint64
	lastAt  event.Time
	started bool
}

// NewRegistry creates an empty registry.
func NewRegistry(mode Mode) *Registry {
	return &Registry{mode: mode, slotOf: make(map[int]int), lastAt: event.MinTime}
}

// Mode returns the slot assignment mode.
func (r *Registry) Mode() Mode { return r.mode }

// NumSlots returns the number of slot positions in use (occupied or free but
// previously used).
func (r *Registry) NumSlots() int { return len(r.slots) }

// ActiveCount returns the number of running queries.
func (r *Registry) ActiveCount() int { return len(r.slotOf) }

// SlotOf returns the slot of a running query.
func (r *Registry) SlotOf(query int) (int, bool) {
	s, ok := r.slotOf[query]
	return s, ok
}

// QueryAt returns the query occupying a slot, or NoQuery.
func (r *Registry) QueryAt(slot int) int {
	if slot < 0 || slot >= len(r.slots) {
		return NoQuery
	}
	return r.slots[slot]
}

// ActiveSlots returns the bitset of occupied slots.
func (r *Registry) ActiveSlots() bitset.Bits {
	var b bitset.Bits
	for s, q := range r.slots {
		if q != NoQuery {
			b.Set(s)
		}
	}
	return b
}

// ActiveQueries returns the IDs of all running queries in slot order.
func (r *Registry) ActiveQueries() []int {
	out := make([]int, 0, len(r.slotOf))
	for _, q := range r.slots {
		if q != NoQuery {
			out = append(out, q)
		}
	}
	return out
}

// Apply registers a batch of creations and deletions taking effect at the
// given event-time and returns the resulting changelog. Times must be
// non-decreasing across calls (event-time ordering is what makes replays
// deterministic). Deleting an unknown query or creating a duplicate is an
// error; on error the registry is unchanged.
func (r *Registry) Apply(at event.Time, create, del []int) (*Changelog, error) {
	if r.started && at < r.lastAt {
		return nil, fmt.Errorf("changelog: time %v before previous changelog at %v", at, r.lastAt)
	}
	seen := make(map[int]bool, len(create))
	for _, q := range create {
		if _, ok := r.slotOf[q]; ok {
			return nil, fmt.Errorf("changelog: query %d already running", q)
		}
		if seen[q] {
			return nil, fmt.Errorf("changelog: query %d created twice in one batch", q)
		}
		seen[q] = true
	}
	delSeen := make(map[int]bool, len(del))
	for _, q := range del {
		if _, ok := r.slotOf[q]; !ok {
			return nil, fmt.Errorf("changelog: query %d not running, cannot delete", q)
		}
		if delSeen[q] {
			return nil, fmt.Errorf("changelog: query %d deleted twice in one batch", q)
		}
		if seen[q] {
			return nil, fmt.Errorf("changelog: query %d both created and deleted", q)
		}
		delSeen[q] = true
	}

	cl := &Changelog{Seq: r.seq + 1, Time: at}
	var changed bitset.Bits

	for _, q := range del {
		s := r.slotOf[q]
		delete(r.slotOf, q)
		r.slots[s] = NoQuery
		if r.mode == SlotReuse {
			r.free = append(r.free, s)
		}
		changed.Set(s)
		cl.Deleted = append(cl.Deleted, Assignment{Query: q, Slot: s})
	}
	for _, q := range create {
		var s int
		if r.mode == SlotReuse && len(r.free) > 0 {
			s = r.free[len(r.free)-1]
			r.free = r.free[:len(r.free)-1]
		} else {
			s = len(r.slots)
			r.slots = append(r.slots, NoQuery)
		}
		r.slots[s] = q
		r.slotOf[q] = s
		changed.Set(s)
		cl.Created = append(cl.Created, Assignment{Query: q, Slot: s})
	}

	cl.Slots = len(r.slots)
	cl.Set = bitset.AllUpTo(cl.Slots).AndNot(changed)
	cl.Active = r.ActiveSlots()
	r.seq = cl.Seq
	r.lastAt = at
	r.started = true
	return cl, nil
}

// Seq returns the sequence number of the most recent changelog (0 before the
// first).
func (r *Registry) LastSeq() uint64 { return r.seq }
