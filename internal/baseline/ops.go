package baseline

import (
	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/spe"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// deployQuery builds and deploys the per-query topology:
//
//	src_0 → filter_0 ─┐
//	src_1 → filter_1 ─┴→ join_0 → … → join_{n-2} → [agg] → sink-side logic
//
// The terminal operator delivers core.Results to the query's sink and
// reports watermark progress for savepoint drains.
func (e *Engine) deployQuery(q *core.Query, sink core.Sink) (*queryJob, error) {
	topo := spe.NewTopology()
	topo.SetChannelCap(e.cfg.ChannelCap)
	topo.SetNowNanos(e.cfg.NowNanos)
	P := e.cfg.Parallelism
	wrap := newSinkWrapper(sink)

	srcs := make([]*spe.Node, q.Arity)
	filters := make([]*spe.Node, q.Arity)
	for i := 0; i < q.Arity; i++ {
		srcs[i] = topo.AddSource("src", 1)
		pred := q.Predicates[i]
		// A per-query predicate is stateless and key-preserving, so it
		// needs no shuffle of its own: declare it forward at the source's
		// parallelism and Deploy fuses it into the source — tuples failing
		// the predicate are dropped before the keyed exchange to the
		// stateful stages, not after.
		filters[i] = topo.AddOperator("filter", 1, spe.NewMapLogic(func(t *event.Tuple) bool {
			return pred.Eval(t)
		}), spe.ForwardInput(srcs[i]))
		filters[i].AssignNodes(e.cfg.Nodes)
	}

	last := filters[0]
	terminalJoinStage := q.Arity - 2 // join results terminal iff KindJoin
	for k := 0; k < q.Arity-1; k++ {
		terminal := q.Kind == core.KindJoin && k == terminalJoinStage
		k := k
		jn := topo.AddOperator("join", P, func(inst int) spe.Logic {
			return newJoinLogic(q, wrap, terminal, k, P, inst)
		}, spe.KeyedInput(last), spe.KeyedInput(filters[k+1]))
		jn.AssignNodes(e.cfg.Nodes)
		last = jn
	}

	switch q.Kind {
	case core.KindAggregation, core.KindComplex:
		agg := topo.AddOperator("agg", P, func(inst int) spe.Logic {
			return newAggLogic(q, wrap, P, inst)
		}, spe.KeyedInput(last))
		agg.AssignNodes(e.cfg.Nodes)
	case core.KindSelection:
		sel := topo.AddOperator("select-sink", P, func(inst int) spe.Logic {
			return newSelectionSink(q, wrap, P, inst)
		}, spe.KeyedInput(last))
		sel.AssignNodes(e.cfg.Nodes)
	case core.KindJoin:
		// Terminal join already delivers; add a sink stage to observe
		// watermark progress after it.
		snk := topo.AddOperator("wm-sink", 1, func(int) spe.Logic {
			wrap.markInstances(1)
			return &wmSink{wrap: wrap, instance: 0}
		}, spe.GlobalInput(last))
		snk.AssignNodes(e.cfg.Nodes)
	}

	snaps := newSnapCounter()
	opts := []spe.DeployOption{spe.WithSnapshotSink(snaps)}
	if e.cfg.Nodes > 1 {
		opts = append(opts, spe.WithEdgeCodec(spe.BinaryCodec{}))
	}
	job, err := spe.Deploy(topo, opts...)
	if err != nil {
		return nil, err
	}
	// Total operator instances = savepoint acknowledgements per barrier.
	instances := q.Arity           // filters (fused into their sources, parallelism 1)
	instances += (q.Arity - 1) * P // join stages
	switch q.Kind {
	case core.KindAggregation, core.KindComplex, core.KindSelection:
		instances += P
	case core.KindJoin:
		instances++ // wm-sink
	}
	jb := &queryJob{
		id:        q.ID,
		q:         q,
		job:       job,
		scs:       make([]*spe.SourceContext, q.Arity),
		sink:      wrap,
		lastTime:  make([]event.Time, q.Arity),
		lastWM:    make([]event.Time, q.Arity),
		instances: instances,
		snaps:     snaps,
	}
	for i := 0; i < q.Arity; i++ {
		sc, err := job.SourceContext(srcs[i], 0)
		if err != nil {
			return nil, err
		}
		jb.scs[i] = sc
		jb.lastTime[i] = event.MinTime
		jb.lastWM[i] = event.MinTime
	}
	return jb, nil
}

// --- watermark progress tracking -------------------------------------------

// initInstances sizes the wrapper's per-instance watermark table (called by
// each terminal logic before use; idempotent because the table is fixed at
// construction through markInstances).
func (w *sinkWrapper) markInstances(n int) {
	w.instMu.Lock()
	if len(w.instWM) < n {
		t := make([]int64, n)
		for i := range t {
			t[i] = int64(event.MinTime)
		}
		copy(t, w.instWM)
		w.instWM = t
	}
	w.instMu.Unlock()
}

func (w *sinkWrapper) observeInstanceWM(inst int, t event.Time) {
	// Everything under instMu: markInstances replaces the slice header, so
	// mixing atomics on elements with plain slice reads is a data race.
	w.instMu.Lock()
	w.instWM[inst] = int64(t)
	min := int64(event.MaxTime)
	for i := range w.instWM {
		if v := w.instWM[i]; v < min {
			min = v
		}
	}
	w.instMu.Unlock()
	w.observeWM(event.Time(min))
}

// wmSink observes watermark progress after a terminal join.
type wmSink struct {
	spe.BaseLogic
	wrap     *sinkWrapper
	instance int
}

func (s *wmSink) OnWatermark(wm event.Time, _ *spe.Emitter) {
	s.wrap.observeInstanceWM(s.instance, wm)
}

// --- selection sink ---------------------------------------------------------

type selectionSink struct {
	spe.BaseLogic
	q        *core.Query
	wrap     *sinkWrapper
	instance int
}

func newSelectionSink(q *core.Query, wrap *sinkWrapper, instances, instance int) *selectionSink {
	wrap.markInstances(instances)
	return &selectionSink{q: q, wrap: wrap, instance: instance}
}

func (s *selectionSink) OnTuple(_ int, t event.Tuple, _ *spe.Emitter) {
	s.wrap.deliver(core.Result{
		QueryID: s.q.ID, Kind: core.KindSelection, Tuple: t,
		EventTime: t.Time, IngestNanos: t.IngestNanos,
	})
}

func (s *selectionSink) OnWatermark(wm event.Time, _ *spe.Emitter) {
	s.wrap.observeInstanceWM(s.instance, wm)
}

// --- per-query windowed aggregation ----------------------------------------

// acc is the single-statistic accumulator for the query's aggregate.
type acc struct {
	count       int64
	sum         int64
	min         int64
	max         int64
	ingestNanos int64
}

func (a *acc) fold(v, ingest int64) {
	if a.count == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.count++
	a.sum += v
	if ingest > a.ingestNanos {
		a.ingestNanos = ingest
	}
}

func (a *acc) finalize(fn sqlstream.AggFunc) int64 {
	switch fn {
	case sqlstream.AggCount:
		return a.count
	case sqlstream.AggSum:
		return a.sum
	case sqlstream.AggAvg:
		if a.count == 0 {
			return 0
		}
		return a.sum / a.count
	case sqlstream.AggMin:
		return a.min
	case sqlstream.AggMax:
		return a.max
	}
	return 0
}

// aggLogic folds tuples into per-window per-key accumulators (Flink's
// incremental AggregateFunction model) and emits at watermark.
type aggLogic struct {
	spe.BaseLogic
	q        *core.Query
	spec     window.Spec
	wrap     *sinkWrapper
	instance int
	wins     map[window.Extent]map[int64]*acc
	sessions map[int64]*window.SessionState
	lastWM   event.Time
	floor    event.Time // earliest data time, clamps first trigger sweep
	hasData  bool
}

func newAggLogic(q *core.Query, wrap *sinkWrapper, instances, instance int) *aggLogic {
	wrap.markInstances(instances)
	spec := q.Window
	if q.Kind == core.KindComplex {
		spec = q.AggWindow
	}
	l := &aggLogic{
		q: q, spec: spec, wrap: wrap, instance: instance,
		wins:   map[window.Extent]map[int64]*acc{},
		lastWM: event.MinTime,
	}
	if spec.Kind == window.Session {
		l.sessions = map[int64]*window.SessionState{}
	}
	return l
}

func (l *aggLogic) value(t *event.Tuple) int64 {
	if l.q.Agg == sqlstream.AggCount || l.q.AggField < 0 {
		return 1
	}
	return t.Fields[l.q.AggField]
}

func (l *aggLogic) OnTuple(_ int, t event.Tuple, _ *spe.Emitter) {
	if !l.hasData || t.Time < l.floor {
		l.floor = t.Time
		l.hasData = true
	}
	if l.sessions != nil {
		ss := l.sessions[t.Key]
		if ss == nil {
			ss = window.NewSessionState(l.spec.Gap)
			l.sessions[t.Key] = ss
		}
		ss.Add(t.Time, l.value(&t))
		return
	}
	for _, ext := range l.spec.Assign(t.Time) {
		byKey := l.wins[ext]
		if byKey == nil {
			byKey = map[int64]*acc{}
			l.wins[ext] = byKey
		}
		a := byKey[t.Key]
		if a == nil {
			a = &acc{}
			byKey[t.Key] = a
		}
		a.fold(l.value(&t), t.IngestNanos)
	}
}

// OnBarrier serializes the aggregation's accumulator state (savepoint).
func (l *aggLogic) OnBarrier(_ uint64, _ *spe.Emitter) []byte {
	var buf []byte
	appendI64 := func(v int64) {
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
	}
	for ext, byKey := range l.wins {
		appendI64(int64(ext.Start))
		appendI64(int64(ext.End))
		for key, a := range byKey {
			appendI64(key)
			appendI64(a.count)
			appendI64(a.sum)
			appendI64(a.min)
			appendI64(a.max)
		}
	}
	for key, ss := range l.sessions {
		appendI64(key)
		appendI64(int64(ss.Open()))
	}
	return buf
}

func (l *aggLogic) OnWatermark(wm event.Time, _ *spe.Emitter) {
	if l.sessions != nil {
		for key, ss := range l.sessions {
			for _, cs := range ss.Harvest(wm) {
				val := cs.Sum
				switch l.q.Agg {
				case sqlstream.AggCount:
					val = cs.Count
				case sqlstream.AggAvg:
					if cs.Count > 0 {
						val = cs.Sum / cs.Count
					}
				}
				l.wrap.deliver(core.Result{
					QueryID: l.q.ID, Kind: l.q.Kind, Window: cs.Extent,
					Key: key, Value: val, EventTime: cs.Extent.End,
				})
			}
			if ss.Open() == 0 {
				delete(l.sessions, key)
			}
		}
		l.wrap.observeInstanceWM(l.instance, wm)
		l.lastWM = wm
		return
	}
	for ext, byKey := range l.wins {
		if ext.End > wm {
			continue
		}
		for key, a := range byKey {
			l.wrap.deliver(core.Result{
				QueryID: l.q.ID, Kind: l.q.Kind, Window: ext,
				Key: key, Value: a.finalize(l.q.Agg), EventTime: ext.End,
				IngestNanos: a.ingestNanos,
			})
		}
		delete(l.wins, ext)
	}
	l.wrap.observeInstanceWM(l.instance, wm)
	l.lastWM = wm
}

// --- per-query windowed join -------------------------------------------------

// joinLogic buffers both sides' raw tuples per window (one copy per
// overlapping window — Flink's window-join state model) and joins at
// trigger time.
type joinLogic struct {
	spe.BaseLogic
	q        *core.Query
	wrap     *sinkWrapper
	terminal bool
	stage    int
	instance int
	wins     map[window.Extent]*joinBuf
	lastWM   event.Time
}

type joinBuf struct {
	left, right []event.Tuple
}

func newJoinLogic(q *core.Query, wrap *sinkWrapper, terminal bool, stage, instances, instance int) *joinLogic {
	// Drain progress for terminal joins is observed by the wm-sink stage
	// downstream, which sees the combined minimum watermark.
	return &joinLogic{
		q: q, wrap: wrap, terminal: terminal, stage: stage, instance: instance,
		wins:   map[window.Extent]*joinBuf{},
		lastWM: event.MinTime,
	}
}

func (l *joinLogic) OnTuple(port int, t event.Tuple, _ *spe.Emitter) {
	for _, ext := range l.q.Window.Assign(t.Time) {
		if ext.End <= l.lastWM {
			continue // late for this window
		}
		buf := l.wins[ext]
		if buf == nil {
			buf = &joinBuf{}
			l.wins[ext] = buf
		}
		if port == 0 {
			buf.left = append(buf.left, t)
		} else {
			buf.right = append(buf.right, t)
		}
	}
}

// OnBarrier serializes the join's buffered window state — the savepoint
// work a stop-the-world deployment pays (its size grows with backlog).
func (l *joinLogic) OnBarrier(_ uint64, _ *spe.Emitter) []byte {
	codec := spe.BinaryCodec{}
	var buf []byte
	for _, wbuf := range l.wins {
		for i := range wbuf.left {
			buf = append(buf, codec.Encode(event.NewTuple(wbuf.left[i]))...)
		}
		for i := range wbuf.right {
			buf = append(buf, codec.Encode(event.NewTuple(wbuf.right[i]))...)
		}
	}
	return buf
}

func (l *joinLogic) OnWatermark(wm event.Time, out *spe.Emitter) {
	for ext, buf := range l.wins {
		if ext.End > wm {
			continue
		}
		l.fire(ext, buf, out)
		delete(l.wins, ext)
	}
	l.lastWM = wm
}

func (l *joinLogic) fire(ext window.Extent, buf *joinBuf, out *spe.Emitter) {
	if len(buf.left) == 0 || len(buf.right) == 0 {
		return
	}
	idx := make(map[int64][]*event.Tuple, len(buf.left))
	for i := range buf.left {
		t := &buf.left[i]
		idx[t.Key] = append(idx[t.Key], t)
	}
	for i := range buf.right {
		r := &buf.right[i]
		for _, lft := range idx[r.Key] {
			jt := event.JoinedTuple{Key: r.Key, Left: lft.Fields, Right: r.Fields}
			jt.Time = lft.Time
			if r.Time > jt.Time {
				jt.Time = r.Time
			}
			jt.IngestNanos = lft.IngestNanos
			if r.IngestNanos > jt.IngestNanos {
				jt.IngestNanos = r.IngestNanos
			}
			if l.terminal {
				l.wrap.deliver(core.Result{
					QueryID: l.q.ID, Kind: core.KindJoin, Window: ext,
					Join: jt, EventTime: jt.Time, IngestNanos: jt.IngestNanos,
				})
			} else {
				t := jt.AsTuple()
				t.Time = ext.End - 1
				out.EmitTuple(t)
			}
		}
	}
}
