// Package baseline implements the query-at-a-time engine that plays vanilla
// Flink's role in the paper's evaluation (§4): every query runs its own
// dataflow topology over a forked copy of the input stream.
//
// The structural costs the paper attributes to this model are preserved:
//
//   - The input stream is forked: one ingested tuple is pushed into every
//     query's topology, so per-tuple work grows linearly with the number of
//     concurrent queries (no sharing).
//   - Deploying or stopping a query is a stop-the-world "savepoint" step:
//     ingestion pauses, every running topology drains its in-flight work,
//     then the topology set changes. Deployment latency therefore grows
//     with the number of running queries and the backlog — the Figure 10
//     behaviour ("deployment latency keeps increasing").
//   - Windowed joins buffer raw tuples per window (one copy per overlapping
//     sliding window), the non-incremental strategy the paper calls out for
//     Flink's window joins; aggregations fold incrementally per window, the
//     part Flink does support natively (§4.5).
package baseline

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/spe"
)

// Config parameterizes the baseline engine; fields mirror core.Config where
// they overlap.
type Config struct {
	Streams        int
	Parallelism    int
	Nodes          int
	Lateness       event.Time
	WatermarkEvery event.Time
	ChannelCap     int
	NowNanos       func() int64
}

func (c *Config) setDefaults() {
	if c.Streams <= 0 {
		c.Streams = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.WatermarkEvery <= 0 {
		c.WatermarkEvery = 10
	}
	if c.ChannelCap <= 0 {
		c.ChannelCap = spe.DefaultChannelCap
	}
	if c.NowNanos == nil {
		c.NowNanos = func() int64 { return time.Now().UnixNano() }
	}
}

// Engine is the query-at-a-time baseline. It implements the same submission
// and ingestion surface as core.Engine so the experiment driver treats both
// as systems under test.
type Engine struct {
	cfg Config

	// world serializes ingestion (read side) against topology changes
	// (write side): deploy/stop are stop-the-world, as a savepoint-restart
	// deployment is.
	world sync.RWMutex

	jobs    map[int]*queryJob
	nextID  int64
	stopped bool

	lastTime []event.Time // per stream, guarded by world (writers hold RLock
	// but ingestion is single-goroutine per stream by contract, and these
	// are per-engine maxima updated only under RLock by that goroutine).
	timeMu sync.Mutex

	recMu   sync.Mutex
	records []core.DeployRecord

	maxHorizon int64
}

// queryJob is one deployed per-query topology.
type queryJob struct {
	id   int
	q    *core.Query
	job  *spe.Job
	scs  []*spe.SourceContext // one per stream the query reads
	sink *sinkWrapper

	lastTime []event.Time
	lastWM   []event.Time

	// Savepoint plumbing: instances counts the topology's operator
	// instances; snaps collects per-barrier snapshot acknowledgements;
	// nextBarrier numbers savepoints.
	instances   int
	snaps       *snapCounter
	nextBarrier uint64
	stateBytes  uint64 // last savepoint's serialized state size
}

// snapCounter counts snapshot callbacks per barrier (spe.SnapshotSink).
type snapCounter struct {
	mu    sync.Mutex
	seen  map[uint64]int
	bytes map[uint64]uint64
	cond  *sync.Cond
}

func newSnapCounter() *snapCounter {
	c := &snapCounter{seen: map[uint64]int{}, bytes: map[uint64]uint64{}}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// OnSnapshot implements spe.SnapshotSink.
func (c *snapCounter) OnSnapshot(op string, instance int, barrier uint64, state []byte) {
	c.mu.Lock()
	c.seen[barrier]++
	c.bytes[barrier] += uint64(len(state))
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *snapCounter) await(barrier uint64, total int) uint64 {
	c.mu.Lock()
	for c.seen[barrier] < total {
		c.cond.Wait()
	}
	b := c.bytes[barrier]
	delete(c.seen, barrier)
	delete(c.bytes, barrier)
	c.mu.Unlock()
	return b
}

// NewEngine creates an empty baseline engine (no topologies yet).
func NewEngine(cfg Config) (*Engine, error) {
	cfg.setDefaults()
	e := &Engine{
		cfg:      cfg,
		jobs:     make(map[int]*queryJob),
		lastTime: make([]event.Time, cfg.Streams),
	}
	for i := range e.lastTime {
		e.lastTime[i] = event.MinTime
	}
	return e, nil
}

// ActiveQueries returns the number of deployed queries.
func (e *Engine) ActiveQueries() int {
	e.world.RLock()
	defer e.world.RUnlock()
	return len(e.jobs)
}

// DeployRecords returns per-query deployment latencies.
func (e *Engine) DeployRecords() []core.DeployRecord {
	e.recMu.Lock()
	defer e.recMu.Unlock()
	out := make([]core.DeployRecord, len(e.records))
	copy(out, e.records)
	return out
}

// Submit deploys a dedicated topology for the query. The returned ack
// channel closes when the deployment (including the stop-the-world drain of
// every running topology) has completed.
func (e *Engine) Submit(q *core.Query, sink core.Sink) (int, <-chan struct{}, error) {
	if err := q.Validate(e.cfg.Streams); err != nil {
		return 0, nil, err
	}
	if sink == nil {
		sink = core.NewCountingSink(e.cfg.NowNanos, 128)
	}
	start := time.Now()
	e.world.Lock()
	defer e.world.Unlock()
	if e.stopped {
		return 0, nil, fmt.Errorf("baseline: engine stopped")
	}
	// Savepoint: drain every running topology before changing the set.
	//lint:ignore lockheld-send stop-the-world by design; topology workers drain these channels without taking e.world
	e.drainAllLocked()

	id := int(atomic.AddInt64(&e.nextID, 1))
	qq := *q
	qq.ID = id
	jb, err := e.deployQuery(&qq, sink)
	if err != nil {
		return 0, nil, err
	}
	e.jobs[id] = jb
	e.trackHorizon(&qq)

	e.recMu.Lock()
	e.records = append(e.records, core.DeployRecord{QueryID: id, Create: true, Latency: time.Since(start)})
	e.recMu.Unlock()
	ack := make(chan struct{})
	close(ack)
	return id, ack, nil
}

// StopQuery cancels a query's topology (with the same savepoint drain).
func (e *Engine) StopQuery(id int) (<-chan struct{}, error) {
	start := time.Now()
	e.world.Lock()
	defer e.world.Unlock()
	jb, ok := e.jobs[id]
	if !ok {
		return nil, fmt.Errorf("baseline: query %d not running", id)
	}
	//lint:ignore lockheld-send stop-the-world by design; topology workers drain these channels without taking e.world
	e.drainAllLocked()
	delete(e.jobs, id)
	// Stop semantics match the shared engine's event-time deletion: windows
	// ending at or before the stop time (one past the latest ingested
	// event) fire; later windows are discarded.
	//lint:ignore lockheld-send topology workers drain these channels without taking e.world
	jb.finishAt(jb.maxLast() + 1)
	e.recMu.Lock()
	e.records = append(e.records, core.DeployRecord{QueryID: id, Create: false, Latency: time.Since(start)})
	e.recMu.Unlock()
	ack := make(chan struct{})
	close(ack)
	return ack, nil
}

func (e *Engine) trackHorizon(q *core.Query) {
	h := int64(q.Window.Length)
	if int64(q.Window.Gap) > h {
		h = int64(q.Window.Gap) * 2
	}
	if q.AggWindow.Length > 0 {
		h += int64(q.AggWindow.Length)
	}
	for {
		cur := atomic.LoadInt64(&e.maxHorizon)
		if h <= cur || atomic.CompareAndSwapInt64(&e.maxHorizon, cur, h) {
			return
		}
	}
}

// drainAllLocked takes a savepoint of every running topology: each job
// receives a watermark at its streams' high-water marks, the call waits
// until the job's sink has observed the combined mark (in-flight work
// flushed), and then an aligned barrier makes every operator serialize its
// state (window buffers, accumulators) — the savepoint itself. The cost is
// proportional to in-flight backlog and buffered state × topology count,
// which is what makes baseline deployment latency grow with the number of
// running queries (paper Figure 10).
func (e *Engine) drainAllLocked() {
	for _, jb := range e.jobs {
		target := event.MaxTime
		for s := range jb.scs {
			wm := jb.lastTime[s] - e.cfg.Lateness
			if wm > jb.lastWM[s] {
				jb.scs[s].EmitWatermark(wm)
				jb.lastWM[s] = wm
			}
			if jb.lastWM[s] < target {
				target = jb.lastWM[s]
			}
		}
		if target != event.MaxTime && target != event.MinTime {
			jb.sink.awaitWM(target)
		}
		// Savepoint: barrier-aligned state serialization.
		jb.nextBarrier++
		for s := range jb.scs {
			jb.scs[s].EmitBarrier(jb.nextBarrier)
		}
		jb.stateBytes = jb.snaps.await(jb.nextBarrier, jb.instances)
	}
}

// Ingest pushes one tuple into every query topology that reads the stream.
// For each stream, Ingest must be called from a single goroutine.
func (e *Engine) Ingest(stream int, t event.Tuple) error {
	if stream < 0 || stream >= e.cfg.Streams {
		return fmt.Errorf("baseline: no stream %d", stream)
	}
	if t.IngestNanos == 0 {
		t.IngestNanos = e.cfg.NowNanos()
	}
	e.world.RLock()
	defer e.world.RUnlock()
	e.timeMu.Lock()
	if t.Time > e.lastTime[stream] {
		e.lastTime[stream] = t.Time
	}
	e.timeMu.Unlock()
	// The fork: one copy per query (this is the Kafka-fan-out setup the
	// paper describes as today's best practice, and the reason baseline
	// per-tuple cost is O(queries)).
	for _, jb := range e.jobs {
		if stream >= jb.q.Arity {
			continue
		}
		//lint:ignore lockheld-send read lock only orders against redeploys; topology workers drain these channels without taking e.world
		jb.scs[stream].EmitTuple(t)
		if t.Time > jb.lastTime[stream] {
			jb.lastTime[stream] = t.Time
		}
		wm := jb.lastTime[stream] - e.cfg.Lateness
		if wm >= jb.lastWM[stream]+e.cfg.WatermarkEvery {
			//lint:ignore lockheld-send read lock only orders against redeploys; topology workers drain these channels without taking e.world
			jb.scs[stream].EmitWatermark(wm)
			jb.lastWM[stream] = wm
		}
	}
	return nil
}

// Drain flushes and stops every topology. The engine cannot be used after.
func (e *Engine) Drain() {
	e.world.Lock()
	defer e.world.Unlock()
	if e.stopped {
		return
	}
	e.stopped = true
	for id, jb := range e.jobs {
		//lint:ignore lockheld-send final teardown; topology workers drain these channels without taking e.world
		jb.finishAt(jb.maxLast() + event.Time(atomic.LoadInt64(&e.maxHorizon))*2 + 2)
		delete(e.jobs, id)
	}
}

// maxLast returns the job's highest ingested event-time (0 when none).
func (jb *queryJob) maxLast() event.Time {
	final := event.MinTime
	for s := range jb.scs {
		if jb.lastTime[s] > final {
			final = jb.lastTime[s]
		}
	}
	if final == event.MinTime {
		final = 0
	}
	return final
}

// finishAt advances the job's watermark to final, closes its sources, and
// waits for the drain. Windows ending after final are discarded.
func (jb *queryJob) finishAt(final event.Time) {
	for s := range jb.scs {
		jb.scs[s].EmitWatermark(final)
		jb.scs[s].Close()
	}
	jb.job.Wait()
}

// sinkWrapper adapts a core.Sink and tracks watermark progress for drains.
type sinkWrapper struct {
	sink   core.Sink
	wm     int64 // atomic: min over instances
	instMu sync.Mutex
	instWM []int64 // per terminal-operator instance, atomic slots
}

func newSinkWrapper(s core.Sink) *sinkWrapper {
	return &sinkWrapper{sink: s, wm: int64(event.MinTime)}
}

func (w *sinkWrapper) deliver(r core.Result) { w.sink.OnResult(r) }

func (w *sinkWrapper) observeWM(t event.Time) {
	for {
		cur := atomic.LoadInt64(&w.wm)
		if int64(t) <= cur || atomic.CompareAndSwapInt64(&w.wm, cur, int64(t)) {
			return
		}
	}
}

// awaitWM blocks until the sink has seen a watermark ≥ target.
func (w *sinkWrapper) awaitWM(target event.Time) {
	for atomic.LoadInt64(&w.wm) < int64(target) {
		time.Sleep(20 * time.Microsecond)
	}
}
