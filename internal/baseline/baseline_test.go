package baseline

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

type collectSink struct {
	mu      sync.Mutex
	results []core.Result
}

func (c *collectSink) OnResult(r core.Result) {
	c.mu.Lock()
	c.results = append(c.results, r)
	c.mu.Unlock()
}

func (c *collectSink) canon() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.results))
	for i, r := range c.results {
		switch r.Kind {
		case core.KindSelection:
			out[i] = fmt.Sprintf("sel k=%d t=%v f=%v", r.Tuple.Key, r.Tuple.Time, r.Tuple.Fields)
		case core.KindJoin:
			out[i] = fmt.Sprintf("join w=%v k=%d l=%v r=%v", r.Window, r.Join.Key, r.Join.Left, r.Join.Right)
		default:
			out[i] = fmt.Sprintf("agg w=%v k=%d v=%d", r.Window, r.Key, r.Value)
		}
	}
	sort.Strings(out)
	return out
}

// sut abstracts the two engines for equivalence testing.
type sut interface {
	Submit(q *core.Query, sink core.Sink) (int, <-chan struct{}, error)
	StopQuery(id int) (<-chan struct{}, error)
	Ingest(stream int, t event.Tuple) error
	Drain()
	ActiveQueries() int
	DeployRecords() []core.DeployRecord
}

var (
	_ sut = (*Engine)(nil)
	_ sut = (*core.Engine)(nil)
)

// script is a deterministic workload: interleaved ingests and query churn.
type scriptStep struct {
	submit *core.Query
	stop   int // ordinal of previously submitted query (1-based), 0 = none
	burst  int // tuples per stream after the op
}

func runScript(t *testing.T, s sut, streams int, steps []scriptStep, seed int64) map[int][]string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sinks := map[int]*collectSink{}
	var order []int
	now := 0
	for _, st := range steps {
		if st.submit != nil {
			sink := &collectSink{}
			id, ack, err := s.Submit(st.submit, sink)
			if err != nil {
				t.Fatal(err)
			}
			<-ack
			sinks[id] = sink
			order = append(order, id)
		}
		if st.stop > 0 {
			id := order[st.stop-1]
			ack, err := s.StopQuery(id)
			if err != nil {
				t.Fatal(err)
			}
			<-ack
		}
		for i := 0; i < st.burst; i++ {
			now++
			for str := 0; str < streams; str++ {
				tu := event.Tuple{Key: int64(rng.Intn(4)), Time: event.Time(now)}
				for f := range tu.Fields {
					tu.Fields[f] = int64(rng.Intn(100))
				}
				if err := s.Ingest(str, tu); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	s.Drain()
	out := map[int][]string{}
	for i, id := range order {
		out[i+1] = sinks[id].canon()
	}
	return out
}

// TestBaselineMatchesShared is the central equivalence test: the baseline
// query-at-a-time engine and the AStream shared engine must produce the same
// result multisets for the same workload.
func TestBaselineMatchesShared(t *testing.T) {
	gtp := func(f int, v int64) expr.Predicate {
		return expr.True().And(expr.Comparison{Field: f, Op: expr.GT, Value: v})
	}
	steps := []scriptStep{
		{submit: &core.Query{Kind: core.KindAggregation, Arity: 1,
			Predicates: []expr.Predicate{gtp(0, 20)},
			Window:     window.TumblingSpec(10), Agg: sqlstream.AggSum, AggField: 1}, burst: 25},
		{submit: &core.Query{Kind: core.KindJoin, Arity: 2,
			Predicates: []expr.Predicate{gtp(1, 30), expr.True()},
			Window:     window.SlidingSpec(8, 4), AggField: -1}, burst: 25},
		{stop: 1, burst: 20},
		{submit: &core.Query{Kind: core.KindComplex, Arity: 2,
			Predicates: []expr.Predicate{expr.True(), gtp(2, 50)},
			Window:     window.TumblingSpec(8), AggWindow: window.TumblingSpec(8),
			Agg: sqlstream.AggCount, AggField: -1}, burst: 30},
		{stop: 2, burst: 15},
	}

	mk := func() (sut, sut) {
		base, err := NewEngine(Config{Streams: 2, Parallelism: 2, WatermarkEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		shared, err := core.NewEngine(core.Config{
			Streams: 2, Parallelism: 2, BatchSize: 1,
			BatchTimeout: time.Hour, WatermarkEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return base, shared
	}
	base, shared := mk()
	br := runScript(t, base, 2, steps, 99)
	sr := runScript(t, shared, 2, steps, 99)
	if len(br) != len(sr) {
		t.Fatalf("query counts differ: %d vs %d", len(br), len(sr))
	}
	for ord := range br {
		b, s := br[ord], sr[ord]
		if len(b) != len(s) {
			t.Errorf("query #%d: baseline %d results, shared %d", ord, len(b), len(s))
			continue
		}
		for i := range b {
			if b[i] != s[i] {
				t.Errorf("query #%d result %d: baseline %q, shared %q", ord, i, b[i], s[i])
				break
			}
		}
	}
}

func TestBaselineSelectionAndSession(t *testing.T) {
	steps := []scriptStep{
		{submit: &core.Query{Kind: core.KindSelection, Arity: 1,
			Predicates: []expr.Predicate{expr.True().And(expr.Comparison{Field: 0, Op: expr.LT, Value: 50})},
			AggField:   -1}, burst: 20},
		{submit: &core.Query{Kind: core.KindAggregation, Arity: 1,
			Predicates: []expr.Predicate{expr.True()},
			Window:     window.SessionSpec(3), Agg: sqlstream.AggSum, AggField: 0}, burst: 30},
	}
	base, err := NewEngine(Config{Streams: 1, Parallelism: 1, WatermarkEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := core.NewEngine(core.Config{Streams: 1, Parallelism: 1, BatchSize: 1, BatchTimeout: time.Hour, WatermarkEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	br := runScript(t, base, 1, steps, 5)
	sr := runScript(t, shared, 1, steps, 5)
	for ord := range br {
		if len(br[ord]) == 0 {
			t.Errorf("query #%d produced nothing in baseline", ord)
		}
		if fmt.Sprint(br[ord]) != fmt.Sprint(sr[ord]) {
			t.Errorf("query #%d results differ:\nbaseline %v\nshared   %v", ord, br[ord], sr[ord])
		}
	}
}

func TestBaselineTernaryJoinMatchesShared(t *testing.T) {
	steps := []scriptStep{
		{submit: &core.Query{Kind: core.KindJoin, Arity: 3,
			Predicates: []expr.Predicate{expr.True(), expr.True(), expr.True()},
			Window:     window.TumblingSpec(6), AggField: -1}, burst: 30},
	}
	base, _ := NewEngine(Config{Streams: 3, Parallelism: 1, WatermarkEvery: 1})
	shared, _ := core.NewEngine(core.Config{Streams: 3, Parallelism: 1, BatchSize: 1, BatchTimeout: time.Hour, WatermarkEvery: 1})
	br := runScript(t, base, 3, steps, 13)
	sr := runScript(t, shared, 3, steps, 13)
	if len(br[1]) == 0 {
		t.Fatal("ternary join produced nothing")
	}
	if fmt.Sprint(br[1]) != fmt.Sprint(sr[1]) {
		t.Fatalf("ternary join results differ:\nbaseline %v\nshared   %v", br[1], sr[1])
	}
}

func TestBaselineDeployRecordsAndErrors(t *testing.T) {
	e, err := NewEngine(Config{Streams: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := &core.Query{Kind: core.KindAggregation, Arity: 1,
		Predicates: []expr.Predicate{expr.True()},
		Window:     window.TumblingSpec(5), Agg: sqlstream.AggCount, AggField: -1}
	id, ack, err := e.Submit(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-ack
	if e.ActiveQueries() != 1 {
		t.Fatalf("active = %d", e.ActiveQueries())
	}
	if _, err := e.StopQuery(999); err == nil {
		t.Error("stop of unknown query must fail")
	}
	bad := &core.Query{Kind: core.KindJoin, Arity: 5, Predicates: make([]expr.Predicate, 5), Window: window.TumblingSpec(5)}
	if _, _, err := e.Submit(bad, nil); err == nil {
		t.Error("invalid query must be rejected")
	}
	if err := e.Ingest(7, event.Tuple{}); err == nil {
		t.Error("unknown stream must be rejected")
	}
	ack2, err := e.StopQuery(id)
	if err != nil {
		t.Fatal(err)
	}
	<-ack2
	recs := e.DeployRecords()
	if len(recs) != 2 || !recs[0].Create || recs[1].Create {
		t.Fatalf("deploy records = %+v", recs)
	}
	e.Drain()
	if _, _, err := e.Submit(q, nil); err == nil {
		t.Error("submit after Drain must fail")
	}
}

// TestBaselinePerTupleCostGrowsWithQueries sanity-checks the structural
// claim: the fork makes per-tuple delivery O(queries).
func TestBaselinePerTupleCostGrowsWithQueries(t *testing.T) {
	e, _ := NewEngine(Config{Streams: 1, Parallelism: 1, WatermarkEvery: 1})
	sinks := make([]*collectSink, 6)
	for i := range sinks {
		sinks[i] = &collectSink{}
		q := &core.Query{Kind: core.KindAggregation, Arity: 1,
			Predicates: []expr.Predicate{expr.True()},
			Window:     window.TumblingSpec(10), Agg: sqlstream.AggCount, AggField: -1}
		if _, _, err := e.Submit(q, sinks[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 30; i++ {
		if err := e.Ingest(0, event.Tuple{Key: int64(i % 3), Time: event.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	for i, s := range sinks {
		if len(s.canon()) == 0 {
			t.Fatalf("query %d got no results: the fork did not deliver", i)
		}
	}
}
