package window

import (
	"sort"

	"astream/internal/event"
)

// SessionState tracks open sessions for one (key, query) pair. Sessions are
// data-driven: a tuple at time t joins a session if t is within Gap of the
// session's extent; overlapping sessions merge. Sessions close when the
// watermark passes end+Gap.
//
// The accumulator is a single int64 because the paper's aggregation workload
// is SUM (Figure 8); the count is tracked alongside so other aggregates
// (COUNT, AVG) can be derived.
type SessionState struct {
	gap      event.Time
	sessions []sessionWindow // sorted by Start, non-overlapping (gap-separated)
}

type sessionWindow struct {
	Start, End event.Time // End = last tuple time + 1 (half-open)
	Sum        int64
	Count      int64
}

// NewSessionState creates a tracker with the given gap.
func NewSessionState(gap event.Time) *SessionState {
	//lint:ignore hotalloc cold: one tracker per (group, key) session stream
	return &SessionState{gap: gap}
}

// Add folds a tuple at time t with value v into the session structure,
// merging sessions that come within gap of each other.
func (s *SessionState) Add(t event.Time, v int64) {
	nw := sessionWindow{Start: t, End: t + 1, Sum: v, Count: 1}
	// Find insertion point: first session with Start > t.
	//lint:ignore hotalloc sort.Search does not retain its predicate; the closure is stack-allocated
	i := sort.Search(len(s.sessions), func(i int) bool { return s.sessions[i].Start > t })
	// Merge with predecessor if within gap.
	lo := i
	if i > 0 && nw.Start-s.sessions[i-1].End < s.gap {
		lo = i - 1
	}
	// Merge with successors within gap.
	hi := i
	for hi < len(s.sessions) && s.sessions[hi].Start-nw.End < s.gap {
		hi++
	}
	if lo == hi {
		// No merge: insert.
		//lint:ignore hotalloc session path: open-session list growth is amortized per new session
		s.sessions = append(s.sessions, sessionWindow{})
		copy(s.sessions[i+1:], s.sessions[i:])
		s.sessions[i] = nw
		return
	}
	merged := nw
	for k := lo; k < hi; k++ {
		w := s.sessions[k]
		if w.Start < merged.Start {
			merged.Start = w.Start
		}
		if w.End > merged.End {
			merged.End = w.End
		}
		merged.Sum += w.Sum
		merged.Count += w.Count
	}
	s.sessions[lo] = merged
	//lint:ignore hotalloc merge shrinks the list in place; append never exceeds existing capacity
	s.sessions = append(s.sessions[:lo+1], s.sessions[hi:]...)
}

// ClosedSession is an emitted, finalized session.
type ClosedSession struct {
	Extent Extent
	Sum    int64
	Count  int64
}

// Harvest removes and returns sessions that are closed at the given
// watermark (no tuple at time < wm can extend them: End+gap ≤ wm).
func (s *SessionState) Harvest(wm event.Time) []ClosedSession {
	var out []ClosedSession
	n := 0
	for _, w := range s.sessions {
		if w.End+s.gap <= wm {
			out = append(out, ClosedSession{
				Extent: Extent{Start: w.Start, End: w.End},
				Sum:    w.Sum,
				Count:  w.Count,
			})
		} else {
			s.sessions[n] = w
			n++
		}
	}
	s.sessions = s.sessions[:n]
	return out
}

// Open returns the number of open sessions (for tests and memory
// accounting).
func (s *SessionState) Open() int { return len(s.sessions) }

// OpenSession is the exported view of one open session, used by checkpoint
// snapshots to round-trip session state across a restore.
type OpenSession struct {
	Start, End event.Time
	Sum        int64
	Count      int64
}

// OpenSessions returns the open sessions in Start order.
func (s *SessionState) OpenSessions() []OpenSession {
	out := make([]OpenSession, len(s.sessions))
	for i, w := range s.sessions {
		out[i] = OpenSession{Start: w.Start, End: w.End, Sum: w.Sum, Count: w.Count}
	}
	return out
}

// RestoreSessionState rebuilds a tracker from snapshotted open sessions.
// The slice must be in Start order, as produced by OpenSessions.
func RestoreSessionState(gap event.Time, open []OpenSession) *SessionState {
	s := &SessionState{gap: gap}
	for _, w := range open {
		s.sessions = append(s.sessions, sessionWindow{Start: w.Start, End: w.End, Sum: w.Sum, Count: w.Count})
	}
	return s
}

// NextEdgeAll returns the smallest window edge strictly greater than t over
// all given time-based specs, or event.MaxTime when none apply. Session
// specs are skipped: their boundaries are data-driven, not time-driven.
func NextEdgeAll(specs []Spec, t event.Time) event.Time {
	next := event.MaxTime
	for _, sp := range specs {
		if !sp.IsTimeBased() {
			continue
		}
		if e := sp.NextEdge(t); e < next {
			next = e
		}
	}
	return next
}
