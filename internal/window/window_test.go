package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"astream/internal/event"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{TumblingSpec(10), true},
		{TumblingSpec(0), false},
		{TumblingSpec(-5), false},
		{Spec{Kind: Tumbling, Length: 10, Slide: 5}, false},
		{SlidingSpec(10, 5), true},
		{SlidingSpec(10, 10), true},
		{SlidingSpec(10, 11), false},
		{SlidingSpec(10, 0), false},
		{SlidingSpec(0, 0), false},
		{SessionSpec(3), true},
		{SessionSpec(0), false},
		{Spec{Kind: Kind(9)}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestAssignTumbling(t *testing.T) {
	s := TumblingSpec(10)
	for _, tc := range []struct {
		t          event.Time
		start, end event.Time
	}{
		{0, 0, 10}, {9, 0, 10}, {10, 10, 20}, {15, 10, 20}, {-1, -10, 0}, {-10, -10, 0},
	} {
		ws := s.Assign(tc.t)
		if len(ws) != 1 {
			t.Fatalf("Assign(%v) returned %d windows, want 1", tc.t, len(ws))
		}
		if ws[0].Start != tc.start || ws[0].End != tc.end {
			t.Errorf("Assign(%v) = %v, want [%v,%v)", tc.t, ws[0], tc.start, tc.end)
		}
	}
}

func TestAssignSliding(t *testing.T) {
	s := SlidingSpec(10, 5)
	ws := s.Assign(12)
	// t=12 belongs to [5,15) and [10,20).
	if len(ws) != 2 || ws[0] != (Extent{5, 15}) || ws[1] != (Extent{10, 20}) {
		t.Fatalf("Assign(12) = %v", ws)
	}
	// Every returned window must contain t; windows ascending.
	rng := rand.New(rand.NewSource(5))
	specs := []Spec{SlidingSpec(10, 3), SlidingSpec(7, 7), SlidingSpec(100, 1), SlidingSpec(9, 4)}
	for _, sp := range specs {
		for trial := 0; trial < 200; trial++ {
			tt := event.Time(rng.Int63n(1000) - 100)
			ws := sp.Assign(tt)
			// Reference: windows start at every multiple of slide in
			// (t-length, t].
			want := 0
			for k := int64(tt) - int64(sp.Length); k <= int64(tt); k++ {
				if k > int64(tt)-int64(sp.Length) && k%int64(sp.slide()) == 0 {
					want++
				}
			}
			if len(ws) != want {
				t.Fatalf("%v Assign(%v): %d windows, want %d", sp, tt, len(ws), want)
			}
			for i, w := range ws {
				if !w.Contains(tt) {
					t.Fatalf("%v Assign(%v): window %v does not contain t", sp, tt, w)
				}
				if w.End-w.Start != sp.Length {
					t.Fatalf("%v: window %v has wrong length", sp, w)
				}
				if i > 0 && ws[i-1].Start >= w.Start {
					t.Fatalf("%v: windows not ascending: %v", sp, ws)
				}
			}
		}
	}
}

func TestWindowsEndingIn(t *testing.T) {
	s := SlidingSpec(10, 5)
	got := s.WindowsEndingIn(10, 25)
	// Ends at 15, 20, 25 → windows [5,15) [10,20) [15,25).
	want := []Extent{{5, 15}, {10, 20}, {15, 25}}
	if len(got) != len(want) {
		t.Fatalf("WindowsEndingIn = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WindowsEndingIn = %v, want %v", got, want)
		}
	}
	if ws := s.WindowsEndingIn(10, 10); len(ws) != 0 {
		t.Fatalf("empty interval should yield no windows, got %v", ws)
	}
	// Boundary semantics: (lo, hi] — a window ending exactly at lo is
	// excluded, at hi included.
	if ws := s.WindowsEndingIn(15, 15); len(ws) != 0 {
		t.Fatalf("(15,15] should be empty, got %v", ws)
	}
	if ws := s.WindowsEndingIn(14, 15); len(ws) != 1 || ws[0] != (Extent{5, 15}) {
		t.Fatalf("(14,15] = %v", ws)
	}
}

func TestNextEdge(t *testing.T) {
	// Epoch-aligned in both directions: starts ≡ 0 (mod 4), ends ≡ 2
	// (mod 4) because length 10 ≡ 2.
	s := SlidingSpec(10, 4)
	cases := []struct{ t, want event.Time }{
		{0, 2}, {2, 4}, {3, 4}, {4, 6}, {9, 10}, {10, 12}, {11, 12}, {12, 14},
	}
	for _, c := range cases {
		if got := s.NextEdge(c.t); got != c.want {
			t.Errorf("NextEdge(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestNextEdgeIsNextBoundaryExhaustive(t *testing.T) {
	// Brute force: collect all edges in a range, compare.
	specs := []Spec{TumblingSpec(7), SlidingSpec(10, 3), SlidingSpec(6, 6), SlidingSpec(13, 5)}
	for _, sp := range specs {
		edges := map[event.Time]bool{}
		sl := int64(sp.slide())
		for k := int64(-30); k < 40; k++ {
			edges[event.Time(k*sl)] = true
			edges[event.Time(k*sl+int64(sp.Length))] = true
		}
		for tt := event.Time(-20); tt < 100; tt++ {
			want := event.MaxTime
			for e := range edges {
				if e > tt && e < want {
					want = e
				}
			}
			if got := sp.NextEdge(tt); got != want {
				t.Fatalf("%v NextEdge(%v) = %v, want %v", sp, tt, got, want)
			}
		}
	}
}

func TestLastWindowEndCovering(t *testing.T) {
	s := SlidingSpec(10, 5)
	// Slice starting at 12: last window starting ≤ 12 is [10,20).
	if got := s.LastWindowEndCovering(12); got != 20 {
		t.Errorf("LastWindowEndCovering(12) = %v, want 20", got)
	}
	if got := s.LastWindowEndCovering(10); got != 20 {
		t.Errorf("LastWindowEndCovering(10) = %v, want 20", got)
	}
	// Consistency with Assign: for any t, max end of assigned windows.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		tt := event.Time(rng.Int63n(500))
		ws := s.Assign(tt)
		maxEnd := ws[len(ws)-1].End
		if got := s.LastWindowEndCovering(tt); got != maxEnd {
			t.Fatalf("LastWindowEndCovering(%v) = %v, want %v", tt, got, maxEnd)
		}
	}
}

func TestExtentPredicates(t *testing.T) {
	e := Extent{10, 20}
	if !e.Contains(10) || e.Contains(20) || e.Contains(9) {
		t.Error("Contains boundary semantics wrong")
	}
	if !e.Overlaps(Extent{19, 30}) || e.Overlaps(Extent{20, 30}) {
		t.Error("Overlaps boundary semantics wrong")
	}
	if !e.Covers(Extent{10, 20}) || e.Covers(Extent{9, 20}) || e.Covers(Extent{10, 21}) {
		t.Error("Covers semantics wrong")
	}
}

func TestQuickAssignContainment(t *testing.T) {
	f := func(rawT int64, rawLen, rawSlide uint16) bool {
		l := int64(rawLen%500) + 1
		sl := int64(rawSlide)%l + 1
		sp := SlidingSpec(event.Time(l), event.Time(sl))
		tt := event.Time(rawT % 100000)
		for _, w := range sp.Assign(tt) {
			if !w.Contains(tt) {
				return false
			}
			if int64(w.Start)%sl != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSessionStateBasic(t *testing.T) {
	s := NewSessionState(5)
	s.Add(10, 1)
	s.Add(12, 2) // merges: within gap
	s.Add(30, 4) // separate session
	if s.Open() != 2 {
		t.Fatalf("open sessions = %d, want 2", s.Open())
	}
	// Watermark 17: session [10,13) closes at 13+5=18 > 17 → nothing.
	if got := s.Harvest(17); len(got) != 0 {
		t.Fatalf("harvest(17) = %v, want none", got)
	}
	got := s.Harvest(18)
	if len(got) != 1 || got[0].Sum != 3 || got[0].Count != 2 || got[0].Extent != (Extent{10, 13}) {
		t.Fatalf("harvest(18) = %+v", got)
	}
	if s.Open() != 1 {
		t.Fatalf("open sessions = %d, want 1", s.Open())
	}
}

func TestSessionMergeAcrossGapBridge(t *testing.T) {
	s := NewSessionState(5)
	s.Add(10, 1)
	s.Add(20, 1) // two sessions: [10,11) and [20,21), gap 9 ≥ 5
	if s.Open() != 2 {
		t.Fatalf("open = %d, want 2", s.Open())
	}
	s.Add(15, 1) // bridges both: 15-10 ≤ gap and 20-15 ≤ gap
	if s.Open() != 1 {
		t.Fatalf("after bridge open = %d, want 1", s.Open())
	}
	got := s.Harvest(100)
	if len(got) != 1 || got[0].Sum != 3 || got[0].Extent != (Extent{10, 21}) {
		t.Fatalf("bridged session = %+v", got)
	}
}

func TestSessionOutOfOrderAdds(t *testing.T) {
	s := NewSessionState(3)
	s.Add(20, 1)
	s.Add(10, 1)
	s.Add(12, 1) // joins the 10-session (diff 2 ≤ 3)
	s.Add(15, 1) // joins it too (diff 3 ≤ 3)
	s.Add(18, 1) // bridges to the 20-session (18-15=3 ≤ 3, 20-18=2 ≤ 3)
	if s.Open() != 1 {
		t.Fatalf("open = %d, want 1 merged", s.Open())
	}
	got := s.Harvest(1000)
	if got[0].Sum != 5 || got[0].Extent != (Extent{10, 21}) {
		t.Fatalf("merged = %+v", got)
	}
}

func TestSessionAgainstBruteForce(t *testing.T) {
	// Reference: sort times, split where gap ≥ Gap.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		gap := event.Time(rng.Int63n(10) + 1)
		s := NewSessionState(gap)
		n := rng.Intn(30) + 1
		times := make([]int64, n)
		for i := range times {
			times[i] = rng.Int63n(100)
			s.Add(event.Time(times[i]), 1)
		}
		got := s.Harvest(event.MaxTime)
		// brute force
		sorted := append([]int64(nil), times...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		var want []ClosedSession
		cur := ClosedSession{Extent: Extent{event.Time(sorted[0]), event.Time(sorted[0] + 1)}, Sum: 1, Count: 1}
		for _, tt := range sorted[1:] {
			if event.Time(tt)-cur.Extent.End < gap {
				cur.Sum++
				cur.Count++
				if event.Time(tt+1) > cur.Extent.End {
					cur.Extent.End = event.Time(tt + 1)
				}
			} else {
				want = append(want, cur)
				cur = ClosedSession{Extent: Extent{event.Time(tt), event.Time(tt + 1)}, Sum: 1, Count: 1}
			}
		}
		want = append(want, cur)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d sessions, want %d (gap=%d, times=%v)", trial, len(got), len(want), gap, times)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d session %d: %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestNextEdgeAll(t *testing.T) {
	specs := []Spec{TumblingSpec(10), SlidingSpec(8, 3), SessionSpec(4)}
	// Edges near t=5: tumbling 10, sliding starts 6, sliding ends 8,11,…
	if got := NextEdgeAll(specs, 5); got != 6 {
		t.Errorf("NextEdgeAll = %v, want 6", got)
	}
	if got := NextEdgeAll([]Spec{SessionSpec(3)}, 5); got != event.MaxTime {
		t.Errorf("session-only NextEdgeAll = %v, want MaxTime", got)
	}
	if got := NextEdgeAll(nil, 5); got != event.MaxTime {
		t.Errorf("empty NextEdgeAll = %v, want MaxTime", got)
	}
}

func TestKindString(t *testing.T) {
	if Tumbling.String() != "tumbling" || Sliding.String() != "sliding" || Session.String() != "session" {
		t.Error("Kind.String mismatch")
	}
}

func TestPrevEdgeExhaustive(t *testing.T) {
	// Brute force: PrevEdge must be the largest edge ≤ t.
	specs := []Spec{TumblingSpec(7), SlidingSpec(10, 3), SlidingSpec(6, 6), SlidingSpec(13, 5)}
	for _, sp := range specs {
		edges := map[event.Time]bool{}
		sl := int64(sp.slide())
		for k := int64(-30); k < 40; k++ {
			edges[event.Time(k*sl)] = true
			edges[event.Time(k*sl+int64(sp.Length))] = true
		}
		for tt := event.Time(-20); tt < 100; tt++ {
			want := event.MinTime
			for e := range edges {
				if e <= tt && e > want {
					want = e
				}
			}
			if got := sp.PrevEdge(tt); got != want {
				t.Fatalf("%v PrevEdge(%v) = %v, want %v", sp, tt, got, want)
			}
		}
	}
}

func TestPrevNextEdgeAdjoint(t *testing.T) {
	// NextEdge(PrevEdge(t)) > t ≥ PrevEdge(t) for any t on an edge-free
	// point; and PrevEdgeAll/NextEdgeAll bracket t.
	specs := []Spec{TumblingSpec(9), SlidingSpec(12, 5)}
	for tt := event.Time(0); tt < 120; tt++ {
		lo := PrevEdgeAll(specs, tt)
		hi := NextEdgeAll(specs, tt)
		if lo > tt || hi <= tt {
			t.Fatalf("edges do not bracket t=%v: [%v, %v)", tt, lo, hi)
		}
		if lo == event.MinTime || hi == event.MaxTime {
			t.Fatalf("time-based specs must produce finite edges at t=%v", tt)
		}
	}
	if got := PrevEdgeAll(nil, 5); got != event.MinTime {
		t.Fatalf("empty PrevEdgeAll = %v", got)
	}
	if got := PrevEdgeAll([]Spec{SessionSpec(3)}, 5); got != event.MinTime {
		t.Fatalf("session-only PrevEdgeAll = %v", got)
	}
}
