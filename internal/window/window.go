// Package window implements window semantics for the engine: tumbling,
// sliding, and session windows, plus the event-time edge arithmetic that
// drives AStream's dynamic slicing (paper §3.1.3).
//
// Time windows are epoch-aligned half-open intervals: window k of a spec with
// slide s and length l is [k*s, k*s+l). A query created at time Ta needs no
// special window alignment — tuples before Ta never carry the query's bit in
// their query-set, so early windows simply contain nothing for it.
//
// Session windows are data-driven per key: a session extends while
// consecutive tuples arrive within Gap of each other.
package window

import (
	"fmt"

	"astream/internal/event"
)

// Kind discriminates window types.
type Kind uint8

const (
	// Tumbling windows partition time into consecutive fixed intervals.
	Tumbling Kind = iota
	// Sliding windows of Length advance by Slide; a tuple belongs to
	// ⌈Length/Slide⌉ windows.
	Sliding
	// Session windows group tuples separated by gaps smaller than Gap.
	Session
)

func (k Kind) String() string {
	switch k {
	case Tumbling:
		return "tumbling"
	case Sliding:
		return "sliding"
	case Session:
		return "session"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Spec describes one query's window.
type Spec struct {
	Kind   Kind
	Length event.Time // RANGE in the paper's SQL templates
	Slide  event.Time // SLICE in the paper's SQL templates
	Gap    event.Time // session gap
}

// TumblingSpec builds a tumbling window spec.
func TumblingSpec(length event.Time) Spec {
	return Spec{Kind: Tumbling, Length: length, Slide: length}
}

// SlidingSpec builds a sliding window spec.
func SlidingSpec(length, slide event.Time) Spec {
	return Spec{Kind: Sliding, Length: length, Slide: slide}
}

// SessionSpec builds a session window spec.
func SessionSpec(gap event.Time) Spec {
	return Spec{Kind: Session, Gap: gap}
}

// Validate checks the spec's invariants.
func (s Spec) Validate() error {
	switch s.Kind {
	case Tumbling:
		if s.Length <= 0 {
			return fmt.Errorf("window: tumbling length %v must be positive", s.Length)
		}
		if s.Slide != 0 && s.Slide != s.Length {
			return fmt.Errorf("window: tumbling slide must equal length")
		}
	case Sliding:
		if s.Length <= 0 {
			return fmt.Errorf("window: sliding length %v must be positive", s.Length)
		}
		if s.Slide <= 0 || s.Slide > s.Length {
			return fmt.Errorf("window: sliding slide %v must be in (0, length]", s.Slide)
		}
	case Session:
		if s.Gap <= 0 {
			return fmt.Errorf("window: session gap %v must be positive", s.Gap)
		}
	default:
		return fmt.Errorf("window: unknown kind %d", s.Kind)
	}
	return nil
}

// IsTimeBased reports whether the window is tumbling or sliding.
func (s Spec) IsTimeBased() bool { return s.Kind == Tumbling || s.Kind == Sliding }

func (s Spec) String() string {
	switch s.Kind {
	case Session:
		return fmt.Sprintf("session(gap=%d)", int64(s.Gap))
	case Tumbling:
		return fmt.Sprintf("tumbling(%d)", int64(s.Length))
	default:
		return fmt.Sprintf("sliding(%d/%d)", int64(s.Length), int64(s.Slide))
	}
}

// slide returns the effective slide (tumbling ⇒ length).
func (s Spec) slide() event.Time {
	if s.Kind == Tumbling || s.Slide == 0 {
		return s.Length
	}
	return s.Slide
}

// Extent is a half-open event-time interval [Start, End).
type Extent struct {
	Start, End event.Time
}

// Contains reports whether t ∈ [Start, End).
func (e Extent) Contains(t event.Time) bool { return t >= e.Start && t < e.End }

// Overlaps reports whether the two extents intersect.
func (e Extent) Overlaps(o Extent) bool { return e.Start < o.End && o.Start < e.End }

// Covers reports whether o ⊆ e.
func (e Extent) Covers(o Extent) bool { return e.Start <= o.Start && o.End <= e.End }

func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", int64(e.Start), int64(e.End)) }

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Assign returns the windows containing event-time t, in ascending start
// order. Only valid for time-based specs.
func (s Spec) Assign(t event.Time) []Extent {
	sl := int64(s.slide())
	l := int64(s.Length)
	// Last window starting at or before t.
	lastStart := floorDiv(int64(t), sl) * sl
	var out []Extent
	for start := lastStart; start > int64(t)-l; start -= sl {
		out = append(out, Extent{Start: event.Time(start), End: event.Time(start + l)})
	}
	// Reverse to ascending start order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// WindowsEndingIn returns the windows whose end lies in (lo, hi], ascending.
// Shared operators use this to find windows to trigger when the watermark
// advances from lo to hi.
func (s Spec) WindowsEndingIn(lo, hi event.Time) []Extent {
	sl := int64(s.slide())
	l := int64(s.Length)
	// Window ends are k*sl + l. Find smallest end > lo.
	kLo := floorDiv(int64(lo)-l, sl) + 1
	var out []Extent
	for k := kLo; k*sl+l <= int64(hi); k++ {
		out = append(out, Extent{Start: event.Time(k * sl), End: event.Time(k*sl + l)})
	}
	return out
}

// NextEdge returns the smallest window boundary (window start or end)
// strictly greater than t. Slicing cuts the stream at every edge of every
// active query, so slices never straddle a window boundary.
func (s Spec) NextEdge(t event.Time) event.Time {
	sl := int64(s.slide())
	l := int64(s.Length)
	// Next start > t.
	ns := (floorDiv(int64(t), sl) + 1) * sl
	// Next end > t: ends at k*sl + l.
	ne := (floorDiv(int64(t)-l, sl)+1)*sl + l
	if ne <= int64(t) {
		ne += sl
	}
	if ns < ne {
		return event.Time(ns)
	}
	return event.Time(ne)
}

// PrevEdge returns the largest window boundary (start or end) less than or
// equal to t.
func (s Spec) PrevEdge(t event.Time) event.Time {
	sl := int64(s.slide())
	l := int64(s.Length)
	ps := floorDiv(int64(t), sl) * sl
	pe := floorDiv(int64(t)-l, sl)*sl + l
	if pe > ps {
		return event.Time(pe)
	}
	return event.Time(ps)
}

// PrevEdgeAll returns the largest edge ≤ t over all time-based specs, or
// event.MinTime when none apply.
func PrevEdgeAll(specs []Spec, t event.Time) event.Time {
	prev := event.MinTime
	for _, sp := range specs {
		if !sp.IsTimeBased() {
			continue
		}
		if e := sp.PrevEdge(t); e > prev {
			prev = e
		}
	}
	return prev
}

// LastWindowEndCovering returns the end of the last window that contains any
// part of [sliceStart, sliceStart+1); i.e. how long a slice beginning at
// sliceStart must be retained for this spec. For a slice [a,b) pass a.
func (s Spec) LastWindowEndCovering(sliceStart event.Time) event.Time {
	sl := int64(s.slide())
	l := int64(s.Length)
	// Last window with start ≤ sliceStart ends at that start + l.
	lastStart := floorDiv(int64(sliceStart), sl) * sl
	return event.Time(lastStart + l)
}
