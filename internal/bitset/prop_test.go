package bitset

import (
	"math/rand"
	"testing"
)

// spillProbe is a bit index far above every slot the property tests touch;
// setting and clearing it forces a set onto the spilled representation
// without changing its contents (trim keeps spill non-nil).
const spillProbe = 1 << 12

// forceSpill returns a semantically identical copy of b whose backing is the
// spilled []uint64 representation.
func forceSpill(t *testing.T, b Bits) Bits {
	t.Helper()
	c := b.Clone()
	c.Set(spillProbe)
	c.Clear(spillProbe)
	if c.spill == nil {
		t.Fatal("forceSpill: set did not spill")
	}
	return c
}

// randBits builds a random set. width bounds the bit indexes, so widths ≤ 64
// exercise the inline fast path and larger widths the spill path; the
// boundary itself (63, 64, 65) is hit by the callers' width choices.
func randBits(rng *rand.Rand, width int) Bits {
	var b Bits
	n := rng.Intn(width + 1)
	for i := 0; i < n; i++ {
		b.Set(rng.Intn(width))
	}
	return b
}

// agree fails unless a and b are observably identical through every query
// method, regardless of representation.
func agree(t *testing.T, ctx string, a, b Bits) {
	t.Helper()
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("%s: Equal disagrees: %s vs %s", ctx, a, b)
	}
	if a.Key() != b.Key() {
		t.Fatalf("%s: Key disagrees: %v vs %v", ctx, a.Key(), b.Key())
	}
	if a.Count() != b.Count() || a.Len() != b.Len() || a.IsEmpty() != b.IsEmpty() {
		t.Fatalf("%s: Count/Len/IsEmpty disagree: %s vs %s", ctx, a, b)
	}
	if a.String() != b.String() {
		t.Fatalf("%s: String disagrees: %q vs %q", ctx, a, b)
	}
	for i := -1; i < 3*wordBits; i++ {
		if a.Test(i) != b.Test(i) {
			t.Fatalf("%s: Test(%d) disagrees", ctx, i)
		}
		if a.NextSet(i) != b.NextSet(i) {
			t.Fatalf("%s: NextSet(%d) disagrees: %d vs %d", ctx, i, a.NextSet(i), b.NextSet(i))
		}
	}
}

// TestPropInlineSpillMutations drives the same random mutation sequence
// through an unconstrained set (free to stay inline) and a forced-spill twin,
// checking after every step that the two representations remain observably
// identical. Indexes concentrate around the 64-bit inline boundary so
// spill-in/spill-out transitions happen constantly.
func TestPropInlineSpillMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	idx := func() int {
		// Mostly near the boundary, sometimes far beyond it.
		switch rng.Intn(4) {
		case 0:
			return 56 + rng.Intn(16) // straddles 64
		case 1:
			return rng.Intn(64)
		default:
			return rng.Intn(192)
		}
	}
	for trial := 0; trial < 100; trial++ {
		var free Bits
		spilled := forceSpill(t, Bits{})
		for step := 0; step < 150; step++ {
			other := randBits(rng, 128)
			otherSpilled := forceSpill(t, other)
			switch rng.Intn(8) {
			case 0:
				i := idx()
				free.Set(i)
				spilled.Set(i)
			case 1:
				i := idx()
				free.Clear(i)
				spilled.Clear(i)
			case 2:
				i := idx()
				v := rng.Intn(2) == 0
				free.SetTo(i, v)
				spilled.SetTo(i, v)
			case 3:
				free.AndInPlace(other)
				spilled.AndInPlace(otherSpilled)
			case 4:
				free.OrInPlace(other)
				spilled.OrInPlace(otherSpilled)
			case 5:
				free.AndNotInPlace(other)
				spilled.AndNotInPlace(otherSpilled)
			case 6:
				free.CopyFrom(other)
				spilled.CopyFrom(otherSpilled)
			case 7:
				free.Reset()
				spilled.Reset()
			}
			if spilled.spill == nil {
				t.Fatalf("trial %d step %d: forced-spill twin reverted to inline", trial, step)
			}
			agree(t, "mutation", free, spilled)
		}
	}
}

// TestPropBinaryOpsRepresentation checks every binary operation across all
// four inline/spill operand combinations: each must produce a result Equal to
// the one computed on the inline-preferred operands, and must match a
// bit-by-bit reference.
func TestPropBinaryOpsRepresentation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	widths := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for trial := 0; trial < 400; trial++ {
		a := randBits(rng, widths[rng.Intn(len(widths))])
		b := randBits(rng, widths[rng.Intn(len(widths))])
		as := forceSpill(t, a)
		bs := forceSpill(t, b)

		// Bit-by-bit references.
		maxLen := a.Len()
		if b.Len() > maxLen {
			maxLen = b.Len()
		}
		var refAnd, refOr, refAndNot Bits
		refIntersects := false
		refCountAnd := 0
		for i := 0; i < maxLen; i++ {
			ta, tb := a.Test(i), b.Test(i)
			if ta && tb {
				refAnd.Set(i)
				refIntersects = true
				refCountAnd++
			}
			if ta || tb {
				refOr.Set(i)
			}
			if ta && !tb {
				refAndNot.Set(i)
			}
		}

		type pair struct {
			name string
			x, y Bits
		}
		for _, p := range []pair{
			{"inline/inline", a, b},
			{"inline/spill", a, bs},
			{"spill/inline", as, b},
			{"spill/spill", as, bs},
		} {
			if got := p.x.And(p.y); !got.Equal(refAnd) {
				t.Fatalf("%s: And = %s, want %s (a=%s b=%s)", p.name, got, refAnd, a, b)
			}
			if got := p.x.Or(p.y); !got.Equal(refOr) {
				t.Fatalf("%s: Or = %s, want %s (a=%s b=%s)", p.name, got, refOr, a, b)
			}
			if got := p.x.AndNot(p.y); !got.Equal(refAndNot) {
				t.Fatalf("%s: AndNot = %s, want %s (a=%s b=%s)", p.name, got, refAndNot, a, b)
			}
			if got := p.x.Intersects(p.y); got != refIntersects {
				t.Fatalf("%s: Intersects = %v, want %v (a=%s b=%s)", p.name, got, refIntersects, a, b)
			}
			if got := p.x.CountAnd(p.y); got != refCountAnd {
				t.Fatalf("%s: CountAnd = %d, want %d (a=%s b=%s)", p.name, got, refCountAnd, a, b)
			}
			var dst Bits
			p.x.AndInto(p.y, &dst)
			if !dst.Equal(refAnd) {
				t.Fatalf("%s: AndInto = %s, want %s", p.name, dst, refAnd)
			}
			// Reused (already spilled) destination must agree too.
			dstReused := forceSpill(t, Bits{})
			p.x.AndInto(p.y, &dstReused)
			if !dstReused.Equal(refAnd) {
				t.Fatalf("%s: AndInto(reused dst) = %s, want %s", p.name, dstReused, refAnd)
			}
		}
	}
}

// TestPropKeyEqualIffEqual checks the Key contract: two sets — in any mix of
// representations and backing lengths — have equal Keys exactly when Equal
// reports true, and Key.Less is a strict total order consistent with it.
func TestPropKeyEqualIffEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	widths := []int{0, 1, 64, 65, 128, 130}
	var sets []Bits
	for trial := 0; trial < 300; trial++ {
		b := randBits(rng, widths[rng.Intn(len(widths))])
		sets = append(sets, b, forceSpill(t, b))
	}
	for i := range sets {
		for j := range sets {
			ki, kj := sets[i].Key(), sets[j].Key()
			if eq := sets[i].Equal(sets[j]); (ki == kj) != eq {
				t.Fatalf("Key equality (%v) disagrees with Equal (%v): %s vs %s",
					ki == kj, eq, sets[i], sets[j])
			}
			switch {
			case ki == kj:
				if ki.Less(kj) || kj.Less(ki) {
					t.Fatalf("equal keys ordered: %v", ki)
				}
			case ki.Less(kj) == kj.Less(ki):
				t.Fatalf("Less not antisymmetric for %v, %v", ki, kj)
			}
		}
	}
}

// TestPropKeyForms pins the two Key encodings to their representation rule:
// W-form for at most one significant word, S-form (matching AppendKeyBytes)
// beyond — so the forms can never collide, and the scratch-buffer lookup path
// (KeyWord + AppendKeyBytes) always lands on the same map entry as Key().
func TestPropKeyForms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		b := randBits(rng, 1+rng.Intn(160))
		if rng.Intn(2) == 0 {
			b = forceSpill(t, b)
		}
		k := b.Key()
		w, ok := b.KeyWord()
		if wide := b.Len() > wordBits; wide == ok {
			t.Fatalf("KeyWord ok=%v for Len=%d (%s)", ok, b.Len(), b)
		}
		if ok {
			if k.S != "" || k.W != w {
				t.Fatalf("narrow set key %+v mismatches KeyWord %d (%s)", k, w, b)
			}
		} else {
			if k.W != 0 || k.S == "" {
				t.Fatalf("wide set key %+v not in S-form (%s)", k, b)
			}
			if got := string(b.AppendKeyBytes(nil)); got != k.S {
				t.Fatalf("AppendKeyBytes %x != Key.S %x", got, k.S)
			}
			buf := b.AppendKeyBytes(make([]byte, 0, 64))
			if string(buf) != k.S {
				t.Fatalf("AppendKeyBytes with scratch %x != Key.S %x", buf, k.S)
			}
		}
	}
}

// TestPropWordsRoundTrip checks FromWords(b.Words()) reproduces any set, with
// or without trailing-zero padding in the input words.
func TestPropWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		b := randBits(rng, 1+rng.Intn(200))
		if rng.Intn(2) == 0 {
			b = forceSpill(t, b)
		}
		w := b.Words()
		if !FromWords(w).Equal(b) {
			t.Fatalf("FromWords(Words) != original for %s", b)
		}
		padded := append(append([]uint64{}, w...), 0, 0, 0)
		if !FromWords(padded).Equal(b) {
			t.Fatalf("FromWords(padded Words) != original for %s", b)
		}
		if s, ok := Parse(b.String()); !ok || !s.Equal(b) {
			t.Fatalf("Parse(String) != original for %s", b)
		}
	}
}
