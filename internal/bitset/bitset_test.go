package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var b Bits
	if !b.IsEmpty() {
		t.Fatal("zero value should be empty")
	}
	if b.Count() != 0 || b.Len() != 0 {
		t.Fatalf("Count=%d Len=%d, want 0,0", b.Count(), b.Len())
	}
	if b.Test(0) || b.Test(1000) {
		t.Fatal("no bit should be set in zero value")
	}
	if got := b.String(); got != "0" {
		t.Fatalf("String() = %q, want \"0\"", got)
	}
	if b.NextSet(0) != -1 {
		t.Fatal("NextSet on empty should be -1")
	}
}

func TestSetClearTest(t *testing.T) {
	var b Bits
	idx := []int{0, 1, 63, 64, 65, 127, 128, 300, 1023}
	for _, i := range idx {
		b.Set(i)
	}
	for _, i := range idx {
		if !b.Test(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if b.Count() != len(idx) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(idx))
	}
	if b.Len() != 1024 {
		t.Fatalf("Len = %d, want 1024", b.Len())
	}
	for _, i := range idx {
		b.Clear(i)
		if b.Test(i) {
			t.Fatalf("bit %d should be cleared", i)
		}
	}
	if !b.IsEmpty() {
		t.Fatal("should be empty after clearing all")
	}
}

func TestClearBeyondLengthNoop(t *testing.T) {
	b := FromIndexes(3)
	b.Clear(1000)
	if !b.Equal(FromIndexes(3)) {
		t.Fatal("clearing out-of-range bit changed the set")
	}
}

func TestSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) should panic")
		}
	}()
	var b Bits
	b.Set(-1)
}

func TestPaperExampleFigure3(t *testing.T) {
	// Figure 3a: t1=10, t2=10, t3=01, t4=11 (slot 0 leftmost).
	t1, _ := Parse("10")
	t2, _ := Parse("10")
	t3, _ := Parse("01")
	t4, _ := Parse("11")
	if t2.Intersects(t3) {
		t.Fatal("t2 and t3 share no query")
	}
	if !t4.Intersects(t2) || !t4.Intersects(t1) || !t4.Intersects(t3) {
		t.Fatal("t4 shares Q1 with t1,t2 and Q2 with t3")
	}
	// Joining t7 (query-set 11) with t4 (11) through changelog-set 10
	// yields 10 (paper end of §2.1.2).
	t7, _ := Parse("11")
	cl, _ := Parse("10")
	got := t7.And(t4).And(cl)
	want, _ := Parse("10")
	if !got.Equal(want) {
		t.Fatalf("t7&t4&cl = %s, want %s", got, want)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	cases := []string{"0", "1", "10", "01", "0010", "101", "11111111"}
	for _, s := range cases {
		b, ok := Parse(s)
		if !ok {
			t.Fatalf("Parse(%q) failed", s)
		}
		// String trims trailing zeros (Len-based), so compare set equality.
		b2, _ := Parse(b.String())
		if !b.Equal(b2) {
			t.Fatalf("round trip of %q lost bits: %s vs %s", s, b, b2)
		}
	}
	if _, ok := Parse("10x1"); ok {
		t.Fatal("Parse should reject non-binary characters")
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := FromIndexes(0, 2, 64, 100)
	b := FromIndexes(2, 3, 100, 200)
	and := a.And(b)
	if !and.Equal(FromIndexes(2, 100)) {
		t.Fatalf("And = %v", and.Indexes())
	}
	or := a.Or(b)
	if !or.Equal(FromIndexes(0, 2, 3, 64, 100, 200)) {
		t.Fatalf("Or = %v", or.Indexes())
	}
	diff := a.AndNot(b)
	if !diff.Equal(FromIndexes(0, 64)) {
		t.Fatalf("AndNot = %v", diff.Indexes())
	}
}

func TestInPlaceOpsMatchPure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := randomBits(rng, 256)
		b := randomBits(rng, 256)
		ai := a.Clone()
		ai.AndInPlace(b)
		if !ai.Equal(a.And(b)) {
			t.Fatalf("AndInPlace mismatch: %s vs %s", ai, a.And(b))
		}
		oi := a.Clone()
		oi.OrInPlace(b)
		if !oi.Equal(a.Or(b)) {
			t.Fatalf("OrInPlace mismatch")
		}
		ni := a.Clone()
		ni.AndNotInPlace(b)
		if !ni.Equal(a.AndNot(b)) {
			t.Fatalf("AndNotInPlace mismatch")
		}
	}
}

func TestIntersectsAgainstAnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a := randomBits(rng, 200)
		b := randomBits(rng, 200)
		if a.Intersects(b) != !a.And(b).IsEmpty() {
			t.Fatalf("Intersects disagrees with And: a=%s b=%s", a, b)
		}
		if a.CountAnd(b) != a.And(b).Count() {
			t.Fatalf("CountAnd disagrees with And().Count()")
		}
	}
}

func TestNextSetAndForEach(t *testing.T) {
	b := FromIndexes(1, 63, 64, 130)
	var got []int
	for i := b.NextSet(0); i != -1; i = b.NextSet(i + 1) {
		got = append(got, i)
	}
	want := []int{1, 63, 64, 130}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, want)
		}
	}
	var fe []int
	b.ForEach(func(i int) bool { fe = append(fe, i); return true })
	if len(fe) != len(want) {
		t.Fatalf("ForEach = %v, want %v", fe, want)
	}
	// Early stop.
	n := 0
	b.ForEach(func(i int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("ForEach early stop visited %d, want 2", n)
	}
	if b.NextSet(-5) != 1 {
		t.Fatal("NextSet with negative start should clamp to 0")
	}
}

func TestAllUpTo(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		b := AllUpTo(n)
		if b.Count() != n {
			t.Fatalf("AllUpTo(%d).Count() = %d", n, b.Count())
		}
		if n > 0 && (!b.Test(0) || !b.Test(n-1) || b.Test(n)) {
			t.Fatalf("AllUpTo(%d) boundary bits wrong", n)
		}
	}
}

func TestKeyEqualEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		a := randomBits(rng, 130)
		b := randomBits(rng, 130)
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatalf("Key equality disagrees with Equal: %s vs %s", a, b)
		}
	}
	// Different backing lengths, same bits.
	a := FromWords([]uint64{5, 0, 0})
	b := FromWords([]uint64{5})
	if a.Key() != b.Key() || !a.Equal(b) {
		t.Fatal("trailing zero words must not affect Key or Equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndexes(1, 2, 3)
	c := a.Clone()
	c.Set(100)
	c.Clear(1)
	if !a.Equal(FromIndexes(1, 2, 3)) {
		t.Fatal("mutating clone affected original")
	}
}

func TestReset(t *testing.T) {
	b := FromIndexes(1, 99)
	b.Reset()
	if !b.IsEmpty() {
		t.Fatal("Reset should empty the set")
	}
	b.Set(5)
	if !b.Equal(FromIndexes(5)) {
		t.Fatal("set after Reset misbehaves")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	a := FromIndexes(0, 64, 127)
	b := FromWords(a.Words())
	if !a.Equal(b) {
		t.Fatal("Words/FromWords round trip lost bits")
	}
}

// TestWordAccessors pins Word/WordCount against Words(): the allocation-free
// walk the snapshot encoders use must see exactly the copied view.
func TestWordAccessors(t *testing.T) {
	for _, a := range []Bits{{}, FromIndexes(3), FromIndexes(0, 64, 127), FromIndexes(200)} {
		words := a.Words()
		if got := a.WordCount(); got != len(words) {
			t.Fatalf("WordCount = %d, Words len = %d", got, len(words))
		}
		for i, w := range words {
			if got := a.Word(i); got != w {
				t.Fatalf("Word(%d) = %#x, Words()[%d] = %#x", i, got, i, w)
			}
		}
		if got := a.Word(a.WordCount()); got != 0 {
			t.Fatalf("Word past count = %#x, want 0", got)
		}
	}
}

func randomBits(rng *rand.Rand, maxBit int) Bits {
	var b Bits
	n := rng.Intn(maxBit)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			b.Set(rng.Intn(maxBit))
		}
	}
	return b
}

// --- property-based tests ------------------------------------------------

// genBits adapts random uint64 words into Bits for testing/quick.
type quickBits struct {
	W []uint64
}

func (quickBits) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(4)
	w := make([]uint64, n)
	for i := range w {
		w[i] = r.Uint64() >> uint(r.Intn(64)) // vary density
	}
	return reflect.ValueOf(quickBits{W: w})
}

func TestQuickDeMorgan(t *testing.T) {
	// (a ∪ b) \ c == (a \ c) ∪ (b \ c)
	f := func(qa, qb, qc quickBits) bool {
		a, b, c := FromWords(qa.W), FromWords(qb.W), FromWords(qc.W)
		left := a.Or(b).AndNot(c)
		right := a.AndNot(c).Or(b.AndNot(c))
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndCommutativeAssociative(t *testing.T) {
	f := func(qa, qb, qc quickBits) bool {
		a, b, c := FromWords(qa.W), FromWords(qb.W), FromWords(qc.W)
		if !a.And(b).Equal(b.And(a)) {
			return false
		}
		return a.And(b.And(c)).Equal(a.And(b).And(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrIdempotentAbsorbing(t *testing.T) {
	f := func(qa, qb quickBits) bool {
		a, b := FromWords(qa.W), FromWords(qb.W)
		if !a.Or(a).Equal(a) || !a.And(a).Equal(a) {
			return false
		}
		// absorption: a ∩ (a ∪ b) == a
		return a.And(a.Or(b)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountUnionInclusionExclusion(t *testing.T) {
	f := func(qa, qb quickBits) bool {
		a, b := FromWords(qa.W), FromWords(qb.W)
		return a.Or(b).Count() == a.Count()+b.Count()-a.And(b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIndexesMatchTest(t *testing.T) {
	f := func(qa quickBits) bool {
		a := FromWords(qa.W)
		idx := a.Indexes()
		if len(idx) != a.Count() {
			return false
		}
		for _, i := range idx {
			if !a.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnd64Queries(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomBits(rng, 64)
	y := randomBits(rng, 64)
	x.Set(63)
	y.Set(63)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !x.Intersects(y) {
			b.Fatal("should intersect")
		}
	}
}

func BenchmarkAnd1024Queries(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomBits(rng, 1024)
	y := randomBits(rng, 1024)
	x.Set(1023)
	y.Set(1023)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !x.Intersects(y) {
			b.Fatal("should intersect")
		}
	}
}
