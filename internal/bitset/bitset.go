// Package bitset implements the dynamic bitsets that carry AStream's
// query-sets and changelog-sets (paper §2.1).
//
// A query-set records, for one tuple, which of the currently-registered
// queries are interested in it: bit i is set when the query occupying slot i
// selects the tuple. A changelog-set records which slots survived a workload
// change: bit i is set when slot i holds the same query on both sides of the
// change. Both are plain bit vectors; all shared-operator decisions reduce to
// word-parallel AND/OR operations on them.
//
// # Representation
//
// Bits is a value type with a small-set fast path: sets confined to slots
// [0,64) — every benchmark grid in the paper's evaluation — live in one
// inline uint64 and never touch the heap. Larger sets spill to a []uint64.
// The hot-path operations (And, Or, Intersects, Test, Key) are
// allocation-free on the inline representation, and the *Into/*InPlace
// variants reuse a caller-owned spill so even wide sets stay allocation-free
// in steady state.
//
// The zero value is an empty set. Mutating methods have pointer receivers
// and grow the backing storage on demand; query methods tolerate any length
// difference by treating missing words as zero. Observers never depend on a
// canonical backing length: a spilled set whose high words are zero compares
// Equal (and produces the same Key) as its inline twin.
package bitset

import (
	"math/bits"
	"strings"
)

const wordBits = 64

// Bits is a variable-length bit vector. The zero value is empty and ready to
// use.
//
// Invariant: when spill is non-nil it holds every word of the set
// (least-significant first) and small is zero; when spill is nil the set is
// exactly the 64 bits of small.
type Bits struct {
	small uint64
	spill []uint64
}

// New returns a set with capacity for at least n bits pre-allocated. The set
// is empty; n only sizes the backing storage.
func New(n int) Bits {
	if n <= wordBits {
		return Bits{}
	}
	return Bits{spill: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromWords constructs a set from raw 64-bit words, least-significant word
// first. The slice is copied.
func FromWords(words []uint64) Bits {
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	if n <= 1 {
		var w uint64
		if n == 1 {
			w = words[0]
		}
		return Bits{small: w}
	}
	b := Bits{spill: make([]uint64, n)}
	copy(b.spill, words)
	return b
}

// FromIndexes returns a set with exactly the given bits set.
func FromIndexes(idx ...int) Bits {
	var b Bits
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// nwords returns the number of backing words (not trimmed).
func (b *Bits) nwords() int {
	if b.spill != nil {
		return len(b.spill)
	}
	if b.small != 0 {
		return 1
	}
	return 0
}

// word returns backing word i, reading past the end as zero.
func (b *Bits) word(i int) uint64 {
	if b.spill != nil {
		if i < len(b.spill) {
			return b.spill[i]
		}
		return 0
	}
	if i == 0 {
		return b.small
	}
	return 0
}

// sigWords returns the significant word count (trailing zero words ignored).
func (b *Bits) sigWords() int {
	if b.spill != nil {
		n := len(b.spill)
		for n > 0 && b.spill[n-1] == 0 {
			n--
		}
		return n
	}
	if b.small != 0 {
		return 1
	}
	return 0
}

// spillOut moves an inline set to a spilled backing of at least words words,
// reusing any existing capacity.
func (b *Bits) spillOut(words int) {
	if b.spill != nil {
		if len(b.spill) >= words {
			return
		}
		if cap(b.spill) >= words {
			old := len(b.spill)
			b.spill = b.spill[:words]
			for i := old; i < words; i++ {
				b.spill[i] = 0
			}
			return
		}
		//lint:ignore hotalloc one-time spill growth; steady state reuses the spill capacity
		nw := make([]uint64, words)
		copy(nw, b.spill)
		b.spill = nw
		return
	}
	//lint:ignore hotalloc one-time inline-to-spill transition; steady state stays inline or reuses the spill
	nw := make([]uint64, words)
	nw[0] = b.small
	b.small = 0
	b.spill = nw
}

// trim drops trailing zero words of a spilled backing (capacity retained).
func (b *Bits) trim() {
	if b.spill == nil {
		return
	}
	n := len(b.spill)
	for n > 0 && b.spill[n-1] == 0 {
		n--
	}
	b.spill = b.spill[:n]
}

// Words returns a copy of the backing words, least-significant first, with
// trailing zero words removed.
func (b Bits) Words() []uint64 {
	n := b.sigWords()
	w := make([]uint64, n)
	for i := 0; i < n; i++ {
		w[i] = b.word(i)
	}
	return w
}

// WordCount returns the number of significant backing words (trailing zero
// words ignored) — the length Words() would return, without the copy.
func (b Bits) WordCount() int { return b.sigWords() }

// Word returns the i-th backing word, least-significant first; indexes at or
// beyond WordCount() return zero. With WordCount this lets encoders walk the
// set without the per-call allocation Words() pays for its copy.
func (b Bits) Word(i int) uint64 { return b.word(i) }

// Set sets bit i. Negative indexes panic.
func (b *Bits) Set(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	if b.spill == nil && i < wordBits {
		b.small |= 1 << uint(i)
		return
	}
	w := i / wordBits
	b.spillOut(w + 1)
	b.spill[w] |= 1 << uint(i%wordBits)
}

// Clear clears bit i. Clearing a bit beyond the current length is a no-op.
func (b *Bits) Clear(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	if b.spill == nil {
		if i < wordBits {
			b.small &^= 1 << uint(i)
		}
		return
	}
	w := i / wordBits
	if w >= len(b.spill) {
		return
	}
	b.spill[w] &^= 1 << uint(i%wordBits)
	b.trim()
}

// SetTo sets bit i to v.
func (b *Bits) SetTo(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// Test reports whether bit i is set. Out-of-range bits read as false.
func (b Bits) Test(i int) bool {
	if i < 0 {
		return false
	}
	if b.spill == nil {
		return i < wordBits && b.small&(1<<uint(i)) != 0
	}
	w := i / wordBits
	if w >= len(b.spill) {
		return false
	}
	return b.spill[w]&(1<<uint(i%wordBits)) != 0
}

// IsEmpty reports whether no bit is set.
func (b Bits) IsEmpty() bool {
	if b.spill == nil {
		return b.small == 0
	}
	for _, w := range b.spill {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	if b.spill == nil {
		return bits.OnesCount64(b.small)
	}
	n := 0
	for _, w := range b.spill {
		n += bits.OnesCount64(w)
	}
	return n
}

// Len returns one past the index of the highest set bit, or 0 for an empty
// set.
func (b Bits) Len() int {
	for i := b.nwords() - 1; i >= 0; i-- {
		if w := b.word(i); w != 0 {
			return i*wordBits + bits.Len64(w)
		}
	}
	return 0
}

// Clone returns an independent copy. Inline and single-significant-word sets
// clone without allocating.
func (b Bits) Clone() Bits {
	n := b.sigWords()
	if n <= 1 {
		return Bits{small: b.word(0)}
	}
	//lint:ignore hotalloc clones of spilled (multi-word) sets must copy; inline sets take the branch above
	out := Bits{spill: make([]uint64, n)}
	copy(out.spill, b.spill)
	return out
}

// CopyFrom replaces b's contents with o's, reusing b's spill capacity. This
// is the scratch-bitset primitive: a long-lived scratch CopyFrom'd per
// operation never allocates once its spill has grown to the workload's width.
//
//lint:hotpath
func (b *Bits) CopyFrom(o Bits) {
	n := o.sigWords()
	if n <= 1 {
		if b.spill != nil {
			b.spill = b.spill[:0]
			// Keep the spilled representation (capacity retained) but use
			// word 0 via spill so the invariant "spill non-nil => small
			// unused" holds.
			if n == 1 {
				//lint:ignore hotalloc appends into retained spill capacity (len 0 -> 1); never grows
				b.spill = append(b.spill, o.word(0))
			}
			return
		}
		b.small = o.word(0)
		return
	}
	if b.spill == nil || cap(b.spill) < n {
		//lint:ignore hotalloc one-time growth to the workload's width; scratch bitsets reuse it after
		b.spill = make([]uint64, n)
	} else {
		b.spill = b.spill[:n]
	}
	b.small = 0
	copy(b.spill, o.spill[:n])
}

// Reset clears every bit while retaining the backing storage.
func (b *Bits) Reset() {
	b.small = 0
	if b.spill != nil {
		b.spill = b.spill[:0]
	}
}

// Equal reports whether b and o contain the same bits, regardless of backing
// length or representation.
func (b Bits) Equal(o Bits) bool {
	if b.spill == nil && o.spill == nil {
		return b.small == o.small
	}
	n := b.nwords()
	if m := o.nwords(); m > n {
		n = m
	}
	for i := 0; i < n; i++ {
		if b.word(i) != o.word(i) {
			return false
		}
	}
	return true
}

// And returns the intersection b ∩ o. This is the core query-set operation:
// two tuples are joined only when their query-sets intersect (paper §2.1.1).
// When either operand fits one word the result is inline and no allocation
// happens.
func (b Bits) And(o Bits) Bits {
	if b.spill == nil || o.spill == nil {
		return Bits{small: b.word(0) & o.word(0)}
	}
	n := len(b.spill)
	if len(o.spill) < n {
		n = len(o.spill)
	}
	for n > 0 && b.spill[n-1]&o.spill[n-1] == 0 {
		n--
	}
	if n <= 1 {
		return Bits{small: b.word(0) & o.word(0)}
	}
	out := Bits{spill: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.spill[i] = b.spill[i] & o.spill[i]
	}
	return out
}

// AndInPlace replaces b with b ∩ o, avoiding allocation.
func (b *Bits) AndInPlace(o Bits) {
	if b.spill == nil {
		b.small &= o.word(0)
		return
	}
	n := len(b.spill)
	if m := o.nwords(); m < n {
		n = m
	}
	for i := 0; i < n; i++ {
		b.spill[i] &= o.word(i)
	}
	for i := n; i < len(b.spill); i++ {
		b.spill[i] = 0
	}
	b.trim()
}

// AndInto stores b ∩ o into dst, reusing dst's backing. dst must not alias
// b or o's spill.
//
//lint:hotpath
func (b Bits) AndInto(o Bits, dst *Bits) {
	dst.CopyFrom(b)
	dst.AndInPlace(o)
}

// Or returns the union b ∪ o.
func (b Bits) Or(o Bits) Bits {
	if b.spill == nil && o.spill == nil {
		return Bits{small: b.small | o.small}
	}
	n := b.sigWords()
	if m := o.sigWords(); m > n {
		n = m
	}
	if n <= 1 {
		return Bits{small: b.word(0) | o.word(0)}
	}
	out := Bits{spill: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.spill[i] = b.word(i) | o.word(i)
	}
	return out
}

// OrInPlace replaces b with b ∪ o.
func (b *Bits) OrInPlace(o Bits) {
	n := o.sigWords()
	if b.spill == nil && n <= 1 {
		b.small |= o.word(0)
		return
	}
	if n > b.nwords() {
		b.spillOut(n)
	}
	for i := 0; i < n; i++ {
		b.spill[i] |= o.word(i)
	}
}

// AndNot returns b \ o.
func (b Bits) AndNot(o Bits) Bits {
	n := b.sigWords()
	if n <= 1 {
		return Bits{small: b.word(0) &^ o.word(0)}
	}
	out := Bits{spill: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.spill[i] = b.spill[i] &^ o.word(i)
	}
	out.trim()
	if len(out.spill) <= 1 {
		return Bits{small: out.word(0)}
	}
	return out
}

// AndNotInPlace replaces b with b \ o.
func (b *Bits) AndNotInPlace(o Bits) {
	if b.spill == nil {
		b.small &^= o.word(0)
		return
	}
	for i := range b.spill {
		b.spill[i] &^= o.word(i)
	}
	b.trim()
}

// Intersects reports whether b ∩ o is non-empty without materialising the
// intersection. Shared operators use this as the cheap "do these tuples share
// at least one query?" test.
func (b Bits) Intersects(o Bits) bool {
	if b.spill == nil || o.spill == nil {
		return b.word(0)&o.word(0) != 0
	}
	n := len(b.spill)
	if len(o.spill) < n {
		n = len(o.spill)
	}
	for i := 0; i < n; i++ {
		if b.spill[i]&o.spill[i] != 0 {
			return true
		}
	}
	return false
}

// CountAnd returns |b ∩ o| without materialising the intersection.
func (b Bits) CountAnd(o Bits) int {
	if b.spill == nil || o.spill == nil {
		return bits.OnesCount64(b.word(0) & o.word(0))
	}
	n := len(b.spill)
	if len(o.spill) < n {
		n = len(o.spill)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b.spill[i] & o.spill[i])
	}
	return c
}

// NextSet returns the index of the first set bit at or after i, or -1 when no
// such bit exists.
func (b Bits) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	w := i / wordBits
	n := b.nwords()
	if w >= n {
		return -1
	}
	word := b.word(w) >> uint(i%wordBits)
	if word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < n; w++ {
		if bw := b.word(w); bw != 0 {
			return w*wordBits + bits.TrailingZeros64(bw)
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order. fn returning false
// stops the iteration.
func (b Bits) ForEach(fn func(i int) bool) {
	n := b.nwords()
	for wi := 0; wi < n; wi++ {
		w := b.word(wi)
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Indexes returns the set bit positions in ascending order.
func (b Bits) Indexes() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Key is a comparable, canonical identity of a bit set, usable directly as a
// map key. Single-word sets (the common case: ≤64 query slots) are carried
// in W with S empty — computing such a key allocates nothing. Wider sets
// carry their little-endian word bytes in S with W zero; the two forms can
// never collide because S is only used when at least two words are
// significant. Two sets have equal Keys iff Equal reports true.
type Key struct {
	W uint64
	S string
}

// Less orders keys: single-word keys first by word value, then multi-word
// keys by byte string. Any fixed total order works for the determinism
// contract; this one is cheap.
func (k Key) Less(o Key) bool {
	if (k.S == "") != (o.S == "") {
		return k.S == ""
	}
	if k.S == "" {
		return k.W < o.W
	}
	return k.S < o.S
}

// Key returns the set's canonical comparable key. Allocation-free for sets
// confined to one significant word; wider sets build a string (use KeyWord +
// AppendKeyBytes for allocation-free lookups against wide sets).
//
//lint:hotpath
func (b Bits) Key() Key {
	if w, ok := b.KeyWord(); ok {
		return Key{W: w}
	}
	//lint:ignore hotalloc materialized keys are stored (cold, first-seen group); lookups use KeyWord/AppendKeyBytes
	return Key{S: string(b.AppendKeyBytes(nil))}
}

// KeyWord returns the single-word key and true when the set has at most one
// significant word (allocation-free), or (0, false) when the set is wider.
func (b Bits) KeyWord() (uint64, bool) {
	if b.spill == nil {
		return b.small, true
	}
	n := b.sigWords()
	if n <= 1 {
		return b.word(0), true
	}
	return 0, false
}

// AppendKeyBytes appends the canonical multi-word key encoding (significant
// words, little-endian) to dst and returns it. Only meaningful when KeyWord
// reported false; callers use it with dst scratch for allocation-free
// map[string] lookups via the compiler's m[string(buf)] optimization.
func (b Bits) AppendKeyBytes(dst []byte) []byte {
	n := b.sigWords()
	for i := 0; i < n; i++ {
		w := b.word(i)
		//lint:ignore hotalloc appends into caller-owned scratch; grows only until the scratch fits the widest set
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// String renders the set in the paper's convention: slot 0 (query index 1)
// leftmost. An empty set renders as "0".
func (b Bits) String() string {
	n := b.Len()
	if n == 0 {
		return "0"
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if b.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse parses the String representation (slot 0 leftmost). Characters other
// than '0' and '1' are rejected.
func Parse(s string) (Bits, bool) {
	var b Bits
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			b.Set(i)
		case '0':
		default:
			return Bits{}, false
		}
	}
	return b, true
}

// AllUpTo returns a set with bits [0,n) all set. Changelog-sets start from
// this "everything unchanged" state before deletions and reuses unset bits.
func AllUpTo(n int) Bits {
	if n <= 0 {
		return Bits{}
	}
	if n <= wordBits {
		return Bits{small: ^uint64(0) >> uint(wordBits-n)}
	}
	b := Bits{spill: make([]uint64, (n+wordBits-1)/wordBits)}
	for w := 0; w < n/wordBits; w++ {
		b.spill[w] = ^uint64(0)
	}
	if rem := n % wordBits; rem > 0 {
		b.spill[n/wordBits] = (1 << uint(rem)) - 1
	}
	return b
}
