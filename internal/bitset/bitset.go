// Package bitset implements the dynamic bitsets that carry AStream's
// query-sets and changelog-sets (paper §2.1).
//
// A query-set records, for one tuple, which of the currently-registered
// queries are interested in it: bit i is set when the query occupying slot i
// selects the tuple. A changelog-set records which slots survived a workload
// change: bit i is set when slot i holds the same query on both sides of the
// change. Both are plain bit vectors; all shared-operator decisions reduce to
// word-parallel AND/OR operations on them.
//
// Bits is a value type backed by a []uint64. The zero value is an empty set.
// Mutating methods have pointer receivers and grow the backing slice on
// demand; query methods tolerate any length difference by treating missing
// words as zero.
package bitset

import (
	"math/bits"
	"strings"
)

const wordBits = 64

// Bits is a variable-length bit vector. The zero value is empty and ready to
// use.
type Bits struct {
	words []uint64
}

// New returns a set with capacity for at least n bits pre-allocated. The set
// is empty; n only sizes the backing storage.
func New(n int) Bits {
	if n <= 0 {
		return Bits{}
	}
	return Bits{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromWords constructs a set from raw 64-bit words, least-significant word
// first. The slice is copied.
func FromWords(words []uint64) Bits {
	b := Bits{words: make([]uint64, len(words))}
	copy(b.words, words)
	b.trim()
	return b
}

// FromIndexes returns a set with exactly the given bits set.
func FromIndexes(idx ...int) Bits {
	var b Bits
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Words returns a copy of the backing words, least-significant first, with
// trailing zero words removed.
func (b Bits) Words() []uint64 {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	for len(w) > 0 && w[len(w)-1] == 0 {
		w = w[:len(w)-1]
	}
	return w
}

func (b *Bits) grow(words int) {
	if len(b.words) >= words {
		return
	}
	if cap(b.words) >= words {
		b.words = b.words[:words]
		return
	}
	nw := make([]uint64, words)
	copy(nw, b.words)
	b.words = nw
}

func (b *Bits) trim() {
	for len(b.words) > 0 && b.words[len(b.words)-1] == 0 {
		b.words = b.words[:len(b.words)-1]
	}
}

// Set sets bit i. Negative indexes panic.
func (b *Bits) Set(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	w := i / wordBits
	b.grow(w + 1)
	b.words[w] |= 1 << uint(i%wordBits)
}

// Clear clears bit i. Clearing a bit beyond the current length is a no-op.
func (b *Bits) Clear(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	w := i / wordBits
	if w >= len(b.words) {
		return
	}
	b.words[w] &^= 1 << uint(i%wordBits)
	b.trim()
}

// SetTo sets bit i to v.
func (b *Bits) SetTo(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// Test reports whether bit i is set. Out-of-range bits read as false.
func (b Bits) Test(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<uint(i%wordBits)) != 0
}

// IsEmpty reports whether no bit is set.
func (b Bits) IsEmpty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Len returns one past the index of the highest set bit, or 0 for an empty
// set.
func (b Bits) Len() int {
	for i := len(b.words) - 1; i >= 0; i-- {
		if b.words[i] != 0 {
			return i*wordBits + bits.Len64(b.words[i])
		}
	}
	return 0
}

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	return FromWords(b.words)
}

// Reset clears every bit while retaining the backing storage.
func (b *Bits) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.words = b.words[:0]
}

// Equal reports whether b and o contain the same bits, regardless of backing
// length.
func (b Bits) Equal(o Bits) bool {
	n := len(b.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.word(i) != o.word(i) {
			return false
		}
	}
	return true
}

func (b Bits) word(i int) uint64 {
	if i >= len(b.words) {
		return 0
	}
	return b.words[i]
}

// And returns the intersection b ∩ o. This is the core query-set operation:
// two tuples are joined only when their query-sets intersect (paper §2.1.1).
func (b Bits) And(o Bits) Bits {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out := Bits{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = b.words[i] & o.words[i]
	}
	out.trim()
	return out
}

// AndInPlace replaces b with b ∩ o, avoiding allocation.
func (b *Bits) AndInPlace(o Bits) {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &= o.words[i]
	}
	for i := n; i < len(b.words); i++ {
		b.words[i] = 0
	}
	b.trim()
}

// Or returns the union b ∪ o.
func (b Bits) Or(o Bits) Bits {
	n := len(b.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	out := Bits{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = b.word(i) | o.word(i)
	}
	out.trim()
	return out
}

// OrInPlace replaces b with b ∪ o.
func (b *Bits) OrInPlace(o Bits) {
	b.grow(len(o.words))
	for i := range o.words {
		b.words[i] |= o.words[i]
	}
	b.trim()
}

// AndNot returns b \ o.
func (b Bits) AndNot(o Bits) Bits {
	out := Bits{words: make([]uint64, len(b.words))}
	for i := range b.words {
		out.words[i] = b.words[i] &^ o.word(i)
	}
	out.trim()
	return out
}

// AndNotInPlace replaces b with b \ o.
func (b *Bits) AndNotInPlace(o Bits) {
	for i := range b.words {
		b.words[i] &^= o.word(i)
	}
	b.trim()
}

// Intersects reports whether b ∩ o is non-empty without materialising the
// intersection. Shared operators use this as the cheap "do these tuples share
// at least one query?" test.
func (b Bits) Intersects(o Bits) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// CountAnd returns |b ∩ o| without materialising the intersection.
func (b Bits) CountAnd(o Bits) int {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b.words[i] & o.words[i])
	}
	return c
}

// NextSet returns the index of the first set bit at or after i, or -1 when no
// such bit exists.
func (b Bits) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	w := i / wordBits
	if w >= len(b.words) {
		return -1
	}
	word := b.words[w] >> uint(i%wordBits)
	if word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(b.words); w++ {
		if b.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(b.words[w])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order. fn returning false
// stops the iteration.
func (b Bits) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Indexes returns the set bit positions in ascending order.
func (b Bits) Indexes() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Key returns a comparable representation of the set, usable as a map key.
// Two sets have equal keys iff Equal reports true.
func (b Bits) Key() string {
	bb := b
	n := len(bb.words)
	for n > 0 && bb.words[n-1] == 0 {
		n--
	}
	buf := make([]byte, n*8)
	for i := 0; i < n; i++ {
		w := bb.words[i]
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(w >> uint(8*j))
		}
	}
	return string(buf)
}

// String renders the set in the paper's convention: slot 0 (query index 1)
// leftmost. An empty set renders as "0".
func (b Bits) String() string {
	n := b.Len()
	if n == 0 {
		return "0"
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if b.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse parses the String representation (slot 0 leftmost). Characters other
// than '0' and '1' are rejected.
func Parse(s string) (Bits, bool) {
	var b Bits
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			b.Set(i)
		case '0':
		default:
			return Bits{}, false
		}
	}
	return b, true
}

// AllUpTo returns a set with bits [0,n) all set. Changelog-sets start from
// this "everything unchanged" state before deletions and reuses unset bits.
func AllUpTo(n int) Bits {
	b := New(n)
	for w := 0; w < n/wordBits; w++ {
		b.grow(w + 1)
		b.words[w] = ^uint64(0)
	}
	if rem := n % wordBits; rem > 0 {
		w := n / wordBits
		b.grow(w + 1)
		b.words[w] = (1 << uint(rem)) - 1
	}
	return b
}
