package durable

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"astream/internal/checkpoint"
	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// The integration tests drive a real checkpoint.Runner against the durable
// backend: run part of a deterministic workload, kill the incarnation, reopen
// the state directory from disk alone, resume at the cut point, and assert
// the final committed output is byte-identical to an uninterrupted in-memory
// run. The log suffix past the last completed checkpoint is replayed from the
// WAL; operators restore from deposit files (full snapshots or base+delta
// chains when SnapshotDeltaEvery is set).

type dstepKind int

const (
	dSubmit dstepKind = iota
	dStop
	dIngest
	dCheckpoint
)

type dstep struct {
	kind   dstepKind
	query  *core.Query
	ord    int
	stream int
	tuple  event.Tuple
}

func dQuery(kind core.Kind) *core.Query {
	if kind == core.KindJoin {
		return &core.Query{Kind: core.KindJoin, Arity: 2,
			Predicates: []expr.Predicate{expr.True(), expr.True()},
			Window:     window.TumblingSpec(8), AggField: -1}
	}
	return &core.Query{Kind: core.KindAggregation, Arity: 1,
		Predicates: []expr.Predicate{expr.True().And(expr.Comparison{Field: 0, Op: expr.GT, Value: 20})},
		Window:     window.TumblingSpec(10), Agg: sqlstream.AggSum, AggField: 1}
}

// dSteps is the deterministic workload: 5 phases of 20 ticks on 2 streams
// with a checkpoint per phase and a query stop at phase 2.
func dSteps() []dstep {
	rng := rand.New(rand.NewSource(41))
	steps := []dstep{
		{kind: dSubmit, query: dQuery(core.KindAggregation)},
		{kind: dSubmit, query: dQuery(core.KindJoin)},
	}
	now := event.Time(0)
	for phase := 0; phase < 5; phase++ {
		for i := 0; i < 20; i++ {
			now++
			for s := 0; s < 2; s++ {
				tu := event.Tuple{Key: int64(rng.Intn(3)), Time: now}
				for f := range tu.Fields {
					tu.Fields[f] = int64(rng.Intn(100))
				}
				steps = append(steps, dstep{kind: dIngest, stream: s, tuple: tu})
			}
		}
		if phase == 2 {
			steps = append(steps, dstep{kind: dStop, ord: 1})
		}
		steps = append(steps, dstep{kind: dCheckpoint})
	}
	return steps
}

func dApply(r *checkpoint.Runner, s dstep) error {
	switch s.kind {
	case dSubmit:
		return r.Submit(s.query)
	case dStop:
		return r.StopOrdinal(s.ord)
	case dIngest:
		return r.Ingest(s.stream, s.tuple)
	default:
		_, err := r.Checkpoint()
		return err
	}
}

func dConfig(dir string, deltaEvery int) core.Config {
	return core.Config{
		Streams: 2, Parallelism: 2, Nodes: 2, WatermarkEvery: 1,
		NowNanos:           func() int64 { return 1 },
		StateDir:           dir,
		SnapshotDeltaEvery: deltaEvery,
	}
}

// dClean is the uninterrupted in-memory reference run.
func dClean(t *testing.T, steps []dstep) []string {
	t.Helper()
	r, err := checkpoint.NewRunner(dConfig("", 0), &checkpoint.Log{}, checkpoint.NewTxSink())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range steps {
		if err := dApply(r, s); err != nil {
			t.Fatalf("clean step %d: %v", i, err)
		}
	}
	out := r.Finish()
	if len(out) == 0 {
		t.Fatal("clean run produced nothing")
	}
	return out
}

func assertSameOutput(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("committed output diverged: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("committed result %d: %q, want %q", i, got[i], want[i])
		}
	}
}

// runDurableWithRestarts drives steps against the durable backend, killing
// the incarnation at each index in cuts (crash + Store.Close, the in-process
// stand-in for the process dying) and reopening from disk alone.
func runDurableWithRestarts(t *testing.T, dir string, deltaEvery int, steps []dstep, cuts []int) []string {
	t.Helper()
	cfg := dConfig(dir, deltaEvery)
	r, s, err := Open(cfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64][]string{}
	next := 0
	for _, cut := range cuts {
		for ; next < cut; next++ {
			if err := dApply(r, steps[next]); err != nil {
				t.Fatalf("step %d: %v", next, err)
			}
		}
		for epoch, out := range r.Crash() {
			committed[epoch] = out
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r, s, err = Open(cfg, committed, Options{})
		if err != nil {
			t.Fatalf("reopen at step %d: %v", cut, err)
		}
	}
	for ; next < len(steps); next++ {
		if err := dApply(r, steps[next]); err != nil {
			t.Fatalf("step %d: %v", next, err)
		}
	}
	out := r.Finish()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDurableRestartResumesByteIdentical(t *testing.T) {
	steps := dSteps()
	want := dClean(t, steps)
	// Cut mid-phase (suffix replay from the WAL) and right after a
	// checkpoint, for both full-only and incremental snapshots.
	for _, deltaEvery := range []int{0, 3} {
		t.Run(fmt.Sprintf("deltaEvery%d", deltaEvery), func(t *testing.T) {
			cuts := []int{len(steps) / 3, 2 * len(steps) / 3}
			got := runDurableWithRestarts(t, t.TempDir(), deltaEvery, steps, cuts)
			assertSameOutput(t, got, want)
		})
	}
}

// dStepsWide is the workload for the delta-size bound: a second aggregation
// over a window far longer than the run keeps every shared slice alive (a
// slice serving an unfired window cannot evict), so the slice ring grows all
// run and a barrier interval dirties only its newest few slices.
func dStepsWide() []dstep {
	long := dQuery(core.KindAggregation)
	long.Window = window.TumblingSpec(500)
	rng := rand.New(rand.NewSource(43))
	steps := []dstep{
		{kind: dSubmit, query: dQuery(core.KindAggregation)},
		{kind: dSubmit, query: long},
	}
	now := event.Time(0)
	for phase := 0; phase < 8; phase++ {
		for i := 0; i < 20; i++ {
			now++
			for s := 0; s < 2; s++ {
				tu := event.Tuple{Key: int64(rng.Intn(3)), Time: now}
				for f := range tu.Fields {
					tu.Fields[f] = int64(rng.Intn(100))
				}
				steps = append(steps, dstep{kind: dIngest, stream: s, tuple: tu})
			}
		}
		steps = append(steps, dstep{kind: dCheckpoint})
	}
	return steps
}

// TestDurableDeltaChainsOnDisk asserts the incremental path actually persists
// deltas: deposits are classified by their leading byte, delta deposits are
// materially smaller than their full base, chains resolve through FetchChain,
// and a restore through a base+delta chain equals a full-snapshot restore.
func TestDurableDeltaChainsOnDisk(t *testing.T) {
	steps := dStepsWide()
	want := dClean(t, steps)
	dir := t.TempDir()
	cfg := dConfig(dir, 3)
	r, s, err := Open(cfg, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range steps {
		if err := dApply(r, st); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}

	// Eight checkpoints at fullEvery=3 give the aggregation the chain shape
	// F d d F d d F d: barrier 8 is a delta anchored at barrier 7's full
	// snapshot, and the manifest retains both.
	k, ok := s.LatestComplete()
	if !ok || k != 8 {
		t.Fatalf("LatestComplete = %d,%v, want 8", k, ok)
	}
	var aggOp string
	aggInst := -1
	var fullSize, deltaSize int64
	deltas := 0
	s.mu.Lock()
	for _, mb := range s.man.Barriers {
		for _, d := range mb.Deposits {
			if !strings.HasPrefix(d.Op, "aggregate") {
				continue
			}
			if d.Delta {
				deltas++
				deltaSize = d.Size
				if mb.Barrier == k {
					aggOp, aggInst = d.Op, d.Instance
				}
			} else {
				fullSize = d.Size
			}
		}
	}
	s.mu.Unlock()
	if deltas == 0 {
		t.Fatal("no delta deposit retained in the manifest")
	}
	if aggInst < 0 {
		t.Fatalf("no aggregation delta deposit at the latest barrier %d", k)
	}
	if fullSize == 0 || deltaSize == 0 || deltaSize*2 > fullSize {
		t.Fatalf("delta deposit %dB vs full %dB: delta must persist only dirtied slices", deltaSize, fullSize)
	}
	chain, ok := s.FetchChain(k, aggOp, aggInst)
	if !ok || len(chain) != 2 {
		t.Fatalf("chain at barrier %d has %d links, want base+delta", k, len(chain))
	}
	committed := r.Crash()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Chain restore vs full restore: reopen the same directory once as-is
	// (base+delta) and once with deltas disabled going forward; both resumed
	// runners must finish with output identical to the clean run.
	r2, s2, err := Open(cfg, committed, Options{})
	if err != nil {
		t.Fatalf("chain restore: %v", err)
	}
	assertSameOutput(t, r2.Finish(), want)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCorruptLatestFallsBack: when the newest checkpoint's deposits
// rot on disk, recovery demotes it and restores its predecessor, then re-cuts
// the demoted barrier at the same log offset during replay — output stays
// byte-identical.
func TestDurableCorruptLatestFallsBack(t *testing.T) {
	steps := dSteps()
	want := dClean(t, steps)
	for _, tc := range []struct {
		name   string
		damage func([]byte) []byte
	}{
		{"bad-crc", func(b []byte) []byte { b[len(b)/2] ^= 0xFF; return b }},
		{"trailing-bytes", func(b []byte) []byte { return append(b, 0xEE) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := dConfig(dir, 0)
			r, s, err := Open(cfg, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cut := 2 * len(steps) / 3
			for i := 0; i < cut; i++ {
				if err := dApply(r, steps[i]); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
			committed := r.Crash()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			k, ok := s.LatestComplete()
			if !ok || k < 2 {
				t.Fatalf("need >= 2 completed checkpoints, have %d", k)
			}
			if err := damageDeposit(dir, fmt.Sprintf("snap-%016x-aggregate", k), tc.damage); err != nil {
				t.Fatal(err)
			}
			r2, s2, err := Open(cfg, committed, Options{})
			if err != nil {
				t.Fatalf("recovery with damaged latest: %v", err)
			}
			// The rotten checkpoint was demoted persistently, then re-cut
			// during replay at its original offset.
			if k2, ok := s2.LatestComplete(); !ok || k2 != k {
				t.Fatalf("latest = %d,%v after fallback+replay, want %d re-cut", k2, ok, k)
			}
			for i := cut; i < len(steps); i++ {
				if err := dApply(r2, steps[i]); err != nil {
					t.Fatalf("post-recovery step %d: %v", i, err)
				}
			}
			assertSameOutput(t, r2.Finish(), want)
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// testHook is a programmable fault hook for targeted crash tests.
type testHook struct {
	beforeWrite  func(path string, b []byte) ([]byte, error)
	beforeSync   func(path string) error
	beforeRename func(from, to string) error
}

func (h *testHook) BeforeWrite(path string, b []byte) ([]byte, error) {
	if h.beforeWrite != nil {
		return h.beforeWrite(path, b)
	}
	return b, nil
}

func (h *testHook) BeforeSync(path string) error {
	if h.beforeSync != nil {
		return h.beforeSync(path)
	}
	return nil
}

func (h *testHook) BeforeRename(from, to string) error {
	if h.beforeRename != nil {
		return h.beforeRename(from, to)
	}
	return nil
}

// TestDurableCrashBeforeManifestRename: a crash after the manifest temp file
// is written but before the rename publishes it must leave the previous
// checkpoint authoritative; the interrupted one is re-cut on replay.
func TestDurableCrashBeforeManifestRename(t *testing.T) {
	steps := dSteps()
	want := dClean(t, steps)
	dir := t.TempDir()

	marks := 0
	hook := &testHook{beforeRename: func(from, to string) error {
		if strings.HasSuffix(to, manifestName) {
			marks++
			if marks == 3 {
				return ErrInjectedCrash
			}
		}
		return nil
	}}
	cfg := dConfig(dir, 0)
	r, s, err := Open(cfg, nil, Options{Hook: hook})
	if err != nil {
		t.Fatal(err)
	}
	i, crashed := 0, false
	for ; i < len(steps); i++ {
		if err := dApply(r, steps[i]); err != nil {
			if steps[i].kind != dCheckpoint || !strings.Contains(err.Error(), "injected crash") {
				t.Fatalf("step %d failed unexpectedly: %v", i, err)
			}
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatal("injected rename crash never fired")
	}
	committed := r.Crash()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r2, s2, err := Open(cfg, committed, Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if k, ok := s2.LatestComplete(); !ok || k != 2 {
		t.Fatalf("latest after unpublished third mark = %d,%v, want the 2 published ones plus replay re-cut", k, ok)
	}
	// The failed checkpoint step is retried (it logged nothing).
	for ; i < len(steps); i++ {
		if err := dApply(r2, steps[i]); err != nil {
			t.Fatalf("post-recovery step %d: %v", i, err)
		}
	}
	assertSameOutput(t, r2.Finish(), want)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
