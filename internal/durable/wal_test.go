package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"astream/internal/checkpoint"
	"astream/internal/event"
)

func walRecord(i int) checkpoint.Record {
	tu := event.Tuple{Key: int64(i % 5), Time: event.Time(i + 1)}
	tu.Fields[0] = int64(i * 7)
	return checkpoint.Record{Kind: checkpoint.RecTuple, Stream: i % 2, Tuple: tu}
}

// appendN appends records [from, from+n) and syncs.
func appendN(t *testing.T, w *WAL, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		off, err := w.Append(walRecord(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if off != i {
			t.Fatalf("append %d returned offset %d", i, off)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segPrefix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func TestWALRoundTripAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 40)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(segFiles(t, dir)); n < 2 {
		t.Fatalf("expected multiple segments at 256-byte roll, got %d", n)
	}
	w2, err := openWAL(dir, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() != 40 {
		t.Fatalf("reopened Len %d, want 40", w2.Len())
	}
	want := make([]checkpoint.Record, 40)
	for i := range want {
		want[i] = walRecord(i)
	}
	if got := w2.Slice(0, 40); !reflect.DeepEqual(got, want) {
		t.Fatal("records diverged across reopen")
	}
	// Appending after reopen continues the absolute numbering.
	off, err := w2.Append(walRecord(40))
	if err != nil || off != 40 {
		t.Fatalf("post-reopen append: off=%d err=%v", off, err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"short-frame", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-crc", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := openWAL(dir, 1<<20, nil)
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, 0, 10)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			names := segFiles(t, dir)
			tc.tear(t, filepath.Join(dir, names[len(names)-1]))
			w2, err := openWAL(dir, 1<<20, nil)
			if err != nil {
				t.Fatalf("torn tail must be recoverable: %v", err)
			}
			if w2.Len() != 9 {
				t.Fatalf("Len %d after torn tail, want 9", w2.Len())
			}
			// The torn record is gone; the survivors are intact and the log
			// accepts appends at the reclaimed offset.
			want := make([]checkpoint.Record, 9)
			for i := range want {
				want[i] = walRecord(i)
			}
			if got := w2.Slice(0, 9); !reflect.DeepEqual(got, want) {
				t.Fatal("surviving records diverged after tail truncation")
			}
			if off, err := w2.Append(walRecord(9)); err != nil || off != 9 {
				t.Fatalf("append after truncation: off=%d err=%v", off, err)
			}
		})
	}
}

func TestWALSealedCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 40)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names := segFiles(t, dir)
	if len(names) < 2 {
		t.Fatalf("need multiple segments, got %d", len(names))
	}
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openWAL(dir, 256, nil); err == nil || !strings.Contains(err.Error(), "sealed") {
		t.Fatalf("sealed-segment corruption must fail open loudly, got %v", err)
	}
}

func TestWALTruncateDropsWholeSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 40)
	before := len(segFiles(t, dir))
	if err := w.Truncate(30); err != nil {
		t.Fatal(err)
	}
	after := len(segFiles(t, dir))
	if after >= before {
		t.Fatalf("truncate removed nothing (%d -> %d segments)", before, after)
	}
	if db := w.DiskBase(); db > 30 {
		t.Fatalf("disk base %d exceeds the keep-from offset 30", db)
	}
	// The in-memory mirror still serves the full range this incarnation saw.
	if got := w.Slice(0, 40); len(got) != 40 {
		t.Fatalf("mirror lost records: %d", len(got))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the base is now the oldest surviving segment, and slicing below
	// it panics (recovery validates coverage before replaying).
	w2, err := openWAL(dir, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w2.base == 0 || w2.base > 30 {
		t.Fatalf("reopened base %d, want in (0,30]", w2.base)
	}
	if w2.Len() != 40 {
		t.Fatalf("reopened Len %d, want 40", w2.Len())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("slice below truncation point did not panic")
			}
		}()
		w2.Slice(0, 40)
	}()
}
