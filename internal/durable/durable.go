// Package durable is the crash-safe on-disk state backend for the checkpoint
// runner: a segmented CRC32C write-ahead log for the input stream, snapshot
// deposits committed by atomic rename, and a manifest that is the single
// commit record for a checkpoint. A process that crashes mid-append or
// mid-rename reopens to its latest completed checkpoint, replays the log
// suffix, and produces byte-identical output — the paper's recovery guarantee
// (§3.3) extended across process restarts.
//
// Layout under the state directory (core.Config.StateDir):
//
//	wal/wal-<hex first record index>.seg   framed input records
//	snap/snap-<hex barrier>-<op>-<inst>    one snapshot deposit per instance
//	manifest                               JSON commit record, atomic rename
//
// Torn-write tolerance: WAL appends and snapshot deposits are fsynced, but a
// checkpoint exists only once the manifest referencing it is renamed into
// place. A torn WAL tail is truncated at the first bad frame; corruption in a
// sealed (previously fsynced) region fails open loudly. A deposit whose size
// or CRC disagrees with the manifest is rejected and recovery falls back to
// the previous retained checkpoint.
package durable

import (
	"errors"
	"fmt"

	"astream/internal/checkpoint"
	"astream/internal/core"
)

// Open opens the durable backend at cfg.StateDir and returns a recovered
// checkpoint runner: on a fresh directory the runner starts empty, otherwise
// it restores the latest completed checkpoint (falling back past checkpoints
// whose deposits no longer verify) and replays the log suffix. committed maps
// epoch → already-delivered results from previous incarnations, letting the
// transactional sink suppress duplicate emissions; nil means deliver all.
func Open(cfg core.Config, committed map[uint64][]string, opts Options) (*checkpoint.Runner, *Store, error) {
	if cfg.StateDir == "" {
		return nil, nil, errors.New("durable: core.Config.StateDir is empty")
	}
	s, err := OpenStore(cfg.StateDir, opts)
	if err != nil {
		return nil, nil, err
	}
	r, err := s.Recover(cfg, committed)
	if err != nil {
		return nil, nil, errors.Join(err, s.Close())
	}
	return r, s, nil
}

// Recover builds a runner from the store's persisted state. When restoring
// the latest checkpoint fails — a deposit missing, torn, or rotted — the
// checkpoint is invalidated (persistently, so a crash during the retry does
// not loop) and recovery retries at the previous retained one; the runner's
// replay then re-cuts the demoted barrier at its original log offset.
func (s *Store) Recover(cfg core.Config, committed map[uint64][]string) (*checkpoint.Runner, error) {
	for {
		r, err := checkpoint.RecoverFromStore(cfg, s.wal, checkpoint.Manifest{Offsets: s.Offsets()}, committed, s)
		if err == nil {
			return r, nil
		}
		k, ok := s.LatestComplete()
		if !ok {
			return nil, err
		}
		if ierr := s.InvalidateLatest(); ierr != nil {
			return nil, fmt.Errorf("durable: recovery at checkpoint %d failed (%v); %w", k, err, ierr)
		}
	}
}
