package durable

import (
	"fmt"
	"testing"

	"astream/internal/fault"
)

// The DiskPlan satisfies the hook seam structurally; pin it here so a drift
// in either signature fails compilation where both packages are visible.
var _ Hook = (*fault.DiskPlan)(nil)

// The durable chaos harness extends the checkpoint chaos methodology below
// the durability line: the same deterministic workload runs under a seeded
// plan of engine faults (instance kills, exchange batch faults) AND a seeded
// plan of disk faults (torn writes, corrupted frames, lying fsyncs, crashes
// before rename). Every failure is treated as a process death: the store is
// closed, all in-memory state is discarded, and the next incarnation rebuilds
// exclusively from the state directory. The committed output merged across
// all incarnations must be byte-identical to a fault-free in-memory run.

// runDurableChaos drives steps under both fault plans, crashing and
// reopening from disk on every surfaced error, and returns the final
// committed output plus the number of recoveries.
func runDurableChaos(t *testing.T, steps []dstep, plan *fault.Plan, disk *fault.DiskPlan, deltaEvery int) ([]string, int) {
	t.Helper()
	dir := t.TempDir()
	cfg := dConfig(dir, deltaEvery)
	if plan != nil {
		cfg.FaultHook = plan
	}
	opts := Options{Hook: disk, SegmentBytes: 1 << 10}

	committed := map[uint64][]string{}
	recoveries := 0
	const maxRecoveries = 32
	r, s, err := Open(cfg, nil, opts)
	for err != nil {
		recoveries++
		if recoveries > maxRecoveries {
			t.Fatalf("no stable open after %d attempts; last: %v", maxRecoveries, err)
		}
		r, s, err = Open(cfg, committed, opts)
	}
	for i := 0; i < len(steps); {
		stepErr := dApply(r, steps[i])
		if stepErr == nil {
			i++
			continue
		}
		// Any failed step is a crash: a failed ingest was never acknowledged
		// into the log (retried after recovery), a failed checkpoint logged
		// nothing. Either way the incarnation dies and the next one rebuilds
		// from disk alone.
		for epoch, out := range r.Crash() {
			committed[epoch] = out
		}
		// Close may itself hit an injected fault while sealing the WAL; the
		// incarnation is dying anyway, so log it and move on.
		if cerr := s.Close(); cerr != nil {
			t.Logf("close during crash: %v", cerr)
		}
		for {
			recoveries++
			if recoveries > maxRecoveries {
				t.Fatalf("no stable recovery after %d attempts; last: %v", maxRecoveries, stepErr)
			}
			r2, s2, err := Open(cfg, committed, opts)
			if err == nil {
				r, s = r2, s2
				break
			}
		}
	}
	out := r.Finish()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out, recoveries
}

// TestDurableChaosSeededSchedules is the headline robustness test: seeded
// engine-fault and disk-fault schedules run together, every incarnation is
// rebuilt from disk only, and the merged committed output stays byte-identical
// to the fault-free run — under full snapshots and under base+delta chains.
//
// Seed 58 remains the DropAfter regression: it kills an aggregate instance at
// barrier alignment, so the dying incarnation deposits snapshots for a
// barrier it never completes; recovery must drop those orphans or they would
// pre-satisfy the successor's retry of the same barrier.
func TestDurableChaosSeededSchedules(t *testing.T) {
	steps := dSteps()
	want := dClean(t, steps)

	seeds := []int64{23, 42, 58, 11, 77}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		for _, deltaEvery := range []int{0, 3} {
			deltaEvery := deltaEvery
			t.Run(fmt.Sprintf("seed%d-delta%d", seed, deltaEvery), func(t *testing.T) {
				plan := fault.RandomPlan(seed, fault.RandomConfig{
					Ops:       []string{"src-0", "src-1", "select-0", "select-1", "join-0", "aggregate"},
					Instances: 2, MaxTuples: 180, Barriers: 5, Batches: 30,
					NumFaults: 3, AllowBatchFaults: true,
				})
				disk := fault.RandomDiskPlan(seed, fault.RandomDiskConfig{
					NumFaults: 3, MaxWAL: 200, MaxSnap: 30, MaxManifest: 5,
				})
				got, recoveries := runDurableChaos(t, steps, plan, disk, deltaEvery)
				t.Logf("seed %d delta %d: %d recoveries, engine: %v, disk: %v",
					seed, deltaEvery, recoveries, plan.Fired(), disk.Fired())
				assertSameOutput(t, got, want)
			})
		}
	}
}

// TestDurableChaosDiskOnly isolates the disk-fault axis: no engine faults at
// all, a dense disk schedule, and the same byte-identity bar. This pins the
// recovery semantics of each injected kind — a torn WAL append is truncated
// and retried, a corrupted frame never acknowledges, a lying fsync loses only
// unacknowledged state, an unpublished manifest leaves the previous
// checkpoint authoritative.
func TestDurableChaosDiskOnly(t *testing.T) {
	steps := dSteps()
	want := dClean(t, steps)
	for _, seed := range []int64{7, 19, 31} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			disk := fault.RandomDiskPlan(seed, fault.RandomDiskConfig{
				NumFaults: 6, MaxWAL: 400, MaxSnap: 40, MaxManifest: 6,
			})
			got, recoveries := runDurableChaos(t, steps, nil, disk, 3)
			t.Logf("seed %d: %d recoveries, disk: %v", seed, recoveries, disk.Fired())
			assertSameOutput(t, got, want)
		})
	}
}
