package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"astream/internal/checkpoint"
	"astream/internal/spe"
)

const (
	snapDirName  = "snap"
	walDirName   = "wal"
	manifestName = "manifest"
	tmpSuffix    = ".tmp"
)

// manifestData is the store's single source of truth on disk, rewritten
// atomically (tmp + fsync + rename) only when a checkpoint completes. A
// snapshot deposit therefore becomes real exactly when a manifest referencing
// it is published; files a crashed incarnation wrote for a checkpoint that
// never completed are unreferenced and swept as orphans on recovery.
type manifestData struct {
	Version int
	// Latest is the newest completed barrier; 0 means none.
	Latest uint64
	// Offsets[i] is the input-log offset covered by barrier i+1, mirroring
	// checkpoint.Manifest so a restarted process re-cuts identical epochs.
	Offsets []int
	// Barriers holds the retained completed checkpoints: the latest, its
	// predecessor (the fallback when the latest turns out corrupt), and any
	// older barrier still serving as the full base of a delta chain.
	Barriers []manifestBarrier
}

type manifestBarrier struct {
	Barrier  uint64
	Control  []byte
	Deposits []manifestDeposit
}

// manifestDeposit records one (op, instance) snapshot file plus the size and
// CRC32C that reads verify — a deposit that shrank, grew, or rotted is
// rejected and recovery falls back to the previous checkpoint.
type manifestDeposit struct {
	Op       string
	Instance int
	File     string
	Size     int64
	CRC      uint32
	Delta    bool
}

type depKey struct {
	op       string
	instance int
}

// Store is the durable checkpoint store: snapshot deposits as individual
// files committed by atomic rename, a JSON manifest as the commit record, and
// a segmented WAL for the input log. It implements checkpoint.Store and
// checkpoint.BackendHooks.
type Store struct {
	dir     string
	snapDir string
	hook    Hook
	wal     *WAL

	mu     sync.Mutex
	cond   *sync.Cond
	gen    uint64
	closed bool

	// pending holds deposits and control blobs for barriers not yet marked
	// complete; they move into the manifest at MarkComplete.
	pending  map[uint64]map[depKey]manifestDeposit
	expected map[uint64]int
	controls map[uint64][]byte

	// offsets is the in-memory master of the covered-offset array: loaded
	// from the manifest, extended by NoteOffset, persisted at MarkComplete.
	offsets []int
	man     manifestData
	failure error
}

var (
	_ checkpoint.Store        = (*Store)(nil)
	_ checkpoint.BackendHooks = (*Store)(nil)
)

// Options configures OpenStore.
type Options struct {
	// Hook injects faults into every disk mutation; nil in production.
	Hook Hook
	// SegmentBytes is the WAL segment roll threshold (DefaultSegmentBytes
	// when zero).
	SegmentBytes int
}

// OpenStore opens (or initialises) the durable state directory: loads the
// manifest, opens the WAL — truncating a torn tail, failing loudly on sealed
// corruption — sweeps stray temp files, and validates that the retained log
// still covers the latest completed checkpoint.
func OpenStore(dir string, opts Options) (*Store, error) {
	segMax := opts.SegmentBytes
	if segMax <= 0 {
		segMax = DefaultSegmentBytes
	}
	snapDir := filepath.Join(dir, snapDirName)
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		return nil, err
	}
	man, err := loadManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	// A crash between manifest prepare and rename leaves a stray temp file;
	// the published manifest is still the old one, so just discard it.
	if err := os.Remove(filepath.Join(dir, manifestName+tmpSuffix)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	wal, err := openWAL(filepath.Join(dir, walDirName), segMax, opts.Hook)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		snapDir:  snapDir,
		hook:     opts.Hook,
		wal:      wal,
		pending:  map[uint64]map[depKey]manifestDeposit{},
		expected: map[uint64]int{},
		controls: map[uint64][]byte{},
		offsets:  append([]int(nil), man.Offsets...),
		man:      man,
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.validateCoverage(s.man.Latest); err != nil {
		return nil, err
	}
	return s, nil
}

func loadManifest(path string) (manifestData, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return manifestData{Version: 1}, nil
	}
	if err != nil {
		return manifestData{}, err
	}
	var m manifestData
	if err := json.Unmarshal(data, &m); err != nil {
		// The manifest is renamed into place after an fsync; a parse failure
		// means the medium rotted underneath us, not a torn write.
		return manifestData{}, fmt.Errorf("durable: manifest corrupt: %w", err)
	}
	if m.Version != 1 {
		return manifestData{}, fmt.Errorf("durable: manifest version %d, want 1", m.Version)
	}
	return m, nil
}

// validateCoverage checks that recovering at barrier k is possible with the
// retained WAL: the replay start offset must still be on disk. Failing here
// is loud and final — it means an fsynced region of the log vanished.
func (s *Store) validateCoverage(k uint64) error {
	if k == 0 {
		if s.wal.base != 0 {
			return fmt.Errorf("durable: no completed checkpoint but the log starts at record %d (log truncated without a manifest?)", s.wal.base)
		}
		return nil
	}
	if len(s.offsets) < int(k) {
		return fmt.Errorf("durable: checkpoint %d completed but only %d offsets recorded", k, len(s.offsets))
	}
	replayFrom := s.offsets[k-1]
	if s.wal.Len() < replayFrom {
		return fmt.Errorf("durable: checkpoint %d covers %d log records but only %d survived (fsynced log region lost)", k, replayFrom, s.wal.Len())
	}
	if s.wal.base > replayFrom {
		return fmt.Errorf("durable: checkpoint %d replays from record %d but the log was truncated to %d", k, replayFrom, s.wal.base)
	}
	return nil
}

// WAL returns the store's input log for the runner.
func (s *Store) WAL() *WAL { return s.wal }

// Offsets returns a copy of the covered-offset array for checkpoint.Manifest.
func (s *Store) Offsets() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.offsets...)
}

// storeGate is the spe.SnapshotSink handed to one engine incarnation.
type storeGate struct {
	s   *Store
	gen uint64
}

// OnSnapshot implements spe.SnapshotSink.
func (g storeGate) OnSnapshot(op string, instance int, barrier uint64, state []byte) {
	g.s.onSnapshot(g.gen, op, instance, barrier, state)
}

// NewGate implements checkpoint.Store.
func (s *Store) NewGate() spe.SnapshotSink {
	s.mu.Lock()
	s.gen++
	g := storeGate{s: s, gen: s.gen}
	s.mu.Unlock()
	return g
}

func (s *Store) onSnapshot(gen uint64, op string, instance int, barrier uint64, state []byte) {
	s.mu.Lock()
	stale := gen != s.gen || s.closed
	s.mu.Unlock()
	if stale {
		return
	}
	name := fmt.Sprintf("snap-%016x-%s-%d", barrier, op, instance)
	if err := writeFileAtomic(filepath.Join(s.snapDir, name), state, s.hook); err != nil {
		s.Fail(fmt.Errorf("durable: snapshot %s: %w", name, err))
		return
	}
	dep := manifestDeposit{
		Op:       op,
		Instance: instance,
		File:     name,
		Size:     int64(len(state)),
		CRC:      crc32.Checksum(state, castagnoli),
		Delta:    len(state) > 0 && state[0] == spe.DeltaSnapshotMagic,
	}
	s.mu.Lock()
	if gen == s.gen && !s.closed {
		m := s.pending[barrier]
		if m == nil {
			m = map[depKey]manifestDeposit{}
			s.pending[barrier] = m
		}
		m[depKey{op: op, instance: instance}] = dep
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Await implements checkpoint.Store. Recording `total` here is what arms the
// MarkComplete completeness assertion for the barrier.
func (s *Store) Await(barrier uint64, total int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expected[barrier] = total
	for len(s.pending[barrier]) < total && s.failure == nil && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return errors.New("durable: store closed")
	}
	return s.failure
}

// SetControl implements checkpoint.Store.
func (s *Store) SetControl(barrier uint64, b []byte) {
	s.mu.Lock()
	s.controls[barrier] = append([]byte(nil), b...)
	s.mu.Unlock()
}

// NoteOffset implements checkpoint.BackendHooks.
func (s *Store) NoteOffset(barrier uint64, offset int) {
	s.mu.Lock()
	for len(s.offsets) < int(barrier) {
		s.offsets = append(s.offsets, 0)
	}
	s.offsets[barrier-1] = offset
	s.mu.Unlock()
}

// SupportsDeltas implements checkpoint.BackendHooks: the manifest resolves
// base+delta chains, so incremental snapshots are allowed.
func (s *Store) SupportsDeltas() bool { return true }

// MarkComplete implements checkpoint.Store: the commit point of a checkpoint.
// It refuses the mark unless every expected (op, instance) deposit, the
// control blob, and the covered offset are present — a mark published without
// them would name a checkpoint that cannot be restored. On success it fsyncs
// the WAL, publishes a new manifest referencing the barrier, sweeps files the
// new manifest no longer references, and truncates WAL segments below the
// previous checkpoint's replay offset.
func (s *Store) MarkComplete(barrier uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	exp, awaited := s.expected[barrier]
	if !awaited {
		return fmt.Errorf("durable: completion mark for barrier %d arrived before its deposits were awaited", barrier)
	}
	if got := len(s.pending[barrier]); got != exp {
		return fmt.Errorf("durable: barrier %d has %d of %d expected deposits; refusing completion mark", barrier, got, exp)
	}
	ctrl, ok := s.controls[barrier]
	if !ok {
		return fmt.Errorf("durable: barrier %d has no control snapshot; refusing completion mark", barrier)
	}
	if len(s.offsets) < int(barrier) {
		return fmt.Errorf("durable: barrier %d has no covered log offset; refusing completion mark", barrier)
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	// The barrier's deposits were renamed into the snapshot directory by the
	// instance goroutines; make those directory entries durable before a
	// manifest referencing them is published.
	if err := syncDir(s.snapDir); err != nil {
		return err
	}

	byBarrier := map[uint64]manifestBarrier{}
	for _, mb := range s.man.Barriers {
		byBarrier[mb.Barrier] = mb
	}
	nb := manifestBarrier{Barrier: barrier, Control: ctrl}
	keys := make([]depKey, 0, exp)
	for k := range s.pending[barrier] {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].op != keys[j].op {
			return keys[i].op < keys[j].op
		}
		return keys[i].instance < keys[j].instance
	})
	for _, k := range keys {
		nb.Deposits = append(nb.Deposits, s.pending[barrier][k])
	}
	byBarrier[barrier] = nb

	m := manifestData{Version: 1, Latest: barrier, Offsets: append([]int(nil), s.offsets[:barrier]...)}
	for b := retainFrom(byBarrier, barrier); b <= barrier; b++ {
		if mb, ok := byBarrier[b]; ok {
			m.Barriers = append(m.Barriers, mb)
		}
	}
	if err := s.persistManifest(m); err != nil {
		return err
	}
	s.man = m
	for b := range s.pending {
		if b <= barrier {
			delete(s.pending, b)
		}
	}
	for b := range s.expected {
		if b <= barrier {
			delete(s.expected, b)
		}
	}
	for b := range s.controls {
		if b <= barrier {
			delete(s.controls, b)
		}
	}
	if err := s.sweepOrphansLocked(); err != nil {
		return err
	}
	if barrier >= 2 {
		return s.wal.Truncate(s.offsets[barrier-2])
	}
	return nil
}

// retainFrom computes the oldest barrier the manifest must keep: the full
// base of every delta chain reachable from the newest barrier and from its
// predecessor (the fallback checkpoint).
func retainFrom(byBarrier map[uint64]manifestBarrier, latest uint64) uint64 {
	keep := latest
	if latest >= 2 {
		if _, ok := byBarrier[latest-1]; ok {
			keep = latest - 1
		}
	}
	for _, anchor := range []uint64{latest, keep} {
		mb, ok := byBarrier[anchor]
		if !ok {
			continue
		}
		for _, d := range mb.Deposits {
			b := anchor
			for {
				dep, ok := depositAt(byBarrier, b, d.Op, d.Instance)
				if !ok || !dep.Delta || b == 0 {
					break
				}
				b--
			}
			if b < keep {
				keep = b
			}
		}
	}
	return keep
}

func depositAt(byBarrier map[uint64]manifestBarrier, b uint64, op string, instance int) (manifestDeposit, bool) {
	mb, ok := byBarrier[b]
	if !ok {
		return manifestDeposit{}, false
	}
	for _, d := range mb.Deposits {
		if d.Op == op && d.Instance == instance {
			return d, true
		}
	}
	return manifestDeposit{}, false
}

func (s *Store) persistManifest(m manifestData) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(s.dir, manifestName), data, s.hook); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// sweepOrphansLocked deletes snapshot files neither the manifest nor a
// pending (in-flight) deposit references. Requires s.mu held.
func (s *Store) sweepOrphansLocked() error {
	referenced := map[string]bool{}
	for _, mb := range s.man.Barriers {
		for _, d := range mb.Deposits {
			referenced[d.File] = true
		}
	}
	for _, deps := range s.pending {
		for _, d := range deps {
			referenced[d.File] = true
		}
	}
	entries, err := os.ReadDir(s.snapDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || referenced[e.Name()] {
			continue
		}
		if err := os.Remove(filepath.Join(s.snapDir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// DropAfter implements checkpoint.Store: discard deposits above the barrier —
// in-memory pending state directly, on-disk files via the orphan sweep (a
// crashed incarnation's deposits were never referenced by a manifest).
func (s *Store) DropAfter(barrier uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for b := range s.pending {
		if b > barrier {
			delete(s.pending, b)
		}
	}
	for b := range s.expected {
		if b > barrier {
			delete(s.expected, b)
		}
	}
	for b := range s.controls {
		if b > barrier {
			delete(s.controls, b)
		}
	}
	if err := s.sweepOrphansLocked(); err != nil && s.failure == nil {
		s.failure = err
	}
}

// LatestComplete implements checkpoint.Store.
func (s *Store) LatestComplete() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Latest, s.man.Latest > 0
}

// FetchChain implements checkpoint.Store: walk deposits backwards from the
// barrier until a full snapshot anchors the chain, verifying each file's size
// and CRC against the manifest. Any missing, torn, or rotted link fails the
// whole chain, and recovery falls back to the previous checkpoint.
func (s *Store) FetchChain(barrier uint64, op string, instance int) ([][]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byBarrier := map[uint64]manifestBarrier{}
	for _, mb := range s.man.Barriers {
		byBarrier[mb.Barrier] = mb
	}
	var chain [][]byte
	for b := barrier; ; b-- {
		dep, ok := depositAt(byBarrier, b, op, instance)
		if !ok {
			return nil, false
		}
		data, err := os.ReadFile(filepath.Join(s.snapDir, dep.File))
		if err != nil {
			return nil, false
		}
		if int64(len(data)) != dep.Size || crc32.Checksum(data, castagnoli) != dep.CRC {
			return nil, false
		}
		chain = append(chain, data)
		if !dep.Delta {
			break
		}
		if b == 0 {
			return nil, false
		}
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, true
}

// Control implements checkpoint.Store.
func (s *Store) Control(barrier uint64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.controls[barrier]; ok {
		return b, true
	}
	for _, mb := range s.man.Barriers {
		if mb.Barrier == barrier {
			return mb.Control, true
		}
	}
	return nil, false
}

// InvalidateLatest demotes the latest completed checkpoint — its deposits
// failed verification — publishing a manifest whose Latest is the previous
// retained barrier. The offsets array is kept whole so the demoted barrier is
// re-cut at the same log offset during replay. Persisting the demotion means
// a crash during the retry does not loop on the same rotten checkpoint.
func (s *Store) InvalidateLatest() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.man.Latest
	if old == 0 {
		return errors.New("durable: no completed checkpoint left to invalidate")
	}
	var next uint64
	for _, mb := range s.man.Barriers {
		if mb.Barrier < old && mb.Barrier > next {
			next = mb.Barrier
		}
	}
	if err := s.validateCoverage(next); err != nil {
		return err
	}
	m := manifestData{Version: 1, Latest: next, Offsets: append([]int(nil), s.man.Offsets...)}
	for _, mb := range s.man.Barriers {
		if mb.Barrier != old {
			m.Barriers = append(m.Barriers, mb)
		}
	}
	if err := s.persistManifest(m); err != nil {
		return err
	}
	s.man = m
	return s.sweepOrphansLocked()
}

// Fail implements checkpoint.Store.
func (s *Store) Fail(err error) {
	if err == nil {
		err = errors.New("durable: unspecified instance failure")
	}
	s.mu.Lock()
	if s.failure == nil {
		s.failure = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Failure implements checkpoint.Store.
func (s *Store) Failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failure
}

// ClearFailure implements checkpoint.Store.
func (s *Store) ClearFailure() {
	s.mu.Lock()
	s.failure = nil
	s.mu.Unlock()
}

// Close detaches the store: subsequent deposit writes are dropped and the WAL
// is sealed. A chaos test calls this on the dying incarnation's store so its
// background drain stops touching the directory the next incarnation owns —
// the in-process stand-in for the process actually being gone.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return s.wal.Close()
}

// writeFileAtomic publishes b at path via the classic crash-safe sequence:
// write a temp file, fsync it, close it, rename over path. Every step runs
// through the fault hook. The containing directory is fsynced by the caller
// (once per checkpoint) rather than per file.
func writeFileAtomic(path string, b []byte, hook Hook) error {
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	towrite := b
	var inject error
	if hook != nil {
		towrite, inject = hook.BeforeWrite(tmp, b)
	}
	if len(towrite) > 0 {
		if _, err := f.Write(towrite); err != nil {
			return errors.Join(err, f.Close())
		}
	}
	if inject != nil {
		return errors.Join(inject, f.Close())
	}
	if hook != nil {
		if err := hook.BeforeSync(tmp); err != nil {
			return errors.Join(err, f.Close())
		}
	}
	if err := f.Sync(); err != nil {
		return errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	if hook != nil {
		if err := hook.BeforeRename(tmp, path); err != nil {
			return err
		}
	}
	return os.Rename(tmp, path)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return errors.Join(err, d.Close())
	}
	return d.Close()
}
