package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"astream/internal/checkpoint"
)

// castagnoli is the CRC32C table every frame and deposit checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	segPrefix   = "wal-"
	segSuffix   = ".seg"
	frameHeader = 8       // u32 payload length | u32 CRC32C(payload)
	frameMax    = 16 << 20

	// DefaultSegmentBytes is the roll threshold when Options.SegmentBytes is
	// zero. Segments roll so truncation below the last-covered checkpoint can
	// reclaim disk by deleting whole files instead of rewriting one.
	DefaultSegmentBytes = 256 << 10
)

// segInfo tracks one on-disk segment: its file name, the absolute index of
// its first record, and how many complete frames it holds.
type segInfo struct {
	name  string
	base  int
	count int
}

// WAL is the durable input log: an append-only sequence of CRC32C-framed
// checkpoint.Records split across segment files named by the absolute index
// of their first record. Appends are buffered by the OS and fsynced only at
// checkpoint boundaries (Store.MarkComplete); the tail written since the last
// sync is allowed to tear on crash, because the runner replays acknowledged
// records only up to offsets covered by a completed checkpoint.
//
// Reopen scans every segment: a bad frame at the tail of the final segment is
// a torn write and is truncated away; a bad frame anywhere else means a
// sealed, previously-fsynced region rotted, and open fails loudly rather than
// silently dropping acknowledged history.
//
// A WAL is single-writer: the runner appends, checkpoints, and truncates from
// one goroutine, so no locking is done here.
type WAL struct {
	dir    string
	hook   Hook
	segMax int

	// base is the absolute index of the first record retained on disk at
	// open; recs mirrors every record from base onward so Slice can serve
	// replays without touching disk.
	base int
	recs []checkpoint.Record
	segs []segInfo

	f     *os.File // current segment, nil until first append after open/roll
	fname string
	fsize int

	//lint:pooled scratch frame-encode buffer recycled across appends
	buf []byte
}

var _ checkpoint.InputLog = (*WAL)(nil)

// openWAL opens dir, recovering from a torn tail and failing loudly on
// mid-log corruption.
func openWAL(dir string, segMax int, hook Hook) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, hook: hook, segMax: segMax}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		base, err := strconv.ParseUint(hexPart, 16, 63)
		if err != nil {
			return nil, fmt.Errorf("durable: unparseable wal segment name %q", name)
		}
		w.segs = append(w.segs, segInfo{name: name, base: int(base)})
	}
	sort.Slice(w.segs, func(i, j int) bool { return w.segs[i].base < w.segs[j].base })
	for i := range w.segs {
		si := &w.segs[i]
		path := filepath.Join(dir, si.name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			w.base = si.base
		} else if si.base != w.base+len(w.recs) {
			return nil, fmt.Errorf("durable: wal segment %s starts at record %d, want %d (missing segment?)",
				si.name, si.base, w.base+len(w.recs))
		}
		last := i == len(w.segs)-1
		good, recs, err := decodeSegment(data, last)
		if err != nil {
			return nil, fmt.Errorf("durable: wal segment %s: %w", si.name, err)
		}
		if last && good < len(data) {
			if err := os.Truncate(path, int64(good)); err != nil {
				return nil, err
			}
		}
		si.count = len(recs)
		w.recs = append(w.recs, recs...)
	}
	// Drop trailing segments with no complete frame (created, then the
	// process died before the first append survived). Leaving them would
	// collide with the name of the next segment created at the same index.
	for n := len(w.segs); n > 0 && w.segs[n-1].count == 0; n = len(w.segs) {
		if err := os.Remove(filepath.Join(dir, w.segs[n-1].name)); err != nil {
			return nil, err
		}
		w.segs = w.segs[:n-1]
	}
	if len(w.segs) == 0 {
		w.base, w.recs = w.baseIfEmpty(), nil
	}
	return w, nil
}

// baseIfEmpty returns the base to resume at when no segment survived open.
// With no segments there is no on-disk base marker; the log is only usable
// from record zero.
func (w *WAL) baseIfEmpty() int { return 0 }

// decodeSegment walks the frames in one segment. It returns the byte offset
// of the end of the last good frame and the decoded records. A bad frame —
// short header, implausible length, CRC mismatch — ends the scan: tolerated
// (returned as the truncation point) for the final segment's tail, an error
// for a sealed segment. A frame whose CRC verifies but whose payload does not
// decode is always an error: the bytes are intact, so the writer was broken.
func decodeSegment(data []byte, tolerateTail bool) (int, []checkpoint.Record, error) {
	good := 0
	var recs []checkpoint.Record
	for {
		rest := data[good:]
		if len(rest) == 0 {
			return good, recs, nil
		}
		bad := len(rest) < frameHeader
		if !bad {
			n := int(binary.LittleEndian.Uint32(rest))
			sum := binary.LittleEndian.Uint32(rest[4:])
			bad = n <= 0 || n > frameMax || len(rest) < frameHeader+n
			if !bad {
				payload := rest[frameHeader : frameHeader+n]
				if crc32.Checksum(payload, castagnoli) != sum {
					bad = true
				} else {
					rec, leftover, err := checkpoint.DecodeRecord(payload)
					if err == nil && len(leftover) != 0 {
						err = fmt.Errorf("%d trailing bytes", len(leftover))
					}
					if err != nil {
						return good, recs, fmt.Errorf("frame at byte %d passed CRC but did not decode: %w", good, err)
					}
					recs = append(recs, rec)
					good += frameHeader + n
					continue
				}
			}
		}
		if tolerateTail {
			return good, recs, nil
		}
		return good, recs, fmt.Errorf("corrupt frame at byte %d of a sealed segment", good)
	}
}

// Append implements checkpoint.InputLog. The record is framed into the pooled
// scratch buffer and written to the current segment; the in-memory mirror and
// the returned absolute index advance only if the write fully succeeded, so a
// torn or failed write is never acknowledged.
func (w *WAL) Append(r checkpoint.Record) (int, error) {
	w.buf = append(w.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	w.buf = checkpoint.AppendRecord(w.buf, &r)
	payload := w.buf[frameHeader:]
	binary.LittleEndian.PutUint32(w.buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[4:], crc32.Checksum(payload, castagnoli))
	if w.f != nil && w.fsize+len(w.buf) > w.segMax {
		if err := w.roll(); err != nil {
			return 0, err
		}
	}
	if err := w.ensureSegment(); err != nil {
		return 0, err
	}
	towrite := w.buf
	var inject error
	if w.hook != nil {
		towrite, inject = w.hook.BeforeWrite(w.fname, w.buf)
	}
	if len(towrite) > 0 {
		n, err := w.f.Write(towrite)
		w.fsize += n
		if err != nil {
			return 0, err
		}
	}
	if inject != nil {
		return 0, inject
	}
	w.recs = append(w.recs, r)
	w.segs[len(w.segs)-1].count++
	return w.base + len(w.recs) - 1, nil
}

// Len implements checkpoint.InputLog: the absolute index one past the last
// acknowledged record.
func (w *WAL) Len() int { return w.base + len(w.recs) }

// Slice implements checkpoint.InputLog, serving from the in-memory mirror.
// Offsets below the open-time base were truncated and are gone for good.
func (w *WAL) Slice(from, to int) []checkpoint.Record {
	if from < w.base {
		panic(fmt.Sprintf("durable: wal slice [%d,%d) below truncation point %d", from, to, w.base))
	}
	out := make([]checkpoint.Record, to-from)
	copy(out, w.recs[from-w.base:to-w.base])
	return out
}

// Sync fsyncs the current segment. Called by the store when a checkpoint
// completes: everything at or below the checkpoint's offset becomes durable
// before the completion mark is published.
func (w *WAL) Sync() error {
	if w.f == nil {
		return nil
	}
	if w.hook != nil {
		if err := w.hook.BeforeSync(w.fname); err != nil {
			return err
		}
	}
	return w.f.Sync()
}

// Truncate deletes segments that lie entirely below keepFrom — the replay
// offset of the checkpoint before the latest, the oldest point recovery can
// ever need. The final segment is never deleted: its name carries the log's
// base index across reopen.
func (w *WAL) Truncate(keepFrom int) error {
	for len(w.segs) > 1 && w.segs[0].base+w.segs[0].count <= keepFrom {
		if err := os.Remove(filepath.Join(w.dir, w.segs[0].name)); err != nil {
			return err
		}
		w.segs = w.segs[1:]
	}
	return nil
}

// DiskBase reports the absolute index of the first record still on disk —
// what base would be after a crash and reopen right now.
func (w *WAL) DiskBase() int {
	if len(w.segs) == 0 {
		return w.Len()
	}
	return w.segs[0].base
}

// roll seals the current segment: whatever it holds is fsynced so the next
// open never finds a torn frame in a non-final segment.
func (w *WAL) roll() error {
	if w.f == nil {
		return nil
	}
	if err := w.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	return nil
}

func (w *WAL) ensureSegment() error {
	if w.f != nil {
		return nil
	}
	base := w.base + len(w.recs)
	name := fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix)
	path := filepath.Join(w.dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.f, w.fname, w.fsize = f, path, 0
	w.segs = append(w.segs, segInfo{name: name, base: base})
	return nil
}

// Close seals the log. Safe to call on a log that never appended.
func (w *WAL) Close() error { return w.roll() }
