package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// readSnapNames lists the deposit files under dir's snapshot directory.
func readSnapNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(dir, snapDirName))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

// damageDeposit rewrites the first snapshot file whose name has the prefix,
// applying damage to its bytes.
func damageDeposit(dir, prefix string, damage func([]byte) []byte) error {
	names, err := readSnapNames(dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		path := filepath.Join(dir, snapDirName, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(path, damage(data), 0o644)
	}
	return fmt.Errorf("no deposit with prefix %q", prefix)
}
