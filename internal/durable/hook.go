package durable

import "errors"

// Hook intercepts the backend's disk operations for deterministic fault
// injection (tests only; nil in production). Every mutation the backend
// performs — frame appends, snapshot deposits, manifest rewrites — funnels
// through one of these three seams, so a test can simulate torn writes,
// lying fsyncs, and crashes between prepare and commit without patching the
// filesystem.
type Hook interface {
	// BeforeWrite is consulted with the bytes about to be written to path.
	// The returned bytes are written instead — a fault may shorten them
	// (torn write) or flip them (media corruption) — and a non-nil error
	// surfaces after the write, simulating a process that crashed having
	// already damaged the medium.
	BeforeWrite(path string, b []byte) ([]byte, error)
	// BeforeSync runs before fsync of path. An error simulates a crash at
	// the fsync: bytes written above may or may not have reached the disk.
	BeforeSync(path string) error
	// BeforeRename runs before an atomic-commit rename. An error simulates
	// a crash with the temp file fully written but never published.
	BeforeRename(from, to string) error
}

// ErrInjectedCrash is the sentinel a fault hook returns to simulate a
// process crash at the hooked operation. The backend does not treat it
// specially — any hook error aborts the operation and surfaces to the
// caller — but tests assert on it to tell injected crashes from real I/O
// failures.
var ErrInjectedCrash = errors.New("durable: injected crash")
