package durable

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestMarkCompleteRefusesIncompleteBarrier pins the deposit/mark ordering
// contract: a completion mark is only committable once every expected
// (op, instance) deposit, the control blob, and the covered offset are in. A
// mark published early would name a checkpoint recovery cannot restore.
func TestMarkCompleteRefusesIncompleteBarrier(t *testing.T) {
	s, err := OpenStore(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkComplete(1); err == nil || !strings.Contains(err.Error(), "awaited") {
		t.Fatalf("mark before await accepted: %v", err)
	}

	gate := s.NewGate()
	gate.OnSnapshot("agg", 0, 1, []byte{1, 2, 3})
	// Arm the expectation at two deposits while only one arrived: fail the
	// wait so Await returns without blocking, then try to mark.
	s.Fail(errors.New("instance died"))
	if err := s.Await(1, 2); err == nil {
		t.Fatal("await did not surface the failure")
	}
	s.ClearFailure()
	if err := s.MarkComplete(1); err == nil || !strings.Contains(err.Error(), "1 of 2 expected deposits") {
		t.Fatalf("mark with missing deposit accepted: %v", err)
	}

	gate.OnSnapshot("agg", 1, 1, []byte{4, 5, 6})
	if err := s.Await(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkComplete(1); err == nil || !strings.Contains(err.Error(), "control") {
		t.Fatalf("mark without control snapshot accepted: %v", err)
	}
	s.SetControl(1, []byte{9})
	if err := s.MarkComplete(1); err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("mark without covered offset accepted: %v", err)
	}
	s.NoteOffset(1, 0)
	if err := s.MarkComplete(1); err != nil {
		t.Fatalf("complete barrier refused: %v", err)
	}
	if k, ok := s.LatestComplete(); !ok || k != 1 {
		t.Fatalf("LatestComplete = %d,%v after mark", k, ok)
	}
}

// TestStoreSurvivesReopen: a completed checkpoint written by one store
// incarnation is fully readable by the next, and unreferenced deposits from a
// never-completed barrier are swept on DropAfter.
func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gate := s.NewGate()
	gate.OnSnapshot("agg", 0, 1, []byte{1, 10, 20})
	if err := s.Await(1, 1); err != nil {
		t.Fatal(err)
	}
	s.SetControl(1, []byte{0xC0})
	for i := 0; i < 5; i++ {
		if _, err := s.WAL().Append(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.NoteOffset(1, 5)
	if err := s.MarkComplete(1); err != nil {
		t.Fatal(err)
	}
	// An orphan: deposited for barrier 2, never completed.
	gate.OnSnapshot("agg", 0, 2, []byte{1, 99})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := s2.LatestComplete(); !ok || k != 1 {
		t.Fatalf("LatestComplete = %d,%v across reopen", k, ok)
	}
	chain, ok := s2.FetchChain(1, "agg", 0)
	if !ok || len(chain) != 1 || !bytes.Equal(chain[0], []byte{1, 10, 20}) {
		t.Fatalf("FetchChain across reopen = %v,%v", chain, ok)
	}
	ctrl, ok := s2.Control(1)
	if !ok || !bytes.Equal(ctrl, []byte{0xC0}) {
		t.Fatalf("Control across reopen = %v,%v", ctrl, ok)
	}
	if got := s2.Offsets(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Offsets across reopen = %v", got)
	}
	if _, ok := s2.FetchChain(2, "agg", 0); ok {
		t.Fatal("never-completed barrier resolvable after reopen")
	}
	s2.DropAfter(1)
	files := segFiles(t, dir) // reuse helper; also count snap files directly
	_ = files
	entries, err := readSnapNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("orphan sweep left %v", entries)
	}
}

// TestFetchChainRejectsDamagedDeposits: a deposit that rotted (CRC) or grew
// (trailing bytes) fails chain resolution so recovery falls back.
func TestFetchChainRejectsDamagedDeposits(t *testing.T) {
	for _, tc := range []struct {
		name   string
		damage func([]byte) []byte
	}{
		{"flipped-byte", func(b []byte) []byte { b[1] ^= 0xFF; return b }},
		{"trailing-bytes", func(b []byte) []byte { return append(b, 0xEE, 0xEE) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenStore(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			gate := s.NewGate()
			gate.OnSnapshot("agg", 0, 1, []byte{1, 10, 20, 30})
			if err := s.Await(1, 1); err != nil {
				t.Fatal(err)
			}
			s.SetControl(1, []byte{0xC0})
			s.NoteOffset(1, 0)
			if err := s.MarkComplete(1); err != nil {
				t.Fatal(err)
			}
			if err := damageDeposit(dir, "snap-", tc.damage); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.FetchChain(1, "agg", 0); ok {
				t.Fatal("damaged deposit resolved")
			}
		})
	}
}
