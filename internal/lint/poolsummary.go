package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PoolSummary is the interprocedural half of the lifetime layer: what one
// function body does to pooled memory, derived by running the dataflow IR
// in summary mode. Summaries let helper wrappers (getVal/putVal, takeX,
// recycleX) participate without annotation — a call site applies the
// callee's summary instead of giving up at the boundary.
type PoolSummary struct {
	// Releases[i]: parameter i is released back to a pool on some path.
	Releases []bool
	// Escapes[i]: parameter i is stored into non-local memory on some path.
	Escapes []bool
	// Acquires: some return hands out a pooled object.
	Acquires bool
	// ScratchRet: some return hands out an alias of this scratch surface.
	ScratchRet *ScratchDecl
}

func (s *PoolSummary) setReleases(i int) {
	for len(s.Releases) <= i {
		s.Releases = append(s.Releases, false)
	}
	s.Releases[i] = true
}

func (s *PoolSummary) setEscapes(i int) {
	for len(s.Escapes) <= i {
		s.Escapes = append(s.Escapes, false)
	}
	s.Escapes[i] = true
}

// fingerprint is the change-detection render for the summary fixpoint.
func (s *PoolSummary) fingerprint() string {
	name := ""
	if s.ScratchRet != nil {
		name = s.ScratchRet.Name
	}
	return fmt.Sprintf("%v|%v|%v|%s", s.Releases, s.Escapes, s.Acquires, name)
}

// relevantNodes returns the call-graph nodes the lifetime layer must
// analyze: bodies that touch a declared pool, freelist, scratch surface, or
// annotated endpoint, plus (transitively) everything that calls them.
// Everything else cannot produce a pooled or scratch cell and is skipped.
func relevantNodes(m *Module, reg *PoolRegistry) []*CGNode {
	g := m.Graph()
	relevant := map[*CGNode]bool{}
	var seeds []*CGNode
	for _, n := range g.Nodes {
		if nodeTouchesPools(n, reg) {
			relevant[n] = true
			seeds = append(seeds, n)
		}
	}
	// Callers of relevant nodes are relevant: they may receive pooled
	// values or have arguments released through the callee's summary.
	work := seeds
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range n.In {
			if !relevant[e.Caller] {
				relevant[e.Caller] = true
				work = append(work, e.Caller)
			}
		}
	}
	var out []*CGNode
	for _, n := range g.Nodes {
		if relevant[n] {
			out = append(out, n)
		}
	}
	return out
}

// nodeTouchesPools reports whether a body mentions any registered pooled
// surface or annotated endpoint.
func nodeTouchesPools(n *CGNode, reg *PoolRegistry) bool {
	found := false
	walkOwn(n, func(node ast.Node) {
		if found {
			return
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return
		}
		obj := n.Pkg.Info.Uses[id]
		if obj == nil {
			obj = n.Pkg.Info.Defs[id]
		}
		if obj == nil {
			return
		}
		if reg.Pools[obj] != nil || reg.Scratch[obj] != nil {
			found = true
			return
		}
		if fn, ok := obj.(*types.Func); ok {
			if reg.Acquires[fn.Origin()] || reg.Releases[fn.Origin()] {
				found = true
			}
		}
	})
	return found
}

// paramCount is the summary width of a node (receiver excluded: receiver
// effects are not summarized).
func paramCount(n *CGNode) int {
	if n.Fn != nil {
		return n.Fn.Type().(*types.Signature).Params().Len()
	}
	if n.Lit != nil {
		c := 0
		for _, f := range n.Lit.Type.Params.List {
			if len(f.Names) == 0 {
				c++
			}
			c += len(f.Names)
		}
		return c
	}
	return 0
}

// computeSummaries runs the dataflow walker in silent summary mode over the
// relevant nodes to a fixpoint, so wrapper chains (putVal → append →
// freelist) resolve to release/acquire effects at their call sites.
func (eng *lifetimeEngine) computeSummaries(nodes []*CGNode) {
	eng.sums = map[*CGNode]*PoolSummary{}
	for _, n := range nodes {
		eng.sums[n] = &PoolSummary{}
	}
	for pass := 0; pass < 4; pass++ {
		changed := false
		for _, n := range nodes {
			sum := eng.sums[n]
			before := sum.fingerprint()
			w := newWalker(eng, n, sum, false)
			w.analyze()
			if sum.fingerprint() != before {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}
