package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file is the shared substrate of the state-integrity analyzers
// (snapcover, snapshot-symmetry): discovery of Snapshot/Restore pairs, the
// //lint:ephemeral field annotation, and receiver-field dataflow over the
// module call graph.
//
// A *state pair* is a named struct type together with its serialization
// couple:
//
//   - an encode root: a method named Snapshot or OnBarrier whose single
//     result is []byte (OnBarrier is how spe.Logic implementations emit
//     their barrier snapshot);
//   - a decode root: a method Restore([]byte) error, or a package-level
//     constructor whose name ends in "FromSnapshot" returning (*T, error).
//
// Once state goes durable, a field missing from either side of a pair is
// permanent corruption discovered only at recovery time, so fields are
// accounted for explicitly: serialized, repopulated, or annotated
//
//	//lint:ephemeral <reason>
//	//lint:ephemeral derived <reason>
//
// on the field's line or alone on the line directly above. The plain form
// declares a scratch field (buffers, freelists, constructor configuration)
// that recovery legitimately rebuilds from scratch. The "derived" form
// declares a field computed from serialized state; it must be repopulated
// by a function statically reachable from the decode root, and snapcover
// verifies that. The reason is mandatory, exactly as for //lint:ignore.

// statePair is one discovered Snapshot/Restore couple.
type statePair struct {
	pkg  *Package
	name string // the struct type's name, for messages
	typ  *types.Named
	enc  *CGNode // Snapshot() []byte or OnBarrier(...) []byte
	dec  *CGNode // Restore([]byte) error or <X>FromSnapshot([]byte) (*T, error)
}

// byteSliceType reports whether t is []byte.
func byteSliceType(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// errorType reports whether t is the built-in error interface.
func errorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// namedRecv returns the named type behind a method's receiver (pointer
// receivers dereferenced), or nil for plain functions.
func namedRecv(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// findStatePairs discovers every state pair declared in the packages
// matching scope (empty scope: every package), in deterministic order.
func findStatePairs(m *Module, scope []string) []*statePair {
	g := m.Graph()
	encs := map[*types.Named]*CGNode{}
	decs := map[*types.Named]*CGNode{}
	for _, n := range g.Nodes {
		if n.Fn == nil {
			continue
		}
		if len(scope) > 0 && !pathMatches(n.Pkg.Path, scope) {
			continue
		}
		sig := n.Fn.Type().(*types.Signature)
		switch {
		case (n.Fn.Name() == "Snapshot" || n.Fn.Name() == "OnBarrier") &&
			sig.Results().Len() == 1 && byteSliceType(sig.Results().At(0).Type()):
			if recv := namedRecv(n.Fn); recv != nil {
				// Prefer Snapshot when a type has both encode spellings.
				if prev, ok := encs[recv]; !ok || prev.Fn.Name() != "Snapshot" {
					encs[recv] = n
				}
			}
		case n.Fn.Name() == "Restore" &&
			sig.Params().Len() == 1 && byteSliceType(sig.Params().At(0).Type()) &&
			sig.Results().Len() == 1 && errorType(sig.Results().At(0).Type()):
			if recv := namedRecv(n.Fn); recv != nil {
				decs[recv] = n
			}
		case strings.HasSuffix(n.Fn.Name(), "FromSnapshot") && sig.Recv() == nil &&
			sig.Results().Len() == 2 && errorType(sig.Results().At(1).Type()):
			t := sig.Results().At(0).Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				decs[named] = n
			}
		}
	}
	var pairs []*statePair
	for recv, enc := range encs {
		dec, ok := decs[recv]
		if !ok {
			continue
		}
		if _, ok := recv.Underlying().(*types.Struct); !ok {
			continue
		}
		pairs = append(pairs, &statePair{
			pkg:  enc.Pkg,
			name: recv.Obj().Name(),
			typ:  recv,
			enc:  enc,
			dec:  dec,
		})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].pkg.Path != pairs[j].pkg.Path {
			return pairs[i].pkg.Path < pairs[j].pkg.Path
		}
		return pairs[i].name < pairs[j].name
	})
	return pairs
}

// reachableFrom returns every node reachable from root over synchronous and
// deferred call edges (go edges excluded: a spawned goroutine is not part
// of the serialization path).
func reachableFrom(root *CGNode) map[*CGNode]bool {
	seen := map[*CGNode]bool{root: true}
	queue := []*CGNode{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if e.Kind == CallGo || seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			queue = append(queue, e.Callee)
		}
	}
	return seen
}

// fieldTouches collects every struct field object referenced anywhere in
// the given node set: selector reads and writes, and composite-literal
// field keys (the decode side's `&T{f: ...}` construction idiom). Bodies
// are scanned whole, nested literals included: a payload closure invoked
// through a function value has no static call edge, but its field touches
// still belong to the enclosing serialization path (conservative in the
// right direction — coverage is never under-reported through a closure).
func fieldTouches(nodes map[*CGNode]bool) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for n := range nodes {
		p := n.Pkg
		ast.Inspect(n.Body, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.SelectorExpr:
				if sel := p.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok {
						out[v] = true
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := x.Key.(*ast.Ident); ok {
					if v, ok := p.Info.Uses[key].(*types.Var); ok && v.IsField() {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

var ephemeralRe = regexp.MustCompile(`^//lint:ephemeral(?:\s+(.*))?$`)

// ephemeralDirective is one parsed //lint:ephemeral annotation.
type ephemeralDirective struct {
	file    string
	line    int
	ownLine bool
	derived bool
	reason  string
	used    bool
}

// collectEphemerals parses every //lint:ephemeral directive in a package.
// Directives missing a reason are returned as diagnostics, mirroring
// //lint:ignore.
func collectEphemerals(a *Analyzer, p *Package) ([]*ephemeralDirective, []Diagnostic) {
	var dirs []*ephemeralDirective
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ephemeralRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				reason := strings.TrimSpace(m[1])
				derived := false
				if rest, ok := strings.CutPrefix(reason, "derived"); ok && (rest == "" || rest[0] == ' ' || rest[0] == ':') {
					derived = true
					reason = strings.TrimSpace(strings.TrimPrefix(rest, ":"))
				}
				if reason == "" {
					bad = append(bad, Diagnostic{
						Analyzer: a.Name,
						Pos:      pos,
						Message:  "//lint:ephemeral directive is missing a reason",
					})
					continue
				}
				dirs = append(dirs, &ephemeralDirective{
					file:    pos.Filename,
					line:    pos.Line,
					ownLine: pos.Column == 1 || onlyWhitespaceBefore(p, c.Pos()),
					derived: derived,
					reason:  reason,
				})
			}
		}
	}
	return dirs, bad
}

// ephemeralFor returns the directive covering a field declared at pos, if
// any: same line, or a directive alone on the line directly above.
func ephemeralFor(dirs []*ephemeralDirective, pos token.Position) *ephemeralDirective {
	for _, d := range dirs {
		if d.file != pos.Filename {
			continue
		}
		if d.line == pos.Line || (d.ownLine && d.line == pos.Line-1) {
			return d
		}
	}
	return nil
}
