package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomicFnPrefixes are the sync/atomic function families that take &addr.
var atomicFnPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

// NewNakedAtomic builds the mixed-access analyzer: any variable or struct
// field that is ever passed to a sync/atomic function must be accessed
// through sync/atomic everywhere. A plain load or store on the same
// location is a data race the compiler will happily reorder — exactly the
// silent-divergence failure mode the operator-overlap survey warns about.
// Composite-literal field keys are exempt (initialization happens before
// the value is shared).
func NewNakedAtomic() *Analyzer {
	a := &Analyzer{
		Name: "naked-atomic",
		Doc:  "flags plain reads/writes of variables that are elsewhere accessed via sync/atomic",
	}
	a.Run = func(p *Package) []Diagnostic {
		// Pass 1: objects passed by address to sync/atomic functions.
		tracked := map[types.Object]bool{}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(p, call) || len(call.Args) == 0 {
					return true
				}
				u, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok {
					return true
				}
				id := leafIdent(u.X)
				if id == nil {
					return true
				}
				obj := p.Info.Uses[id]
				if obj == nil {
					return true
				}
				tracked[obj] = true
				return true
			})
		}
		if len(tracked) == 0 {
			return nil
		}
		// Pass 2: every plain load or store of a tracked object is a data
		// race. Taking the address (&x, which includes the sanctioned
		// atomic-call arguments) and composite-literal keys are not
		// accesses; a raced pointer dereference is beyond this analysis.
		var diags []Diagnostic
		for _, f := range p.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Info.Uses[id]
				if obj == nil || !tracked[obj] {
					return true
				}
				if compositeLitKey(stack) || addressTaken(stack) {
					return true
				}
				diags = append(diags, a.Diag(p, id.Pos(),
					"%s is accessed with sync/atomic elsewhere; this plain access is a data race", id.Name))
				return true
			})
		}
		return diags
	}
	return a
}

// isAtomicCall reports whether call invokes a sync/atomic function of the
// Add/Load/Store/Swap/CompareAndSwap families.
func isAtomicCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, pre := range atomicFnPrefixes {
		if strings.HasPrefix(fn.Name(), pre) {
			return true
		}
	}
	return false
}

// leafIdent returns the identifier naming the addressed location: the
// selector leaf of x.f.g, or the identifier itself.
func leafIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return x.Sel
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// addressTaken reports whether the identifier on top of the stack is part
// of an &x or &x.f expression: walking up through selector/index/paren
// wrappers, the next ancestor is a unary AND.
func addressTaken(stack []ast.Node) bool {
	i := len(stack) - 2
	for i >= 0 {
		switch n := stack[i].(type) {
		case *ast.SelectorExpr, *ast.ParenExpr, *ast.IndexExpr:
			i--
		case *ast.UnaryExpr:
			return n.Op == token.AND
		default:
			return false
		}
	}
	return false
}

// compositeLitKey reports whether the identifier on top of the stack is
// the key of a composite-literal element (Field: value initialization).
func compositeLitKey(stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	id := stack[len(stack)-1]
	kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, ok = stack[len(stack)-3].(*ast.CompositeLit)
	return ok
}
