package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file builds the type-resolved static call graph the interprocedural
// analyzers run on. Nodes are function bodies: every declared function and
// method, and every function literal (literals are analysis units of their
// own — they run with their own lock state and may be hot roots). Edges are
// static calls:
//
//   - package-level functions and qualified pkg.Func calls resolve through
//     go/types object identity;
//   - method calls resolve when the receiver is a concrete type (generic
//     instantiations canonicalize through types.Func.Origin);
//   - immediately invoked function literals resolve to the literal's node.
//
// Calls through function values, struct fields, and interface methods have
// no static callee. They are recorded as CallsUnknown on the caller rather
// than guessed at: the analyzers treat unknown callees as silent (bounded
// analysis — no finding is ever produced through an edge that cannot be
// proven), which is the same trade go vet makes.
//
// Hot-path roots are declared in source with a //lint:hotpath directive: in
// the doc comment of a declared function, or on the line of (or the line
// directly above) a function literal — the latter is how the kernel run
// closures in core.KernelBenchmarks() are annotated.

// CallKind distinguishes how a call site transfers control.
type CallKind uint8

const (
	// CallSync is an ordinary call: the caller blocks until it returns.
	CallSync CallKind = iota
	// CallGo spawns the callee on a new goroutine; it cannot block the
	// caller and does not extend the caller's hot path.
	CallGo
	// CallDefer runs the callee when the caller returns; it still runs on
	// the caller's goroutine (and under any still-held locks).
	CallDefer
)

// CGEdge is one static call edge, anchored at its call site.
type CGEdge struct {
	Caller *CGNode
	Callee *CGNode
	Pos    token.Pos
	Kind   CallKind
}

// CGNode is one function body in the call graph.
type CGNode struct {
	// Pkg is the package the body lives in.
	Pkg *Package
	// Fn is the declared function object (nil for literals). Generic
	// functions are keyed by their uninstantiated origin.
	Fn *types.Func
	// Lit is the function literal (nil for declared functions).
	Lit *ast.FuncLit
	// Name is the fully qualified render, e.g.
	// "astream/internal/core.(*SharedSelection).OnTuple" or
	// "astream/internal/core.KernelBenchmarks$2$1" for nested literals.
	Name string
	// Body is the function body (never nil; bodyless declarations get no
	// node).
	Body *ast.BlockStmt
	// Pos is the function's position.
	Pos token.Pos
	// Hot marks a //lint:hotpath annotation.
	Hot bool
	// Out lists static call edges in source order.
	Out []*CGEdge
	// In lists incoming edges, sorted by caller name then position.
	In []*CGEdge
	// CallsUnknown records that the body contains at least one call with
	// no static callee (function value or interface method).
	CallsUnknown bool
}

// DisplayName is the short render used in finding messages: the function
// name without its package path ("(*SharedSelection).OnTuple").
func (n *CGNode) DisplayName() string {
	if i := strings.LastIndex(n.Name, "/"); i >= 0 {
		rest := n.Name[i+1:]
		if j := strings.Index(rest, "."); j >= 0 {
			return rest[j+1:]
		}
		return rest
	}
	if j := strings.Index(n.Name, "."); j >= 0 {
		return n.Name[j+1:]
	}
	return n.Name
}

// CallGraph is the static call graph of one module load.
type CallGraph struct {
	// Nodes holds every function body in deterministic order: package
	// path, then file name, then offset.
	Nodes []*CGNode

	byObj map[*types.Func]*CGNode
	byLit map[*ast.FuncLit]*CGNode
}

// NodeFor returns the node for a declared function (nil when the function
// has no body in the load, e.g. stdlib). Generic instantiations resolve to
// their origin's node.
func (g *CallGraph) NodeFor(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.byObj[fn.Origin()]
}

// NodeForLit returns the node of a function literal.
func (g *CallGraph) NodeForLit(lit *ast.FuncLit) *CGNode { return g.byLit[lit] }

var hotpathRe = regexp.MustCompile(`^//lint:hotpath(?:\s.*)?$`)

// hotpathLines collects, per file, the lines carrying a //lint:hotpath
// directive (for attaching to function literals by proximity).
func hotpathLines(p *Package) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !hotpathRe.MatchString(c.Text) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// docIsHot reports whether a doc comment group carries //lint:hotpath.
func docIsHot(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if hotpathRe.MatchString(c.Text) {
			return true
		}
	}
	return false
}

// BuildCallGraph constructs the call graph over every package of a load.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byObj: map[*types.Func]*CGNode{},
		byLit: map[*ast.FuncLit]*CGNode{},
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	// Pass 1: one node per function body. Literals are named after their
	// enclosing node with a $n suffix in source order.
	for _, p := range sorted {
		hot := hotpathLines(p)
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &CGNode{
					Pkg:  p,
					Fn:   fn,
					Name: declName(p, fd, fn),
					Body: fd.Body,
					Pos:  fd.Pos(),
					Hot:  docIsHot(fd.Doc) || hotAtLine(p, hot, fd.Pos()),
				}
				g.byObj[fn] = n
				g.Nodes = append(g.Nodes, n)
				g.addLits(p, n, fd.Body, hot)
			}
		}
	}
	g.sortNodes()

	// Pass 2: edges.
	for _, n := range g.Nodes {
		g.addEdges(n)
	}
	for _, n := range g.Nodes {
		sort.SliceStable(n.In, func(i, j int) bool {
			if n.In[i].Caller.Name != n.In[j].Caller.Name {
				return n.In[i].Caller.Name < n.In[j].Caller.Name
			}
			return n.In[i].Pos < n.In[j].Pos
		})
	}
	return g
}

// declName renders the qualified name of a declared function or method.
func declName(p *Package, fd *ast.FuncDecl, fn *types.Func) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return p.Path + "." + fn.Name()
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	// Strip type parameter lists from generic receivers for readability.
	if i := strings.IndexByte(recv, '['); i >= 0 {
		recv = recv[:i] + recv[strings.IndexByte(recv, ']')+1:]
	}
	if strings.HasPrefix(recv, "*") {
		return p.Path + ".(" + recv + ")." + fn.Name()
	}
	return p.Path + "." + recv + "." + fn.Name()
}

// hotAtLine reports whether a hotpath directive sits on the node's line or
// the line directly above it.
func hotAtLine(p *Package, hot map[string]map[int]bool, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	m := hot[position.Filename]
	if m == nil {
		return false
	}
	return m[position.Line] || m[position.Line-1]
}

// addLits creates nodes for the function literals directly inside body
// (literals nested in other literals recurse with the inner node as
// parent, so names compose: Outer$1$2).
func (g *CallGraph) addLits(p *Package, parent *CGNode, body *ast.BlockStmt, hot map[string]map[int]bool) {
	count := 0
	ast.Inspect(body, func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		count++
		n := &CGNode{
			Pkg:  p,
			Lit:  lit,
			Name: fmt.Sprintf("%s$%d", parent.Name, count),
			Body: lit.Body,
			Pos:  lit.Pos(),
			Hot:  hotAtLine(p, hot, lit.Pos()),
		}
		g.byLit[lit] = n
		g.Nodes = append(g.Nodes, n)
		g.addLits(p, n, lit.Body, hot)
		return false // inner literals handled by the recursion above
	})
}

func (g *CallGraph) sortNodes() {
	sort.Slice(g.Nodes, func(i, j int) bool {
		a, b := g.Nodes[i], g.Nodes[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		pa, pb := a.Pkg.Fset.Position(a.Pos), b.Pkg.Fset.Position(b.Pos)
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	})
}

// addEdges walks one node's body (excluding nested literals, which are
// their own nodes) resolving every call expression.
func (g *CallGraph) addEdges(n *CGNode) {
	p := n.Pkg
	// Calls that are the direct operand of go/defer get their kind from
	// the statement.
	kinds := map[*ast.CallExpr]CallKind{}
	walkOwn(n, func(node ast.Node) {
		switch st := node.(type) {
		case *ast.GoStmt:
			kinds[st.Call] = CallGo
		case *ast.DeferStmt:
			kinds[st.Call] = CallDefer
		}
	})
	walkOwn(n, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		callee, unknown := g.resolveCall(p, call)
		if unknown {
			n.CallsUnknown = true
			return
		}
		if callee == nil {
			return // builtin, conversion, or function outside the load
		}
		kind := CallSync
		if k, ok := kinds[call]; ok {
			kind = k
		}
		e := &CGEdge{Caller: n, Callee: callee, Pos: call.Pos(), Kind: kind}
		n.Out = append(n.Out, e)
		callee.In = append(callee.In, e)
	})
}

// walkOwn visits every AST node of n's body except the interiors of nested
// function literals (the literal node itself is visited).
func walkOwn(n *CGNode, fn func(ast.Node)) {
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
			fn(lit)
			return false
		}
		if node != nil {
			fn(node)
		}
		return true
	})
}

// resolveCall resolves a call expression to its static callee node.
// unknown=true means the callee is a function value or interface method
// that static analysis cannot (and must not pretend to) resolve; both
// return values zero means the call is a builtin, a type conversion, or a
// function with no body in the load.
func (g *CallGraph) resolveCall(p *Package, call *ast.CallExpr) (callee *CGNode, unknown bool) {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
			continue
		case *ast.IndexExpr:
			// Generic instantiation F[T](…) — unless X is itself a value
			// (slice/map of funcs), which the resolution below reports as
			// unknown via the *types.Var case.
			fun = f.X
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil, false // conversion
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch o := p.Info.Uses[f].(type) {
		case *types.Func:
			return g.NodeFor(o), false
		case *types.Builtin, *types.TypeName, nil:
			return nil, false
		default:
			return nil, true // function-typed variable or parameter
		}
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[f]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				if types.IsInterface(sel.Recv()) {
					return nil, true // dynamic dispatch
				}
				fn, _ := sel.Obj().(*types.Func)
				return g.NodeFor(fn), false
			default:
				return nil, true // field of function type
			}
		}
		// Qualified identifier: pkg.Func or pkg.Var.
		switch o := p.Info.Uses[f.Sel].(type) {
		case *types.Func:
			return g.NodeFor(o), false
		case *types.TypeName, nil:
			return nil, false
		default:
			return nil, true
		}
	case *ast.FuncLit:
		return g.NodeForLit(f), false
	default:
		return nil, true
	}
}
