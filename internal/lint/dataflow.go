package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the flow-sensitive dataflow IR under the lifetime analyzers
// (DESIGN.md §16). Each function body is walked statement by statement over
// an abstract state mapping local variables to sets of *cells* — one cell
// per syntactic allocation/acquisition/load site — with per-path released,
// escaped, and parked facts. Branches fork the state and join afterwards
// (may-analysis: a fact on either arm survives the join), loops iterate the
// body to a joined fixpoint (cells are per-site, so the universe is
// finite), returns terminate their path, and deferred calls apply at every
// exit in LIFO order.
//
// The analysis is deliberately bounded, exactly like the call graph it sits
// on: loads from the heap produce fresh cells (no strong updates through
// containers), unknown callees neither release nor leak their arguments,
// and every rule reports only what the IR proves on some path.
// Interprocedural effects flow through PoolSummary (poolsummary.go), so
// helper wrappers like getVal/putVal need no annotation of their own.

// dfCell is one abstract memory object, identified by its creation site.
type dfCell struct {
	label    string       // identifier for messages
	pooled   *PoolDecl    // non-nil: object of a declared pool/freelist
	scratch  *ScratchDecl // non-nil: aliases a declared scratch surface
	heap     bool         // born from non-local memory (field/element load)
	acq      token.Position
	isParam  bool             // bound to a parameter or the receiver at entry
	param    int              // parameter index at entry, else -1 (receiver: -1)
	contains map[*dfCell]bool // cells stored into this one
}

func newCell(label string) *dfCell {
	return &dfCell{label: label, param: -1, contains: map[*dfCell]bool{}}
}

// escKind classifies how a cell left the function's hands.
type escKind uint8

const (
	escStored escKind = iota
	escSent
	escReturned
	escGoroutine
	escCall // stored away by a callee (summary escape)
)

func (k escKind) String() string {
	switch k {
	case escStored:
		return "stored"
	case escSent:
		return "sent on a channel"
	case escReturned:
		return "returned"
	case escGoroutine:
		return "passed to a goroutine"
	default:
		return "stored by a callee"
	}
}

// dfEscape is one recorded escape of a cell.
type dfEscape struct {
	pos  token.Position
	kind escKind
	what string // destination render for messages
}

// dfState is the abstract state at one program point.
type dfState struct {
	vars     map[types.Object][]*dfCell
	released map[*dfCell]token.Position
	escaped  map[*dfCell]*dfEscape
	acquired map[*dfCell]bool
	parked   map[*dfCell]bool // stored somewhere reachable: cannot leak
	// uarOK marks releases that are unobservable through any live binding
	// on their own path: at a join, a cell released on one arm but no
	// longer bound there (the `putBatch(batch); batch = dec` handoff) must
	// not turn a use of the OTHER arm's binding into a use-after-release.
	uarOK map[*dfCell]bool
	// relBound refines uarOK's all-or-nothing rule: for a release settled
	// at a join while still bound on its own arm, it records WHICH
	// variables bound the cell there. A later use or release through a
	// variable outside that set sits on a path that never saw the
	// release (the `if ok { put(batch); batch = dec } else { put(dec) }`
	// correlation) and must not be flagged.
	relBound map[*dfCell]map[types.Object]bool
	dead     bool // path terminated (return/branch)
}

func newDFState() *dfState {
	return &dfState{
		vars:     map[types.Object][]*dfCell{},
		released: map[*dfCell]token.Position{},
		escaped:  map[*dfCell]*dfEscape{},
		acquired: map[*dfCell]bool{},
		parked:   map[*dfCell]bool{},
		uarOK:    map[*dfCell]bool{},
		relBound: map[*dfCell]map[types.Object]bool{},
	}
}

func (s *dfState) clone() *dfState {
	c := newDFState()
	for k, v := range s.vars {
		c.vars[k] = append([]*dfCell(nil), v...)
	}
	for k, v := range s.released {
		c.released[k] = v
	}
	for k, v := range s.escaped {
		c.escaped[k] = v
	}
	for k := range s.acquired {
		c.acquired[k] = true
	}
	for k := range s.parked {
		c.parked[k] = true
	}
	for k := range s.uarOK {
		c.uarOK[k] = true
	}
	for k, set := range s.relBound {
		cp := make(map[types.Object]bool, len(set))
		for o := range set {
			cp[o] = true
		}
		c.relBound[k] = cp
	}
	c.dead = s.dead
	return c
}

// bound reports whether some variable still binds the cell.
func (s *dfState) bound(c *dfCell) bool {
	for _, cells := range s.vars {
		for _, b := range cells {
			if b == c {
				return true
			}
		}
	}
	return false
}

// settleReleases marks releases unobservable through any live binding in
// this state, so a cross-path join cannot pair them with another arm's
// binding. Called on each input state of a join.
func (s *dfState) settleReleases() {
	for c := range s.released {
		if s.uarOK[c] || s.relBound[c] != nil {
			continue // already settled at an earlier join
		}
		var set map[types.Object]bool
		for obj, cells := range s.vars {
			for _, b := range cells {
				if b == c {
					if set == nil {
						set = map[types.Object]bool{}
					}
					set[obj] = true
					break
				}
			}
		}
		if set == nil {
			s.uarOK[c] = true
		} else {
			s.relBound[c] = set
		}
	}
}

// join unions another path's state into s. Dead paths contribute nothing.
func (s *dfState) join(o *dfState) *dfState {
	if o == nil || o.dead {
		return s
	}
	if s.dead {
		o = o.clone()
		o.settleReleases()
		return o
	}
	s.settleReleases()
	o.settleReleases()
	for k, v := range o.vars {
		s.vars[k] = unionCells(s.vars[k], v)
	}
	for k, v := range o.released {
		if _, ok := s.released[k]; !ok {
			s.released[k] = v
		}
	}
	for k, v := range o.escaped {
		if _, ok := s.escaped[k]; !ok {
			s.escaped[k] = v
		}
	}
	for k := range o.acquired {
		s.acquired[k] = true
	}
	for k := range o.parked {
		s.parked[k] = true
	}
	for k := range o.uarOK {
		s.uarOK[k] = true
	}
	for k, set := range o.relBound {
		if s.relBound[k] == nil {
			s.relBound[k] = map[types.Object]bool{}
		}
		for obj := range set {
			s.relBound[k][obj] = true
		}
	}
	return s
}

// size is the monotone measure for loop-fixpoint convergence: join only
// grows it, and since join(a, b) ⊇ a, equal size after a join means equal
// states.
func (s *dfState) size() int {
	n := len(s.released) + len(s.escaped) + len(s.acquired) + len(s.parked) + len(s.uarOK)
	for _, set := range s.relBound {
		n += 1 + len(set)
	}
	for _, v := range s.vars {
		n += 1 + len(v)
	}
	return n
}

func unionCells(a, b []*dfCell) []*dfCell {
	for _, c := range b {
		found := false
		for _, e := range a {
			if e == c {
				found = true
				break
			}
		}
		if !found {
			a = append(a, c)
		}
	}
	return a
}

// dfDefer is one recorded defer, with its argument cells captured at the
// defer statement (Go evaluates defer arguments eagerly).
type dfDefer struct {
	call *ast.CallExpr
	args [][]*dfCell
}

// dfWalker analyzes one CGNode body.
type dfWalker struct {
	eng      *lifetimeEngine
	node     *CGNode
	p        *Package
	sum      *PoolSummary // summary being derived (nil in the report pass)
	emit     bool         // report diagnostics (final pass only)
	sites    map[ast.Node]*dfCell
	defers   []*dfDefer
	reported map[string]bool
	paramsOf map[types.Object]int
	retPool  bool // some return handed out a pooled cell
	peek     int  // inside len/cap arguments: reads take no ownership
}

func newWalker(eng *lifetimeEngine, n *CGNode, sum *PoolSummary, emit bool) *dfWalker {
	return &dfWalker{
		eng:      eng,
		node:     n,
		p:        n.Pkg,
		sum:      sum,
		emit:     emit,
		sites:    map[ast.Node]*dfCell{},
		reported: map[string]bool{},
		paramsOf: map[types.Object]int{},
	}
}

func (w *dfWalker) analyze() {
	s := newDFState()
	if w.node.Fn != nil {
		sig := w.node.Fn.Type().(*types.Signature)
		if r := sig.Recv(); r != nil {
			w.bindParam(s, r, -1)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			w.bindParam(s, sig.Params().At(i), i)
		}
	} else if w.node.Lit != nil {
		i := 0
		for _, f := range w.node.Lit.Type.Params.List {
			for _, name := range f.Names {
				if obj, ok := w.p.Info.Defs[name].(*types.Var); ok && obj != nil {
					w.bindParam(s, obj, i)
				}
				i++
			}
		}
	}
	out := w.walkBody(w.node.Body, s)
	if !out.dead {
		w.exitPath(out, w.node.Body.Rbrace)
	}
	if w.sum != nil && w.retPool {
		w.sum.Acquires = true
	}
}

func (w *dfWalker) bindParam(s *dfState, v *types.Var, idx int) {
	c := newCell(v.Name())
	c.isParam = true
	c.param = idx
	s.vars[v] = []*dfCell{c}
	w.paramsOf[v] = idx
}

// siteCell returns the one cell for a syntactic creation site, so loop
// iterations reuse cells and the fixpoint converges.
func (w *dfWalker) siteCell(at ast.Node, label string) *dfCell {
	if c, ok := w.sites[at]; ok {
		return c
	}
	c := newCell(label)
	w.sites[at] = c
	return c
}

// revive resets a cell's per-path facts at its creation site: a loop's
// second iteration re-acquiring through the same site starts clean.
func (s *dfState) revive(c *dfCell) {
	delete(s.released, c)
	delete(s.escaped, c)
	delete(s.acquired, c)
	delete(s.parked, c)
	delete(s.uarOK, c)
	delete(s.relBound, c)
}

// diag reports one deduplicated finding. Summary passes stay silent.
func (w *dfWalker) diag(analyzer string, pos token.Pos, key, format string, args ...any) {
	if !w.emit || w.reported[key] {
		return
	}
	w.reported[key] = true
	w.eng.diags = append(w.eng.diags, Diagnostic{
		Analyzer: analyzer,
		Pos:      w.p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ---- statement walk ----

func (w *dfWalker) walkBody(b *ast.BlockStmt, s *dfState) *dfState {
	for _, st := range b.List {
		if s.dead {
			return s
		}
		s = w.walkStmt(st, s)
	}
	return s
}

func (w *dfWalker) walkStmt(stmt ast.Stmt, s *dfState) *dfState {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		w.eval(st.X, s, true)
	case *ast.AssignStmt:
		w.walkAssign(st, s)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var cells []*dfCell
					if i < len(vs.Values) {
						cells = w.eval(vs.Values[i], s, true)
					} else {
						c := w.siteCell(name, name.Name)
						s.revive(c)
						cells = []*dfCell{c}
					}
					if obj := w.p.Info.Defs[name]; obj != nil {
						s.vars[obj] = cells
					}
				}
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s = w.walkStmt(st.Init, s)
		}
		w.eval(st.Cond, s, true)
		thenIn := s.clone()
		elseIn := s
		// Nil-guard refinement: on the arm where `x` is nil, an
		// acquisition attributed to x never happened (`if v :=
		// pool.Get(); v != nil` acquires only on the hit path).
		if x, nilThen, ok := w.nilCond(st.Cond); ok {
			if nilThen {
				w.unacquire(thenIn, x)
			} else {
				w.unacquire(elseIn, x)
			}
		}
		then := w.walkBody(st.Body, thenIn)
		var els *dfState
		if st.Else != nil {
			els = w.walkStmt(st.Else, elseIn)
		} else {
			els = elseIn
		}
		return els.join(then)
	case *ast.BlockStmt:
		return w.walkBody(st, s)
	case *ast.ForStmt:
		if st.Init != nil {
			s = w.walkStmt(st.Init, s)
		}
		return w.walkLoop(s, func(cur *dfState) *dfState {
			if st.Cond != nil {
				w.eval(st.Cond, cur, true)
			}
			cur = w.walkBody(st.Body, cur)
			if st.Post != nil && !cur.dead {
				cur = w.walkStmt(st.Post, cur)
			}
			return cur
		})
	case *ast.RangeStmt:
		xCells := w.eval(st.X, s, true)
		return w.walkLoop(s, func(cur *dfState) *dfState {
			w.bindRangeVar(cur, st.Key, xCells, true)
			w.bindRangeVar(cur, st.Value, xCells, false)
			return w.walkBody(st.Body, cur)
		})
	case *ast.SwitchStmt:
		if st.Init != nil {
			s = w.walkStmt(st.Init, s)
		}
		if st.Tag != nil {
			w.eval(st.Tag, s, true)
		}
		return w.walkCases(st.Body, s)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s = w.walkStmt(st.Init, s)
		}
		s = w.walkStmt(st.Assign, s)
		return w.walkCases(st.Body, s)
	case *ast.SelectStmt:
		return w.walkCases(st.Body, s)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			for _, c := range w.eval(r, s, true) {
				if c.pooled != nil {
					w.retPool = true
				}
				w.escape(s, c, escReturned, r.Pos(), "")
			}
		}
		w.exitPath(s, st.Pos())
		s.dead = true
	case *ast.BranchStmt:
		// break/continue/goto: the path leaves this straight-line region.
		// Dropping the state is sound for may-facts and avoids phantom
		// flows back into the loop body.
		s.dead = true
	case *ast.SendStmt:
		w.eval(st.Chan, s, true)
		for _, c := range w.eval(st.Value, s, true) {
			w.escape(s, c, escSent, st.Value.Pos(), "")
		}
	case *ast.DeferStmt:
		d := &dfDefer{call: st.Call}
		w.evalReceiver(st.Call, s)
		for _, a := range st.Call.Args {
			d.args = append(d.args, w.eval(a, s, true))
		}
		w.defers = append(w.defers, d)
	case *ast.GoStmt:
		w.evalReceiver(st.Call, s)
		for _, a := range st.Call.Args {
			for _, c := range w.eval(a, s, true) {
				w.escape(s, c, escGoroutine, a.Pos(), "")
			}
		}
	case *ast.IncDecStmt:
		w.eval(st.X, s, true)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, s)
	}
	return s
}

// walkLoop iterates body to a joined fixpoint, bounded by the finite
// per-site cell universe (hard iteration cap as a backstop).
func (w *dfWalker) walkLoop(s *dfState, body func(*dfState) *dfState) *dfState {
	cur := s.clone()
	for i := 0; i < 10; i++ {
		before := cur.size()
		after := body(cur.clone())
		cur = cur.join(after)
		if cur.size() == before {
			break
		}
	}
	// The zero-iteration path joins back in.
	return cur.join(s)
}

// walkCases joins every case clause of a switch/select body.
func (w *dfWalker) walkCases(body *ast.BlockStmt, s *dfState) *dfState {
	out := s.clone() // no-clause-taken path
	for _, cl := range body.List {
		br := s.clone()
		var stmts []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.eval(e, br, true)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				br = w.walkStmt(c.Comm, br)
			}
			stmts = c.Body
		}
		for _, st := range stmts {
			if br.dead {
				break
			}
			br = w.walkStmt(st, br)
		}
		out = out.join(br)
	}
	return out
}

func (w *dfWalker) bindRangeVar(s *dfState, e ast.Expr, xCells []*dfCell, isKey bool) {
	if e == nil {
		return
	}
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := w.p.Info.Defs[id]
	if obj == nil {
		obj = w.p.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	c := w.siteCell(e, id.Name)
	s.revive(c)
	c.heap = true
	if !isKey {
		// Element loads inherit scratch provenance from the container.
		for _, x := range xCells {
			if x.scratch != nil {
				c.scratch = x.scratch
				break
			}
		}
	}
	s.vars[obj] = []*dfCell{c}
}

// exitPath applies deferred calls (LIFO) and runs the leak check for one
// function exit.
func (w *dfWalker) exitPath(s *dfState, pos token.Pos) {
	for i := len(w.defers) - 1; i >= 0; i-- {
		w.applyCallEffects(w.defers[i].call, w.defers[i].args, s)
	}
	// Leak check: a pooled object acquired on this path that was never
	// released, stored anywhere, or returned is gone when the function
	// exits — its pool never sees it again.
	var leaks []*dfCell
	//lint:ignore maporder collected cells are sorted by sortCells before any diagnostic is emitted
	for c := range s.acquired {
		if _, rel := s.released[c]; rel {
			continue
		}
		if s.escaped[c] != nil || s.parked[c] {
			continue
		}
		leaks = append(leaks, c)
	}
	sortCells(leaks)
	for _, c := range leaks {
		w.diag("poolsafe", pos, fmt.Sprintf("leak@%d@%p", pos, c),
			"pooled %s (acquired at line %d) leaks on this exit path: never released, stored, or returned", c.label, c.acq.Line)
	}
}

func sortCells(cs []*dfCell) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cellLess(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func cellLess(a, b *dfCell) bool {
	if a.acq.Line != b.acq.Line {
		return a.acq.Line < b.acq.Line
	}
	return a.label < b.label
}

// ---- expression evaluation ----

// eval returns the cells an expression may denote, applying call effects
// and use-after-release checks along the way. topUse=false suppresses the
// use-check for the top-level read only — release endpoints report
// double-release themselves instead.
func (w *dfWalker) eval(e ast.Expr, s *dfState, topUse bool) []*dfCell {
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.p.Info.Uses[x]
		if obj == nil {
			obj = w.p.Info.Defs[x]
		}
		if obj == nil {
			return nil
		}
		if _, ok := obj.(*types.Var); !ok {
			return nil
		}
		cells, bound := s.vars[obj]
		if !bound {
			// Captured outer variable or package-level variable: a fresh
			// heap-born cell per read site.
			c := w.siteCell(x, x.Name)
			s.revive(c)
			c.heap = true
			if sd := w.eng.reg.Scratch[obj]; sd != nil {
				c.scratch = sd
			}
			return []*dfCell{c}
		}
		if topUse {
			w.checkUse(s, cells, obj, x.Pos(), x.Name)
		}
		return cells
	case *ast.SelectorExpr:
		if sel := w.p.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			w.eval(x.X, s, true)
			c := w.siteCell(x, render(x))
			s.revive(c)
			c.heap = true
			// Scratch provenance comes from the field's own annotation
			// only: a pointer or slice field READ OUT of arena memory
			// points at the pointee's storage, not the arena's.
			if sd := w.eng.reg.Scratch[sel.Obj()]; sd != nil {
				c.scratch = sd
			}
			return []*dfCell{c}
		}
		// Package-qualified identifier.
		if obj := w.p.Info.Uses[x.Sel]; obj != nil {
			if _, ok := obj.(*types.Var); ok {
				c := w.siteCell(x, render(x))
				s.revive(c)
				c.heap = true
				return []*dfCell{c}
			}
		}
		return nil
	case *ast.IndexExpr:
		// Generic instantiation F[T] parses as IndexExpr too; only real
		// container loads produce cells.
		if tv, ok := w.p.Info.Types[x.X]; !ok || tv.IsType() || tv.Type == nil {
			return nil
		} else if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
			return nil
		}
		base := w.eval(x.X, s, true)
		w.eval(x.Index, s, true)
		c := w.siteCell(x, render(x))
		s.revive(c)
		c.heap = true
		if pd := w.poolOf(x.X); pd != nil && pd.Kind == roleFreelist && w.peek == 0 {
			// Freelist element read: the pop half of the pop+truncate idiom.
			w.acquire(s, c, pd, x.Pos())
		}
		for _, b := range base {
			if b.scratch != nil {
				c.scratch = b.scratch
				break
			}
		}
		return []*dfCell{c}
	case *ast.SliceExpr:
		cells := w.eval(x.X, s, topUse)
		for _, idx := range []ast.Expr{x.Low, x.High, x.Max} {
			if idx != nil {
				w.eval(idx, s, true)
			}
		}
		return cells
	case *ast.StarExpr:
		// Pointer and pointee are one object for lifetime purposes.
		return w.eval(x.X, s, topUse)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return w.eval(x.X, s, topUse)
		}
		if x.Op == token.ARROW {
			w.eval(x.X, s, true)
			c := w.siteCell(x, "received value")
			s.revive(c)
			c.heap = true
			return []*dfCell{c}
		}
		return w.eval(x.X, s, true)
	case *ast.BinaryExpr:
		w.eval(x.X, s, true)
		w.eval(x.Y, s, true)
		return nil
	case *ast.ParenExpr:
		return w.eval(x.X, s, topUse)
	case *ast.CallExpr:
		return w.evalCall(x, s)
	case *ast.TypeAssertExpr:
		return w.eval(x.X, s, topUse)
	case *ast.CompositeLit:
		c := w.siteCell(x, render(x.Type))
		s.revive(c)
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			for _, ec := range w.eval(v, s, true) {
				c.contains[ec] = true
				if ec.scratch != nil && c.scratch == nil {
					c.scratch = ec.scratch
				}
			}
		}
		return []*dfCell{c}
	case *ast.FuncLit:
		// Interior is a separate analysis unit; the closure value itself is
		// a fresh cell.
		c := w.siteCell(x, "closure")
		s.revive(c)
		return []*dfCell{c}
	}
	return nil
}

// exprObj resolves a plain identifier expression to its object, for
// correlating uses and releases with the variable they go through.
func (w *dfWalker) exprObj(e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := w.p.Info.Uses[id]; o != nil {
		return o
	}
	return w.p.Info.Defs[id]
}

// nilCond decomposes a `x == nil` / `x != nil` condition. nilThen reports
// that the THEN arm is the one where x is nil (the == form).
func (w *dfWalker) nilCond(cond ast.Expr) (x ast.Expr, nilThen bool, ok bool) {
	be, isBin := unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false, false
	}
	isNil := func(e ast.Expr) bool {
		tv, found := w.p.Info.Types[e]
		return found && tv.IsNil()
	}
	switch {
	case isNil(be.Y):
		x = be.X
	case isNil(be.X):
		x = be.Y
	default:
		return nil, false, false
	}
	return x, be.Op == token.EQL, true
}

// unacquire forgets acquisitions attributed to x's current cells: used on
// the nil arm of a nil-guarded pool fetch, where the miss path never took
// an object out of the pool.
func (w *dfWalker) unacquire(s *dfState, x ast.Expr) {
	id, isID := unparen(x).(*ast.Ident)
	if !isID {
		return
	}
	obj := w.p.Info.Uses[id]
	if obj == nil {
		obj = w.p.Info.Defs[id]
	}
	if obj == nil {
		return
	}
	for _, c := range s.vars[obj] {
		delete(s.acquired, c)
	}
}

// checkUse reports use-after-release for every released cell in the set.
// Releases settled as unobservable on their own path (uarOK) are skipped:
// only a path that released the cell and kept it bound can misuse it.
func (w *dfWalker) checkUse(s *dfState, cells []*dfCell, via types.Object, pos token.Pos, what string) {
	for _, c := range cells {
		rel, ok := s.released[c]
		if !ok || s.uarOK[c] {
			continue
		}
		if rb := s.relBound[c]; rb != nil && (via == nil || !rb[via]) {
			// The release was settled at a join while bound to OTHER
			// variables: the path binding `via` to this cell never
			// released it.
			continue
		}
		w.diag("poolsafe", pos, fmt.Sprintf("use@%d@%p", pos, c),
			"pooled %s used after release (released at line %d)", what, rel.Line)
	}
}

// acquire marks a cell as freshly taken from a pool on this path.
func (w *dfWalker) acquire(s *dfState, c *dfCell, pd *PoolDecl, pos token.Pos) {
	c.pooled = pd
	c.acq = w.p.Fset.Position(pos)
	s.acquired[c] = true
}

// release marks cells as returned to their pool, reporting double-release
// and release-after-escape. Releasing twice at the same site (a loop
// re-walk, or a summary coinciding with an explicit annotation) is one
// event, not a double release.
func (w *dfWalker) release(s *dfState, cells []*dfCell, pos token.Pos, via types.Object) {
	position := w.p.Fset.Position(pos)
	for _, c := range cells {
		if first, ok := s.released[c]; ok {
			if first == position {
				continue
			}
			// A release settled as unobservable on its own path (the other
			// arm's handoff) is not this path's first release; likewise a
			// release settled while bound only to OTHER variables sits on
			// a disjoint path from this one.
			rb := s.relBound[c]
			if !s.uarOK[c] && (rb == nil || (via != nil && rb[via])) {
				w.diag("poolsafe", pos, fmt.Sprintf("dbl@%d@%p", pos, c),
					"pooled %s released twice (first released at line %d)", c.label, first.Line)
			}
			continue
		}
		if esc := s.escaped[c]; esc != nil {
			what := esc.kind.String()
			if esc.kind == escStored && esc.what != "" {
				what = "stored into " + esc.what
			}
			w.diag("aliasescape", pos, fmt.Sprintf("esc@%d@%p", pos, c),
				"pooled %s released after an alias escaped at line %d (%s)", c.label, esc.pos.Line, what)
		}
		s.released[c] = position
		if w.sum != nil && c.param >= 0 {
			w.sum.setReleases(c.param)
		}
	}
}

// escape records an explicit escape, propagating into contained cells.
// Scratch cells escaping is the scratchlocal invariant.
func (w *dfWalker) escape(s *dfState, c *dfCell, kind escKind, pos token.Pos, dst string) {
	w.escapeRec(s, c, kind, pos, dst, 0)
}

func (w *dfWalker) escapeRec(s *dfState, c *dfCell, kind escKind, pos token.Pos, dst string, depth int) {
	if depth > 4 {
		return
	}
	if _, ok := s.escaped[c]; !ok {
		s.escaped[c] = &dfEscape{pos: w.p.Fset.Position(pos), kind: kind, what: dst}
	}
	s.parked[c] = true
	if c.scratch != nil {
		w.scratchEscape(s, c, kind, pos, dst)
	}
	if w.sum != nil && c.param >= 0 && kind != escReturned {
		w.sum.setEscapes(c.param)
	}
	for m := range c.contains {
		w.escapeRec(s, m, kind, pos, dst, depth+1)
	}
}

// scratchEscape reports a scratch alias leaving the borrowing call.
// Returns are flagged only from exported functions: an unexported helper
// handing its owner's scratch back to a same-package caller is the normal
// borrow pattern (the caller's own exits are still checked).
func (w *dfWalker) scratchEscape(s *dfState, c *dfCell, kind escKind, pos token.Pos, dst string) {
	switch kind {
	case escSent:
		w.diag("scratchlocal", pos, fmt.Sprintf("ssent@%d@%p", pos, c),
			"scratch %s sent on a channel, outliving the borrowing call", c.scratch.Name)
	case escStored:
		w.diag("scratchlocal", pos, fmt.Sprintf("sstore@%d@%p", pos, c),
			"scratch %s stored into %s, outliving the borrowing call", c.scratch.Name, dst)
	case escGoroutine:
		w.diag("scratchlocal", pos, fmt.Sprintf("sgo@%d@%p", pos, c),
			"scratch %s passed to a goroutine, outliving the borrowing call", c.scratch.Name)
	case escReturned:
		if w.node.Fn != nil && w.node.Fn.Exported() {
			w.diag("scratchlocal", pos, fmt.Sprintf("sret@%d@%p", pos, c),
				"scratch %s returned from exported %s; callers retain the scratch backing", c.scratch.Name, w.node.DisplayName())
		}
		if w.sum != nil && w.sum.ScratchRet == nil {
			w.sum.ScratchRet = c.scratch
		}
	}
}

// park marks cells as stored somewhere reachable: they cannot be reported
// as leaked.
func (w *dfWalker) park(s *dfState, cells []*dfCell) {
	for _, c := range cells {
		s.parked[c] = true
	}
}

// ---- assignment ----

func (w *dfWalker) walkAssign(st *ast.AssignStmt, s *dfState) {
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		// Compound assignment (+=, |=, …): value updates, no rebinding.
		for _, l := range st.Lhs {
			w.eval(l, s, true)
		}
		for _, r := range st.Rhs {
			w.eval(r, s, true)
		}
		return
	}
	var rhs [][]*dfCell
	for _, r := range st.Rhs {
		rhs = append(rhs, w.eval(r, s, true))
	}
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		// v, ok := … / multi-result call: the tracked object flows to the
		// first variable; the rest get fresh cells.
		for i, l := range st.Lhs {
			if i == 0 {
				w.assignTo(l, rhs[0], s)
				continue
			}
			c := w.siteCell(l, render(l))
			s.revive(c)
			w.assignTo(l, []*dfCell{c}, s)
		}
		return
	}
	for i, l := range st.Lhs {
		var cells []*dfCell
		if i < len(rhs) {
			cells = rhs[i]
		}
		w.assignTo(l, cells, s)
	}
}

func (w *dfWalker) assignTo(lhs ast.Expr, cells []*dfCell, s *dfState) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := w.p.Info.Defs[l]
		if obj == nil {
			obj = w.p.Info.Uses[l]
		}
		if obj == nil {
			return
		}
		if w.isLocal(obj) {
			s.vars[obj] = append([]*dfCell(nil), cells...)
			for _, c := range cells {
				if c.label == "" {
					c.label = l.Name
				}
			}
			return
		}
		// Package-level or captured variable: the store is an escape.
		for _, c := range cells {
			w.escape(s, c, escStored, l.Pos(), l.Name)
		}
	case *ast.SelectorExpr:
		base := w.eval(l.X, s, true)
		w.storeInto(l, base, cells, s, fieldScratch(w.p, w.eng.reg, l))
	case *ast.IndexExpr:
		base := w.eval(l.X, s, true)
		w.eval(l.Index, s, true)
		w.storeInto(l, base, cells, s, nil)
	case *ast.StarExpr:
		base := w.eval(l.X, s, true)
		w.storeInto(l, base, cells, s, nil)
	case *ast.ParenExpr:
		w.assignTo(l.X, cells, s)
	}
}

// fieldScratch returns the scratch declaration of a selector's field, if
// annotated.
func fieldScratch(p *Package, reg *PoolRegistry, sel *ast.SelectorExpr) *ScratchDecl {
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	return reg.Scratch[s.Obj()]
}

// storeInto applies the effects of storing cells through a selector, index,
// or pointer target.
func (w *dfWalker) storeInto(lhs ast.Expr, base, cells []*dfCell, s *dfState, dstScratch *ScratchDecl) {
	intoScratch := dstScratch != nil
	if !intoScratch {
		for _, b := range base {
			if b.scratch != nil {
				intoScratch = true
				break
			}
		}
	}
	nonLocalBase := false
	for _, b := range base {
		if b.heap || b.isParam || b.pooled != nil {
			nonLocalBase = true
			break
		}
	}
	for _, c := range cells {
		switch {
		case intoScratch:
			// Parking in a scratch arena keeps the object reachable for the
			// rest of the call and nothing longer: not an escape, but it
			// must not be reported as a leak either.
			s.parked[c] = true
			for _, b := range base {
				b.contains[c] = true
			}
		case nonLocalBase:
			w.escape(s, c, escStored, lhs.Pos(), render(lhs))
		default:
			// Store into a purely local value: containment only.
			s.parked[c] = true
			for _, b := range base {
				b.contains[c] = true
			}
		}
	}
}

// isLocal reports whether obj is a parameter or declared inside this
// node's body.
func (w *dfWalker) isLocal(obj types.Object) bool {
	if _, isParam := w.paramsOf[obj]; isParam {
		return true
	}
	if obj.Pos() == token.NoPos {
		return false
	}
	return w.node.Body.Pos() <= obj.Pos() && obj.Pos() <= w.node.Body.End()
}

// ---- calls ----

// evalReceiver evaluates a method call's receiver expression for use
// tracking (the receiver is part of Fun, not Args).
func (w *dfWalker) evalReceiver(call *ast.CallExpr, s *dfState) []*dfCell {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if ms := w.p.Info.Selections[sel]; ms != nil && ms.Kind() == types.MethodVal {
		return w.eval(sel.X, s, true)
	}
	return nil
}

func (w *dfWalker) evalCall(call *ast.CallExpr, s *dfState) []*dfCell {
	// Conversions propagate their operand's cells (a conversion never
	// copies a backing array).
	if tv, ok := w.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return w.eval(call.Args[0], s, true)
		}
		return nil
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			return w.evalBuiltin(id.Name, call, s)
		}
	}
	// sync.Pool endpoints on declared pools.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pd := w.poolOf(sel.X); pd != nil && pd.Kind == roleSyncPool {
			switch sel.Sel.Name {
			case "Get":
				c := w.siteCell(call, "value from "+pd.Name)
				s.revive(c)
				w.acquire(s, c, pd, call.Pos())
				return []*dfCell{c}
			case "Put":
				if len(call.Args) == 1 {
					cells := w.eval(call.Args[0], s, false)
					w.release(s, cells, call.Pos(), w.exprObj(call.Args[0]))
				}
				return nil
			}
		}
	}
	w.evalReceiver(call, s)
	var args [][]*dfCell
	for i, a := range call.Args {
		topUse := true
		if w.releasesArg(call, i) {
			topUse = false // the release path reports double-release itself
		}
		args = append(args, w.eval(a, s, topUse))
	}
	return w.applyCallEffects(call, args, s)
}

// releasesArg reports whether the called function releases argument i, via
// annotation or derived summary.
func (w *dfWalker) releasesArg(call *ast.CallExpr, i int) bool {
	fn := w.calledFunc(call)
	if fn != nil && w.eng.reg.Releases[fn.Origin()] && i == 0 {
		return true
	}
	if w.eng.sums == nil {
		return false
	}
	if callee, unknown := w.eng.m.Graph().resolveCall(w.p, call); !unknown && callee != nil {
		if sum := w.eng.sums[callee]; sum != nil {
			pi := i
			if pi >= len(sum.Releases) && len(sum.Releases) > 0 {
				pi = len(sum.Releases) - 1
			}
			return pi >= 0 && pi < len(sum.Releases) && sum.Releases[pi]
		}
	}
	return false
}

// applyCallEffects resolves the callee and applies release/escape/acquire
// effects to already-evaluated argument cells. Used both at call sites and
// when deferred calls run at function exit.
func (w *dfWalker) applyCallEffects(call *ast.CallExpr, args [][]*dfCell, s *dfState) []*dfCell {
	fn := w.calledFunc(call)
	if fn != nil && w.eng.reg.Releases[fn.Origin()] && len(args) > 0 {
		var via types.Object
		if len(call.Args) > 0 {
			via = w.exprObj(call.Args[0])
		}
		w.release(s, args[0], call.Pos(), via)
	}
	callee, unknown := w.eng.m.Graph().resolveCall(w.p, call)
	if unknown || callee == nil {
		// Unknown or out-of-load callee: bounded analysis — arguments are
		// parked (the callee may retain them) but never released, escaped,
		// or leaked through an edge that cannot be proven.
		for _, cells := range args {
			w.park(s, cells)
		}
		return w.callResult(call, s, nil)
	}
	var sum *PoolSummary
	if w.eng.sums != nil {
		sum = w.eng.sums[callee]
	}
	if sum != nil {
		for i, cells := range args {
			pi := i
			if pi >= len(sum.Releases) && len(sum.Releases) > 0 {
				pi = len(sum.Releases) - 1 // variadic tail
			}
			if pi >= 0 && pi < len(sum.Releases) && sum.Releases[pi] {
				var via types.Object
				if i < len(call.Args) {
					via = w.exprObj(call.Args[i])
				}
				w.release(s, cells, call.Pos(), via)
			}
			if pi >= 0 && pi < len(sum.Escapes) && sum.Escapes[pi] {
				for _, c := range cells {
					w.escapeRec(s, c, escCall, call.Pos(), callee.DisplayName(), 0)
				}
			}
		}
	}
	for _, cells := range args {
		w.park(s, cells)
	}
	return w.callResult(call, s, sum)
}

// callResult builds the result cells of a call.
func (w *dfWalker) callResult(call *ast.CallExpr, s *dfState, sum *PoolSummary) []*dfCell {
	c := w.siteCell(call, "result of "+render(call.Fun))
	s.revive(c)
	c.heap = true
	if fn := w.calledFunc(call); fn != nil && w.eng.reg.Acquires[fn.Origin()] {
		w.acquire(s, c, &PoolDecl{Name: fn.Name(), Kind: roleFreelist}, call.Pos())
		c.label = "value from " + fn.Name()
	}
	if sum != nil {
		if sum.Acquires && c.pooled == nil {
			w.acquire(s, c, &PoolDecl{Name: render(call.Fun), Kind: roleFreelist}, call.Pos())
			c.label = "value from " + render(call.Fun)
		}
		if sum.ScratchRet != nil {
			c.scratch = sum.ScratchRet
		}
	}
	return []*dfCell{c}
}

// calledFunc returns the static *types.Func a call invokes, if any.
func (w *dfWalker) calledFunc(call *ast.CallExpr) *types.Func {
	return staticFunc(w.p, call)
}

func (w *dfWalker) evalBuiltin(name string, call *ast.CallExpr, s *dfState) []*dfCell {
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return nil
		}
		dst := w.eval(call.Args[0], s, true)
		if pd := w.poolOf(call.Args[0]); pd != nil && pd.Kind == roleFreelist {
			// append(freelist, x…) is the push half of the freelist
			// protocol: x is released back to the pool.
			for _, a := range call.Args[1:] {
				cells := w.eval(a, s, false)
				w.release(s, cells, call.Pos(), w.exprObj(a))
			}
			return dst
		}
		// Appending into a scratch container parks (the arena owns it for
		// the rest of the call); appending into non-local memory — live
		// state, an emission buffer reachable from a parameter — escapes.
		dstScratch := false
		dstNonLocal := false
		for _, d := range dst {
			if d.scratch != nil {
				dstScratch = true
			}
			if d.heap || d.isParam || d.pooled != nil {
				dstNonLocal = true
			}
		}
		for _, a := range call.Args[1:] {
			for _, c := range w.eval(a, s, true) {
				if !dstScratch && dstNonLocal {
					w.escape(s, c, escStored, a.Pos(), render(call.Args[0]))
					continue
				}
				for _, d := range dst {
					d.contains[c] = true
					if c.scratch != nil && d.scratch == nil {
						d.scratch = c.scratch
					}
				}
				s.parked[c] = true
			}
		}
		return dst
	case "make", "new":
		c := w.siteCell(call, render(call))
		s.revive(c)
		return []*dfCell{c}
	case "len", "cap":
		// Capacity peeks read container metadata without taking ownership:
		// a freelist element inspected under len/cap is not acquired.
		w.peek++
		for _, a := range call.Args {
			w.eval(a, s, true)
		}
		w.peek--
		return nil
	}
	for _, a := range call.Args {
		w.eval(a, s, true)
	}
	return nil
}

// poolOf resolves an expression to a declared pool/freelist: a bare
// identifier (package-level var) or a field selector.
func (w *dfWalker) poolOf(e ast.Expr) *PoolDecl {
	return poolOfExpr(w.p, w.eng.reg, e)
}

// render is the compact source render used in messages.
func render(e ast.Expr) string {
	return types.ExprString(e)
}
