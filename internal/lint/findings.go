package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Finding is the machine-readable form of one diagnostic, the unit of the
// -format json output and of the checked-in baseline. The schema is
// stable: tools (and the CI baseline diff) may rely on these exact fields.
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// File is the repo-relative, slash-separated path.
	File string `json:"file"`
	// Line and Col anchor the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Chain is the witness call chain for interprocedural findings,
	// outermost first; empty for intraprocedural ones.
	Chain []string `json:"chain,omitempty"`
}

// SuppressedFinding is a finding silenced by a //lint:ignore directive,
// carrying the directive's stated reason so suppressions stay auditable
// from the JSON output alone.
type SuppressedFinding struct {
	Finding
	// Reason is the justification text of the covering directive.
	Reason string `json:"reason"`
}

// Report is the top-level -format json document.
type Report struct {
	// Version identifies the schema; bumped on incompatible change.
	Version int `json:"version"`
	// Findings are sorted by (file, line, col, analyzer).
	Findings []Finding `json:"findings"`
	// Suppressed lists //lint:ignore-silenced findings with their reasons,
	// same order. Omitted from baselines: suppressions are not regressions.
	Suppressed []SuppressedFinding `json:"suppressed,omitempty"`
}

// ReportVersion is the current Report schema version.
const ReportVersion = 1

// newFinding converts one diagnostic, relativizing the path against root
// (left absolute when that fails).
func newFinding(root string, d Diagnostic) Finding {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
		file = rel
	}
	return Finding{
		Analyzer: d.Analyzer,
		File:     filepath.ToSlash(file),
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
		Chain:    d.Chain,
	}
}

// NewReport converts diagnostics into a Report with paths relativized
// against root (left absolute when that fails).
func NewReport(root string, diags []Diagnostic) Report {
	fs := make([]Finding, 0, len(diags))
	for _, d := range diags {
		fs = append(fs, newFinding(root, d))
	}
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return Report{Version: ReportVersion, Findings: fs}
}

// SuppressedFindings converts suppressed diagnostics for inclusion in a
// Report, preserving their order.
func SuppressedFindings(root string, sup []SuppressedDiagnostic) []SuppressedFinding {
	out := make([]SuppressedFinding, 0, len(sup))
	for _, s := range sup {
		out = append(out, SuppressedFinding{Finding: newFinding(root, s.Diagnostic), Reason: s.Reason})
	}
	return out
}

// WriteJSON renders the report as indented JSON with a trailing newline
// (stable output, friendly to diffing and committing).
func (r Report) WriteJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// LoadBaseline reads a committed Report from disk.
func LoadBaseline(path string) (Report, error) {
	var r Report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Version != ReportVersion {
		return r, fmt.Errorf("%s: baseline schema version %d, tool expects %d", path, r.Version, ReportVersion)
	}
	return r, nil
}

// baselineKey identifies a finding for baseline matching. Line and column
// are deliberately excluded so unrelated edits that shift code do not
// resurrect baselined findings; a finding is the same finding as long as
// the analyzer, file, and message agree.
func baselineKey(f Finding) string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

// Subtract returns the findings of r not covered by the baseline. Matching
// is multiset: a baseline entry absorbs exactly one current finding, so a
// duplicated regression still surfaces.
func (r Report) Subtract(baseline Report) []Finding {
	budget := map[string]int{}
	for _, f := range baseline.Findings {
		budget[baselineKey(f)]++
	}
	fresh := []Finding{} // non-nil: marshals as [] in -format json
	for _, f := range r.Findings {
		k := baselineKey(f)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}
