package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// This file parses the //lint:pooled directive, the declaration side of the
// lifetime layer (DESIGN.md §16). The directive declares the recycled-memory
// surfaces the poolsafe / aliasescape / scratchlocal analyzers track:
//
//	//lint:pooled pool <reason>      on a sync.Pool variable or field:
//	                                 .Get() acquires, .Put(x) releases.
//	//lint:pooled freelist <reason>  on a slice-typed field or variable:
//	                                 an element read (f[i]) acquires,
//	                                 append(f, x) releases x back.
//	//lint:pooled scratch <reason>   on a field: a per-call borrow — aliases
//	                                 must not outlive the borrowing call.
//	//lint:pooled acquire <reason>   on a function: its results are pooled.
//	//lint:pooled release <reason>   on a function: its first argument is
//	                                 released back to a pool.
//
// The directive goes on the declaration's line, alone on the line directly
// above it, or (for functions) anywhere in the doc comment — the same
// placement rules as //lint:ephemeral and //lint:hotpath. The reason is
// mandatory. Helper endpoints (getVal/putVal-style wrappers) usually need no
// explicit acquire/release annotation: touching an annotated pool or
// freelist inside a function body derives its summary interprocedurally.

// poolRole is the declared role of one //lint:pooled directive.
type poolRole uint8

const (
	roleSyncPool poolRole = iota
	roleFreelist
	roleScratch
	roleAcquire
	roleRelease
)

var poolRoleNames = map[string]poolRole{
	"pool":     roleSyncPool,
	"freelist": roleFreelist,
	"scratch":  roleScratch,
	"acquire":  roleAcquire,
	"release":  roleRelease,
}

// PoolDecl is one declared pool or freelist.
type PoolDecl struct {
	Obj  types.Object // the sync.Pool var, or the freelist field/var
	Name string       // identifier, for messages
	Kind poolRole     // roleSyncPool or roleFreelist
}

// ScratchDecl is one declared scratch field.
type ScratchDecl struct {
	Obj  types.Object
	Name string
}

// PoolRegistry is the module-wide set of declared pooled surfaces.
type PoolRegistry struct {
	Pools    map[types.Object]*PoolDecl
	Scratch  map[types.Object]*ScratchDecl
	Acquires map[*types.Func]bool
	Releases map[*types.Func]bool
	// Bad collects directive-misuse findings (missing reason, unknown role,
	// role/declaration mismatch, directive attached to nothing). They are
	// reported by poolsafe so misannotations cannot silently disable the
	// layer.
	Bad []Diagnostic
}

func (r *PoolRegistry) empty() bool {
	return len(r.Pools) == 0 && len(r.Scratch) == 0 &&
		len(r.Acquires) == 0 && len(r.Releases) == 0
}

var pooledRe = regexp.MustCompile(`^//lint:pooled(?:\s+(\S+))?(?:\s+(.*))?$`)

// pooledDirective is one parsed //lint:pooled comment, before attachment.
type pooledDirective struct {
	file    string
	line    int
	ownLine bool
	pos     token.Position
	role    poolRole
	used    bool
}

// collectPooled parses every //lint:pooled directive in a package.
// Malformed directives are reported immediately; well-formed ones are
// returned for attachment.
func collectPooled(p *Package) ([]*pooledDirective, []Diagnostic) {
	var dirs []*pooledDirective
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := pooledRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				role, ok := poolRoleNames[m[1]]
				if !ok {
					bad = append(bad, Diagnostic{
						Analyzer: "poolsafe",
						Pos:      pos,
						Message:  "//lint:pooled directive needs a role: pool, freelist, scratch, acquire, or release",
					})
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "poolsafe",
						Pos:      pos,
						Message:  "//lint:pooled directive is missing a reason",
					})
					continue
				}
				dirs = append(dirs, &pooledDirective{
					file:    pos.Filename,
					line:    pos.Line,
					ownLine: pos.Column == 1 || onlyWhitespaceBefore(p, c.Pos()),
					pos:     pos,
					role:    role,
				})
			}
		}
	}
	return dirs, bad
}

// directiveAt returns the directive covering a declaration at pos: same
// line, or alone on the line directly above.
func directiveAt(dirs []*pooledDirective, pos token.Position) *pooledDirective {
	for _, d := range dirs {
		if d.file != pos.Filename {
			continue
		}
		if d.line == pos.Line || (d.ownLine && d.line == pos.Line-1) {
			return d
		}
	}
	return nil
}

// directiveInDoc returns a directive whose line falls inside a doc comment
// group (function annotations live in the doc block, like //lint:hotpath).
func directiveInDoc(dirs []*pooledDirective, p *Package, doc *ast.CommentGroup) *pooledDirective {
	if doc == nil {
		return nil
	}
	start := p.Fset.Position(doc.Pos())
	end := p.Fset.Position(doc.End())
	for _, d := range dirs {
		if d.file == start.Filename && d.line >= start.Line && d.line <= end.Line {
			return d
		}
	}
	return nil
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isSlice reports whether t's underlying type is a slice.
func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// BuildPoolRegistry discovers every //lint:pooled declaration in the module
// and validates role/declaration agreement.
func BuildPoolRegistry(m *Module) *PoolRegistry {
	reg := &PoolRegistry{
		Pools:    map[types.Object]*PoolDecl{},
		Scratch:  map[types.Object]*ScratchDecl{},
		Acquires: map[*types.Func]bool{},
		Releases: map[*types.Func]bool{},
	}
	for _, p := range m.Pkgs {
		dirs, bad := collectPooled(p)
		reg.Bad = append(reg.Bad, bad...)
		if len(dirs) == 0 {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					reg.attachFunc(p, dirs, d)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.ValueSpec:
							reg.attachValue(p, dirs, sp)
						case *ast.TypeSpec:
							if st, ok := sp.Type.(*ast.StructType); ok {
								reg.attachFields(p, dirs, st)
							}
						}
					}
				}
			}
		}
		for _, d := range dirs {
			if !d.used {
				reg.Bad = append(reg.Bad, Diagnostic{
					Analyzer: "poolsafe",
					Pos:      d.pos,
					Message:  "//lint:pooled directive does not attach to a declaration",
				})
			}
		}
	}
	return reg
}

func (r *PoolRegistry) misuse(pos token.Position, msg string) {
	r.Bad = append(r.Bad, Diagnostic{Analyzer: "poolsafe", Pos: pos, Message: msg})
}

// attachFunc attaches an acquire/release directive to a function decl.
func (r *PoolRegistry) attachFunc(p *Package, dirs []*pooledDirective, fd *ast.FuncDecl) {
	d := directiveInDoc(dirs, p, fd.Doc)
	if d == nil {
		d = directiveAt(dirs, p.Fset.Position(fd.Pos()))
	}
	if d == nil {
		return
	}
	d.used = true
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	switch d.role {
	case roleAcquire:
		if sig.Results().Len() == 0 {
			r.misuse(d.pos, "//lint:pooled acquire on a function with no results")
			return
		}
		r.Acquires[fn] = true
	case roleRelease:
		if sig.Params().Len() == 0 {
			r.misuse(d.pos, "//lint:pooled release on a function with no parameters")
			return
		}
		r.Releases[fn] = true
	default:
		r.misuse(d.pos, "//lint:pooled "+roleName(d.role)+" cannot annotate a function (want acquire or release)")
	}
}

// attachValue attaches pool/freelist directives to package-level variables.
func (r *PoolRegistry) attachValue(p *Package, dirs []*pooledDirective, sp *ast.ValueSpec) {
	for _, name := range sp.Names {
		d := directiveAt(dirs, p.Fset.Position(name.Pos()))
		if d == nil {
			continue
		}
		d.used = true
		obj := p.Info.Defs[name]
		if obj == nil {
			continue
		}
		r.attachObj(d, obj, name.Name)
	}
}

// attachFields attaches pool/freelist/scratch directives to struct fields.
func (r *PoolRegistry) attachFields(p *Package, dirs []*pooledDirective, st *ast.StructType) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			d := directiveAt(dirs, p.Fset.Position(name.Pos()))
			if d == nil {
				continue
			}
			d.used = true
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			r.attachObj(d, obj, name.Name)
		}
	}
}

// attachObj validates one directive against the declared object's type and
// records it.
func (r *PoolRegistry) attachObj(d *pooledDirective, obj types.Object, name string) {
	switch d.role {
	case roleSyncPool:
		if !isSyncPool(obj.Type()) {
			r.misuse(d.pos, "//lint:pooled pool on a non-sync.Pool declaration")
			return
		}
		r.Pools[obj] = &PoolDecl{Obj: obj, Name: name, Kind: roleSyncPool}
	case roleFreelist:
		if !isSlice(obj.Type()) {
			r.misuse(d.pos, "//lint:pooled freelist on a non-slice declaration")
			return
		}
		r.Pools[obj] = &PoolDecl{Obj: obj, Name: name, Kind: roleFreelist}
	case roleScratch:
		r.Scratch[obj] = &ScratchDecl{Obj: obj, Name: name}
	default:
		r.misuse(d.pos, "//lint:pooled "+roleName(d.role)+" cannot annotate a variable or field (want pool, freelist, or scratch)")
	}
}

func roleName(role poolRole) string {
	switch role {
	case roleSyncPool:
		return "pool"
	case roleFreelist:
		return "freelist"
	case roleScratch:
		return "scratch"
	case roleAcquire:
		return "acquire"
	default:
		return "release"
	}
}
