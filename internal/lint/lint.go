// Package lint is AStream's from-scratch static-analysis framework: a
// stdlib-only (go/parser + go/ast + go/types + go/importer) vet-style
// harness enforcing engine invariants the Go type system cannot express —
// event-time purity, lock discipline around shared state, deterministic
// iteration on encode paths, goroutine-teardown hygiene, and consistent
// atomic access. The driver lives in cmd/astream-vet; each analyzer is a
// pluggable unit implementing Analyzer.
//
// Diagnostics may be suppressed in source with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the offending line or alone on the line directly above
// it. The reason is mandatory; a directive without one is itself reported.
// The analyzer list may be "all" to match any analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Package is one loaded, type-checked package as seen by analyzers.
type Package struct {
	// Path is the package's import path (fixtures use a synthetic path).
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset positions every token of Files.
	Fset *token.FileSet
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the use/def/type maps produced by the checker.
	Info *types.Info
	// Src maps filename to raw source bytes (directive parsing).
	Src map[string][]byte
}

// Diagnostic is one finding, anchored to an exact source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Chain is the call chain behind an interprocedural finding, outermost
	// first (empty for intraprocedural findings). The human-readable Message
	// already embeds it; Chain is the machine-readable copy for -format json.
	Chain []string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one pluggable invariant check. Exactly one of Run and
// RunModule is set: Run sees one package at a time; RunModule sees the
// whole load at once with the shared call graph, which is what the
// interprocedural analyzers (lockheld-send, hotalloc) need.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects a package and returns raw findings; suppression is
	// applied by the framework afterwards.
	Run func(p *Package) []Diagnostic
	// RunModule inspects every loaded package at once, with access to the
	// module call graph and function summaries.
	RunModule func(m *Module) []Diagnostic
}

// Module is one whole analysis scope: every package of a load, plus the
// lazily built call graph and per-function blocking summaries shared by
// the interprocedural analyzers.
type Module struct {
	Pkgs []*Package

	graph *CallGraph
	sums  map[*CGNode]*BlockSummary
	lt    *lifetimeResult
}

// NewModule wraps a set of loaded packages into one analysis scope.
func NewModule(pkgs []*Package) *Module { return &Module{Pkgs: pkgs} }

// Graph returns the module call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	if m.graph == nil {
		m.graph = BuildCallGraph(m.Pkgs)
	}
	return m.graph
}

// BlockSummaries returns the per-function may-block summaries, computing
// them on first use.
func (m *Module) BlockSummaries() map[*CGNode]*BlockSummary {
	if m.sums == nil {
		m.sums = ComputeBlockSummaries(m.Graph())
	}
	return m.sums
}

// lifetime returns the shared lifetime-layer run (registry, summaries,
// poolsafe/aliasescape/scratchlocal findings), computing it on first use so
// the three analyzers share one pass.
func (m *Module) lifetime() *lifetimeResult {
	if m.lt == nil {
		m.lt = computeLifetime(m)
	}
	return m.lt
}

// Diag builds a Diagnostic for the analyzer at pos.
func (a *Analyzer) Diag(p *Package, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Analyzer: a.Name, Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int  // line the directive appears on
	ownLine   bool // comment stands alone, so it covers line+1
	analyzers []string
	reason    string
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// collectIgnores parses every //lint:ignore directive in the package.
// Malformed directives (no reason) are returned as diagnostics so they
// cannot silently rot.
func collectIgnores(p *Package) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "//lint:ignore directive is missing a reason",
					})
					continue
				}
				// The directive stands alone when nothing but whitespace
				// precedes it on its line.
				ownLine := pos.Column == 1 || onlyWhitespaceBefore(p, c.Pos())
				dirs = append(dirs, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					ownLine:   ownLine,
					analyzers: strings.Split(m[1], ","),
					reason:    strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return dirs, bad
}

// onlyWhitespaceBefore reports whether the comment at pos is the first
// non-blank token on its line.
func onlyWhitespaceBefore(p *Package, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	src, ok := p.Src[position.Filename]
	if !ok {
		return false
	}
	lineStart := position.Offset - (position.Column - 1)
	if lineStart < 0 || position.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[lineStart:position.Offset])) == ""
}

// suppressReason returns the reason of the first directive covering d,
// and whether any directive does.
func suppressReason(d Diagnostic, dirs []ignoreDirective) (string, bool) {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename {
			continue
		}
		if dir.line != d.Pos.Line && !(dir.ownLine && dir.line == d.Pos.Line-1) {
			continue
		}
		for _, name := range dir.analyzers {
			if name == "all" || name == d.Analyzer {
				return dir.reason, true
			}
		}
	}
	return "", false
}

// SuppressedDiagnostic is a diagnostic silenced by a //lint:ignore
// directive, together with the directive's stated reason. Suppressions are
// reported alongside live findings in -format json so the justifications
// stay auditable without grepping the source.
type SuppressedDiagnostic struct {
	Diagnostic
	Reason string
}

// Run executes every analyzer over every package, applies //lint:ignore
// suppression, and returns the surviving diagnostics in file/line order.
// Module analyzers (RunModule) execute once over the whole load.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAll(pkgs, analyzers)
	return diags
}

// RunAll is Run plus the suppressed diagnostics: every finding silenced by
// a //lint:ignore directive is returned separately with the directive's
// reason, in the same file/line order.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []SuppressedDiagnostic) {
	diags, sup, _ := RunAllTimed(pkgs, analyzers)
	return diags, sup
}

// AnalyzerTiming is one analyzer's wall-clock cost over a RunAllTimed
// invocation, summed across packages (and the module pass for module
// analyzers). Shared infrastructure built lazily — the call graph, block
// summaries, the lifetime dataflow — is billed to the first analyzer that
// demands it.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunAllTimed is RunAll plus per-analyzer timings, in the analyzers'
// given order.
func RunAllTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []SuppressedDiagnostic, []AnalyzerTiming) {
	var out []Diagnostic
	var sup []SuppressedDiagnostic
	var allDirs []ignoreDirective
	elapsed := make(map[string]time.Duration, len(analyzers))
	keep := func(d Diagnostic, dirs []ignoreDirective) {
		if reason, ok := suppressReason(d, dirs); ok {
			sup = append(sup, SuppressedDiagnostic{Diagnostic: d, Reason: reason})
		} else {
			out = append(out, d)
		}
	}
	for _, p := range pkgs {
		dirs, bad := collectIgnores(p)
		out = append(out, bad...)
		allDirs = append(allDirs, dirs...)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			//lint:ignore wallclock analyzer timing instrumentation, not event-time logic
			start := time.Now()
			ds := a.Run(p)
			//lint:ignore wallclock analyzer timing instrumentation, not event-time logic
			elapsed[a.Name] += time.Since(start)
			for _, d := range ds {
				keep(d, dirs)
			}
		}
	}
	mod := NewModule(pkgs)
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		//lint:ignore wallclock analyzer timing instrumentation, not event-time logic
		start := time.Now()
		ds := a.RunModule(mod)
		//lint:ignore wallclock analyzer timing instrumentation, not event-time logic
		elapsed[a.Name] += time.Since(start)
		for _, d := range ds {
			keep(d, allDirs)
		}
	}
	var timings []AnalyzerTiming
	for _, a := range analyzers {
		timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: elapsed[a.Name]})
	}
	byPos := func(a, b Diagnostic) bool {
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	}
	sort.Slice(out, func(i, j int) bool { return byPos(out[i], out[j]) })
	sort.Slice(sup, func(i, j int) bool { return byPos(sup[i].Diagnostic, sup[j].Diagnostic) })
	return out, sup, timings
}

// pathMatches reports whether an import path matches any pattern. A
// pattern matches exactly, or as a prefix when it ends in "/..." .
func pathMatches(path string, patterns []string) bool {
	for _, pat := range patterns {
		if strings.HasSuffix(pat, "/...") {
			if path == strings.TrimSuffix(pat, "/...") || strings.HasPrefix(path, strings.TrimSuffix(pat, "...")) {
				return true
			}
			continue
		}
		if path == pat {
			return true
		}
	}
	return false
}
