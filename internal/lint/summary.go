package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// BlockSummary is the per-function "may block on a channel" summary the
// interprocedural lockheld-send analyzer propagates bottom-up over the call
// graph. A function blocks when its body performs a channel send, a
// blocking receive, a default-less select, or a range over a channel — or
// when it (transitively) calls a function that does.
//
// The analysis is bounded: calls through function values and interface
// methods never contribute (no finding is produced through an edge that
// cannot be statically proven), goroutine launches never block their
// caller, and sends/receives guarded by a select default are non-blocking.
type BlockSummary struct {
	// Blocks reports whether the function may block on a channel.
	Blocks bool
	// Desc names the primitive operation ("channel send", …). Set only on
	// the function that performs it directly.
	Desc string
	// Pos is the primitive operation's position (direct blockers only).
	Pos token.Pos
	// Via is the witness call edge for transitive blockers: following Via
	// chains ends at a direct blocker. Nil when the block is direct.
	Via *CGEdge
}

// ComputeBlockSummaries scans every node for direct channel blocking and
// propagates may-block bottom-up to callers until fixpoint. Iteration is
// over the graph's deterministic node order and each node's source-ordered
// edges, so witness chains (and therefore messages) are deterministic;
// recursion converges because a summary only ever flips false→true.
func ComputeBlockSummaries(g *CallGraph) map[*CGNode]*BlockSummary {
	sums := make(map[*CGNode]*BlockSummary, len(g.Nodes))
	for _, n := range g.Nodes {
		s := &BlockSummary{}
		if desc, pos, ok := directBlock(n); ok {
			s.Blocks, s.Desc, s.Pos = true, desc, pos
		}
		sums[n] = s
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			s := sums[n]
			if s.Blocks {
				continue
			}
			for _, e := range n.Out {
				if e.Kind == CallGo {
					continue // runs on its own goroutine
				}
				if cs := sums[e.Callee]; cs != nil && cs.Blocks {
					s.Blocks = true
					s.Via = e
					changed = true
					break
				}
			}
		}
	}
	return sums
}

// BlockChain renders the witness behind a blocking node: the display-name
// chain starting at n, the primitive operation's description, and its
// position. Safe to call only when the summary blocks.
func BlockChain(n *CGNode, sums map[*CGNode]*BlockSummary) (chain []string, desc string, pos token.Position) {
	for {
		chain = append(chain, n.DisplayName())
		s := sums[n]
		if s == nil || !s.Blocks {
			return chain, "unknown", token.Position{}
		}
		if s.Via == nil {
			return chain, s.Desc, n.Pkg.Fset.Position(s.Pos)
		}
		n = s.Via.Callee
	}
}

// chainSite renders a blocking site compactly for messages (base file
// name only — the diagnostic itself anchors the caller side).
func chainSite(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// directBlock scans one function body for its first (in source order)
// unconditionally blocking channel operation. Nested function literals are
// separate nodes and are skipped; operations that are the communication
// clause of a select with a default are non-blocking and are skipped.
func directBlock(n *CGNode) (desc string, pos token.Pos, found bool) {
	p := n.Pkg
	// Communication statements of selects that have a default clause are
	// guarded: collect them so the walk below skips their channel ops.
	guarded := map[ast.Stmt]bool{}
	walkOwn(n, func(node ast.Node) {
		sel, ok := node.(*ast.SelectStmt)
		if !ok {
			return
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				guarded[cc.Comm] = true
			}
		}
	})

	var visit func(node ast.Node) bool
	visit = func(node ast.Node) bool {
		if found {
			return false
		}
		switch x := node.(type) {
		case *ast.FuncLit:
			return x == n.Lit // interiors of nested literals are their own nodes
		case *ast.GoStmt:
			// The spawned call cannot block this goroutine; its arguments
			// are evaluated here and can.
			for _, arg := range x.Call.Args {
				ast.Inspect(arg, visit)
			}
			return false
		case ast.Stmt:
			if guarded[x] {
				return false
			}
			switch st := x.(type) {
			case *ast.SendStmt:
				desc, pos, found = "channel send", st.Arrow, true
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					desc, pos, found = "select with no default", st.Select, true
					return false
				}
				return true
			case *ast.RangeStmt:
				if t := p.Info.Types[st.X].Type; t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						desc, pos, found = "range over channel", st.For, true
						return false
					}
				}
				return true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				desc, pos, found = "channel receive", x.OpPos, true
				return false
			}
		}
		return true
	}
	ast.Inspect(n.Body, visit)
	return desc, pos, found
}
