package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NewErrSink builds the error-sink analyzer for the state packages: on
// checkpoint, recovery, and changelog paths a swallowed error reintroduces
// exactly the silent data loss PR 5 converted panics into errors to
// surface. Three sinks are flagged, flow-sensitively and per function:
//
//   - an error result discarded with _ (either `_ = f()` or the error
//     position of a multi-assign);
//   - a call, deferred call, or go statement whose results include an
//     error that nothing receives;
//   - a local error variable reassigned before its current value was
//     read, or still unread when the function ends.
//
// "Read" is any use of the variable — a comparison, a return, a wrapping
// call, capture by a closure. Branches are walked against a copy of the
// pending-error set and a read on any branch counts (the analysis is
// deliberately permissive: it only reports errors no syntactic path
// checks). Loop bodies are walked once; a variable the loop reassigns is
// dropped from tracking, since a later iteration may read the value the
// straight-line walk thinks is dead. Struct fields and package variables
// are out of scope — only locals and named results are tracked.
func NewErrSink(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "errsink",
		Doc:  "flags discarded, unchecked, and overwritten-before-check error values on state paths",
	}
	a.Run = func(p *Package) []Diagnostic {
		if len(scope) > 0 && !pathMatches(p.Path, scope) {
			return nil
		}
		var diags []Diagnostic
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						diags = append(diags, errSinkFunc(a, p, fn.Type, fn.Body)...)
					}
				case *ast.FuncLit:
					diags = append(diags, errSinkFunc(a, p, fn.Type, fn.Body)...)
				}
				return true
			})
		}
		return diags
	}
	return a
}

// errFlow is the per-function walk state.
type errFlow struct {
	a *Analyzer
	p *Package
	// tracked holds the locals and named results of exact type error that
	// the overwrite/unread checks apply to.
	tracked map[*types.Var]bool
	// pending maps a tracked variable to its last unread assignment.
	pending map[*types.Var]token.Pos
	diags   []Diagnostic
}

// errSinkFunc analyzes one function body. Nested function literals are
// analyzed independently by the caller; here their interiors only count as
// reads of the enclosing function's variables.
func errSinkFunc(a *Analyzer, p *Package, ftype *ast.FuncType, body *ast.BlockStmt) []Diagnostic {
	w := &errFlow{a: a, p: p, tracked: map[*types.Var]bool{}, pending: map[*types.Var]token.Pos{}}
	if ftype.Results != nil {
		for _, fld := range ftype.Results.List {
			for _, name := range fld.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok && v != nil && errorType(v.Type()) {
					w.tracked[v] = true
				}
			}
		}
	}
	w.block(body)
	var unread []*types.Var
	for v := range w.pending {
		unread = append(unread, v)
	}
	sort.Slice(unread, func(i, j int) bool { return w.pending[unread[i]] < w.pending[unread[j]] })
	for _, v := range unread {
		w.diags = append(w.diags, a.Diag(p, w.pending[v], "error assigned to %s is never checked", v.Name()))
	}
	return w.diags
}

func (w *errFlow) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *errFlow) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		w.assign(x)
	case *ast.DeclStmt:
		w.decl(x)
	case *ast.ExprStmt:
		w.reads(x.X)
		if call, ok := unparen(x.X).(*ast.CallExpr); ok {
			w.uncheckedCall(call, "call to")
		}
	case *ast.DeferStmt:
		w.reads(x.Call)
		w.uncheckedCall(x.Call, "deferred call to")
	case *ast.GoStmt:
		w.reads(x.Call)
		w.uncheckedCall(x.Call, "go call to")
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.reads(e)
		}
		if len(x.Results) == 0 {
			// A bare return hands the named results to the caller.
			for v := range w.tracked {
				delete(w.pending, v)
			}
		}
	case *ast.IfStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.reads(x.Cond)
		branches := []map[*types.Var]token.Pos{
			w.branch(func() { w.block(x.Body) }),
		}
		if x.Else != nil {
			branches = append(branches, w.branch(func() { w.stmt(x.Else) }))
		}
		w.mergeReads(branches)
	case *ast.ForStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.reads(x.Cond)
		before := copyPending(w.pending)
		cl := w.branch(func() {
			w.block(x.Body)
			if x.Post != nil {
				w.stmt(x.Post)
			}
		})
		w.loopMerge(before, cl, x)
	case *ast.RangeStmt:
		w.reads(x.X)
		before := copyPending(w.pending)
		cl := w.branch(func() { w.block(x.Body) })
		w.loopMerge(before, cl, x)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.reads(x.Tag)
		var branches []map[*types.Var]token.Pos
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.reads(e)
			}
			branches = append(branches, w.branch(func() { w.stmtList(cc.Body) }))
		}
		w.mergeReads(branches)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.readsNode(x.Assign)
		var branches []map[*types.Var]token.Pos
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			branches = append(branches, w.branch(func() { w.stmtList(cc.Body) }))
		}
		w.mergeReads(branches)
	case *ast.SelectStmt:
		var branches []map[*types.Var]token.Pos
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			branches = append(branches, w.branch(func() {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.stmtList(cc.Body)
			}))
		}
		w.mergeReads(branches)
	case *ast.BlockStmt:
		w.block(x)
	case *ast.LabeledStmt:
		w.stmt(x.Stmt)
	default:
		// SendStmt, IncDecStmt, BranchStmt, EmptyStmt: plain reads.
		w.readsNode(s)
	}
}

func (w *errFlow) stmtList(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// assign handles = and := statements: blank discards, overwrites of
// pending errors, and new pending assignments.
func (w *errFlow) assign(as *ast.AssignStmt) {
	for _, r := range as.Rhs {
		w.reads(r)
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return // compound assignment ops never produce errors
	}
	callDesc := ""
	if len(as.Rhs) == 1 {
		if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			callDesc = types.ExprString(call.Fun)
		}
	}
	for i, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			// m[k] = ... reads m and k; a write through a selector or
			// index is never a tracked local.
			w.reads(l)
			continue
		}
		if id.Name == "_" {
			if t := w.assignType(as, i); t != nil && errorType(t) {
				if callDesc != "" {
					w.diags = append(w.diags, w.a.Diag(w.p, id.Pos(),
						"error result of %s is discarded", callDesc))
				} else {
					w.diags = append(w.diags, w.a.Diag(w.p, id.Pos(),
						"error value is discarded"))
				}
			}
			continue
		}
		var v *types.Var
		if as.Tok == token.DEFINE {
			v, _ = w.p.Info.Defs[id].(*types.Var)
			if v == nil {
				// Redeclaration inside a multi-variable := resolves as a use.
				v, _ = w.p.Info.Uses[id].(*types.Var)
			}
		} else {
			v, _ = w.p.Info.Uses[id].(*types.Var)
		}
		if v == nil || !errorType(v.Type()) {
			continue
		}
		if as.Tok == token.DEFINE {
			w.tracked[v] = true
		}
		if !w.tracked[v] {
			continue // parameter, package variable, or field: out of scope
		}
		if prev, ok := w.pending[v]; ok {
			w.diags = append(w.diags, w.a.Diag(w.p, id.Pos(),
				"%s is reassigned before the error assigned at line %d is checked",
				v.Name(), w.p.Fset.Position(prev).Line))
		}
		if t := w.assignType(as, i); t != nil && isUntypedNil(t) {
			delete(w.pending, v) // explicit reset, nothing left to check
		} else {
			w.pending[v] = id.Pos()
		}
	}
}

// assignType resolves the type flowing into LHS position i.
func (w *errFlow) assignType(as *ast.AssignStmt, i int) types.Type {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if tup, ok := w.p.Info.Types[as.Rhs[0]].Type.(*types.Tuple); ok && i < tup.Len() {
			return tup.At(i).Type()
		}
		return nil
	}
	if i < len(as.Rhs) {
		return w.p.Info.Types[as.Rhs[i]].Type
	}
	return nil
}

// decl handles `var` statements, which can both declare tracked variables
// and leave an initial error pending.
func (w *errFlow) decl(ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		w.readsNode(ds)
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, val := range vs.Values {
			w.reads(val)
		}
		for _, name := range vs.Names {
			v, _ := w.p.Info.Defs[name].(*types.Var)
			if v == nil || !errorType(v.Type()) {
				continue
			}
			w.tracked[v] = true
			if len(vs.Values) > 0 {
				w.pending[v] = name.Pos()
			}
		}
	}
}

// uncheckedCall reports a statement-position call whose results include an
// error nothing receives.
func (w *errFlow) uncheckedCall(call *ast.CallExpr, what string) {
	if !typeHasError(w.p.Info.Types[call].Type) {
		return
	}
	w.diags = append(w.diags, w.a.Diag(w.p, call.Pos(),
		"%s %s drops its error result", what, types.ExprString(call.Fun)))
}

// reads marks every variable used anywhere inside e as read, function-
// literal interiors included: a captured error escapes the straight-line
// view, so the closure must count as a potential check.
func (w *errFlow) reads(e ast.Expr) {
	if e == nil {
		return
	}
	w.readsNode(e)
}

func (w *errFlow) readsNode(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if v, ok := w.p.Info.Uses[id].(*types.Var); ok {
				delete(w.pending, v)
			}
		}
		return true
	})
}

// branch runs fn against a copy of the pending set and returns the copy;
// diagnostics found inside the branch are kept.
func (w *errFlow) branch(fn func()) map[*types.Var]token.Pos {
	saved := w.pending
	w.pending = copyPending(saved)
	fn()
	cl := w.pending
	w.pending = saved
	return cl
}

// mergeReads clears every pending variable that at least one branch read:
// the analysis reports only errors no syntactic path checks.
func (w *errFlow) mergeReads(branches []map[*types.Var]token.Pos) {
	for v := range w.pending {
		for _, b := range branches {
			if _, ok := b[v]; !ok {
				delete(w.pending, v)
				break
			}
		}
	}
}

// loopMerge folds one symbolic iteration of a loop body back into the live
// set. Reads clear as usual. A variable the body reassigns leaves the walk:
// a later iteration may read the value the straight-line view considers
// dead — unless the variable is declared inside the body, where each
// iteration gets a fresh one and an unread value truly is unread.
func (w *errFlow) loopMerge(before, cl map[*types.Var]token.Pos, loop ast.Node) {
	for v := range before {
		if _, ok := cl[v]; !ok {
			delete(w.pending, v)
		}
	}
	for v, pos := range cl {
		if bp, ok := before[v]; ok && bp == pos {
			continue // untouched by the body
		}
		delete(w.pending, v)
		if v.Pos() >= loop.Pos() && v.Pos() <= loop.End() {
			w.pending[v] = pos
		}
	}
}

func copyPending(m map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// typeHasError reports whether t is, or is a tuple containing, the
// built-in error type.
func typeHasError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if errorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return errorType(t)
}

// isUntypedNil reports whether t is the type of a literal nil.
func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
