package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// This file assembles the lifetime layer (DESIGN.md §16): the //lint:pooled
// registry (pooldirect.go) feeds the dataflow IR (dataflow.go) and the
// interprocedural summaries (poolsummary.go), and three analyzers report
// over one shared module-cached run:
//
//	poolsafe     use-after-release, double release, leak on an exit path,
//	             release of state still reachable from live operator state,
//	             and //lint:pooled misuse.
//	aliasescape  an alias of a pooled backing escaped (stored, sent,
//	             returned, handed to a goroutine) and the backing was
//	             released anyway.
//	scratchlocal a scratch arena alias outlived the call that borrowed it.

// lifetimeEngine is the shared state of one lifetime run over a module.
type lifetimeEngine struct {
	m     *Module
	reg   *PoolRegistry
	sums  map[*CGNode]*PoolSummary
	diags []Diagnostic
}

// pkgDiag pairs a diagnostic with its package path for scope filtering.
type pkgDiag struct {
	pkg string
	d   Diagnostic
}

// lifetimeResult is the cached output of one lifetime run.
type lifetimeResult struct {
	diags []pkgDiag
}

// computeLifetime runs the whole layer once per module: registry, relevance
// pruning, summary fixpoint, report pass, still-reachable pass.
func computeLifetime(m *Module) *lifetimeResult {
	reg := BuildPoolRegistry(m)
	res := &lifetimeResult{}
	filePkg := map[string]string{}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			filePkg[p.Fset.Position(f.Pos()).Filename] = p.Path
		}
	}
	add := func(d Diagnostic) {
		res.diags = append(res.diags, pkgDiag{pkg: filePkg[d.Pos.Filename], d: d})
	}
	for _, d := range reg.Bad {
		add(d)
	}
	if reg.empty() {
		return res
	}
	eng := &lifetimeEngine{m: m, reg: reg}
	nodes := relevantNodes(m, reg)
	eng.computeSummaries(nodes)
	for _, n := range nodes {
		w := newWalker(eng, n, nil, true)
		w.analyze()
		eng.stillReachable(n)
	}
	for _, d := range eng.diags {
		add(d)
	}
	return res
}

// lifetimeAnalyzer builds one scope-filtered view over the shared run.
func lifetimeAnalyzer(name, doc string, scope []string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  doc,
		RunModule: func(m *Module) []Diagnostic {
			var out []Diagnostic
			for _, pd := range m.lifetime().diags {
				if pd.d.Analyzer == name && (len(scope) == 0 || pathMatches(pd.pkg, scope)) {
					out = append(out, pd.d)
				}
			}
			return out
		},
	}
}

// NewPoolSafe flags pooled objects used after release, released twice,
// leaked on an exit path, or released while still reachable from live
// operator state, within the scoped packages.
func NewPoolSafe(scope []string) *Analyzer {
	return lifetimeAnalyzer("poolsafe",
		"pooled objects must not be used after release, released twice, leaked, or released while still reachable",
		scope)
}

// NewAliasEscape flags pooled backings released after an alias escaped into
// long-lived state, an emitted value, a channel, or a goroutine.
func NewAliasEscape(scope []string) *Analyzer {
	return lifetimeAnalyzer("aliasescape",
		"aliases of pooled backings must not escape before the backing is released",
		scope)
}

// NewScratchLocal flags scratch arena aliases that outlive the borrowing
// call.
func NewScratchLocal(scope []string) *Analyzer {
	return lifetimeAnalyzer("scratchlocal",
		"scratch arenas must not outlive the call that borrowed them",
		scope)
}

// ---- shared call/pool resolution ----

// staticFunc returns the *types.Func a call statically invokes, if any.
func staticFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[f]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := p.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// poolOfExpr resolves an expression to a declared pool/freelist: a bare
// identifier, a package-qualified variable, or a field selector.
func poolOfExpr(p *Package, reg *PoolRegistry, e ast.Expr) *PoolDecl {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[x]; obj != nil {
			return reg.Pools[obj]
		}
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return reg.Pools[sel.Obj()]
		}
		if obj := p.Info.Uses[x.Sel]; obj != nil {
			return reg.Pools[obj]
		}
	}
	return nil
}

// ---- still-reachable pass ----

// stillReachable is the syntactic half of poolsafe's third rule: when a
// release's argument is rooted in non-local state (a receiver field, a
// captured variable, package state), the body must also sever that path —
// a delete/clear, an assignment to a prefix of the path, or a clear/reset
// method on a prefix. Otherwise live operator state keeps pointing at a
// recycled object. Ordering inside the body is deliberately not checked:
// the established idioms both clear-then-release and release-then-delete.
func (eng *lifetimeEngine) stillReachable(n *CGNode) {
	rs := &reachScan{n: n, p: n.Pkg, reg: eng.reg,
		ranges: map[types.Object]ast.Expr{},
		defs:   map[types.Object][]ast.Expr{},
		params: map[types.Object]bool{},
	}
	rs.bindParams()
	type relEvent struct {
		pos ast.Node
		arg ast.Expr
	}
	var rels []relEvent
	walkOwn(n, func(node ast.Node) {
		switch st := node.(type) {
		case *ast.RangeStmt:
			if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
				if obj := rs.objOf(id); obj != nil {
					rs.ranges[obj] = st.X
				}
			}
		case *ast.AssignStmt:
			for i, l := range st.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				obj := rs.objOf(id)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(st.Lhs) == len(st.Rhs) {
					rhs = st.Rhs[i]
				}
				rs.defs[obj] = append(rs.defs[obj], rhs)
			}
			for _, l := range st.Lhs {
				if p, _ := rs.pathOf(l, 0); p != "" {
					rs.cleared = append(rs.cleared, p)
				}
			}
		case *ast.CallExpr:
			rs.scanClearing(st)
			if fn := staticFunc(rs.p, st); fn != nil && eng.reg.Releases[fn.Origin()] && len(st.Args) > 0 {
				rels = append(rels, relEvent{pos: st, arg: st.Args[0]})
			}
			if sel, ok := unparen(st.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" && len(st.Args) == 1 {
				if pd := poolOfExpr(rs.p, eng.reg, sel.X); pd != nil && pd.Kind == roleSyncPool {
					rels = append(rels, relEvent{pos: st, arg: st.Args[0]})
				}
			}
			if id, ok := unparen(st.Fun).(*ast.Ident); ok && id.Name == "append" && len(st.Args) > 1 {
				if _, isB := rs.p.Info.Uses[id].(*types.Builtin); isB {
					if pd := poolOfExpr(rs.p, eng.reg, st.Args[0]); pd != nil && pd.Kind == roleFreelist {
						for _, a := range st.Args[1:] {
							rels = append(rels, relEvent{pos: st, arg: a})
						}
					}
				}
			}
		}
	})
	seen := map[string]bool{}
	for _, r := range rels {
		path, root := rs.pathOf(r.arg, 0)
		if path == "" || root == nil {
			continue
		}
		if !strings.ContainsAny(path, ".[") {
			continue // a bare value, not a load out of a container
		}
		if rs.isLocal(root) {
			continue // container itself is call-local; it dies with the call
		}
		if rs.clearedPrefix(path) {
			continue
		}
		key := fmt.Sprintf("%d@%s", r.pos.Pos(), path)
		if seen[key] {
			continue
		}
		seen[key] = true
		eng.diags = append(eng.diags, Diagnostic{
			Analyzer: "poolsafe",
			Pos:      rs.p.Fset.Position(r.pos.Pos()),
			Message: fmt.Sprintf(
				"pooled value released while still reachable through %s; delete, clear, or reassign the containing state", path),
		})
	}
}

// reachScan is the per-body state of the still-reachable pass.
type reachScan struct {
	n       *CGNode
	p       *Package
	reg     *PoolRegistry
	ranges  map[types.Object]ast.Expr
	defs    map[types.Object][]ast.Expr
	params  map[types.Object]bool
	cleared []string
}

// bindParams records parameters and the receiver. The map value says
// whether the parameter is pointer-typed: reaching state through a pointer
// param reaches the CALLER's object, while a value param is the callee's
// own copy — releasing out of a value-typed message is an ownership
// handoff, not a dangling reference in live state.
func (rs *reachScan) bindParams() {
	ptr := func(t types.Type) bool {
		_, ok := t.Underlying().(*types.Pointer)
		return ok
	}
	if rs.n.Fn != nil {
		sig := rs.n.Fn.Type().(*types.Signature)
		if r := sig.Recv(); r != nil {
			rs.params[r] = ptr(r.Type())
		}
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			rs.params[p] = ptr(p.Type())
		}
		return
	}
	if rs.n.Lit != nil {
		for _, f := range rs.n.Lit.Type.Params.List {
			for _, name := range f.Names {
				if obj := rs.p.Info.Defs[name]; obj != nil {
					rs.params[obj] = ptr(obj.Type())
				}
			}
		}
	}
}

func (rs *reachScan) objOf(id *ast.Ident) types.Object {
	if obj := rs.p.Info.Defs[id]; obj != nil {
		return obj
	}
	return rs.p.Info.Uses[id]
}

// isLocal reports whether obj is declared inside this body. A pointer
// param or receiver counts as non-local (it aliases the caller's live
// state); a value param is the callee's own copy and counts as local.
func (rs *reachScan) isLocal(obj types.Object) bool {
	if isPtr, ok := rs.params[obj]; ok {
		return !isPtr
	}
	return rs.n.Body.Pos() <= obj.Pos() && obj.Pos() <= rs.n.Body.End()
}

// scanClearing records delete/clear builtins and clear/reset-style method
// calls as severing statements.
func (rs *reachScan) scanClearing(call *ast.CallExpr) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := rs.p.Info.Uses[id].(*types.Builtin); isB && (id.Name == "delete" || id.Name == "clear") && len(call.Args) > 0 {
			if p, _ := rs.pathOf(call.Args[0], 0); p != "" {
				rs.cleared = append(rs.cleared, p)
			}
		}
		return
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "clear", "reset", "Clear", "Reset":
			if p, _ := rs.pathOf(sel.X, 0); p != "" {
				rs.cleared = append(rs.cleared, p)
			}
		}
	}
}

// pathOf renders an expression as a normalized access path ("s.versions[*]
// .entries") and returns its root object. Range variables substitute their
// container; single-assignment locals substitute their initializer, so the
// common pop-into-local idiom resolves to the underlying state path.
func (rs *reachScan) pathOf(e ast.Expr, depth int) (string, types.Object) {
	if depth > 6 {
		return "", nil
	}
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return "", nil
		}
		obj := rs.objOf(x)
		if obj == nil {
			return "", nil
		}
		if c, ok := rs.ranges[obj]; ok {
			base, root := rs.pathOf(c, depth+1)
			if base == "" {
				return "", nil
			}
			return base + "[*]", root
		}
		if ds := rs.defs[obj]; len(ds) == 1 && ds[0] != nil && rs.isLocal(obj) {
			if p, root := rs.pathOf(ds[0], depth+1); p != "" {
				return p, root
			}
		}
		return x.Name, obj
	case *ast.SelectorExpr:
		if sel := rs.p.Info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			base, root := rs.pathOf(x.X, depth+1)
			if base == "" {
				return "", nil
			}
			return base + "." + x.Sel.Name, root
		}
		// Package-qualified variable: pkg.Var is its own root.
		if obj := rs.p.Info.Uses[x.Sel]; obj != nil {
			if _, ok := obj.(*types.Var); ok {
				return render(x), obj
			}
		}
		return "", nil
	case *ast.IndexExpr:
		base, root := rs.pathOf(x.X, depth+1)
		if base == "" {
			return "", nil
		}
		return base + "[*]", root
	case *ast.SliceExpr:
		return rs.pathOf(x.X, depth+1)
	case *ast.StarExpr:
		return rs.pathOf(x.X, depth+1)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			return rs.pathOf(x.X, depth+1)
		}
	}
	return "", nil
}

// clearedPrefix reports whether some severing statement targets the path or
// a prefix of it at a segment boundary.
func (rs *reachScan) clearedPrefix(path string) bool {
	for _, t := range rs.cleared {
		if t == path || strings.HasPrefix(path, t+".") || strings.HasPrefix(path, t+"[") {
			return true
		}
	}
	return false
}
