package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// emitPrefixes are call-name prefixes treated as ordered-output emission:
// writing to an encoder, log, stream, or sink from inside a map range makes
// the output order nondeterministic.
var emitPrefixes = []string{"Write", "Encode", "Emit", "Fprint", "Print", "Append", "Deliver", "Push"}

// NewMapOrder builds the determinism analyzer: inside the packages listed
// in scope (exact path or "prefix/..." pattern; empty scope = every
// package), it flags `range` over a map whose body feeds an ordered output
// — an append to an outer slice, a channel send, or an encode/write call —
// unless the function sorts after the loop. Checkpoint encoding, changelog
// emission, and result routing must be byte-identical across runs for
// replay determinism (paper §3.3) and transactional sinks.
func NewMapOrder(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "flags map iteration feeding deterministic outputs without an intervening sort",
	}
	a.Run = func(p *Package) []Diagnostic {
		if len(scope) > 0 && !pathMatches(p.Path, scope) {
			return nil
		}
		var diags []Diagnostic
		forEachFunc(p, func(body *ast.BlockStmt) {
			// Sort calls anywhere in this function, by position.
			var sortEnds []ast.Node
			ast.Inspect(body, func(n ast.Node) bool {
				// Note: nested closures are not skipped here — sort.Slice
				// takes a closure, and a sort buried in one still orders
				// data for this function.
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && isSortCall(obj.Pkg().Path(), obj.Name()) {
						sortEnds = append(sortEnds, call)
					}
				}
				return true
			})
			ast.Inspect(body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
					// Nested closures get their own forEachFunc visit;
					// skipping them here avoids duplicate findings.
					return false
				}
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.Types[rng.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				why := emitsOrderedOutput(p, rng)
				if why == "" {
					return true
				}
				for _, sc := range sortEnds {
					if sc.Pos() > rng.End() {
						return true // sorted downstream of the loop
					}
				}
				diags = append(diags, a.Diag(p, rng.For,
					"map iteration order is random but the loop %s; collect and sort before emitting", why))
				return true
			})
		})
		return diags
	}
	return a
}

// isSortCall reports whether pkg.name actually orders data — sort.Search
// and sort.IsSorted inspect without ordering and must not count.
func isSortCall(pkgPath, name string) bool {
	switch pkgPath {
	case "sort":
		return !strings.HasPrefix(name, "Search") && !strings.HasPrefix(name, "IsSorted")
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}

// emitsOrderedOutput reports how a range body feeds an ordered output
// ("" when it does not): appending to a slice declared outside the loop,
// sending on a channel, or calling a write/encode-style function.
func emitsOrderedOutput(p *Package, rng *ast.RangeStmt) string {
	why := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			why = "sends on a channel"
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && len(n.Args) > 0 && appendTargetOutside(p, n.Args[0], rng) {
					why = "appends to a slice built outside it"
				}
			case *ast.SelectorExpr:
				for _, pre := range emitPrefixes {
					if strings.HasPrefix(fun.Sel.Name, pre) {
						why = "calls " + fun.Sel.Name
						break
					}
				}
			}
		}
		return true
	})
	return why
}

// appendTargetOutside reports whether the first append argument names a
// variable declared outside the range statement.
func appendTargetOutside(p *Package, arg ast.Expr, rng *ast.RangeStmt) bool {
	id := rootIdent(arg)
	if id == nil {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// rootIdent unwraps selectors/indexes to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
